// Section 7.7 — Medes overheads at the dedup agent and the controller.
//
// Reports: total dedup-op time per function (paper: 2 s for Vanilla to 3.3 s
// for ModelTrain at full scale), the controller lookup cost per page (paper:
// ~80 us single-threaded; 130 ms for Vanilla's 4k pages to 1850 ms for
// ModelTrain's 22k pages), fingerprint-registry memory versus the number of
// base sandboxes (the Section 4.1.3 base-restriction design), and the
// registry blow-up if *all* sandboxes were inserted instead.
#include <cstdio>

#include "bench_util.h"

using namespace medes;

int main() {
  bench::Header("Section 7.7: dedup agent and controller overheads",
                "Op timing at represented scale + registry footprint accounting");
  ClusterOptions copts;
  copts.num_nodes = 2;
  copts.node_memory_mb = 1e9;
  copts.bytes_per_mb = 65536;
  Cluster cluster(copts);
  FingerprintRegistry registry;
  RdmaFabric fabric({}, [&](const PageLocation& loc) { return cluster.ReadBasePage(loc); });
  DedupAgent agent(cluster, registry, fabric, {});

  for (const auto& p : FunctionBenchProfiles()) {
    Sandbox& base = cluster.Spawn(p, NodeId{0}, SimTime{});
    cluster.MarkWarm(base, SimTime{});
    agent.DesignateBase(base);
  }

  bench::Section("Dedup-op time per function (background, off the critical path)");
  std::printf("%-12s %10s | %12s %12s %12s | %10s\n", "function", "pages", "checkpoint",
              "lookup(ms)", "patch(ms)", "total(ms)");
  for (const auto& p : FunctionBenchProfiles()) {
    Sandbox& sb = cluster.Spawn(p, NodeId{1}, SimTime{});
    cluster.MarkWarm(sb, SimTime{});
    DedupOpResult d = agent.DedupOp(sb, SimTime{1});
    const double repr_pages = p.memory_mb * 256;  // 4 KiB pages at full scale
    std::printf("%-12s %10.0f | %12.0f %12.0f %12.0f | %10.0f\n", p.name.c_str(), repr_pages,
                ToMillis(d.checkpoint_time), ToMillis(d.lookup_time), ToMillis(d.patch_time),
                ToMillis(d.total_time));
  }
  std::printf("(paper: 2000 ms for Vanilla (4k pages) to 3300 ms for ModelTrain (22k pages);\n"
              " lookup alone 130 -> 1850 ms at ~%ld us/page single-threaded)\n",
              static_cast<long>(RegistryOptions().lookup_per_page.value()));

  bench::Section("Controller: fingerprint registry footprint (base restriction, Section 4.1.3)");
  RegistryStats stats = registry.stats();
  std::printf("base sandboxes registered : %zu (one per function)\n", stats.num_base_sandboxes);
  std::printf("registry keys / entries   : %zu / %zu\n", stats.num_keys, stats.num_entries);
  std::printf("approx registry memory    : %.2f MB at image scale",
              static_cast<double>(stats.ApproxMemoryBytes()) / (1024.0 * 1024.0));
  const double scale = static_cast<double>(1 << 20) / static_cast<double>(copts.bytes_per_mb);
  std::printf("  (~%.1f MB at full scale)\n",
              scale * static_cast<double>(stats.ApproxMemoryBytes()) / (1024.0 * 1024.0));

  bench::Section("Ablation: inserting ALL sandboxes instead of base sandboxes only");
  FingerprintRegistry unrestricted;
  PageFingerprinter fp({});
  size_t sandboxes = 0;
  for (int copy = 0; copy < 4; ++copy) {
    for (const auto& p : FunctionBenchProfiles()) {
      Sandbox& sb = cluster.Spawn(p, NodeId{0}, SimTime{});
      cluster.MarkWarm(sb, SimTime{});
      MemoryImage image = cluster.BuildImage(sb);
      unrestricted.InsertBaseSandbox(NodeId{0}, sb.id, fp.FingerprintImage(image.bytes(), kPageSize));
      ++sandboxes;
    }
  }
  RegistryStats u = unrestricted.stats();
  std::printf("with %zu sandboxes inserted: keys=%zu entries=%zu (~%.2f MB at image scale)\n",
              sandboxes, u.num_keys, u.num_entries,
              static_cast<double>(u.ApproxMemoryBytes()) / (1024.0 * 1024.0));
  std::printf("entries grow ~linearly with sandboxes; the base restriction caps the table at\n"
              "O(base sandboxes) = O(dedup sandboxes / T), T=40 (Section 4.1.3)\n");

  bench::Section("Controller memory overhead on the evaluation workload");
  auto trace = bench::FullWorkload(15 * kMinute);
  RunMetrics m = ServerlessPlatform(bench::EvalOptions(PolicyKind::kMedes)).Run(trace);
  const double registry_mb =
      static_cast<double>(m.registry.ApproxMemoryBytes()) / (1024.0 * 1024.0) *
      (static_cast<double>(1 << 20) / 8192.0);
  std::printf("fingerprint registry at full scale: %.1f MB for %zu base sandboxes\n", registry_mb,
              m.registry.num_base_sandboxes);
  std::printf("registry lookups served: %lu (key hit rate %.1f%%)\n", m.registry.lookups,
              m.registry.lookups ? 100.0 * static_cast<double>(m.registry.key_hits) /
                                       static_cast<double>(m.registry.lookups)
                                 : 0.0);
  std::printf("(paper: controller memory rises just 11.8%% over the baseline controller)\n");
  return 0;
}
