// Table 2 — execution time and memory footprint of the FunctionBench suite,
// plus the library composition from Table 1 and the modelled cold/warm start
// latencies the simulator uses.
#include <cstdio>
#include <string>

#include "bench_util.h"

using namespace medes;

int main() {
  bench::Header("Table 2: FunctionBench profiles",
                "Execution times and memory footprints (paper Table 2) + model parameters");
  std::printf("%-12s %9s %8s %9s %9s  %s\n", "function", "exec(ms)", "mem(MB)", "cold(ms)",
              "warm(ms)", "libraries");
  for (const auto& p : FunctionBenchProfiles()) {
    std::string libs;
    for (const auto& lib : p.libraries) {
      if (!libs.empty()) {
        libs += ", ";
      }
      libs += lib;
    }
    std::printf("%-12s %9.0f %8.1f %9.0f %9.0f  %s\n", p.name.c_str(), ToMillis(p.exec_time),
                p.memory_mb, ToMillis(p.cold_start), ToMillis(p.warm_start), libs.c_str());
  }
  std::printf("\nLibrary catalogue (represented clean-mapping sizes):\n");
  for (const auto& lib : LibraryCatalogue()) {
    std::printf("  %-16s %6.1f MB\n", lib.name.c_str(), lib.size_mb);
  }
  return 0;
}
