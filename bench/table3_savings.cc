// Table 3 — per-function dedup memory savings (Section 7.3.1).
//
// Dedups one executed sandbox of each function against a same-function base
// and reports saved MB / footprint = percent savings, next to the paper's
// reported numbers. Also reports the average patch size (the paper quotes
// 611 B average at 64 B chunks) and the same- vs cross-function dedup split
// when bases of all ten functions are present.
#include <cstdio>

#include "bench_util.h"

using namespace medes;

namespace {
// Paper Table 3 percentages, by function id.
constexpr double kPaperSavings[] = {27.06, 32.81, 43.03, 25.46, 15.94,
                                    44.30, 21.48, 38.89, 58.03, 30.09};
}  // namespace

int main() {
  bench::Header("Table 3: per-function dedup memory savings",
                "One executed sandbox deduped against a same-function base");
  ClusterOptions copts;
  copts.num_nodes = 2;
  copts.node_memory_mb = 1e9;
  copts.bytes_per_mb = 65536;
  Cluster cluster(copts);
  FingerprintRegistry registry;
  RdmaFabric fabric({}, [&](const PageLocation& loc) { return cluster.ReadBasePage(loc); });
  DedupAgent agent(cluster, registry, fabric, {});

  for (const auto& p : FunctionBenchProfiles()) {
    Sandbox& base = cluster.Spawn(p, NodeId{0}, SimTime{});
    cluster.MarkWarm(base, SimTime{});
    agent.DesignateBase(base);
  }

  std::printf("%-12s %8s %9s %9s %9s | %9s %9s\n", "function", "mem(MB)", "saved(MB)", "saved(%)",
              "paper(%)", "patch(B)", "dedup(%)");
  double total_saved = 0;
  size_t same = 0, cross = 0;
  for (const auto& p : FunctionBenchProfiles()) {
    Sandbox& sb = cluster.Spawn(p, NodeId{1}, SimTime{});
    cluster.MarkWarm(sb, SimTime{});
    DedupOpResult d = agent.DedupOp(sb, SimTime{1});
    double saved_mb = static_cast<double>(d.saved_bytes) / static_cast<double>(copts.bytes_per_mb);
    total_saved += saved_mb;
    same += d.same_function_pages;
    cross += d.cross_function_pages;
    std::printf("%-12s %8.1f %9.2f %8.1f%% %8.1f%% | %9.0f %8.1f%%\n", p.name.c_str(), p.memory_mb,
                saved_mb, 100.0 * saved_mb / p.memory_mb,
                kPaperSavings[static_cast<size_t>(p.id)],
                d.pages_deduped ? static_cast<double>(d.patch_bytes) /
                                      static_cast<double>(d.pages_deduped)
                                : 0.0,
                100.0 * static_cast<double>(d.pages_deduped) /
                    static_cast<double>(d.pages_total));
  }
  std::printf("\naverage savings per sandbox: %.1f MB\n", total_saved / 10.0);
  std::printf("dedup split with all-function bases present: %.1f%% same-function / %.1f%% "
              "cross-function\n(paper Section 7.3.1: 32.86%% same / ~67%% cross)\n",
              100.0 * static_cast<double>(same) / static_cast<double>(same + cross),
              100.0 * static_cast<double>(cross) / static_cast<double>(same + cross));
  return 0;
}
