// Figure 2 — possible memory savings on a real-world workload (Section 2.1).
//
// The paper's Fig. 2 is an *estimate*: take the memory timeline of a
// keep-alive platform and ask how much smaller it would be if the redundancy
// in idle warm sandboxes were eliminated. We reproduce it the same way:
//   1. replay a 30-minute Azure-like trace under fixed keep-alive and sample
//      per-function idle-warm memory over time;
//   2. measure each function's dedup savings fraction once (the Table 3
//      methodology);
//   3. usage-after-elimination(t) =
//          used(t) - sum_f idle_f(t) * savings_f + one base sandbox per
//          active function (its memory must stay resident to serve RSCs).
// The paper estimates savings of up to ~30% vs keep-alive platforms.
#include <cstdio>

#include "bench_util.h"

using namespace medes;

namespace {

// Measured savings fraction per function (Table 3 methodology, small scale).
std::vector<double> MeasureSavingsFractions() {
  ClusterOptions copts;
  copts.num_nodes = 2;
  copts.node_memory_mb = 1e9;
  copts.bytes_per_mb = 16384;
  Cluster cluster(copts);
  FingerprintRegistry registry;
  RdmaFabric fabric({}, [&](const PageLocation& loc) { return cluster.ReadBasePage(loc); });
  DedupAgent agent(cluster, registry, fabric, {});
  for (const auto& p : FunctionBenchProfiles()) {
    Sandbox& base = cluster.Spawn(p, NodeId{0}, SimTime{});
    cluster.MarkWarm(base, SimTime{});
    agent.DesignateBase(base);
  }
  std::vector<double> fractions;
  for (const auto& p : FunctionBenchProfiles()) {
    Sandbox& sb = cluster.Spawn(p, NodeId{1}, SimTime{});
    cluster.MarkWarm(sb, SimTime{});
    DedupOpResult d = agent.DedupOp(sb, SimTime{1});
    fractions.push_back(static_cast<double>(d.saved_bytes) /
                        static_cast<double>(copts.bytes_per_mb) / p.memory_mb);
  }
  return fractions;
}

}  // namespace

int main() {
  bench::Header("Figure 2: memory savings on a real-world workload",
                "Keep-alive usage vs estimated usage after redundancy elimination");
  std::vector<double> savings = MeasureSavingsFractions();

  auto trace = bench::FullWorkload(30 * kMinute);
  RunMetrics m = ServerlessPlatform(bench::EvalOptions(PolicyKind::kFixedKeepAlive)).Run(trace);

  const PlatformOptions opts = bench::EvalOptions(PolicyKind::kFixedKeepAlive);
  const double pool = opts.cluster.node_memory_mb * opts.cluster.num_nodes;
  std::printf("\n%8s %14s %20s %9s\n", "t(s)", "keep-alive(%)", "after-elimination(%)",
              "saved(%)");
  double sum = 0, peak = 0;
  size_t rows = 0;
  for (size_t i = 0; i < m.memory_timeline.size(); i += 6) {  // one row per minute
    const auto& s = m.memory_timeline[i];
    double eliminated = 0;
    double base_cost = 0;
    for (size_t f = 0; f < s.idle_warm_mb_per_function.size(); ++f) {
      if (s.idle_warm_mb_per_function[f] > 0) {
        eliminated += s.idle_warm_mb_per_function[f] * savings[f];
        // One base sandbox snapshot per active function stays pinned.
        base_cost += FunctionBenchProfiles()[f].memory_mb;
      }
    }
    double after = s.used_mb - eliminated + base_cost;
    double saved_pct = s.used_mb > 0 ? 100.0 * (s.used_mb - after) / s.used_mb : 0.0;
    std::printf("%8.0f %14.1f %20.1f %9.1f\n", ToSeconds(s.time - SimTime{}), 100.0 * s.used_mb / pool,
                100.0 * after / pool, saved_pct);
    if (ToSeconds(s.time - SimTime{}) > 120) {
      sum += saved_pct;
      peak = std::max(peak, saved_pct);
      ++rows;
    }
  }
  std::printf("\nmean savings after warm-up: %.1f%%, peak: %.1f%% (paper: up to ~30%%)\n",
              rows ? sum / static_cast<double>(rows) : 0.0, peak);
  return 0;
}
