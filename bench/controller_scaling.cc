// Controller scalability (paper Section 4.3 + 7.7).
//
// The paper's controller processes ~80 us/page of fingerprint lookups
// single-threaded and argues the registry can be sharded (lookups are
// independent) with chain replication for fault tolerance. This bench:
//   1. sweeps shard counts and reports the modelled per-page lookup latency
//      and measured shard load balance;
//   2. verifies result equivalence between the centralized and distributed
//      backends on a live platform run;
//   3. injects replica failures mid-workload and shows the platform rides
//      through (chain failover), plus the cost of losing a whole shard.
#include <cstdio>

#include "bench_util.h"

using namespace medes;

namespace {

DistributedRegistryOptions RegOpts(int num_shards, int replication_factor) {
  DistributedRegistryOptions opts;
  opts.num_shards = num_shards;
  opts.replication_factor = replication_factor;
  return opts;
}

}  // namespace

int main() {
  bench::Header("Controller scaling: sharded fingerprint registry",
                "Section 4.3 distribution + chain replication");

  bench::Section("Per-page lookup latency vs shard count (5-chunk fingerprints)");
  std::printf("%-8s %22s\n", "shards", "page lookup (us)");
  for (int shards : {1, 2, 4, 8, 16}) {
    DistributedRegistry reg(RegOpts(shards, 3));
    std::printf("%-8d %22lld\n", shards,
                static_cast<long long>(reg.PageLookupLatency(5).value()));
  }

  bench::Section("Centralized vs distributed backend on a live run");
  auto trace = bench::RepresentativeWorkload(15 * kMinute);
  PlatformOptions central = bench::RepresentativeOptions(PolicyKind::kMedes);
  PlatformOptions dist = central;
  dist.registry_shards = 8;
  dist.registry_replication = 3;
  RunMetrics m_central = ServerlessPlatform(central).Run(trace);
  RunMetrics m_dist = ServerlessPlatform(dist).Run(trace);
  std::printf("%-14s %12s %12s %14s %12s\n", "backend", "cold starts", "dedup ops",
              "dedup starts", "reg entries");
  std::printf("%-14s %12lu %12lu %14lu %12zu\n", "centralized", m_central.TotalColdStarts(),
              m_central.dedup_ops, bench::TotalDedupStarts(m_central),
              m_central.registry.num_entries);
  std::printf("%-14s %12lu %12lu %14lu %12zu\n", "8 shards x3", m_dist.TotalColdStarts(),
              m_dist.dedup_ops, bench::TotalDedupStarts(m_dist), m_dist.registry.num_entries);
  std::printf("(identical scheduling outcomes: sharding only re-partitions the table)\n");

  bench::Section("Shard load balance under the live run");
  {
    DistributedRegistry reg(RegOpts(8, 3));
    // Re-drive the registry with the ten functions' base images.
    ClusterOptions copts;
    copts.num_nodes = 2;
    copts.node_memory_mb = 1e9;
    copts.bytes_per_mb = 16384;
    Cluster cluster(copts);
    RdmaFabric fabric({}, [&](const PageLocation& loc) { return cluster.ReadBasePage(loc); });
    DedupAgent agent(cluster, reg, fabric, {});
    for (const auto& p : FunctionBenchProfiles()) {
      Sandbox& sb = cluster.Spawn(p, NodeId{0}, SimTime{0});
      cluster.MarkWarm(sb, SimTime{0});
      agent.DesignateBase(sb);
    }
    for (const auto& p : FunctionBenchProfiles()) {
      Sandbox& sb = cluster.Spawn(p, NodeId{1}, SimTime{0});
      cluster.MarkWarm(sb, SimTime{0});
      agent.DedupOp(sb, SimTime{1});
    }
    const auto& stats = reg.distributed_stats();
    uint64_t min_l = ~0ull, max_l = 0;
    std::printf("per-shard lookups:");
    for (uint64_t l : stats.lookups_per_shard) {
      std::printf(" %lu", l);
      min_l = std::min(min_l, l);
      max_l = std::max(max_l, l);
    }
    std::printf("\nimbalance (max/min): %.2fx\n",
                min_l ? static_cast<double>(max_l) / static_cast<double>(min_l) : 0.0);
  }

  bench::Section("Fault tolerance: replica failures during dedup traffic");
  {
    DistributedRegistry reg(RegOpts(4, 3));
    ClusterOptions copts;
    copts.num_nodes = 2;
    copts.node_memory_mb = 1e9;
    copts.bytes_per_mb = 16384;
    Cluster cluster(copts);
    RdmaFabric fabric({}, [&](const PageLocation& loc) { return cluster.ReadBasePage(loc); });
    DedupAgent agent(cluster, reg, fabric, {});
    for (const auto& p : FunctionBenchProfiles()) {
      Sandbox& sb = cluster.Spawn(p, NodeId{0}, SimTime{0});
      cluster.MarkWarm(sb, SimTime{0});
      agent.DesignateBase(sb);
    }
    auto dedup_all = [&](const char* label) {
      size_t deduped = 0, total = 0;
      for (const auto& p : FunctionBenchProfiles()) {
        Sandbox& sb = cluster.Spawn(p, NodeId{1}, SimTime{0});
        cluster.MarkWarm(sb, SimTime{0});
        DedupOpResult d = agent.DedupOp(sb, SimTime{1});
        deduped += d.pages_deduped;
        total += d.pages_total;
        RestoreOpResult r = agent.RestoreOp(sb, SimTime{2}, /*verify=*/true);
        (void)r;
        cluster.Purge(sb.id);
      }
      std::printf("  %-28s dedup rate %.1f%% (restores byte-exact)\n", label,
                  100.0 * static_cast<double>(deduped) / static_cast<double>(total));
    };
    dedup_all("all replicas healthy:");
    reg.FailReplica(0, 2);
    reg.FailReplica(1, 2);
    dedup_all("two shard tails down:");
    reg.FailReplica(2, 0);
    reg.FailReplica(2, 1);
    reg.FailReplica(2, 2);
    dedup_all("one shard fully lost:");
    std::printf("  failovers observed: %lu, unavailable key-lookups: %lu\n",
                reg.distributed_stats().failovers, reg.distributed_stats().unavailable_lookups);
    reg.RecoverReplica(2, 0);
    dedup_all("shard still lost (no peer):");
  }
  return 0;
}
