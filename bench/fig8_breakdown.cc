// Figure 8 — dedup start time breakdown vs cold start times (Section 7.2.1).
//
// For each FunctionBench function: designate a same-function base, dedup a
// second sandbox, restore it, and report the three restore phases the paper
// plots — base page reading (RDMA), original page computing (patch apply),
// and sandbox restoration (CRIU) — against the function's cold start.
// Paper expectation: dedup starts are consistently far below cold starts
// (roughly 100-600 ms vs 0.5-4 s), dominated by the CRIU restore phase.
#include <cstdio>

#include "bench_util.h"

using namespace medes;

int main() {
  bench::Header("Figure 8: dedup start breakdown vs cold starts",
                "Per-function restore phases at represented scale");
  ClusterOptions copts;
  copts.num_nodes = 2;
  copts.node_memory_mb = 1e9;  // no pressure: isolate the op timings
  copts.bytes_per_mb = 65536;
  Cluster cluster(copts);
  FingerprintRegistry registry;
  RdmaFabric fabric({}, [&](const PageLocation& loc) { return cluster.ReadBasePage(loc); });
  DedupAgent agent(cluster, registry, fabric, {});

  for (const auto& p : FunctionBenchProfiles()) {
    Sandbox& base = cluster.Spawn(p, NodeId{0}, SimTime{});
    cluster.MarkWarm(base, SimTime{});
    agent.DesignateBase(base);
  }

  std::printf("%-12s | %9s %10s %10s | %10s %9s | %7s\n", "function", "read(ms)", "compute(ms)",
              "restore(ms)", "dedup(ms)", "cold(ms)", "speedup");
  for (const auto& p : FunctionBenchProfiles()) {
    Sandbox& sb = cluster.Spawn(p, NodeId{1}, SimTime{});  // remote node: real RDMA reads
    cluster.MarkWarm(sb, SimTime{});
    agent.DedupOp(sb, SimTime{1});
    RestoreOpResult r = agent.RestoreOp(sb, SimTime{2}, /*verify=*/true);
    std::printf("%-12s | %9.1f %10.1f %10.1f | %10.1f %9.0f | %6.1fx\n", p.name.c_str(),
                ToMillis(r.read_base_time), ToMillis(r.compute_time),
                ToMillis(r.sandbox_restore_time), ToMillis(r.total_time), ToMillis(p.cold_start),
                static_cast<double>(p.cold_start.value()) /
                    static_cast<double>(r.total_time.value()));
  }
  std::printf("\n(every restore above was verified byte-exact against the original image)\n");
  std::printf("Restore-op optimisation (Section 4.2): pre-done namespace/process-tree work\n");
  CheckpointCosts costs;
  std::printf("  skipped per dedup start: %.0f ms (paper: 650 ms -> ~140 ms)\n",
              ToMillis(costs.namespace_and_ptree));
  return 0;
}
