// Figure 8 — dedup start time breakdown vs cold start times (Section 7.2.1),
// extended with the working-set-aware lazy restore comparison.
//
// Part 1 (per function): designate a same-function base, dedup a second
// sandbox, restore it eagerly, and report the three restore phases the paper
// plots — base page reading (RDMA), original page computing (patch apply),
// and sandbox restoration (CRIU) — against the function's cold start. Then
// the same cycle under lazy mode with a *trained* working set: the critical
// path shrinks to the predicted pages (batched fetch + partial CRIU) and the
// rest moves to demand faults and the background phase.
//
// Part 2 (cluster sweep): full platform runs on the cluster_scale workload at
// 10/50/100 worker nodes, one eager run and one lazy run per node count over
// the same trace, reporting P50/P99 critical-path restore latency, working-set
// hit rate, and background-fault volume. Emits BENCH_restore_latency.json
// (validated by scripts/check_bench_json.py); every sweep field is derived
// from simulation state only, so the JSON payload is byte-identical across
// MEDES_THREADS settings.
//
// Usage: fig8_breakdown [output.json]      (default: BENCH_restore_latency.json)
// Env:   MEDES_RESTORE_LATENCY_MODE=smoke  CI perf-smoke config (100-node
//                                          point only, short trace; same schema)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace medes;

namespace {

struct FunctionRow {
  const char* name = "";
  RestoreOpResult eager;
  RestoreOpResult lazy;  // trained working set
  BackgroundRestoreResult lazy_bg;
  SimDuration cold_start;
};

struct SweepRow {
  int nodes = 0;
  double rate_scale = 0;
  SimDuration duration;
  uint64_t requests = 0;
  uint64_t eager_restores = 0;
  uint64_t lazy_restores = 0;
  double eager_p50_ms = 0;
  double eager_p99_ms = 0;
  double lazy_p50_ms = 0;
  double lazy_p99_ms = 0;
  double ws_hit_rate = 0;
  uint64_t ws_fault_pages = 0;
  uint64_t background_completions = 0;
  uint64_t background_pages = 0;
};

// One dedup -> restore -> run cycle; returns the restore result.
RestoreOpResult Cycle(Cluster& cluster, DedupAgent& agent, Sandbox& sb, SimTime now,
                      BackgroundRestoreResult* bg) {
  agent.DedupOp(sb, now);
  RestoreOpResult r = agent.RestoreOp(sb, now + SimDuration{1}, /*verify=*/true);
  if (r.background_pending) {
    *bg = agent.CompleteBackgroundRestore(sb, now + SimDuration{2});
  }
  cluster.MarkRunning(sb, now + SimDuration{3});
  cluster.MarkWarm(sb, now + SimDuration{4});
  return r;
}

std::vector<FunctionRow> PerFunctionBreakdown() {
  ClusterOptions copts;
  copts.num_nodes = 2;
  copts.node_memory_mb = 1e9;  // no pressure: isolate the op timings
  copts.bytes_per_mb = 65536;
  Cluster cluster(copts);
  FingerprintRegistry registry;
  RdmaFabric fabric({}, [&](const PageLocation& loc) { return cluster.ReadBasePage(loc); });
  DedupAgentOptions eager_opts;
  eager_opts.restore_mode = RestoreMode::kEager;
  DedupAgent eager_agent(cluster, registry, fabric, eager_opts);
  DedupAgent lazy_agent(cluster, registry, fabric, {});  // default: lazy

  for (const auto& p : FunctionBenchProfiles()) {
    Sandbox& base = cluster.Spawn(p, NodeId{0}, SimTime{});
    cluster.MarkWarm(base, SimTime{});
    eager_agent.DesignateBase(base);
  }

  std::vector<FunctionRow> rows;
  for (const auto& p : FunctionBenchProfiles()) {
    FunctionRow row;
    row.name = p.name.c_str();
    row.cold_start = p.cold_start;
    // Remote node: real RDMA reads, as in the paper's testbed.
    Sandbox& sb = cluster.Spawn(p, NodeId{1}, SimTime{});
    cluster.MarkWarm(sb, SimTime{});
    BackgroundRestoreResult ignored;
    row.eager = Cycle(cluster, eager_agent, sb, SimTime{10}, &ignored);
    // Lazy cycle 1 trains the working set (unprofiled = full prefetch);
    // cycle 2 is the steady-state lazy restore the sweep below measures.
    (void)Cycle(cluster, lazy_agent, sb, SimTime{20}, &ignored);
    row.lazy = Cycle(cluster, lazy_agent, sb, SimTime{30}, &row.lazy_bg);
    rows.push_back(row);
  }
  return rows;
}

SweepRow RunSweepPoint(int nodes, SimDuration duration, RestoreMode mode, SweepRow row) {
  // Oversubscribed nodes (Section 7.4's pressure pools): pressure-driven
  // dedup keeps a steady population of dedup sandboxes, so the sweep
  // actually measures restore latency rather than warm-start luck.
  PlatformOptions options = bench::EvalOptions(PolicyKind::kMedes, /*node_memory_mb=*/1536);
  options.cluster.num_nodes = nodes;
  options.agent.restore_mode = mode;
  TraceOptions topts;
  topts.duration = duration;
  topts.rate_scale = row.rate_scale;
  const RunMetrics m = ServerlessPlatform(options).Run(GenerateTrace(DefaultAzurePatterns(), topts));
  const LazyRestoreStats& lz = m.lazy_restore;
  row.requests = m.TotalRequests();
  if (mode == RestoreMode::kEager) {
    row.eager_restores = lz.eager_restores;
    row.eager_p50_ms = lz.critical_path_ms.Empty() ? 0 : lz.critical_path_ms.Percentile(0.5);
    row.eager_p99_ms = lz.critical_path_ms.Empty() ? 0 : lz.critical_path_ms.Percentile(0.99);
  } else {
    row.lazy_restores = lz.lazy_restores;
    row.lazy_p50_ms = lz.critical_path_ms.Empty() ? 0 : lz.critical_path_ms.Percentile(0.5);
    row.lazy_p99_ms = lz.critical_path_ms.Empty() ? 0 : lz.critical_path_ms.Percentile(0.99);
    row.ws_hit_rate = lz.HitRate();
    row.ws_fault_pages = lz.ws_fault_pages;
    row.background_completions = lz.background_completions;
    row.background_pages = lz.background_pages;
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::StartWallClock();
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_restore_latency.json";
  const char* mode_env = std::getenv("MEDES_RESTORE_LATENCY_MODE");
  const bool smoke = mode_env != nullptr && std::string(mode_env) == "smoke";

  bench::Header("Figure 8: dedup start breakdown vs cold starts",
                "Per-function restore phases at represented scale, eager vs lazy");

  const std::vector<FunctionRow> rows = PerFunctionBreakdown();
  std::printf("%-12s | %9s %11s %11s | %10s %9s | %7s\n", "function", "read(ms)", "compute(ms)",
              "restore(ms)", "dedup(ms)", "cold(ms)", "speedup");
  for (const FunctionRow& r : rows) {
    std::printf("%-12s | %9.1f %11.1f %11.1f | %10.1f %9.0f | %6.1fx\n", r.name,
                ToMillis(r.eager.read_base_time), ToMillis(r.eager.compute_time),
                ToMillis(r.eager.sandbox_restore_time), ToMillis(r.eager.total_time),
                ToMillis(r.cold_start),
                static_cast<double>(r.cold_start.value()) /
                    static_cast<double>(r.eager.total_time.value()));
  }
  std::printf("\n(every restore above was verified byte-exact against the original image)\n");

  bench::Section("Lazy restore, trained working set (critical path before resume)");
  std::printf("%-12s | %11s %9s | %7s %7s %7s | %7s\n", "function", "critical(ms)", "fault(ms)",
              "hit%", "faults", "bg_pages", "vs eager");
  for (const FunctionRow& r : rows) {
    const double hit_rate =
        r.lazy.ws_touched_pages == 0
            ? 1.0
            : static_cast<double>(r.lazy.ws_hit_pages) /
                  static_cast<double>(r.lazy.ws_touched_pages);
    std::printf("%-12s | %11.1f %9.1f | %6.0f%% %7zu %7zu | %6.1fx\n", r.name,
                ToMillis(r.lazy.critical_path_time), ToMillis(r.lazy.fault_time),
                100.0 * hit_rate, r.lazy.ws_fault_pages, r.lazy.background_pages,
                static_cast<double>(r.eager.total_time.value()) /
                    static_cast<double>(r.lazy.critical_path_time.value()));
  }

  std::printf("\nRestore-op optimisation (Section 4.2): pre-done namespace/process-tree work\n");
  CheckpointCosts costs;
  std::printf("  skipped per dedup start: %.0f ms (paper: 650 ms -> ~140 ms)\n",
              ToMillis(costs.namespace_and_ptree));

  // ---- Cluster sweep: critical-path restore latency vs node count --------
  bench::Section(smoke ? "Cluster sweep (smoke)" : "Cluster sweep (full)");
  std::vector<int> node_counts = smoke ? std::vector<int>{100} : std::vector<int>{10, 50, 100};
  const SimDuration duration = smoke ? 10 * kMinute : 30 * kMinute;
  std::vector<SweepRow> sweep;
  for (int nodes : node_counts) {
    SweepRow row;
    row.nodes = nodes;
    row.duration = duration;
    // Request rate scales with cluster size, as in bench/cluster_scale.
    row.rate_scale = 5.0 * static_cast<double>(nodes) / 19.0;
    row = RunSweepPoint(nodes, duration, RestoreMode::kEager, row);
    row = RunSweepPoint(nodes, duration, RestoreMode::kLazy, row);
    sweep.push_back(row);
    std::printf("nodes=%-3d restores eager/lazy=%" PRIu64 "/%" PRIu64
                "  P99 eager=%.1fms lazy=%.1fms (%.2fx)  hit=%.0f%%  bg_pages=%" PRIu64 "\n",
                row.nodes, row.eager_restores, row.lazy_restores, row.eager_p99_ms,
                row.lazy_p99_ms,
                row.lazy_p99_ms > 0 ? row.eager_p99_ms / row.lazy_p99_ms : 0.0,
                100.0 * row.ws_hit_rate, row.background_pages);
  }

  bench::JsonWriter w;
  w.BeginObject();
  bench::WriteMetadata(w, "restore_latency");
  w.Field("mode", smoke ? "smoke" : "full");
  w.BeginArray("per_function");
  for (const FunctionRow& r : rows) {
    w.BeginObject()
        .Field("function", r.name)
        .Field("eager_total_ms", ToMillis(r.eager.total_time), 3)
        .Field("lazy_critical_ms", ToMillis(r.lazy.critical_path_time), 3)
        .Field("lazy_fault_ms", ToMillis(r.lazy.fault_time), 3)
        .Field("lazy_background_pages", static_cast<uint64_t>(r.lazy.background_pages))
        .Field("cold_start_ms", ToMillis(r.cold_start), 3)
        .EndObject();
  }
  w.EndArray();
  w.BeginArray("sweep");
  for (const SweepRow& r : sweep) {
    w.BeginObject()
        .Field("nodes", r.nodes)
        .Field("rate_scale", r.rate_scale, 3)
        .Field("trace_duration_s", ToSeconds(r.duration), 1)
        .Field("requests", r.requests)
        .Field("eager_restores", r.eager_restores)
        .Field("lazy_restores", r.lazy_restores)
        .Field("eager_p50_ms", r.eager_p50_ms, 3)
        .Field("eager_p99_ms", r.eager_p99_ms, 3)
        .Field("lazy_p50_ms", r.lazy_p50_ms, 3)
        .Field("lazy_p99_ms", r.lazy_p99_ms, 3)
        .Field("lazy_p99_speedup", r.lazy_p99_ms > 0 ? r.eager_p99_ms / r.lazy_p99_ms : 0.0, 3)
        .Field("ws_hit_rate", r.ws_hit_rate, 4)
        .Field("ws_fault_pages", r.ws_fault_pages)
        .Field("background_completions", r.background_completions)
        .Field("background_pages", r.background_pages)
        .EndObject();
  }
  w.EndArray();
  w.EndObject();
  if (!bench::WriteTextFile(out_path, w.str() + "\n")) {
    return 1;
  }
  return 0;
}
