// Figure 10 — cold starts under memory pressure (Section 7.4).
//
// The full workload replayed at three cluster pool sizes (the paper's 40 GB,
// 30 GB, 20 GB, realised as 19 nodes x 2048/1536/1024 MB). The paper reports
// Medes's cold-start advantage over fixed keep-alive growing from 22% (no
// pressure) to 37% and 40.67% under pressure, and ~52% vs adaptive
// keep-alive throughout.
#include <cstdio>

#include "bench_util.h"

using namespace medes;

int main() {
  bench::Header("Figure 10: cold starts under memory pressure",
                "Pool sweep (paper 40:30:20): 38 / 28.5 / 19 GB across 19 worker nodes");
  auto trace = bench::FullWorkload(30 * kMinute);

  struct PoolResult {
    double node_mb;
    RunMetrics fixed, adaptive, medes;
  };
  std::vector<PoolResult> results;
  for (double node_mb : {2048.0, 1536.0, 1024.0}) {
    PoolResult r{node_mb,
                 ServerlessPlatform(bench::EvalOptions(PolicyKind::kFixedKeepAlive, node_mb))
                     .Run(trace),
                 ServerlessPlatform(bench::EvalOptions(PolicyKind::kAdaptiveKeepAlive, node_mb))
                     .Run(trace),
                 ServerlessPlatform(bench::EvalOptions(PolicyKind::kMedes, node_mb)).Run(trace)};
    results.push_back(std::move(r));
  }

  bench::Section("Fig 10a: total cold starts per cluster pool size");
  std::printf("%-10s %8s %9s %8s | %10s %10s\n", "pool", "fixed", "adaptive", "medes",
              "vs fixed", "vs adaptive");
  for (const auto& r : results) {
    double pool_gb = r.node_mb * 19 / 1024.0;
    uint64_t med = r.medes.TotalColdStarts();
    std::printf("%7.1fG %8lu %9lu %8lu | %9.1f%% %9.1f%%\n", pool_gb,
                r.fixed.TotalColdStarts(), r.adaptive.TotalColdStarts(), med,
                r.fixed.TotalColdStarts()
                    ? 100.0 * (static_cast<double>(r.fixed.TotalColdStarts()) -
                               static_cast<double>(med)) /
                          static_cast<double>(r.fixed.TotalColdStarts())
                    : 0.0,
                r.adaptive.TotalColdStarts()
                    ? 100.0 * (static_cast<double>(r.adaptive.TotalColdStarts()) -
                               static_cast<double>(med)) /
                          static_cast<double>(r.adaptive.TotalColdStarts())
                    : 0.0);
  }
  std::printf("(paper: medes advantage vs fixed grows 22%% -> 37%% -> 40.67%% with pressure;\n"
              " ~52%% vs adaptive throughout)\n");

  for (size_t i = 1; i < results.size(); ++i) {
    const auto& r = results[i];
    bench::Section(std::string("Fig 10b: per-function cold starts under ") +
                   (i == 1 ? "30G" : "20G"));
    std::printf("%-12s %8s %9s %8s\n", "function", "fixed", "adaptive", "medes");
    for (const auto& p : FunctionBenchProfiles()) {
      auto f = static_cast<size_t>(p.id);
      std::printf("%-12s %8lu %9lu %8lu\n", p.name.c_str(), r.fixed.per_function[f].cold_starts,
                  r.adaptive.per_function[f].cold_starts, r.medes.per_function[f].cold_starts);
    }
  }

  bench::Section("Sandboxes kept in memory under pressure");
  for (const auto& r : results) {
    std::printf("%7.1fG: fixed=%.1f adaptive=%.1f medes=%.1f (mean resident sandboxes)\n",
                r.node_mb * 19 / 1024.0, r.fixed.MeanSandboxesInMemory(),
                r.adaptive.MeanSandboxesInMemory(), r.medes.MeanSandboxesInMemory());
  }
  std::printf("(paper: under extreme pressure medes keeps 42.98%%/55.7%% more sandboxes)\n");
  return 0;
}
