// Figure 9 — cluster memory usage while meeting latency targets (Section 7.3).
//
// Medes runs with the memory objective (P2) under a latency bound of
// alpha = 2.5; the keep-alive baselines have no latency-bound mechanism.
// The paper reports Medes using 11.4% less memory on average than fixed
// keep-alive at the same latency targets, adaptive keep-alive using less
// memory still but paying >= 50% more cold starts, and up to 1.58x fewer
// cold starts vs fixed keep-alive.
#include <cstdio>

#include "bench_util.h"

using namespace medes;

int main() {
  bench::Header("Figure 9: memory usage while meeting latency targets",
                "Full workload; Medes memory objective (P2), alpha-bound 2.5");
  auto trace = bench::FullWorkload(30 * kMinute);

  PlatformOptions medes_opts = bench::EvalOptions(PolicyKind::kMedes);
  medes_opts.medes.objective = PolicyObjective::kMemory;
  medes_opts.medes.alpha = 2.5;
  // P2 budget: comfortably below the all-warm usage so the cap binds.
  medes_opts.medes.cluster_memory_cap_mb = 0.6 * 19 * 2048;

  RunMetrics medes = ServerlessPlatform(medes_opts).Run(trace);
  RunMetrics fixed =
      ServerlessPlatform(bench::EvalOptions(PolicyKind::kFixedKeepAlive)).Run(trace);
  RunMetrics adaptive =
      ServerlessPlatform(bench::EvalOptions(PolicyKind::kAdaptiveKeepAlive)).Run(trace);

  bench::Section("Fig 9a: cluster memory usage (GB)");
  std::printf("%-22s %10s %10s\n", "policy", "mean", "median");
  std::printf("%-22s %10.2f %10.2f\n", "Medes (P2)", medes.MeanMemoryMb() / 1024.0,
              medes.MedianMemoryMb() / 1024.0);
  std::printf("%-22s %10.2f %10.2f\n", "Fixed Keep-Alive", fixed.MeanMemoryMb() / 1024.0,
              fixed.MedianMemoryMb() / 1024.0);
  std::printf("%-22s %10.2f %10.2f\n", "Adaptive Keep-Alive", adaptive.MeanMemoryMb() / 1024.0,
              adaptive.MedianMemoryMb() / 1024.0);
  std::printf("Medes vs fixed keep-alive: %.1f%% less memory on average (paper: 11.4%%)\n",
              100.0 * (fixed.MeanMemoryMb() - medes.MeanMemoryMb()) / fixed.MeanMemoryMb());

  bench::Section("Fig 9b: per-function cold starts");
  std::printf("%-12s %8s %8s %8s\n", "function", "fixed", "adaptive", "medes");
  for (const auto& p : FunctionBenchProfiles()) {
    auto f = static_cast<size_t>(p.id);
    std::printf("%-12s %8lu %8lu %8lu\n", p.name.c_str(), fixed.per_function[f].cold_starts,
                adaptive.per_function[f].cold_starts, medes.per_function[f].cold_starts);
  }
  std::printf("\ntotals: fixed=%lu adaptive=%lu medes=%lu\n", fixed.TotalColdStarts(),
              adaptive.TotalColdStarts(), medes.TotalColdStarts());
  std::printf("adaptive vs medes cold starts: +%.0f%% (paper: adaptive incurs >= 50%% more)\n",
              medes.TotalColdStarts() ? 100.0 *
                      (static_cast<double>(adaptive.TotalColdStarts()) -
                       static_cast<double>(medes.TotalColdStarts())) /
                      static_cast<double>(medes.TotalColdStarts())
                                      : 0.0);
  std::printf("fixed vs medes cold starts   : %.2fx (paper: up to 1.58x)\n",
              medes.TotalColdStarts() ? static_cast<double>(fixed.TotalColdStarts()) /
                                            static_cast<double>(medes.TotalColdStarts())
                                      : 0.0);
  return 0;
}
