// Figure 14 — sensitivity to the RSC chunk size (Section 7.8).
//
// Chunk sizes 32/64/128 B on the representative workload. The paper reports
// 64 B best: 128 B finds less redundancy (savings drop 28.8 -> 22.8 MB per
// sandbox), while 32 B suffers fingerprint-table collisions that mislabel
// dissimilar chunks as similar (average patch grows 611 B -> 940 B). We model
// the 32 B collision effect with a truncated registry key (the table's
// effective key width shrinks as chunks — and the sampled-hash name space —
// get smaller).
#include <cstdio>

#include "bench_util.h"

using namespace medes;

int main() {
  bench::Header("Figure 14: sensitivity to chunk size",
                "Representative workload; chunk in {32, 64, 128} B");
  auto trace = bench::RepresentativeWorkload(30 * kMinute);

  std::printf("%-8s %12s %16s %14s %12s\n", "chunk", "cold starts", "savings/sandbox",
              "avg patch(B)", "dedup ops");
  for (size_t chunk : {32u, 64u, 128u}) {
    PlatformOptions opts = bench::RepresentativeOptions(PolicyKind::kMedes);
    opts.agent.fingerprint.chunk_size = chunk;
    if (chunk == 32) {
      // Collision model: smaller chunks hash into a narrower effective key
      // space, so dissimilar chunks alias in the fingerprint table.
      opts.agent.fingerprint.key_bits = 12;
    }
    RunMetrics m = ServerlessPlatform(opts).Run(trace);
    double saved_mb = 0;
    uint64_t ops = 0, patch_bytes = 0, pages = 0;
    for (const auto& f : m.per_function) {
      saved_mb += f.total_saved_mb;
      ops += f.dedup_ops;
      patch_bytes += f.total_patch_bytes;
      pages += f.total_pages_deduped;
    }
    std::printf("%5zuB %13lu %13.1f MB %14.0f %12lu\n", chunk, m.TotalColdStarts(),
                ops ? saved_mb / static_cast<double>(ops) : 0.0,
                pages ? static_cast<double>(patch_bytes) / static_cast<double>(pages) : 0.0, ops);
  }
  std::printf("\n(paper: 64B best; 128B drops savings 28.8->22.8 MB/sandbox causing evictions\n"
              " and more cold starts; 32B suffers collisions, patch 611->940 B)\n");
  return 0;
}
