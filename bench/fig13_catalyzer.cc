// Figure 13 — Medes + optimised checkpoint-restore (Section 7.6).
//
// Emulates Catalyzer's sandbox-template method: every cold start becomes a
// snapshot restore (no environment initialisation). Replaying the
// representative workload with and without Medes on top shows that memory
// deduplication composes with snapshot-restore optimisations: Medes shrinks
// idle footprints, so fewer (now-cheap) restores are needed at all.
#include <cstdio>

#include "bench_util.h"

using namespace medes;

int main() {
  bench::Header("Figure 13: emulated Catalyzer with and without Medes",
                "All cold starts replaced by snapshot restores (150 ms)");
  auto trace = bench::RepresentativeWorkload(30 * kMinute);

  PlatformOptions cat = bench::RepresentativeOptions(PolicyKind::kFixedKeepAlive);
  cat.emulate_catalyzer = true;
  PlatformOptions cat_medes = bench::RepresentativeOptions(PolicyKind::kMedes);
  cat_medes.emulate_catalyzer = true;

  RunMetrics m_cat = ServerlessPlatform(cat).Run(trace);
  RunMetrics m_both = ServerlessPlatform(cat_medes).Run(trace);

  std::printf("%-26s %14s %12s %12s\n", "configuration", "cold(restore)", "dedup starts",
              "p999 ms (ModelTrain)");
  std::printf("%-26s %14lu %12lu %12.0f\n", "Emulated Catalyzer", m_cat.TotalColdStarts(),
              bench::TotalDedupStarts(m_cat),
              m_cat.per_function[9].e2e_ms.Percentile(0.999));
  std::printf("%-26s %14lu %12lu %12.0f\n", "Emulated Catalyzer + Medes",
              m_both.TotalColdStarts(), bench::TotalDedupStarts(m_both),
              m_both.per_function[9].e2e_ms.Percentile(0.999));
  std::printf("\ncold-start (restore) reduction: %.1f%%\n",
              m_cat.TotalColdStarts()
                  ? 100.0 * (static_cast<double>(m_cat.TotalColdStarts()) -
                             static_cast<double>(m_both.TotalColdStarts())) /
                        static_cast<double>(m_cat.TotalColdStarts())
                  : 0.0);
  std::printf("dedup transitions with Medes: %lu across %lu spawned sandboxes (%.2f per\n"
              "sandbox; the paper reports 42.8%% of sandboxes deduplicated)\n",
              m_both.sandboxes_deduped, m_both.sandboxes_spawned,
              m_both.sandboxes_spawned ? static_cast<double>(m_both.sandboxes_deduped) /
                                             static_cast<double>(m_both.sandboxes_spawned)
                                       : 0.0);
  return 0;
}
