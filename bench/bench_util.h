// Shared helpers for the paper-reproduction benchmarks.
//
// Every binary in bench/ regenerates one table or figure from the paper's
// evaluation (Section 7). Output convention: a header naming the experiment,
// the parameters used, then rows mirroring the paper's axes, with the paper's
// reported values quoted alongside where applicable. EXPERIMENTS.md records
// the paper-vs-measured comparison for each.
#ifndef MEDES_BENCH_BENCH_UTIL_H_
#define MEDES_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cinttypes>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/kernels/cpu_features.h"
#include "medes.h"

namespace medes::bench {

inline void Header(const std::string& title, const std::string& subtitle) {
  std::printf("==============================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("%s\n", subtitle.c_str());
  std::printf("==============================================================================\n");
}

inline void Section(const std::string& name) {
  std::printf("\n--- %s ---\n", name.c_str());
}

// The evaluation cluster: 20 CloudLab nodes, one of which is the controller
// (Section 7.1) => 19 workers. The paper caps per-node memory in software at
// 2 GB to oversubscribe the cluster (Section 7.2); the workload generator is
// calibrated so the full workload demands ~21 GB unconstrained, which
// oversubscribes the 40:30:20 pressure pools exactly as in Section 7.4.
inline PlatformOptions EvalOptions(PolicyKind policy, double node_memory_mb = 2048) {
  PlatformOptions options = MakePlatformOptions(policy);
  options.cluster.num_nodes = 19;
  options.cluster.node_memory_mb = node_memory_mb;
  options.cluster.bytes_per_mb = 8192;
  options.medes.idle_period = 30 * kSecond;
  options.medes.keep_dedup = 15 * kMinute;
  options.fixed_keep_alive = 10 * kMinute;
  // Loose enough that dedup pays off while the bound still binds; the tight
  // alpha = 2.5 from Section 7.3 is used by fig9_memory explicitly.
  options.medes.alpha = 20.0;
  return options;
}

// The full multi-function workload (Section 7.1): every FunctionBench
// function driven by an Azure-like arrival pattern, magnified 5x.
inline std::vector<TraceEvent> FullWorkload(SimDuration duration, uint64_t seed = 0xa22e) {
  TraceOptions topts;
  topts.duration = duration;
  topts.rate_scale = 5.0;
  topts.seed = seed;
  return GenerateTrace(DefaultAzurePatterns(), topts);
}

// The smaller representative workload of Section 7.5 ({LinAlg, FeatureGen,
// ModelTrain}), used for the microbenchmarks and sensitivity analyses. The
// bursty functions' OFF periods are stretched so inter-burst gaps straddle
// the keep-alive horizon — the regime where keep-alive tuning (Fig. 12) and
// the keep-dedup period (Fig. 15) actually bind.
inline std::vector<TraceEvent> RepresentativeWorkload(SimDuration duration,
                                                      uint64_t seed = 0xa22e) {
  TraceOptions topts;
  topts.duration = duration;
  topts.rate_scale = 5.0;
  topts.seed = seed;
  auto patterns = PatternsForFunctions({"LinAlg", "FeatureGen", "ModelTrain"});
  for (ArrivalPattern& p : patterns) {
    if (p.kind == ArrivalKind::kBursty) {
      p.mean_off = SimDuration{
          static_cast<int64_t>(2.5 * static_cast<double>(p.mean_off.value()))};
    }
  }
  return GenerateTrace(patterns, topts);
}

// Representative runs need a smaller cluster so memory effects show: three
// functions on the full 38 GB pool would never feel pressure. 4 x 3 GB sits
// between the 10- and 20-minute keep-alive demands, so keep-alive tuning and
// the dedup knobs actually bind.
inline PlatformOptions RepresentativeOptions(PolicyKind policy, double node_memory_mb = 3072) {
  PlatformOptions options = EvalOptions(policy, node_memory_mb);
  options.cluster.num_nodes = 4;
  return options;
}

// ---------------------------------------------------------------------------
// JSON output
//
// Benchmarks that CI ingests emit one JSON document through this builder
// instead of hand-rolled printf JSON: it tracks nesting and commas, escapes
// strings, and always leads with a common metadata block so every artifact
// self-describes the configuration that produced it.
// ---------------------------------------------------------------------------

class JsonWriter {
 public:
  JsonWriter& BeginObject(std::string_view key = {}) { return Open('{', key); }
  JsonWriter& EndObject() { return Close('}'); }
  JsonWriter& BeginArray(std::string_view key = {}) { return Open('[', key); }
  JsonWriter& EndArray() { return Close(']'); }

  JsonWriter& Field(std::string_view key, std::string_view value) {
    Prefix(key);
    AppendEscaped(value);
    return *this;
  }
  JsonWriter& Field(std::string_view key, const char* value) {
    return Field(key, std::string_view(value));
  }
  JsonWriter& Field(std::string_view key, bool value) {
    Prefix(key);
    out_ += value ? "true" : "false";
    return *this;
  }
  JsonWriter& Field(std::string_view key, double value, int precision = 2) {
    Prefix(key);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    out_ += buf;
    return *this;
  }
  template <typename T>
    requires std::is_integral_v<T>
  JsonWriter& Field(std::string_view key, T value) {
    Prefix(key);
    char buf[32];
    if constexpr (std::is_signed_v<T>) {
      std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<int64_t>(value));
    } else {
      std::snprintf(buf, sizeof(buf), "%" PRIu64, static_cast<uint64_t>(value));
    }
    out_ += buf;
    return *this;
  }
  // Bare array element (no key).
  template <typename T>
  JsonWriter& Value(T value) {
    return Field({}, value);
  }
  JsonWriter& Value(double value, int precision) { return Field({}, value, precision); }

  const std::string& str() const { return out_; }

 private:
  JsonWriter& Open(char bracket, std::string_view key) {
    Prefix(key);
    out_ += bracket;
    need_comma_ = false;
    return *this;
  }
  JsonWriter& Close(char bracket) {
    out_ += bracket;
    need_comma_ = true;
    return *this;
  }
  void Prefix(std::string_view key) {
    if (need_comma_) {
      out_ += ',';
    }
    need_comma_ = true;
    if (!key.empty()) {
      AppendEscaped(key);
      out_ += ':';
    }
  }
  void AppendEscaped(std::string_view s) {
    out_ += '"';
    for (char c : s) {
      switch (c) {
        case '"':
          out_ += "\\\"";
          break;
        case '\\':
          out_ += "\\\\";
          break;
        case '\n':
          out_ += "\\n";
          break;
        default:
          out_ += c;
      }
    }
    out_ += '"';
  }

  std::string out_;
  bool need_comma_ = false;
};

inline const char* SanitizerName() {
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
  return "address";
#elif __has_feature(thread_sanitizer)
  return "thread";
#endif
#endif
#if defined(__SANITIZE_ADDRESS__)
  return "address";
#elif defined(__SANITIZE_THREAD__)
  return "thread";
#else
  return "none";
#endif
}

// Process-wide wall clock, anchored at the first call (static init order is
// irrelevant: benches call WallSeconds via WriteMetadata at the end of main).
inline double WallSeconds() {
  static const auto start = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// Arms the WallSeconds anchor; call first thing in main so wall_seconds
// covers the whole run, not just the stretch since the first metadata write.
inline void StartWallClock() { (void)WallSeconds(); }

// The common metadata block every bench JSON leads with: which benchmark,
// which thread/kernel/sanitizer configuration, whether observability was
// live while it ran (obs skews timings, so artifacts must say so), and how
// much wall time / simulation-event throughput the process accumulated.
inline void WriteMetadata(JsonWriter& w, std::string_view bench_name) {
  const char* threads_env = std::getenv("MEDES_THREADS");
  const double wall_s = WallSeconds();
  const uint64_t fired = TotalSimEventsFired();
  w.BeginObject("metadata")
      .Field("bench", bench_name)
      .Field("medes_threads", threads_env != nullptr ? threads_env : "default")
      .Field("kernel_tier", kernels::TierName(kernels::MaxSupportedTier()))
      .Field("sanitizer", SanitizerName())
      .Field("trace_enabled", obs::TraceEnabled())
      .Field("metrics_enabled", obs::MetricsEnabled())
      .Field("wall_seconds", wall_s, 3)
      .Field("sim_events_fired", fired)
      .Field("sim_events_per_sec", wall_s > 0 ? static_cast<double>(fired) / wall_s : 0.0, 1)
      .EndObject();
}

inline bool WriteTextFile(const std::string& path, const std::string& content) {
  if (!obs::WriteFile(path, content)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  // stderr: several benches pipe pure JSON through stdout.
  std::fprintf(stderr, "(written to %s)\n", path.c_str());
  return true;
}

// Drains the observability singletons into files next to the bench output
// when tracing/metrics are enabled (MEDES_TRACE / MEDES_METRICS):
//   <dir>/<bench>_trace.json   Chrome trace-event JSON (load in Perfetto)
//   <dir>/<bench>.prom         Prometheus text exposition
//   <dir>/<bench>_metrics.json metrics snapshot as JSON
// <dir> comes from MEDES_OBS_DIR (default: current directory).
inline void ExportObservability(std::string_view bench_name) {
  const char* dir_env = std::getenv("MEDES_OBS_DIR");
  const std::string prefix =
      (dir_env != nullptr ? std::string(dir_env) + "/" : std::string()) + std::string(bench_name);
  if (obs::TraceEnabled()) {
    WriteTextFile(prefix + "_trace.json", obs::ChromeTraceJson(obs::Tracer::Default().Drain()));
  }
  if (obs::MetricsEnabled()) {
    const auto snapshot = obs::MetricsRegistry::Default().Snapshot();
    WriteTextFile(prefix + ".prom", obs::PrometheusText(snapshot));
    WriteTextFile(prefix + "_metrics.json", obs::MetricsJson(snapshot));
  }
}

inline uint64_t TotalDedupStarts(const RunMetrics& m) {
  uint64_t total = 0;
  for (const auto& f : m.per_function) {
    total += f.dedup_starts;
  }
  return total;
}

inline uint64_t TotalWarmStarts(const RunMetrics& m) {
  uint64_t total = 0;
  for (const auto& f : m.per_function) {
    total += f.warm_starts;
  }
  return total;
}

}  // namespace medes::bench

#endif  // MEDES_BENCH_BENCH_UTIL_H_
