// Shared helpers for the paper-reproduction benchmarks.
//
// Every binary in bench/ regenerates one table or figure from the paper's
// evaluation (Section 7). Output convention: a header naming the experiment,
// the parameters used, then rows mirroring the paper's axes, with the paper's
// reported values quoted alongside where applicable. EXPERIMENTS.md records
// the paper-vs-measured comparison for each.
#ifndef MEDES_BENCH_BENCH_UTIL_H_
#define MEDES_BENCH_BENCH_UTIL_H_

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "medes.h"

namespace medes::bench {

inline void Header(const std::string& title, const std::string& subtitle) {
  std::printf("==============================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("%s\n", subtitle.c_str());
  std::printf("==============================================================================\n");
}

inline void Section(const std::string& name) {
  std::printf("\n--- %s ---\n", name.c_str());
}

// The evaluation cluster: 20 CloudLab nodes, one of which is the controller
// (Section 7.1) => 19 workers. The paper caps per-node memory in software at
// 2 GB to oversubscribe the cluster (Section 7.2); the workload generator is
// calibrated so the full workload demands ~21 GB unconstrained, which
// oversubscribes the 40:30:20 pressure pools exactly as in Section 7.4.
inline PlatformOptions EvalOptions(PolicyKind policy, double node_memory_mb = 2048) {
  PlatformOptions options = MakePlatformOptions(policy);
  options.cluster.num_nodes = 19;
  options.cluster.node_memory_mb = node_memory_mb;
  options.cluster.bytes_per_mb = 8192;
  options.medes.idle_period = 30 * kSecond;
  options.medes.keep_dedup = 15 * kMinute;
  options.fixed_keep_alive = 10 * kMinute;
  // Loose enough that dedup pays off while the bound still binds; the tight
  // alpha = 2.5 from Section 7.3 is used by fig9_memory explicitly.
  options.medes.alpha = 20.0;
  return options;
}

// The full multi-function workload (Section 7.1): every FunctionBench
// function driven by an Azure-like arrival pattern, magnified 5x.
inline std::vector<TraceEvent> FullWorkload(SimDuration duration, uint64_t seed = 0xa22e) {
  TraceOptions topts;
  topts.duration = duration;
  topts.rate_scale = 5.0;
  topts.seed = seed;
  return GenerateTrace(DefaultAzurePatterns(), topts);
}

// The smaller representative workload of Section 7.5 ({LinAlg, FeatureGen,
// ModelTrain}), used for the microbenchmarks and sensitivity analyses. The
// bursty functions' OFF periods are stretched so inter-burst gaps straddle
// the keep-alive horizon — the regime where keep-alive tuning (Fig. 12) and
// the keep-dedup period (Fig. 15) actually bind.
inline std::vector<TraceEvent> RepresentativeWorkload(SimDuration duration,
                                                      uint64_t seed = 0xa22e) {
  TraceOptions topts;
  topts.duration = duration;
  topts.rate_scale = 5.0;
  topts.seed = seed;
  auto patterns = PatternsForFunctions({"LinAlg", "FeatureGen", "ModelTrain"});
  for (ArrivalPattern& p : patterns) {
    if (p.kind == ArrivalKind::kBursty) {
      p.mean_off = static_cast<SimDuration>(2.5 * static_cast<double>(p.mean_off));
    }
  }
  return GenerateTrace(patterns, topts);
}

// Representative runs need a smaller cluster so memory effects show: three
// functions on the full 38 GB pool would never feel pressure. 4 x 3 GB sits
// between the 10- and 20-minute keep-alive demands, so keep-alive tuning and
// the dedup knobs actually bind.
inline PlatformOptions RepresentativeOptions(PolicyKind policy, double node_memory_mb = 3072) {
  PlatformOptions options = EvalOptions(policy, node_memory_mb);
  options.cluster.num_nodes = 4;
  return options;
}

inline uint64_t TotalDedupStarts(const RunMetrics& m) {
  uint64_t total = 0;
  for (const auto& f : m.per_function) {
    total += f.dedup_starts;
  }
  return total;
}

inline uint64_t TotalWarmStarts(const RunMetrics& m) {
  uint64_t total = 0;
  for (const auto& f : m.per_function) {
    total += f.warm_starts;
  }
  return total;
}

}  // namespace medes::bench

#endif  // MEDES_BENCH_BENCH_UTIL_H_
