// Network-model benchmark: per-message-type traffic and latency through the
// unified cluster transport, healthy and under fault injection.
//
// Drives a full dedup + restore workload (a base per function, then three
// rounds of victims across the worker nodes) against a distributed registry
// and an RDMA fabric sharing one Transport, twice: once healthy, once with
// registry replicas partitioned off the network (shard 0 loses its tail —
// reads fail over down the chain; shard 1 loses every replica — its lookups
// go unavailable and its writes are dropped). The pipeline must keep running
// either way: dedup degrades to fewer candidates, restores keep reading base
// pages over the data plane.
//
// Output: a human-readable summary on stdout plus a JSON document (stdout,
// and to a file when a path is given as argv[1]) with per-message-type
// message/request/byte/drop counts, mean and max modelled latency, and the
// power-of-two latency histogram — the artifact CI uploads.
#include <cstdio>
#include <memory>
#include <string>

#include "bench_util.h"

using namespace medes;

namespace {

struct RunSummary {
  TransportStats transport;
  DistributedRegistryStats registry;
  uint64_t dedup_ops = 0;
  uint64_t restores = 0;
  uint64_t pages_deduped = 0;
  SimDuration total_lookup_time;
  SimDuration total_restore_time;
};

RunSummary RunOnce(bool partitioned) {
  ClusterOptions copts;
  copts.num_nodes = 4;
  copts.node_memory_mb = 1e9;  // no pressure: isolate the wire traffic
  copts.bytes_per_mb = 16384;
  Cluster cluster(copts);

  auto transport = std::make_shared<Transport>();
  DistributedRegistryOptions dopts;
  dopts.num_shards = 4;
  dopts.replication_factor = 3;
  DistributedRegistry registry(dopts, transport);
  RdmaFabric fabric({.page_cache_capacity = 512},
                    [&](const PageLocation& loc) { return cluster.ReadBasePage(loc); }, transport);
  DedupAgent agent(cluster, registry, fabric, {});

  if (partitioned) {
    auto policy = std::make_shared<StaticFaultPolicy>();
    // Shard 0: tail partitioned -> reads fail over to the middle replica.
    policy->PartitionNode(registry.ReplicaNode(0, dopts.replication_factor - 1));
    // Shard 1: every replica partitioned -> lookups unavailable, writes drop.
    for (int r = 0; r < dopts.replication_factor; ++r) {
      policy->PartitionNode(registry.ReplicaNode(1, r));
    }
    transport->InstallFaultPolicy(policy);
  }

  RunSummary summary;
  for (const auto& p : FunctionBenchProfiles()) {
    Sandbox& base = cluster.Spawn(p, NodeId{0}, SimTime{0});
    cluster.MarkWarm(base, SimTime{0});
    agent.DesignateBase(base);
  }
  for (int round = 0; round < 3; ++round) {
    for (const auto& p : FunctionBenchProfiles()) {
      Sandbox& sb = cluster.Spawn(p, NodeId{1 + round % 3}, SimTime{0});
      cluster.MarkWarm(sb, SimTime{0});
      DedupOpResult d = agent.DedupOp(sb, SimTime{1});
      ++summary.dedup_ops;
      summary.pages_deduped += d.pages_deduped;
      summary.total_lookup_time += d.lookup_time;
      RestoreOpResult r = agent.RestoreOp(sb, SimTime{2}, /*verify=*/true);
      ++summary.restores;
      summary.total_restore_time += r.total_time;
      cluster.Purge(sb.id);
    }
  }
  summary.transport = transport->stats();
  summary.registry = registry.distributed_stats();
  return summary;
}

void WriteRunJson(bench::JsonWriter& w, const char* name, const RunSummary& run) {
  w.BeginObject(name);
  w.BeginObject("by_type");
  for (size_t t = 0; t < kNumMessageTypes; ++t) {
    const MessageStats& ms = run.transport.by_type[t];
    w.BeginObject(ToString(static_cast<MessageType>(t)))
        .Field("messages", ms.messages)
        .Field("requests", ms.requests)
        .Field("bytes", ms.bytes)
        .Field("dropped", ms.dropped)
        .Field("mean_latency_us", ms.MeanLatency())
        .Field("max_latency_us", ms.max_latency.value());
    w.BeginArray("latency_histogram");
    for (size_t b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
      w.Value(ms.latency.Count(b));
    }
    w.EndArray().EndObject();
  }
  w.EndObject();
  w.Field("total_messages", run.transport.TotalMessages())
      .Field("total_bytes", run.transport.TotalBytes())
      .Field("total_dropped", run.transport.TotalDropped());
  w.BeginObject("registry")
      .Field("unavailable_lookups", run.registry.unavailable_lookups)
      .Field("dropped_writes", run.registry.dropped_writes)
      .Field("failovers", run.registry.failovers)
      .EndObject();
  w.Field("dedup_ops", run.dedup_ops)
      .Field("restores", run.restores)
      .Field("pages_deduped", run.pages_deduped)
      .Field("total_lookup_ms", ToMillis(run.total_lookup_time), 1)
      .Field("total_restore_ms", ToMillis(run.total_restore_time), 1)
      .EndObject();
}

std::string BuildJson(const RunSummary& healthy, const RunSummary& faulty) {
  bench::JsonWriter w;
  w.BeginObject();
  bench::WriteMetadata(w, "net_model");
  WriteRunJson(w, "healthy", healthy);
  WriteRunJson(w, "partitioned", faulty);
  w.EndObject();
  return w.str();
}

void PrintSummary(const char* name, const RunSummary& run) {
  bench::Section(name);
  std::printf("%-18s %10s %10s %12s %8s %10s %8s\n", "type", "messages", "requests", "bytes",
              "dropped", "mean(us)", "max(us)");
  for (size_t t = 0; t < kNumMessageTypes; ++t) {
    const MessageStats& ms = run.transport.by_type[t];
    std::printf("%-18s %10llu %10llu %12llu %8llu %10.2f %8lld\n",
                ToString(static_cast<MessageType>(t)),
                static_cast<unsigned long long>(ms.messages),
                static_cast<unsigned long long>(ms.requests),
                static_cast<unsigned long long>(ms.bytes),
                static_cast<unsigned long long>(ms.dropped), ms.MeanLatency(),
                static_cast<long long>(ms.max_latency.value()));
  }
  std::printf("registry: unavailable_lookups=%llu dropped_writes=%llu failovers=%llu\n",
              static_cast<unsigned long long>(run.registry.unavailable_lookups),
              static_cast<unsigned long long>(run.registry.dropped_writes),
              static_cast<unsigned long long>(run.registry.failovers));
  std::printf("ops: dedup=%llu restore=%llu pages_deduped=%llu lookup=%.1fms restore=%.1fms\n",
              static_cast<unsigned long long>(run.dedup_ops),
              static_cast<unsigned long long>(run.restores),
              static_cast<unsigned long long>(run.pages_deduped),
              ToMillis(run.total_lookup_time), ToMillis(run.total_restore_time));
}

}  // namespace

int main(int argc, char** argv) {
  bench::Header("Network model: per-message-type transport traffic",
                "Dedup + restore workload, distributed registry (4 shards x 3 replicas)");

  RunSummary healthy = RunOnce(/*partitioned=*/false);
  RunSummary faulty = RunOnce(/*partitioned=*/true);

  PrintSummary("Healthy cluster", healthy);
  PrintSummary("Partitioned: shard 0 tail + all of shard 1", faulty);

  bench::Section("JSON");
  const std::string json = BuildJson(healthy, faulty);
  std::printf("%s\n", json.c_str());
  if (argc > 1 && !bench::WriteTextFile(argv[1], json)) {
    return 1;
  }
  bench::ExportObservability("net_model");

  // The fault run must *degrade*, not fail: lookups lost to the dead shard,
  // reads still flowing and every restore still byte-exact.
  if (faulty.registry.unavailable_lookups == 0 || faulty.registry.failovers == 0) {
    std::fprintf(stderr, "expected the partition to degrade lookups\n");
    return 1;
  }
  if (faulty.restores != healthy.restores ||
      faulty.transport.For(MessageType::kBaseRead).messages == 0) {
    std::fprintf(stderr, "expected restores to keep flowing under partition\n");
    return 1;
  }
  if (faulty.pages_deduped >= healthy.pages_deduped) {
    std::fprintf(stderr, "expected fewer dedup candidates under partition\n");
    return 1;
  }
  return 0;
}
