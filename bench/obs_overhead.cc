// Observability overhead microbenchmark: what does MEDES_TRACE / MEDES_METRICS
// cost when off, and what does it cost when on?
//
//   micro  ns/op of the instrument hot paths — Counter::Add, Histogram::Record
//          and a ScopedSpan record — with the runtime knobs off and on. Off
//          must be a relaxed atomic load plus a predictable branch.
//   macro  pages/sec of the full dedup + restore pipeline (the
//          pipeline_throughput workload, one thread) under three settings:
//          obs fully disabled, metrics only, metrics + tracing.
//
// Emits one JSON document on stdout. MEDES_OBS_GATE_RATIO, when set to a
// positive number, turns the benchmark into a regression gate: the run fails
// if the runtime-disabled macro throughput is more than that factor above the
// metrics+trace throughput (i.e. obs-on costs more than the gate allows).
// CI passes a generous factor; timing noise on shared runners is real.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.h"

using namespace medes;

namespace {

volatile uint64_t g_sink = 0;

// ns/op of `body(iters)` amortised over enough iterations to dwarf the clock.
template <typename Body>
double MeasureNsPerOp(Body&& body) {
  constexpr size_t kIters = 1 << 20;
  body(1024);  // warm up
  const auto t0 = std::chrono::steady_clock::now();
  body(kIters);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() / static_cast<double>(kIters);
}

struct MicroResults {
  double counter_disabled_ns = 0;
  double counter_enabled_ns = 0;
  double histogram_enabled_ns = 0;
  double span_disabled_ns = 0;
  double span_enabled_ns = 0;
};

MicroResults RunMicro() {
  MicroResults r;
  obs::Counter& counter =
      obs::MetricsRegistry::Default().GetCounter("obs_overhead_counter_total", "bench");
  obs::Histogram& hist =
      obs::MetricsRegistry::Default().GetHistogram("obs_overhead_hist_us", "bench");

  obs::SetMetricsEnabled(false);
  r.counter_disabled_ns = MeasureNsPerOp([&](size_t iters) {
    for (size_t i = 0; i < iters; ++i) {
      counter.Add(1);
    }
    g_sink = g_sink + counter.Value();
  });
  obs::SetMetricsEnabled(true);
  r.counter_enabled_ns = MeasureNsPerOp([&](size_t iters) {
    for (size_t i = 0; i < iters; ++i) {
      counter.Add(1);
    }
    g_sink = g_sink + counter.Value();
  });
  r.histogram_enabled_ns = MeasureNsPerOp([&](size_t iters) {
    for (size_t i = 0; i < iters; ++i) {
      hist.Record(static_cast<int64_t>(i & 0xfff));
    }
    g_sink = g_sink + hist.TotalCount();
  });
  obs::SetMetricsEnabled(false);

  obs::SetTraceEnabled(false);
  r.span_disabled_ns = MeasureNsPerOp([&](size_t iters) {
    for (size_t i = 0; i < iters; ++i) {
      obs::ScopedSpan span("obs_overhead/span", "bench", SimTime{static_cast<int64_t>(i)});
      span.SetSimDuration(SimDuration{1});
    }
  });
  obs::SetTraceEnabled(true);
  r.span_enabled_ns = MeasureNsPerOp([&](size_t iters) {
    for (size_t i = 0; i < iters; ++i) {
      obs::ScopedSpan span("obs_overhead/span", "bench", SimTime{static_cast<int64_t>(i)});
      span.SetSimDuration(SimDuration{1});
    }
  });
  obs::SetTraceEnabled(false);
  obs::Tracer::Default().Clear();
  obs::MetricsRegistry::Default().ResetValues();
  return r;
}

// One pipeline pass: dedup then restore every victim; returns pages/sec.
double RunMacroOnce(int victims_per_function) {
  ClusterOptions copts;
  copts.num_nodes = 2;
  copts.node_memory_mb = 1e9;
  copts.bytes_per_mb = 65536;
  Cluster cluster(copts);
  FingerprintRegistry registry;
  RdmaFabric fabric({.page_cache_capacity = 4096},
                    [&](const PageLocation& loc) { return cluster.ReadBasePage(loc); });
  DedupAgentOptions aopts;
  aopts.num_threads = 1;
  DedupAgent agent(cluster, registry, fabric, aopts);

  for (const auto& p : FunctionBenchProfiles()) {
    Sandbox& base = cluster.Spawn(p, NodeId{0}, SimTime{0});
    cluster.MarkWarm(base, SimTime{0});
    agent.DesignateBase(base);
  }
  std::vector<SandboxId> victims;
  for (int i = 0; i < victims_per_function; ++i) {
    for (const auto& p : FunctionBenchProfiles()) {
      Sandbox& sb = cluster.Spawn(p, NodeId{1}, SimTime{0});
      cluster.MarkWarm(sb, SimTime{0});
      victims.push_back(sb.id);
    }
  }

  size_t pages = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (SandboxId id : victims) {
    pages += agent.DedupOp(*cluster.Find(id), SimTime{1}).pages_total;
  }
  for (SandboxId id : victims) {
    agent.RestoreOp(*cluster.Find(id), SimTime{2}, /*verify=*/false);
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  // Pipeline processed each page twice (dedup + restore).
  return secs > 0 ? 2.0 * static_cast<double>(pages) / secs : 0;
}

struct MacroResults {
  double disabled_pages_per_sec = 0;
  double metrics_pages_per_sec = 0;
  double trace_pages_per_sec = 0;  // metrics + tracing
};

MacroResults RunMacro() {
  constexpr int kVictims = 2;
  MacroResults r;
  obs::SetMetricsEnabled(false);
  obs::SetTraceEnabled(false);
  RunMacroOnce(kVictims);  // warm up allocators and caches
  r.disabled_pages_per_sec = RunMacroOnce(kVictims);

  obs::SetMetricsEnabled(true);
  r.metrics_pages_per_sec = RunMacroOnce(kVictims);

  obs::SetTraceEnabled(true);
  r.trace_pages_per_sec = RunMacroOnce(kVictims);

  obs::SetMetricsEnabled(false);
  obs::SetTraceEnabled(false);
  obs::Tracer::Default().Clear();
  obs::MetricsRegistry::Default().ResetValues();
  return r;
}

}  // namespace

int main() {
  obs::SetWallClockProfiling(false);
  const MicroResults micro = RunMicro();
  const MacroResults macro = RunMacro();
  const double overhead_ratio = macro.trace_pages_per_sec > 0
                                    ? macro.disabled_pages_per_sec / macro.trace_pages_per_sec
                                    : 0;

  bench::JsonWriter w;
  w.BeginObject();
  bench::WriteMetadata(w, "obs_overhead");
  w.BeginObject("micro_ns_per_op")
      .Field("counter_add_disabled", micro.counter_disabled_ns)
      .Field("counter_add_enabled", micro.counter_enabled_ns)
      .Field("histogram_record_enabled", micro.histogram_enabled_ns)
      .Field("scoped_span_disabled", micro.span_disabled_ns)
      .Field("scoped_span_enabled", micro.span_enabled_ns)
      .EndObject();
  w.BeginObject("macro_pages_per_sec")
      .Field("obs_disabled", macro.disabled_pages_per_sec, 0)
      .Field("metrics_only", macro.metrics_pages_per_sec, 0)
      .Field("metrics_and_trace", macro.trace_pages_per_sec, 0)
      .EndObject();
  w.Field("macro_overhead_ratio", overhead_ratio, 3);
  w.EndObject();
  std::printf("%s\n", w.str().c_str());

  const char* gate = std::getenv("MEDES_OBS_GATE_RATIO");
  if (gate != nullptr) {
    const double max_ratio = std::strtod(gate, nullptr);
    if (max_ratio > 0 && overhead_ratio > max_ratio) {
      std::fprintf(stderr, "obs overhead ratio %.3f exceeds gate %.3f\n", overhead_ratio,
                   max_ratio);
      return 1;
    }
  }
  return 0;
}
