// Parallel pipeline throughput: wall-clock pages/sec of DedupOp + RestoreOp
// at 1..N worker threads, plus base-page cache hit rates. Emits JSON so CI
// and plotting scripts can ingest it directly.
//
// Modelled SimDurations are identical across thread counts by construction
// (see the threading-model notes in DESIGN.md); what varies is real
// wall-clock time, which is what this benchmark measures. Thread counts to
// sweep come from MEDES_BENCH_THREADS (comma-separated, default "1,2,4,8");
// on a single-core host the sweep still runs but speedups hover around 1x.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace medes;

namespace {

std::vector<size_t> SweepThreadCounts() {
  std::vector<size_t> counts;
  const char* env = std::getenv("MEDES_BENCH_THREADS");
  std::string spec = env != nullptr ? env : "1,2,4,8";
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    long v = std::strtol(spec.substr(pos, comma - pos).c_str(), nullptr, 10);
    if (v >= 1 && v <= 256) counts.push_back(static_cast<size_t>(v));
    pos = comma + 1;
  }
  if (counts.empty()) counts.push_back(1);
  return counts;
}

struct RunResult {
  size_t threads = 0;
  size_t pages = 0;
  size_t pages_deduped = 0;
  double dedup_ms = 0;
  double restore_ms = 0;
  double dedup_pages_per_sec = 0;
  double restore_pages_per_sec = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  double cache_hit_rate = 0;
};

// One full configuration: fresh cluster/registry/fabric so every thread
// count processes byte-identical work.
RunResult RunConfig(size_t threads, int victims_per_function) {
  ClusterOptions copts;
  copts.num_nodes = 2;
  copts.node_memory_mb = 1e9;
  copts.bytes_per_mb = 65536;
  Cluster cluster(copts);
  FingerprintRegistry registry;
  RdmaFabric fabric({.page_cache_capacity = 4096},
                    [&](const PageLocation& loc) { return cluster.ReadBasePage(loc); });
  DedupAgentOptions aopts;
  aopts.num_threads = threads;
  DedupAgent agent(cluster, registry, fabric, aopts);

  for (const auto& p : FunctionBenchProfiles()) {
    Sandbox& base = cluster.Spawn(p, NodeId{0}, SimTime{0});
    cluster.MarkWarm(base, SimTime{0});
    agent.DesignateBase(base);
  }
  std::vector<SandboxId> victims;
  for (int i = 0; i < victims_per_function; ++i) {
    for (const auto& p : FunctionBenchProfiles()) {
      Sandbox& sb = cluster.Spawn(p, NodeId{1}, SimTime{0});
      cluster.MarkWarm(sb, SimTime{0});
      victims.push_back(sb.id);
    }
  }

  RunResult r;
  r.threads = agent.NumThreads();
  const auto t0 = std::chrono::steady_clock::now();
  for (SandboxId id : victims) {
    DedupOpResult d = agent.DedupOp(*cluster.Find(id), SimTime{1});
    r.pages += d.pages_total;
    r.pages_deduped += d.pages_deduped;
  }
  const auto t1 = std::chrono::steady_clock::now();
  for (SandboxId id : victims) {
    agent.RestoreOp(*cluster.Find(id), SimTime{2}, /*verify=*/false);
  }
  const auto t2 = std::chrono::steady_clock::now();

  r.dedup_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.restore_ms = std::chrono::duration<double, std::milli>(t2 - t1).count();
  r.dedup_pages_per_sec =
      r.dedup_ms > 0 ? 1000.0 * static_cast<double>(r.pages) / r.dedup_ms : 0;
  r.restore_pages_per_sec =
      r.restore_ms > 0 ? 1000.0 * static_cast<double>(r.pages) / r.restore_ms : 0;
  r.cache_hits = fabric.stats().cache_hits;
  r.cache_misses = fabric.stats().cache_misses;
  r.cache_hit_rate = fabric.stats().CacheHitRate();
  return r;
}

}  // namespace

int main() {
  const std::vector<size_t> thread_counts = SweepThreadCounts();
  const int victims_per_function = 2;

  std::vector<RunResult> results;
  results.reserve(thread_counts.size());
  for (size_t threads : thread_counts) {
    results.push_back(RunConfig(threads, victims_per_function));
  }
  const RunResult& serial = results.front();

  bench::JsonWriter w;
  w.BeginObject();
  bench::WriteMetadata(w, "pipeline_throughput");
  w.Field("victims_per_function", victims_per_function);
  w.BeginArray("configs");
  for (const RunResult& r : results) {
    w.BeginObject()
        .Field("threads", r.threads)
        .Field("pages", r.pages)
        .Field("pages_deduped", r.pages_deduped)
        .Field("dedup_ms", r.dedup_ms)
        .Field("restore_ms", r.restore_ms)
        .Field("dedup_pages_per_sec", r.dedup_pages_per_sec, 0)
        .Field("restore_pages_per_sec", r.restore_pages_per_sec, 0)
        .Field("dedup_speedup_vs_serial", serial.dedup_ms > 0 ? serial.dedup_ms / r.dedup_ms : 0.0)
        .Field("restore_speedup_vs_serial",
               serial.restore_ms > 0 ? serial.restore_ms / r.restore_ms : 0.0)
        .Field("cache_hits", r.cache_hits)
        .Field("cache_misses", r.cache_misses)
        .Field("cache_hit_rate", r.cache_hit_rate, 4)
        .EndObject();
  }
  w.EndArray().EndObject();
  std::printf("%s\n", w.str().c_str());
  bench::ExportObservability("pipeline_throughput");
  return 0;
}
