// registry_persistence: the bounded-memory + durability campaign for the
// state-store tier (src/store).
//
// Two parts:
//
//  1. Node sweep (10/50/100 workers, memory backend): each point runs the
//     full Azure-like workload twice — once with an unbounded RAM budget
//     (the store is behaviourally invisible) and once with the hot tier
//     capped at 50% of the unbounded run's peak state footprint, so cold
//     registry entries and base pages demand-page from the modelled SSD
//     tier. Reports dedup savings and restore P99 for both, and the drift
//     between them (acceptance: savings within 5% of unbounded).
//
//  2. Persistence drill (persistent backend): a small platform run logging
//     every registry insert/removal and base page to an append-only log with
//     compacted checkpoints, then a fresh LogStore re-opened on the same
//     directory, recovery replayed into a fresh registry, and every
//     recovered sandbox re-validated against the live cluster.
//
// Output: BENCH_registry_persistence.json (or argv[1]); validate with
//   python3 scripts/check_bench_json.py BENCH_registry_persistence.json \
//       --bench registry_persistence
// Env:   MEDES_REGISTRY_PERSISTENCE_MODE=smoke   CI-sized config
#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cluster/recovery_validator.h"
#include "medes.h"

namespace medes {
namespace {

constexpr double kRamBudgetFraction = 0.5;
constexpr double kMaxSavedDrift = 0.05;

struct SweepPoint {
  int nodes = 0;
  double rate_scale = 0;
  SimDuration duration;
};

struct RunResult {
  uint64_t requests = 0;
  uint64_t dedup_starts = 0;
  double saved_mb = 0;
  double restore_p99_ms = 0;
  double wall_seconds = 0;
  store::StoreStats store;
};

// P99 of startup latency over dedup starts — the restores the cold tier
// slows down when the budget binds.
double RestoreP99Ms(const RunMetrics& m) {
  std::vector<double> ms;
  for (const RequestRecord& r : m.requests) {
    if (r.start == StartType::kDedup) {
      ms.push_back(ToSeconds(r.startup) * 1000.0);
    }
  }
  if (ms.empty()) {
    return 0;
  }
  const size_t k = static_cast<size_t>(0.99 * static_cast<double>(ms.size() - 1));
  std::nth_element(ms.begin(), ms.begin() + static_cast<ptrdiff_t>(k), ms.end());
  return ms[k];
}

double TotalSavedMb(const RunMetrics& m) {
  double total = 0;
  for (const FunctionMetrics& f : m.per_function) {
    total += f.total_saved_mb;
  }
  return total;
}

RunResult RunPoint(const SweepPoint& p, const std::vector<TraceEvent>& trace,
                   uint64_t ram_budget_bytes) {
  PlatformOptions options = bench::EvalOptions(PolicyKind::kMedes);
  options.cluster.num_nodes = p.nodes;
  options.store.ram_budget_bytes = ram_budget_bytes;
  ServerlessPlatform platform(options);
  const double t0 = bench::WallSeconds();
  const RunMetrics metrics = platform.Run(trace);
  RunResult r;
  r.requests = metrics.TotalRequests();
  r.dedup_starts = bench::TotalDedupStarts(metrics);
  r.saved_mb = TotalSavedMb(metrics);
  r.restore_p99_ms = RestoreP99Ms(metrics);
  r.wall_seconds = bench::WallSeconds() - t0;
  r.store = metrics.store;
  return r;
}

std::vector<TraceEvent> TraceFor(const SweepPoint& p) {
  TraceOptions topts;
  topts.duration = p.duration;
  topts.rate_scale = p.rate_scale;
  return GenerateTrace(DefaultAzurePatterns(), topts);
}

double MbOf(uint64_t bytes) { return static_cast<double>(bytes) / (1024.0 * 1024.0); }

struct DrillResult {
  int nodes = 0;
  uint64_t live_base_sandboxes = 0;
  RecoveryReport report;
  store::DurabilityStats durability;
  bool matches_live = false;
};

// Platform run on the persistent backend, then recovery from the same
// directory into a fresh registry, re-validated against the live cluster.
DrillResult RunPersistenceDrill(int nodes, SimDuration duration, double rate_scale) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "medes_registry_persistence.store").string();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  PlatformOptions options = bench::EvalOptions(PolicyKind::kMedes);
  options.cluster.num_nodes = nodes;
  options.store.backend = store::StoreBackend::kPersistent;
  options.store.directory = dir;
  // Small enough that the run folds the log into checkpoints several times;
  // the tail past the last fold exercises checkpoint + log replay.
  options.store.checkpoint_every_records = 256;

  TraceOptions topts;
  topts.duration = duration;
  topts.rate_scale = rate_scale;
  ServerlessPlatform platform(options);
  (void)platform.Run(GenerateTrace(DefaultAzurePatterns(), topts));

  DrillResult d;
  d.nodes = nodes;
  d.live_base_sandboxes = platform.cluster().base_snapshots().size();
  d.durability = platform.state_store().durability_stats();

  // "Restart": a fresh store opened on the surviving files replays
  // checkpoint + log tail; every recovered sandbox must still byte-match the
  // live cluster before the registry serves it.
  store::StoreOptions reopen = options.store;
  const auto recovered = store::MakeStateStore(reopen);
  FingerprintRegistry registry(options.registry);
  d.report = RecoverInto(*recovered, registry, MakeRecoveryValidator(platform.cluster()));
  d.matches_live = d.report.recovered_sandboxes == d.live_base_sandboxes &&
                   d.report.rejected_sandboxes == 0 && d.report.store_state.clean;

  std::filesystem::remove_all(dir, ec);
  return d;
}

}  // namespace
}  // namespace medes

int main(int argc, char** argv) {
  using namespace medes;
  bench::StartWallClock();
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_registry_persistence.json";
  const char* mode_env = std::getenv("MEDES_REGISTRY_PERSISTENCE_MODE");
  const bool smoke = mode_env != nullptr && std::string(mode_env) == "smoke";

  bench::Header("registry_persistence: tiered state store campaign",
                "bounded-RAM node sweep + persistent-backend crash recovery drill");

  std::vector<SweepPoint> sweep;
  const auto add = [&sweep](int nodes, SimDuration duration) {
    SweepPoint p;
    p.nodes = nodes;
    p.rate_scale = 5.0 * static_cast<double>(nodes) / 19.0;
    p.duration = duration;
    sweep.push_back(p);
  };
  if (smoke) {
    add(4, 6 * kMinute);
  } else {
    for (int nodes : {10, 50, 100}) {
      add(nodes, 20 * kMinute);
    }
  }

  struct PointResult {
    SweepPoint point;
    RunResult unbounded;
    RunResult bounded;
    uint64_t budget_bytes = 0;
    double saved_drift = 0;
  };
  std::vector<PointResult> results;
  bool saved_within = true;
  for (const SweepPoint& p : sweep) {
    const std::vector<TraceEvent> trace = TraceFor(p);
    PointResult r;
    r.point = p;
    r.unbounded = RunPoint(p, trace, /*ram_budget_bytes=*/0);
    r.budget_bytes = std::max<uint64_t>(
        1, static_cast<uint64_t>(kRamBudgetFraction *
                                 static_cast<double>(r.unbounded.store.peak_state_bytes)));
    r.bounded = RunPoint(p, trace, r.budget_bytes);
    r.saved_drift = r.unbounded.saved_mb > 0
                        ? std::abs(r.bounded.saved_mb - r.unbounded.saved_mb) / r.unbounded.saved_mb
                        : 0;
    saved_within = saved_within && r.saved_drift <= kMaxSavedDrift;
    std::printf("nodes=%-3d requests=%-8" PRIu64
                " peak_state=%.1fMB budget=%.1fMB saved=%.1f/%.1fMB drift=%.3f "
                "restore_p99=%.1f/%.1fms cold_fetches=%" PRIu64 " evictions=%" PRIu64 "\n",
                p.nodes, r.unbounded.requests, MbOf(r.unbounded.store.peak_state_bytes),
                MbOf(r.budget_bytes), r.unbounded.saved_mb, r.bounded.saved_mb, r.saved_drift,
                r.unbounded.restore_p99_ms, r.bounded.restore_p99_ms, r.bounded.store.cold_fetches,
                r.bounded.store.evictions);
    results.push_back(r);
  }

  bench::Section("persistence drill (append-only log + checkpoint recovery)");
  const DrillResult drill = smoke ? RunPersistenceDrill(4, 4 * kMinute, 5.0 * 4.0 / 19.0)
                                  : RunPersistenceDrill(4, 10 * kMinute, 5.0 * 4.0 / 19.0);
  std::printf("live_bases=%" PRIu64 " recovered=%" PRIu64 " rejected=%" PRIu64
              " pages=%" PRIu64 " ckpt_records=%" PRIu64 " log_records=%" PRIu64
              " checkpoints=%" PRIu64 " clean=%s matches_live=%s\n",
              drill.live_base_sandboxes, drill.report.recovered_sandboxes,
              drill.report.rejected_sandboxes, drill.report.recovered_pages,
              drill.report.store_state.checkpoint_records, drill.report.store_state.log_records,
              drill.durability.checkpoints, drill.report.store_state.clean ? "true" : "false",
              drill.matches_live ? "true" : "false");

  const bool all_passed = saved_within && drill.matches_live;

  bench::JsonWriter w;
  w.BeginObject();
  bench::WriteMetadata(w, "registry_persistence");
  w.Field("mode", smoke ? "smoke" : "full")
      .Field("ram_budget_fraction", kRamBudgetFraction)
      .Field("max_saved_drift", kMaxSavedDrift);
  w.BeginArray("sweep");
  for (const PointResult& r : results) {
    w.BeginObject()
        .Field("nodes", r.point.nodes)
        .Field("requests", r.unbounded.requests)
        .Field("ram_budget_mb", MbOf(r.budget_bytes))
        .Field("saved_drift", r.saved_drift, 4);
    w.BeginObject("unbounded")
        .Field("peak_state_mb", MbOf(r.unbounded.store.peak_state_bytes))
        .Field("memory_saved_mb", r.unbounded.saved_mb)
        .Field("restore_p99_ms", r.unbounded.restore_p99_ms)
        .Field("dedup_starts", r.unbounded.dedup_starts)
        .Field("hot_hits", r.unbounded.store.hot_hits)
        .Field("cold_fetches", r.unbounded.store.cold_fetches)
        .Field("wall_seconds", r.unbounded.wall_seconds, 3)
        .EndObject();
    w.BeginObject("bounded")
        .Field("memory_saved_mb", r.bounded.saved_mb)
        .Field("restore_p99_ms", r.bounded.restore_p99_ms)
        .Field("dedup_starts", r.bounded.dedup_starts)
        .Field("hot_hits", r.bounded.store.hot_hits)
        .Field("cold_fetches", r.bounded.store.cold_fetches)
        .Field("cold_fetch_mb", MbOf(r.bounded.store.cold_fetch_bytes))
        .Field("evictions", r.bounded.store.evictions)
        .Field("ssd_time_ms", static_cast<double>(r.bounded.store.ssd_time_us) / 1000.0)
        .Field("wall_seconds", r.bounded.wall_seconds, 3)
        .EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.BeginObject("recovery")
      .Field("nodes", drill.nodes)
      .Field("live_base_sandboxes", drill.live_base_sandboxes)
      .Field("recovered_sandboxes", drill.report.recovered_sandboxes)
      .Field("rejected_sandboxes", drill.report.rejected_sandboxes)
      .Field("recovered_pages", drill.report.recovered_pages)
      .Field("checkpoint_records", drill.report.store_state.checkpoint_records)
      .Field("log_records", drill.report.store_state.log_records)
      .Field("stale_records", drill.report.store_state.stale_records)
      .Field("torn_bytes", drill.report.store_state.torn_bytes)
      .Field("corrupt_records", drill.report.store_state.corrupt_records)
      .Field("clean", drill.report.store_state.clean)
      .Field("checkpoints", drill.durability.checkpoints)
      .Field("log_bytes", drill.durability.log_bytes)
      .Field("checkpoint_bytes", drill.durability.checkpoint_bytes)
      .Field("matches_live", drill.matches_live)
      .EndObject();
  w.BeginObject("checks")
      .Field("saved_within_drift", saved_within)
      .Field("recovery_clean", drill.report.store_state.clean)
      .Field("recovery_matches_live", drill.matches_live)
      .Field("all_passed", all_passed)
      .EndObject();
  w.EndObject();
  bench::WriteTextFile(out_path, w.str());
  bench::ExportObservability("registry_persistence");

  std::printf("\n%s\n", all_passed ? "ALL CHECKS PASSED" : "CHECKS FAILED");
  return all_passed ? 0 : 1;
}
