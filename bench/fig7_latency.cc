// Figure 7 — end-to-end latency improvements (Section 7.2).
//
// The full multi-function workload replayed under Medes (latency objective,
// P1), fixed keep-alive (10 min), and adaptive keep-alive, with 2 GB/node
// software limits so the cluster is oversubscribed.
//
// (a) Distribution of per-request improvement factors (baseline e2e / Medes
//     e2e) against both baselines — the paper reports up to 2.25x / 2.75x
//     with <1% of requests regressing.
// (b) Per-function cold-start counts and 99.9th-percentile e2e latencies —
//     the paper reports 1-2.24x (fixed) and up to 2.3x (adaptive) tail wins,
//     driven by 1.85x / 6.2x cold-start reductions.
#include <cstdio>

#include "bench_util.h"

using namespace medes;

int main() {
  bench::Header("Figure 7: end-to-end latency vs keep-alive baselines",
                "Full workload, 19 nodes x 2 GB software limit (oversubscribed), Medes P1");
  auto trace = bench::FullWorkload(30 * kMinute);
  std::printf("requests: %zu over 30 simulated minutes (5x-magnified Azure-like arrivals)\n",
              trace.size());

  RunMetrics medes = ServerlessPlatform(bench::EvalOptions(PolicyKind::kMedes)).Run(trace);
  RunMetrics fixed = ServerlessPlatform(bench::EvalOptions(PolicyKind::kFixedKeepAlive)).Run(trace);
  RunMetrics adaptive =
      ServerlessPlatform(bench::EvalOptions(PolicyKind::kAdaptiveKeepAlive)).Run(trace);

  bench::Section("Fig 7a: CDF of per-request improvement factor (baseline e2e / Medes e2e)");
  const double cdf_points[] = {0.005, 0.01, 0.05, 0.5, 0.9, 0.95, 0.99, 0.995, 0.999, 1.0};
  for (const auto* pair : {&fixed, &adaptive}) {
    const char* name = (pair == &fixed) ? "vs Fixed Keep-Alive" : "vs Adaptive Keep-Alive";
    auto factors = ImprovementFactors(medes, *pair);
    SampleRecorder rec;
    size_t regressions = 0;
    for (double f : factors) {
      rec.Record(f);
      if (f < 1.0) {
        ++regressions;
      }
    }
    std::printf("  %s:\n    CDF    :", name);
    for (double p : cdf_points) {
      std::printf(" %5.3f", p);
    }
    std::printf("\n    factor :");
    for (double p : cdf_points) {
      std::printf(" %5.2f", rec.Percentile(p));
    }
    std::printf("\n    requests with factor < 1 (Medes slower): %.2f%%  (paper: <1%%)\n",
                100.0 * static_cast<double>(regressions) / static_cast<double>(factors.size()));
  }

  bench::Section("Fig 7b: per-function cold starts and 99.9p e2e latency (ms)");
  std::printf("%-12s | %7s %7s %7s | %9s %9s %9s | %6s %6s\n", "function", "cs:fix", "cs:ada",
              "cs:med", "p999:fix", "p999:ada", "p999:med", "x fix", "x ada");
  for (const auto& p : FunctionBenchProfiles()) {
    auto f = static_cast<size_t>(p.id);
    double pf = fixed.per_function[f].e2e_ms.Percentile(0.999);
    double pa = adaptive.per_function[f].e2e_ms.Percentile(0.999);
    double pm = medes.per_function[f].e2e_ms.Percentile(0.999);
    std::printf("%-12s | %7lu %7lu %7lu | %9.0f %9.0f %9.0f | %6.2f %6.2f\n", p.name.c_str(),
                fixed.per_function[f].cold_starts, adaptive.per_function[f].cold_starts,
                medes.per_function[f].cold_starts, pf, pa, pm, pm > 0 ? pf / pm : 0,
                pm > 0 ? pa / pm : 0);
  }

  bench::Section("Sources of improvement (Section 7.2.1)");
  std::printf("total cold starts      : fixed=%lu adaptive=%lu medes=%lu\n",
              fixed.TotalColdStarts(), adaptive.TotalColdStarts(), medes.TotalColdStarts());
  std::printf(
      "cold-start reduction   : %.2fx vs fixed, %.2fx vs adaptive (paper: up to 1.85x/6.2x)\n",
              medes.TotalColdStarts() ? static_cast<double>(fixed.TotalColdStarts()) /
                                            static_cast<double>(medes.TotalColdStarts())
                                      : 0.0,
              medes.TotalColdStarts() ? static_cast<double>(adaptive.TotalColdStarts()) /
                                            static_cast<double>(medes.TotalColdStarts())
                                      : 0.0);
  std::printf("dedup transitions      : %lu across %lu spawned sandboxes (%.2f per sandbox; a\n"
              "                         sandbox re-enters dedup after each reuse — the paper\n"
              "                         reports ~39%% of sandboxes deduplicated)\n",
              medes.sandboxes_deduped, medes.sandboxes_spawned,
              medes.sandboxes_spawned ? static_cast<double>(medes.sandboxes_deduped) /
                                            static_cast<double>(medes.sandboxes_spawned)
                                      : 0.0);
  std::printf("mean sandboxes resident: fixed=%.1f adaptive=%.1f medes=%.1f "
              "(paper: medes keeps 7.74%%/37.7%% more)\n",
              fixed.MeanSandboxesInMemory(), adaptive.MeanSandboxesInMemory(),
              medes.MeanSandboxesInMemory());
  std::printf("dedup starts (medes)   : %lu; restores=%lu\n", bench::TotalDedupStarts(medes),
              medes.restores);
  return 0;
}
