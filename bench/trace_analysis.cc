// Critical-path attribution over sampled causal traces.
//
// Runs a 50-node Medes (P2 combined) cluster_scale-class workload with
// causal tracing enabled and head-based sampling (MEDES_TRACE_SAMPLE,
// default 1/4), reconstructs every sampled request's span tree
// (obs/critical_path.h), and attributes each request's end-to-end interval
// to stages via the left-to-right critical-path sweep. Reports:
//
//   - per-stage P50/P99 self-time attribution with fractions of the total
//     (the sweep guarantees per-trace stage times sum exactly to the root
//     duration, so fractions sum to ~1 — gated by check_bench_json);
//   - the same attribution re-rooted at "restore_op" for dedup restores,
//     compared against the restore spans' own measured durations;
//   - the top-10 slowest sampled requests as full span trees with
//     resolvable parent links (gated by check_bench_json).
//
// The trace sampling, span ids, and sim-time stamps are deterministic, so
// the JSON (modulo the metadata block) and the exported Chrome trace are
// byte-identical at any MEDES_THREADS — CI diffs 1 vs 4 threads.
//
// Usage: trace_analysis [output.json]     (default: BENCH_trace_attribution.json)
// Env:   MEDES_TRACE_ANALYSIS_MODE=smoke  CI config (4 nodes, 10 sim-minutes;
//                                         same JSON schema)
//        MEDES_TRACE_SAMPLE=N or 1/N      sampling rate (default here: 1/4)
//        MEDES_OBS_DIR                    where the Chrome trace lands
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/critical_path.h"

using namespace medes;

#ifndef MEDES_OBS_DISABLED
namespace {

struct TraceArtifacts {
  std::vector<obs::Span> spans;
  std::vector<obs::TraceTree> trees;
  std::vector<obs::TraceAttribution> request_attrs;   // rooted at "request"
  std::vector<obs::TraceAttribution> restore_attrs;   // re-rooted at "restore_op"
  std::vector<size_t> request_trees;                  // tree index per request_attrs entry
  size_t unresolved_parents = 0;
};

const char* RootName(const std::vector<obs::Span>& spans, const obs::TraceTree& tree) {
  return spans[tree.nodes[tree.root].span].name;
}

void Analyze(TraceArtifacts& a) {
  a.trees = obs::BuildTraceTrees(a.spans);
  for (size_t t = 0; t < a.trees.size(); ++t) {
    const obs::TraceTree& tree = a.trees[t];
    a.unresolved_parents += tree.unresolved_parents;
    if (std::strcmp(RootName(a.spans, tree), "request") == 0) {
      a.request_attrs.push_back(obs::AttributeTrace(a.spans, tree));
      a.request_trees.push_back(t);
    }
    if (auto node = obs::FindNode(a.spans, tree, "restore_op")) {
      a.restore_attrs.push_back(obs::AttributeSubtree(a.spans, tree, *node));
    }
  }
}

// Sum of all per-stage self times divided by the sum of root durations; the
// sweep makes this exactly 1 whenever any trace has nonzero duration.
double FractionSum(const std::vector<obs::TraceAttribution>& attrs) {
  int64_t attributed = 0;
  int64_t total = 0;
  for (const obs::TraceAttribution& attr : attrs) {
    total += attr.total_us;
    for (const obs::StageSelf& stage : attr.stages) {
      attributed += stage.self_us;
    }
  }
  return total > 0 ? static_cast<double>(attributed) / static_cast<double>(total) : 1.0;
}

void WriteSummary(bench::JsonWriter& w, std::string_view key,
                  const obs::AttributionSummary& s, double fraction_sum) {
  w.BeginObject(key)
      .Field("traces", s.traces)
      .Field("total_us", s.total_us)
      .Field("p50_total_us", s.p50_total_us)
      .Field("p99_total_us", s.p99_total_us)
      .Field("attribution_fraction_sum", fraction_sum, 6);
  w.BeginArray("stages");
  for (const obs::StageStats& stage : s.stages) {
    w.BeginObject()
        .Field("stage", stage.stage)
        .Field("traces", stage.traces)
        .Field("total_us", stage.total_us)
        .Field("p50_us", stage.p50_us)
        .Field("p99_us", stage.p99_us)
        .Field("fraction", stage.fraction, 6)
        .EndObject();
  }
  w.EndArray().EndObject();
}

void WriteSpanTree(bench::JsonWriter& w, const TraceArtifacts& a, const obs::TraceTree& tree,
                   size_t node, std::string_view key = {}) {
  const obs::Span& span = a.spans[tree.nodes[node].span];
  w.BeginObject(key)
      .Field("name", span.name)
      .Field("ts_us", span.ts.value())
      .Field("dur_us", span.dur.value())
      .Field("span_id", span.span_id)
      .Field("parent_span_id", span.parent_span_id);
  w.BeginArray("children");
  for (size_t c : tree.nodes[node].children) {
    WriteSpanTree(w, a, tree, c);
  }
  w.EndArray().EndObject();
}

}  // namespace
#endif  // MEDES_OBS_DISABLED

int main(int argc, char** argv) {
  bench::StartWallClock();
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_trace_attribution.json";
  const char* mode_env = std::getenv("MEDES_TRACE_ANALYSIS_MODE");
  const bool smoke = mode_env != nullptr && std::string(mode_env) == "smoke";

  bench::Header("trace_analysis: critical-path attribution of sampled causal traces",
                smoke ? "smoke: 4-node Medes P2, 10 sim-minutes"
                      : "50-node Medes P2, 30 sim-minutes, rate scaled to match per-node load");

#ifdef MEDES_OBS_DISABLED
  // Nothing to attribute without spans; a skip, not a failure.
  std::printf("observability compiled out (-DMEDES_OBS=OFF): skipping\n");
  (void)out_path;
  return 0;
#else

  // Tracing on, deterministic head sampling. MEDES_TRACE_SAMPLE (parsed by
  // the obs layer at first use) wins if set; default to 1-in-4 here.
  obs::SetTraceEnabled(true);
  if (std::getenv("MEDES_TRACE_SAMPLE") == nullptr) {
    obs::SetTraceSampleEvery(4);
  }
  obs::Tracer::Default().Clear();

  const int nodes = smoke ? 4 : 50;
  PlatformOptions options = bench::EvalOptions(PolicyKind::kMedes);
  options.cluster.num_nodes = nodes;
  options.medes.objective = PolicyObjective::kCombined;
  TraceOptions topts;
  topts.duration = smoke ? 10 * kMinute : 30 * kMinute;
  topts.rate_scale = 5.0 * static_cast<double>(nodes) / 19.0;
  const std::vector<TraceEvent> trace = GenerateTrace(DefaultAzurePatterns(), topts);

  ServerlessPlatform platform(options);
  const RunMetrics metrics = platform.Run(trace);

  TraceArtifacts a;
  a.spans = obs::Tracer::Default().Drain();
  Analyze(a);

  const obs::AttributionSummary requests = obs::Summarize(a.request_attrs, 10);
  const obs::AttributionSummary restores = obs::Summarize(a.restore_attrs, 10);
  const double request_fraction_sum = FractionSum(a.request_attrs);
  const double restore_fraction_sum = FractionSum(a.restore_attrs);

  std::printf("requests=%" PRIu64 " sampled_traces=%zu (every %u) spans=%zu "
              "unresolved_parents=%zu\n",
              metrics.TotalRequests(), a.trees.size(), obs::TraceSampleEvery(), a.spans.size(),
              a.unresolved_parents);
  bench::Section("request attribution");
  for (const obs::StageStats& s : requests.stages) {
    std::printf("%-28s traces=%-6" PRIu64 " p50=%-8" PRId64 " p99=%-8" PRId64 " frac=%.4f\n",
                s.stage.c_str(), s.traces, s.p50_us, s.p99_us, s.fraction);
  }
  bench::Section("restore attribution (re-rooted at restore_op)");
  for (const obs::StageStats& s : restores.stages) {
    std::printf("%-28s traces=%-6" PRIu64 " p50=%-8" PRId64 " p99=%-8" PRId64 " frac=%.4f\n",
                s.stage.c_str(), s.traces, s.p50_us, s.p99_us, s.fraction);
  }
  std::printf("\nrestore p99=%" PRId64 "us fraction_sum(request)=%.6f fraction_sum(restore)=%.6f\n",
              restores.p99_total_us, request_fraction_sum, restore_fraction_sum);

  bench::JsonWriter w;
  w.BeginObject();
  bench::WriteMetadata(w, "trace_analysis");
  w.Field("mode", smoke ? "smoke" : "full").Field("nodes", nodes);
  w.BeginObject("sampling")
      .Field("total_requests", metrics.TotalRequests())
      .Field("sample_every", obs::TraceSampleEvery())
      .Field("sampled_traces", a.trees.size())
      .Field("sampled_spans", a.spans.size())
      .Field("unresolved_parents", a.unresolved_parents)
      .EndObject();
  WriteSummary(w, "requests", requests, request_fraction_sum);
  WriteSummary(w, "restores", restores, restore_fraction_sum);
  w.BeginArray("top_slowest");
  for (size_t i : requests.top_slowest) {
    const obs::TraceAttribution& attr = a.request_attrs[i];
    const obs::TraceTree& tree = a.trees[a.request_trees[i]];
    w.BeginObject()
        .Field("trace_id", attr.trace_id)
        .Field("total_us", attr.total_us)
        .Field("unresolved_parents", tree.unresolved_parents);
    w.BeginArray("stages");
    for (const obs::StageSelf& stage : attr.stages) {
      w.BeginObject().Field("stage", stage.stage).Field("self_us", stage.self_us).EndObject();
    }
    w.EndArray();
    // The full span tree: every parent_span_id resolves within the tree by
    // construction (unresolved spans were re-attached under the root and
    // counted above).
    WriteSpanTree(w, a, tree, tree.root, "root");
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();

  bench::WriteTextFile(out_path, w.str() + "\n");

  // Chrome trace for the same spans (the tracer was already drained, so
  // ExportObservability would see nothing — export directly).
  const char* dir_env = std::getenv("MEDES_OBS_DIR");
  const std::string prefix = dir_env != nullptr ? std::string(dir_env) + "/" : std::string();
  bench::WriteTextFile(prefix + "trace_analysis_trace.json", obs::ChromeTraceJson(a.spans));

  const bool pass = !a.request_attrs.empty() && std::fabs(request_fraction_sum - 1.0) <= 0.01 &&
                    (a.restore_attrs.empty() || std::fabs(restore_fraction_sum - 1.0) <= 0.01);
  if (!pass) {
    std::fprintf(stderr, "FAIL: attribution gates not met\n");
  }
  return pass ? 0 : 1;
#endif  // MEDES_OBS_DISABLED
}
