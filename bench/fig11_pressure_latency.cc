// Figure 11 — tail latencies under memory pressure (Section 7.4).
//
// Per-function 99.9th-percentile end-to-end latencies at the 30 GB and 20 GB
// pool sizes. The paper reports up to 3.8x tail improvements under pressure,
// with the largest wins for functions with big footprints and setup costs
// (FeatureGen, ModelTrain).
#include <cstdio>

#include "bench_util.h"

using namespace medes;

int main() {
  bench::Header("Figure 11: 99.9p e2e latency under memory pressure",
                "Pressure pools: 28.5 GB (30G-case) and 19 GB (20G-case)");
  auto trace = bench::FullWorkload(30 * kMinute);

  for (double node_mb : {1536.0, 1024.0}) {
    RunMetrics fixed =
        ServerlessPlatform(bench::EvalOptions(PolicyKind::kFixedKeepAlive, node_mb)).Run(trace);
    RunMetrics adaptive =
        ServerlessPlatform(bench::EvalOptions(PolicyKind::kAdaptiveKeepAlive, node_mb)).Run(trace);
    RunMetrics medes =
        ServerlessPlatform(bench::EvalOptions(PolicyKind::kMedes, node_mb)).Run(trace);

    bench::Section(node_mb > 1200 ? "Tail latency, 30G-proportional pool"
                                  : "Tail latency, 20G-proportional pool");
    std::printf("%-12s | %7s %7s %7s | %8s %8s %8s | %8s %8s %8s\n", "function", "cs%:fix",
                "cs%:ada", "cs%:med", "p99:fix", "p99:ada", "p99:med", "p999:fix", "p999:ada",
                "p999:med");
    double best_fix = 0, best_ada = 0;
    for (const auto& p : FunctionBenchProfiles()) {
      auto f = static_cast<size_t>(p.id);
      auto cold_pct = [&](const RunMetrics& m) {
        const auto& fm = m.per_function[f];
        return fm.TotalRequests() ? 100.0 * static_cast<double>(fm.cold_starts) /
                                        static_cast<double>(fm.TotalRequests())
                                  : 0.0;
      };
      double p99f = fixed.per_function[f].e2e_ms.Percentile(0.99);
      double p99a = adaptive.per_function[f].e2e_ms.Percentile(0.99);
      double p99m = medes.per_function[f].e2e_ms.Percentile(0.99);
      double pf = fixed.per_function[f].e2e_ms.Percentile(0.999);
      double pa = adaptive.per_function[f].e2e_ms.Percentile(0.999);
      double pm = medes.per_function[f].e2e_ms.Percentile(0.999);
      best_fix = std::max({best_fix, pm > 0 ? pf / pm : 0, p99m > 0 ? p99f / p99m : 0});
      best_ada = std::max({best_ada, pm > 0 ? pa / pm : 0, p99m > 0 ? p99a / p99m : 0});
      std::printf("%-12s | %6.2f%% %6.2f%% %6.2f%% | %8.0f %8.0f %8.0f | %8.0f %8.0f %8.0f\n",
                  p.name.c_str(), cold_pct(fixed), cold_pct(adaptive), cold_pct(medes), p99f,
                  p99a, p99m, pf, pa, pm);
    }
    std::printf("best tail improvement: %.2fx vs fixed, %.2fx vs adaptive (paper: up to 3.8x)\n",
                best_fix, best_ada);
    std::printf("(a tail quantile flattens at the cold-start latency once a policy's cold\n"
                " fraction exceeds it; the cs%% columns show the underlying driver)\n");
  }
  return 0;
}
