// Micro-benchmarks (google-benchmark) for the byte-level machinery: SHA-1,
// rolling-hash scans, page fingerprinting, delta encode/decode at several
// similarity levels, and the Section 2 redundancy measurement.
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "medes.h"

namespace medes {
namespace {

std::vector<uint8_t> RandomBytes(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> out(n);
  for (auto& b : out) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return out;
}

std::vector<uint8_t> SimilarTo(const std::vector<uint8_t>& base, int mutations, uint64_t seed) {
  auto out = base;
  Rng rng(seed);
  for (int i = 0; i < mutations; ++i) {
    size_t off = rng.Below(out.size() - 8);
    uint64_t v = rng.Next();
    std::memcpy(out.data() + off, &v, 8);
  }
  return out;
}

void BM_Sha1_64B(benchmark::State& state) {
  auto data = RandomBytes(64, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::Hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_Sha1_64B);

void BM_Sha1_4KiB(benchmark::State& state) {
  auto data = RandomBytes(4096, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::Hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_Sha1_4KiB);

void BM_RollingHashScan(benchmark::State& state) {
  auto data = RandomBytes(4096, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AllWindowHashes(data, 64));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_RollingHashScan);

void BM_FingerprintPage(benchmark::State& state) {
  PageFingerprinter fp({});
  auto page = RandomBytes(4096, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fp.FingerprintPage(page));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_FingerprintPage);

void BM_DeltaEncode(benchmark::State& state) {
  auto base = RandomBytes(4096, 5);
  auto target = SimilarTo(base, static_cast<int>(state.range(0)), 6);
  DeltaOptions opts;
  opts.level = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DeltaEncode(base, target, opts));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_DeltaEncode)->Args({4, 1})->Args({4, 9})->Args({64, 1})->Args({64, 9});

void BM_DeltaDecode(benchmark::State& state) {
  auto base = RandomBytes(4096, 7);
  auto target = SimilarTo(base, 16, 8);
  auto delta = DeltaEncode(base, target);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DeltaDecode(base, delta));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_DeltaDecode);

void BM_RedundancyMeasure1MiB(benchmark::State& state) {
  auto a = RandomBytes(1 << 20, 9);
  auto b = SimilarTo(a, 2000, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureRedundancy(a, b));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * (1 << 20));
}
BENCHMARK(BM_RedundancyMeasure1MiB);

void BM_RegistryLookup(benchmark::State& state) {
  FingerprintRegistry registry;
  PageFingerprinter fp({});
  LibraryPool pool(1, 16384);
  MemoryImage image = BuildSandboxImage(ProfileByName("LinAlg"), pool, {.instance_seed = 1});
  registry.InsertBaseSandbox(NodeId{0}, SandboxId{1},
                             fp.FingerprintImage(image.bytes(), kPageSize));
  MemoryImage probe_img = BuildSandboxImage(ProfileByName("LinAlg"), pool, {.instance_seed = 2});
  auto probes = fp.FingerprintImage(probe_img.bytes(), kPageSize);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.FindBasePage(probes[i % probes.size()], NodeId{0}));
    ++i;
  }
}
BENCHMARK(BM_RegistryLookup);

void BM_DedupOpVanilla(benchmark::State& state) {
  ClusterOptions copts;
  copts.num_nodes = 1;
  copts.node_memory_mb = 1e9;
  copts.bytes_per_mb = 8192;
  Cluster cluster(copts);
  FingerprintRegistry registry;
  RdmaFabric fabric({}, [&](const PageLocation& loc) { return cluster.ReadBasePage(loc); });
  DedupAgent agent(cluster, registry, fabric, {});
  Sandbox& base = cluster.Spawn(ProfileByName("Vanilla"), NodeId{0}, SimTime{0});
  cluster.MarkWarm(base, SimTime{0});
  agent.DesignateBase(base);
  for (auto _ : state) {
    Sandbox& sb = cluster.Spawn(ProfileByName("Vanilla"), NodeId{0}, SimTime{0});
    cluster.MarkWarm(sb, SimTime{0});
    benchmark::DoNotOptimize(agent.DedupOp(sb, SimTime{}));
    cluster.Purge(sb.id);
  }
}
BENCHMARK(BM_DedupOpVanilla);

}  // namespace
}  // namespace medes
