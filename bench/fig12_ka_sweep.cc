// Figure 12 — can tuning the keep-alive period match Medes? (Section 7.5).
//
// The representative workload ({LinAlg, FeatureGen, ModelTrain}) replayed
// under fixed keep-alive periods of 5/10/15/20 minutes and under Medes, on a
// memory-constrained cluster. The paper finds a non-monotone sweep — 10 min
// best, 15/20 min *worse* because idle sandboxes trigger evictions — and
// Medes beating the best fixed setting by 38.2%.
#include <cstdio>

#include "bench_util.h"

using namespace medes;

int main() {
  bench::Header("Figure 12: keep-alive period sweep vs Medes",
                "Representative workload {LinAlg, FeatureGen, ModelTrain}, 4 nodes x 3 GB");
  auto trace = bench::RepresentativeWorkload(30 * kMinute);
  std::printf("requests: %zu\n\n", trace.size());

  std::printf("%-10s %12s %10s %18s\n", "policy", "cold starts", "evictions", "mean memory (MB)");
  uint64_t best_fixed = ~0ull;
  for (int ka_min : {5, 10, 15, 20}) {
    PlatformOptions opts = bench::RepresentativeOptions(PolicyKind::kFixedKeepAlive);
    opts.fixed_keep_alive = ka_min * kMinute;
    RunMetrics m = ServerlessPlatform(opts).Run(trace);
    best_fixed = std::min(best_fixed, m.TotalColdStarts());
    std::printf("KA-%-7d %12lu %10lu %18.0f\n", ka_min, m.TotalColdStarts(), m.evictions,
                m.MeanMemoryMb());
  }
  RunMetrics medes =
      ServerlessPlatform(bench::RepresentativeOptions(PolicyKind::kMedes)).Run(trace);
  std::printf("%-10s %12lu %10lu %18.0f\n", "Medes", medes.TotalColdStarts(), medes.evictions,
              medes.MeanMemoryMb());
  std::printf("\nMedes vs best fixed setting: %.1f%% fewer cold starts (paper: 38.2%% vs KA-10)\n",
              best_fixed ? 100.0 * (static_cast<double>(best_fixed) -
                                    static_cast<double>(medes.TotalColdStarts())) /
                               static_cast<double>(best_fixed)
                         : 0.0);
  return 0;
}
