// Ablations of Medes's design choices (beyond the paper's sensitivity
// figures) — each isolates one mechanism DESIGN.md calls out:
//
//  A. Value-sampled vs random-offset fingerprints (vs Difference Engine,
//     paper Section 8): random offsets are not content-defined, so shifted
//     or relocated content fingerprints differently and dedup quality drops.
//  B. Redundancy-elimination granularity (Section 4.1.2): eliminating at the
//     64 B identification granularity would need per-chunk metadata —
//     quantify the metadata blow-up that motivated page-granularity patches.
//  C. Xdelta compression level (Section 4.1.2): level 1 vs 9 trades patch
//     size against encode time; the paper chose 1 to keep restores fast.
//  D. Restore-time optimisation (Section 4.2): pre-doing namespace/process-
//     tree work at dedup time (650 ms -> ~140 ms claim).
#include <chrono>
#include <cstdio>

#include "bench_util.h"

using namespace medes;

namespace {

struct AgentRig {
  explicit AgentRig(DedupAgentOptions agent_opts = {})
      : cluster([] {
          ClusterOptions c;
          c.num_nodes = 2;
          c.node_memory_mb = 1e9;
          c.bytes_per_mb = 32768;
          return c;
        }()),
        fabric({}, [this](const PageLocation& loc) { return cluster.ReadBasePage(loc); }),
        agent(cluster, registry, fabric, agent_opts) {}

  Sandbox& Warm(const std::string& name, NodeId node) {
    Sandbox& sb = cluster.Spawn(ProfileByName(name), node, SimTime{});
    cluster.MarkWarm(sb, SimTime{});
    return sb;
  }

  Cluster cluster;
  FingerprintRegistry registry;
  RdmaFabric fabric;
  DedupAgent agent;
};

}  // namespace

int main() {
  bench::Header("Design ablations", "Isolating Medes's individual mechanisms");

  bench::Section("A. Value sampling vs random-offset fingerprints (Difference Engine)");
  {
    // The discriminating case is *shifted* content (ASLR's sub-page stack
    // randomisation, allocator drift): content-defined selection re-finds
    // the same chunks wherever they land; fixed random offsets do not.
    LibraryPool pool(0x11b9, 32768);
    MemoryImage base_img = BuildSandboxImage(ProfileByName("LinAlg"), pool, {.instance_seed = 1});
    // A byte-identical image shifted by 16 B (pages re-tiled over the
    // shifted stream — every page boundary moves).
    std::vector<uint8_t> shifted(base_img.bytes().begin() + 16, base_img.bytes().end());
    shifted.resize(base_img.SizeBytes() - kPageSize, 0);  // whole pages only
    std::printf("%-18s %18s %18s\n", "sampling", "aligned-page hits", "shifted-page hits");
    for (auto mode : {SamplingMode::kValueSampled, SamplingMode::kRandomOffsets}) {
      FingerprintOptions fopts;
      fopts.mode = mode;
      PageFingerprinter fp(fopts);
      FingerprintRegistry registry;
      registry.InsertBaseSandbox(NodeId{0}, SandboxId{1},
                                 fp.FingerprintImage(base_img.bytes(), kPageSize));
      size_t aligned_hits = 0, shifted_hits = 0, pages = 0;
      for (size_t p = 0; p + 1 < base_img.NumPages(); ++p) {
        ++pages;
        aligned_hits += registry.FindBasePage(fp.FingerprintPage(base_img.Page(p)), NodeId{0}).has_value();
        std::span<const uint8_t> sh(shifted.data() + p * kPageSize, kPageSize);
        shifted_hits += registry.FindBasePage(fp.FingerprintPage(sh), NodeId{0}).has_value();
      }
      std::printf("%-18s %16.1f%% %16.1f%%\n",
                  mode == SamplingMode::kValueSampled ? "value-sampled" : "random-offsets",
                  100.0 * static_cast<double>(aligned_hits) / static_cast<double>(pages),
                  100.0 * static_cast<double>(shifted_hits) / static_cast<double>(pages));
    }
    std::printf("(paper Section 8: Difference Engine's random-offset fingerprints are less\n"
                " effective at sub-page granularity; EndRE-style value sampling is robust)\n");
  }

  bench::Section("B. Elimination granularity: page patches vs per-chunk metadata");
  {
    // Paper Section 4.1.2: ~100 MB sandboxes => ~25K pages => 1.6M 64 B
    // chunks; per-chunk metadata (location: 16 B + table overhead ~24 B)
    // would dwarf per-page patch records.
    for (double mb : {17.0, 48.0, 90.0}) {
      const double pages = mb * 256;
      const double chunks = mb * (1 << 20) / 64.0;
      const double page_meta_mb = pages * 48 / (1024.0 * 1024.0);     // PatchRecord + slot
      const double chunk_meta_mb = chunks * 40 / (1024.0 * 1024.0);   // per-chunk bookkeeping
      std::printf("  %5.1f MB sandbox: %8.0f pages -> %6.2f MB metadata | %10.0f chunks -> "
                  "%7.1f MB metadata (%.0fx)\n",
                  mb, pages, page_meta_mb, chunks, chunk_meta_mb, chunk_meta_mb / page_meta_mb);
    }
  }

  bench::Section("C. Xdelta compression level: patch size vs encode effort");
  std::printf("%-8s %14s %16s %16s\n", "level", "avg patch (B)", "saved MB (10 fns)",
              "encode wall (ms)");
  for (int level : {0, 1, 3, 9}) {
    DedupAgentOptions opts;
    opts.delta.level = level;
    AgentRig rig(opts);
    for (const auto& p : FunctionBenchProfiles()) {
      rig.agent.DesignateBase(rig.Warm(p.name, NodeId{0}));
    }
    size_t patch_bytes = 0, pages = 0;
    double saved = 0;
    auto start = std::chrono::steady_clock::now();
    for (const auto& p : FunctionBenchProfiles()) {
      DedupOpResult d = rig.agent.DedupOp(rig.Warm(p.name, NodeId{1}), SimTime{1});
      patch_bytes += d.patch_bytes;
      pages += d.pages_deduped;
      saved += static_cast<double>(d.saved_bytes) / 32768.0;
    }
    auto wall = std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    std::printf("%-8d %14.0f %16.1f %16lld\n", level,
                pages ? static_cast<double>(patch_bytes) / static_cast<double>(pages) : 0.0,
                saved, static_cast<long long>(wall));
  }
  std::printf("(the paper runs level 1: higher levels trade encode effort for patch bytes;\n"
              " level 0 disables matching entirely — only zero pages are eliminated)\n");

  bench::Section("D. Restore-time optimisation: namespace/ptree work pre-done at dedup");
  {
    AgentRig rig;
    rig.agent.DesignateBase(rig.Warm("LinAlg", NodeId{0}));
    Sandbox& sb = rig.Warm("LinAlg", NodeId{1});
    rig.agent.DedupOp(sb, SimTime{1});
    RestoreOpResult prepared = rig.agent.RestoreOp(sb, SimTime{2});
    rig.cluster.MarkRunning(sb, SimTime{3});
    rig.cluster.MarkWarm(sb, SimTime{4});
    rig.agent.DedupOp(sb, SimTime{5});
    sb.namespaces_prepared = false;  // ablate the optimisation
    RestoreOpResult unprepared = rig.agent.RestoreOp(sb, SimTime{6});
    std::printf("dedup start with optimisation   : %6.0f ms\n", ToMillis(prepared.total_time));
    std::printf("dedup start without optimisation: %6.0f ms\n", ToMillis(unprepared.total_time));
    std::printf("(paper Section 4.2: 650 ms -> ~140 ms)\n");
  }
  return 0;
}
