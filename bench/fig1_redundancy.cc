// Figure 1 — memory redundancy in serverless workloads (Section 2.1).
//
// (a) Same-function redundancy vs chunk size, ASLR disabled.
// (b) Same, ASLR enabled.
// (c) Cross-function redundancy matrix at 64 B chunks.
//
// Methodology: two freshly-loaded sandbox images per function; redundancy of
// B w.r.t. A measured with the paper's fixed-stride chunk sampling +
// extension method (chunking/redundancy.h). Paper expectation: 0.85-0.9 at
// 64 B falling toward ~0.55-0.75 at 1 KiB; ASLR costs ~5% at 64 B; the
// cross-function matrix sits around 0.84-0.90.
#include <cstdio>

#include "bench_util.h"

using namespace medes;

namespace {

// Quarter-scale images keep the 10x10 matrix fast while leaving thousands of
// probes per measurement.
constexpr size_t kBytesPerMb = 262144;

MemoryImage Fresh(const FunctionProfile& profile, const LibraryPool& pool, uint64_t seed,
                  bool aslr) {
  return BuildSandboxImage(profile, pool, FreshImageOptions(seed, aslr));
}

void ChunkSweep(const LibraryPool& pool, bool aslr) {
  const size_t chunk_sizes[] = {64, 128, 256, 512, 1024};
  std::printf("%-12s", "function");
  for (size_t cs : chunk_sizes) {
    std::printf(" %6zuB", cs);
  }
  std::printf("\n");
  for (const auto& profile : FunctionBenchProfiles()) {
    MemoryImage a = Fresh(profile, pool, 1, aslr);
    MemoryImage b = Fresh(profile, pool, 2, aslr);
    std::printf("%-12s", profile.name.c_str());
    for (size_t cs : chunk_sizes) {
      double frac = MeasureRedundancy(a.bytes(), b.bytes(), {.chunk_size = cs}).Fraction();
      std::printf(" %6.3f ", frac);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  bench::Header("Figure 1: Memory redundancy in serverless workloads",
                "FunctionBench pairs, fixed-stride sampling + extension (Section 2.1)");
  LibraryPool pool(0x11b9, kBytesPerMb);

  bench::Section("Fig 1a: same-function redundancy vs chunk size, ASLR disabled");
  std::printf("(paper: ~0.85-0.90 at 64B, decaying with chunk size)\n");
  ChunkSweep(pool, /*aslr=*/false);

  bench::Section("Fig 1b: same-function redundancy vs chunk size, ASLR enabled");
  std::printf("(paper: ~5%% below the ASLR-disabled curve at 64B)\n");
  ChunkSweep(pool, /*aslr=*/true);

  bench::Section("Fig 1c: cross-function redundancy at 64B chunks (row w.r.t. column)");
  std::printf("(paper: 0.84-0.90 across all pairs)\n");
  const auto& profiles = FunctionBenchProfiles();
  // Distinct sandbox instances for rows and columns, so the diagonal is the
  // same-function (not same-sandbox) redundancy, as in the paper.
  std::vector<MemoryImage> row_images, col_images;
  for (const auto& profile : profiles) {
    row_images.push_back(Fresh(profile, pool, 10 + static_cast<uint64_t>(profile.id), false));
    col_images.push_back(Fresh(profile, pool, 30 + static_cast<uint64_t>(profile.id), false));
  }
  std::printf("%-12s", "");
  for (const auto& p : profiles) {
    std::printf(" %7.7s", p.name.c_str());
  }
  std::printf("\n");
  for (size_t row = 0; row < profiles.size(); ++row) {
    std::printf("%-12s", profiles[row].name.c_str());
    for (size_t col = 0; col < profiles.size(); ++col) {
      double frac = MeasureRedundancy(col_images[col].bytes(), row_images[row].bytes()).Fraction();
      std::printf(" %7.3f", frac);
    }
    std::printf("\n");
  }
  return 0;
}
