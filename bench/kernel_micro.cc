// Per-kernel microbenchmark: MB/s of each hot-path kernel at every tier the
// machine can bind — 64-byte chunk hashing (single and batched), the bulk
// rolling-hash scan, match extension, and delta decode. Emits JSON with a
// speedup-vs-scalar column so CI can smoke-check the dispatch layer and
// archive per-tier throughput.
//
// Workload sizes mirror the real pipeline: 4 KiB pages, 64 B chunks, ~8
// sampled chunks per page. MEDES_BENCH_KERNEL_MS overrides the per-kernel
// measurement budget (milliseconds, default 200).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/kernels/memops.h"
#include "common/kernels/rolling_kernels.h"
#include "common/kernels/sha1_kernels.h"

using namespace medes;

namespace {

constexpr size_t kPage = 4096;
constexpr size_t kChunk = 64;
constexpr size_t kChunksPerBatch = 8;  // cardinality-ish sampled chunks/page

double BudgetMs() {
  const char* env = std::getenv("MEDES_BENCH_KERNEL_MS");
  if (env != nullptr) {
    double v = std::strtod(env, nullptr);
    if (v > 0) {
      return v;
    }
  }
  return 200.0;
}

std::vector<uint8_t> RandomBytes(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> out(n);
  for (auto& b : out) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return out;
}

// Runs `body(iters)` repeatedly until the budget elapses; returns MB/s given
// `bytes_per_iter`. The body must consume its input fully per iteration.
template <typename Body>
double MeasureMBps(size_t bytes_per_iter, Body&& body) {
  const double budget_ms = BudgetMs();
  // Warm up and self-calibrate the batch size to ~1/20 of the budget.
  size_t batch = 1;
  for (;;) {
    auto t0 = std::chrono::steady_clock::now();
    body(batch);
    double ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
                    .count();
    if (ms * 20.0 >= budget_ms || batch >= (size_t{1} << 24)) {
      break;
    }
    batch *= 2;
  }
  size_t iters = 0;
  auto start = std::chrono::steady_clock::now();
  double elapsed_ms = 0;
  do {
    body(batch);
    iters += batch;
    elapsed_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
            .count();
  } while (elapsed_ms < budget_ms);
  double bytes = static_cast<double>(iters) * static_cast<double>(bytes_per_iter);
  return bytes / (elapsed_ms / 1000.0) / (1024.0 * 1024.0);
}

volatile uint64_t g_sink = 0;  // defeats dead-code elimination

struct KernelResult {
  std::string name;
  std::vector<std::pair<kernels::Tier, double>> mbps;  // per bound tier
};

std::vector<kernels::Tier> BindableTiers() {
  std::vector<kernels::Tier> tiers;
  for (kernels::Tier t : {kernels::Tier::kScalar, kernels::Tier::kSwar, kernels::Tier::kSse42,
                          kernels::Tier::kAvx2}) {
    if (t <= kernels::MaxSupportedTier()) {
      tiers.push_back(t);
    }
  }
  return tiers;
}

// Benchmarks one kernel across every bindable tier. `fn(iters)` runs the
// dispatched kernel `iters` times over `bytes_per_iter` bytes each.
template <typename Body>
KernelResult RunKernel(const char* name, size_t bytes_per_iter, Body&& body) {
  KernelResult r;
  r.name = name;
  for (kernels::Tier tier : BindableTiers()) {
    kernels::ForceTier(tier);
    r.mbps.emplace_back(tier, MeasureMBps(bytes_per_iter, body));
  }
  kernels::ResetTierFromEnvironment();
  return r;
}

}  // namespace

int main() {
  const auto page = RandomBytes(kPage, 1);
  const auto base = RandomBytes(kPage, 2);
  std::vector<uint8_t> target = base;
  {
    Rng rng(3);
    for (int i = 0; i < 40; ++i) {
      target[rng.Below(target.size())] = static_cast<uint8_t>(rng.Next());
    }
  }
  const std::vector<uint8_t> delta = DeltaEncode(base, target);

  std::vector<const uint8_t*> chunk_ptrs(kChunksPerBatch);
  for (size_t i = 0; i < kChunksPerBatch; ++i) {
    chunk_ptrs[i] = page.data() + i * (kPage / kChunksPerBatch);
  }

  std::vector<KernelResult> results;

  // 1. Single 64-byte chunk digest (the Sha1::HashChunk64 fast path).
  results.push_back(RunKernel("sha1_chunk64", kChunk, [&](size_t iters) {
    uint32_t state[5];
    for (size_t i = 0; i < iters; ++i) {
      kernels::Sha1Chunk64(page.data() + (i % kChunksPerBatch) * kChunk, state);
      g_sink = g_sink + state[0];
    }
  }));

  // 2. Batched chunk digests — what FingerprintPage issues per page.
  results.push_back(
      RunKernel("sha1_chunk64_batch", kChunk * kChunksPerBatch, [&](size_t iters) {
        uint32_t states[kChunksPerBatch][5];
        for (size_t i = 0; i < iters; ++i) {
          kernels::Sha1Chunk64Batch(chunk_ptrs.data(), kChunksPerBatch, states);
          g_sink = g_sink + states[0][0];
        }
      }));

  // 3. Rolling-hash scan of a full page (every 64 B window).
  {
    uint64_t pow_w1 = 1;
    for (size_t i = 1; i < kChunk; ++i) {
      pow_w1 *= kernels::kRollingBase;
    }
    static std::vector<uint64_t> hashes(kPage - kChunk + 1);
    results.push_back(RunKernel("rolling_bulk_page", kPage, [&, pow_w1](size_t iters) {
      for (size_t i = 0; i < iters; ++i) {
        kernels::RollingBulk(page.data(), kPage, kChunk, pow_w1, hashes.data());
        g_sink = g_sink + hashes.back();
      }
    }));
  }

  // 4. Match extension over identical pages (the long-match worst case).
  results.push_back(RunKernel("match_forward_page", kPage, [&](size_t iters) {
    for (size_t i = 0; i < iters; ++i) {
      g_sink = g_sink + kernels::MatchForward(base.data(), base.data(), kPage);
    }
  }));

  // 5. Delta decode of a realistic sparse-edit page patch.
  {
    static std::vector<uint8_t> out;
    results.push_back(RunKernel("delta_decode_page", kPage, [&](size_t iters) {
      for (size_t i = 0; i < iters; ++i) {
        DeltaDecodeInto(base, delta, out);
        g_sink = g_sink + out[0];
      }
    }));
  }

  // 5b. Reference: the pre-kernels decoder (validate-while-growing via
  // vector::insert) so the JSON shows the structural win of the pre-sized
  // single-pass decode, which no tier column can (CopyBytes is not tiered).
  results.push_back(RunKernel("delta_decode_page_legacy", kPage, [&](size_t iters) {
    for (size_t i = 0; i < iters; ++i) {
      size_t pos = 4;
      size_t p2 = pos;
      delta_internal::ReadVarint(delta, p2);
      uint64_t target_len = delta_internal::ReadVarint(delta, p2);
      pos = p2;
      std::vector<uint8_t> out;
      out.reserve(target_len);
      while (pos < delta.size()) {
        uint8_t op = delta[pos++];
        if (op == 0x00) {
          uint64_t len = delta_internal::ReadVarint(delta, pos);
          out.insert(out.end(), delta.begin() + static_cast<ptrdiff_t>(pos),
                     delta.begin() + static_cast<ptrdiff_t>(pos + len));
          pos += len;
        } else {
          uint64_t off = delta_internal::ReadVarint(delta, pos);
          uint64_t len = delta_internal::ReadVarint(delta, pos);
          out.insert(out.end(), base.begin() + static_cast<ptrdiff_t>(off),
                     base.begin() + static_cast<ptrdiff_t>(off + len));
        }
      }
      g_sink = g_sink + out[0];
    }
  }));

  // 6. Whole-page fingerprint through the public API (ties 1-3 together).
  {
    PageFingerprinter fp({});
    results.push_back(RunKernel("fingerprint_page", kPage, [&](size_t iters) {
      for (size_t i = 0; i < iters; ++i) {
        g_sink = g_sink + fp.FingerprintPage(page).Cardinality();
      }
    }));
  }

  const kernels::CpuFeatures feats = kernels::DetectCpuFeatures();
  bench::JsonWriter w;
  w.BeginObject();
  bench::WriteMetadata(w, "kernel_micro");
  w.BeginObject("cpu")
      .Field("sse42", feats.sse42)
      .Field("avx2", feats.avx2)
      .Field("sha_ni", feats.sha_ni)
      .Field("bmi2", feats.bmi2)
      .EndObject();
  w.Field("max_tier", kernels::TierName(kernels::MaxSupportedTier()))
      .Field("sha_ni_active_at_max", kernels::ShaNiActive());
  w.BeginArray("kernels");
  for (const KernelResult& r : results) {
    const double scalar = r.mbps.front().second;
    w.BeginObject().Field("name", r.name).BeginArray("tiers");
    for (const auto& [tier, mbps] : r.mbps) {
      w.BeginObject()
          .Field("tier", kernels::TierName(tier))
          .Field("mb_per_sec", mbps, 1)
          .Field("speedup_vs_scalar", scalar > 0 ? mbps / scalar : 0.0)
          .EndObject();
    }
    w.EndArray().EndObject();
  }
  w.EndArray().EndObject();
  std::printf("%s\n", w.str().c_str());
  return 0;
}
