// Figure 15 — sensitivity to the keep-dedup period (Section 7.8).
//
// The keep-dedup period controls how long a dedup sandbox stays in memory
// before being purged. The paper sweeps 5-20 minutes (plus no-dedup): longer
// periods first cut cold starts 10-38% (requests hit dedup starts instead),
// but beyond a threshold stale dedup sandboxes occupy memory and cold starts
// rise again.
#include <cstdio>

#include "bench_util.h"

using namespace medes;

int main() {
  bench::Header("Figure 15: sensitivity to the keep-dedup period",
                "Representative workload; keep-dedup in {none, 5, 10, 15, 20} min");
  auto trace = bench::RepresentativeWorkload(30 * kMinute);

  std::printf("%-14s %12s %13s %10s %12s\n", "keep-dedup", "cold starts", "dedup starts",
              "evictions", "mean mem(MB)");
  {
    // "No Dedup": Medes with deduplication disabled = fixed keep-alive.
    RunMetrics m =
        ServerlessPlatform(bench::RepresentativeOptions(PolicyKind::kFixedKeepAlive)).Run(trace);
    std::printf("%-14s %12lu %13lu %10lu %12.0f\n", "No Dedup", m.TotalColdStarts(),
                bench::TotalDedupStarts(m), m.evictions, m.MeanMemoryMb());
  }
  for (int kd_min : {5, 10, 15, 20}) {
    PlatformOptions opts = bench::RepresentativeOptions(PolicyKind::kMedes);
    opts.medes.keep_dedup = kd_min * kMinute;
    RunMetrics m = ServerlessPlatform(opts).Run(trace);
    std::printf("KD-%-2d min     %12lu %13lu %10lu %12.0f\n", kd_min, m.TotalColdStarts(),
                bench::TotalDedupStarts(m), m.evictions, m.MeanMemoryMb());
  }
  std::printf("\n(paper: cold starts improve 10-38%% as keep-dedup grows, then regress at 20 min\n"
              " as stale dedup sandboxes cause memory-pressure evictions)\n");
  return 0;
}
