// Capacity campaign: how far does the event core scale?
//
// Sweeps cluster size (10/50/100 worker nodes) with request rate scaled
// proportionally, under the controller's P1 (latency) and P2 (combined)
// objectives, and reports end-to-end simulator throughput: events/sec, wall
// seconds, cold-start rate, P99 latency, memory saved, and cross-node
// transport bytes per configuration.
//
// The top configuration (100 nodes, ~1.4M requests over a simulated hour) is
// measured two more ways:
//   - op-stream replay: its schedule/cancel/fire log (sim/replay.h) is
//     re-driven through both event engines with payloads reduced to their
//     recorded size class, isolating pure scheduler cost (speedup_vs_heap);
//   - pre-refactor baseline: the same campaign against the full pre-refactor
//     event core — binary-heap scheduler, whole trace bulk-scheduled up
//     front, one idle-expiry timer per sandbox (each re-running the
//     controller decision), scan-based state counts. Reported both
//     end-to-end (campaign_speedup_vs_pre_refactor, callback cost included)
//     and scheduler-isolated (scheduler_speedup_vs_pre_refactor: each
//     stack's own op stream replayed on its own engine with no-op payloads).
//
// Usage: cluster_scale [output.json]        (default: BENCH_cluster_scale.json)
// Env:   MEDES_CLUSTER_SCALE_MODE=smoke     CI perf-smoke config (one small
//                                           sweep point; same JSON schema)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sim/replay.h"

using namespace medes;

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct SweepConfig {
  int nodes = 0;
  PolicyObjective objective = PolicyObjective::kLatency;
  const char* objective_name = "P1_latency";
  double rate_scale = 0;
  SimDuration duration;
};

struct SweepResult {
  SweepConfig config;
  uint64_t requests = 0;
  uint64_t sim_events = 0;
  double wall_seconds = 0;
  double events_per_sec = 0;
  double cold_start_rate = 0;
  double p99_e2e_ms = 0;
  double memory_saved_mb = 0;
  uint64_t transport_bytes = 0;
};

PlatformOptions OptionsFor(const SweepConfig& c) {
  PlatformOptions options = bench::EvalOptions(PolicyKind::kMedes);
  options.cluster.num_nodes = c.nodes;
  options.medes.objective = c.objective;
  return options;
}

std::vector<TraceEvent> TraceFor(const SweepConfig& c) {
  TraceOptions topts;
  topts.duration = c.duration;
  topts.rate_scale = c.rate_scale;
  return GenerateTrace(DefaultAzurePatterns(), topts);
}

double OverallP99Ms(const RunMetrics& m) {
  if (m.requests.empty()) {
    return 0;
  }
  std::vector<double> e2e_ms;
  e2e_ms.reserve(m.requests.size());
  for (const RequestRecord& r : m.requests) {
    e2e_ms.push_back(ToSeconds(r.e2e) * 1000.0);
  }
  const size_t k = static_cast<size_t>(0.99 * static_cast<double>(e2e_ms.size() - 1));
  std::nth_element(e2e_ms.begin(), e2e_ms.begin() + static_cast<ptrdiff_t>(k), e2e_ms.end());
  return e2e_ms[k];
}

double TotalSavedMb(const RunMetrics& m) {
  double total = 0;
  for (const FunctionMetrics& f : m.per_function) {
    total += f.total_saved_mb;
  }
  return total;
}

uint64_t TotalTransportBytes(const RunMetrics& m) {
  uint64_t total = 0;
  for (const MessageStats& s : m.transport.by_type) {
    total += s.bytes;
  }
  return total;
}

// One end-to-end platform run. `engine` selects the event core; `log`, when
// non-null, records the run's op stream for the replay comparison.
// `pre_refactor` re-enables the full pre-refactor event core: the binary-heap
// scheduler, the whole trace bulk-scheduled up front (instead of the chained
// streaming feed), one idle-expiry timer per sandbox (each re-running the
// controller's decision), and scan-based sandbox state counting. Workload
// results are identical (pinned by tests); only the cost model changes.
SweepResult RunSweepPoint(const SweepConfig& c, SimEngine engine, SimOpLog* log,
                          bool pre_refactor = false, RunMetrics* metrics_out = nullptr) {
  PlatformOptions options = OptionsFor(c);
  options.sim.engine = engine;
  if (pre_refactor) {
    options.coalesce_idle_expiry = false;
    options.cluster.incremental_state_counts = false;
    options.stream_trace_arrivals = false;  // bulk-feed the whole trace up front
  }
  const std::vector<TraceEvent> trace = TraceFor(c);

  ServerlessPlatform platform(options);
  if (log != nullptr) {
    platform.sim().SetOpLog(log);
  }
  const auto t0 = std::chrono::steady_clock::now();
  RunMetrics metrics = platform.Run(trace);
  const double wall = SecondsSince(t0);
  platform.sim().SetOpLog(nullptr);

  SweepResult r;
  r.config = c;
  r.requests = metrics.TotalRequests();
  r.sim_events = platform.sim().stats().fired;
  r.wall_seconds = wall;
  r.events_per_sec = wall > 0 ? static_cast<double>(r.sim_events) / wall : 0;
  r.cold_start_rate = r.requests > 0 ? static_cast<double>(metrics.TotalColdStarts()) /
                                           static_cast<double>(r.requests)
                                     : 0;
  r.p99_e2e_ms = OverallP99Ms(metrics);
  r.memory_saved_mb = TotalSavedMb(metrics);
  r.transport_bytes = TotalTransportBytes(metrics);
  if (metrics_out != nullptr) {
    *metrics_out = std::move(metrics);
  }
  return r;
}

struct ReplayTiming {
  double wall_seconds = 0;
  double events_per_sec = 0;
  ReplayResult result;
};

// Re-drives `log` through a fresh engine; best-of-`iters` wall time.
ReplayTiming TimeReplay(const SimOpLog& log, SimEngine engine, int iters) {
  ReplayTiming best;
  best.wall_seconds = 1e300;
  for (int i = 0; i < iters; ++i) {
    SimulationOptions sopts;
    sopts.engine = engine;
    const auto t0 = std::chrono::steady_clock::now();
    ReplayResult res = ReplaySimOps(log, sopts);
    const double wall = SecondsSince(t0);
    if (wall < best.wall_seconds) {
      best.wall_seconds = wall;
      best.result = res;
    }
  }
  best.events_per_sec = best.wall_seconds > 0
                            ? static_cast<double>(best.result.events_processed) / best.wall_seconds
                            : 0;
  return best;
}

void WriteSweepResult(bench::JsonWriter& w, const SweepResult& r) {
  w.BeginObject()
      .Field("nodes", r.config.nodes)
      .Field("objective", r.config.objective_name)
      .Field("rate_scale", r.config.rate_scale)
      .Field("trace_duration_s", ToSeconds(r.config.duration), 0)
      .Field("requests", r.requests)
      .Field("sim_events", r.sim_events)
      .Field("wall_seconds", r.wall_seconds, 3)
      .Field("events_per_sec", r.events_per_sec, 0)
      .Field("cold_start_rate", r.cold_start_rate, 4)
      .Field("p99_e2e_ms", r.p99_e2e_ms)
      .Field("memory_saved_mb", r.memory_saved_mb)
      .Field("transport_bytes", r.transport_bytes)
      .EndObject();
}

}  // namespace

int main(int argc, char** argv) {
  bench::StartWallClock();
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_cluster_scale.json";
  const char* mode_env = std::getenv("MEDES_CLUSTER_SCALE_MODE");
  const bool smoke = mode_env != nullptr && std::string(mode_env) == "smoke";

  bench::Header("cluster_scale: event-core capacity campaign",
                "node sweep under P1/P2 + calendar-vs-heap engine comparison");

  // Rate scales with cluster size so per-node load matches the paper's
  // 19-worker evaluation setup at its 5x magnification.
  std::vector<SweepConfig> sweep;
  const auto add = [&sweep](int nodes, PolicyObjective obj, const char* name,
                            SimDuration duration) {
    SweepConfig c;
    c.nodes = nodes;
    c.objective = obj;
    c.objective_name = name;
    c.rate_scale = 5.0 * static_cast<double>(nodes) / 19.0;
    c.duration = duration;
    sweep.push_back(c);
  };
  if (smoke) {
    add(4, PolicyObjective::kLatency, "P1_latency", 10 * kMinute);
    add(4, PolicyObjective::kCombined, "P2_combined", 10 * kMinute);
  } else {
    for (int nodes : {10, 50, 100}) {
      add(nodes, PolicyObjective::kLatency, "P1_latency", kHour);
      add(nodes, PolicyObjective::kCombined, "P2_combined", kHour);
    }
  }

  // End-to-end sweep (calendar engine, the default). The last config is the
  // top one; its op stream feeds the engine comparison.
  std::vector<SweepResult> results;
  SimOpLog top_log;
  for (size_t i = 0; i < sweep.size(); ++i) {
    const bool is_top = i + 1 == sweep.size();
    SweepResult r = RunSweepPoint(sweep[i], SimEngine::kCalendar, is_top ? &top_log : nullptr);
    std::printf("nodes=%-3d %-11s requests=%-8" PRIu64 " events=%-9" PRIu64
                " wall=%.2fs events/s=%.0f cold=%.3f p99=%.1fms\n",
                r.config.nodes, r.config.objective_name, r.requests, r.sim_events, r.wall_seconds,
                r.events_per_sec, r.cold_start_rate, r.p99_e2e_ms);
    results.push_back(r);
  }
  const SweepResult& top = results.back();

  // Engine core comparison: the top config's op stream through both engines
  // with no-op payloads. Fire hashes must match (bit-identical fire order).
  bench::Section("engine comparison (op-stream replay, no-op payloads)");
  const int iters = smoke ? 1 : 3;
  const ReplayTiming cal = TimeReplay(top_log, SimEngine::kCalendar, iters);
  const ReplayTiming heap = TimeReplay(top_log, SimEngine::kHeap, iters);
  const bool hash_match = cal.result.fire_hash == heap.result.fire_hash &&
                          cal.result.events_processed == heap.result.events_processed;
  const double speedup = heap.wall_seconds > 0 && cal.wall_seconds > 0
                             ? heap.wall_seconds / cal.wall_seconds
                             : 0;
  std::printf("replayed %" PRIu64 " events: calendar %.3fs (%.0f ev/s), heap %.3fs (%.0f ev/s)\n",
              cal.result.events_processed, cal.wall_seconds, cal.events_per_sec,
              heap.wall_seconds, heap.events_per_sec);
  std::printf("speedup_vs_heap=%.2fx fire_hash_match=%s\n", speedup,
              hash_match ? "true" : "false");

  // The before/after campaign: the same top config against the full
  // pre-refactor event core (binary-heap scheduler, per-sandbox idle-expiry
  // timers each re-running the controller decision, scan-based state counts).
  // Workload-visible metrics must be unchanged — sim_events differs by design
  // (coalescing replaced thousands of per-sandbox timers with bucket sweeps),
  // so the honest throughput comparison is each run's own events/sec.
  bench::Section("pre-refactor baseline (heap + bulk feed + per-sandbox timers + scan counts)");
  SimOpLog pre_log;
  SweepResult pre = RunSweepPoint(top.config, SimEngine::kHeap, &pre_log, /*pre_refactor=*/true);
  const bool metrics_match =
      pre.requests == top.requests && pre.cold_start_rate == top.cold_start_rate &&
      pre.p99_e2e_ms == top.p99_e2e_ms && pre.memory_saved_mb == top.memory_saved_mb &&
      pre.transport_bytes == top.transport_bytes;
  const double campaign_speedup =
      pre.events_per_sec > 0 ? top.events_per_sec / pre.events_per_sec : 0;
  std::printf("pre-refactor: wall=%.2fs events=%" PRIu64
              " events/s=%.0f  campaign_speedup=%.2fx metrics_match=%s\n",
              pre.wall_seconds, pre.sim_events, pre.events_per_sec, campaign_speedup,
              metrics_match ? "true" : "false");

  // Scheduler-isolated before/after: each stack's own op stream re-driven
  // through its own engine with no-op payloads. "Before" replays the
  // pre-refactor stack's stream (1.35M bulk-fed arrivals camped in the heap,
  // per-sandbox timer churn) on the heap engine; "after" replays the
  // refactored stack's stream on the calendar engine. This is the headline
  // events/sec number with callback (platform) cost excluded.
  const ReplayTiming sched_before = TimeReplay(pre_log, SimEngine::kHeap, iters);
  const double scheduler_speedup = sched_before.events_per_sec > 0
                                       ? cal.events_per_sec / sched_before.events_per_sec
                                       : 0;
  std::printf("scheduler only: before %.3fs (%.0f ev/s, %" PRIu64
              " events) after %.3fs (%.0f ev/s, %" PRIu64 " events)  speedup=%.2fx\n",
              sched_before.wall_seconds, sched_before.events_per_sec,
              sched_before.result.events_processed, cal.wall_seconds, cal.events_per_sec,
              cal.result.events_processed, scheduler_speedup);

  bench::JsonWriter w;
  w.BeginObject();
  bench::WriteMetadata(w, "cluster_scale");
  w.Field("mode", smoke ? "smoke" : "full").Field("engine", ToString(SimEngine::kCalendar));
  w.BeginArray("sweep");
  for (const SweepResult& r : results) {
    WriteSweepResult(w, r);
  }
  w.EndArray();
  w.BeginObject("engine_comparison")
      .Field("nodes", top.config.nodes)
      .Field("objective", top.config.objective_name)
      .Field("requests", top.requests)
      .Field("replayed_events", cal.result.events_processed)
      .Field("replay_iters", iters)
      .Field("calendar_wall_seconds", cal.wall_seconds, 4)
      .Field("calendar_events_per_sec", cal.events_per_sec, 0)
      .Field("heap_wall_seconds", heap.wall_seconds, 4)
      .Field("heap_events_per_sec", heap.events_per_sec, 0)
      .Field("speedup_vs_heap", speedup)
      .Field("fire_hash_match", hash_match)
      .EndObject();
  w.BeginObject("pre_refactor_baseline")
      .Field("nodes", top.config.nodes)
      .Field("objective", top.config.objective_name)
      .Field("requests", pre.requests)
      .Field("sim_events", pre.sim_events)
      .Field("wall_seconds", pre.wall_seconds, 3)
      .Field("events_per_sec", pre.events_per_sec, 0)
      .Field("refactored_events_per_sec", top.events_per_sec, 0)
      .Field("campaign_speedup_vs_pre_refactor", campaign_speedup)
      .Field("scheduler_events_per_sec_before", sched_before.events_per_sec, 0)
      .Field("scheduler_events_per_sec_after", cal.events_per_sec, 0)
      .Field("scheduler_speedup_vs_pre_refactor", scheduler_speedup)
      .Field("metrics_match", metrics_match)
      .EndObject();
  w.EndObject();

  bench::WriteTextFile(out_path, w.str() + "\n");
  bench::ExportObservability("cluster_scale");
  return hash_match && metrics_match ? 0 : 1;
}
