// Figure 16 — sensitivity to the fingerprint set cardinality (Section 7.8).
//
// More sampled chunk hashes per page identify base pages more accurately
// (per-sandbox savings grow: paper 28.8 -> 31.5 -> 32.54 MB) but every
// additional fingerprint pulls in more distinct base pages at restore time,
// inflating dedup starts (378 -> 478 -> 554 ms) and, through slower reuse,
// the tail (more cold starts).
#include <cstdio>

#include "bench_util.h"

using namespace medes;

int main() {
  bench::Header("Figure 16: sensitivity to fingerprint set cardinality",
                "Representative workload; cardinality in {5, 10, 20}");
  auto trace = bench::RepresentativeWorkload(30 * kMinute);

  bench::Section("Fig 16b-style summary per cardinality");
  std::printf("%-6s %12s %16s %18s %14s\n", "K", "cold starts", "savings/sandbox",
              "mean restore(ms)", "p999 slowdown");
  for (size_t k : {5u, 10u, 20u}) {
    PlatformOptions opts = bench::RepresentativeOptions(PolicyKind::kMedes);
    opts.agent.fingerprint.cardinality = k;
    // Widen value sampling so >= K candidates exist per page.
    opts.agent.fingerprint.sample_mask = (k > 5) ? 0x7f : 0x1ff;
    // Richer fingerprints surface more matching base pages; patches are
    // computed against the base page(s) of their RSCs (Section 4.1.2), so
    // restores fetch proportionally more pages.
    opts.agent.max_base_pages_per_page = k / 5;
    RunMetrics m = ServerlessPlatform(opts).Run(trace);
    double saved = 0;
    uint64_t ops = 0;
    SampleRecorder restore_ms;
    for (const auto& f : m.per_function) {
      saved += f.total_saved_mb;
      ops += f.dedup_ops;
      for (double v : f.restore_read_ms.samples()) {
        restore_ms.Record(v);
      }
    }
    // Fig 16a: function slowdown = e2e / exec. Report the 99.9p across all
    // requests of the representative set.
    SampleRecorder slowdown;
    for (const auto& r : m.requests) {
      const auto& p = FunctionBenchProfiles()[static_cast<size_t>(r.function)];
      slowdown.Record(static_cast<double>(r.e2e.value()) /
                      static_cast<double>(p.exec_time.value()));
    }
    double mean_restore = 0;
    {
      // mean of total restore time: read + compute + criu per function sample
      SampleRecorder total;
      for (const auto& f : m.per_function) {
        const auto& a = f.restore_read_ms.samples();
        const auto& b = f.restore_compute_ms.samples();
        const auto& c = f.restore_criu_ms.samples();
        for (size_t i = 0; i < a.size(); ++i) {
          total.Record(a[i] + b[i] + c[i]);
        }
      }
      mean_restore = total.Mean();
    }
    std::printf("%-6zu %12lu %13.1f MB %18.0f %13.2fx\n", k, m.TotalColdStarts(),
                ops ? saved / static_cast<double>(ops) : 0.0, mean_restore,
                slowdown.Percentile(0.999));
  }
  std::printf("\n(paper: savings 28.8 -> 31.5 -> 32.54 MB; restore 378 -> 478 -> 554 ms; tails\n"
              " inflate at higher cardinality)\n");
  return 0;
}
