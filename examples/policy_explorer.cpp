// policy_explorer: interactive exploration of the Section 5 sandbox
// management policy.
//
// Prints, for a chosen function and load, the warm/dedup split the policy
// picks across a sweep of latency targets (P1) and memory caps (P2), plus
// the resulting average startup latency and memory footprint.
//
//   $ ./policy_explorer [function-name] [sandboxes] [lambda]
//   $ ./policy_explorer RNNModel 20 4.0
#include <cstdio>
#include <cstdlib>
#include <string>

#include "medes.h"

using namespace medes;

int main(int argc, char** argv) {
  const std::string fn_name = argc > 1 ? argv[1] : "LinAlg";
  const int sandboxes = argc > 2 ? std::atoi(argv[2]) : 12;
  const double lambda = argc > 3 ? std::atof(argv[3]) : 2.0;
  const FunctionProfile& fn = ProfileByName(fn_name);

  MedesPolicyInputs in;
  in.total_sandboxes = sandboxes;
  in.lambda_max = lambda;
  in.warm_start_s = ToSeconds(fn.warm_start);
  in.dedup_start_s = ToSeconds(fn.cold_start) / 5.0;  // pre-measurement estimate
  in.reuse_warm_s = ToSeconds(fn.exec_time) + in.warm_start_s;
  in.reuse_dedup_s = ToSeconds(fn.exec_time) + in.dedup_start_s;
  in.warm_mb = fn.memory_mb;
  in.dedup_mb = 0.55 * fn.memory_mb;
  in.restore_overhead_mb = 0.25 * fn.memory_mb;

  std::printf("function=%s  C=%d sandboxes  lambda_max=%.2f req/s\n", fn.name.c_str(), sandboxes,
              lambda);
  std::printf("sW=%.0f ms  sD=%.0f ms  mW=%.1f MB  mD+mR=%.1f MB\n\n", 1000 * in.warm_start_s,
              1000 * in.dedup_start_s, in.warm_mb, in.dedup_mb + in.restore_overhead_mb);

  std::printf("P1 (latency target): min memory s.t. S <= alpha * sW\n");
  std::printf("%8s | %5s %5s | %12s %12s %s\n", "alpha", "W", "D", "S (ms)", "M (MB)", "feasible");
  for (double alpha : {1.0, 1.5, 2.0, 2.5, 3.0, 5.0, 8.0, 15.0, 50.0}) {
    MedesPolicyTargets t = SolveLatencyObjective(in, alpha);
    if (t.feasible) {
      std::printf("%8.1f | %5d %5d | %12.1f %12.1f yes\n", alpha, t.warm, t.dedup,
                  1000 * AverageStartupLatency(in, t.warm, t.dedup),
                  MemoryFootprintMb(in, t.warm, t.dedup));
    } else {
      std::printf("%8.1f | %5s %5s | %12s %12s NO -> aggressive-dedup fallback\n", alpha, "-",
                  "-", "-", "-");
    }
  }

  std::printf("\nP2 (memory cap): min S s.t. M <= M0\n");
  std::printf("%9s | %5s %5s | %12s %12s %s\n", "M0 (MB)", "W", "D", "S (ms)", "M (MB)",
              "feasible");
  const double all_warm = MemoryFootprintMb(in, sandboxes, 0);
  for (double frac : {1.1, 1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4}) {
    double cap = frac * all_warm;
    MedesPolicyTargets t = SolveMemoryObjective(in, cap);
    if (t.feasible) {
      std::printf("%9.0f | %5d %5d | %12.1f %12.1f yes\n", cap, t.warm, t.dedup,
                  1000 * AverageStartupLatency(in, t.warm, t.dedup),
                  MemoryFootprintMb(in, t.warm, t.dedup));
    } else {
      std::printf("%9.0f | %5s %5s | %12s %12s NO -> aggressive-dedup fallback\n", cap, "-", "-",
                  "-", "-");
    }
  }
  return 0;
}
