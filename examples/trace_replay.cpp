// trace_replay: run the full simulated serverless platform on an Azure-like
// trace under a chosen sandbox-management policy and print a run report.
//
//   $ ./trace_replay [policy] [minutes] [node_mb]
//   $ ./trace_replay medes 30 2048
//   $ ./trace_replay fixed 30 1024        (fixed 10-min keep-alive)
//   $ ./trace_replay adaptive 30 1024     (Azure-style adaptive keep-alive)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "medes.h"

using namespace medes;

int main(int argc, char** argv) {
  const std::string policy_name = argc > 1 ? argv[1] : "medes";
  const int minutes = argc > 2 ? std::atoi(argv[2]) : 15;
  const double node_mb = argc > 3 ? std::atof(argv[3]) : 2048;

  PolicyKind policy = PolicyKind::kMedes;
  if (policy_name == "fixed") {
    policy = PolicyKind::kFixedKeepAlive;
  } else if (policy_name == "adaptive") {
    policy = PolicyKind::kAdaptiveKeepAlive;
  } else if (policy_name != "medes") {
    std::fprintf(stderr, "usage: %s [medes|fixed|adaptive] [minutes] [node_mb]\n", argv[0]);
    return 1;
  }

  TraceOptions topts;
  topts.duration = minutes * kMinute;
  topts.rate_scale = 5.0;
  auto trace = GenerateTrace(DefaultAzurePatterns(), topts);

  PlatformOptions options = MakePlatformOptions(policy);
  options.cluster.node_memory_mb = node_mb;
  options.medes.alpha = 8.0;
  std::printf("policy=%s  trace=%d min (%zu requests)  cluster=%d nodes x %.0f MB\n",
              ToString(policy), minutes, trace.size(), options.cluster.num_nodes, node_mb);

  ServerlessPlatform platform(options);
  RunMetrics m = platform.Run(trace);

  std::printf("\n%-12s %8s %8s %8s %8s | %9s %9s %9s\n", "function", "reqs", "warm", "dedup",
              "cold", "p50(ms)", "p99(ms)", "p999(ms)");
  for (const auto& p : FunctionBenchProfiles()) {
    const auto& f = m.per_function[static_cast<size_t>(p.id)];
    if (f.TotalRequests() == 0) {
      continue;
    }
    std::printf("%-12s %8lu %8lu %8lu %8lu | %9.0f %9.0f %9.0f\n", p.name.c_str(),
                f.TotalRequests(), f.warm_starts, f.dedup_starts, f.cold_starts,
                f.e2e_ms.Percentile(0.5), f.e2e_ms.Percentile(0.99), f.e2e_ms.Percentile(0.999));
  }
  std::printf("\ncluster: mean memory %.1f GB (median %.1f), mean %.1f sandboxes resident\n",
              m.MeanMemoryMb() / 1024.0, m.MedianMemoryMb() / 1024.0, m.MeanSandboxesInMemory());
  std::printf("events : %lu spawns, %lu evictions, %lu dedup ops, %lu restores, %lu base "
              "designations\n",
              m.sandboxes_spawned, m.evictions, m.dedup_ops, m.restores, m.base_designations);
  if (policy == PolicyKind::kMedes) {
    std::printf("dedup  : %lu same-function pages, %lu cross-function pages (%.0f%% cross)\n",
                m.same_function_pages, m.cross_function_pages,
                m.same_function_pages + m.cross_function_pages
                    ? 100.0 * static_cast<double>(m.cross_function_pages) /
                          static_cast<double>(m.same_function_pages + m.cross_function_pages)
                    : 0.0);
    std::printf("rdma   : %lu remote reads (%.1f MB at image scale)\n", m.rdma.remote_reads,
                static_cast<double>(m.rdma.remote_bytes) / (1024.0 * 1024.0));
  }
  return 0;
}
