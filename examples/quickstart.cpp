// Quickstart: the Medes dedup/restore pipeline in ~60 lines.
//
// Builds a two-node cluster, designates a base sandbox, deduplicates a second
// sandbox of the same function against it, restores it byte-exact, and
// prints what happened at each step.
//
//   $ ./quickstart
#include <cstdio>

#include "medes.h"

using namespace medes;

int main() {
  // A small cluster: 2 worker nodes, 4 GB each. bytes_per_mb scales the
  // synthetic memory images (64 KiB of real bytes per represented MB here).
  ClusterOptions copts;
  copts.num_nodes = 2;
  copts.node_memory_mb = 4096;
  copts.bytes_per_mb = 65536;
  Cluster cluster(copts);

  // The controller-side fingerprint registry and the (simulated) RDMA fabric
  // through which base pages are read.
  FingerprintRegistry registry;
  RdmaFabric fabric({}, [&](const PageLocation& loc) { return cluster.ReadBasePage(loc); });
  DedupAgent agent(cluster, registry, fabric, {});

  const FunctionProfile& fn = ProfileByName("LinAlg");
  std::printf("function: %s (%.0f MB footprint, %.0f ms exec)\n", fn.name.c_str(), fn.memory_mb,
              ToMillis(fn.exec_time));

  // 1. A warm sandbox on node 0 becomes the base: its pages are fingerprinted
  //    with value-sampled 64 B chunks and published to the registry.
  Sandbox& base = cluster.Spawn(fn, /*node=*/NodeId{0}, /*now=*/SimTime{});
  cluster.MarkWarm(base, SimTime{});
  agent.DesignateBase(base);
  RegistryStats stats = registry.stats();
  std::printf("base designated: %zu chunk keys across %zu registry entries\n", stats.num_keys,
              stats.num_entries);

  // 2. A second warm sandbox on node 1 goes idle; the dedup op replaces its
  //    redundant pages with patches against the base (read over RDMA).
  Sandbox& idle = cluster.Spawn(fn, /*node=*/NodeId{1}, SimTime{});
  cluster.MarkWarm(idle, SimTime{});
  DedupOpResult dedup = agent.DedupOp(idle, /*now=*/SimTime{1});
  std::printf("dedup op: %zu/%zu pages patched (+%zu zero), %.1f MB saved, %.0f ms (background)\n",
              dedup.pages_deduped, dedup.pages_total, dedup.pages_zero,
              static_cast<double>(dedup.saved_bytes) / static_cast<double>(copts.bytes_per_mb),
              ToMillis(dedup.total_time));
  std::printf("footprint: %.1f MB warm -> %.1f MB dedup\n", cluster.WarmFootprintMb(idle),
              cluster.DedupFootprintMb(idle));

  // 3. A request arrives: the dedup sandbox is restored — base pages fetched,
  //    patches applied, CRIU-style restore — and verified byte-exact.
  RestoreOpResult restore = agent.RestoreOp(idle, /*now=*/SimTime{2}, /*verify=*/true);
  std::printf("restore op: %zu base pages read (%zu remote), %.0f ms total "
              "(read %.0f + compute %.0f + restore %.0f), verified=%s\n",
              restore.base_pages_read, restore.remote_reads, ToMillis(restore.total_time),
              ToMillis(restore.read_base_time), ToMillis(restore.compute_time),
              ToMillis(restore.sandbox_restore_time), restore.verified ? "yes" : "no");
  std::printf("dedup start vs cold start: %.0f ms vs %.0f ms (%.1fx faster)\n",
              ToMillis(restore.total_time), ToMillis(fn.cold_start),
              static_cast<double>(fn.cold_start.value()) / static_cast<double>(restore.total_time.value()));
  return 0;
}
