// dedup_pipeline: a guided tour of the byte-level machinery.
//
// Walks one page through the full Medes pipeline, printing intermediate
// artifacts: value-sampled chunk selection, the page fingerprint, the
// registry lookup and base-page choice, the binary patch, and the
// reconstruction. Useful for understanding exactly what each module does.
//
//   $ ./dedup_pipeline
#include <cstdio>
#include <cstring>

#include "medes.h"

using namespace medes;

int main() {
  LibraryPool pool(0x11b9, 65536);
  const FunctionProfile& fn = ProfileByName("ImagePro");

  // Two sandboxes of the same function, different instances.
  MemoryImage base_img = BuildSandboxImage(fn, pool, {.instance_seed = 1});
  MemoryImage dup_img = BuildSandboxImage(fn, pool, {.instance_seed = 2});
  std::printf("images: %zu pages each (%.1f represented MB)\n", base_img.NumPages(),
              base_img.represented_mb());

  // --- Section 2 measurement: how redundant are they? -------------------
  RedundancyResult red = MeasureRedundancy(base_img.bytes(), dup_img.bytes());
  std::printf("chunk-level redundancy (64 B sampling): %.1f%% (%zu/%zu probes matched)\n",
              100.0 * red.Fraction(), red.matched_chunks, red.probed_chunks);

  // --- Value-sampled page fingerprints ----------------------------------
  // Pick a clean (not execution-dirtied) page for the walkthrough: one whose
  // fingerprint overlaps its counterpart in the other instance.
  PageFingerprinter fingerprinter({});
  size_t page_index = 0;
  for (size_t p = 0; p < base_img.NumPages(); ++p) {
    auto a = fingerprinter.FingerprintPage(base_img.Page(p));
    auto b = fingerprinter.FingerprintPage(dup_img.Page(p));
    int overlap = 0;
    for (const auto& ca : a.chunks) {
      for (const auto& cb : b.chunks) {
        overlap += (ca.key == cb.key) ? 1 : 0;
      }
    }
    if (overlap >= 4) {
      page_index = p;
      break;
    }
  }
  PageFingerprint base_fp = fingerprinter.FingerprintPage(base_img.Page(page_index));
  PageFingerprint dup_fp = fingerprinter.FingerprintPage(dup_img.Page(page_index));
  std::printf("\npage %zu fingerprints (cardinality %zu):\n", page_index, base_fp.Cardinality());
  for (const SampledChunk& c : base_fp.chunks) {
    std::printf("  base  key=%016llx offset=%u\n", static_cast<unsigned long long>(c.key),
                c.offset);
  }
  for (const SampledChunk& c : dup_fp.chunks) {
    std::printf("  dup   key=%016llx offset=%u\n", static_cast<unsigned long long>(c.key),
                c.offset);
  }

  // --- Registry insertion + lookup --------------------------------------
  FingerprintRegistry registry;
  std::vector<PageFingerprint> fps;
  for (size_t p = 0; p < base_img.NumPages(); ++p) {
    fps.push_back(fingerprinter.FingerprintPage(base_img.Page(p)));
  }
  registry.InsertBaseSandbox(/*node=*/NodeId{0}, /*sandbox=*/SandboxId{1}, fps);
  auto candidate = registry.FindBasePage(dup_fp, /*local_node=*/NodeId{1});
  if (!candidate.has_value()) {
    std::printf("\nno base-page candidate found (unexpected for a library page)\n");
    return 1;
  }
  std::printf("\nbase page chosen: sandbox=%llu page=%u overlap=%d/%zu sampled chunks\n",
              static_cast<unsigned long long>(candidate->location.sandbox.value()),
              candidate->location.page_index.value(), candidate->overlap, dup_fp.Cardinality());

  // --- Patch computation + reconstruction -------------------------------
  std::span<const uint8_t> base_page = base_img.Page(candidate->location.page_index.value());
  std::span<const uint8_t> dup_page = dup_img.Page(page_index);
  std::vector<uint8_t> patch = DeltaEncode(base_page, dup_page, {.level = 1});
  DeltaStats stats = InspectDelta(patch);
  std::printf("patch: %zu bytes for a %zu-byte page (%.1f%%): %zu ADD bytes in %zu ops, "
              "%zu COPY bytes in %zu ops\n",
              patch.size(), dup_page.size(), 100.0 * static_cast<double>(patch.size()) / 4096.0,
              stats.add_bytes, stats.add_ops, stats.copy_bytes, stats.copy_ops);
  std::vector<uint8_t> rebuilt = DeltaDecode(base_page, patch);
  std::printf("reconstruction: %s\n",
              std::memcmp(rebuilt.data(), dup_page.data(), dup_page.size()) == 0
                  ? "byte-exact"
                  : "MISMATCH (bug!)");

  // --- Whole-image dedup through the checkpoint -------------------------
  MemoryCheckpoint cp = MemoryCheckpoint::Capture(dup_img);
  size_t deduped = 0, kept = 0;
  size_t patch_bytes = 0;
  for (size_t p = 0; p < cp.NumPages(); ++p) {
    if (cp.SlotState(p) != PageSlotState::kResident) {
      continue;
    }
    auto fp = fingerprinter.FingerprintPage(cp.PageData(p));
    auto cand = registry.FindBasePage(fp, NodeId{1});
    if (!cand.has_value()) {
      ++kept;
      continue;
    }
    auto pg_patch = DeltaEncode(base_img.Page(cand->location.page_index.value()), cp.PageData(p));
    if (pg_patch.size() > 0.85 * 4096) {
      ++kept;
      continue;
    }
    patch_bytes += pg_patch.size();
    cp.ReplaceWithPatch(p, std::move(pg_patch));
    ++deduped;
  }
  std::printf("\nwhole image: %zu pages patched, %zu kept resident, %zu zero\n", deduped, kept,
              cp.NumZero());
  std::printf("memory: %.2f MB resident + %.2f MB patches vs %.2f MB original\n",
              static_cast<double>(cp.ResidentBytes()) / 65536.0,
              static_cast<double>(patch_bytes) / 65536.0,
              static_cast<double>(dup_img.SizeBytes()) / 65536.0);
  return 0;
}
