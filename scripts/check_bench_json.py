#!/usr/bin/env python3
"""Validate a bench JSON report (as emitted by bench_util's JsonWriter).

Checks, without external dependencies:
  - the file parses as a single JSON object with the shared metadata block
    (bench name, kernel tier, wall_seconds, sim event counters);
  - for cluster_scale reports: every sweep entry carries the full set of
    capacity-campaign fields with sane values, the engine comparison proved
    bit-identical fire order (fire_hash_match), and the pre-refactor baseline
    produced identical workload-visible metrics (metrics_match);
  - for registry_persistence reports: every sweep entry carries the
    unbounded/bounded pair with sane values, the bounded run's dedup savings
    drifted no more than --max-saved-drift from unbounded, and the recovery
    drill was clean, rejected nothing, and matched the live cluster;
  - for restore_latency reports (bench/fig8_breakdown): every sweep entry
    carries the eager-vs-lazy critical-path percentiles with sane values and
    a working-set hit rate in [0,1]; --min-lazy-p99-speedup gates the
    eager/lazy P99 ratio at the largest node count;
  - for trace_analysis reports (bench/trace_analysis): the sampling block is
    sane, no span's parent link failed to resolve, the per-stage critical-path
    attribution sums to within --max-attribution-error of the measured
    latency for both the request and restore views, the restore P99 clears
    --min-restore-p99-us, and the top-slowest exemplar trees are sorted with
    every parent id resolving inside its tree;
  - optional floor gates on scheduler throughput (--min-replay-events-per-sec,
    from the op-stream replay, which is machine-dependent but far above any
    plausible regression) and on the scheduler-isolated before/after ratio
    (--min-speedup, against scheduler_speedup_vs_pre_refactor);
  - --compare-ignoring-metadata OTHER checks two reports for payload equality
    after dropping the metadata block (which carries wall clock and thread
    count) — the determinism contract across MEDES_THREADS settings.

Usage: check_bench_json.py FILE [--bench NAME] [--min-replay-events-per-sec N]
                                [--min-speedup X] [--min-lazy-p99-speedup X]
                                [--compare-ignoring-metadata OTHER]
Exits non-zero with a message on the first violation.
"""

import argparse
import json
import sys

SWEEP_FIELDS = {
    "nodes": (int,),
    "objective": (str,),
    "rate_scale": (int, float),
    "trace_duration_s": (int, float),
    "requests": (int,),
    "sim_events": (int,),
    "wall_seconds": (int, float),
    "events_per_sec": (int, float),
    "cold_start_rate": (int, float),
    "p99_e2e_ms": (int, float),
    "memory_saved_mb": (int, float),
    "transport_bytes": (int,),
}

METADATA_FIELDS = {
    "bench": (str,),
    "kernel_tier": (str,),
    "wall_seconds": (int, float),
    "sim_events_fired": (int,),
    "sim_events_per_sec": (int, float),
}


def fail(message: str) -> None:
    sys.exit(f"check_bench_json: {message}")


def require(obj: dict, block: str, fields: dict) -> None:
    for name, types in fields.items():
        if name not in obj:
            fail(f"{block}: missing field {name!r}")
        if not isinstance(obj[name], types) or isinstance(obj[name], bool):
            fail(f"{block}.{name}: expected {types}, got {type(obj[name]).__name__}")


def check_cluster_scale(doc: dict, args: argparse.Namespace) -> str:
    sweep = doc.get("sweep")
    if not isinstance(sweep, list) or not sweep:
        fail("sweep: expected a non-empty array")
    for i, entry in enumerate(sweep):
        block = f"sweep[{i}]"
        require(entry, block, SWEEP_FIELDS)
        if entry["requests"] <= 0 or entry["sim_events"] <= 0:
            fail(f"{block}: empty run (requests={entry['requests']})")
        if entry["wall_seconds"] <= 0 or entry["events_per_sec"] <= 0:
            fail(f"{block}: non-positive timing")
        if not 0 <= entry["cold_start_rate"] <= 1:
            fail(f"{block}: cold_start_rate out of [0,1]")

    comparison = doc.get("engine_comparison")
    if not isinstance(comparison, dict):
        fail("missing engine_comparison block")
    for name in ("replayed_events", "calendar_events_per_sec", "heap_events_per_sec",
                 "speedup_vs_heap", "fire_hash_match"):
        if name not in comparison:
            fail(f"engine_comparison: missing field {name!r}")
    if comparison["fire_hash_match"] is not True:
        fail("engine_comparison: fire order diverged between engines")

    baseline = doc.get("pre_refactor_baseline")
    if not isinstance(baseline, dict):
        fail("missing pre_refactor_baseline block")
    for name in ("events_per_sec", "refactored_events_per_sec",
                 "campaign_speedup_vs_pre_refactor",
                 "scheduler_events_per_sec_before", "scheduler_events_per_sec_after",
                 "scheduler_speedup_vs_pre_refactor", "metrics_match"):
        if name not in baseline:
            fail(f"pre_refactor_baseline: missing field {name!r}")
    if baseline["metrics_match"] is not True:
        fail("pre_refactor_baseline: workload-visible metrics diverged")

    if comparison["calendar_events_per_sec"] < args.min_replay_events_per_sec:
        fail(f"replay throughput {comparison['calendar_events_per_sec']:.0f} ev/s "
             f"below floor {args.min_replay_events_per_sec:.0f}")
    if baseline["scheduler_speedup_vs_pre_refactor"] < args.min_speedup:
        fail(f"scheduler speedup {baseline['scheduler_speedup_vs_pre_refactor']:.2f}x "
             f"below floor {args.min_speedup:.2f}x")
    return (f"{len(sweep)} sweep points, replay {comparison['speedup_vs_heap']:.2f}x, "
            f"campaign {baseline['campaign_speedup_vs_pre_refactor']:.2f}x, "
            f"scheduler {baseline['scheduler_speedup_vs_pre_refactor']:.2f}x")


PERSISTENCE_SWEEP_FIELDS = {
    "nodes": (int,),
    "requests": (int,),
    "ram_budget_mb": (int, float),
    "saved_drift": (int, float),
}

PERSISTENCE_RUN_FIELDS = {
    "memory_saved_mb": (int, float),
    "restore_p99_ms": (int, float),
    "dedup_starts": (int,),
    "hot_hits": (int,),
    "cold_fetches": (int,),
    "wall_seconds": (int, float),
}

PERSISTENCE_RECOVERY_FIELDS = {
    "nodes": (int,),
    "live_base_sandboxes": (int,),
    "recovered_sandboxes": (int,),
    "rejected_sandboxes": (int,),
    "recovered_pages": (int,),
    "checkpoint_records": (int,),
    "log_records": (int,),
    "stale_records": (int,),
    "torn_bytes": (int,),
    "corrupt_records": (int,),
    "checkpoints": (int,),
    "log_bytes": (int,),
    "checkpoint_bytes": (int,),
}


def check_registry_persistence(doc: dict, args: argparse.Namespace) -> str:
    sweep = doc.get("sweep")
    if not isinstance(sweep, list) or not sweep:
        fail("sweep: expected a non-empty array")
    for i, entry in enumerate(sweep):
        block = f"sweep[{i}]"
        require(entry, block, PERSISTENCE_SWEEP_FIELDS)
        if entry["requests"] <= 0:
            fail(f"{block}: empty run")
        if entry["ram_budget_mb"] <= 0:
            fail(f"{block}: non-positive RAM budget")
        for run in ("unbounded", "bounded"):
            if not isinstance(entry.get(run), dict):
                fail(f"{block}: missing {run} block")
            require(entry[run], f"{block}.{run}", PERSISTENCE_RUN_FIELDS)
            if entry[run]["dedup_starts"] <= 0:
                fail(f"{block}.{run}: no dedup starts measured")
        if entry["unbounded"]["cold_fetches"] != 0:
            fail(f"{block}: unbounded run charged cold fetches "
                 f"({entry['unbounded']['cold_fetches']}); the store must be "
                 "behaviourally invisible at budget 0")
        require(entry["unbounded"], f"{block}.unbounded",
                {"peak_state_mb": (int, float)})
        if entry["unbounded"]["peak_state_mb"] <= 0:
            fail(f"{block}: non-positive peak state footprint")
        if entry["saved_drift"] > args.max_saved_drift:
            fail(f"{block}: dedup savings drifted {entry['saved_drift']:.4f} "
                 f"under the RAM budget, above the {args.max_saved_drift:.2f} cap")

    recovery = doc.get("recovery")
    if not isinstance(recovery, dict):
        fail("missing recovery block")
    require(recovery, "recovery", PERSISTENCE_RECOVERY_FIELDS)
    if recovery["clean"] is not True:
        fail("recovery: log/checkpoint replay was not clean")
    if recovery["matches_live"] is not True:
        fail("recovery: recovered registry does not match the live cluster")
    if recovery["rejected_sandboxes"] != 0:
        fail(f"recovery: {recovery['rejected_sandboxes']} recovered sandboxes "
             "failed live re-validation")
    if recovery["recovered_sandboxes"] != recovery["live_base_sandboxes"]:
        fail(f"recovery: recovered {recovery['recovered_sandboxes']} sandboxes "
             f"but the cluster holds {recovery['live_base_sandboxes']}")
    if recovery["checkpoints"] > 0 and recovery["checkpoint_records"] <= 0:
        fail("recovery: checkpoints were written but none replayed")

    checks = doc.get("checks")
    if not isinstance(checks, dict) or checks.get("all_passed") is not True:
        fail("checks.all_passed is not true")
    top = max(sweep, key=lambda e: e["nodes"])
    return (f"{len(sweep)} sweep points, max drift "
            f"{max(e['saved_drift'] for e in sweep):.4f}, "
            f"{top['bounded']['cold_fetches']} cold fetches at {top['nodes']} nodes, "
            f"recovered {recovery['recovered_sandboxes']}/"
            f"{recovery['live_base_sandboxes']} sandboxes "
            f"({recovery['recovered_pages']} pages)")


RESTORE_SWEEP_FIELDS = {
    "nodes": (int,),
    "rate_scale": (int, float),
    "trace_duration_s": (int, float),
    "requests": (int,),
    "eager_restores": (int,),
    "lazy_restores": (int,),
    "eager_p50_ms": (int, float),
    "eager_p99_ms": (int, float),
    "lazy_p50_ms": (int, float),
    "lazy_p99_ms": (int, float),
    "lazy_p99_speedup": (int, float),
    "ws_hit_rate": (int, float),
    "ws_fault_pages": (int,),
    "background_completions": (int,),
    "background_pages": (int,),
}

RESTORE_FUNCTION_FIELDS = {
    "function": (str,),
    "eager_total_ms": (int, float),
    "lazy_critical_ms": (int, float),
    "lazy_fault_ms": (int, float),
    "lazy_background_pages": (int,),
    "cold_start_ms": (int, float),
}


def check_restore_latency(doc: dict, args: argparse.Namespace) -> str:
    per_function = doc.get("per_function")
    if not isinstance(per_function, list) or not per_function:
        fail("per_function: expected a non-empty array")
    for i, entry in enumerate(per_function):
        block = f"per_function[{i}]"
        require(entry, block, RESTORE_FUNCTION_FIELDS)
        if entry["lazy_critical_ms"] <= 0 or entry["eager_total_ms"] <= 0:
            fail(f"{block}: non-positive restore time")
        if entry["lazy_critical_ms"] >= entry["eager_total_ms"]:
            fail(f"{block}: trained lazy critical path not below eager total")

    sweep = doc.get("sweep")
    if not isinstance(sweep, list) or not sweep:
        fail("sweep: expected a non-empty array")
    for i, entry in enumerate(sweep):
        block = f"sweep[{i}]"
        require(entry, block, RESTORE_SWEEP_FIELDS)
        if entry["requests"] <= 0:
            fail(f"{block}: empty run")
        if entry["eager_restores"] <= 0 or entry["lazy_restores"] <= 0:
            fail(f"{block}: no restores measured (eager={entry['eager_restores']}, "
                 f"lazy={entry['lazy_restores']})")
        if not 0 <= entry["ws_hit_rate"] <= 1:
            fail(f"{block}: ws_hit_rate out of [0,1]")
        if entry["eager_p99_ms"] <= 0 or entry["lazy_p99_ms"] <= 0:
            fail(f"{block}: non-positive P99")

    top = max(sweep, key=lambda e: e["nodes"])
    speedup = top["eager_p99_ms"] / top["lazy_p99_ms"]
    if speedup < args.min_lazy_p99_speedup:
        fail(f"lazy P99 speedup {speedup:.2f}x at {top['nodes']} nodes "
             f"below floor {args.min_lazy_p99_speedup:.2f}x")
    return (f"{len(sweep)} sweep points, lazy P99 {speedup:.2f}x vs eager at "
            f"{top['nodes']} nodes, hit rate {top['ws_hit_rate']:.0%}")


ATTRIBUTION_SAMPLING_FIELDS = {
    "total_requests": (int,),
    "sample_every": (int,),
    "sampled_traces": (int,),
    "sampled_spans": (int,),
    "unresolved_parents": (int,),
}

ATTRIBUTION_SUMMARY_FIELDS = {
    "traces": (int,),
    "total_us": (int,),
    "p50_total_us": (int,),
    "p99_total_us": (int,),
    "attribution_fraction_sum": (int, float),
}

ATTRIBUTION_STAGE_FIELDS = {
    "stage": (str,),
    "traces": (int,),
    "total_us": (int,),
    "p50_us": (int,),
    "p99_us": (int,),
    "fraction": (int, float),
}


def check_attribution_summary(doc: dict, key: str, args: argparse.Namespace,
                              required: bool) -> dict:
    summary = doc.get(key)
    if not isinstance(summary, dict):
        fail(f"missing {key} block")
    require(summary, key, ATTRIBUTION_SUMMARY_FIELDS)
    if required and summary["traces"] <= 0:
        fail(f"{key}: no sampled traces attributed")
    stages = summary.get("stages")
    if not isinstance(stages, list):
        fail(f"{key}.stages: expected an array")
    fraction_total = 0.0
    for i, stage in enumerate(stages):
        block = f"{key}.stages[{i}]"
        require(stage, block, ATTRIBUTION_STAGE_FIELDS)
        if not 0 <= stage["fraction"] <= 1:
            fail(f"{block}: fraction out of [0,1]")
        if stage["p50_us"] > stage["p99_us"]:
            fail(f"{block}: P50 above P99")
        fraction_total += stage["fraction"]
    # Two sum-to-one invariants: the per-trace sweep (attributed self time vs
    # measured root duration) and the reported per-stage fractions.
    if summary["traces"] > 0:
        err = abs(summary["attribution_fraction_sum"] - 1.0)
        if err > args.max_attribution_error:
            fail(f"{key}: attributed time is {summary['attribution_fraction_sum']:.6f} "
                 f"of measured latency (|err| {err:.6f} > {args.max_attribution_error})")
        if abs(fraction_total - 1.0) > args.max_attribution_error:
            fail(f"{key}: stage fractions sum to {fraction_total:.6f}, not ~1")
    return summary


def check_span_tree(node: dict, block: str, span_ids: set, depth: int = 0) -> None:
    if depth > 64:
        fail(f"{block}: span tree deeper than 64 (cycle?)")
    for name, types in (("name", (str,)), ("ts_us", (int,)), ("dur_us", (int,)),
                        ("span_id", (int,)), ("parent_span_id", (int,))):
        if name not in node:
            fail(f"{block}: missing field {name!r}")
        if not isinstance(node[name], types) or isinstance(node[name], bool):
            fail(f"{block}.{name}: expected {types}")
    span_ids.add(node["span_id"])
    for i, child in enumerate(node.get("children", [])):
        check_span_tree(child, f"{block}.children[{i}]", span_ids, depth + 1)


def check_trace_analysis(doc: dict, args: argparse.Namespace) -> str:
    sampling = doc.get("sampling")
    if not isinstance(sampling, dict):
        fail("missing sampling block")
    require(sampling, "sampling", ATTRIBUTION_SAMPLING_FIELDS)
    if sampling["total_requests"] <= 0:
        fail("sampling: empty run")
    if sampling["sample_every"] < 1:
        fail("sampling: sample_every below 1")
    if sampling["sampled_traces"] <= 0:
        fail("sampling: no traces sampled")
    if sampling["unresolved_parents"] != 0:
        fail(f"sampling: {sampling['unresolved_parents']} spans had unresolvable "
             "parent links (every context used as a parent must be recorded)")

    requests = check_attribution_summary(doc, "requests", args, required=True)
    restores = check_attribution_summary(doc, "restores", args, required=False)
    if restores["traces"] > 0 and restores["p99_total_us"] < args.min_restore_p99_us:
        fail(f"restores: P99 {restores['p99_total_us']}us below floor "
             f"{args.min_restore_p99_us:.0f}us — restore spans are not "
             "covering the modelled restore work")

    top = doc.get("top_slowest")
    if not isinstance(top, list) or not top:
        fail("top_slowest: expected a non-empty array")
    if len(top) > 10:
        fail(f"top_slowest: {len(top)} entries, expected at most 10")
    previous = None
    for i, entry in enumerate(top):
        block = f"top_slowest[{i}]"
        require(entry, block, {"trace_id": (int,), "total_us": (int,),
                               "unresolved_parents": (int,)})
        if previous is not None and entry["total_us"] > previous:
            fail(f"{block}: not sorted slowest-first")
        previous = entry["total_us"]
        if entry["unresolved_parents"] != 0:
            fail(f"{block}: unresolvable parent links in exemplar tree")
        root = entry.get("root")
        if not isinstance(root, dict):
            fail(f"{block}: missing root span tree")
        span_ids = set()
        check_span_tree(root, f"{block}.root", span_ids)
        # Every nested child's parent is its enclosing span by construction;
        # re-check the flat invariant: all parent ids resolve inside the tree.
        def walk(node, path):
            if node is not root and node["parent_span_id"] not in span_ids:
                fail(f"{path}: parent_span_id {node['parent_span_id']} does not "
                     "resolve within the trace")
            for j, child in enumerate(node.get("children", [])):
                walk(child, f"{path}.children[{j}]")
        walk(root, f"{block}.root")

    return (f"{sampling['sampled_traces']} traces / {sampling['total_requests']} requests "
            f"(1/{sampling['sample_every']}), request fraction sum "
            f"{requests['attribution_fraction_sum']:.4f}, restore P99 "
            f"{restores['p99_total_us']}us over {restores['traces']} restores, "
            f"{len(top)} exemplar trees")


def compare_ignoring_metadata(path_a: str, path_b: str) -> None:
    docs = []
    for path in (path_a, path_b):
        with open(path, encoding="utf-8") as f:
            try:
                doc = json.load(f)
            except json.JSONDecodeError as e:
                fail(f"{path}: not valid JSON: {e}")
        if not isinstance(doc, dict):
            fail(f"{path}: top level is not an object")
        doc.pop("metadata", None)
        docs.append(doc)
    if docs[0] != docs[1]:
        fail(f"payload mismatch between {path_a} and {path_b} "
             "(reports must be identical ignoring metadata)")
    print(f"{path_a} == {path_b} (ignoring metadata)")


def check(path: str, args: argparse.Namespace) -> int:
    with open(path, encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"not valid JSON: {e}")
    if not isinstance(doc, dict):
        fail("top level is not an object")
    metadata = doc.get("metadata")
    if not isinstance(metadata, dict):
        fail("missing metadata block")
    require(metadata, "metadata", METADATA_FIELDS)
    if args.bench and metadata["bench"] != args.bench:
        fail(f"metadata.bench is {metadata['bench']!r}, expected {args.bench!r}")

    detail = "generic bench report"
    if metadata["bench"] == "cluster_scale":
        detail = check_cluster_scale(doc, args)
    elif metadata["bench"] == "registry_persistence":
        detail = check_registry_persistence(doc, args)
    elif metadata["bench"] == "restore_latency":
        detail = check_restore_latency(doc, args)
    elif metadata["bench"] == "trace_analysis":
        detail = check_trace_analysis(doc, args)
    print(f"{path}: OK ({detail})")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file")
    parser.add_argument("--bench", default="", help="required metadata.bench name")
    parser.add_argument("--min-replay-events-per-sec", type=float, default=0.0)
    parser.add_argument("--min-speedup", type=float, default=0.0)
    parser.add_argument("--min-lazy-p99-speedup", type=float, default=0.0)
    parser.add_argument("--max-saved-drift", type=float, default=0.05,
                        help="cap on bounded-vs-unbounded dedup-savings drift "
                             "(registry_persistence)")
    parser.add_argument("--max-attribution-error", type=float, default=0.01,
                        help="cap on |attribution fraction sum - 1| "
                             "(trace_analysis)")
    parser.add_argument("--min-restore-p99-us", type=float, default=0.0,
                        help="floor on the attributed restore P99 "
                             "(trace_analysis)")
    parser.add_argument("--compare-ignoring-metadata", default="",
                        metavar="OTHER", help="second report to diff against")
    args = parser.parse_args()
    if args.compare_ignoring_metadata:
        compare_ignoring_metadata(args.file, args.compare_ignoring_metadata)
        return 0
    return check(args.file, args)


if __name__ == "__main__":
    sys.exit(main())
