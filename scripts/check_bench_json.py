#!/usr/bin/env python3
"""Validate a bench JSON report (as emitted by bench_util's JsonWriter).

Checks, without external dependencies:
  - the file parses as a single JSON object with the shared metadata block
    (bench name, kernel tier, wall_seconds, sim event counters);
  - for cluster_scale reports: every sweep entry carries the full set of
    capacity-campaign fields with sane values, the engine comparison proved
    bit-identical fire order (fire_hash_match), and the pre-refactor baseline
    produced identical workload-visible metrics (metrics_match);
  - for registry_persistence reports: every sweep entry carries the
    unbounded/bounded pair with sane values, the bounded run's dedup savings
    drifted no more than --max-saved-drift from unbounded, and the recovery
    drill was clean, rejected nothing, and matched the live cluster;
  - for restore_latency reports (bench/fig8_breakdown): every sweep entry
    carries the eager-vs-lazy critical-path percentiles with sane values and
    a working-set hit rate in [0,1]; --min-lazy-p99-speedup gates the
    eager/lazy P99 ratio at the largest node count;
  - optional floor gates on scheduler throughput (--min-replay-events-per-sec,
    from the op-stream replay, which is machine-dependent but far above any
    plausible regression) and on the scheduler-isolated before/after ratio
    (--min-speedup, against scheduler_speedup_vs_pre_refactor);
  - --compare-ignoring-metadata OTHER checks two reports for payload equality
    after dropping the metadata block (which carries wall clock and thread
    count) — the determinism contract across MEDES_THREADS settings.

Usage: check_bench_json.py FILE [--bench NAME] [--min-replay-events-per-sec N]
                                [--min-speedup X] [--min-lazy-p99-speedup X]
                                [--compare-ignoring-metadata OTHER]
Exits non-zero with a message on the first violation.
"""

import argparse
import json
import sys

SWEEP_FIELDS = {
    "nodes": (int,),
    "objective": (str,),
    "rate_scale": (int, float),
    "trace_duration_s": (int, float),
    "requests": (int,),
    "sim_events": (int,),
    "wall_seconds": (int, float),
    "events_per_sec": (int, float),
    "cold_start_rate": (int, float),
    "p99_e2e_ms": (int, float),
    "memory_saved_mb": (int, float),
    "transport_bytes": (int,),
}

METADATA_FIELDS = {
    "bench": (str,),
    "kernel_tier": (str,),
    "wall_seconds": (int, float),
    "sim_events_fired": (int,),
    "sim_events_per_sec": (int, float),
}


def fail(message: str) -> None:
    sys.exit(f"check_bench_json: {message}")


def require(obj: dict, block: str, fields: dict) -> None:
    for name, types in fields.items():
        if name not in obj:
            fail(f"{block}: missing field {name!r}")
        if not isinstance(obj[name], types) or isinstance(obj[name], bool):
            fail(f"{block}.{name}: expected {types}, got {type(obj[name]).__name__}")


def check_cluster_scale(doc: dict, args: argparse.Namespace) -> str:
    sweep = doc.get("sweep")
    if not isinstance(sweep, list) or not sweep:
        fail("sweep: expected a non-empty array")
    for i, entry in enumerate(sweep):
        block = f"sweep[{i}]"
        require(entry, block, SWEEP_FIELDS)
        if entry["requests"] <= 0 or entry["sim_events"] <= 0:
            fail(f"{block}: empty run (requests={entry['requests']})")
        if entry["wall_seconds"] <= 0 or entry["events_per_sec"] <= 0:
            fail(f"{block}: non-positive timing")
        if not 0 <= entry["cold_start_rate"] <= 1:
            fail(f"{block}: cold_start_rate out of [0,1]")

    comparison = doc.get("engine_comparison")
    if not isinstance(comparison, dict):
        fail("missing engine_comparison block")
    for name in ("replayed_events", "calendar_events_per_sec", "heap_events_per_sec",
                 "speedup_vs_heap", "fire_hash_match"):
        if name not in comparison:
            fail(f"engine_comparison: missing field {name!r}")
    if comparison["fire_hash_match"] is not True:
        fail("engine_comparison: fire order diverged between engines")

    baseline = doc.get("pre_refactor_baseline")
    if not isinstance(baseline, dict):
        fail("missing pre_refactor_baseline block")
    for name in ("events_per_sec", "refactored_events_per_sec",
                 "campaign_speedup_vs_pre_refactor",
                 "scheduler_events_per_sec_before", "scheduler_events_per_sec_after",
                 "scheduler_speedup_vs_pre_refactor", "metrics_match"):
        if name not in baseline:
            fail(f"pre_refactor_baseline: missing field {name!r}")
    if baseline["metrics_match"] is not True:
        fail("pre_refactor_baseline: workload-visible metrics diverged")

    if comparison["calendar_events_per_sec"] < args.min_replay_events_per_sec:
        fail(f"replay throughput {comparison['calendar_events_per_sec']:.0f} ev/s "
             f"below floor {args.min_replay_events_per_sec:.0f}")
    if baseline["scheduler_speedup_vs_pre_refactor"] < args.min_speedup:
        fail(f"scheduler speedup {baseline['scheduler_speedup_vs_pre_refactor']:.2f}x "
             f"below floor {args.min_speedup:.2f}x")
    return (f"{len(sweep)} sweep points, replay {comparison['speedup_vs_heap']:.2f}x, "
            f"campaign {baseline['campaign_speedup_vs_pre_refactor']:.2f}x, "
            f"scheduler {baseline['scheduler_speedup_vs_pre_refactor']:.2f}x")


PERSISTENCE_SWEEP_FIELDS = {
    "nodes": (int,),
    "requests": (int,),
    "ram_budget_mb": (int, float),
    "saved_drift": (int, float),
}

PERSISTENCE_RUN_FIELDS = {
    "memory_saved_mb": (int, float),
    "restore_p99_ms": (int, float),
    "dedup_starts": (int,),
    "hot_hits": (int,),
    "cold_fetches": (int,),
    "wall_seconds": (int, float),
}

PERSISTENCE_RECOVERY_FIELDS = {
    "nodes": (int,),
    "live_base_sandboxes": (int,),
    "recovered_sandboxes": (int,),
    "rejected_sandboxes": (int,),
    "recovered_pages": (int,),
    "checkpoint_records": (int,),
    "log_records": (int,),
    "stale_records": (int,),
    "torn_bytes": (int,),
    "corrupt_records": (int,),
    "checkpoints": (int,),
    "log_bytes": (int,),
    "checkpoint_bytes": (int,),
}


def check_registry_persistence(doc: dict, args: argparse.Namespace) -> str:
    sweep = doc.get("sweep")
    if not isinstance(sweep, list) or not sweep:
        fail("sweep: expected a non-empty array")
    for i, entry in enumerate(sweep):
        block = f"sweep[{i}]"
        require(entry, block, PERSISTENCE_SWEEP_FIELDS)
        if entry["requests"] <= 0:
            fail(f"{block}: empty run")
        if entry["ram_budget_mb"] <= 0:
            fail(f"{block}: non-positive RAM budget")
        for run in ("unbounded", "bounded"):
            if not isinstance(entry.get(run), dict):
                fail(f"{block}: missing {run} block")
            require(entry[run], f"{block}.{run}", PERSISTENCE_RUN_FIELDS)
            if entry[run]["dedup_starts"] <= 0:
                fail(f"{block}.{run}: no dedup starts measured")
        if entry["unbounded"]["cold_fetches"] != 0:
            fail(f"{block}: unbounded run charged cold fetches "
                 f"({entry['unbounded']['cold_fetches']}); the store must be "
                 "behaviourally invisible at budget 0")
        require(entry["unbounded"], f"{block}.unbounded",
                {"peak_state_mb": (int, float)})
        if entry["unbounded"]["peak_state_mb"] <= 0:
            fail(f"{block}: non-positive peak state footprint")
        if entry["saved_drift"] > args.max_saved_drift:
            fail(f"{block}: dedup savings drifted {entry['saved_drift']:.4f} "
                 f"under the RAM budget, above the {args.max_saved_drift:.2f} cap")

    recovery = doc.get("recovery")
    if not isinstance(recovery, dict):
        fail("missing recovery block")
    require(recovery, "recovery", PERSISTENCE_RECOVERY_FIELDS)
    if recovery["clean"] is not True:
        fail("recovery: log/checkpoint replay was not clean")
    if recovery["matches_live"] is not True:
        fail("recovery: recovered registry does not match the live cluster")
    if recovery["rejected_sandboxes"] != 0:
        fail(f"recovery: {recovery['rejected_sandboxes']} recovered sandboxes "
             "failed live re-validation")
    if recovery["recovered_sandboxes"] != recovery["live_base_sandboxes"]:
        fail(f"recovery: recovered {recovery['recovered_sandboxes']} sandboxes "
             f"but the cluster holds {recovery['live_base_sandboxes']}")
    if recovery["checkpoints"] > 0 and recovery["checkpoint_records"] <= 0:
        fail("recovery: checkpoints were written but none replayed")

    checks = doc.get("checks")
    if not isinstance(checks, dict) or checks.get("all_passed") is not True:
        fail("checks.all_passed is not true")
    top = max(sweep, key=lambda e: e["nodes"])
    return (f"{len(sweep)} sweep points, max drift "
            f"{max(e['saved_drift'] for e in sweep):.4f}, "
            f"{top['bounded']['cold_fetches']} cold fetches at {top['nodes']} nodes, "
            f"recovered {recovery['recovered_sandboxes']}/"
            f"{recovery['live_base_sandboxes']} sandboxes "
            f"({recovery['recovered_pages']} pages)")


RESTORE_SWEEP_FIELDS = {
    "nodes": (int,),
    "rate_scale": (int, float),
    "trace_duration_s": (int, float),
    "requests": (int,),
    "eager_restores": (int,),
    "lazy_restores": (int,),
    "eager_p50_ms": (int, float),
    "eager_p99_ms": (int, float),
    "lazy_p50_ms": (int, float),
    "lazy_p99_ms": (int, float),
    "lazy_p99_speedup": (int, float),
    "ws_hit_rate": (int, float),
    "ws_fault_pages": (int,),
    "background_completions": (int,),
    "background_pages": (int,),
}

RESTORE_FUNCTION_FIELDS = {
    "function": (str,),
    "eager_total_ms": (int, float),
    "lazy_critical_ms": (int, float),
    "lazy_fault_ms": (int, float),
    "lazy_background_pages": (int,),
    "cold_start_ms": (int, float),
}


def check_restore_latency(doc: dict, args: argparse.Namespace) -> str:
    per_function = doc.get("per_function")
    if not isinstance(per_function, list) or not per_function:
        fail("per_function: expected a non-empty array")
    for i, entry in enumerate(per_function):
        block = f"per_function[{i}]"
        require(entry, block, RESTORE_FUNCTION_FIELDS)
        if entry["lazy_critical_ms"] <= 0 or entry["eager_total_ms"] <= 0:
            fail(f"{block}: non-positive restore time")
        if entry["lazy_critical_ms"] >= entry["eager_total_ms"]:
            fail(f"{block}: trained lazy critical path not below eager total")

    sweep = doc.get("sweep")
    if not isinstance(sweep, list) or not sweep:
        fail("sweep: expected a non-empty array")
    for i, entry in enumerate(sweep):
        block = f"sweep[{i}]"
        require(entry, block, RESTORE_SWEEP_FIELDS)
        if entry["requests"] <= 0:
            fail(f"{block}: empty run")
        if entry["eager_restores"] <= 0 or entry["lazy_restores"] <= 0:
            fail(f"{block}: no restores measured (eager={entry['eager_restores']}, "
                 f"lazy={entry['lazy_restores']})")
        if not 0 <= entry["ws_hit_rate"] <= 1:
            fail(f"{block}: ws_hit_rate out of [0,1]")
        if entry["eager_p99_ms"] <= 0 or entry["lazy_p99_ms"] <= 0:
            fail(f"{block}: non-positive P99")

    top = max(sweep, key=lambda e: e["nodes"])
    speedup = top["eager_p99_ms"] / top["lazy_p99_ms"]
    if speedup < args.min_lazy_p99_speedup:
        fail(f"lazy P99 speedup {speedup:.2f}x at {top['nodes']} nodes "
             f"below floor {args.min_lazy_p99_speedup:.2f}x")
    return (f"{len(sweep)} sweep points, lazy P99 {speedup:.2f}x vs eager at "
            f"{top['nodes']} nodes, hit rate {top['ws_hit_rate']:.0%}")


def compare_ignoring_metadata(path_a: str, path_b: str) -> None:
    docs = []
    for path in (path_a, path_b):
        with open(path, encoding="utf-8") as f:
            try:
                doc = json.load(f)
            except json.JSONDecodeError as e:
                fail(f"{path}: not valid JSON: {e}")
        if not isinstance(doc, dict):
            fail(f"{path}: top level is not an object")
        doc.pop("metadata", None)
        docs.append(doc)
    if docs[0] != docs[1]:
        fail(f"payload mismatch between {path_a} and {path_b} "
             "(reports must be identical ignoring metadata)")
    print(f"{path_a} == {path_b} (ignoring metadata)")


def check(path: str, args: argparse.Namespace) -> int:
    with open(path, encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"not valid JSON: {e}")
    if not isinstance(doc, dict):
        fail("top level is not an object")
    metadata = doc.get("metadata")
    if not isinstance(metadata, dict):
        fail("missing metadata block")
    require(metadata, "metadata", METADATA_FIELDS)
    if args.bench and metadata["bench"] != args.bench:
        fail(f"metadata.bench is {metadata['bench']!r}, expected {args.bench!r}")

    detail = "generic bench report"
    if metadata["bench"] == "cluster_scale":
        detail = check_cluster_scale(doc, args)
    elif metadata["bench"] == "registry_persistence":
        detail = check_registry_persistence(doc, args)
    elif metadata["bench"] == "restore_latency":
        detail = check_restore_latency(doc, args)
    print(f"{path}: OK ({detail})")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file")
    parser.add_argument("--bench", default="", help="required metadata.bench name")
    parser.add_argument("--min-replay-events-per-sec", type=float, default=0.0)
    parser.add_argument("--min-speedup", type=float, default=0.0)
    parser.add_argument("--min-lazy-p99-speedup", type=float, default=0.0)
    parser.add_argument("--max-saved-drift", type=float, default=0.05,
                        help="cap on bounded-vs-unbounded dedup-savings drift "
                             "(registry_persistence)")
    parser.add_argument("--compare-ignoring-metadata", default="",
                        metavar="OTHER", help="second report to diff against")
    args = parser.parse_args()
    if args.compare_ignoring_metadata:
        compare_ignoring_metadata(args.file, args.compare_ignoring_metadata)
        return 0
    return check(args.file, args)


if __name__ == "__main__":
    sys.exit(main())
