"""Single entrypoint for the repository's Python-side checks.

Usage:
    python3 -m scripts lint [ARGS...]              # medes-lint (tree gate)
    python3 -m scripts lint --self-test            # fixture corpus
    python3 -m scripts check-bench-json FILE ...   # bench JSON validator
    python3 -m scripts check-prometheus FILE ...   # Prometheus text validator
    python3 -m scripts check-trace-json FILE ...   # Chrome trace validator

Each subcommand forwards its remaining arguments verbatim to the underlying
tool, so CI invokes every gate through one stable interface.
"""

import sys

from scripts import check_bench_json, check_prometheus_text, check_trace_json, medes_lint

COMMANDS = {
    "lint": "medes-lint determinism/invariant analyzer",
    "check-bench-json": "validate a bench JSON report",
    "check-prometheus": "validate a Prometheus text exposition",
    "check-trace-json": "validate a Chrome trace-event JSON export",
}


def usage() -> str:
    lines = ["usage: python3 -m scripts <command> [args...]", "", "commands:"]
    lines += [f"  {name:<18} {help}" for name, help in COMMANDS.items()]
    return "\n".join(lines)


def main() -> int:
    if len(sys.argv) < 2 or sys.argv[1] in ("-h", "--help"):
        print(usage())
        return 0 if len(sys.argv) >= 2 else 2
    command, rest = sys.argv[1], sys.argv[2:]
    if command == "lint":
        return medes_lint.main(rest)
    if command == "check-bench-json":
        sys.argv = [f"{sys.argv[0]} check-bench-json"] + rest
        return check_bench_json.main()
    if command == "check-prometheus":
        sys.argv = [f"{sys.argv[0]} check-prometheus"] + rest
        return check_prometheus_text.main()
    if command == "check-trace-json":
        return check_trace_json.main(rest)
    print(f"unknown command: {command}\n\n{usage()}", file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main())
