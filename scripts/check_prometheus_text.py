#!/usr/bin/env python3
"""Validate a Prometheus text-exposition file (as emitted by obs::PrometheusText).

Checks, without external dependencies:
  - every non-comment line parses as `name{labels} value` or `name value`;
  - every series is preceded by exactly one # HELP and one # TYPE for its
    family, and the TYPE is one of counter/gauge/histogram;
  - histogram families carry cumulative le buckets ending in +Inf, plus
    _sum and _count, and bucket counts never decrease;
  - series are in sorted order (the exporter's determinism contract).

Usage: check_prometheus_text.py FILE [--min-series N]
Exits non-zero with a message on the first violation.
"""

import argparse
import re
import sys

SERIES_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.e+]+|\+Inf)$")
VALID_TYPES = {"counter", "gauge", "histogram"}


def family_of(name: str) -> str:
    """Strip histogram series suffixes back to the family name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def fail(lineno: int, message: str) -> None:
    sys.exit(f"line {lineno}: {message}")


def check(path: str, min_series: int) -> int:
    helps: dict[str, str] = {}
    types: dict[str, str] = {}
    series_keys: list[str] = []
    bucket_counts: dict[str, float] = {}  # family+labels -> last cumulative count
    num_series = 0

    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("# HELP "):
                parts = line.split(" ", 3)
                if len(parts) < 4:
                    fail(lineno, f"malformed HELP: {line!r}")
                if parts[2] in helps:
                    fail(lineno, f"duplicate HELP for {parts[2]}")
                helps[parts[2]] = parts[3]
                continue
            if line.startswith("# TYPE "):
                parts = line.split(" ")
                if len(parts) != 4 or parts[3] not in VALID_TYPES:
                    fail(lineno, f"malformed TYPE: {line!r}")
                if parts[2] in types:
                    fail(lineno, f"duplicate TYPE for {parts[2]}")
                types[parts[2]] = parts[3]
                continue
            if line.startswith("#"):
                fail(lineno, f"unknown comment: {line!r}")

            m = SERIES_RE.match(line)
            if m is None:
                fail(lineno, f"unparseable series: {line!r}")
            name, labels, value = m.group(1), m.group(2) or "", m.group(3)
            family = family_of(name)
            if family not in types:
                fail(lineno, f"series {name} has no preceding TYPE")
            if family not in helps:
                fail(lineno, f"series {name} has no preceding HELP")
            if name != family and types[family] != "histogram":
                fail(lineno, f"{name} suffix on non-histogram family {family}")
            num_series += 1

            key = f"{name}{labels}"
            series_keys.append(key)
            if name.endswith("_bucket"):
                le = re.search(r'le="([^"]*)"', labels)
                if le is None:
                    fail(lineno, f"bucket without le label: {line!r}")
                without_le = re.sub(r',?le="[^"]*"', "", labels)
                bkey = f"{family}{without_le}"
                count = float(value)
                if count < bucket_counts.get(bkey, 0.0):
                    fail(lineno, f"non-cumulative bucket counts in {bkey}")
                bucket_counts[bkey] = count
                if le.group(1) == "+Inf":
                    del bucket_counts[bkey]  # family complete

    if bucket_counts:
        sys.exit(f"histogram families missing a +Inf bucket: {sorted(bucket_counts)}")
    # _bucket/_count/_sum interleave within a family, so compare family order.
    families = [family_of(k.split("{", 1)[0]) for k in series_keys]
    if families != sorted(families):
        sys.exit("series families are not in sorted order")
    if num_series < min_series:
        sys.exit(f"expected at least {min_series} series, found {num_series}")
    print(f"{path}: OK ({num_series} series, {len(types)} families)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file")
    parser.add_argument("--min-series", type=int, default=1)
    args = parser.parse_args()
    return check(args.file, args.min_series)


if __name__ == "__main__":
    sys.exit(main())
