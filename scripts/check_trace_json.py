#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file (as emitted by obs::ChromeTraceJson).

Checks, without external dependencies:
  - the file parses as a JSON object with a traceEvents array;
  - every event carries the required fields for its phase ("X" complete
    spans need a non-negative dur; "i" instants must not carry one) with
    the right types, and args values are integers;
  - event timestamps are sorted non-decreasing (the exporter's determinism
    contract: drained spans are canonically ordered);
  - causal identity is coherent: an event carrying trace_id also carries a
    nonzero span_id, span ids are unique within a trace, every
    parent_span_id resolves to a span recorded in the same trace, and each
    trace contains its root span (the span whose id equals the trace id);
  - --min-events places a floor on the total event count.

Usage: check_trace_json.py FILE [--min-events N]
       check_trace_json.py --self-test   # run the known-bad fixture corpus
Exits non-zero with a message on the first violation.
"""

import argparse
import json
import os
import sys

PHASES = {"X", "i"}

FIXTURE_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "trace_fixtures")

# fixture file -> substring the failure message must contain (None = clean).
FIXTURE_EXPECTATIONS = {
    "good.json": None,
    "bad_truncated.json": "not valid JSON",
    "bad_no_events.json": "traceEvents",
    "bad_missing_field.json": "missing field 'dur'",
    "bad_bad_phase.json": "unknown phase",
    "bad_unsorted.json": "not sorted",
    "bad_negative_dur.json": "negative dur",
    "bad_instant_dur.json": "instant with dur",
    "bad_zero_span_id.json": "zero span_id",
    "bad_duplicate_span.json": "duplicate span id",
    "bad_dangling_parent.json": "does not resolve",
    "bad_missing_root.json": "has no root span",
}


class CheckError(Exception):
    pass


def require_int(event: dict, index: int, name: str) -> int:
    if name not in event:
        raise CheckError(f"traceEvents[{index}]: missing field {name!r}")
    value = event[name]
    if not isinstance(value, int) or isinstance(value, bool):
        raise CheckError(f"traceEvents[{index}].{name}: expected integer, "
                         f"got {type(value).__name__}")
    return value


def check_events(events: list) -> dict:
    """Validates every event; returns per-trace stats for the summary line."""
    last_ts = None
    spans_by_trace: dict = {}    # trace_id -> {span_id: index}
    parents_by_trace: dict = {}  # trace_id -> [(index, parent_span_id)]
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise CheckError(f"traceEvents[{i}]: expected an object")
        for name in ("name", "cat"):
            if not isinstance(event.get(name), str) or not event.get(name):
                raise CheckError(f"traceEvents[{i}]: missing field {name!r}")
        ph = event.get("ph")
        if ph not in PHASES:
            raise CheckError(f"traceEvents[{i}]: unknown phase {ph!r}")
        ts = require_int(event, i, "ts")
        require_int(event, i, "pid")
        require_int(event, i, "tid")
        if ts < 0:
            raise CheckError(f"traceEvents[{i}]: negative ts")
        if ph == "X":
            if require_int(event, i, "dur") < 0:
                raise CheckError(f"traceEvents[{i}]: negative dur")
        elif "dur" in event:
            raise CheckError(f"traceEvents[{i}]: instant with dur")
        if last_ts is not None and ts < last_ts:
            raise CheckError(f"traceEvents[{i}]: timestamps not sorted "
                             f"({ts} after {last_ts})")
        last_ts = ts

        args = event.get("args", {})
        if not isinstance(args, dict):
            raise CheckError(f"traceEvents[{i}]: args is not an object")
        for key, value in args.items():
            if not isinstance(value, int) or isinstance(value, bool):
                raise CheckError(f"traceEvents[{i}].args.{key}: expected integer")
        if "trace_id" in args:
            trace_id = args["trace_id"]
            span_id = args.get("span_id", 0)
            if span_id == 0:
                raise CheckError(f"traceEvents[{i}]: zero span_id on a traced event")
            spans = spans_by_trace.setdefault(trace_id, {})
            if span_id in spans:
                raise CheckError(
                    f"traceEvents[{i}]: duplicate span id {span_id} in trace "
                    f"{trace_id} (first at traceEvents[{spans[span_id]}])")
            spans[span_id] = i
            parent = args.get("parent_span_id", 0)
            if parent != 0:
                parents_by_trace.setdefault(trace_id, []).append((i, parent))

    for trace_id, parents in parents_by_trace.items():
        spans = spans_by_trace[trace_id]
        for index, parent in parents:
            if parent not in spans:
                raise CheckError(
                    f"traceEvents[{index}]: parent_span_id {parent} does not "
                    f"resolve within trace {trace_id}")
    for trace_id, spans in spans_by_trace.items():
        if trace_id not in spans:
            raise CheckError(f"trace {trace_id} has no root span "
                             "(no span whose id equals the trace id)")
    return spans_by_trace


def check_file(path: str, min_events: int) -> str:
    with open(path, encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            raise CheckError(f"not valid JSON: {e}")
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        raise CheckError("top level must be an object with a traceEvents array")
    events = doc["traceEvents"]
    if len(events) < min_events:
        raise CheckError(f"{len(events)} events, below the --min-events "
                         f"floor of {min_events}")
    spans_by_trace = check_events(events)
    traced = sum(len(s) for s in spans_by_trace.values())
    return (f"{len(events)} events, {len(spans_by_trace)} traces, "
            f"{traced} traced spans")


def self_test() -> int:
    failures = 0
    for name, expected in sorted(FIXTURE_EXPECTATIONS.items()):
        path = os.path.join(FIXTURE_DIR, name)
        if not os.path.exists(path):
            print(f"self-test FAIL: fixture {name} missing")
            failures += 1
            continue
        try:
            check_file(path, min_events=1)
            message = None
        except CheckError as e:
            message = str(e)
        if expected is None:
            if message is not None:
                print(f"self-test FAIL: {name} should pass, got: {message}")
                failures += 1
            else:
                print(f"self-test ok: {name} -> clean")
        elif message is None:
            print(f"self-test FAIL: {name} should fail with {expected!r}")
            failures += 1
        elif expected not in message:
            print(f"self-test FAIL: {name} expected {expected!r} in: {message}")
            failures += 1
        else:
            print(f"self-test ok: {name} -> {expected!r}")
    if failures:
        print(f"self-test: {failures} failure(s)")
        return 1
    print(f"self-test: all {len(FIXTURE_EXPECTATIONS)} fixtures behaved")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file", nargs="?", help="trace JSON to validate")
    parser.add_argument("--min-events", type=int, default=1,
                        help="floor on the traceEvents count (default 1)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the known-bad fixture corpus")
    args = parser.parse_args(argv)
    if args.self_test:
        return self_test()
    if not args.file:
        parser.error("FILE is required unless --self-test")
    try:
        detail = check_file(args.file, args.min_events)
    except CheckError as e:
        sys.exit(f"check_trace_json: {args.file}: {e}")
    print(f"{args.file}: OK ({detail})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
