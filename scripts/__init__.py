"""Repository tooling package: `python3 -m scripts <command>` is the one
entrypoint CI and developers use for the Python-side checks (medes-lint,
bench-JSON validation, Prometheus exposition validation)."""
