#!/usr/bin/env python3
"""medes-lint: determinism and invariant analyzer for the Medes tree.

Enforces repository-wide rules that clang-tidy cannot express — most of them
exist to protect the simulator's determinism contract (bit-identical results
at any MEDES_THREADS setting) and the documented locking discipline:

  raw-mutex            std::mutex / std::shared_mutex / std::lock_guard /
                       std::unique_lock / std::scoped_lock /
                       std::condition_variable anywhere but the annotated
                       wrappers in src/common/mutex.{h,cc}. Raw primitives
                       bypass the lock-rank checker and the capability
                       annotations.
  wall-clock           steady_clock / system_clock / time() / gettimeofday
                       outside the allowlist (obs/trace.h wall-span mode;
                       bench/* measures real elapsed time by design).
                       Wall-clock reads in modelled code break determinism.
  raw-random           rand() / srand() / std::random_device outside bench/*.
                       All modelled randomness must flow through the seeded
                       SplitMix64 in common/rng.h.
  unordered-iteration  Range-for over a std::unordered_{map,set} in exporter
                       or serialization files. Iteration order is
                       implementation-defined, so serialized artifacts would
                       stop being byte-stable.
  include-guard        Header guards must be MEDES_<PATH>_H_ (path relative
                       to the repo root with a leading src/ stripped,
                       uppercased, separators mapped to '_').
  self-contained       A header that names a common std:: type must include
                       the defining header itself rather than lean on its
                       includers.
  lock-rank            The LockRank enum in src/common/mutex.h, the hierarchy
                       table in DESIGN.md, and every LockRank:: literal in
                       src/ must agree (same names, same numbers).
  direct-filesystem    fopen / std::ofstream / open(2) / std::filesystem
                       outside src/store/ and bench/. Durable state must flow
                       through the store::StateStore seam so determinism,
                       crash recovery, and tier accounting stay centralized;
                       scattered file I/O would bypass all three.

Any finding can be suppressed with an inline escape hatch on the same or the
preceding line, naming the rule:

    std::mutex legacy_mu_;  // medes-lint: allow(raw-mutex) interop shim

Usage:
    python3 scripts/medes_lint.py              # lint the tree, exit 0/1
    python3 scripts/medes_lint.py FILE...      # lint specific files
    python3 scripts/medes_lint.py --self-test  # run the fixture corpus

Stdlib only; no third-party dependencies.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Directories whose C++ sources are linted by default.
LINT_DIRS = ("src", "tests", "bench", "examples")
CPP_EXTENSIONS = (".h", ".cc", ".cpp")

ALLOW_RE = re.compile(r"//\s*medes-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

# ---------------------------------------------------------------------------
# Findings


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _allowed_rules(lines: list[str], index: int) -> set[str]:
    """Rules suppressed for lines[index] (same-line or preceding-line escape)."""
    rules: set[str] = set()
    for probe in (index, index - 1):
        if 0 <= probe < len(lines):
            m = ALLOW_RE.search(lines[probe])
            if m:
                rules.update(r.strip() for r in m.group(1).split(","))
    return rules


def _strip_strings_and_comments(line: str) -> str:
    """Blank out string/char literals and // comments so patterns inside them
    don't fire. Keeps column positions stable."""
    out = []
    i, n = 0, len(line)
    in_str = None
    while i < n:
        c = line[i]
        if in_str:
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            out.append(" ")
            if c == in_str:
                in_str = None
            i += 1
            continue
        if c in ('"', "'"):
            in_str = c
            out.append(" ")
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break  # rest is comment
        out.append(c)
        i += 1
    return "".join(out)


# ---------------------------------------------------------------------------
# Rule: raw-mutex

RAW_MUTEX_RE = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|lock_guard|"
    r"unique_lock|shared_lock|scoped_lock|condition_variable)\b"
)
RAW_MUTEX_ALLOWED_FILES = ("src/common/mutex.h", "src/common/mutex.cc")


def check_raw_mutex(rel: str, lines: list[str], findings: list[Finding]) -> None:
    if rel in RAW_MUTEX_ALLOWED_FILES:
        return
    for i, raw in enumerate(lines):
        code = _strip_strings_and_comments(raw)
        m = RAW_MUTEX_RE.search(code)
        if m and "raw-mutex" not in _allowed_rules(lines, i):
            findings.append(
                Finding(rel, i + 1, "raw-mutex",
                        f"std::{m.group(1)} bypasses the annotated wrappers in "
                        "src/common/mutex.h (lock-rank checker + capability "
                        "annotations); use medes::Mutex / MutexLock")
            )


# ---------------------------------------------------------------------------
# Rule: wall-clock

WALL_CLOCK_RE = re.compile(
    r"(steady_clock|system_clock|high_resolution_clock|gettimeofday\s*\(|"
    r"clock_gettime\s*\(|(?<![:\w])time\s*\(\s*(?:NULL|nullptr|0)\s*\))"
)
# obs/trace.h measures an optional wall-clock span alongside sim time by
# design; bench programs time real executions.
WALL_CLOCK_ALLOWED_FILES = ("src/obs/trace.h",)
WALL_CLOCK_ALLOWED_DIRS = ("bench/",)


def check_wall_clock(rel: str, lines: list[str], findings: list[Finding]) -> None:
    if rel in WALL_CLOCK_ALLOWED_FILES or rel.startswith(WALL_CLOCK_ALLOWED_DIRS):
        return
    for i, raw in enumerate(lines):
        code = _strip_strings_and_comments(raw)
        m = WALL_CLOCK_RE.search(code)
        if m and "wall-clock" not in _allowed_rules(lines, i):
            findings.append(
                Finding(rel, i + 1, "wall-clock",
                        f"wall-clock read ({m.group(1).strip()}) in modelled code "
                        "breaks the determinism contract; use SimTime/SimDuration")
            )


# ---------------------------------------------------------------------------
# Rule: raw-random

RAW_RANDOM_RE = re.compile(r"(std::random_device|(?<![:\w.])s?rand\s*\()")
RAW_RANDOM_ALLOWED_DIRS = ("bench/",)


def check_raw_random(rel: str, lines: list[str], findings: list[Finding]) -> None:
    if rel.startswith(RAW_RANDOM_ALLOWED_DIRS):
        return
    for i, raw in enumerate(lines):
        code = _strip_strings_and_comments(raw)
        m = RAW_RANDOM_RE.search(code)
        if m and "raw-random" not in _allowed_rules(lines, i):
            findings.append(
                Finding(rel, i + 1, "raw-random",
                        f"nondeterministic randomness ({m.group(1).strip()}); all "
                        "modelled randomness must flow through the seeded "
                        "SplitMix64 in common/rng.h")
            )


# ---------------------------------------------------------------------------
# Rule: direct-filesystem

# fopen/freopen, the std::fstream family, std::filesystem, and bare open(2).
# The open(2) lookbehind keeps fopen(, ->open(, .open(, and ::open( from
# matching; a bare `open(` call in C++ code is almost always the POSIX one.
DIRECT_FILESYSTEM_RE = re.compile(
    r"(\bf(?:re)?open\s*\(|std::[io]?fstream\b|std::filesystem\b|"
    r"(?<![\w.:>])open\s*\()"
)
# src/store/ is the designated durability layer; bench programs write their
# JSON artifacts directly by design.
DIRECT_FILESYSTEM_ALLOWED_DIRS = ("src/store/", "bench/")


def check_direct_filesystem(rel: str, lines: list[str],
                            findings: list[Finding]) -> None:
    if rel.startswith(DIRECT_FILESYSTEM_ALLOWED_DIRS):
        return
    for i, raw in enumerate(lines):
        code = _strip_strings_and_comments(raw)
        m = DIRECT_FILESYSTEM_RE.search(code)
        if m and "direct-filesystem" not in _allowed_rules(lines, i):
            findings.append(
                Finding(rel, i + 1, "direct-filesystem",
                        f"direct filesystem access ({m.group(1).strip()}) outside "
                        "src/store/ and bench/; durable state must flow through "
                        "the store::StateStore seam")
            )


# ---------------------------------------------------------------------------
# Rule: unordered-iteration (exporter / serialization files only)

EXPORTER_FILE_RES = (
    re.compile(r"^src/obs/(export|metrics|trace)\.(h|cc)$"),
    re.compile(r"^bench/bench_util\.h$"),
)
UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;=]*>\s+(\w+)\s*[;{=]"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;)]*:\s*&?(\w+)\s*\)")


def check_unordered_iteration(rel: str, lines: list[str],
                              findings: list[Finding]) -> None:
    if not any(r.match(rel) for r in EXPORTER_FILE_RES):
        return
    unordered_names = set()
    for raw in lines:
        for m in UNORDERED_DECL_RE.finditer(_strip_strings_and_comments(raw)):
            unordered_names.add(m.group(1))
    if not unordered_names:
        return
    for i, raw in enumerate(lines):
        code = _strip_strings_and_comments(raw)
        m = RANGE_FOR_RE.search(code)
        if m and m.group(1) in unordered_names:
            if "unordered-iteration" not in _allowed_rules(lines, i):
                findings.append(
                    Finding(rel, i + 1, "unordered-iteration",
                            f"range-for over unordered container '{m.group(1)}' in "
                            "an exporter: iteration order is implementation-"
                            "defined, so serialized output would not be "
                            "byte-stable; copy to a sorted vector first")
                )


# ---------------------------------------------------------------------------
# Rule: include-guard

GUARD_IFNDEF_RE = re.compile(r"^#ifndef\s+(\S+)")


def expected_guard(rel: str) -> str:
    path = rel[len("src/"):] if rel.startswith("src/") else rel
    return "MEDES_" + re.sub(r"[^A-Za-z0-9]", "_", path).upper() + "_"


def check_include_guard(rel: str, lines: list[str], findings: list[Finding]) -> None:
    if not rel.endswith(".h"):
        return
    want = expected_guard(rel)
    guard = None
    guard_line = 0
    for i, raw in enumerate(lines):
        stripped = raw.strip()
        if not stripped or stripped.startswith("//"):
            continue
        m = GUARD_IFNDEF_RE.match(stripped)
        if m:
            guard, guard_line = m.group(1), i + 1
        break  # first non-comment line decides
    if "include-guard" in _allowed_rules(lines, guard_line - 1):
        return
    if guard is None:
        findings.append(
            Finding(rel, 1, "include-guard",
                    f"missing include guard; expected '#ifndef {want}' as the "
                    "first non-comment line")
        )
        return
    if guard != want:
        findings.append(
            Finding(rel, guard_line, "include-guard",
                    f"guard '{guard}' does not match path; expected '{want}'")
        )
        return
    if guard_line >= len(lines) or not lines[guard_line].startswith(f"#define {want}"):
        findings.append(
            Finding(rel, guard_line + 1, "include-guard",
                    f"'#define {want}' must immediately follow the #ifndef")
        )


# ---------------------------------------------------------------------------
# Rule: self-contained (headers must include the std headers they name)

# Conservative symbol -> defining-header map: only types whose presence in a
# header unambiguously requires the include. <cstdint>/<cstddef> types are
# omitted (ubiquitous and transitively guaranteed by the style's own rule of
# thumb would be too noisy to bootstrap).
STD_SYMBOL_HEADERS = {
    "std::vector": "<vector>",
    "std::string": "<string>",
    "std::string_view": "<string_view>",
    "std::unordered_map": "<unordered_map>",
    "std::unordered_set": "<unordered_set>",
    "std::map": "<map>",
    "std::set": "<set>",
    "std::deque": "<deque>",
    "std::list": "<list>",
    "std::array": "<array>",
    "std::span": "<span>",
    "std::optional": "<optional>",
    "std::variant": "<variant>",
    "std::function": "<functional>",
    "std::unique_ptr": "<memory>",
    "std::shared_ptr": "<memory>",
    "std::atomic": "<atomic>",
    "std::thread": "<thread>",
    "std::ostream": "<ostream>",
    "std::pair": "<utility>",
    "std::tuple": "<tuple>",
    "std::nullopt": "<optional>",
    "std::weak_ptr": "<memory>",
    "std::byte": "<cstddef>",
    "std::runtime_error": "<stdexcept>",
    "std::logic_error": "<stdexcept>",
    "std::out_of_range": "<stdexcept>",
}
INCLUDE_RE = re.compile(r'^\s*#include\s+([<"][^>"]+[>"])')
WORD_BOUNDARY = r"(?![\w])"


def check_self_contained(rel: str, lines: list[str], findings: list[Finding]) -> None:
    if not rel.endswith(".h"):
        return
    includes = set()
    for raw in lines:
        m = INCLUDE_RE.match(raw)
        if m:
            includes.add(m.group(1).replace('"', "<").replace('"', ">"))
            includes.add(m.group(1))
    for symbol, header in STD_SYMBOL_HEADERS.items():
        if header in includes:
            continue
        pattern = re.compile(re.escape(symbol) + WORD_BOUNDARY)
        for i, raw in enumerate(lines):
            code = _strip_strings_and_comments(raw)
            if pattern.search(code):
                if "self-contained" in _allowed_rules(lines, i):
                    break
                findings.append(
                    Finding(rel, i + 1, "self-contained",
                            f"header names {symbol} but does not include "
                            f"{header}; headers must be self-contained")
                )
                break  # one finding per missing header is enough


# ---------------------------------------------------------------------------
# Rule: lock-rank (cross-file: enum vs DESIGN.md vs usage)

ENUM_ENTRY_RE = re.compile(r"^\s*(k\w+)\s*=\s*(\d+)\s*,")
DESIGN_ROW_RE = re.compile(r"^\|\s*(\d+)\s*\|\s*([^|]+?)\s*\|")
RANK_LITERAL_RE = re.compile(r"LockRank::(k\w+)")

# Enum entry -> the human name DESIGN.md's table uses for that rank.
ENUM_TO_DESIGN_NAME = {
    "kPoolQueue": "pool queue",
    "kRegistryTopology": "registry topology",
    "kRegistryShard": "registry shard",
    "kRegistrySandbox": "registry sandbox index",
    "kRdmaCache": "rdma cache",
    "kTransport": "transport",
    "kStateStore": "state store",
    "kMetrics": "metrics",
    "kObsRegistry": "obs registry",
    "kObsBuffer": "obs span buffer",
}


def parse_lock_rank_enum(root: str) -> dict[str, int]:
    path = os.path.join(root, "src/common/mutex.h")
    ranks: dict[str, int] = {}
    in_enum = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if "enum class LockRank" in line:
                in_enum = True
                continue
            if in_enum:
                if "};" in line:
                    break
                m = ENUM_ENTRY_RE.match(line)
                if m:
                    ranks[m.group(1)] = int(m.group(2))
    return ranks


def parse_design_ranks(root: str) -> dict[str, int]:
    path = os.path.join(root, "DESIGN.md")
    ranks: dict[str, int] = {}
    if not os.path.exists(path):
        return ranks
    with open(path, encoding="utf-8") as f:
        for line in f:
            m = DESIGN_ROW_RE.match(line.strip())
            if m:
                ranks[m.group(2).strip()] = int(m.group(1))
    return ranks


def check_lock_rank(root: str, files: list[str], findings: list[Finding]) -> None:
    enum_ranks = parse_lock_rank_enum(root)
    if not enum_ranks:
        findings.append(Finding("src/common/mutex.h", 1, "lock-rank",
                                "could not parse the LockRank enum"))
        return
    design_ranks = parse_design_ranks(root)
    for enum_name, number in enum_ranks.items():
        if enum_name == "kUnranked":
            continue
        design_name = ENUM_TO_DESIGN_NAME.get(enum_name)
        if design_name is None:
            findings.append(
                Finding("src/common/mutex.h", 1, "lock-rank",
                        f"LockRank::{enum_name} has no entry in medes-lint's "
                        "ENUM_TO_DESIGN_NAME map; add it alongside the "
                        "DESIGN.md hierarchy-table row")
            )
            continue
        if design_name not in design_ranks:
            findings.append(
                Finding("DESIGN.md", 1, "lock-rank",
                        f"hierarchy table has no row named '{design_name}' for "
                        f"LockRank::{enum_name}")
            )
        elif design_ranks[design_name] != number:
            findings.append(
                Finding("DESIGN.md", 1, "lock-rank",
                        f"rank mismatch for '{design_name}': table says "
                        f"{design_ranks[design_name]}, enum says {number}")
            )
    # Every LockRank:: literal in the linted sources must name a real entry.
    for rel in files:
        if not rel.startswith("src/"):
            continue
        path = os.path.join(root, rel)
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
        for i, raw in enumerate(lines):
            for m in RANK_LITERAL_RE.finditer(_strip_strings_and_comments(raw)):
                if m.group(1) not in enum_ranks:
                    if "lock-rank" in _allowed_rules(lines, i):
                        continue
                    findings.append(
                        Finding(rel, i + 1, "lock-rank",
                                f"LockRank::{m.group(1)} is not declared in "
                                "src/common/mutex.h")
                    )


# ---------------------------------------------------------------------------
# Driver

PER_FILE_CHECKS = (
    check_raw_mutex,
    check_wall_clock,
    check_raw_random,
    check_direct_filesystem,
    check_unordered_iteration,
    check_include_guard,
    check_self_contained,
)


def default_files(root: str) -> list[str]:
    files = []
    for top in LINT_DIRS:
        for dirpath, _dirnames, filenames in os.walk(os.path.join(root, top)):
            for name in sorted(filenames):
                if name.endswith(CPP_EXTENSIONS):
                    files.append(os.path.relpath(os.path.join(dirpath, name), root))
    return sorted(files)


def lint_files(root: str, files: list[str], cross_file: bool = True) -> list[Finding]:
    findings: list[Finding] = []
    for rel in files:
        path = os.path.join(root, rel)
        try:
            with open(path, encoding="utf-8") as f:
                lines = f.read().splitlines()
        except OSError as e:
            findings.append(Finding(rel, 0, "io", str(e)))
            continue
        for check in PER_FILE_CHECKS:
            check(rel, lines, findings)
    if cross_file:
        check_lock_rank(root, files, findings)
    return findings


# ---------------------------------------------------------------------------
# Self-test over the fixture corpus

FIXTURE_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "lint_fixtures")

# fixture file -> rule that must fire at least once on it. Fixtures are laid
# out under lint_fixtures/<mapped-path> so path-scoped rules see the path
# they key on.
FIXTURE_EXPECTATIONS = {
    "src/bad_raw_mutex.cc": "raw-mutex",
    "src/bad_wall_clock.cc": "wall-clock",
    "src/bad_raw_random.cc": "raw-random",
    "src/bad_filesystem.cc": "direct-filesystem",
    "src/obs/export.cc": "unordered-iteration",
    "src/bad_guard.h": "include-guard",
    "src/bad_self_contained.h": "self-contained",
    "src/bad_lock_rank.cc": "lock-rank",
    "src/clean.cc": None,  # escape hatches + clean idioms: must NOT fire
}


def self_test() -> int:
    failures = 0
    for rel, expected_rule in sorted(FIXTURE_EXPECTATIONS.items()):
        path = os.path.join(FIXTURE_DIR, rel)
        if not os.path.exists(path):
            print(f"self-test FAIL: missing fixture {rel}")
            failures += 1
            continue
        findings = lint_files(FIXTURE_DIR, [rel], cross_file=False)
        if rel.startswith("src/") and "lock_rank" in rel:
            # Lock-rank is cross-file; run it against the real repo's enum but
            # the fixture's literal usage.
            check_lock_rank_fixture = []
            with open(path, encoding="utf-8") as f:
                lines = f.read().splitlines()
            enum_ranks = parse_lock_rank_enum(REPO_ROOT)
            for i, raw in enumerate(lines):
                for m in RANK_LITERAL_RE.finditer(raw):
                    if m.group(1) not in enum_ranks:
                        check_lock_rank_fixture.append(
                            Finding(rel, i + 1, "lock-rank", "unknown rank"))
            findings.extend(check_lock_rank_fixture)
        fired = {f.rule for f in findings}
        if expected_rule is None:
            if findings:
                print(f"self-test FAIL: {rel} should be clean but fired: "
                      f"{sorted(fired)}")
                for f in findings:
                    print(f"    {f}")
                failures += 1
            else:
                print(f"self-test ok: {rel} (clean)")
        elif expected_rule not in fired:
            print(f"self-test FAIL: {rel} expected [{expected_rule}], "
                  f"fired {sorted(fired) or 'nothing'}")
            failures += 1
        else:
            print(f"self-test ok: {rel} -> [{expected_rule}]")
    # The real tree must also parse a non-empty LockRank enum and DESIGN table.
    if not parse_lock_rank_enum(REPO_ROOT):
        print("self-test FAIL: could not parse LockRank enum from the repo")
        failures += 1
    if not parse_design_ranks(REPO_ROOT):
        print("self-test FAIL: could not parse the DESIGN.md hierarchy table")
        failures += 1
    if failures:
        print(f"self-test: {failures} failure(s)")
        return 1
    print("self-test: all fixtures behave")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*",
                        help="files to lint (default: src/tests/bench/examples)")
    parser.add_argument("--root", default=REPO_ROOT,
                        help="repository root (default: the repo this script lives in)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the known-bad fixture corpus and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    root = os.path.abspath(args.root)
    if args.files:
        files = [os.path.relpath(os.path.abspath(f), root) for f in args.files]
    else:
        files = default_files(root)
    findings = lint_files(root, files)
    for f in findings:
        print(f)
    if findings:
        print(f"medes-lint: {len(findings)} finding(s) in {len(files)} file(s)")
        return 1
    print(f"medes-lint: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
