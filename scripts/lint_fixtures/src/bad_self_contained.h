// Fixture: naming std::vector without including <vector> must fire
// [self-contained].
#ifndef MEDES_BAD_SELF_CONTAINED_H_
#define MEDES_BAD_SELF_CONTAINED_H_

namespace medes {

std::vector<int> MakeInts();

}  // namespace medes

#endif  // MEDES_BAD_SELF_CONTAINED_H_
