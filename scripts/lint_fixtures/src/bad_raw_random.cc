// Fixture: nondeterministic randomness must fire [raw-random].
#include <cstdlib>
#include <random>

namespace medes {

int Roll() {
  std::random_device rd;
  return static_cast<int>(rd()) + rand();
}

}  // namespace medes
