// Fixture: raw standard-library locking primitives outside
// src/common/mutex.{h,cc} must fire [raw-mutex].
#include <mutex>

namespace medes {

std::mutex raw_mu;

void Touch() {
  std::lock_guard<std::mutex> lock(raw_mu);
}

}  // namespace medes
