// Fixture: clean idioms plus every escape hatch — medes-lint must stay
// silent on this file.
#include <mutex>  // medes-lint: allow(raw-mutex) fixture exercises the escape hatch

namespace medes {

// medes-lint: allow(raw-mutex) preceding-line escape also suppresses
std::mutex legacy_interop_mu;

long WallSpan() {
  // medes-lint: allow(wall-clock) explicit wall-span measurement
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

int Seed() {
  return rand();  // medes-lint: allow(raw-random) seeding a reproducibility log
}

// Mentions inside strings and comments must never fire: "std::mutex",
// steady_clock, rand(), std::random_device.
const char* kDoc = "uses std::mutex and std::random_device in prose only";

}  // namespace medes
