// Fixture: iterating an unordered container in an exporter must fire
// [unordered-iteration] — serialized output would not be byte-stable.
#include <string>
#include <unordered_map>

namespace medes::obs {

std::string ExportAll() {
  std::unordered_map<std::string, long> counters;
  std::string out;
  for (const auto& kv : counters) {
    out += kv.first;
  }
  return out;
}

}  // namespace medes::obs
