// Fixture: direct file I/O outside src/store/ and bench/ must fire
// [direct-filesystem] — once per offending line, each form of access.
#include <cstdio>
#include <fcntl.h>
#include <filesystem>
#include <fstream>

namespace medes {

void Persist() {
  FILE* f = fopen("/tmp/state.bin", "wb");
  (void)f;
  std::ofstream out("/tmp/state.txt");
  int fd = open("/tmp/state.raw", O_RDONLY);
  (void)fd;
  std::filesystem::create_directories("/tmp/state.d");
  // Escaped access must NOT fire:
  FILE* ok = fopen("/tmp/ok.bin", "rb");  // medes-lint: allow(direct-filesystem)
  (void)ok;
}

}  // namespace medes
