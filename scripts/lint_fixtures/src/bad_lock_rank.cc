// Fixture: a LockRank literal that src/common/mutex.h does not declare must
// fire [lock-rank].
namespace medes {

void Construct() {
  auto rank = LockRank::kNotARealRank;
  (void)rank;
}

}  // namespace medes
