// Fixture: wall-clock reads in modelled code must fire [wall-clock].
#include <chrono>

namespace medes {

long NowNanos() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace medes
