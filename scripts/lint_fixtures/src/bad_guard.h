// Fixture: a guard that does not match MEDES_<PATH>_H_ must fire
// [include-guard].
#ifndef WRONG_GUARD_NAME_H
#define WRONG_GUARD_NAME_H

namespace medes {}

#endif  // WRONG_GUARD_NAME_H
