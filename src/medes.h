// Umbrella header for the Medes library.
//
// Medes (EuroSys '22) is a serverless platform that adds a third sandbox
// state — *dedup* — between warm and cold: idle sandboxes are reduced to
// per-page binary patches against similar base pages elsewhere in the
// cluster, found via value-sampled chunk fingerprints, and restored on demand
// with RDMA reads. See DESIGN.md for the module inventory and EXPERIMENTS.md
// for the paper-figure reproductions.
#ifndef MEDES_MEDES_H_
#define MEDES_MEDES_H_

#include "checkpoint/checkpoint.h"          // IWYU pragma: export
#include "chunking/fingerprint.h"           // IWYU pragma: export
#include "chunking/rabin.h"                 // IWYU pragma: export
#include "chunking/redundancy.h"            // IWYU pragma: export
#include "cluster/cluster.h"                // IWYU pragma: export
#include "cluster/recovery_validator.h"     // IWYU pragma: export
#include "common/histogram.h"               // IWYU pragma: export
#include "common/logging.h"                 // IWYU pragma: export
#include "common/rng.h"                     // IWYU pragma: export
#include "common/sha1.h"                    // IWYU pragma: export
#include "common/time.h"                    // IWYU pragma: export
#include "controller/medes_controller.h"    // IWYU pragma: export
#include "dedupagent/dedup_agent.h"         // IWYU pragma: export
#include "delta/delta.h"                    // IWYU pragma: export
#include "memstate/image.h"                 // IWYU pragma: export
#include "memstate/library_pool.h"          // IWYU pragma: export
#include "memstate/profiles.h"              // IWYU pragma: export
#include "net/transport.h"                  // IWYU pragma: export
#include "obs/export.h"                     // IWYU pragma: export
#include "obs/metrics.h"                    // IWYU pragma: export
#include "obs/obs.h"                        // IWYU pragma: export
#include "obs/trace.h"                      // IWYU pragma: export
#include "platform/metrics.h"               // IWYU pragma: export
#include "platform/platform.h"              // IWYU pragma: export
#include "policy/keep_alive.h"              // IWYU pragma: export
#include "policy/medes_policy.h"            // IWYU pragma: export
#include "rdma/rdma.h"                      // IWYU pragma: export
#include "registry/fingerprint_registry.h"  // IWYU pragma: export
#include "registry/registry_recovery.h"     // IWYU pragma: export
#include "sim/simulation.h"                 // IWYU pragma: export
#include "store/state_store.h"              // IWYU pragma: export
#include "workload/trace.h"                 // IWYU pragma: export

#endif  // MEDES_MEDES_H_
