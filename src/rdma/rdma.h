// Simulated RDMA fabric.
//
// Medes fetches base pages from remote machines with one-sided RDMA reads
// (no remote CPU involvement, paper Section 4.2). The testbed had 10 Gbps
// NICs. We model each read's cost as
//     latency = per_read_latency + bytes / bandwidth
// with a cheaper path for node-local reads (plain memory copies). The fabric
// also routes the *actual bytes*: a PageProvider callback resolves a
// PageLocation to the bytes held by the target node's base-sandbox
// checkpoint, so reconstruction operates on real data.
#ifndef MEDES_RDMA_RDMA_H_
#define MEDES_RDMA_RDMA_H_

#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/time.h"
#include "registry/fingerprint_registry.h"

namespace medes {

struct RdmaOptions {
  SimDuration per_read_latency = 3;            // us, one-sided read setup
  double bandwidth_gbps = 10.0;                // NIC line rate
  SimDuration local_per_read_latency = 0;      // node-local copies
  double local_bandwidth_gbps = 80.0;          // DRAM-ish copy rate
};

struct RdmaStats {
  uint64_t remote_reads = 0;
  uint64_t remote_bytes = 0;
  uint64_t local_reads = 0;
  uint64_t local_bytes = 0;
};

class RdmaError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class RdmaFabric {
 public:
  // Resolves a page location to its bytes (empty result = page unavailable).
  using PageProvider = std::function<std::vector<uint8_t>(const PageLocation&)>;

  explicit RdmaFabric(RdmaOptions options = {}, PageProvider provider = nullptr);

  void set_provider(PageProvider provider) { provider_ = std::move(provider); }

  // One-sided read of a base page. `reader_node` decides local vs remote
  // cost. Returns the bytes and adds the modelled cost to `*cost`.
  std::vector<uint8_t> ReadPage(const PageLocation& location, NodeId reader_node,
                                SimDuration* cost);

  // Pure timing model (used when the caller already has byte counts).
  SimDuration ReadCost(size_t bytes, bool remote) const;

  const RdmaStats& stats() const { return stats_; }
  void ResetStats() { stats_ = {}; }

 private:
  RdmaOptions options_;
  PageProvider provider_;
  RdmaStats stats_;
};

}  // namespace medes

#endif  // MEDES_RDMA_RDMA_H_
