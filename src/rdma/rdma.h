// Simulated RDMA fabric.
//
// Medes fetches base pages from remote machines with one-sided RDMA reads
// (no remote CPU involvement, paper Section 4.2). The testbed had 10 Gbps
// NICs. We model each read's cost as
//     latency = per_read_latency + bytes / bandwidth
// with a cheaper path for node-local reads (plain memory copies). The fabric
// also routes the *actual bytes*: a PageProvider callback resolves a
// PageLocation to the bytes held by the target node's base-sandbox
// checkpoint, so reconstruction operates on real data.
//
// An optional LRU cache sits in front of the provider, keyed by
// PageLocation. Base pages are immutable while pinned and sandbox ids are
// never reused, so cached bytes can never go stale — invalidation (on base
// purge) only reclaims capacity. Hot base pages (every dedup sandbox of a
// function patches against the same base) then cost one fabric read instead
// of one per restore; a hit is charged `cache_hit_latency` (a local DRAM
// copy) instead of the modelled fabric read.
#ifndef MEDES_RDMA_RDMA_H_
#define MEDES_RDMA_RDMA_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <span>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/time.h"
#include "net/transport.h"
#include "registry/fingerprint_registry.h"

namespace medes {

namespace store {
class StateStore;
}  // namespace store

struct RdmaOptions {
  // Wire model used when no shared Transport is passed to the constructor:
  // the fabric then builds a private Transport whose remote/local links come
  // from these four fields. With a shared Transport, its Topology is
  // authoritative and these are ignored.
  SimDuration per_read_latency{3};            // us, one-sided read setup
  double bandwidth_gbps = 10.0;                // NIC line rate
  SimDuration local_per_read_latency;      // node-local copies
  double local_bandwidth_gbps = 80.0;          // DRAM-ish copy rate
  // Base-page read cache capacity in pages; 0 disables the cache.
  size_t page_cache_capacity = 0;
  // Modelled cost of serving a read from the cache (DRAM copy + bookkeeping).
  SimDuration cache_hit_latency{1};           // us
};

struct RdmaStats {
  uint64_t remote_reads = 0;
  uint64_t remote_bytes = 0;
  uint64_t local_reads = 0;
  uint64_t local_bytes = 0;
  // Batched reads (ReadPageBatch): wire messages sent (one per owner node
  // per batch) and pages fetched through them. Those pages are *also*
  // counted in remote/local_reads above — batch_* measures coalescing, the
  // read counters measure page traffic.
  uint64_t batch_messages = 0;
  uint64_t batch_pages = 0;
  // Base-page cache counters (hits never touch the fabric, so they are not
  // double-counted in the read/byte totals above). Each distinct location a
  // batched read classifies counts exactly one hit or one miss — never both.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;

  double CacheHitRate() const {
    const uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) / static_cast<double>(total);
  }
};

class RdmaError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// A read whose kBaseRead message was dropped by the transport's fault
// policy (source node partitioned, link cut, ...). Callers that can degrade
// (dedup candidate selection) catch this and treat the page as unique;
// restore paths propagate it — a restore cannot proceed without its bases.
class RdmaUnavailable : public RdmaError {
 public:
  using RdmaError::RdmaError;
};

class RdmaFabric {
 public:
  // Resolves a page location to its bytes (empty result = page unavailable).
  using PageProvider = std::function<std::vector<uint8_t>(const PageLocation&)>;

  // With a null `transport` the fabric builds a private Transport from the
  // options' wire fields, so base reads are charged as kBaseRead messages
  // either way; the platform passes its shared cluster transport.
  explicit RdmaFabric(RdmaOptions options = {}, PageProvider provider = nullptr,
                      std::shared_ptr<Transport> transport = nullptr);

  void set_provider(PageProvider provider) { provider_ = std::move(provider); }

  // One-sided read of a base page. `reader_node` decides local vs remote
  // cost. Returns the bytes and adds the modelled cost to `*cost`. Served
  // from the cache when possible (a hit charges `cache_hit_latency` locally
  // and sends no message — the bytes never cross the wire). Throws
  // RdmaUnavailable when the fault policy drops the read. `trace`, when
  // sampled, parents the kBaseRead wire span — callers supply a per-read
  // ordinal so concurrent reads get distinct, deterministic span ids.
  [[nodiscard]] std::vector<uint8_t> ReadPage(const PageLocation& location, NodeId reader_node,
                                SimDuration* cost,
                                const obs::MessageTrace& trace = {}) EXCLUDES(cache_mu_);

  // Batched one-sided read of many base pages (lazy-restore prefetch).
  // The whole batch is classified against the cache in one pass under one
  // lock: each *distinct* location counts exactly one cache hit or one cache
  // miss; duplicate occurrences within the batch alias the first copy (a
  // local DRAM copy at `cache_hit_latency`, counted as a hit only when the
  // cache exists). Misses are grouped by owner node and charged as ONE
  // kBaseReadBatch message per node carrying the group's summed bytes —
  // topology-aware coalescing: per-message link latency is paid once per
  // node instead of once per page. Results are positionally aligned with
  // `locations`. Throws RdmaUnavailable when a group's message is dropped
  // (the restore cannot proceed without its bases). `trace`, when sampled,
  // parents each group's kBaseReadBatch wire span; the owner node id is
  // folded into the ordinal so per-node groups get distinct span ids.
  [[nodiscard]] std::vector<std::vector<uint8_t>> ReadPageBatch(
      std::span<const PageLocation> locations, NodeId reader_node, SimDuration* cost,
      const obs::MessageTrace& trace = {}) EXCLUDES(cache_mu_);

  // Pure timing model (used when the caller already has byte counts):
  // LinkCost over the transport topology's default remote or local link.
  [[nodiscard]] SimDuration ReadCost(Bytes bytes, bool remote) const;

  // The transport base reads are charged through.
  const std::shared_ptr<Transport>& transport() const { return transport_; }

  // Binds the tiered state store: fabric reads that miss the page cache
  // additionally touch the page's residency entry, so demand-paging an
  // SSD-evicted base page charges the modelled cold-tier fetch into the
  // read's cost. Configuration-time only; unbound fabrics charge nothing.
  void BindStateStore(std::shared_ptr<store::StateStore> store);

  // Drops every cached page belonging to `sandbox` (called when a base
  // sandbox is purged). Pure capacity hygiene — ids are never reused.
  void InvalidateSandbox(SandboxId sandbox) EXCLUDES(cache_mu_);

  size_t CachedPages() const EXCLUDES(cache_mu_);

  // Consistent snapshot of the counters (they advance under cache_mu_).
  RdmaStats stats() const EXCLUDES(cache_mu_);
  void ResetStats() EXCLUDES(cache_mu_);

 private:
  struct CacheEntry {
    PageLocation location;
    std::vector<uint8_t> bytes;
  };

  // Returns the cached bytes or nullptr. Promotes hits to MRU.
  const std::vector<uint8_t>* CacheLookup(const PageLocation& location) REQUIRES(cache_mu_);
  void CacheInsert(const PageLocation& location, const std::vector<uint8_t>& bytes)
      REQUIRES(cache_mu_);

  RdmaOptions options_;
  PageProvider provider_;
  std::shared_ptr<Transport> transport_;
  // Optional tiering seam (see BindStateStore). Touched only at serial call
  // sites, outside cache_mu_.
  std::shared_ptr<store::StateStore> store_;

  // LRU cache: list front = most recently used. Guarded by cache_mu_ so
  // pipeline workers may share a fabric. Stats advance under the same lock
  // (they are updated on every read, cached or not).
  mutable Mutex cache_mu_{"rdma page cache", LockRank::kRdmaCache};
  RdmaStats stats_ GUARDED_BY(cache_mu_);
  std::list<CacheEntry> lru_ GUARDED_BY(cache_mu_);
  std::unordered_map<PageLocation, std::list<CacheEntry>::iterator, PageLocationHash>
      cache_index_ GUARDED_BY(cache_mu_);
};

}  // namespace medes

#endif  // MEDES_RDMA_RDMA_H_
