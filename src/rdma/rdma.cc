#include "rdma/rdma.h"

#include <map>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "store/state_store.h"

namespace medes {

namespace {

struct RdmaInstruments {
  obs::Counter* cache_hits;
  obs::Counter* cache_misses;
  obs::Counter* cache_evictions;
  obs::Counter* remote_reads;
  obs::Counter* remote_bytes;
  obs::Counter* local_reads;
  obs::Counter* local_bytes;
  obs::Counter* batch_messages;
  obs::Counter* batch_pages;
};

const RdmaInstruments& Instruments() {
  static const RdmaInstruments instruments = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
    return RdmaInstruments{
        .cache_hits = &registry.GetCounter("medes_rdma_cache_hits_total",
                                           "Base-page reads served from the local page cache"),
        .cache_misses = &registry.GetCounter("medes_rdma_cache_misses_total",
                                             "Base-page reads that missed the page cache"),
        .cache_evictions = &registry.GetCounter("medes_rdma_cache_evictions_total",
                                                "Pages evicted from the base-page cache"),
        .remote_reads = &registry.GetCounter("medes_rdma_remote_reads_total",
                                             "One-sided base-page reads from a remote node"),
        .remote_bytes = &registry.GetCounter("medes_rdma_remote_bytes_total",
                                             "Bytes read one-sided from remote nodes"),
        .local_reads = &registry.GetCounter("medes_rdma_local_reads_total",
                                            "Base-page reads served by the local node"),
        .local_bytes = &registry.GetCounter("medes_rdma_local_bytes_total",
                                            "Bytes read from the local node"),
        .batch_messages = &registry.GetCounter(
            "medes_rdma_batch_messages_total",
            "Coalesced base-read messages sent (one per owner node per batch)"),
        .batch_pages = &registry.GetCounter("medes_rdma_batch_pages_total",
                                            "Base pages fetched through batched reads"),
    };
  }();
  return instruments;
}

}  // namespace

RdmaFabric::RdmaFabric(RdmaOptions options, PageProvider provider,
                       std::shared_ptr<Transport> transport)
    : options_(options), provider_(std::move(provider)), transport_(std::move(transport)) {
  if (transport_ == nullptr) {
    // Standalone use: a private transport built from the options' wire
    // fields, so kBaseRead charges and stats exist without a platform.
    Topology topology;
    topology.remote = {.latency = options_.per_read_latency,
                       .bandwidth_gbps = options_.bandwidth_gbps};
    topology.local = {.latency = options_.local_per_read_latency,
                      .bandwidth_gbps = options_.local_bandwidth_gbps};
    transport_ = std::make_shared<Transport>(std::move(topology));
  }
}

void RdmaFabric::BindStateStore(std::shared_ptr<store::StateStore> store) {
  store_ = std::move(store);
}

SimDuration RdmaFabric::ReadCost(Bytes bytes, bool remote) const {
  const Topology& topology = transport_->topology();
  return LinkCost(bytes, remote ? topology.remote : topology.local);
}

const std::vector<uint8_t>* RdmaFabric::CacheLookup(const PageLocation& location) {
  auto it = cache_index_.find(location);
  if (it == cache_index_.end()) {
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // promote to MRU
  return &it->second->bytes;
}

void RdmaFabric::CacheInsert(const PageLocation& location, const std::vector<uint8_t>& bytes) {
  auto it = cache_index_.find(location);
  if (it != cache_index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;  // raced fetch of the same page: already cached
  }
  while (lru_.size() >= options_.page_cache_capacity && !lru_.empty()) {
    cache_index_.erase(lru_.back().location);
    lru_.pop_back();
    ++stats_.cache_evictions;
  }
  lru_.push_front(CacheEntry{location, bytes});
  cache_index_[location] = lru_.begin();
}

std::vector<uint8_t> RdmaFabric::ReadPage(const PageLocation& location, NodeId reader_node,
                                          SimDuration* cost, const obs::MessageTrace& trace) {
  if (options_.page_cache_capacity > 0) {
    MutexLock lock(cache_mu_);
    if (const std::vector<uint8_t>* cached = CacheLookup(location)) {
      ++stats_.cache_hits;
      if (obs::MetricsEnabled()) {
        Instruments().cache_hits->Add(1);
      }
      if (cost != nullptr) {
        *cost += options_.cache_hit_latency;
      }
      return *cached;
    }
  }
  if (!provider_) {
    throw RdmaError("RdmaFabric: no page provider installed");
  }
  std::vector<uint8_t> bytes = provider_(location);
  if (bytes.empty()) {
    throw RdmaError("RdmaFabric: base page unavailable");
  }
  const bool remote = location.node != reader_node;
  // One-sided read: the bytes travel owner -> reader as one kBaseRead
  // message. A drop (fault policy) aborts the read before any stats or
  // cache mutation, so degraded runs stay a pure function of page order.
  const auto sent = transport_->Send(MessageType::kBaseRead, location.node, reader_node,
                                     Bytes{bytes.size()}, /*requests=*/1, trace);
  if (!sent.delivered) {
    throw RdmaUnavailable("RdmaFabric: base-page read dropped by fault policy");
  }
  // Page-cache miss reached the owner node: if its copy was evicted to the
  // cold tier, the demand-page fetch joins the read's modelled cost. Outside
  // cache_mu_, at a serial call site (determinism contract, store header).
  if (store_ != nullptr) {
    store_->TouchBasePage(location.sandbox, location.page_index, cost);
  }
  size_t evictions = 0;
  {
    MutexLock lock(cache_mu_);
    if (remote) {
      ++stats_.remote_reads;
      stats_.remote_bytes += bytes.size();
    } else {
      ++stats_.local_reads;
      stats_.local_bytes += bytes.size();
    }
    if (options_.page_cache_capacity > 0) {
      ++stats_.cache_misses;
      const uint64_t before = stats_.cache_evictions;
      CacheInsert(location, bytes);
      evictions = stats_.cache_evictions - before;
    }
  }
  if (obs::MetricsEnabled()) {
    const RdmaInstruments& ins = Instruments();
    if (remote) {
      ins.remote_reads->Add(1);
      ins.remote_bytes->Add(bytes.size());
    } else {
      ins.local_reads->Add(1);
      ins.local_bytes->Add(bytes.size());
    }
    if (options_.page_cache_capacity > 0) {
      ins.cache_misses->Add(1);
      ins.cache_evictions->Add(evictions);
    }
  }
  if (cost != nullptr) {
    *cost += sent.cost;
  }
  return bytes;
}

std::vector<std::vector<uint8_t>> RdmaFabric::ReadPageBatch(
    std::span<const PageLocation> locations, NodeId reader_node, SimDuration* cost,
    const obs::MessageTrace& trace) {
  const size_t n = locations.size();
  std::vector<std::vector<uint8_t>> results(n);
  if (n == 0) {
    return results;
  }

  // 1. Classification, one pass under one lock: every distinct location is
  // exactly one cache hit (bytes copied out now) or one cache miss (queued
  // for the fetch below); repeats of an earlier batch entry alias its copy.
  // Counting here — and nowhere else — is what keeps mixed hit/uncached
  // batches from double-counting hit stats.
  std::vector<size_t> misses;
  std::vector<ptrdiff_t> alias(n, -1);
  uint64_t hits = 0;
  {
    std::unordered_map<PageLocation, size_t, PageLocationHash> first_seen;
    first_seen.reserve(n);
    MutexLock lock(cache_mu_);
    for (size_t i = 0; i < n; ++i) {
      auto [it, inserted] = first_seen.try_emplace(locations[i], i);
      if (!inserted) {
        alias[i] = static_cast<ptrdiff_t>(it->second);
        continue;
      }
      if (options_.page_cache_capacity > 0) {
        if (const std::vector<uint8_t>* cached = CacheLookup(locations[i])) {
          results[i] = *cached;
          ++hits;
          if (cost != nullptr) {
            *cost += options_.cache_hit_latency;
          }
          continue;
        }
      }
      misses.push_back(i);
    }
    stats_.cache_hits += hits;
  }
  if (hits > 0 && obs::MetricsEnabled()) {
    Instruments().cache_hits->Add(static_cast<uint64_t>(hits));
  }

  // 2. Fetch the misses, one coalesced wire message per owner node (the
  // iteration order is NodeId order — deterministic regardless of the
  // batch's layout). A dropped group aborts the whole batch: a restore
  // cannot proceed with partial bases.
  if (!misses.empty() && !provider_) {
    throw RdmaError("RdmaFabric: no page provider installed");
  }
  std::map<NodeId, std::vector<size_t>> by_node;
  for (size_t i : misses) {
    by_node[locations[i].node].push_back(i);
  }
  for (const auto& [node, idxs] : by_node) {
    size_t group_bytes = 0;
    for (size_t i : idxs) {
      results[i] = provider_(locations[i]);
      if (results[i].empty()) {
        throw RdmaError("RdmaFabric: base page unavailable");
      }
      group_bytes += results[i].size();
    }
    // Fold the owner node into the trace ordinal: the per-node groups of a
    // batch are distinct sends and need distinct, deterministic span ids.
    const obs::MessageTrace group_trace{
        trace.ctx, trace.at, trace.ordinal * 1024 + static_cast<uint64_t>(node.value())};
    const auto sent = transport_->Send(MessageType::kBaseReadBatch, node, reader_node,
                                       Bytes{group_bytes}, idxs.size(), group_trace);
    if (!sent.delivered) {
      throw RdmaUnavailable("RdmaFabric: batched base-page read dropped by fault policy");
    }
    if (cost != nullptr) {
      *cost += sent.cost;
    }
    // Cold-tier touches in NodeId-then-batch order — deterministic for a
    // given batch layout regardless of thread count.
    if (store_ != nullptr) {
      for (size_t i : idxs) {
        store_->TouchBasePage(locations[i].sandbox, locations[i].page_index, cost);
      }
    }
    const bool remote = node != reader_node;
    uint64_t evictions = 0;
    {
      MutexLock lock(cache_mu_);
      ++stats_.batch_messages;
      stats_.batch_pages += idxs.size();
      for (size_t i : idxs) {
        if (remote) {
          ++stats_.remote_reads;
          stats_.remote_bytes += results[i].size();
        } else {
          ++stats_.local_reads;
          stats_.local_bytes += results[i].size();
        }
        if (options_.page_cache_capacity > 0) {
          ++stats_.cache_misses;
          const uint64_t before = stats_.cache_evictions;
          CacheInsert(locations[i], results[i]);
          evictions += stats_.cache_evictions - before;
        }
      }
    }
    if (obs::MetricsEnabled()) {
      const RdmaInstruments& ins = Instruments();
      ins.batch_messages->Add(1);
      ins.batch_pages->Add(static_cast<uint64_t>(idxs.size()));
      if (remote) {
        ins.remote_reads->Add(static_cast<uint64_t>(idxs.size()));
        ins.remote_bytes->Add(static_cast<uint64_t>(group_bytes));
      } else {
        ins.local_reads->Add(static_cast<uint64_t>(idxs.size()));
        ins.local_bytes->Add(static_cast<uint64_t>(group_bytes));
      }
      if (options_.page_cache_capacity > 0) {
        ins.cache_misses->Add(static_cast<uint64_t>(idxs.size()));
        ins.cache_evictions->Add(static_cast<uint64_t>(evictions));
      }
    }
  }

  // 3. Resolve duplicates against the batch's own copies. A repeat is a
  // local DRAM copy of bytes already in hand: hit-priced, and counted as a
  // cache hit only when a cache actually exists to have served it.
  uint64_t alias_hits = 0;
  for (size_t i = 0; i < n; ++i) {
    if (alias[i] < 0) {
      continue;
    }
    results[i] = results[static_cast<size_t>(alias[i])];
    if (cost != nullptr) {
      *cost += options_.cache_hit_latency;
    }
    if (options_.page_cache_capacity > 0) {
      ++alias_hits;
    }
  }
  if (alias_hits > 0) {
    {
      MutexLock lock(cache_mu_);
      stats_.cache_hits += alias_hits;
    }
    if (obs::MetricsEnabled()) {
      Instruments().cache_hits->Add(static_cast<uint64_t>(alias_hits));
    }
  }
  return results;
}

void RdmaFabric::InvalidateSandbox(SandboxId sandbox) {
  MutexLock lock(cache_mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->location.sandbox == sandbox) {
      cache_index_.erase(it->location);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

size_t RdmaFabric::CachedPages() const {
  MutexLock lock(cache_mu_);
  return lru_.size();
}

RdmaStats RdmaFabric::stats() const {
  MutexLock lock(cache_mu_);
  return stats_;
}

void RdmaFabric::ResetStats() {
  MutexLock lock(cache_mu_);
  stats_ = {};
}

}  // namespace medes
