#include "rdma/rdma.h"

namespace medes {

RdmaFabric::RdmaFabric(RdmaOptions options, PageProvider provider)
    : options_(options), provider_(std::move(provider)) {}

SimDuration RdmaFabric::ReadCost(size_t bytes, bool remote) const {
  const double gbps = remote ? options_.bandwidth_gbps : options_.local_bandwidth_gbps;
  // bytes / (gbps Gbit/s) in microseconds: bytes * 8 / (gbps * 1000) us.
  auto transfer = static_cast<SimDuration>(static_cast<double>(bytes) * 8.0 / (gbps * 1000.0));
  return (remote ? options_.per_read_latency : options_.local_per_read_latency) + transfer;
}

std::vector<uint8_t> RdmaFabric::ReadPage(const PageLocation& location, NodeId reader_node,
                                          SimDuration* cost) {
  if (!provider_) {
    throw RdmaError("RdmaFabric: no page provider installed");
  }
  std::vector<uint8_t> bytes = provider_(location);
  if (bytes.empty()) {
    throw RdmaError("RdmaFabric: base page unavailable");
  }
  const bool remote = location.node != reader_node;
  if (remote) {
    ++stats_.remote_reads;
    stats_.remote_bytes += bytes.size();
  } else {
    ++stats_.local_reads;
    stats_.local_bytes += bytes.size();
  }
  if (cost != nullptr) {
    *cost += ReadCost(bytes.size(), remote);
  }
  return bytes;
}

}  // namespace medes
