#include "rdma/rdma.h"

#include "obs/metrics.h"
#include "obs/obs.h"

namespace medes {

namespace {

struct RdmaInstruments {
  obs::Counter* cache_hits;
  obs::Counter* cache_misses;
  obs::Counter* cache_evictions;
  obs::Counter* remote_reads;
  obs::Counter* remote_bytes;
  obs::Counter* local_reads;
  obs::Counter* local_bytes;
};

const RdmaInstruments& Instruments() {
  static const RdmaInstruments instruments = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
    return RdmaInstruments{
        .cache_hits = &registry.GetCounter("medes_rdma_cache_hits_total",
                                           "Base-page reads served from the local page cache"),
        .cache_misses = &registry.GetCounter("medes_rdma_cache_misses_total",
                                             "Base-page reads that missed the page cache"),
        .cache_evictions = &registry.GetCounter("medes_rdma_cache_evictions_total",
                                                "Pages evicted from the base-page cache"),
        .remote_reads = &registry.GetCounter("medes_rdma_remote_reads_total",
                                             "One-sided base-page reads from a remote node"),
        .remote_bytes = &registry.GetCounter("medes_rdma_remote_bytes_total",
                                             "Bytes read one-sided from remote nodes"),
        .local_reads = &registry.GetCounter("medes_rdma_local_reads_total",
                                            "Base-page reads served by the local node"),
        .local_bytes = &registry.GetCounter("medes_rdma_local_bytes_total",
                                            "Bytes read from the local node"),
    };
  }();
  return instruments;
}

}  // namespace

RdmaFabric::RdmaFabric(RdmaOptions options, PageProvider provider,
                       std::shared_ptr<Transport> transport)
    : options_(options), provider_(std::move(provider)), transport_(std::move(transport)) {
  if (transport_ == nullptr) {
    // Standalone use: a private transport built from the options' wire
    // fields, so kBaseRead charges and stats exist without a platform.
    Topology topology;
    topology.remote = {.latency = options_.per_read_latency,
                       .bandwidth_gbps = options_.bandwidth_gbps};
    topology.local = {.latency = options_.local_per_read_latency,
                      .bandwidth_gbps = options_.local_bandwidth_gbps};
    transport_ = std::make_shared<Transport>(std::move(topology));
  }
}

SimDuration RdmaFabric::ReadCost(Bytes bytes, bool remote) const {
  const Topology& topology = transport_->topology();
  return LinkCost(bytes, remote ? topology.remote : topology.local);
}

const std::vector<uint8_t>* RdmaFabric::CacheLookup(const PageLocation& location) {
  auto it = cache_index_.find(location);
  if (it == cache_index_.end()) {
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // promote to MRU
  return &it->second->bytes;
}

void RdmaFabric::CacheInsert(const PageLocation& location, const std::vector<uint8_t>& bytes) {
  auto it = cache_index_.find(location);
  if (it != cache_index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;  // raced fetch of the same page: already cached
  }
  while (lru_.size() >= options_.page_cache_capacity && !lru_.empty()) {
    cache_index_.erase(lru_.back().location);
    lru_.pop_back();
    ++stats_.cache_evictions;
  }
  lru_.push_front(CacheEntry{location, bytes});
  cache_index_[location] = lru_.begin();
}

std::vector<uint8_t> RdmaFabric::ReadPage(const PageLocation& location, NodeId reader_node,
                                          SimDuration* cost) {
  if (options_.page_cache_capacity > 0) {
    MutexLock lock(cache_mu_);
    if (const std::vector<uint8_t>* cached = CacheLookup(location)) {
      ++stats_.cache_hits;
      if (obs::MetricsEnabled()) {
        Instruments().cache_hits->Add(1);
      }
      if (cost != nullptr) {
        *cost += options_.cache_hit_latency;
      }
      return *cached;
    }
  }
  if (!provider_) {
    throw RdmaError("RdmaFabric: no page provider installed");
  }
  std::vector<uint8_t> bytes = provider_(location);
  if (bytes.empty()) {
    throw RdmaError("RdmaFabric: base page unavailable");
  }
  const bool remote = location.node != reader_node;
  // One-sided read: the bytes travel owner -> reader as one kBaseRead
  // message. A drop (fault policy) aborts the read before any stats or
  // cache mutation, so degraded runs stay a pure function of page order.
  const auto sent =
      transport_->Send(MessageType::kBaseRead, location.node, reader_node, Bytes{bytes.size()});
  if (!sent.delivered) {
    throw RdmaUnavailable("RdmaFabric: base-page read dropped by fault policy");
  }
  size_t evictions = 0;
  {
    MutexLock lock(cache_mu_);
    if (remote) {
      ++stats_.remote_reads;
      stats_.remote_bytes += bytes.size();
    } else {
      ++stats_.local_reads;
      stats_.local_bytes += bytes.size();
    }
    if (options_.page_cache_capacity > 0) {
      ++stats_.cache_misses;
      const uint64_t before = stats_.cache_evictions;
      CacheInsert(location, bytes);
      evictions = stats_.cache_evictions - before;
    }
  }
  if (obs::MetricsEnabled()) {
    const RdmaInstruments& ins = Instruments();
    if (remote) {
      ins.remote_reads->Add(1);
      ins.remote_bytes->Add(bytes.size());
    } else {
      ins.local_reads->Add(1);
      ins.local_bytes->Add(bytes.size());
    }
    if (options_.page_cache_capacity > 0) {
      ins.cache_misses->Add(1);
      ins.cache_evictions->Add(evictions);
    }
  }
  if (cost != nullptr) {
    *cost += sent.cost;
  }
  return bytes;
}

void RdmaFabric::InvalidateSandbox(SandboxId sandbox) {
  MutexLock lock(cache_mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->location.sandbox == sandbox) {
      cache_index_.erase(it->location);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

size_t RdmaFabric::CachedPages() const {
  MutexLock lock(cache_mu_);
  return lru_.size();
}

RdmaStats RdmaFabric::stats() const {
  MutexLock lock(cache_mu_);
  return stats_;
}

void RdmaFabric::ResetStats() {
  MutexLock lock(cache_mu_);
  stats_ = {};
}

}  // namespace medes
