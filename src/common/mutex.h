// Annotated mutex wrappers and the runtime lock-rank checker.
//
// Every mutex in medes is one of these wrappers instead of a raw
// std::mutex / std::shared_mutex, for two reasons:
//
//  1. Compile-time analysis. The wrappers carry Clang `capability`
//     attributes (common/annotations.h), so a Clang build with
//     -Wthread-safety (-DMEDES_THREAD_SAFETY=ON) proves that every
//     GUARDED_BY field is only touched under its lock and every REQUIRES
//     helper is only called with the lock held.
//
//  2. Runtime lock-ordering. Each mutex is constructed with a name and a
//     LockRank. When lock debugging is enabled, a per-thread stack of held
//     locks is maintained and acquiring a ranked lock while holding one of
//     equal or higher rank reports a lock-order violation (by default:
//     print both stacks' names and abort). Ranks form a global hierarchy —
//     lower ranks must be acquired first — so any two threads that respect
//     it can never deadlock on these mutexes.
//
// Lock debugging is enabled by building with -DMEDES_DEBUG_LOCKS=ON, by
// setting the MEDES_DEBUG_LOCKS environment variable to a nonzero value, or
// programmatically via SetLockDebugging(true) (used by tests). When
// disabled, the per-acquisition overhead is one relaxed atomic load.
#ifndef MEDES_COMMON_MUTEX_H_
#define MEDES_COMMON_MUTEX_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "common/annotations.h"

namespace medes {

// The global lock hierarchy (paper components, leaf-most last). A thread may
// only acquire a ranked lock whose rank is strictly greater than every
// ranked lock it already holds; kUnranked locks opt out of order checking.
enum class LockRank : int {
  kUnranked = 0,
  kPoolQueue = 1,         // ThreadPool queue/state lock
  kRegistryTopology = 2,  // DistributedRegistry chain/replica liveness
  kRegistryShard = 3,     // FingerprintRegistry striped shard locks
  kRegistrySandbox = 4,   // FingerprintRegistry sandbox refcounts / reverse index
  kRdmaCache = 5,         // RdmaFabric base-page LRU cache
  kTransport = 6,         // Transport fault-policy slot / StaticFaultPolicy state
  kStateStore = 7,        // StateStore tier/residency + durable log state
  kMetrics = 8,           // stats/metrics sinks (platform, agents, registries)
  kObsRegistry = 9,       // obs instrument map / tracer thread-buffer registry
  kObsBuffer = 10,        // obs per-thread span buffers (after kObsRegistry in drains)
};

const char* ToString(LockRank rank);

// ---- Runtime lock-rank checker ------------------------------------------

// True when out-of-order acquisitions are being checked on this process.
bool LockDebuggingEnabled();
// Turns checking on/off at runtime (tests flip this; production binaries
// normally rely on the build option / environment variable).
void SetLockDebugging(bool enabled);

// Replaces the violation handler, returning the previous one. The default
// handler writes the message (both locks plus the thread's full held stack)
// to stderr and aborts. A test handler that returns lets execution continue,
// so inversions can be asserted on without a death test.
using LockOrderViolationHandler = std::function<void(const std::string& message)>;
LockOrderViolationHandler SetLockOrderViolationHandler(LockOrderViolationHandler handler);

// Number of locks the calling thread currently holds (debugging aid; always
// 0 when lock debugging is disabled).
size_t HeldLockCount();

// ---- Annotated wrappers --------------------------------------------------

// Exclusive mutex. Prefer the RAII MutexLock to manual Lock()/Unlock().
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(const char* name, LockRank rank = LockRank::kUnranked)
      : name_(name), rank_(rank) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE();
  void Unlock() RELEASE();
  bool TryLock() TRY_ACQUIRE(true);

  const char* name() const { return name_; }
  LockRank rank() const { return rank_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  const char* name_ = "mutex";
  LockRank rank_ = LockRank::kUnranked;
};

// Reader/writer mutex: any number of shared holders or one exclusive holder.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(const char* name, LockRank rank = LockRank::kUnranked)
      : name_(name), rank_(rank) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE();
  void Unlock() RELEASE();
  void LockShared() ACQUIRE_SHARED();
  void UnlockShared() RELEASE_SHARED();
  bool TryLock() TRY_ACQUIRE(true);

  const char* name() const { return name_; }
  LockRank rank() const { return rank_; }

 private:
  std::shared_mutex mu_;
  const char* name_ = "shared_mutex";
  LockRank rank_ = LockRank::kUnranked;
};

// RAII exclusive hold of a Mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// RAII exclusive (writer) hold of a SharedMutex.
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~WriterLock() RELEASE() { mu_.Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

// RAII shared (reader) hold of a SharedMutex.
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) { mu_.LockShared(); }
  ~ReaderLock() RELEASE() { mu_.UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Condition variable bound to medes::Mutex. Wait() atomically releases the
// mutex while blocked and reacquires it before returning, like
// std::condition_variable; the capability annotation stays "held" across the
// call because the caller observes it held on both sides.
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu);
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace medes

#endif  // MEDES_COMMON_MUTEX_H_
