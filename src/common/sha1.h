// SHA-1 message digest (FIPS 180-1), implemented from scratch.
//
// Medes hashes 64-byte reusable sandbox chunks (RSCs) with SHA-1 before they
// are inserted into or looked up against the global fingerprint registry
// (paper Section 2.1). The implementation here is self-contained so the
// library has no crypto dependency.
#ifndef MEDES_COMMON_SHA1_H_
#define MEDES_COMMON_SHA1_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace medes {

// A 160-bit SHA-1 digest.
struct Sha1Digest {
  std::array<uint8_t, 20> bytes{};

  bool operator==(const Sha1Digest&) const = default;
  auto operator<=>(const Sha1Digest&) const = default;

  // Lowercase hex rendering, e.g. "da39a3ee5e6b4b0d3255bfef95601890afd80709".
  std::string ToHex() const;

  // First 8 bytes interpreted as a big-endian integer, i.e. the value reads
  // identically to the leading 16 hex digits of ToHex(): the most
  // significant bit of the returned word is the first bit of the digest.
  // This makes a *prefix of the integer* a prefix of the digest, so key
  // truncation (PageFingerprinter::TruncateKey) keeps the digest's leading
  // bits and drops trailing ones. Used as a cheap well-mixed key into hash
  // tables (SHA-1 output is uniformly distributed). Locked by a
  // known-answer test in sha1_test.cc — registry keys depend on this order.
  uint64_t Prefix64() const;
};

// Incremental SHA-1 hasher. Block compression dispatches through the
// hot-path kernel layer (common/kernels/sha1_kernels.h): SHA-NI when the
// CPU has it, the scalar reference otherwise — bit-identical either way.
class Sha1 {
 public:
  Sha1() { Reset(); }

  void Reset();
  void Update(std::span<const uint8_t> data);
  Sha1Digest Finish();

  // One-shot convenience.
  static Sha1Digest Hash(std::span<const uint8_t> data);

  // Fixed-length fast path: digest of exactly 64 message bytes — one RSC.
  // Skips the streaming buffer/length state machine entirely (a 64-byte
  // message's padding block is a constant). Equals Hash({chunk, 64}).
  static Sha1Digest HashChunk64(const uint8_t* chunk);

  // Multi-buffer batch of the above: out[i] = HashChunk64(chunks[i]).
  // Lets the interleaved/vector kernel variants hash all sampled chunks of
  // a page in one call.
  static void HashChunk64Batch(const uint8_t* const* chunks, size_t n, Sha1Digest* out);

 private:
  std::array<uint32_t, 5> state_{};
  std::array<uint8_t, 64> buffer_{};
  uint64_t total_bytes_ = 0;
  size_t buffered_ = 0;
};

}  // namespace medes

#endif  // MEDES_COMMON_SHA1_H_
