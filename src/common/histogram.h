// Simple value recorders used for experiment metrics: exact percentiles over
// recorded samples, a fixed-bucket histogram for streaming summaries, and the
// shared power-of-two bucketing convention used by every order-independent
// histogram in the tree (net::LatencyHistogram, obs::Histogram).
#ifndef MEDES_COMMON_HISTOGRAM_H_
#define MEDES_COMMON_HISTOGRAM_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace medes {

// ---- Power-of-two bucketing ----------------------------------------------
//
// Bucket i counts values whose bit width is i, i.e. [2^(i-1), 2^i - 1];
// bucket 0 counts values <= 0. Bucket *counts* are order-independent sums, so
// concurrent recording in any interleaving yields identical contents — the
// property the transport stats and the obs metrics determinism contracts are
// built on.

inline constexpr size_t kPow2HistogramBuckets = 22;

inline size_t Pow2BucketIndex(int64_t value) {
  if (value <= 0) {
    return 0;
  }
  const auto width = static_cast<size_t>(std::bit_width(static_cast<uint64_t>(value)));
  return width < kPow2HistogramBuckets ? width : kPow2HistogramBuckets - 1;
}

// Inclusive upper bound of a bucket; bucket 0 holds <= 0.
inline constexpr int64_t Pow2BucketUpperBound(size_t bucket) {
  if (bucket == 0) {
    return 0;
  }
  return static_cast<int64_t>((1ull << bucket) - 1);
}

// Records every sample; answers exact order statistics. Fine for the scale of
// our experiments (at most a few million samples per run).
class SampleRecorder {
 public:
  void Record(double v) { samples_.push_back(v); }

  size_t Count() const { return samples_.size(); }
  bool Empty() const { return samples_.empty(); }

  double Sum() const;
  double Mean() const;
  double Min() const;
  double Max() const;

  // Exact p-quantile (p in [0, 1]) using the nearest-rank method.
  // Returns 0 for an empty recorder.
  double Percentile(double p) const;
  double Median() const { return Percentile(0.5); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  // Percentile sorts lazily into this cache.
  mutable std::vector<double> sorted_;
  std::vector<double> samples_;
};

// Fixed-width bucket counter over [lo, hi); out-of-range values clamp to the
// edge buckets. Used for time-series summaries (e.g. memory usage snapshots).
class BucketHistogram {
 public:
  BucketHistogram(double lo, double hi, size_t buckets);

  void Record(double v);
  uint64_t BucketCount(size_t i) const { return counts_.at(i); }
  size_t NumBuckets() const { return counts_.size(); }
  double BucketLow(size_t i) const;
  uint64_t TotalCount() const { return total_; }

 private:
  double lo_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace medes

#endif  // MEDES_COMMON_HISTOGRAM_H_
