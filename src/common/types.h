// Strong domain types for the identifiers and quantities the simulator
// passes across module boundaries.
//
// The Medes API is full of (node, sandbox, page) integer tuples and mixes
// byte counts with modelled durations; as bare typedefs those compile fine
// with arguments swapped or units confused. The wrappers here are
// zero-overhead (one integral member, everything constexpr/inlined) but make
// those mistakes type errors:
//
//   - StrongOrdinal<Rep, Tag>: an identity/index. Explicit construction,
//     value(), comparison and ++ (ids are ordinals), hashing and streaming —
//     but no arithmetic between distinct tags and no implicit conversion to
//     or from the underlying integer.
//   - StrongQuantity<Rep, Tag>: a dimensioned amount. Adds the dimension-legal
//     algebra: Q ± Q, Q * scalar, Q / scalar, Q / Q -> ratio. Bytes + Bytes
//     compiles; Bytes + NodeId or Bytes + SimDuration does not.
//
// The concrete aliases (NodeId, SandboxId, PageIndex, Bytes) keep the
// representation widths the historical typedefs had, so layouts, hashes and
// modelled arithmetic are bit-identical to the pre-migration tree.
// SimTime/SimDuration get the analogous treatment in common/time.h.
#ifndef MEDES_COMMON_TYPES_H_
#define MEDES_COMMON_TYPES_H_

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>

namespace medes {

// An identity or index: totally ordered and incrementable within its own tag,
// with no other arithmetic. `Tag` is an empty struct that exists only to make
// distinct aliases distinct types.
template <typename Rep, typename Tag>
class StrongOrdinal {
 public:
  using rep = Rep;

  constexpr StrongOrdinal() = default;
  explicit constexpr StrongOrdinal(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }

  friend constexpr bool operator==(StrongOrdinal, StrongOrdinal) = default;
  friend constexpr auto operator<=>(StrongOrdinal, StrongOrdinal) = default;

  // Ids are handed out and scanned in sequence.
  constexpr StrongOrdinal& operator++() {
    ++value_;
    return *this;
  }
  constexpr StrongOrdinal operator++(int) {
    StrongOrdinal old = *this;
    ++value_;
    return old;
  }

  friend std::ostream& operator<<(std::ostream& os, StrongOrdinal v) { return os << v.value_; }

 private:
  Rep value_{};
};

// A dimensioned quantity: everything StrongOrdinal offers minus ++, plus the
// algebra that is legal within one dimension.
template <typename Rep, typename Tag>
class StrongQuantity {
 public:
  using rep = Rep;

  constexpr StrongQuantity() = default;
  explicit constexpr StrongQuantity(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }

  friend constexpr bool operator==(StrongQuantity, StrongQuantity) = default;
  friend constexpr auto operator<=>(StrongQuantity, StrongQuantity) = default;

  constexpr StrongQuantity& operator+=(StrongQuantity other) {
    value_ += other.value_;
    return *this;
  }
  constexpr StrongQuantity& operator-=(StrongQuantity other) {
    value_ -= other.value_;
    return *this;
  }

  friend constexpr StrongQuantity operator+(StrongQuantity a, StrongQuantity b) {
    return StrongQuantity(a.value_ + b.value_);
  }
  friend constexpr StrongQuantity operator-(StrongQuantity a, StrongQuantity b) {
    return StrongQuantity(a.value_ - b.value_);
  }
  friend constexpr StrongQuantity operator*(StrongQuantity a, Rep k) {
    return StrongQuantity(a.value_ * k);
  }
  friend constexpr StrongQuantity operator*(Rep k, StrongQuantity a) {
    return StrongQuantity(k * a.value_);
  }
  friend constexpr StrongQuantity operator/(StrongQuantity a, Rep k) {
    return StrongQuantity(a.value_ / k);
  }
  // Ratio of two like quantities is a dimensionless count.
  friend constexpr Rep operator/(StrongQuantity a, StrongQuantity b) {
    return a.value_ / b.value_;
  }

  friend std::ostream& operator<<(std::ostream& os, StrongQuantity v) { return os << v.value_; }

 private:
  Rep value_{};
};

// ---- Concrete domain types ----------------------------------------------

struct NodeIdTag {};
struct SandboxIdTag {};
struct PageIndexTag {};
struct BytesTag {};

// A worker/controller/replica node. Was `int`; keep a 32-bit signed rep so
// Topology::PairKey and every modelled cost stay bit-identical.
using NodeId = StrongOrdinal<int32_t, NodeIdTag>;
// A sandbox instance. Ids start at 1 and are never reused; 0 means "none".
using SandboxId = StrongOrdinal<uint64_t, SandboxIdTag>;
// A page's position within a checkpoint/image.
using PageIndex = StrongOrdinal<uint32_t, PageIndexTag>;
// A byte count on the modelled wire or in a modelled image.
using Bytes = StrongQuantity<uint64_t, BytesTag>;

// Sentinels matching the historical `-1` / `0` conventions.
inline constexpr NodeId kInvalidNode{-1};
inline constexpr SandboxId kNoSandbox{0};

}  // namespace medes

// Strong ids hash like their underlying integers (shard selection and cache
// indexing depend on that staying true).
template <typename Rep, typename Tag>
struct std::hash<medes::StrongOrdinal<Rep, Tag>> {
  size_t operator()(medes::StrongOrdinal<Rep, Tag> v) const noexcept {
    return std::hash<Rep>{}(v.value());
  }
};

template <typename Rep, typename Tag>
struct std::hash<medes::StrongQuantity<Rep, Tag>> {
  size_t operator()(medes::StrongQuantity<Rep, Tag> v) const noexcept {
    return std::hash<Rep>{}(v.value());
  }
};

#endif  // MEDES_COMMON_TYPES_H_
