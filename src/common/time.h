// Simulated-time types.
//
// The cluster simulation advances a virtual clock in microseconds. SimTime
// (an absolute instant) and SimDuration (an elapsed amount) are real types —
// not integer aliases — so only the dimensionally meaningful algebra
// compiles:
//
//   SimTime  ± SimDuration -> SimTime        SimDuration ± SimDuration -> SimDuration
//   SimTime  - SimTime     -> SimDuration    SimDuration * / integer   -> SimDuration
//   SimTime  + SimTime     -> compile error  SimDuration + Bytes       -> compile error
//
// Construction from a raw microsecond count is explicit; read one back with
// value(). Both types are single-int64 standard-layout wrappers, so structs
// holding them (queued events, trace spans) keep their historical size and
// the modelled arithmetic is bit-identical to the old typedef era.
#ifndef MEDES_COMMON_TIME_H_
#define MEDES_COMMON_TIME_H_

#include <compare>
#include <cstdint>
#include <limits>
#include <ostream>

namespace medes {

// Duration in microseconds.
class SimDuration {
 public:
  using rep = int64_t;

  constexpr SimDuration() = default;
  explicit constexpr SimDuration(int64_t us) : us_(us) {}

  // Microsecond count.
  [[nodiscard]] constexpr int64_t value() const { return us_; }

  friend constexpr bool operator==(SimDuration, SimDuration) = default;
  friend constexpr auto operator<=>(SimDuration, SimDuration) = default;

  constexpr SimDuration& operator+=(SimDuration other) {
    us_ += other.us_;
    return *this;
  }
  constexpr SimDuration& operator-=(SimDuration other) {
    us_ -= other.us_;
    return *this;
  }

  friend constexpr SimDuration operator+(SimDuration a, SimDuration b) {
    return SimDuration(a.us_ + b.us_);
  }
  friend constexpr SimDuration operator-(SimDuration a, SimDuration b) {
    return SimDuration(a.us_ - b.us_);
  }
  friend constexpr SimDuration operator-(SimDuration d) { return SimDuration(-d.us_); }
  friend constexpr SimDuration operator*(SimDuration d, int64_t k) {
    return SimDuration(d.us_ * k);
  }
  friend constexpr SimDuration operator*(int64_t k, SimDuration d) {
    return SimDuration(k * d.us_);
  }
  friend constexpr SimDuration operator/(SimDuration d, int64_t k) {
    return SimDuration(d.us_ / k);
  }
  // Ratio / remainder of two durations (integer semantics, like the old int64).
  friend constexpr int64_t operator/(SimDuration a, SimDuration b) { return a.us_ / b.us_; }
  friend constexpr SimDuration operator%(SimDuration a, SimDuration b) {
    return SimDuration(a.us_ % b.us_);
  }

  friend std::ostream& operator<<(std::ostream& os, SimDuration d) { return os << d.us_; }

 private:
  int64_t us_ = 0;
};

// Absolute simulated time in microseconds since simulation start.
class SimTime {
 public:
  using rep = int64_t;

  constexpr SimTime() = default;
  explicit constexpr SimTime(int64_t us) : us_(us) {}

  // Microseconds since simulation start.
  [[nodiscard]] constexpr int64_t value() const { return us_; }

  friend constexpr bool operator==(SimTime, SimTime) = default;
  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  constexpr SimTime& operator+=(SimDuration d) {
    us_ += d.value();
    return *this;
  }
  constexpr SimTime& operator-=(SimDuration d) {
    us_ -= d.value();
    return *this;
  }

  friend constexpr SimTime operator+(SimTime t, SimDuration d) {
    return SimTime(t.us_ + d.value());
  }
  friend constexpr SimTime operator+(SimDuration d, SimTime t) {
    return SimTime(d.value() + t.us_);
  }
  friend constexpr SimTime operator-(SimTime t, SimDuration d) {
    return SimTime(t.us_ - d.value());
  }
  friend constexpr SimDuration operator-(SimTime a, SimTime b) {
    return SimDuration(a.us_ - b.us_);
  }

  friend std::ostream& operator<<(std::ostream& os, SimTime t) { return os << t.us_; }

 private:
  int64_t us_ = 0;
};

// "Run forever" horizon: RunUntil(kSimTimeMax) never stops on time.
inline constexpr SimTime kSimTimeMax{std::numeric_limits<int64_t>::max()};

inline constexpr SimDuration kMicrosecond{1};
inline constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;
inline constexpr SimDuration kMinute = 60 * kSecond;
inline constexpr SimDuration kHour = 60 * kMinute;

constexpr double ToMillis(SimDuration d) {
  return static_cast<double>(d.value()) / static_cast<double>(kMillisecond.value());
}
constexpr double ToSeconds(SimDuration d) {
  return static_cast<double>(d.value()) / static_cast<double>(kSecond.value());
}
constexpr SimDuration FromMillis(double ms) {
  return SimDuration(static_cast<int64_t>(ms * static_cast<double>(kMillisecond.value())));
}
constexpr SimDuration FromSeconds(double s) {
  return SimDuration(static_cast<int64_t>(s * static_cast<double>(kSecond.value())));
}

}  // namespace medes

#endif  // MEDES_COMMON_TIME_H_
