// Simulated-time types.
//
// The cluster simulation advances a virtual clock in microseconds. Using a
// strong typedef (rather than raw int64) keeps durations and absolute times
// from being mixed up across module boundaries.
#ifndef MEDES_COMMON_TIME_H_
#define MEDES_COMMON_TIME_H_

#include <cstdint>

namespace medes {

// Absolute simulated time in microseconds since simulation start.
using SimTime = int64_t;
// Duration in microseconds.
using SimDuration = int64_t;

constexpr SimDuration kMicrosecond = 1;
constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
constexpr SimDuration kSecond = 1000 * kMillisecond;
constexpr SimDuration kMinute = 60 * kSecond;
constexpr SimDuration kHour = 60 * kMinute;

constexpr double ToMillis(SimDuration d) { return static_cast<double>(d) / kMillisecond; }
constexpr double ToSeconds(SimDuration d) { return static_cast<double>(d) / kSecond; }
constexpr SimDuration FromMillis(double ms) { return static_cast<SimDuration>(ms * kMillisecond); }
constexpr SimDuration FromSeconds(double s) { return static_cast<SimDuration>(s * kSecond); }

}  // namespace medes

#endif  // MEDES_COMMON_TIME_H_
