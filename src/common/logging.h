// Minimal leveled logging to stderr.
//
// Kept deliberately tiny: experiments run quietly by default (kWarn); tests
// and examples can raise verbosity. Thread-safe: the event loop is serial,
// but dedup/restore stages run on the agent's thread pool and may log from
// workers, so EmitLog formats each record into a single string — level tag,
// a small per-thread id, then the message — and writes it with one stdio
// call, which POSIX locks per call. Lines from concurrent threads interleave
// whole, never mid-line. The level itself is a relaxed atomic.
#ifndef MEDES_COMMON_LOGGING_H_
#define MEDES_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace medes {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {
void EmitLog(LogLevel level, const std::string& message);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { EmitLog(level_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace medes

#define MEDES_LOG(level)                                      \
  if (::medes::GetLogLevel() <= ::medes::LogLevel::level)     \
  ::medes::internal::LogMessage(::medes::LogLevel::level).stream()

#define MEDES_DLOG MEDES_LOG(kDebug)

#endif  // MEDES_COMMON_LOGGING_H_
