#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>

namespace medes {

size_t ThreadPool::DefaultThreadCount() {
  if (const char* env = std::getenv("MEDES_THREADS"); env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && parsed > 0) {
      return static_cast<size_t>(std::min<long>(parsed, 256));
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

ThreadPool::ThreadPool(size_t num_threads)
    : num_threads_(num_threads == 0 ? DefaultThreadCount() : num_threads) {
  if (num_threads_ <= 1) {
    return;  // inline pool: no workers
  }
  workers_.reserve(num_threads_);
  for (size_t i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::RecordException() {
  if (!first_error_) {
    first_error_ = std::current_exception();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    try {
      task();
    } catch (...) {
      MutexLock lock(mu_);
      RecordException();
    }
    return;
  }
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_cv_.NotifyOne();
}

void ThreadPool::Wait() {
  std::exception_ptr error;
  {
    MutexLock lock(mu_);
    while (in_flight_ != 0) {
      done_cv_.Wait(mu_);
    }
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) {
        work_cv_.Wait(mu_);
      }
      if (queue_.empty()) {
        return;  // stopping and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      MutexLock lock(mu_);
      RecordException();
    }
    {
      MutexLock lock(mu_);
      if (--in_flight_ == 0) {
        done_cv_.NotifyAll();
      }
    }
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn) {
  if (begin >= end) {
    return;
  }
  const size_t n = end - begin;
  if (workers_.empty() || n == 1) {
    for (size_t i = begin; i < end; ++i) {
      fn(i);
    }
    return;
  }
  // Contiguous chunks, a few per worker so uneven page costs still balance.
  const size_t chunks = std::min(n, num_threads_ * 4);
  const size_t chunk_size = (n + chunks - 1) / chunks;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t lo = begin + c * chunk_size;
    if (lo >= end) {
      break;
    }
    const size_t hi = std::min(end, lo + chunk_size);
    Submit([&fn, lo, hi] {
      for (size_t i = lo; i < hi; ++i) {
        fn(i);
      }
    });
  }
  Wait();
}

}  // namespace medes
