// A small reusable worker pool for the dedup/restore pipeline.
//
// Page-granular dedup work (fingerprinting, registry lookups, delta
// encode/decode) is embarrassingly parallel: every page is independent and
// the results are merged in page order, so parallel execution is
// deterministic by construction. The pool is deliberately minimal — a fixed
// set of workers draining a FIFO of std::function tasks — because callers
// (DedupAgent, benchmarks) only need fork/join parallelism over index
// ranges, not futures or work stealing.
//
// A pool of size <= 1 spawns no threads at all: Submit() and ParallelFor()
// run inline on the caller's thread. This keeps the serial configuration
// (MEDES_THREADS=1) byte-identical in behaviour and free of thread overhead,
// and makes it the reference the determinism tests compare against.
#ifndef MEDES_COMMON_THREAD_POOL_H_
#define MEDES_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"

namespace medes {

class ThreadPool {
 public:
  // Worker count resolution: explicit argument > MEDES_THREADS environment
  // variable > std::thread::hardware_concurrency(). Pass 0 to defer to the
  // environment/hardware default.
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Number of workers this pool schedules onto (>= 1; 1 = inline execution).
  size_t NumThreads() const { return num_threads_; }

  // Enqueues one task. Inline pools run it before returning.
  void Submit(std::function<void()> task) EXCLUDES(mu_);

  // Blocks until every submitted task has finished. Rethrows the first
  // exception a task raised (subsequent ones are dropped).
  void Wait() EXCLUDES(mu_);

  // fn(i) for every i in [begin, end), fanned out across the workers in
  // contiguous chunks, then joined. Safe to call with an empty range.
  // Exceptions from fn propagate to the caller (first one wins).
  void ParallelFor(size_t begin, size_t end, const std::function<void(size_t)>& fn);

  // MEDES_THREADS if set to a positive integer (clamped to [1, 256]),
  // otherwise hardware_concurrency(), otherwise 1.
  static size_t DefaultThreadCount();

 private:
  void WorkerLoop() EXCLUDES(mu_);
  void RecordException() REQUIRES(mu_);

  size_t num_threads_ = 1;
  std::vector<std::thread> workers_;

  Mutex mu_{"thread pool queue", LockRank::kPoolQueue};
  CondVar work_cv_;  // workers: queue non-empty or stopping
  CondVar done_cv_;  // Wait(): all tasks drained
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  size_t in_flight_ GUARDED_BY(mu_) = 0;  // queued + currently executing
  std::exception_ptr first_error_ GUARDED_BY(mu_);
  bool stopping_ GUARDED_BY(mu_) = false;
};

}  // namespace medes

#endif  // MEDES_COMMON_THREAD_POOL_H_
