// Clang thread-safety analysis annotations.
//
// These macros expand to Clang `capability` attributes so that a build with
// `-Wthread-safety` (CMake option MEDES_THREAD_SAFETY) verifies the locking
// discipline at compile time: every field tagged GUARDED_BY may only be
// touched while its mutex is held, and every function tagged REQUIRES may
// only be called with the named capability held. Under GCC (which has no
// analysis) they expand to nothing, so the annotations are pure
// documentation there.
//
// The names follow the canonical spellings from the Clang documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). Use them with the
// medes::Mutex / medes::SharedMutex wrappers from common/mutex.h — the raw
// std:: primitives carry no capability attributes and are invisible to the
// analysis.
#ifndef MEDES_COMMON_ANNOTATIONS_H_
#define MEDES_COMMON_ANNOTATIONS_H_

#if defined(__clang__) && !defined(SWIG)
#define MEDES_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MEDES_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

// Class attributes: a type that acts as a lock / an RAII scoped lock.
#define CAPABILITY(x) MEDES_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY MEDES_THREAD_ANNOTATION(scoped_lockable)

// Data members: protected by a mutex (directly, or through a pointer).
#define GUARDED_BY(x) MEDES_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) MEDES_THREAD_ANNOTATION(pt_guarded_by(x))

// Static ordering hints between two locks.
#define ACQUIRED_BEFORE(...) MEDES_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) MEDES_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// Function contracts: the caller must hold / must not hold the capability.
#define REQUIRES(...) MEDES_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) MEDES_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) MEDES_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Function effects: the call acquires / releases the capability.
#define ACQUIRE(...) MEDES_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) MEDES_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) MEDES_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) MEDES_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) MEDES_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) MEDES_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  MEDES_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

// Runtime assertions and lock-returning accessors.
#define ASSERT_CAPABILITY(x) MEDES_THREAD_ANNOTATION(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) MEDES_THREAD_ANNOTATION(assert_shared_capability(x))
#define RETURN_CAPABILITY(x) MEDES_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch for code the analysis cannot model (condition-variable
// internals, adopt-lock tricks). Use sparingly and say why.
#define NO_THREAD_SAFETY_ANALYSIS MEDES_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // MEDES_COMMON_ANNOTATIONS_H_
