// Lightweight non-cryptographic hashing helpers (FNV-1a, hash combining).
#ifndef MEDES_COMMON_HASH_H_
#define MEDES_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace medes {

// 64-bit FNV-1a. Fast, decent distribution; used for table keys where a
// cryptographic hash would be overkill.
inline uint64_t Fnv1a64(std::span<const uint8_t> data, uint64_t seed = 0xcbf29ce484222325ull) {
  uint64_t h = seed;
  for (uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

// Boost-style hash combine with a 64-bit golden-ratio constant.
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ull + (a << 12) + (a >> 4));
}

// Finalizer from SplitMix64 — turns a weak integer key into a well-mixed one.
inline uint64_t MixBits(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace medes

#endif  // MEDES_COMMON_HASH_H_
