// Deterministic pseudo-random number generation.
//
// Every stochastic choice in the simulator (workload arrivals, memory image
// noise, ASLR offsets) flows through SplitMix64/Xoshiro256** seeded
// explicitly, so every experiment in bench/ is exactly reproducible.
#ifndef MEDES_COMMON_RNG_H_
#define MEDES_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <limits>

namespace medes {

// SplitMix64 — used to expand a single user seed into stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// Xoshiro256** by Blackman & Vigna. Fast, high-quality, tiny state.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9d2c5680u) {
    SplitMix64 sm(seed);
    for (auto& s : state_) {
      s = sm.Next();
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<uint64_t>::max(); }

  uint64_t operator()() { return Next(); }

  uint64_t Next() {
    uint64_t result = RotL(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = RotL(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). Uses Lemire's multiply-shift reduction.
  uint64_t Below(uint64_t bound) {
    if (bound == 0) {
      return 0;
    }
    return static_cast<uint64_t>((static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Exponentially distributed with the given rate (mean 1/rate).
  double Exponential(double rate) {
    double u = NextDouble();
    // Guard against log(0).
    if (u <= 0.0) {
      u = 0x1.0p-53;
    }
    return -std::log(u) / rate;
  }

  bool Bernoulli(double p) { return NextDouble() < p; }

  // Fork a statistically independent stream (for per-entity RNGs).
  Rng Fork() { return Rng(Next()); }

 private:
  static uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace medes

#endif  // MEDES_COMMON_RNG_H_
