#include "common/sha1.h"

#include <cstring>

namespace medes {
namespace {

inline uint32_t RotL(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

inline uint32_t LoadBe32(const uint8_t* p) {
  return (uint32_t{p[0]} << 24) | (uint32_t{p[1]} << 16) | (uint32_t{p[2]} << 8) | uint32_t{p[3]};
}

inline void StoreBe32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v >> 24);
  p[1] = static_cast<uint8_t>(v >> 16);
  p[2] = static_cast<uint8_t>(v >> 8);
  p[3] = static_cast<uint8_t>(v);
}

}  // namespace

std::string Sha1Digest::ToHex() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(40);
  for (uint8_t b : bytes) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

uint64_t Sha1Digest::Prefix64() const {
  uint64_t v = 0;
  for (size_t i = 0; i < 8; ++i) {
    v = (v << 8) | bytes[i];
  }
  return v;
}

void Sha1::Reset() {
  state_ = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};
  total_bytes_ = 0;
  buffered_ = 0;
}

void Sha1::Update(std::span<const uint8_t> data) {
  total_bytes_ += data.size();
  size_t offset = 0;
  if (buffered_ > 0) {
    size_t take = std::min(data.size(), buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset += take;
    if (buffered_ == buffer_.size()) {
      ProcessBlock(buffer_.data());
      buffered_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    ProcessBlock(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

Sha1Digest Sha1::Finish() {
  // Append 0x80, pad with zeros to 56 mod 64, then the bit length big-endian.
  uint64_t bit_len = total_bytes_ * 8;
  uint8_t pad[72];
  size_t pad_len = (buffered_ < 56) ? (56 - buffered_) : (120 - buffered_);
  pad[0] = 0x80;
  std::memset(pad + 1, 0, pad_len - 1);
  Update({pad, pad_len});
  uint8_t len_be[8];
  for (int i = 7; i >= 0; --i) {
    len_be[i] = static_cast<uint8_t>(bit_len & 0xff);
    bit_len >>= 8;
  }
  Update({len_be, 8});

  Sha1Digest digest;
  for (size_t i = 0; i < 5; ++i) {
    StoreBe32(digest.bytes.data() + 4 * i, state_[i]);
  }
  Reset();
  return digest;
}

void Sha1::ProcessBlock(const uint8_t* block) {
  uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = LoadBe32(block + 4 * i);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = RotL(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3], e = state_[4];
  for (int i = 0; i < 80; ++i) {
    uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    uint32_t tmp = RotL(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = RotL(b, 30);
    b = a;
    a = tmp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

Sha1Digest Sha1::Hash(std::span<const uint8_t> data) {
  Sha1 hasher;
  hasher.Update(data);
  return hasher.Finish();
}

}  // namespace medes
