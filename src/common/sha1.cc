#include "common/sha1.h"

#include <cstring>

#include "common/kernels/sha1_kernels.h"

namespace medes {
namespace {

inline void StoreBe32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v >> 24);
  p[1] = static_cast<uint8_t>(v >> 16);
  p[2] = static_cast<uint8_t>(v >> 8);
  p[3] = static_cast<uint8_t>(v);
}

inline Sha1Digest StateToDigest(const uint32_t state[5]) {
  Sha1Digest digest;
  for (size_t i = 0; i < 5; ++i) {
    StoreBe32(digest.bytes.data() + 4 * i, state[i]);
  }
  return digest;
}

}  // namespace

std::string Sha1Digest::ToHex() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(40);
  for (uint8_t b : bytes) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

uint64_t Sha1Digest::Prefix64() const {
  uint64_t v = 0;
  for (size_t i = 0; i < 8; ++i) {
    v = (v << 8) | bytes[i];
  }
  return v;
}

void Sha1::Reset() {
  std::memcpy(state_.data(), kernels::kSha1Init, sizeof(kernels::kSha1Init));
  total_bytes_ = 0;
  buffered_ = 0;
}

void Sha1::Update(std::span<const uint8_t> data) {
  total_bytes_ += data.size();
  size_t offset = 0;
  if (buffered_ > 0) {
    size_t take = std::min(data.size(), buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset += take;
    if (buffered_ == buffer_.size()) {
      kernels::Sha1Compress(state_.data(), buffer_.data());
      buffered_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    kernels::Sha1Compress(state_.data(), data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

Sha1Digest Sha1::Finish() {
  // Append 0x80, pad with zeros to 56 mod 64, then the bit length big-endian.
  uint64_t bit_len = total_bytes_ * 8;
  uint8_t pad[72];
  size_t pad_len = (buffered_ < 56) ? (56 - buffered_) : (120 - buffered_);
  pad[0] = 0x80;
  std::memset(pad + 1, 0, pad_len - 1);
  Update({pad, pad_len});
  uint8_t len_be[8];
  for (int i = 7; i >= 0; --i) {
    len_be[i] = static_cast<uint8_t>(bit_len & 0xff);
    bit_len >>= 8;
  }
  Update({len_be, 8});

  Sha1Digest digest = StateToDigest(state_.data());
  Reset();
  return digest;
}

Sha1Digest Sha1::Hash(std::span<const uint8_t> data) {
  if (data.size() == 64) {
    return HashChunk64(data.data());
  }
  Sha1 hasher;
  hasher.Update(data);
  return hasher.Finish();
}

Sha1Digest Sha1::HashChunk64(const uint8_t* chunk) {
  uint32_t state[5];
  kernels::Sha1Chunk64(chunk, state);
  return StateToDigest(state);
}

void Sha1::HashChunk64Batch(const uint8_t* const* chunks, size_t n, Sha1Digest* out) {
  // The kernel batch works on raw states; convert in fixed-size strips so
  // large batches stay cache-resident and allocation-free.
  constexpr size_t kStrip = 64;
  uint32_t states[kStrip][5];
  size_t done = 0;
  while (done < n) {
    const size_t take = std::min(kStrip, n - done);
    kernels::Sha1Chunk64Batch(chunks + done, take, states);
    for (size_t i = 0; i < take; ++i) {
      out[done + i] = StateToDigest(states[i]);
    }
    done += take;
  }
}

}  // namespace medes
