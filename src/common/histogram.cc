#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace medes {

double SampleRecorder::Sum() const {
  return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double SampleRecorder::Mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  return Sum() / static_cast<double>(samples_.size());
}

double SampleRecorder::Min() const {
  if (samples_.empty()) {
    return 0.0;
  }
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleRecorder::Max() const {
  if (samples_.empty()) {
    return 0.0;
  }
  return *std::max_element(samples_.begin(), samples_.end());
}

double SampleRecorder::Percentile(double p) const {
  if (samples_.empty()) {
    return 0.0;
  }
  if (sorted_.size() != samples_.size()) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
  }
  p = std::clamp(p, 0.0, 1.0);
  // Nearest-rank: smallest value with cumulative frequency >= p.
  size_t rank = static_cast<size_t>(std::ceil(p * static_cast<double>(sorted_.size())));
  if (rank > 0) {
    --rank;
  }
  return sorted_[std::min(rank, sorted_.size() - 1)];
}

BucketHistogram::BucketHistogram(double lo, double hi, size_t buckets)
    : lo_(lo), width_((hi - lo) / static_cast<double>(buckets)), counts_(buckets, 0) {
  if (buckets == 0 || hi <= lo) {
    throw std::invalid_argument("BucketHistogram: bad range");
  }
}

void BucketHistogram::Record(double v) {
  double idx = (v - lo_) / width_;
  size_t i = 0;
  if (idx > 0) {
    i = std::min(static_cast<size_t>(idx), counts_.size() - 1);
  }
  ++counts_[i];
  ++total_;
}

double BucketHistogram::BucketLow(size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

}  // namespace medes
