#include "common/kernels/sha1_kernels.h"

#include <atomic>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define MEDES_KERNELS_X86 1
#endif

namespace medes::kernels {
namespace {

inline uint32_t RotL(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

inline uint32_t LoadBe32(const uint8_t* p) {
  return (uint32_t{p[0]} << 24) | (uint32_t{p[1]} << 16) | (uint32_t{p[2]} << 8) | uint32_t{p[3]};
}

// Padding block for a message of exactly 64 bytes: 0x80, 54 zero bytes,
// then the 64-bit big-endian bit length (512 = 0x200).
constexpr uint8_t kPad64[64] = {0x80, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
                                0,    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
                                0,    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
                                0,    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0x02, 0x00};

// 80-round core over an L-lane structure-of-arrays state. With L = 1 this
// is the scalar reference; with L = 4 the compiler gets four independent
// dependency chains to interleave (and may auto-vectorise the lane loops).
// `w` is a 16-entry-per-lane ring holding the first 16 message words.
template <int L>
void Sha1RoundsSoa(uint32_t state[L][5], uint32_t w[L][16]) {
  uint32_t a[L], b[L], c[L], d[L], e[L];
  for (int l = 0; l < L; ++l) {
    a[l] = state[l][0];
    b[l] = state[l][1];
    c[l] = state[l][2];
    d[l] = state[l][3];
    e[l] = state[l][4];
  }
  for (int t = 0; t < 80; ++t) {
    uint32_t wt[L];
    if (t < 16) {
      for (int l = 0; l < L; ++l) {
        wt[l] = w[l][t];
      }
    } else {
      for (int l = 0; l < L; ++l) {
        wt[l] = RotL(w[l][(t - 3) & 15] ^ w[l][(t - 8) & 15] ^ w[l][(t - 14) & 15] ^
                         w[l][(t - 16) & 15],
                     1);
        w[l][t & 15] = wt[l];
      }
    }
    uint32_t k;
    uint32_t f[L];
    if (t < 20) {
      k = 0x5A827999u;
      for (int l = 0; l < L; ++l) {
        f[l] = (b[l] & c[l]) | (~b[l] & d[l]);
      }
    } else if (t < 40) {
      k = 0x6ED9EBA1u;
      for (int l = 0; l < L; ++l) {
        f[l] = b[l] ^ c[l] ^ d[l];
      }
    } else if (t < 60) {
      k = 0x8F1BBCDCu;
      for (int l = 0; l < L; ++l) {
        f[l] = (b[l] & c[l]) | (b[l] & d[l]) | (c[l] & d[l]);
      }
    } else {
      k = 0xCA62C1D6u;
      for (int l = 0; l < L; ++l) {
        f[l] = b[l] ^ c[l] ^ d[l];
      }
    }
    for (int l = 0; l < L; ++l) {
      uint32_t tmp = RotL(a[l], 5) + f[l] + e[l] + k + wt[l];
      e[l] = d[l];
      d[l] = c[l];
      c[l] = RotL(b[l], 30);
      b[l] = a[l];
      a[l] = tmp;
    }
  }
  for (int l = 0; l < L; ++l) {
    state[l][0] += a[l];
    state[l][1] += b[l];
    state[l][2] += c[l];
    state[l][3] += d[l];
    state[l][4] += e[l];
  }
}

// L-lane Chunk64: data block then the constant padding block.
template <int L>
void Sha1Chunk64Soa(const uint8_t* const* chunks, uint32_t (*out_state)[5]) {
  uint32_t state[L][5];
  uint32_t w[L][16];
  for (int l = 0; l < L; ++l) {
    std::memcpy(state[l], kSha1Init, sizeof(kSha1Init));
    for (int t = 0; t < 16; ++t) {
      w[l][t] = LoadBe32(chunks[l] + 4 * t);
    }
  }
  Sha1RoundsSoa<L>(state, w);
  for (int l = 0; l < L; ++l) {
    for (int t = 0; t < 16; ++t) {
      w[l][t] = LoadBe32(kPad64 + 4 * t);
    }
  }
  Sha1RoundsSoa<L>(state, w);
  for (int l = 0; l < L; ++l) {
    std::memcpy(out_state[l], state[l], sizeof(state[l]));
  }
}

}  // namespace

void Sha1CompressScalar(uint32_t state[5], const uint8_t* block) {
  uint32_t soa_state[1][5];
  uint32_t w[1][16];
  std::memcpy(soa_state[0], state, 5 * sizeof(uint32_t));
  for (int t = 0; t < 16; ++t) {
    w[0][t] = LoadBe32(block + 4 * t);
  }
  Sha1RoundsSoa<1>(soa_state, w);
  std::memcpy(state, soa_state[0], 5 * sizeof(uint32_t));
}

void Sha1Chunk64Scalar(const uint8_t* chunk, uint32_t out_state[5]) {
  Sha1Chunk64Soa<1>(&chunk, reinterpret_cast<uint32_t(*)[5]>(out_state));
}

void Sha1Chunk64BatchScalar(const uint8_t* const* chunks, size_t n, uint32_t (*out_state)[5]) {
  for (size_t i = 0; i < n; ++i) {
    Sha1Chunk64Scalar(chunks[i], out_state[i]);
  }
}

void Sha1Chunk64BatchSwar(const uint8_t* const* chunks, size_t n, uint32_t (*out_state)[5]) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    Sha1Chunk64Soa<4>(chunks + i, out_state + i);
  }
  for (; i < n; ++i) {
    Sha1Chunk64Scalar(chunks[i], out_state[i]);
  }
}

#if defined(MEDES_KERNELS_X86)

bool Sha1ShaNiCompiled() { return true; }

namespace {

// File-scope because lambdas do not inherit the enclosing function's target
// attribute; sha1rnds4 also demands a compile-time immediate, hence the
// switch.
__attribute__((target("sha,sse4.1"))) inline __m128i Rnds4(__m128i v, __m128i ev, int func) {
  switch (func) {
    case 0:
      return _mm_sha1rnds4_epu32(v, ev, 0);
    case 1:
      return _mm_sha1rnds4_epu32(v, ev, 1);
    case 2:
      return _mm_sha1rnds4_epu32(v, ev, 2);
    default:
      return _mm_sha1rnds4_epu32(v, ev, 3);
  }
}

}  // namespace

// SHA-NI single-block compression. Follows the canonical Intel scheduling:
// four message registers msg[0..3] cycle through sha1msg1/xor/sha1msg2 while
// E alternates between two accumulators combined with sha1nexte.
__attribute__((target("sha,sse4.1"))) void Sha1CompressShaNi(uint32_t state[5],
                                                             const uint8_t* block) {
  const __m128i kBswapMask = _mm_set_epi64x(0x0001020304050607ll, 0x08090a0b0c0d0e0fll);
  __m128i abcd = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state));
  abcd = _mm_shuffle_epi32(abcd, 0x1B);
  __m128i e[2];
  e[0] = _mm_set_epi32(static_cast<int>(state[4]), 0, 0, 0);
  e[1] = _mm_setzero_si128();
  const __m128i abcd_save = abcd;
  const __m128i e0_save = e[0];

  __m128i msg[4];
  for (int t = 0; t < 4; ++t) {
    msg[t] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 16 * t));
    msg[t] = _mm_shuffle_epi8(msg[t], kBswapMask);
  }

  // Rounds 0-3: the first E addend is plain (no rotate-by-30 source yet).
  e[0] = _mm_add_epi32(e[0], msg[0]);
  e[1] = abcd;
  abcd = Rnds4(abcd, e[0], 0);

  // Rounds 4-7.
  e[1] = _mm_sha1nexte_epu32(e[1], msg[1]);
  e[0] = abcd;
  abcd = Rnds4(abcd, e[1], 0);
  msg[0] = _mm_sha1msg1_epu32(msg[0], msg[1]);

  // Rounds 8-11.
  e[0] = _mm_sha1nexte_epu32(e[0], msg[2]);
  e[1] = abcd;
  abcd = Rnds4(abcd, e[0], 0);
  msg[1] = _mm_sha1msg1_epu32(msg[1], msg[2]);
  msg[0] = _mm_xor_si128(msg[0], msg[2]);

  // Rounds 12-75: steady-state schedule.
  for (int g = 3; g < 19; ++g) {
    const int p = g & 1;
    e[p] = _mm_sha1nexte_epu32(e[p], msg[g & 3]);
    e[p ^ 1] = abcd;
    msg[(g + 1) & 3] = _mm_sha1msg2_epu32(msg[(g + 1) & 3], msg[g & 3]);
    abcd = Rnds4(abcd, e[p], g / 5);
    msg[(g + 3) & 3] = _mm_sha1msg1_epu32(msg[(g + 3) & 3], msg[g & 3]);
    msg[(g + 2) & 3] = _mm_xor_si128(msg[(g + 2) & 3], msg[g & 3]);
  }

  // Rounds 76-79.
  e[1] = _mm_sha1nexte_epu32(e[1], msg[3]);
  e[0] = abcd;
  abcd = Rnds4(abcd, e[1], 3);

  e[0] = _mm_sha1nexte_epu32(e[0], e0_save);
  abcd = _mm_add_epi32(abcd, abcd_save);
  abcd = _mm_shuffle_epi32(abcd, 0x1B);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), abcd);
  state[4] = static_cast<uint32_t>(_mm_extract_epi32(e[0], 3));
}

__attribute__((target("sha,sse4.1"))) void Sha1Chunk64ShaNi(const uint8_t* chunk,
                                                            uint32_t out_state[5]) {
  std::memcpy(out_state, kSha1Init, sizeof(kSha1Init));
  Sha1CompressShaNi(out_state, chunk);
  Sha1CompressShaNi(out_state, kPad64);
}

void Sha1Chunk64BatchShaNi(const uint8_t* const* chunks, size_t n, uint32_t (*out_state)[5]) {
  for (size_t i = 0; i < n; ++i) {
    Sha1Chunk64ShaNi(chunks[i], out_state[i]);
  }
}

namespace {

__attribute__((target("avx2"))) inline __m256i RotLV(__m256i x, int n) {
  return _mm256_or_si256(_mm256_slli_epi32(x, n), _mm256_srli_epi32(x, 32 - n));
}

// 80 rounds over 8 vertical lanes. `w` is the 16-entry message-word ring,
// each entry holding word t of all 8 chunks.
__attribute__((target("avx2"))) void Sha1Rounds8Avx2(__m256i s[5], __m256i w[16]) {
  __m256i a = s[0], b = s[1], c = s[2], d = s[3], e = s[4];
  for (int t = 0; t < 80; ++t) {
    __m256i wt;
    if (t < 16) {
      wt = w[t];
    } else {
      wt = _mm256_xor_si256(_mm256_xor_si256(w[(t - 3) & 15], w[(t - 8) & 15]),
                            _mm256_xor_si256(w[(t - 14) & 15], w[(t - 16) & 15]));
      wt = RotLV(wt, 1);
      w[t & 15] = wt;
    }
    __m256i f, k;
    if (t < 20) {
      f = _mm256_xor_si256(d, _mm256_and_si256(b, _mm256_xor_si256(c, d)));
      k = _mm256_set1_epi32(0x5A827999);
    } else if (t < 40) {
      f = _mm256_xor_si256(b, _mm256_xor_si256(c, d));
      k = _mm256_set1_epi32(0x6ED9EBA1);
    } else if (t < 60) {
      f = _mm256_or_si256(_mm256_and_si256(b, c),
                          _mm256_and_si256(d, _mm256_or_si256(b, c)));
      k = _mm256_set1_epi32(static_cast<int>(0x8F1BBCDCu));
    } else {
      f = _mm256_xor_si256(b, _mm256_xor_si256(c, d));
      k = _mm256_set1_epi32(static_cast<int>(0xCA62C1D6u));
    }
    __m256i tmp = _mm256_add_epi32(
        _mm256_add_epi32(RotLV(a, 5), f),
        _mm256_add_epi32(_mm256_add_epi32(e, k), wt));
    e = d;
    d = c;
    c = RotLV(b, 30);
    b = a;
    a = tmp;
  }
  s[0] = _mm256_add_epi32(s[0], a);
  s[1] = _mm256_add_epi32(s[1], b);
  s[2] = _mm256_add_epi32(s[2], c);
  s[3] = _mm256_add_epi32(s[3], d);
  s[4] = _mm256_add_epi32(s[4], e);
}

__attribute__((target("avx2"))) void Sha1Chunk64x8Avx2(const uint8_t* const* chunks,
                                                       uint32_t (*out_state)[5]) {
  __m256i s[5];
  for (int i = 0; i < 5; ++i) {
    s[i] = _mm256_set1_epi32(static_cast<int>(kSha1Init[i]));
  }
  __m256i w[16];
  for (int t = 0; t < 16; ++t) {
    w[t] = _mm256_set_epi32(static_cast<int>(LoadBe32(chunks[7] + 4 * t)),
                            static_cast<int>(LoadBe32(chunks[6] + 4 * t)),
                            static_cast<int>(LoadBe32(chunks[5] + 4 * t)),
                            static_cast<int>(LoadBe32(chunks[4] + 4 * t)),
                            static_cast<int>(LoadBe32(chunks[3] + 4 * t)),
                            static_cast<int>(LoadBe32(chunks[2] + 4 * t)),
                            static_cast<int>(LoadBe32(chunks[1] + 4 * t)),
                            static_cast<int>(LoadBe32(chunks[0] + 4 * t)));
  }
  Sha1Rounds8Avx2(s, w);
  for (int t = 0; t < 16; ++t) {
    w[t] = _mm256_set1_epi32(static_cast<int>(LoadBe32(kPad64 + 4 * t)));
  }
  Sha1Rounds8Avx2(s, w);
  alignas(32) uint32_t lanes[5][8];
  for (int i = 0; i < 5; ++i) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes[i]), s[i]);
  }
  for (int l = 0; l < 8; ++l) {
    for (int i = 0; i < 5; ++i) {
      out_state[l][i] = lanes[i][l];
    }
  }
}

}  // namespace

void Sha1Chunk64BatchAvx2(const uint8_t* const* chunks, size_t n, uint32_t (*out_state)[5]) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    Sha1Chunk64x8Avx2(chunks + i, out_state + i);
  }
  if (i < n) {
    Sha1Chunk64BatchSwar(chunks + i, n - i, out_state + i);
  }
}

#else  // !MEDES_KERNELS_X86

bool Sha1ShaNiCompiled() { return false; }

void Sha1CompressShaNi(uint32_t state[5], const uint8_t* block) {
  Sha1CompressScalar(state, block);
}

void Sha1Chunk64ShaNi(const uint8_t* chunk, uint32_t out_state[5]) {
  Sha1Chunk64Scalar(chunk, out_state);
}

void Sha1Chunk64BatchShaNi(const uint8_t* const* chunks, size_t n, uint32_t (*out_state)[5]) {
  Sha1Chunk64BatchScalar(chunks, n, out_state);
}

void Sha1Chunk64BatchAvx2(const uint8_t* const* chunks, size_t n, uint32_t (*out_state)[5]) {
  Sha1Chunk64BatchSwar(chunks, n, out_state);
}

#endif  // MEDES_KERNELS_X86

namespace {

using CompressFn = void (*)(uint32_t[5], const uint8_t*);
using Chunk64Fn = void (*)(const uint8_t*, uint32_t[5]);
using BatchFn = void (*)(const uint8_t* const*, size_t, uint32_t (*)[5]);

std::atomic<CompressFn> g_compress{&Sha1CompressScalar};
std::atomic<Chunk64Fn> g_chunk64{&Sha1Chunk64Scalar};
std::atomic<BatchFn> g_batch{&Sha1Chunk64BatchScalar};

}  // namespace

void Sha1Compress(uint32_t state[5], const uint8_t* block) {
  g_compress.load(std::memory_order_relaxed)(state, block);
}

void Sha1Chunk64(const uint8_t* chunk, uint32_t out_state[5]) {
  g_chunk64.load(std::memory_order_relaxed)(chunk, out_state);
}

void Sha1Chunk64Batch(const uint8_t* const* chunks, size_t n, uint32_t (*out_state)[5]) {
  g_batch.load(std::memory_order_relaxed)(chunks, n, out_state);
}

void BindSha1Kernels(Tier tier) {
  const bool sha_ni =
      Sha1ShaNiCompiled() && DetectCpuFeatures().sha_ni && tier >= Tier::kSse42;
  if (sha_ni) {
    g_compress.store(&Sha1CompressShaNi, std::memory_order_relaxed);
    g_chunk64.store(&Sha1Chunk64ShaNi, std::memory_order_relaxed);
    g_batch.store(&Sha1Chunk64BatchShaNi, std::memory_order_relaxed);
    return;
  }
  g_compress.store(&Sha1CompressScalar, std::memory_order_relaxed);
  g_chunk64.store(&Sha1Chunk64Scalar, std::memory_order_relaxed);
  if (tier >= Tier::kAvx2) {
    g_batch.store(&Sha1Chunk64BatchAvx2, std::memory_order_relaxed);
  } else if (tier >= Tier::kSwar) {
    g_batch.store(&Sha1Chunk64BatchSwar, std::memory_order_relaxed);
  } else {
    g_batch.store(&Sha1Chunk64BatchScalar, std::memory_order_relaxed);
  }
}

}  // namespace medes::kernels
