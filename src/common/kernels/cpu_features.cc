#include "common/kernels/cpu_features.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/kernels/memops.h"
#include "common/kernels/rolling_kernels.h"
#include "common/kernels/sha1_kernels.h"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#define MEDES_KERNELS_X86 1
#endif

namespace medes::kernels {
namespace {

// Tier is a process-wide mode switch flipped only by tests/benchmarks (and
// once lazily at startup); relaxed ordering is enough because every variant
// is bit-identical — a racing reader at worst runs one call at the old tier.
std::atomic<Tier> g_tier{Tier::kScalar};
std::atomic<bool> g_tier_bound{false};

bool EnvForcesScalar() {
  const char* v = std::getenv("MEDES_FORCE_SCALAR");
  if (v == nullptr || v[0] == '\0') {
    return false;
  }
  return std::strcmp(v, "0") != 0 && std::strcmp(v, "off") != 0 && std::strcmp(v, "false") != 0;
}

Tier Bind(Tier tier) {
  if (tier > MaxSupportedTier()) {
    tier = MaxSupportedTier();
  }
  g_tier.store(tier, std::memory_order_relaxed);
  g_tier_bound.store(true, std::memory_order_relaxed);
  BindSha1Kernels(tier);
  BindRollingKernels(tier);
  BindMemopsKernels(tier);
  return tier;
}

}  // namespace

CpuFeatures DetectCpuFeatures() {
  CpuFeatures f;
#if defined(MEDES_KERNELS_X86)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) != 0) {
    f.sse42 = (ecx & bit_SSE4_2) != 0;
  }
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) != 0) {
    f.avx2 = (ebx & bit_AVX2) != 0;
    f.sha_ni = (ebx & bit_SHA) != 0;
    f.bmi2 = (ebx & bit_BMI2) != 0;
  }
#endif
  return f;
}

const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kSwar:
      return "swar";
    case Tier::kSse42:
      return "sse42";
    case Tier::kAvx2:
      return "avx2";
  }
  return "unknown";
}

Tier MaxSupportedTier() {
#if defined(MEDES_KERNELS_X86)
  static const Tier max = [] {
    CpuFeatures f = DetectCpuFeatures();
    if (f.avx2) {
      return Tier::kAvx2;
    }
    if (f.sse42) {
      return Tier::kSse42;
    }
    return Tier::kSwar;
  }();
  return max;
#else
  return Tier::kSwar;
#endif
}

Tier ActiveTier() {
  if (!g_tier_bound.load(std::memory_order_relaxed)) {
    return ResetTierFromEnvironment();
  }
  return g_tier.load(std::memory_order_relaxed);
}

bool ShaNiActive() {
  return Sha1ShaNiCompiled() && DetectCpuFeatures().sha_ni && ActiveTier() >= Tier::kSse42;
}

Tier ForceTier(Tier tier) { return Bind(tier); }

Tier ResetTierFromEnvironment() {
#if defined(MEDES_FORCE_SCALAR)
  return Bind(Tier::kScalar);
#else
  return Bind(EnvForcesScalar() ? Tier::kScalar : MaxSupportedTier());
#endif
}

}  // namespace medes::kernels
