#include "common/kernels/rolling_kernels.h"

#include <atomic>

namespace medes::kernels {
namespace {

constexpr uint64_t kB = kRollingBase;

inline uint64_t InitWindow(const uint8_t* data, size_t window) {
  uint64_t h = 0;
  for (size_t i = 0; i < window; ++i) {
    h = h * kB + data[i];
  }
  return h;
}

inline uint64_t RollOne(uint64_t h, uint8_t outgoing, uint8_t incoming, uint64_t pow_w1) {
  return (h - outgoing * pow_w1) * kB + incoming;
}

}  // namespace

void RollingBulkScalar(const uint8_t* data, size_t n, size_t window, uint64_t pow_w1,
                       uint64_t* out) {
  const size_t count = n - window + 1;
  uint64_t h = InitWindow(data, window);
  out[0] = h;
  for (size_t i = 1; i < count; ++i) {
    h = RollOne(h, data[i - 1], data[i - 1 + window], pow_w1);
    out[i] = h;
  }
}

void RollingBulkUnrolled(const uint8_t* data, size_t n, size_t window, uint64_t pow_w1,
                         uint64_t* out) {
  const size_t count = n - window + 1;
  // The serial walk's bottleneck is its dependency chain: two chained 64-bit
  // multiplies per position. Splitting the positions into four *contiguous*
  // blocks gives four independent chains the CPU can overlap, at the cost of
  // three extra window initialisations — negligible against a page-sized
  // scan. Every hash is still computed by the exact same mod-2^64
  // recurrence, so the output is bit-identical to the scalar walk.
  constexpr size_t kLanes = 4;
  if (count < kLanes * 2 || count < window * kLanes / 2) {
    RollingBulkScalar(data, n, window, pow_w1, out);
    return;
  }
  const size_t block = count / kLanes;
  size_t start[kLanes];
  size_t end[kLanes];
  uint64_t h[kLanes];
  for (size_t l = 0; l < kLanes; ++l) {
    start[l] = l * block;
    end[l] = l + 1 == kLanes ? count : (l + 1) * block;
    h[l] = InitWindow(data + start[l], window);
    out[start[l]] = h[l];
  }
  // Interleaved steady state: advance all four chains one position per
  // iteration until the shortest block is done (blocks differ by at most
  // kLanes - 1 positions, handled by the tail loops below).
  size_t steps = block - 1;
  size_t i = 1;
  for (; i <= steps; ++i) {
    for (size_t l = 0; l < kLanes; ++l) {
      const size_t p = start[l] + i;
      h[l] = RollOne(h[l], data[p - 1], data[p - 1 + window], pow_w1);
      out[p] = h[l];
    }
  }
  // Last block may be longer when count % kLanes != 0.
  for (size_t p = start[kLanes - 1] + i; p < end[kLanes - 1]; ++p) {
    h[kLanes - 1] = RollOne(h[kLanes - 1], data[p - 1], data[p - 1 + window], pow_w1);
    out[p] = h[kLanes - 1];
  }
}

namespace {

using BulkFn = void (*)(const uint8_t*, size_t, size_t, uint64_t, uint64_t*);

std::atomic<BulkFn> g_bulk{&RollingBulkScalar};

}  // namespace

void RollingBulk(const uint8_t* data, size_t n, size_t window, uint64_t pow_w1, uint64_t* out) {
  g_bulk.load(std::memory_order_relaxed)(data, n, window, pow_w1, out);
}

void BindRollingKernels(Tier tier) {
  // The unrolled walk is portable C; every non-scalar tier uses it. A true
  // AVX2 lane version loses to scalar here — 64-bit multiplies must be
  // emulated with 32x32 partial products on AVX2.
  if (tier >= Tier::kSwar) {
    g_bulk.store(&RollingBulkUnrolled, std::memory_order_relaxed);
  } else {
    g_bulk.store(&RollingBulkScalar, std::memory_order_relaxed);
  }
}

}  // namespace medes::kernels
