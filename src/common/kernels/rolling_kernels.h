// Bulk rolling-hash kernels feeding the fingerprint scan.
//
// The fingerprint pass needs the Rabin-style hash of *every* W-byte window
// of a page. The scalar recurrence h' = (h - out*B^(W-1))*B + in is a
// serial dependency chain; the unrolled variant splits the positions into
// four independent lanes (lane j covers positions j, j+4, j+8, ...) and
// steps each lane four positions at a time with precomputed powers of the
// base, which is exact in mod-2^64 arithmetic and therefore bit-identical
// to the scalar walk. See cpu_features.h for the dispatch contract.
#ifndef MEDES_COMMON_KERNELS_ROLLING_KERNELS_H_
#define MEDES_COMMON_KERNELS_ROLLING_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "common/kernels/cpu_features.h"

namespace medes::kernels {

// Polynomial base shared with RollingHash (chunking/rabin.h keeps the same
// constant; rabin_test locks the two together).
inline constexpr uint64_t kRollingBase = 0x100000001b3ull;

// Writes the hash of every window of `data` (n bytes, n >= window) into
// out[0 .. n - window]. `pow_w1` must equal kRollingBase^(window-1) mod
// 2^64 (the caller — RollingHash — already maintains it).
void RollingBulk(const uint8_t* data, size_t n, size_t window, uint64_t pow_w1, uint64_t* out);
void RollingBulkScalar(const uint8_t* data, size_t n, size_t window, uint64_t pow_w1,
                       uint64_t* out);
void RollingBulkUnrolled(const uint8_t* data, size_t n, size_t window, uint64_t pow_w1,
                         uint64_t* out);

// Rebinds the dispatched entry point (called by cpu_features).
void BindRollingKernels(Tier tier);

}  // namespace medes::kernels

#endif  // MEDES_COMMON_KERNELS_ROLLING_KERNELS_H_
