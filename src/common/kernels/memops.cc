#include "common/kernels/memops.h"

#include <atomic>
#include <bit>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define MEDES_KERNELS_X86 1
#endif

namespace medes::kernels {
namespace {

inline uint64_t Load64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

// Index of the first differing byte inside a XOR of two 8-byte loads.
inline size_t FirstDiffByte(uint64_t diff) {
  if constexpr (std::endian::native == std::endian::little) {
    return static_cast<size_t>(std::countr_zero(diff)) / 8;
  } else {
    return static_cast<size_t>(std::countl_zero(diff)) / 8;
  }
}

// Index (from the *end* of the load) of the last differing byte.
inline size_t LastDiffByte(uint64_t diff) {
  if constexpr (std::endian::native == std::endian::little) {
    return static_cast<size_t>(std::countl_zero(diff)) / 8;
  } else {
    return static_cast<size_t>(std::countr_zero(diff)) / 8;
  }
}

}  // namespace

size_t MatchForwardScalar(const uint8_t* a, const uint8_t* b, size_t max) {
  size_t len = 0;
  while (len < max && a[len] == b[len]) {
    ++len;
  }
  return len;
}

size_t MatchForwardSwar(const uint8_t* a, const uint8_t* b, size_t max) {
  size_t len = 0;
  while (len + 8 <= max) {
    uint64_t diff = Load64(a + len) ^ Load64(b + len);
    if (diff != 0) {
      return len + FirstDiffByte(diff);
    }
    len += 8;
  }
  while (len < max && a[len] == b[len]) {
    ++len;
  }
  return len;
}

size_t MatchBackwardScalar(const uint8_t* a_end, const uint8_t* b_end, size_t max) {
  size_t len = 0;
  while (len < max && a_end[-static_cast<ptrdiff_t>(len) - 1] ==
                          b_end[-static_cast<ptrdiff_t>(len) - 1]) {
    ++len;
  }
  return len;
}

size_t MatchBackwardSwar(const uint8_t* a_end, const uint8_t* b_end, size_t max) {
  size_t len = 0;
  while (len + 8 <= max) {
    uint64_t diff = Load64(a_end - len - 8) ^ Load64(b_end - len - 8);
    if (diff != 0) {
      return len + LastDiffByte(diff);
    }
    len += 8;
  }
  while (len < max && a_end[-static_cast<ptrdiff_t>(len) - 1] ==
                          b_end[-static_cast<ptrdiff_t>(len) - 1]) {
    ++len;
  }
  return len;
}

bool MemEqualScalar(const uint8_t* a, const uint8_t* b, size_t len) {
  for (size_t i = 0; i < len; ++i) {
    if (a[i] != b[i]) {
      return false;
    }
  }
  return true;
}

bool MemEqualSwar(const uint8_t* a, const uint8_t* b, size_t len) {
  size_t i = 0;
  uint64_t acc = 0;
  while (i + 8 <= len) {
    acc |= Load64(a + i) ^ Load64(b + i);
    i += 8;
  }
  if (i < len && len >= 8) {
    // One overlapping tail load instead of a byte loop.
    acc |= Load64(a + len - 8) ^ Load64(b + len - 8);
    return acc == 0;
  }
  for (; i < len; ++i) {
    acc |= static_cast<uint64_t>(a[i] ^ b[i]);
  }
  return acc == 0;
}

#if defined(MEDES_KERNELS_X86)

bool Avx2Compiled() { return true; }

__attribute__((target("avx2"))) size_t MatchForwardAvx2(const uint8_t* a, const uint8_t* b,
                                                        size_t max) {
  size_t len = 0;
  while (len + 32 <= max) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + len));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + len));
    uint32_t eq = static_cast<uint32_t>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)));
    if (eq != 0xffffffffu) {
      return len + static_cast<size_t>(std::countr_zero(~eq));
    }
    len += 32;
  }
  return len + MatchForwardSwar(a + len, b + len, max - len);
}

__attribute__((target("avx2"))) size_t MatchBackwardAvx2(const uint8_t* a_end,
                                                         const uint8_t* b_end, size_t max) {
  size_t len = 0;
  while (len + 32 <= max) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a_end - len - 32));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b_end - len - 32));
    uint32_t eq = static_cast<uint32_t>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)));
    if (eq != 0xffffffffu) {
      return len + static_cast<size_t>(std::countl_zero(~eq));
    }
    len += 32;
  }
  return len + MatchBackwardSwar(a_end - len, b_end - len, max - len);
}

__attribute__((target("avx2"))) bool MemEqualAvx2(const uint8_t* a, const uint8_t* b,
                                                  size_t len) {
  if (len < 32) {
    return MemEqualSwar(a, b, len);
  }
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_or_si256(acc, _mm256_xor_si256(va, vb));
  }
  if (i < len) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + len - 32));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + len - 32));
    acc = _mm256_or_si256(acc, _mm256_xor_si256(va, vb));
  }
  return _mm256_testz_si256(acc, acc) != 0;
}

#else  // !MEDES_KERNELS_X86

bool Avx2Compiled() { return false; }

size_t MatchForwardAvx2(const uint8_t* a, const uint8_t* b, size_t max) {
  return MatchForwardSwar(a, b, max);
}

size_t MatchBackwardAvx2(const uint8_t* a_end, const uint8_t* b_end, size_t max) {
  return MatchBackwardSwar(a_end, b_end, max);
}

bool MemEqualAvx2(const uint8_t* a, const uint8_t* b, size_t len) {
  return MemEqualSwar(a, b, len);
}

#endif  // MEDES_KERNELS_X86

namespace {

using MatchFn = size_t (*)(const uint8_t*, const uint8_t*, size_t);
using EqualFn = bool (*)(const uint8_t*, const uint8_t*, size_t);

std::atomic<MatchFn> g_match_forward{&MatchForwardScalar};
std::atomic<MatchFn> g_match_backward{&MatchBackwardScalar};
std::atomic<EqualFn> g_mem_equal{&MemEqualScalar};

}  // namespace

size_t MatchForward(const uint8_t* a, const uint8_t* b, size_t max) {
  return g_match_forward.load(std::memory_order_relaxed)(a, b, max);
}

size_t MatchBackward(const uint8_t* a_end, const uint8_t* b_end, size_t max) {
  return g_match_backward.load(std::memory_order_relaxed)(a_end, b_end, max);
}

bool MemEqual(const uint8_t* a, const uint8_t* b, size_t len) {
  return g_mem_equal.load(std::memory_order_relaxed)(a, b, len);
}

void BindMemopsKernels(Tier tier) {
  // SSE4.2 brings nothing beyond SWAR for these primitives (the win is the
  // 32-byte AVX2 stride), so kSse42 maps to the SWAR variants.
  if (tier >= Tier::kAvx2 && Avx2Compiled()) {
    g_match_forward.store(&MatchForwardAvx2, std::memory_order_relaxed);
    g_match_backward.store(&MatchBackwardAvx2, std::memory_order_relaxed);
    g_mem_equal.store(&MemEqualAvx2, std::memory_order_relaxed);
  } else if (tier >= Tier::kSwar) {
    g_match_forward.store(&MatchForwardSwar, std::memory_order_relaxed);
    g_match_backward.store(&MatchBackwardSwar, std::memory_order_relaxed);
    g_mem_equal.store(&MemEqualSwar, std::memory_order_relaxed);
  } else {
    g_match_forward.store(&MatchForwardScalar, std::memory_order_relaxed);
    g_match_backward.store(&MatchBackwardScalar, std::memory_order_relaxed);
    g_mem_equal.store(&MemEqualScalar, std::memory_order_relaxed);
  }
}

}  // namespace medes::kernels
