// Runtime CPU-feature detection and kernel-tier dispatch.
//
// The per-page hot path (chunk SHA-1, rolling-hash scan, delta match
// extension, patch decode) is implemented several times at increasing
// ISA levels. At startup — or whenever a test forces a tier — every
// dispatched kernel entry point is bound to the best variant the CPU
// supports:
//
//   kScalar  pure byte-at-a-time reference code. The other tiers are
//            verified bit-identical against it (tests/kernel_equivalence).
//   kSwar    portable word-at-a-time C (8-byte XOR + count-zeros tricks,
//            interleaved multi-buffer hashing). Works on any 64-bit target.
//   kSse42   x86-64 with SSE4.2: 16-byte vector compares; SHA-NI chunk
//            hashing when the `sha` cpuid bit is also set.
//   kAvx2    x86-64 with AVX2: 32-byte compares, 8-way vertical
//            multi-buffer SHA-1.
//
// Forcing scalar for equivalence testing / debugging:
//   - environment: MEDES_FORCE_SCALAR=1 (read once at first use; tests can
//     re-read via ResetTierFromEnvironment);
//   - build knob: cmake -DMEDES_FORCE_SCALAR=ON bakes the scalar tier in.
//
// Every variant of every kernel is required to produce bit-identical
// output (same digests, same rolling-hash words, same match lengths, same
// delta bytes) — tier selection may never change observable behaviour.
#ifndef MEDES_COMMON_KERNELS_CPU_FEATURES_H_
#define MEDES_COMMON_KERNELS_CPU_FEATURES_H_

#include <cstdint>

namespace medes::kernels {

// Raw cpuid probe results (all false on non-x86 targets).
struct CpuFeatures {
  bool sse42 = false;
  bool avx2 = false;
  bool sha_ni = false;
  bool bmi2 = false;
};

CpuFeatures DetectCpuFeatures();

enum class Tier : uint8_t {
  kScalar = 0,
  kSwar = 1,
  kSse42 = 2,
  kAvx2 = 3,
};

const char* TierName(Tier tier);

// Highest tier this binary + CPU can run (ignores MEDES_FORCE_SCALAR).
Tier MaxSupportedTier();

// Currently bound tier. Lazily initialised from cpuid and the
// MEDES_FORCE_SCALAR environment/build knob on first use.
Tier ActiveTier();

// True when the SHA-NI chunk-hash variant is compiled in, supported by the
// CPU and not disabled by the active tier (SHA-NI engages at >= kSse42).
bool ShaNiActive();

// Rebinds every dispatched kernel to `tier`, clamped to MaxSupportedTier().
// Returns the tier actually bound. Intended for tests and benchmarks.
Tier ForceTier(Tier tier);

// Re-evaluates cpuid + MEDES_FORCE_SCALAR and rebinds all kernels, as if
// the process were starting fresh. Returns the bound tier.
Tier ResetTierFromEnvironment();

}  // namespace medes::kernels

#endif  // MEDES_COMMON_KERNELS_CPU_FEATURES_H_
