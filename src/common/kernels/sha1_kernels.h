// SHA-1 compression kernels: scalar reference, SHA-NI, and multi-buffer
// (4-way interleaved SWAR, 8-way vertical AVX2) variants.
//
// Medes hashes 64-byte chunks — exactly one compression block — so besides
// the generic single-block compress used by the streaming hasher there is a
// fixed-length fast path: a 64-byte message's padding block is a compile
// time constant, so Chunk64 is two back-to-back compressions with no
// buffering or length bookkeeping. The batch entry point hashes all sampled
// chunks of a page in one call so the multi-buffer variants can fill their
// lanes. All variants produce bit-identical digests (cpu_features.h).
#ifndef MEDES_COMMON_KERNELS_SHA1_KERNELS_H_
#define MEDES_COMMON_KERNELS_SHA1_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "common/kernels/cpu_features.h"

namespace medes::kernels {

// SHA-1 initialisation vector (FIPS 180-1).
inline constexpr uint32_t kSha1Init[5] = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u,
                                          0xC3D2E1F0u};

// Generic single 64-byte block compression: state <- compress(state, block).
void Sha1Compress(uint32_t state[5], const uint8_t* block);
void Sha1CompressScalar(uint32_t state[5], const uint8_t* block);

// SHA-NI variant; call only when Sha1ShaNiCompiled() and the cpuid `sha`
// bit are both true (falls back to scalar on non-x86 builds).
bool Sha1ShaNiCompiled();
void Sha1CompressShaNi(uint32_t state[5], const uint8_t* block);

// Fixed-length fast path: digest *state* of exactly 64 message bytes
// (init vector, compress data block, compress the constant padding block).
// Callers serialise the state big-endian to get digest bytes.
void Sha1Chunk64(const uint8_t* chunk, uint32_t out_state[5]);
void Sha1Chunk64Scalar(const uint8_t* chunk, uint32_t out_state[5]);
void Sha1Chunk64ShaNi(const uint8_t* chunk, uint32_t out_state[5]);

// Multi-buffer batch: out_state[i] = Chunk64(chunks[i]) for i in [0, n).
void Sha1Chunk64Batch(const uint8_t* const* chunks, size_t n, uint32_t (*out_state)[5]);
void Sha1Chunk64BatchScalar(const uint8_t* const* chunks, size_t n, uint32_t (*out_state)[5]);
// 4 chunks interleaved in scalar registers — breaks the per-hash dependency
// chain for ILP; portable C.
void Sha1Chunk64BatchSwar(const uint8_t* const* chunks, size_t n, uint32_t (*out_state)[5]);
// 8 chunks vertically in AVX2 lanes; requires cpuid avx2 (portable
// fallback body on non-x86 builds).
void Sha1Chunk64BatchAvx2(const uint8_t* const* chunks, size_t n, uint32_t (*out_state)[5]);
// SHA-NI loop; same availability rule as Sha1CompressShaNi.
void Sha1Chunk64BatchShaNi(const uint8_t* const* chunks, size_t n, uint32_t (*out_state)[5]);

// Rebinds the dispatched entry points (called by cpu_features).
void BindSha1Kernels(Tier tier);

}  // namespace medes::kernels

#endif  // MEDES_COMMON_KERNELS_SHA1_KERNELS_H_
