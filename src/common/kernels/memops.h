// Word/vector byte-run primitives for the delta codec hot path.
//
// Match extension (how far two buffers agree) and seed equality are the
// inner loops of DeltaEncode: every candidate match runs one MemEqual over
// the seed and one MatchForward/MatchBackward over the surrounding bytes.
// Each primitive has a scalar reference, a portable SWAR variant (8-byte
// XOR + count-zeros) and x86 vector variants; the unqualified names
// dispatch through the tier bound by cpu_features. All variants return
// bit-identical results (see the contract in cpu_features.h).
#ifndef MEDES_COMMON_KERNELS_MEMOPS_H_
#define MEDES_COMMON_KERNELS_MEMOPS_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "common/kernels/cpu_features.h"

namespace medes::kernels {

// Length of the longest common prefix of a[0..max) and b[0..max).
size_t MatchForward(const uint8_t* a, const uint8_t* b, size_t max);
size_t MatchForwardScalar(const uint8_t* a, const uint8_t* b, size_t max);
size_t MatchForwardSwar(const uint8_t* a, const uint8_t* b, size_t max);

// Length of the longest common suffix of a_end[-max..0) and b_end[-max..0):
// the largest m <= max with a_end[-i] == b_end[-i] for all i in [1, m].
size_t MatchBackward(const uint8_t* a_end, const uint8_t* b_end, size_t max);
size_t MatchBackwardScalar(const uint8_t* a_end, const uint8_t* b_end, size_t max);
size_t MatchBackwardSwar(const uint8_t* a_end, const uint8_t* b_end, size_t max);

// Whole-buffer equality (seed comparison; len is typically 16).
bool MemEqual(const uint8_t* a, const uint8_t* b, size_t len);
bool MemEqualScalar(const uint8_t* a, const uint8_t* b, size_t len);
bool MemEqualSwar(const uint8_t* a, const uint8_t* b, size_t len);

// AVX2 variants exist only when the compiler can target x86; call them
// only when DetectCpuFeatures().avx2 is true.
bool Avx2Compiled();
size_t MatchForwardAvx2(const uint8_t* a, const uint8_t* b, size_t max);
size_t MatchBackwardAvx2(const uint8_t* a_end, const uint8_t* b_end, size_t max);
bool MemEqualAvx2(const uint8_t* a, const uint8_t* b, size_t len);

// Copies len bytes between non-overlapping buffers, tuned for the short
// (8–64 byte) runs delta op streams are made of. Plain memcpy semantics.
inline void CopyBytes(uint8_t* dst, const uint8_t* src, size_t len) {
  if (len <= 16) {
    // Two possibly-overlapping 8-byte moves cover every length in [9, 16];
    // shorter runs fall through to the byte loop below.
    if (len >= 8) {
      std::memcpy(dst, src, 8);
      std::memcpy(dst + len - 8, src + len - 8, 8);
      return;
    }
    for (size_t i = 0; i < len; ++i) {
      dst[i] = src[i];
    }
    return;
  }
  std::memcpy(dst, src, len);
}

// Rebinds the dispatched entry points (called by cpu_features).
void BindMemopsKernels(Tier tier);

}  // namespace medes::kernels

#endif  // MEDES_COMMON_KERNELS_MEMOPS_H_
