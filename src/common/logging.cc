#include "common/logging.h"

#include <cstdio>

namespace medes {
namespace {
LogLevel g_level = LogLevel::kWarn;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace internal {
void EmitLog(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[medes %s] %s\n", LevelName(level), message.c_str());
}
}  // namespace internal

}  // namespace medes
