#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace medes {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

// Small sequential id per logging thread (std::this_thread::get_id is opaque
// and unstable across runs; these are assigned in first-log order).
int ThreadLogId() {
  static std::atomic<int> next{0};
  static thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}
}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }
void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

namespace internal {
void EmitLog(LogLevel level, const std::string& message) {
  // One formatted record, one write: stdio locks the stream per call, so
  // concurrent loggers interleave whole lines rather than fragments.
  std::string line = "[medes ";
  line += LevelName(level);
  line += " t";
  line += std::to_string(ThreadLogId());
  line += "] ";
  line += message;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}
}  // namespace internal

}  // namespace medes
