#include "common/mutex.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace medes {

namespace {

// One entry per lock the thread currently holds (shared or exclusive).
struct HeldLock {
  const void* lock = nullptr;
  const char* name = "";
  LockRank rank = LockRank::kUnranked;
};

// The checker's own state is synchronized with raw std primitives — it must
// never re-enter the instrumented wrappers.
std::vector<HeldLock>& HeldStack() {
  static thread_local std::vector<HeldLock> stack;
  return stack;
}

bool DefaultEnabled() {
#ifdef MEDES_DEBUG_LOCKS
  return true;
#else
  const char* env = std::getenv("MEDES_DEBUG_LOCKS");
  return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
#endif
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled(DefaultEnabled());
  return enabled;
}

std::mutex& HandlerMutex() {
  static std::mutex mu;
  return mu;
}

LockOrderViolationHandler& HandlerSlot() {
  static LockOrderViolationHandler handler;  // empty = default (print + abort)
  return handler;
}

void ReportViolation(const HeldLock& offender, const char* name, LockRank rank) {
  std::string message = "lock-order violation: acquiring \"";
  message += name;
  message += "\" (";
  message += ToString(rank);
  message += ") while holding \"";
  message += offender.name;
  message += "\" (";
  message += ToString(offender.rank);
  message += "); locks held by this thread, oldest first:";
  for (const HeldLock& held : HeldStack()) {
    message += " \"";
    message += held.name;
    message += "\" (";
    message += ToString(held.rank);
    message += ")";
  }
  LockOrderViolationHandler handler;
  {
    std::lock_guard<std::mutex> lock(HandlerMutex());
    handler = HandlerSlot();
  }
  if (handler) {
    handler(message);
    return;  // test hook chose to continue
  }
  std::fprintf(stderr, "%s\n", message.c_str());
  std::abort();
}

// Called before blocking on the lock so a violation is reported even when
// the inversion would deadlock rather than proceed.
void OnAcquire(const void* lock, const char* name, LockRank rank) {
  if (!EnabledFlag().load(std::memory_order_relaxed)) {
    return;
  }
  std::vector<HeldLock>& stack = HeldStack();
  if (rank != LockRank::kUnranked) {
    // Scan newest-first so the message names the most recent offender.
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (it->rank != LockRank::kUnranked && it->rank >= rank) {
        ReportViolation(*it, name, rank);
        break;
      }
    }
  }
  stack.push_back(HeldLock{lock, name, rank});
}

void OnRelease(const void* lock) {
  std::vector<HeldLock>& stack = HeldStack();
  // Unlock order need not mirror lock order; erase the newest match. The
  // stack may lack an entry when checking was enabled mid-critical-section.
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (it->lock == lock) {
      stack.erase(std::next(it).base());
      return;
    }
  }
}

}  // namespace

const char* ToString(LockRank rank) {
  switch (rank) {
    case LockRank::kUnranked:
      return "unranked";
    case LockRank::kPoolQueue:
      return "rank 1: pool queue";
    case LockRank::kRegistryTopology:
      return "rank 2: registry topology";
    case LockRank::kRegistryShard:
      return "rank 3: registry shard";
    case LockRank::kRegistrySandbox:
      return "rank 4: registry sandbox index";
    case LockRank::kRdmaCache:
      return "rank 5: rdma cache";
    case LockRank::kTransport:
      return "rank 6: transport";
    case LockRank::kStateStore:
      return "rank 7: state store";
    case LockRank::kMetrics:
      return "rank 8: metrics";
    case LockRank::kObsRegistry:
      return "rank 9: obs registry";
    case LockRank::kObsBuffer:
      return "rank 10: obs span buffer";
  }
  return "unknown";
}

bool LockDebuggingEnabled() { return EnabledFlag().load(std::memory_order_relaxed); }

void SetLockDebugging(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

LockOrderViolationHandler SetLockOrderViolationHandler(LockOrderViolationHandler handler) {
  std::lock_guard<std::mutex> lock(HandlerMutex());
  LockOrderViolationHandler previous = HandlerSlot();
  HandlerSlot() = std::move(handler);
  return previous;
}

size_t HeldLockCount() { return HeldStack().size(); }

void Mutex::Lock() {
  OnAcquire(this, name_, rank_);
  mu_.lock();
}

void Mutex::Unlock() {
  mu_.unlock();
  OnRelease(this);
}

bool Mutex::TryLock() {
  if (!mu_.try_lock()) {
    return false;
  }
  // Record after the fact: a failed try_lock is not an acquisition, and a
  // successful one cannot deadlock — but it still enters the held stack so
  // later acquisitions are checked against it.
  OnAcquire(this, name_, rank_);
  return true;
}

void SharedMutex::Lock() {
  OnAcquire(this, name_, rank_);
  mu_.lock();
}

void SharedMutex::Unlock() {
  mu_.unlock();
  OnRelease(this);
}

void SharedMutex::LockShared() {
  OnAcquire(this, name_, rank_);
  mu_.lock_shared();
}

void SharedMutex::UnlockShared() {
  mu_.unlock_shared();
  OnRelease(this);
}

bool SharedMutex::TryLock() {
  if (!mu_.try_lock()) {
    return false;
  }
  OnAcquire(this, name_, rank_);
  return true;
}

// The adopt/release dance hands the already-held std::mutex to a unique_lock
// for the duration of the wait. The capability stays held from the caller's
// perspective (REQUIRES on the declaration); the held-lock stack likewise
// keeps its entry — while blocked this thread acquires nothing, so no
// ordering decision can depend on it.
void CondVar::Wait(Mutex& mu) {
  std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
  cv_.wait(lock);
  lock.release();
}

}  // namespace medes
