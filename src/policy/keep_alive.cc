#include "policy/keep_alive.h"

#include <algorithm>
#include <cmath>

namespace medes {

AdaptiveKeepAlive::AdaptiveKeepAlive(AdaptiveKeepAliveOptions options) : options_(options) {}

void AdaptiveKeepAlive::RecordArrival(SimTime now) {
  if (last_arrival_.value() >= 0 && now > last_arrival_) {
    iats_.push_back(now - last_arrival_);
    if (iats_.size() > options_.max_samples) {
      iats_.pop_front();
    }
  }
  last_arrival_ = now;
}

SimDuration AdaptiveKeepAlive::KeepAlive() const {
  if (iats_.size() < options_.min_samples) {
    return options_.default_window;
  }
  std::vector<SimDuration> sorted(iats_.begin(), iats_.end());
  std::sort(sorted.begin(), sorted.end());
  size_t rank = static_cast<size_t>(
      std::ceil(options_.coverage_percentile * static_cast<double>(sorted.size())));
  if (rank > 0) {
    --rank;
  }
  const SimDuration window{static_cast<int64_t>(
      static_cast<double>(sorted[std::min(rank, sorted.size() - 1)].value()) * options_.margin)};
  return std::clamp(window, options_.min_window, options_.max_window);
}

RateTracker::RateTracker(SimDuration bucket_width, size_t num_buckets)
    : bucket_width_(bucket_width), num_buckets_(num_buckets) {}

void RateTracker::RecordArrival(SimTime now) {
  Advance(now);
  const int64_t bucket = now.value() / bucket_width_.value();
  if (!buckets_.empty() && buckets_.back().first == bucket) {
    ++buckets_.back().second;
  } else {
    buckets_.emplace_back(bucket, 1);
  }
}

void RateTracker::Advance(SimTime now) const {
  const int64_t horizon = now.value() / bucket_width_.value() - static_cast<int64_t>(num_buckets_);
  while (!buckets_.empty() && buckets_.front().first < horizon) {
    buckets_.pop_front();
  }
}

double RateTracker::MaxRate(SimTime now) const {
  Advance(now);
  uint64_t max_count = 0;
  for (const auto& [bucket, count] : buckets_) {
    max_count = std::max(max_count, count);
  }
  return static_cast<double>(max_count) / ToSeconds(bucket_width_);
}

double RateTracker::MeanRate(SimTime now) const {
  Advance(now);
  uint64_t total = 0;
  for (const auto& [bucket, count] : buckets_) {
    total += count;
  }
  return static_cast<double>(total) /
         (ToSeconds(bucket_width_) * static_cast<double>(num_buckets_));
}

}  // namespace medes
