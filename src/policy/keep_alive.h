// Keep-alive baselines and supporting trackers.
//
// - FixedKeepAlive: the industry default (AWS Lambda, OpenWhisk, OpenFaaS):
//   purge a warm sandbox a fixed period after its last use. The paper uses
//   10 minutes as the best-performing fixed setting (Section 7.5).
// - AdaptiveKeepAlive: the Azure Functions hybrid-histogram policy (Shahrad
//   et al., ATC'20) as summarised by the paper: the keep-alive window is
//   chosen from the function's observed inter-arrival-time distribution.
// - RateTracker: sliding-window arrival-rate estimator feeding lambda_max
//   into the Medes policy.
#ifndef MEDES_POLICY_KEEP_ALIVE_H_
#define MEDES_POLICY_KEEP_ALIVE_H_

#include <cstddef>
#include <deque>
#include <utility>
#include <vector>

#include "common/time.h"

namespace medes {

class FixedKeepAlive {
 public:
  explicit FixedKeepAlive(SimDuration period = 10 * kMinute) : period_(period) {}
  SimDuration KeepAlive() const { return period_; }

 private:
  SimDuration period_;
};

struct AdaptiveKeepAliveOptions {
  // Percentile of the IAT distribution the window must cover.
  double coverage_percentile = 0.90;
  // Safety margin applied to the chosen percentile.
  double margin = 1.10;
  SimDuration min_window = 30 * kSecond;
  SimDuration max_window = 10 * kMinute;
  // Default used until enough IAT samples exist.
  SimDuration default_window = 10 * kMinute;
  size_t min_samples = 8;
  size_t max_samples = 512;  // bounded history
};

class AdaptiveKeepAlive {
 public:
  explicit AdaptiveKeepAlive(AdaptiveKeepAliveOptions options = {});

  // Records a request arrival for the tracked function.
  void RecordArrival(SimTime now);

  // Current keep-alive window.
  SimDuration KeepAlive() const;

  size_t NumSamples() const { return iats_.size(); }

 private:
  AdaptiveKeepAliveOptions options_;
  SimTime last_arrival_{-1};
  std::deque<SimDuration> iats_;
};

// Sliding-window max arrival rate (req/s), bucketed.
class RateTracker {
 public:
  explicit RateTracker(SimDuration bucket_width = 30 * kSecond, size_t num_buckets = 20);

  void RecordArrival(SimTime now);

  // Max bucket rate over the window ending at `now` (req/s).
  double MaxRate(SimTime now) const;
  // Mean rate over the window ending at `now` (req/s).
  double MeanRate(SimTime now) const;

 private:
  void Advance(SimTime now) const;

  SimDuration bucket_width_;
  size_t num_buckets_;
  // (bucket index, count) ring; mutable so reads can expire old buckets.
  mutable std::deque<std::pair<int64_t, uint64_t>> buckets_;
};

}  // namespace medes

#endif  // MEDES_POLICY_KEEP_ALIVE_H_
