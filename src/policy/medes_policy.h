// The Medes sandbox-management policy (paper Section 5).
//
// Per function, the policy decides how many of the C in-memory sandboxes to
// keep warm (W) vs deduplicated (D = C - W), subject to:
//   (1)  W + D = C
//   (2)  W/RW + D/RD  >= lambda_max        (load must be satisfiable)
// optimising one of two objectives:
//   P1 (latency target): minimise memory
//        M = W*mW + D*(mD + mR)   s.t.  S <= alpha * sW
//   P2 (memory cap):     minimise average startup latency
//        S = (W/RW*sW + D/RD*sD) / (W/RW + D/RD)   s.t.  M <= M0
// where RW/RD are warm/dedup sandbox reuse periods, mW/mD/mR the warm
// footprint, dedup footprint, and restore overhead, and sW/sD the warm and
// dedup startup latencies.
//
// C is small (tens), so the solver just scans W in [0, C] — exact, simple,
// and trivially correct against the constraints.
#ifndef MEDES_POLICY_MEDES_POLICY_H_
#define MEDES_POLICY_MEDES_POLICY_H_

#include "common/time.h"

namespace medes {

struct MedesPolicyInputs {
  int total_sandboxes = 0;      // C: idle warm + dedup sandboxes of the function
  double lambda_max = 0;        // req/s the function must sustain
  double reuse_warm_s = 1;      // RW = exec + warm start (seconds)
  double reuse_dedup_s = 1;     // RD = exec + dedup start (seconds)
  double warm_mb = 0;           // mW
  double dedup_mb = 0;          // mD
  double restore_overhead_mb = 0;  // mR
  double warm_start_s = 0.01;   // sW
  double dedup_start_s = 0.2;   // sD
};

struct MedesPolicyTargets {
  int warm = 0;
  int dedup = 0;
  // False when no (W, D) split satisfies the constraints; the caller then
  // applies the paper's fallback: dedup aggressively, keeping sandboxes warm
  // only if memory allows and the request rate needs them.
  bool feasible = false;
};

// Average startup latency S for a (W, D) split.
double AverageStartupLatency(const MedesPolicyInputs& in, int warm, int dedup);

// Memory footprint M for a (W, D) split.
double MemoryFootprintMb(const MedesPolicyInputs& in, int warm, int dedup);

// Serviceable request rate for a (W, D) split (constraint 2's left side).
double ServiceableRate(const MedesPolicyInputs& in, int warm, int dedup);

// P1: minimise memory subject to S <= alpha * sW.
MedesPolicyTargets SolveLatencyObjective(const MedesPolicyInputs& in, double alpha);

// P2: minimise S subject to M <= memory_cap_mb.
MedesPolicyTargets SolveMemoryObjective(const MedesPolicyInputs& in, double memory_cap_mb);

// Combined: minimise memory subject to BOTH S <= alpha * sW and
// M <= memory_cap_mb ("combinations of these can also be configured
// trivially", paper Section 5.2.3).
MedesPolicyTargets SolveCombinedObjective(const MedesPolicyInputs& in, double alpha,
                                          double memory_cap_mb);

}  // namespace medes

#endif  // MEDES_POLICY_MEDES_POLICY_H_
