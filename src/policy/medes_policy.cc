#include "policy/medes_policy.h"

#include <limits>

namespace medes {

double AverageStartupLatency(const MedesPolicyInputs& in, int warm, int dedup) {
  const double warm_rate = static_cast<double>(warm) / in.reuse_warm_s;
  const double dedup_rate = static_cast<double>(dedup) / in.reuse_dedup_s;
  const double total = warm_rate + dedup_rate;
  if (total <= 0) {
    return std::numeric_limits<double>::infinity();
  }
  return (warm_rate * in.warm_start_s + dedup_rate * in.dedup_start_s) / total;
}

double MemoryFootprintMb(const MedesPolicyInputs& in, int warm, int dedup) {
  return static_cast<double>(warm) * in.warm_mb +
         static_cast<double>(dedup) * (in.dedup_mb + in.restore_overhead_mb);
}

double ServiceableRate(const MedesPolicyInputs& in, int warm, int dedup) {
  return static_cast<double>(warm) / in.reuse_warm_s +
         static_cast<double>(dedup) / in.reuse_dedup_s;
}

MedesPolicyTargets SolveLatencyObjective(const MedesPolicyInputs& in, double alpha) {
  MedesPolicyTargets best;
  double best_memory = std::numeric_limits<double>::infinity();
  const double latency_bound = alpha * in.warm_start_s;
  for (int warm = 0; warm <= in.total_sandboxes; ++warm) {
    const int dedup = in.total_sandboxes - warm;
    if (ServiceableRate(in, warm, dedup) < in.lambda_max) {
      continue;
    }
    if (AverageStartupLatency(in, warm, dedup) > latency_bound) {
      continue;
    }
    const double memory = MemoryFootprintMb(in, warm, dedup);
    if (memory < best_memory) {
      best_memory = memory;
      best = {warm, dedup, true};
    }
  }
  return best;
}

MedesPolicyTargets SolveCombinedObjective(const MedesPolicyInputs& in, double alpha,
                                          double memory_cap_mb) {
  MedesPolicyTargets best;
  double best_memory = std::numeric_limits<double>::infinity();
  const double latency_bound = alpha * in.warm_start_s;
  for (int warm = 0; warm <= in.total_sandboxes; ++warm) {
    const int dedup = in.total_sandboxes - warm;
    if (ServiceableRate(in, warm, dedup) < in.lambda_max) {
      continue;
    }
    if (AverageStartupLatency(in, warm, dedup) > latency_bound) {
      continue;
    }
    const double memory = MemoryFootprintMb(in, warm, dedup);
    if (memory > memory_cap_mb) {
      continue;
    }
    if (memory < best_memory) {
      best_memory = memory;
      best = {warm, dedup, true};
    }
  }
  return best;
}

MedesPolicyTargets SolveMemoryObjective(const MedesPolicyInputs& in, double memory_cap_mb) {
  MedesPolicyTargets best;
  double best_latency = std::numeric_limits<double>::infinity();
  for (int warm = 0; warm <= in.total_sandboxes; ++warm) {
    const int dedup = in.total_sandboxes - warm;
    if (ServiceableRate(in, warm, dedup) < in.lambda_max) {
      continue;
    }
    if (MemoryFootprintMb(in, warm, dedup) > memory_cap_mb) {
      continue;
    }
    const double latency = AverageStartupLatency(in, warm, dedup);
    if (latency < best_latency) {
      best_latency = latency;
      best = {warm, dedup, true};
    }
  }
  return best;
}

}  // namespace medes
