// The per-node dedup agent: dedup and restore operations (paper Section 4).
//
// Dedup op (Fig. 5): checkpoint the warm sandbox; fingerprint each page with
// value-sampled 64 B chunks; look the fingerprints up in the controller's
// global registry to pick a *base page* per page (max sampled-chunk overlap,
// local pages preferred on ties); read the base pages (RDMA when remote);
// compute an Xdelta-style patch at compression level 1; keep the patch and
// purge the original page when the patch is small enough. The checkpoint's
// namespace/process-tree restoration work is done *now* so dedup starts skip
// it (Section 4.2).
//
// Restore op (Fig. 6): fetch referenced base pages (one-sided RDMA, no
// controller involvement), reconstruct original pages from patches, rebuild
// the memory dump, and restore the sandbox from it. The default mode is
// *lazy* (REAP-style, see DESIGN.md "Lazy restore"): only the function's
// predicted post-resume working set is fetched and mapped on the critical
// path (batched per owner node through RdmaFabric::ReadPageBatch); touched
// pages outside the prediction pay a modelled demand-fault penalty, and the
// remaining patched pages are faulted in by a background phase the platform
// schedules on the event engine. RestoreMode::kEager keeps the original
// restore-everything-first behaviour as the regression reference; final
// memory images are bit-identical between the two modes.
//
// Timing is modelled against *represented* sizes: the synthetic images are
// built at `bytes_per_mb` scale, so modelled durations multiply measured
// byte/page counts by the scale ratio back to full size.
//
// Execution is a staged pipeline fanned out over a thread pool (paper
// Section 4 pipelines this work across sandboxes; we parallelise across
// pages, which are independent):
//   fingerprint (parallel) -> registry lookup (parallel, batched) ->
//   base-page read (serial, canonical page order, through the fabric cache)
//   -> delta encode/decode (parallel) -> merge (serial, page order).
// The serial read stage makes cache hit/miss decisions and all modelled
// SimDuration costs a function of page order alone, so every DedupOpResult,
// patch record, and cost is bit-identical across thread counts.
#ifndef MEDES_DEDUPAGENT_DEDUP_AGENT_H_
#define MEDES_DEDUPAGENT_DEDUP_AGENT_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "checkpoint/checkpoint.h"
#include "chunking/fingerprint.h"
#include "cluster/cluster.h"
#include "common/annotations.h"
#include "common/mutex.h"
#include "common/sha1.h"
#include "common/thread_pool.h"
#include "delta/delta.h"
#include "memstate/working_set.h"
#include "obs/trace_context.h"
#include "rdma/rdma.h"
#include "registry/fingerprint_registry.h"

namespace medes {

namespace store {
class StateStore;
}  // namespace store

// How RestoreOp schedules the memory-state work (see file comment).
enum class RestoreMode {
  kLazy,   // working-set prefetch on the critical path, background the rest
  kEager,  // restore everything before resume (the regression reference)
};

const char* ToString(RestoreMode mode);

struct DedupAgentOptions {
  FingerprintOptions fingerprint;
  DeltaOptions delta{.level = 1};
  CheckpointCosts criu;
  // A patch is only kept if it is smaller than this fraction of the page
  // (otherwise deduplication of that page isn't worth the metadata).
  double patch_accept_max_ratio = 0.85;
  // NOTE: the flat `controller_lookup_per_page` constant that used to live
  // here is gone — DedupOpResult::lookup_time now comes from the registry's
  // own cost model (RegistryOptions::lookup_per_page plus transport message
  // costs; DistributedRegistry models its shard fan-out), so centralized and
  // distributed configurations no longer disagree about the same operation.
  // How many ranked base pages a patch may be computed against (Section
  // 4.1.2 says "base page(s)"; 1 keeps restore reads minimal — the Fig. 16
  // cardinality sensitivity raises it).
  size_t max_base_pages_per_page = 1;
  // Patch computation / application throughput, bytes per us (~1 GB/s).
  double patch_bytes_per_us = 1000.0;
  // Keep checkpoint payload bytes after the op (true = byte-exact restores
  // can be verified; false = size-only accounting for fast simulation).
  bool keep_payloads = true;
  // Pipeline worker threads: 0 = MEDES_THREADS env var, else hardware
  // concurrency; 1 = fully serial (the determinism-test reference).
  size_t num_threads = 0;
  // Pages per registry lookup batch (one FindBasePagesBatch call per task).
  size_t lookup_batch_pages = 64;
  // Restore scheduling mode (lazy = working-set prefetch, the default).
  RestoreMode restore_mode = RestoreMode::kLazy;
  // Working-set prediction knobs (EMA alpha + prefetch threshold).
  WorkingSetOptions working_set;
  // Modelled cost of a minor fault on a touched page the lazy critical path
  // chose not to map (per represented page; scaled like every other cost).
  SimDuration minor_fault_cost{2};
  // Extra userfaultfd/kernel overhead when the faulted page is still patched
  // and must be fetched + decoded on demand, on top of the fetch itself.
  SimDuration major_fault_cost{8};
  // Shared working-set table so profiles warm across platforms/runs of a
  // campaign; null = the agent creates a private table from `working_set`.
  std::shared_ptr<WorkingSetTable> working_sets;
  // Tiered state store (src/store): when set, base designations append the
  // base's resident pages, and dedup lookups touch candidate registry
  // entries at the serial post-lookup join — demand-paging SSD-evicted
  // entries into the op's modelled lookup cost. Null = no tiering (the
  // historical behaviour, bit-identical results).
  std::shared_ptr<store::StateStore> state_store;
};

struct DedupOpResult {
  size_t pages_total = 0;
  size_t pages_deduped = 0;   // replaced by patches
  size_t pages_zero = 0;
  size_t pages_unique = 0;    // kept resident (no acceptable base page)
  size_t patch_bytes = 0;     // real bytes at image scale
  size_t saved_bytes = 0;     // (page size - patch size) summed, image scale
  size_t same_function_pages = 0;   // deduped against a base of the same function
  size_t cross_function_pages = 0;  // ... of a different function (Section 7.3.1)
  // Modelled durations at represented scale.
  SimDuration checkpoint_time;
  // Registry lookups (the registry's modelled cost: transport messages plus
  // controller-side per-page work, summed across the op's batches).
  SimDuration lookup_time;
  SimDuration patch_time;    // base page reads + patch computation
  SimDuration total_time;
};

// Cumulative per-agent counters, aggregated across every op the agent has
// run. Ops on different sandboxes may execute concurrently (the controller
// schedules one op per sandbox), so the counters sit behind a lock.
struct DedupAgentStats {
  uint64_t dedup_ops = 0;
  uint64_t restore_ops = 0;
  uint64_t bases_designated = 0;
  uint64_t pages_deduped = 0;
  uint64_t pages_restored = 0;
  uint64_t patch_bytes = 0;
  uint64_t saved_bytes = 0;
  uint64_t base_bytes_read = 0;
  // Lazy-restore accounting.
  uint64_t lazy_restores = 0;
  uint64_t ws_fault_pages = 0;          // mispredicted post-resume touches
  uint64_t background_completions = 0;  // background phases run to completion
  uint64_t background_pages = 0;        // patched pages faulted in off-path
};

struct RestoreOpResult {
  RestoreMode mode = RestoreMode::kEager;
  size_t base_pages_read = 0;
  size_t base_bytes_read = 0;    // real bytes at image scale
  size_t remote_reads = 0;
  // Modelled durations at represented scale — the three Fig. 8 components.
  // Lazy mode scopes them to the critical-path phase (working-set pages).
  SimDuration read_base_time;      // "base page reading"
  SimDuration compute_time;        // "original page computing"
  SimDuration sandbox_restore_time;  // "sandbox restoration" (CRIU)
  // Latency gating resume: the three components above. Eager mode:
  // critical_path_time == total_time and fault_time is zero.
  SimDuration critical_path_time;
  // Modelled post-resume demand-fault penalty (mispredicted working set:
  // minor faults, plus fetch + decode for pages that were still patched).
  SimDuration fault_time;
  SimDuration total_time;  // critical_path_time + fault_time
  // Working-set accounting (lazy mode). Hits/faults partition the touched
  // set; an unprofiled function prefetches the full image (predicted == all).
  size_t ws_predicted_pages = 0;
  size_t ws_touched_pages = 0;
  size_t ws_hit_pages = 0;
  size_t ws_fault_pages = 0;
  // Patched pages deferred to the background phase. When non-zero the caller
  // must eventually run CompleteBackgroundRestore (the platform schedules it
  // on the event engine) or abandon the restore on purge.
  size_t background_pages = 0;
  bool background_pending = false;
  bool verified = false;  // byte-exact reconstruction check ran and passed
};

// Outcome of the background phase of a lazy restore.
struct BackgroundRestoreResult {
  size_t pages = 0;  // patched pages faulted in
  size_t base_pages_read = 0;
  size_t base_bytes_read = 0;
  size_t remote_reads = 0;
  SimDuration total_time;  // modelled duration, entirely off the critical path
  // Deferred byte-exact check (digest captured at RestoreOp time) ran and
  // passed. False when verification was off or nothing was pending.
  bool verified = false;
};

class DedupAgent {
 public:
  // The agent mutates cluster sandboxes and reads pages through the fabric;
  // the registry belongs to the controller. All referenced objects must
  // outlive the agent.
  DedupAgent(Cluster& cluster, RegistryBackend& registry, RdmaFabric& fabric,
             DedupAgentOptions options = {});

  const DedupAgentOptions& options() const { return options_; }

  // Converts a warm sandbox into the dedup state. Builds the sandbox's
  // current image, checkpoints it, and eliminates redundancy page by page.
  // `ctx`, when sampled, becomes the parent of the op span and — through it
  // — of every stage span and wire-message span the op emits.
  DedupOpResult DedupOp(Sandbox& sb, SimTime now, const obs::TraceContext& ctx = {});

  // Restores a dedup sandbox to warm. When `verify` is set (and payloads
  // were kept) the reconstructed image is compared byte-for-byte against the
  // sandbox's regenerated source image — immediately when the restore
  // completes in one phase, or at background completion via a digest
  // captured here (the source image depends on the sandbox's generation,
  // which advances when it runs again). `ctx`, when sampled, parents the
  // restore's span tree (including the deferred background phase).
  RestoreOpResult RestoreOp(Sandbox& sb, SimTime now, bool verify = false,
                            const obs::TraceContext& ctx = {});

  // Completes the background phase of a lazy restore: batched fetch + decode
  // of every still-patched page, then releases the checkpoint. Returns a
  // zero result when nothing is pending for `sb`.
  BackgroundRestoreResult CompleteBackgroundRestore(Sandbox& sb, SimTime now);

  bool HasPendingBackgroundRestore(SandboxId id) const EXCLUDES(pending_mu_);

  // Forgets pending background state without fetching anything (sandbox
  // purged, or re-deduped so a fresh checkpoint supersedes the old one).
  // Does not touch refcounts: the caller owns the remaining patch refs.
  void AbandonBackgroundRestore(SandboxId id) EXCLUDES(pending_mu_);

  // The working-set profile table consulted by lazy restores (shared when
  // DedupAgentOptions::working_sets was set, agent-private otherwise).
  WorkingSetTable& working_sets() { return *working_sets_; }

  // Snapshot + fingerprint + registry insertion for a base sandbox
  // designation. Returns the registered snapshot. `now`/`ctx` anchor the
  // designation span in the trace timeline and parent the registry-insert
  // wire spans; the defaults keep standalone callers untraced.
  BaseSnapshot& DesignateBase(Sandbox& sb, SimTime now = {}, const obs::TraceContext& ctx = {});

  // Represented-scale multiplier for this cluster's image scale.
  double ScaleFactor() const;

  // Resolved pipeline width (>= 1).
  size_t NumThreads() const { return pool_->NumThreads(); }

  // Consistent snapshot of the cumulative counters.
  DedupAgentStats stats() const EXCLUDES(stats_mu_);

 private:
  // Deferred-verification state for a lazy restore with a pending background
  // phase. The digest is of the full source image, captured before the
  // platform marks the sandbox running (generation advances there).
  struct PendingRestore {
    Sha1Digest expected;
    bool verify = false;
    // Restore-op context captured at RestoreLazy time: the background phase
    // runs later (event engine) but its spans belong to the same trace.
    obs::TraceContext ctx;
  };

  // Fingerprints of all resident pages (parallel stage; `pages[i]` indexes
  // into `cp`, the result is positionally aligned with `pages`).
  std::vector<PageFingerprint> FingerprintPages(const MemoryCheckpoint& cp,
                                                const std::vector<size_t>& pages);

  RestoreOpResult RestoreEager(Sandbox& sb, SimTime now, bool verify,
                               const obs::TraceContext& ctx);
  RestoreOpResult RestoreLazy(Sandbox& sb, SimTime now, bool verify,
                              const obs::TraceContext& ctx);

  // Batched base fetch for the patch records selected by `records` (indexes
  // into sb.patches). Returns per-record concatenated base bytes; updates
  // the read counters and releases the records' base refs. `trace` parents
  // the batch's wire spans (forwarded to RdmaFabric::ReadPageBatch).
  std::vector<std::vector<uint8_t>> FetchBasesBatched(Sandbox& sb,
                                                      const std::vector<size_t>& records,
                                                      SimDuration* cost, size_t* pages_read,
                                                      size_t* bytes_read, size_t* remote_reads,
                                                      const obs::MessageTrace& trace = {});

  // Decode + merge `records` back into the checkpoint (parallel decode,
  // serial merge in record order). Returns decoded patch bytes applied.
  size_t DecodeAndRestore(Sandbox& sb, const std::vector<size_t>& records,
                          std::vector<std::vector<uint8_t>>& base_bytes);

  Cluster& cluster_;
  RegistryBackend& registry_;
  RdmaFabric& fabric_;
  DedupAgentOptions options_;
  PageFingerprinter fingerprinter_;
  std::unique_ptr<ThreadPool> pool_;
  std::shared_ptr<WorkingSetTable> working_sets_;  // never null

  // Lazy restores with an outstanding background phase, keyed by sandbox.
  mutable Mutex pending_mu_{"dedup agent pending restores", LockRank::kMetrics};
  std::unordered_map<SandboxId, PendingRestore> pending_ GUARDED_BY(pending_mu_);

  // Cumulative counters; updated once per completed op, with no other lock
  // held (kMetrics is the leaf-most rank in the hierarchy).
  mutable Mutex stats_mu_{"dedup agent stats", LockRank::kMetrics};
  DedupAgentStats stats_ GUARDED_BY(stats_mu_);
};

}  // namespace medes

#endif  // MEDES_DEDUPAGENT_DEDUP_AGENT_H_
