// The per-node dedup agent: dedup and restore operations (paper Section 4).
//
// Dedup op (Fig. 5): checkpoint the warm sandbox; fingerprint each page with
// value-sampled 64 B chunks; look the fingerprints up in the controller's
// global registry to pick a *base page* per page (max sampled-chunk overlap,
// local pages preferred on ties); read the base pages (RDMA when remote);
// compute an Xdelta-style patch at compression level 1; keep the patch and
// purge the original page when the patch is small enough. The checkpoint's
// namespace/process-tree restoration work is done *now* so dedup starts skip
// it (Section 4.2).
//
// Restore op (Fig. 6): read every referenced base page (one-sided RDMA, no
// controller involvement), reconstruct original pages from patches, rebuild
// the memory dump, and restore the sandbox from it.
//
// Timing is modelled against *represented* sizes: the synthetic images are
// built at `bytes_per_mb` scale, so modelled durations multiply measured
// byte/page counts by the scale ratio back to full size.
//
// Execution is a staged pipeline fanned out over a thread pool (paper
// Section 4 pipelines this work across sandboxes; we parallelise across
// pages, which are independent):
//   fingerprint (parallel) -> registry lookup (parallel, batched) ->
//   base-page read (serial, canonical page order, through the fabric cache)
//   -> delta encode/decode (parallel) -> merge (serial, page order).
// The serial read stage makes cache hit/miss decisions and all modelled
// SimDuration costs a function of page order alone, so every DedupOpResult,
// patch record, and cost is bit-identical across thread counts.
#ifndef MEDES_DEDUPAGENT_DEDUP_AGENT_H_
#define MEDES_DEDUPAGENT_DEDUP_AGENT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "checkpoint/checkpoint.h"
#include "chunking/fingerprint.h"
#include "cluster/cluster.h"
#include "common/annotations.h"
#include "common/mutex.h"
#include "common/thread_pool.h"
#include "delta/delta.h"
#include "rdma/rdma.h"
#include "registry/fingerprint_registry.h"

namespace medes {

struct DedupAgentOptions {
  FingerprintOptions fingerprint;
  DeltaOptions delta{.level = 1};
  CheckpointCosts criu;
  // A patch is only kept if it is smaller than this fraction of the page
  // (otherwise deduplication of that page isn't worth the metadata).
  double patch_accept_max_ratio = 0.85;
  // NOTE: the flat `controller_lookup_per_page` constant that used to live
  // here is gone — DedupOpResult::lookup_time now comes from the registry's
  // own cost model (RegistryOptions::lookup_per_page plus transport message
  // costs; DistributedRegistry models its shard fan-out), so centralized and
  // distributed configurations no longer disagree about the same operation.
  // How many ranked base pages a patch may be computed against (Section
  // 4.1.2 says "base page(s)"; 1 keeps restore reads minimal — the Fig. 16
  // cardinality sensitivity raises it).
  size_t max_base_pages_per_page = 1;
  // Patch computation / application throughput, bytes per us (~1 GB/s).
  double patch_bytes_per_us = 1000.0;
  // Keep checkpoint payload bytes after the op (true = byte-exact restores
  // can be verified; false = size-only accounting for fast simulation).
  bool keep_payloads = true;
  // Pipeline worker threads: 0 = MEDES_THREADS env var, else hardware
  // concurrency; 1 = fully serial (the determinism-test reference).
  size_t num_threads = 0;
  // Pages per registry lookup batch (one FindBasePagesBatch call per task).
  size_t lookup_batch_pages = 64;
};

struct DedupOpResult {
  size_t pages_total = 0;
  size_t pages_deduped = 0;   // replaced by patches
  size_t pages_zero = 0;
  size_t pages_unique = 0;    // kept resident (no acceptable base page)
  size_t patch_bytes = 0;     // real bytes at image scale
  size_t saved_bytes = 0;     // (page size - patch size) summed, image scale
  size_t same_function_pages = 0;   // deduped against a base of the same function
  size_t cross_function_pages = 0;  // ... of a different function (Section 7.3.1)
  // Modelled durations at represented scale.
  SimDuration checkpoint_time;
  // Registry lookups (the registry's modelled cost: transport messages plus
  // controller-side per-page work, summed across the op's batches).
  SimDuration lookup_time;
  SimDuration patch_time;    // base page reads + patch computation
  SimDuration total_time;
};

// Cumulative per-agent counters, aggregated across every op the agent has
// run. Ops on different sandboxes may execute concurrently (the controller
// schedules one op per sandbox), so the counters sit behind a lock.
struct DedupAgentStats {
  uint64_t dedup_ops = 0;
  uint64_t restore_ops = 0;
  uint64_t bases_designated = 0;
  uint64_t pages_deduped = 0;
  uint64_t pages_restored = 0;
  uint64_t patch_bytes = 0;
  uint64_t saved_bytes = 0;
  uint64_t base_bytes_read = 0;
};

struct RestoreOpResult {
  size_t base_pages_read = 0;
  size_t base_bytes_read = 0;    // real bytes at image scale
  size_t remote_reads = 0;
  // Modelled durations at represented scale — the three Fig. 8 components.
  SimDuration read_base_time;      // "base page reading"
  SimDuration compute_time;        // "original page computing"
  SimDuration sandbox_restore_time;  // "sandbox restoration" (CRIU)
  SimDuration total_time;
  bool verified = false;  // byte-exact reconstruction check ran and passed
};

class DedupAgent {
 public:
  // The agent mutates cluster sandboxes and reads pages through the fabric;
  // the registry belongs to the controller. All referenced objects must
  // outlive the agent.
  DedupAgent(Cluster& cluster, RegistryBackend& registry, RdmaFabric& fabric,
             DedupAgentOptions options = {});

  const DedupAgentOptions& options() const { return options_; }

  // Converts a warm sandbox into the dedup state. Builds the sandbox's
  // current image, checkpoints it, and eliminates redundancy page by page.
  DedupOpResult DedupOp(Sandbox& sb, SimTime now);

  // Restores a dedup sandbox to warm. When `verify` is set (and payloads
  // were kept) the reconstructed image is compared byte-for-byte against the
  // sandbox's regenerated source image.
  RestoreOpResult RestoreOp(Sandbox& sb, SimTime now, bool verify = false);

  // Snapshot + fingerprint + registry insertion for a base sandbox
  // designation. Returns the registered snapshot.
  BaseSnapshot& DesignateBase(Sandbox& sb);

  // Represented-scale multiplier for this cluster's image scale.
  double ScaleFactor() const;

  // Resolved pipeline width (>= 1).
  size_t NumThreads() const { return pool_->NumThreads(); }

  // Consistent snapshot of the cumulative counters.
  DedupAgentStats stats() const EXCLUDES(stats_mu_);

 private:
  // Fingerprints of all resident pages (parallel stage; `pages[i]` indexes
  // into `cp`, the result is positionally aligned with `pages`).
  std::vector<PageFingerprint> FingerprintPages(const MemoryCheckpoint& cp,
                                                const std::vector<size_t>& pages);

  Cluster& cluster_;
  RegistryBackend& registry_;
  RdmaFabric& fabric_;
  DedupAgentOptions options_;
  PageFingerprinter fingerprinter_;
  std::unique_ptr<ThreadPool> pool_;

  // Cumulative counters; updated once per completed op, with no other lock
  // held (kMetrics is the leaf-most rank in the hierarchy).
  mutable Mutex stats_mu_{"dedup agent stats", LockRank::kMetrics};
  DedupAgentStats stats_ GUARDED_BY(stats_mu_);
};

}  // namespace medes

#endif  // MEDES_DEDUPAGENT_DEDUP_AGENT_H_
