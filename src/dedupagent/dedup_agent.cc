#include "dedupagent/dedup_agent.h"

#include <algorithm>
#include <cstring>
#include <span>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "store/state_store.h"
#include "workload/access_model.h"

namespace medes {

namespace {

struct AgentInstruments {
  obs::Counter* dedup_ops;
  obs::Counter* restore_ops;
  obs::Counter* bases_designated;
  obs::Counter* pages_deduped;
  obs::Counter* pages_unique;
  obs::Counter* patch_bytes;
  obs::Counter* saved_bytes;
  obs::Counter* base_pages_read;
  obs::Histogram* dedup_op_us;
  obs::Histogram* dedup_checkpoint_us;
  obs::Histogram* dedup_lookup_us;
  obs::Histogram* dedup_patch_us;
  obs::Histogram* restore_op_us;
  obs::Histogram* restore_base_read_us;
  obs::Histogram* restore_compute_us;
  obs::Histogram* restore_criu_us;
  obs::Counter* ws_hit_pages;
  obs::Counter* ws_fault_pages;
  obs::Counter* background_pages;
  obs::Histogram* restore_critical_us;
  obs::Histogram* restore_fault_us;
  obs::Histogram* restore_background_us;
};

const AgentInstruments& Instruments() {
  static const AgentInstruments instruments = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
    return AgentInstruments{
        .dedup_ops = &registry.GetCounter("medes_dedup_ops_total", "Completed dedup operations"),
        .restore_ops =
            &registry.GetCounter("medes_restore_ops_total", "Completed restore operations"),
        .bases_designated =
            &registry.GetCounter("medes_bases_designated_total", "Sandboxes designated as bases"),
        .pages_deduped =
            &registry.GetCounter("medes_dedup_pages_deduped_total", "Pages replaced by patches"),
        .pages_unique = &registry.GetCounter("medes_dedup_pages_unique_total",
                                             "Pages kept whole (no acceptable base)"),
        .patch_bytes =
            &registry.GetCounter("medes_dedup_patch_bytes_total", "Bytes of accepted patches"),
        .saved_bytes = &registry.GetCounter("medes_dedup_saved_bytes_total",
                                            "Bytes saved versus the warm footprint"),
        .base_pages_read = &registry.GetCounter("medes_restore_base_pages_read_total",
                                                "Base pages fetched during restores"),
        .dedup_op_us =
            &registry.GetHistogram("medes_dedup_op_us", "Modelled end-to-end dedup time (us)"),
        .dedup_checkpoint_us = &registry.GetHistogram("medes_dedup_checkpoint_us",
                                                      "Dedup stage: checkpoint capture (us)"),
        .dedup_lookup_us = &registry.GetHistogram("medes_dedup_lookup_us",
                                                  "Dedup stage: registry lookups (us)"),
        .dedup_patch_us = &registry.GetHistogram(
            "medes_dedup_patch_us", "Dedup stage: base reads plus delta encoding (us)"),
        .restore_op_us =
            &registry.GetHistogram("medes_restore_op_us", "Modelled end-to-end restore time (us)"),
        .restore_base_read_us = &registry.GetHistogram(
            "medes_restore_base_read_us", "Restore stage: base page reading (us)"),
        .restore_compute_us = &registry.GetHistogram(
            "medes_restore_compute_us", "Restore stage: original page computing (us)"),
        .restore_criu_us = &registry.GetHistogram(
            "medes_restore_criu_us", "Restore stage: sandbox restoration via CRIU (us)"),
        .ws_hit_pages = &registry.GetCounter("medes_restore_ws_hit_pages_total",
                                             "Touched pages the predicted working set covered"),
        .ws_fault_pages = &registry.GetCounter(
            "medes_restore_ws_fault_pages_total",
            "Touched pages outside the predicted working set (demand faults)"),
        .background_pages = &registry.GetCounter(
            "medes_restore_background_pages_total",
            "Patched pages deferred to the background restore phase"),
        .restore_critical_us = &registry.GetHistogram(
            "medes_restore_critical_us", "Critical-path restore latency before resume (us)"),
        .restore_fault_us = &registry.GetHistogram(
            "medes_restore_fault_us", "Post-resume demand-fault penalty (us)"),
        .restore_background_us = &registry.GetHistogram(
            "medes_restore_background_us", "Background restore phase duration (us)"),
    };
  }();
  return instruments;
}

}  // namespace

const char* ToString(RestoreMode mode) {
  switch (mode) {
    case RestoreMode::kLazy:
      return "lazy";
    case RestoreMode::kEager:
      return "eager";
  }
  return "?";
}

DedupAgent::DedupAgent(Cluster& cluster, RegistryBackend& registry, RdmaFabric& fabric,
                       DedupAgentOptions options)
    : cluster_(cluster),
      registry_(registry),
      fabric_(fabric),
      options_(options),
      fingerprinter_(options.fingerprint),
      pool_(std::make_unique<ThreadPool>(options.num_threads)),
      working_sets_(options.working_sets != nullptr
                        ? options.working_sets
                        : std::make_shared<WorkingSetTable>(options.working_set)) {}

double DedupAgent::ScaleFactor() const {
  return static_cast<double>(1 << 20) / static_cast<double>(cluster_.options().bytes_per_mb);
}

std::vector<PageFingerprint> DedupAgent::FingerprintPages(const MemoryCheckpoint& cp,
                                                          const std::vector<size_t>& pages) {
  std::vector<PageFingerprint> fingerprints(pages.size());
  pool_->ParallelFor(0, pages.size(), [&](size_t i) {
    fingerprints[i] = fingerprinter_.FingerprintPage(cp.PageData(pages[i]));
  });
  return fingerprints;
}

DedupOpResult DedupAgent::DedupOp(Sandbox& sb, SimTime now, const obs::TraceContext& ctx) {
  if (sb.state != SandboxState::kWarm) {
    throw std::logic_error("DedupOp: sandbox must be warm");
  }
  // Span-tree skeleton for this op: every stage context is a pure function
  // of the caller's context, so message spans sent from inside ParallelFor
  // below still get deterministic ids (the batch index is the ordinal).
  const obs::TraceContext op_ctx = ctx.Child("dedup_op");
  const obs::TraceContext lookup_ctx = op_ctx.Child("dedup/registry_lookup");
  const obs::TraceContext read_ctx = op_ctx.Child("dedup/base_read");
  // Re-dedup while a lazy restore's background phase is still outstanding:
  // the fresh checkpoint captured below supersedes the old one, so abandon
  // the pending fetch and release the leftover base refs instead of pulling
  // pages nobody will read.
  if (HasPendingBackgroundRestore(sb.id)) {
    for (const PatchRecord& record : sb.patches) {
      for (const PageLocation& base : record.bases) {
        registry_.Unref(base.sandbox);
      }
    }
    sb.patches.clear();
    sb.checkpoint.reset();
    AbandonBackgroundRestore(sb.id);
  }
  DedupOpResult result;
  const double scale = ScaleFactor();

  // 1. Memory checkpoint of the warm sandbox.
  MemoryImage image = cluster_.BuildImage(sb);
  MemoryCheckpoint cp = MemoryCheckpoint::Capture(image);
  result.pages_total = cp.NumPages();
  result.pages_zero = cp.NumZero();
  result.checkpoint_time = SimDuration{static_cast<int64_t>(
      static_cast<double>(options_.criu.capture_per_page.value()) *
      static_cast<double>(cp.NumPages()) * scale)};

  std::vector<size_t> resident;
  resident.reserve(cp.NumPages());
  for (size_t page = 0; page < cp.NumPages(); ++page) {
    if (cp.SlotState(page) == PageSlotState::kResident) {
      resident.push_back(page);
    }
  }
  const size_t n = resident.size();

  // 2. Fingerprint every resident page (parallel).
  std::vector<PageFingerprint> fingerprints = FingerprintPages(cp, resident);

  // 3. Registry lookups, batched and fanned out (parallel; the registry's
  // striped locks let lookups proceed concurrently, and each task's
  // FindBasePagesBatch call amortises shard locking across a batch). Each
  // batch also reports its modelled cost — a pure function of the batch's
  // contents — into its own slot, so the serial sum below is identical at
  // every thread count.
  std::vector<std::vector<BasePageCandidate>> candidates(n);
  const size_t batch = std::max<size_t>(options_.lookup_batch_pages, 1);
  const size_t num_batches = (n + batch - 1) / batch;
  std::vector<SimDuration> batch_costs(num_batches);
  // Lookups leave the node once the checkpoint is captured; the batch index
  // is the ordinal, so message span ids are independent of which worker
  // issues which batch.
  const SimTime lookup_at = now + result.checkpoint_time;
  pool_->ParallelFor(0, num_batches, [&](size_t b) {
    const size_t lo = b * batch;
    const size_t hi = std::min(n, lo + batch);
    auto out = registry_.FindBasePagesBatch(
        std::span<const PageFingerprint>(fingerprints).subspan(lo, hi - lo), sb.node, sb.id,
        options_.max_base_pages_per_page, &batch_costs[b],
        obs::MessageTrace{lookup_ctx, lookup_at, b});
    std::move(out.begin(), out.end(), candidates.begin() + static_cast<ptrdiff_t>(lo));
  });
  SimDuration lookup_cost;
  for (SimDuration c : batch_costs) {
    lookup_cost += c;
  }

  // Tiered-store residency: touch each candidate base sandbox's registry
  // entry once, at this serial join (first appearance in canonical page
  // order — never inside the parallel lookup above, where worker
  // interleaving would reorder CLOCK updates). An entry evicted to the cold
  // tier charges its demand-page fetch into the op's lookup cost.
  if (options_.state_store != nullptr) {
    std::unordered_set<SandboxId> touched;
    for (size_t i = 0; i < n; ++i) {
      for (const BasePageCandidate& candidate : candidates[i]) {
        if (touched.insert(candidate.location.sandbox).second) {
          options_.state_store->TouchRegistryEntry(candidate.location.sandbox, &lookup_cost);
        }
      }
    }
  }

  // Lookup time is now final (state-store touches included); scale it here
  // so the base-read stage below knows its position in the op's timeline.
  result.lookup_time =
      SimDuration{static_cast<int64_t>(static_cast<double>(lookup_cost.value()) * scale)};

  // 4. Base-page reads, serial in canonical page order: the fabric cache's
  // hit/miss sequence — and therefore the modelled RDMA cost — depends only
  // on page order, never on worker interleaving. A read dropped by the
  // transport's fault policy degrades that page to unique (the candidate is
  // discarded) instead of failing the op.
  SimDuration rdma_cost;
  const SimTime read_at = lookup_at + result.lookup_time;
  uint64_t read_ordinal = 0;
  std::vector<std::vector<uint8_t>> base_bytes(n);
  for (size_t i = 0; i < n; ++i) {
    if (candidates[i].empty()) {
      continue;
    }
    // The patch is computed against the concatenation of the chosen base
    // page(s); restore must fetch them all.
    base_bytes[i].reserve(candidates[i].size() * kPageSize);
    try {
      for (const BasePageCandidate& candidate : candidates[i]) {
        std::vector<uint8_t> one = fabric_.ReadPage(candidate.location, sb.node, &rdma_cost,
                                                    obs::MessageTrace{read_ctx, read_at,
                                                                      read_ordinal++});
        base_bytes[i].insert(base_bytes[i].end(), one.begin(), one.end());
      }
    } catch (const RdmaUnavailable&) {
      candidates[i].clear();  // counted unique in the merge
      base_bytes[i].clear();
    }
  }

  // 5. Delta-encode against the chosen bases (parallel; the accept decision
  // is per-page and deterministic). Each worker encodes into thread-local
  // scratch — seed-index slots and patch bytes — so the steady state
  // allocates only the exact-size copy of each accepted patch.
  std::vector<std::vector<uint8_t>> patches(n);
  std::vector<uint8_t> accepted(n, 0);
  pool_->ParallelFor(0, n, [&](size_t i) {
    if (candidates[i].empty()) {
      return;
    }
    thread_local DeltaScratch delta_scratch;
    thread_local std::vector<uint8_t> patch_buf;
    try {
      DeltaEncodeInto(base_bytes[i], cp.PageData(resident[i]), options_.delta, patch_buf,
                      &delta_scratch);
    } catch (const DeltaError&) {
      return;  // counted unique in the merge
    }
    if (static_cast<double>(patch_buf.size()) >
        options_.patch_accept_max_ratio * static_cast<double>(kPageSize)) {
      return;  // patch too big to be worth it
    }
    patches[i].assign(patch_buf.begin(), patch_buf.end());
    accepted[i] = 1;
  });

  // 6. Merge in page order: counters, refcounts, patch records, slot edits.
  sb.patches.clear();
  for (size_t i = 0; i < n; ++i) {
    const size_t page = resident[i];
    if (accepted[i] == 0) {
      ++result.pages_unique;
      continue;
    }
    result.patch_bytes += patches[i].size();
    result.saved_bytes += kPageSize - patches[i].size();
    ++result.pages_deduped;
    const BaseSnapshot* snap = cluster_.FindBaseSnapshot(candidates[i].front().location.sandbox);
    if (snap != nullptr && snap->function == sb.function) {
      ++result.same_function_pages;
    } else {
      ++result.cross_function_pages;
    }
    PatchRecord record;
    record.page = PageIndex{static_cast<uint32_t>(page)};
    for (const BasePageCandidate& candidate : candidates[i]) {
      registry_.Ref(candidate.location.sandbox);
      record.bases.push_back(candidate.location);
    }
    sb.patches.push_back(std::move(record));
    cp.ReplaceWithPatch(page, std::move(patches[i]));
  }
  // Zero pages also count as saved memory relative to the warm state.
  result.saved_bytes += result.pages_zero * kPageSize;

  result.patch_time =
      SimDuration{static_cast<int64_t>(static_cast<double>(rdma_cost.value()) * scale)} +
      SimDuration{static_cast<int64_t>(static_cast<double>(result.patch_bytes) * scale /
                                       options_.patch_bytes_per_us)};
  result.total_time = result.checkpoint_time + result.lookup_time + result.patch_time;

  // Prepare namespaces / process tree now so dedup starts skip it.
  cp.set_namespaces_prepared(true);
  sb.namespaces_prepared = true;
  if (!options_.keep_payloads) {
    cp.DropPayloads();
  }
  sb.checkpoint = std::move(cp);
  cluster_.MarkDedup(sb, now);
  {
    MutexLock lock(stats_mu_);
    ++stats_.dedup_ops;
    stats_.pages_deduped += result.pages_deduped;
    stats_.patch_bytes += result.patch_bytes;
    stats_.saved_bytes += result.saved_bytes;
  }
  if (obs::MetricsEnabled()) {
    const AgentInstruments& ins = Instruments();
    ins.dedup_ops->Add(1);
    ins.pages_deduped->Add(result.pages_deduped);
    ins.pages_unique->Add(result.pages_unique);
    ins.patch_bytes->Add(result.patch_bytes);
    ins.saved_bytes->Add(result.saved_bytes);
    ins.dedup_op_us->Record(result.total_time.value());
    ins.dedup_checkpoint_us->Record(result.checkpoint_time.value());
    ins.dedup_lookup_us->Record(result.lookup_time.value());
    ins.dedup_patch_us->Record(result.patch_time.value());
  }
  if (obs::TraceEnabled()) {
    // One span per pipeline stage, laid out sequentially from `now` in the
    // op's modelled timeline. Base reads and delta encoding split patch_time
    // into its wire and compute terms.
    const SimDuration base_read_time =
        SimDuration{static_cast<int64_t>(static_cast<double>(rdma_cost.value()) * scale)};
    const SimDuration delta_time = result.patch_time - base_read_time;
    obs::ScopedSpan op("dedup_op", "dedup", now, sb.node.value(), op_ctx);
    op.SetSimDuration(result.total_time);
    op.AddArg("pages", static_cast<int64_t>(result.pages_total));
    op.AddArg("deduped", static_cast<int64_t>(result.pages_deduped));
    op.AddArg("patch_bytes", static_cast<int64_t>(result.patch_bytes));
    SimTime cursor = now;
    // Stage contexts re-derive via op_ctx.Child(name) — the same pure
    // function the message sends above used, so the recorded lookup/read
    // stage spans carry exactly the ids their wire children point at.
    auto stage = [&](const char* name, SimDuration dur) {
      obs::ScopedSpan span(name, "dedup", cursor, sb.node.value(), op_ctx.Child(name));
      span.SetSimDuration(dur);
      cursor += dur;
    };
    stage("dedup/checkpoint", result.checkpoint_time);
    stage("dedup/fingerprint", SimDuration{});
    stage("dedup/registry_lookup", result.lookup_time);
    stage("dedup/base_read", base_read_time);
    stage("dedup/delta_encode", delta_time);
    obs::RecordInstant("dedup/merge", "dedup", cursor, sb.node.value(),
                       op_ctx.Child("dedup/merge"));
  }
  return result;
}

RestoreOpResult DedupAgent::RestoreOp(Sandbox& sb, SimTime now, bool verify,
                                      const obs::TraceContext& ctx) {
  if (sb.state != SandboxState::kDedup || !sb.checkpoint.has_value()) {
    throw std::logic_error("RestoreOp: sandbox not in dedup state");
  }
  return options_.restore_mode == RestoreMode::kEager ? RestoreEager(sb, now, verify, ctx)
                                                      : RestoreLazy(sb, now, verify, ctx);
}

RestoreOpResult DedupAgent::RestoreEager(Sandbox& sb, SimTime now, bool verify,
                                         const obs::TraceContext& ctx) {
  const obs::TraceContext op_ctx = ctx.Child("restore_op");
  const obs::TraceContext read_ctx = op_ctx.Child("restore/base_read");
  RestoreOpResult result;
  result.mode = RestoreMode::kEager;
  const double scale = ScaleFactor();
  MemoryCheckpoint& cp = *sb.checkpoint;
  const bool payloads = !cp.payloads_dropped();
  const size_t n = sb.patches.size();

  // 1. Base-page reads, serial in patch-record order (deterministic cache
  // behaviour — see DedupOp), plus refcount release.
  SimDuration rdma_cost;
  size_t patch_bytes_applied = 0;
  uint64_t read_ordinal = 0;
  std::vector<std::vector<uint8_t>> base_bytes(n);
  for (size_t i = 0; i < n; ++i) {
    const PatchRecord& record = sb.patches[i];
    base_bytes[i].reserve(record.bases.size() * kPageSize);
    for (const PageLocation& base : record.bases) {
      std::vector<uint8_t> one = fabric_.ReadPage(
          base, sb.node, &rdma_cost, obs::MessageTrace{read_ctx, now, read_ordinal++});
      ++result.base_pages_read;
      result.base_bytes_read += one.size();
      if (base.node != sb.node) {
        ++result.remote_reads;
      }
      base_bytes[i].insert(base_bytes[i].end(), one.begin(), one.end());
      registry_.Unref(base.sandbox);
    }
    patch_bytes_applied += cp.PatchSize(record.page.value());
  }

  // 2. Reconstruct original pages from patches (parallel). DeltaDecodeInto
  // writes straight into the output slot: the reconstructed page is required
  // storage anyway, and the pre-sized single-pass decode avoids the growth
  // reallocations DeltaDecode's incremental append would incur.
  std::vector<std::vector<uint8_t>> originals(n);
  pool_->ParallelFor(0, n, [&](size_t i) {
    if (payloads) {
      DeltaDecodeInto(base_bytes[i], cp.PatchData(sb.patches[i].page.value()), originals[i]);
    } else {
      originals[i] = std::vector<uint8_t>(kPageSize, 0);
    }
  });

  // 3. Merge: put the reconstructed bytes back, in record order.
  for (size_t i = 0; i < n; ++i) {
    cp.RestorePage(sb.patches[i].page.value(), std::move(originals[i]));
  }

  result.read_base_time =
      SimDuration{static_cast<int64_t>(static_cast<double>(rdma_cost.value()) * scale)};
  result.compute_time = SimDuration{static_cast<int64_t>(
      static_cast<double>(result.base_bytes_read + patch_bytes_applied) * scale /
      options_.patch_bytes_per_us)};
  SimDuration criu = SimDuration{static_cast<int64_t>(
      static_cast<double>(options_.criu.restore_per_page.value()) *
      static_cast<double>(cp.NumPages()) * scale)};
  if (!sb.namespaces_prepared) {
    criu += options_.criu.namespace_and_ptree;
  }
  result.sandbox_restore_time = criu;
  result.total_time = result.read_base_time + result.compute_time + result.sandbox_restore_time;
  result.critical_path_time = result.total_time;

  if (verify && payloads) {
    std::vector<uint8_t> reconstructed = cp.ToBytes();
    MemoryImage original = cluster_.BuildImage(sb);
    if (reconstructed.size() != original.SizeBytes() ||
        std::memcmp(reconstructed.data(), original.bytes().data(), reconstructed.size()) != 0) {
      throw std::logic_error("RestoreOp: reconstruction does not match the original image");
    }
    result.verified = true;
  }

  sb.patches.clear();
  cluster_.MarkRestored(sb, now);
  {
    MutexLock lock(stats_mu_);
    ++stats_.restore_ops;
    stats_.pages_restored += n;
    stats_.base_bytes_read += result.base_bytes_read;
  }
  if (obs::MetricsEnabled()) {
    const AgentInstruments& ins = Instruments();
    ins.restore_ops->Add(1);
    ins.base_pages_read->Add(result.base_pages_read);
    ins.restore_op_us->Record(result.total_time.value());
    ins.restore_base_read_us->Record(result.read_base_time.value());
    ins.restore_compute_us->Record(result.compute_time.value());
    ins.restore_criu_us->Record(result.sandbox_restore_time.value());
  }
  if (obs::TraceEnabled()) {
    // The three restore components of the paper's Fig. 8, sequential in the
    // modelled timeline: base page reading, original page computing, and
    // sandbox restoration (CRIU rebuild).
    obs::ScopedSpan op("restore_op", "restore", now, sb.node.value(), op_ctx);
    op.SetSimDuration(result.total_time);
    op.AddArg("patched_pages", static_cast<int64_t>(n));
    op.AddArg("base_pages_read", static_cast<int64_t>(result.base_pages_read));
    op.AddArg("remote_reads", static_cast<int64_t>(result.remote_reads));
    SimTime cursor = now;
    auto stage = [&](const char* name, SimDuration dur) {
      obs::ScopedSpan span(name, "restore", cursor, sb.node.value(), op_ctx.Child(name));
      span.SetSimDuration(dur);
      cursor += dur;
    };
    stage("restore/base_read", result.read_base_time);
    stage("restore/patch_apply", result.compute_time);
    stage("restore/criu_rebuild", result.sandbox_restore_time);
  }
  return result;
}

std::vector<std::vector<uint8_t>> DedupAgent::FetchBasesBatched(
    Sandbox& sb, const std::vector<size_t>& records, SimDuration* cost, size_t* pages_read,
    size_t* bytes_read, size_t* remote_reads, const obs::MessageTrace& trace) {
  std::vector<PageLocation> locations;
  size_t total_bases = 0;
  for (size_t idx : records) {
    total_bases += sb.patches[idx].bases.size();
  }
  locations.reserve(total_bases);
  for (size_t idx : records) {
    for (const PageLocation& base : sb.patches[idx].bases) {
      locations.push_back(base);
    }
  }
  std::vector<std::vector<uint8_t>> pages =
      fabric_.ReadPageBatch(locations, sb.node, cost, trace);
  std::vector<std::vector<uint8_t>> base_bytes(records.size());
  size_t k = 0;
  for (size_t j = 0; j < records.size(); ++j) {
    const PatchRecord& record = sb.patches[records[j]];
    base_bytes[j].reserve(record.bases.size() * kPageSize);
    for (const PageLocation& base : record.bases) {
      std::vector<uint8_t>& one = pages[k++];
      ++*pages_read;
      *bytes_read += one.size();
      if (base.node != sb.node) {
        ++*remote_reads;
      }
      base_bytes[j].insert(base_bytes[j].end(), one.begin(), one.end());
      registry_.Unref(base.sandbox);
    }
  }
  return base_bytes;
}

size_t DedupAgent::DecodeAndRestore(Sandbox& sb, const std::vector<size_t>& records,
                                    std::vector<std::vector<uint8_t>>& base_bytes) {
  MemoryCheckpoint& cp = *sb.checkpoint;
  const bool payloads = !cp.payloads_dropped();
  size_t patch_bytes_applied = 0;
  for (size_t idx : records) {
    patch_bytes_applied += cp.PatchSize(sb.patches[idx].page.value());
  }
  std::vector<std::vector<uint8_t>> originals(records.size());
  pool_->ParallelFor(0, records.size(), [&](size_t j) {
    if (payloads) {
      DeltaDecodeInto(base_bytes[j], cp.PatchData(sb.patches[records[j]].page.value()),
                      originals[j]);
    } else {
      originals[j] = std::vector<uint8_t>(kPageSize, 0);
    }
  });
  for (size_t j = 0; j < records.size(); ++j) {
    cp.RestorePage(sb.patches[records[j]].page.value(), std::move(originals[j]));
  }
  return patch_bytes_applied;
}

RestoreOpResult DedupAgent::RestoreLazy(Sandbox& sb, SimTime now, bool verify,
                                        const obs::TraceContext& ctx) {
  const obs::TraceContext op_ctx = ctx.Child("restore_op");
  RestoreOpResult result;
  result.mode = RestoreMode::kLazy;
  const double scale = ScaleFactor();
  MemoryCheckpoint& cp = *sb.checkpoint;
  const bool payloads = !cp.payloads_dropped();
  const size_t num_pages = cp.NumPages();
  const FunctionProfile& profile = cluster_.ProfileOf(sb);
  auto scaled = [](double v) { return SimDuration{static_cast<int64_t>(v)}; };

  // 1. Predict the working set from *prior* invocations, then model the
  // upcoming invocation's touched pages and fold them into the EMA. An
  // unprofiled function prefetches the full image — the self-warming first
  // restore behaves exactly like an eager one (minus read batching).
  std::optional<std::vector<PageIndex>> predicted =
      working_sets_->Predict(sb.function, num_pages);
  std::vector<uint8_t> in_ws(num_pages, 1);
  if (predicted.has_value()) {
    std::fill(in_ws.begin(), in_ws.end(), 0);
    for (PageIndex p : *predicted) {
      in_ws[p.value()] = 1;
    }
    result.ws_predicted_pages = predicted->size();
  } else {
    result.ws_predicted_pages = num_pages;
  }
  const std::vector<PageIndex> touched =
      PostResumeAccessTrace(profile, num_pages, sb.generation + 1);
  result.ws_touched_pages = touched.size();
  std::vector<uint8_t> touched_map(num_pages, 0);
  for (PageIndex p : touched) {
    touched_map[p.value()] = 1;
    if (in_ws[p.value()] != 0) {
      ++result.ws_hit_pages;
    } else {
      ++result.ws_fault_pages;
    }
  }
  working_sets_->Record(sb.function, touched, num_pages);

  // 2. Partition the patch records: critical path (predicted working set),
  // demand faults (touched but not predicted), background (everything else).
  std::vector<size_t> critical_records;
  std::vector<size_t> fault_records;
  std::vector<size_t> background_records;
  for (size_t i = 0; i < sb.patches.size(); ++i) {
    const uint32_t page = sb.patches[i].page.value();
    if (in_ws[page] != 0) {
      critical_records.push_back(i);
    } else if (touched_map[page] != 0) {
      fault_records.push_back(i);
    } else {
      background_records.push_back(i);
    }
  }

  // 3. Critical path: one batched fetch of the working set's bases (one
  // coalesced message per owner node), parallel decode, and a CRIU rebuild
  // that maps only the predicted pages.
  SimDuration ws_fetch_cost;
  std::vector<std::vector<uint8_t>> critical_bases = FetchBasesBatched(
      sb, critical_records, &ws_fetch_cost, &result.base_pages_read, &result.base_bytes_read,
      &result.remote_reads, obs::MessageTrace{op_ctx.Child("restore/ws_fetch"), now, 0});
  const size_t critical_base_bytes = result.base_bytes_read;
  const size_t critical_patch_bytes = DecodeAndRestore(sb, critical_records, critical_bases);

  // Critical-phase timing (the Fig. 8 components) is final here; computing
  // it before the fault loop lets the on-demand fetches below anchor their
  // wire spans after resume, where they land in the modelled timeline.
  result.read_base_time = scaled(static_cast<double>(ws_fetch_cost.value()) * scale);
  result.compute_time =
      scaled(static_cast<double>(critical_base_bytes + critical_patch_bytes) * scale /
             options_.patch_bytes_per_us);
  SimDuration criu = scaled(static_cast<double>(options_.criu.restore_per_page.value()) *
                            static_cast<double>(result.ws_predicted_pages) * scale);
  if (!sb.namespaces_prepared) {
    criu += options_.criu.namespace_and_ptree;
  }
  result.sandbox_restore_time = criu;
  result.critical_path_time =
      result.read_base_time + result.compute_time + result.sandbox_restore_time;

  // 4. Demand faults: touched pages the prediction missed. Still-patched
  // ones pay an unbatched on-demand fetch + decode; every mispredicted
  // touch pays the minor-fault trap cost. This is the penalty that keeps a
  // bad working set from being free.
  SimDuration fault_fetch_cost;
  size_t fault_base_bytes = 0;
  const obs::TraceContext fault_ctx = op_ctx.Child("restore/fault_fetch");
  const SimTime fault_at = now + result.critical_path_time;
  uint64_t fault_ordinal = 0;
  std::vector<std::vector<uint8_t>> fault_bases(fault_records.size());
  for (size_t j = 0; j < fault_records.size(); ++j) {
    const PatchRecord& record = sb.patches[fault_records[j]];
    fault_bases[j].reserve(record.bases.size() * kPageSize);
    for (const PageLocation& base : record.bases) {
      std::vector<uint8_t> one = fabric_.ReadPage(
          base, sb.node, &fault_fetch_cost, obs::MessageTrace{fault_ctx, fault_at, fault_ordinal++});
      ++result.base_pages_read;
      result.base_bytes_read += one.size();
      fault_base_bytes += one.size();
      if (base.node != sb.node) {
        ++result.remote_reads;
      }
      fault_bases[j].insert(fault_bases[j].end(), one.begin(), one.end());
      registry_.Unref(base.sandbox);
    }
  }
  const size_t fault_patch_bytes = DecodeAndRestore(sb, fault_records, fault_bases);

  // 5. Post-resume fault penalty (the platform still charges it to the
  // request's startup).
  result.fault_time =
      scaled((static_cast<double>(options_.minor_fault_cost.value()) *
                  static_cast<double>(result.ws_fault_pages) +
              static_cast<double>(options_.major_fault_cost.value()) *
                  static_cast<double>(fault_records.size()) +
              static_cast<double>(fault_fetch_cost.value())) *
                 scale +
             static_cast<double>(fault_base_bytes + fault_patch_bytes) * scale /
                 options_.patch_bytes_per_us);
  result.total_time = result.critical_path_time + result.fault_time;

  // 6. Background bookkeeping. With nothing deferred the restore completed
  // in one phase: verify now and release the checkpoint. Otherwise keep the
  // background records (and their base refs) on the sandbox and remember
  // the expected image digest — the source image regenerates differently
  // once the sandbox runs again, so verification must pin it here.
  result.background_pages = background_records.size();
  result.background_pending = !background_records.empty();
  if (!result.background_pending) {
    if (verify && payloads) {
      std::vector<uint8_t> reconstructed = cp.ToBytes();
      MemoryImage original = cluster_.BuildImage(sb);
      if (reconstructed.size() != original.SizeBytes() ||
          std::memcmp(reconstructed.data(), original.bytes().data(), reconstructed.size()) != 0) {
        throw std::logic_error("RestoreLazy: reconstruction does not match the original image");
      }
      result.verified = true;
    }
    sb.patches.clear();
    cluster_.MarkRestored(sb, now, /*release_checkpoint=*/true);
  } else {
    std::vector<PatchRecord> remaining;
    remaining.reserve(background_records.size());
    for (size_t idx : background_records) {
      remaining.push_back(std::move(sb.patches[idx]));
    }
    sb.patches = std::move(remaining);
    PendingRestore pending;
    pending.verify = verify && payloads;
    pending.ctx = op_ctx;
    if (pending.verify) {
      MemoryImage original = cluster_.BuildImage(sb);
      pending.expected = Sha1::Hash(original.bytes());
    }
    {
      MutexLock lock(pending_mu_);
      pending_[sb.id] = pending;
    }
    cluster_.MarkRestored(sb, now, /*release_checkpoint=*/false);
  }

  {
    MutexLock lock(stats_mu_);
    ++stats_.restore_ops;
    ++stats_.lazy_restores;
    stats_.pages_restored += critical_records.size() + fault_records.size();
    stats_.base_bytes_read += result.base_bytes_read;
    stats_.ws_fault_pages += result.ws_fault_pages;
  }
  if (obs::MetricsEnabled()) {
    const AgentInstruments& ins = Instruments();
    ins.restore_ops->Add(1);
    ins.base_pages_read->Add(result.base_pages_read);
    ins.ws_hit_pages->Add(result.ws_hit_pages);
    ins.ws_fault_pages->Add(result.ws_fault_pages);
    ins.background_pages->Add(result.background_pages);
    ins.restore_op_us->Record(result.total_time.value());
    ins.restore_base_read_us->Record(result.read_base_time.value());
    ins.restore_compute_us->Record(result.compute_time.value());
    ins.restore_criu_us->Record(result.sandbox_restore_time.value());
    ins.restore_critical_us->Record(result.critical_path_time.value());
    ins.restore_fault_us->Record(result.fault_time.value());
  }
  if (obs::TraceEnabled()) {
    // Critical phase laid out sequentially; the fault penalty is an arg on
    // the op span (it has no fixed position in the modelled timeline).
    obs::ScopedSpan op("restore_op", "restore", now, sb.node.value(), op_ctx);
    op.SetSimDuration(result.total_time);
    op.AddArg("patched_pages", static_cast<int64_t>(sb.patches.size() + critical_records.size() +
                                                    fault_records.size()));
    op.AddArg("ws_predicted", static_cast<int64_t>(result.ws_predicted_pages));
    op.AddArg("ws_hits", static_cast<int64_t>(result.ws_hit_pages));
    op.AddArg("ws_faults", static_cast<int64_t>(result.ws_fault_pages));
    op.AddArg("background_pages", static_cast<int64_t>(result.background_pages));
    op.AddArg("fault_us", result.fault_time.value());
    SimTime cursor = now;
    auto stage = [&](const char* name, SimDuration dur) {
      obs::ScopedSpan span(name, "restore", cursor, sb.node.value(), op_ctx.Child(name));
      span.SetSimDuration(dur);
      cursor += dur;
    };
    stage("restore/ws_fetch", result.read_base_time);
    stage("restore/patch_apply", result.compute_time);
    stage("restore/criu_rebuild", result.sandbox_restore_time);
    if (!fault_records.empty()) {
      // Anchors the on-demand fetches' wire spans: they were parented to
      // this context, so it must be recorded for parent links to resolve.
      obs::ScopedSpan faults("restore/fault_fetch", "restore", cursor, sb.node.value(),
                             op_ctx.Child("restore/fault_fetch"));
      faults.SetSimDuration(result.fault_time);
      faults.AddArg("pages", static_cast<int64_t>(fault_records.size()));
    }
  }
  return result;
}

BackgroundRestoreResult DedupAgent::CompleteBackgroundRestore(Sandbox& sb, SimTime now) {
  PendingRestore pending;
  {
    MutexLock lock(pending_mu_);
    auto it = pending_.find(sb.id);
    if (it == pending_.end()) {
      return {};
    }
    pending = it->second;
    pending_.erase(it);
  }
  if (!sb.checkpoint.has_value()) {
    return {};  // superseded (re-deduped) between scheduling and firing
  }
  BackgroundRestoreResult result;
  const double scale = ScaleFactor();
  MemoryCheckpoint& cp = *sb.checkpoint;

  // Same trace as the restore op that deferred this work: the background
  // span is a child of the op span captured in the pending record.
  const obs::TraceContext bg_ctx = pending.ctx.Child("restore/bg_fault");
  std::vector<size_t> records(sb.patches.size());
  for (size_t i = 0; i < records.size(); ++i) {
    records[i] = i;
  }
  SimDuration fetch_cost;
  std::vector<std::vector<uint8_t>> bases =
      FetchBasesBatched(sb, records, &fetch_cost, &result.base_pages_read,
                        &result.base_bytes_read, &result.remote_reads,
                        obs::MessageTrace{bg_ctx, now, 0});
  const size_t patch_bytes = DecodeAndRestore(sb, records, bases);
  result.pages = records.size();
  result.total_time =
      SimDuration{static_cast<int64_t>(static_cast<double>(fetch_cost.value()) * scale)} +
      SimDuration{static_cast<int64_t>(
          static_cast<double>(result.base_bytes_read + patch_bytes) * scale /
          options_.patch_bytes_per_us)} +
      SimDuration{static_cast<int64_t>(static_cast<double>(options_.criu.restore_per_page.value()) *
                                       static_cast<double>(result.pages) * scale)};

  if (pending.verify && !cp.payloads_dropped()) {
    std::vector<uint8_t> reconstructed = cp.ToBytes();
    if (Sha1::Hash(reconstructed) != pending.expected) {
      throw std::logic_error(
          "CompleteBackgroundRestore: reconstruction does not match the image digest");
    }
    result.verified = true;
  }
  sb.patches.clear();
  sb.checkpoint.reset();

  {
    MutexLock lock(stats_mu_);
    ++stats_.background_completions;
    stats_.background_pages += result.pages;
    stats_.pages_restored += result.pages;
    stats_.base_bytes_read += result.base_bytes_read;
  }
  if (obs::MetricsEnabled()) {
    const AgentInstruments& ins = Instruments();
    ins.base_pages_read->Add(result.base_pages_read);
    ins.restore_background_us->Record(result.total_time.value());
  }
  if (obs::TraceEnabled()) {
    obs::ScopedSpan span("restore/bg_fault", "restore", now, sb.node.value(), bg_ctx);
    span.SetSimDuration(result.total_time);
    span.AddArg("pages", static_cast<int64_t>(result.pages));
    span.AddArg("base_pages_read", static_cast<int64_t>(result.base_pages_read));
    span.AddArg("verified", static_cast<int64_t>(result.verified ? 1 : 0));
  }
  return result;
}

bool DedupAgent::HasPendingBackgroundRestore(SandboxId id) const {
  MutexLock lock(pending_mu_);
  return pending_.contains(id);
}

void DedupAgent::AbandonBackgroundRestore(SandboxId id) {
  MutexLock lock(pending_mu_);
  pending_.erase(id);
}

BaseSnapshot& DedupAgent::DesignateBase(Sandbox& sb, SimTime now, const obs::TraceContext& ctx) {
  if (sb.state != SandboxState::kWarm) {
    throw std::logic_error("DesignateBase: sandbox must be warm");
  }
  // Recorded even when untraced (legacy behaviourally invisible: spans
  // without ids only appear once tracing is on). The designation span
  // anchors the registry-insert wire spans sent below.
  const obs::TraceContext designate_ctx = ctx.Child("designate_base");
  obs::ScopedSpan designate("designate_base", "dedup", now, sb.node.value(), designate_ctx);
  MemoryImage image = cluster_.BuildImage(sb);
  MemoryCheckpoint cp = MemoryCheckpoint::Capture(image);
  std::vector<size_t> resident;
  resident.reserve(cp.NumPages());
  for (size_t page = 0; page < cp.NumPages(); ++page) {
    if (cp.SlotState(page) == PageSlotState::kResident) {
      resident.push_back(page);
    }
  }
  std::vector<PageFingerprint> resident_fps = FingerprintPages(cp, resident);
  // Zero pages keep empty fingerprints (not inserted into the registry).
  std::vector<PageFingerprint> fingerprints(cp.NumPages());
  for (size_t i = 0; i < resident.size(); ++i) {
    fingerprints[resident[i]] = std::move(resident_fps[i]);
  }
  registry_.InsertBaseSandbox(sb.node, sb.id, fingerprints,
                              obs::MessageTrace{designate_ctx, now, 0});
  // Append the base's resident pages to the tiered store — but only when
  // the insert actually registered (a transport drop leaves the sandbox
  // unregistered, and an unregistered base must not be durable either).
  if (options_.state_store != nullptr && registry_.IsBaseSandbox(sb.id)) {
    obs::ScopedSpan span("store/base_append", "store", SimTime{});
    for (size_t page : resident) {
      options_.state_store->AppendBasePage(sb.node, sb.id, PageIndex{static_cast<uint32_t>(page)},
                                           cp.PageData(page));
    }
    span.AddArg("pages", static_cast<int64_t>(resident.size()));
  }
  {
    MutexLock lock(stats_mu_);
    ++stats_.bases_designated;
  }
  if (obs::MetricsEnabled()) {
    Instruments().bases_designated->Add(1);
  }
  return cluster_.AddBaseSnapshot(sb, std::move(cp));
}

DedupAgentStats DedupAgent::stats() const {
  MutexLock lock(stats_mu_);
  return stats_;
}

}  // namespace medes
