#include "dedupagent/dedup_agent.h"

#include <cstring>
#include <stdexcept>

#include "common/logging.h"

namespace medes {

DedupAgent::DedupAgent(Cluster& cluster, RegistryBackend& registry, RdmaFabric& fabric,
                       DedupAgentOptions options)
    : cluster_(cluster),
      registry_(registry),
      fabric_(fabric),
      options_(options),
      fingerprinter_(options.fingerprint) {}

double DedupAgent::ScaleFactor() const {
  return static_cast<double>(1 << 20) / static_cast<double>(cluster_.options().bytes_per_mb);
}

DedupOpResult DedupAgent::DedupOp(Sandbox& sb, SimTime now) {
  if (sb.state != SandboxState::kWarm) {
    throw std::logic_error("DedupOp: sandbox must be warm");
  }
  DedupOpResult result;
  const double scale = ScaleFactor();

  // 1. Memory checkpoint of the warm sandbox.
  MemoryImage image = cluster_.BuildImage(sb);
  MemoryCheckpoint cp = MemoryCheckpoint::Capture(image);
  result.pages_total = cp.NumPages();
  result.pages_zero = cp.NumZero();
  result.checkpoint_time = static_cast<SimDuration>(
      static_cast<double>(options_.criu.capture_per_page) *
      static_cast<double>(cp.NumPages()) * scale);

  // 2-5. Per page: fingerprint, registry lookup, base-page read, patch.
  SimDuration rdma_cost = 0;
  size_t lookups = 0;
  sb.patches.clear();
  for (size_t page = 0; page < cp.NumPages(); ++page) {
    if (cp.SlotState(page) != PageSlotState::kResident) {
      continue;
    }
    PageFingerprint fp = fingerprinter_.FingerprintPage(cp.PageData(page));
    ++lookups;
    std::vector<BasePageCandidate> candidates =
        registry_.FindBasePages(fp, sb.node, sb.id, options_.max_base_pages_per_page);
    if (candidates.empty()) {
      ++result.pages_unique;
      continue;
    }
    // The patch is computed against the concatenation of the chosen base
    // page(s); restore must fetch them all.
    std::vector<uint8_t> base_bytes;
    base_bytes.reserve(candidates.size() * kPageSize);
    for (const BasePageCandidate& candidate : candidates) {
      std::vector<uint8_t> one = fabric_.ReadPage(candidate.location, sb.node, &rdma_cost);
      base_bytes.insert(base_bytes.end(), one.begin(), one.end());
    }
    std::vector<uint8_t> patch;
    try {
      patch = DeltaEncode(base_bytes, cp.PageData(page), options_.delta);
    } catch (const DeltaError&) {
      ++result.pages_unique;
      continue;
    }
    if (static_cast<double>(patch.size()) >
        options_.patch_accept_max_ratio * static_cast<double>(kPageSize)) {
      ++result.pages_unique;  // patch too big to be worth it
      continue;
    }
    result.patch_bytes += patch.size();
    result.saved_bytes += kPageSize - patch.size();
    ++result.pages_deduped;
    const BaseSnapshot* snap = cluster_.FindBaseSnapshot(candidates.front().location.sandbox);
    if (snap != nullptr && snap->function == sb.function) {
      ++result.same_function_pages;
    } else {
      ++result.cross_function_pages;
    }
    PatchRecord record;
    record.page = static_cast<uint32_t>(page);
    for (const BasePageCandidate& candidate : candidates) {
      registry_.Ref(candidate.location.sandbox);
      record.bases.push_back(candidate.location);
    }
    sb.patches.push_back(std::move(record));
    cp.ReplaceWithPatch(page, std::move(patch));
  }
  // Zero pages also count as saved memory relative to the warm state.
  result.saved_bytes += result.pages_zero * kPageSize;

  result.lookup_time = static_cast<SimDuration>(
      static_cast<double>(options_.controller_lookup_per_page) * static_cast<double>(lookups) *
      scale);
  result.patch_time =
      static_cast<SimDuration>(static_cast<double>(rdma_cost) * scale) +
      static_cast<SimDuration>(static_cast<double>(result.patch_bytes) * scale /
                               options_.patch_bytes_per_us);
  result.total_time = result.checkpoint_time + result.lookup_time + result.patch_time;

  // Prepare namespaces / process tree now so dedup starts skip it.
  cp.set_namespaces_prepared(true);
  sb.namespaces_prepared = true;
  if (!options_.keep_payloads) {
    cp.DropPayloads();
  }
  sb.checkpoint = std::move(cp);
  cluster_.MarkDedup(sb, now);
  return result;
}

RestoreOpResult DedupAgent::RestoreOp(Sandbox& sb, SimTime now, bool verify) {
  if (sb.state != SandboxState::kDedup || !sb.checkpoint.has_value()) {
    throw std::logic_error("RestoreOp: sandbox not in dedup state");
  }
  RestoreOpResult result;
  const double scale = ScaleFactor();
  MemoryCheckpoint& cp = *sb.checkpoint;
  const bool payloads = !cp.payloads_dropped();

  SimDuration rdma_cost = 0;
  size_t patch_bytes_applied = 0;
  for (const PatchRecord& record : sb.patches) {
    std::vector<uint8_t> base_bytes;
    base_bytes.reserve(record.bases.size() * kPageSize);
    for (const PageLocation& base : record.bases) {
      std::vector<uint8_t> one = fabric_.ReadPage(base, sb.node, &rdma_cost);
      ++result.base_pages_read;
      result.base_bytes_read += one.size();
      if (base.node != sb.node) {
        ++result.remote_reads;
      }
      base_bytes.insert(base_bytes.end(), one.begin(), one.end());
      registry_.Unref(base.sandbox);
    }
    patch_bytes_applied += cp.PatchSize(record.page);
    if (payloads) {
      std::vector<uint8_t> original = DeltaDecode(base_bytes, cp.PatchData(record.page));
      cp.RestorePage(record.page, std::move(original));
    } else {
      cp.RestorePage(record.page, std::vector<uint8_t>(kPageSize, 0));
    }
  }

  result.read_base_time = static_cast<SimDuration>(static_cast<double>(rdma_cost) * scale);
  result.compute_time = static_cast<SimDuration>(
      static_cast<double>(result.base_bytes_read + patch_bytes_applied) * scale /
      options_.patch_bytes_per_us);
  SimDuration criu = static_cast<SimDuration>(
      static_cast<double>(options_.criu.restore_per_page) * static_cast<double>(cp.NumPages()) *
      scale);
  if (!sb.namespaces_prepared) {
    criu += options_.criu.namespace_and_ptree;
  }
  result.sandbox_restore_time = criu;
  result.total_time = result.read_base_time + result.compute_time + result.sandbox_restore_time;

  if (verify && payloads) {
    std::vector<uint8_t> reconstructed = cp.ToBytes();
    MemoryImage original = cluster_.BuildImage(sb);
    if (reconstructed.size() != original.SizeBytes() ||
        std::memcmp(reconstructed.data(), original.bytes().data(), reconstructed.size()) != 0) {
      throw std::logic_error("RestoreOp: reconstruction does not match the original image");
    }
    result.verified = true;
  }

  sb.patches.clear();
  cluster_.MarkRestored(sb, now);
  return result;
}

BaseSnapshot& DedupAgent::DesignateBase(Sandbox& sb) {
  if (sb.state != SandboxState::kWarm) {
    throw std::logic_error("DesignateBase: sandbox must be warm");
  }
  MemoryImage image = cluster_.BuildImage(sb);
  MemoryCheckpoint cp = MemoryCheckpoint::Capture(image);
  std::vector<PageFingerprint> fingerprints;
  fingerprints.reserve(cp.NumPages());
  for (size_t page = 0; page < cp.NumPages(); ++page) {
    if (cp.SlotState(page) == PageSlotState::kResident) {
      fingerprints.push_back(fingerprinter_.FingerprintPage(cp.PageData(page)));
    } else {
      fingerprints.emplace_back();  // zero pages are not inserted
    }
  }
  registry_.InsertBaseSandbox(sb.node, sb.id, fingerprints);
  return cluster_.AddBaseSnapshot(sb, std::move(cp));
}

}  // namespace medes
