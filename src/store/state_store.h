// The pluggable durability + tiering seam under the fingerprint registry and
// the base-page store.
//
// Everything above this seam (registry, RDMA fabric, dedup agent, platform)
// sees one interface, StateStore, with two backends:
//
//   - MemoryStore (store/memory_store.h): records are accounted but nothing
//     is written anywhere. The default; the deterministic-test path.
//   - LogStore (store/log_store.h): an append-only record log plus periodic
//     compacted checkpoints in a directory, with ctor-time crash recovery.
//
// Both backends share the bounded-memory model implemented in the base
// class: every registry entry (a base sandbox's fingerprint set) and every
// base page has a residency bit. When `ram_budget_bytes` is nonzero, a CLOCK
// (second-chance) policy evicts cold entries to the SSD tier; a later touch
// of an evicted entry charges the modelled SSD fetch cost
// (`ssd_read_latency` + bytes / `ssd_read_bytes_per_us`) into the caller's
// cost accumulator and promotes the entry back to hot. With the budget at 0
// (unbounded) nothing is ever evicted and touches charge zero — which is
// what makes the in-memory and persistent backends produce byte-identical
// dedup decisions and RunMetrics (persistence is pure spill, never a policy
// input; pinned by tests/registry_persistence_test.cc).
//
// Determinism contract: Touch*/Append* mutate shared CLOCK state, so they
// must only be called from serial points of the pipeline (the dedup agent's
// post-lookup join, the fabric's serial ReadPage paths) — never from
// ParallelFor workers. The call sites honour this; the store itself is
// internally locked only so concurrent *readers* of stats stay safe.
#ifndef MEDES_STORE_STATE_STORE_H_
#define MEDES_STORE_STATE_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "chunking/fingerprint.h"
#include "common/mutex.h"
#include "common/time.h"
#include "common/types.h"

namespace medes::store {

enum class StoreBackend {
  kMemory,      // accounting only; no durability (default)
  kPersistent,  // append-only log + compacted checkpoints on disk
};

const char* ToString(StoreBackend backend);

struct StoreOptions {
  StoreBackend backend = StoreBackend::kMemory;
  // Directory for the persistent backend's log + checkpoint files. Required
  // (non-empty) when backend == kPersistent.
  std::string directory;
  // Hot-tier RAM budget for registry entries + base pages. 0 = unbounded:
  // nothing is evicted and demand-paging costs are never charged.
  uint64_t ram_budget_bytes = 0;
  // Modelled cold-tier (SSD) fetch cost: fixed latency plus throughput term.
  SimDuration ssd_read_latency{80};       // ~80us NVMe read latency
  double ssd_read_bytes_per_us = 2000.0;  // ~2 GB/s sequential read
  // Persistent backend: fold the log into a compacted checkpoint every this
  // many appended records.
  uint64_t checkpoint_every_records = 4096;
};

// Backend-independent accounting. Lives in RunMetrics, so it must be
// byte-identical between backends at unbounded budget — durable-I/O counts
// live in DurabilityStats instead.
struct StoreStats {
  uint64_t appends = 0;            // Append* calls accepted
  uint64_t append_bytes = 0;       // logical bytes appended (page + fingerprint)
  uint64_t removes = 0;            // sandbox invalidations
  uint64_t registry_entries = 0;   // live registry entries tracked
  uint64_t base_pages = 0;         // live base pages tracked
  uint64_t hot_bytes = 0;          // resident (hot-tier) bytes
  uint64_t cold_bytes = 0;         // evicted (cold-tier) bytes
  uint64_t hot_hits = 0;           // touches that found the entry hot
  uint64_t cold_fetches = 0;       // touches that demand-paged a cold entry
  uint64_t cold_fetch_bytes = 0;   // bytes demand-paged back to hot
  uint64_t evictions = 0;          // hot -> cold demotions
  uint64_t ssd_time_us = 0;        // modelled SSD time charged to callers
  uint64_t peak_state_bytes = 0;   // high-water mark of hot + cold bytes
};

// Durable-I/O accounting for the persistent backend. Deliberately NOT part
// of RunMetrics: it differs between backends by construction.
struct DurabilityStats {
  uint64_t log_bytes = 0;          // bytes appended to the live log
  uint64_t checkpoints = 0;        // compactions performed
  uint64_t checkpoint_bytes = 0;   // bytes in the last written checkpoint
  uint64_t recoveries = 0;         // ctor-time recoveries performed
  uint64_t recovered_records = 0;  // records replayed during recovery
  uint64_t torn_bytes = 0;         // bytes truncated from torn log tails
};

// One base sandbox as reconstructed from checkpoint + log.
struct RecoveredSandbox {
  NodeId node = kInvalidNode;
  SandboxId sandbox = kNoSandbox;
  std::vector<PageFingerprint> fingerprints;
  // Base pages recorded for this sandbox, ascending page index.
  std::vector<std::pair<PageIndex, std::vector<uint8_t>>> pages;
};

// Result of crash recovery. `clean` is false when the log or checkpoint had
// to be truncated / discarded; the surviving `sandboxes` are still a
// prefix-consistent view (every entry was CRC-verified and in-sequence).
struct RecoveredState {
  std::vector<RecoveredSandbox> sandboxes;  // ascending sandbox id
  uint64_t checkpoint_records = 0;
  uint64_t log_records = 0;
  uint64_t stale_records = 0;   // log records already folded into the checkpoint
  uint64_t torn_bytes = 0;      // bytes dropped from the torn tail
  uint64_t corrupt_records = 0; // records rejected by magic/CRC/seq checks
  bool clean = true;
};

// Abstract store. Owns the residency model; subclasses add durability.
class StateStore {
 public:
  explicit StateStore(StoreOptions options);
  virtual ~StateStore() = default;

  StateStore(const StateStore&) = delete;
  StateStore& operator=(const StateStore&) = delete;

  const StoreOptions& options() const { return options_; }
  virtual const char* name() const = 0;

  // ---- Durable mutations -------------------------------------------------
  // Called by the registry (inserts/removals) and the dedup agent (base-page
  // writes) at serial points. Appends charge no modelled time: the log write
  // is off the critical path (group commit), and the paper's restore/dedup
  // latencies never include it.
  void AppendInsertSandbox(NodeId node, SandboxId sandbox,
                          const std::vector<PageFingerprint>& fingerprints);
  void AppendRemoveSandbox(SandboxId sandbox);
  void AppendBasePage(NodeId node, SandboxId sandbox, PageIndex page_index,
                      std::span<const uint8_t> page_bytes);

  // Forces the persistent backend to fold its log into a fresh checkpoint.
  // No-op for the memory backend.
  virtual void Checkpoint() {}

  // Returns the state recovered when this store was opened (the persistent
  // backend replays checkpoint + log tail in its constructor). The memory
  // backend always recovers empty/clean.
  [[nodiscard]] virtual RecoveredState Recover() = 0;

  // ---- Residency / tier model --------------------------------------------
  // Touches a base sandbox's registry entry (fingerprint set) on lookup. If
  // the entry was evicted to the cold tier, charges the modelled SSD fetch
  // into *cost and promotes it. Unknown entries are ignored.
  void TouchRegistryEntry(SandboxId sandbox, SimDuration* cost);
  // Same for one base page on ReadPage.
  void TouchBasePage(SandboxId sandbox, PageIndex page_index, SimDuration* cost);

  // While replaying recovered state back into a registry, re-inserts must
  // not be re-logged (they are already durable). Residency is still
  // admitted, so a recovered store has the same hot set as a fresh one.
  void SetReplaying(bool replaying);

  [[nodiscard]] StoreStats stats() const;
  [[nodiscard]] virtual DurabilityStats durability_stats() const { return {}; }

 protected:
  // Durable hooks, called with store_mu_ held, after residency accounting,
  // and only when not replaying.
  virtual void PersistInsertSandbox(NodeId /*node*/, SandboxId /*sandbox*/,
                                    const std::vector<PageFingerprint>& /*fingerprints*/)
      REQUIRES(store_mu_) {}
  virtual void PersistRemoveSandbox(SandboxId /*sandbox*/) REQUIRES(store_mu_) {}
  virtual void PersistBasePage(NodeId /*node*/, SandboxId /*sandbox*/, PageIndex /*page_index*/,
                               std::span<const uint8_t> /*page_bytes*/) REQUIRES(store_mu_) {}

  mutable Mutex store_mu_{"state store", LockRank::kStateStore};

 private:
  // Residency key: registry entries sort before pages of the same sandbox,
  // and an entire sandbox is one contiguous key range (removal = range
  // erase; iteration order is deterministic).
  struct TierKey {
    SandboxId sandbox = kNoSandbox;
    uint32_t kind = 0;  // 0 = registry entry, 1 = base page
    PageIndex page{0};

    friend constexpr auto operator<=>(const TierKey&, const TierKey&) = default;
  };

  struct Resident {
    uint64_t bytes = 0;
    bool hot = true;
    bool ref = true;  // CLOCK reference bit (hot entries only)
  };

  // Admits a new entry to the hot tier, evicting via CLOCK if over budget.
  void Admit(const TierKey& key, uint64_t bytes) REQUIRES(store_mu_);
  // Charges an SSD fetch for `bytes` into *cost and the stats.
  void ChargeFetch(uint64_t bytes, SimDuration* cost) REQUIRES(store_mu_);
  void Touch(const TierKey& key, SimDuration* cost) REQUIRES(store_mu_);
  void EvictUntilWithinBudget() REQUIRES(store_mu_);

  const StoreOptions options_;
  std::map<TierKey, Resident> residency_ GUARDED_BY(store_mu_);
  // CLOCK hand: the key the next eviction scan starts from.
  TierKey clock_hand_ GUARDED_BY(store_mu_);
  bool replaying_ GUARDED_BY(store_mu_) = false;
  StoreStats stats_ GUARDED_BY(store_mu_);
};

// Builds the backend selected by `options.backend`.
std::unique_ptr<StateStore> MakeStateStore(const StoreOptions& options);

}  // namespace medes::store

#endif  // MEDES_STORE_STATE_STORE_H_
