#include "store/state_store.h"

#include "store/log_store.h"
#include "store/memory_store.h"

namespace medes::store {

namespace {

// Logical RAM footprint of a registry entry (fingerprint set): a fixed
// header plus per-page and per-chunk costs. Deterministic by construction;
// only relative sizes matter to the eviction model.
uint64_t RegistryEntryBytes(const std::vector<PageFingerprint>& fingerprints) {
  uint64_t bytes = 24;
  for (const PageFingerprint& fp : fingerprints) {
    bytes += 8 + 12 * static_cast<uint64_t>(fp.chunks.size());
  }
  return bytes;
}

}  // namespace

const char* ToString(StoreBackend backend) {
  switch (backend) {
    case StoreBackend::kMemory:
      return "memory";
    case StoreBackend::kPersistent:
      return "persistent";
  }
  return "unknown";
}

StateStore::StateStore(StoreOptions options) : options_(std::move(options)) {}

void StateStore::AppendInsertSandbox(NodeId node, SandboxId sandbox,
                                     const std::vector<PageFingerprint>& fingerprints) {
  MutexLock lock(store_mu_);
  const uint64_t bytes = RegistryEntryBytes(fingerprints);
  ++stats_.appends;
  stats_.append_bytes += bytes;
  const TierKey key{sandbox, /*kind=*/0, PageIndex{0}};
  if (!residency_.contains(key)) {
    ++stats_.registry_entries;
  }
  Admit(key, bytes);
  if (!replaying_) {
    PersistInsertSandbox(node, sandbox, fingerprints);
  }
}

void StateStore::AppendRemoveSandbox(SandboxId sandbox) {
  MutexLock lock(store_mu_);
  ++stats_.removes;
  // The whole sandbox (registry entry + pages) is one contiguous key range.
  const TierKey lo{sandbox, /*kind=*/0, PageIndex{0}};
  SandboxId next = sandbox;
  ++next;
  const TierKey hi{next, /*kind=*/0, PageIndex{0}};
  auto it = residency_.lower_bound(lo);
  const auto end = residency_.lower_bound(hi);
  const bool hand_in_range = clock_hand_ >= lo && clock_hand_ < hi;
  while (it != end) {
    const Resident& r = it->second;
    if (r.hot) {
      stats_.hot_bytes -= r.bytes;
    } else {
      stats_.cold_bytes -= r.bytes;
    }
    if (it->first.kind == 0) {
      --stats_.registry_entries;
    } else {
      --stats_.base_pages;
    }
    it = residency_.erase(it);
  }
  if (hand_in_range) {
    clock_hand_ = it == residency_.end() ? TierKey{} : it->first;
  }
  if (!replaying_) {
    PersistRemoveSandbox(sandbox);
  }
}

void StateStore::AppendBasePage(NodeId node, SandboxId sandbox, PageIndex page_index,
                                std::span<const uint8_t> page_bytes) {
  MutexLock lock(store_mu_);
  ++stats_.appends;
  stats_.append_bytes += page_bytes.size();
  const TierKey key{sandbox, /*kind=*/1, page_index};
  if (!residency_.contains(key)) {
    ++stats_.base_pages;
  }
  Admit(key, page_bytes.size());
  if (!replaying_) {
    PersistBasePage(node, sandbox, page_index, page_bytes);
  }
}

void StateStore::TouchRegistryEntry(SandboxId sandbox, SimDuration* cost) {
  MutexLock lock(store_mu_);
  Touch(TierKey{sandbox, /*kind=*/0, PageIndex{0}}, cost);
}

void StateStore::TouchBasePage(SandboxId sandbox, PageIndex page_index, SimDuration* cost) {
  MutexLock lock(store_mu_);
  Touch(TierKey{sandbox, /*kind=*/1, page_index}, cost);
}

void StateStore::SetReplaying(bool replaying) {
  MutexLock lock(store_mu_);
  replaying_ = replaying;
}

StoreStats StateStore::stats() const {
  MutexLock lock(store_mu_);
  return stats_;
}

void StateStore::Admit(const TierKey& key, uint64_t bytes) {
  auto [it, inserted] = residency_.try_emplace(key);
  Resident& r = it->second;
  if (!inserted) {
    // Refresh: drop the old accounting before re-admitting.
    if (r.hot) {
      stats_.hot_bytes -= r.bytes;
    } else {
      stats_.cold_bytes -= r.bytes;
    }
  }
  r.bytes = bytes;
  r.hot = true;
  r.ref = true;
  stats_.hot_bytes += bytes;
  // Peak total state is what a bounded-memory run sizes its budget against
  // (bench/registry_persistence derives "50% RAM" from the unbounded peak).
  if (stats_.hot_bytes + stats_.cold_bytes > stats_.peak_state_bytes) {
    stats_.peak_state_bytes = stats_.hot_bytes + stats_.cold_bytes;
  }
  EvictUntilWithinBudget();
}

void StateStore::ChargeFetch(uint64_t bytes, SimDuration* cost) {
  const double fetch_us = static_cast<double>(bytes) / options_.ssd_read_bytes_per_us;
  const SimDuration fetch =
      options_.ssd_read_latency + SimDuration{static_cast<int64_t>(fetch_us)};
  ++stats_.cold_fetches;
  stats_.cold_fetch_bytes += bytes;
  stats_.ssd_time_us += static_cast<uint64_t>(fetch.value());
  if (cost != nullptr) {
    *cost += fetch;
  }
}

void StateStore::Touch(const TierKey& key, SimDuration* cost) {
  const auto it = residency_.find(key);
  if (it == residency_.end()) {
    return;  // not tracked (store unbound at insert time, or already removed)
  }
  Resident& r = it->second;
  if (r.hot) {
    r.ref = true;
    ++stats_.hot_hits;
    return;
  }
  // Demand-page the cold entry back to the hot tier.
  ChargeFetch(r.bytes, cost);
  r.hot = true;
  r.ref = true;
  stats_.cold_bytes -= r.bytes;
  stats_.hot_bytes += r.bytes;
  EvictUntilWithinBudget();
}

void StateStore::EvictUntilWithinBudget() {
  if (options_.ram_budget_bytes == 0) {
    return;  // unbounded: never evict, never charge
  }
  auto it = residency_.lower_bound(clock_hand_);
  // Loop invariant: hot_bytes > budget implies at least one hot entry, so a
  // full sweep always finds one; each visit either clears a ref bit or
  // evicts, so the scan terminates.
  while (stats_.hot_bytes > options_.ram_budget_bytes) {
    if (it == residency_.end()) {
      it = residency_.begin();
    }
    Resident& r = it->second;
    if (r.hot) {
      if (r.ref) {
        r.ref = false;  // second chance
      } else {
        r.hot = false;
        stats_.hot_bytes -= r.bytes;
        stats_.cold_bytes += r.bytes;
        ++stats_.evictions;
      }
    }
    ++it;
  }
  clock_hand_ = it == residency_.end() ? TierKey{} : it->first;
}

std::unique_ptr<StateStore> MakeStateStore(const StoreOptions& options) {
  switch (options.backend) {
    case StoreBackend::kMemory:
      return std::make_unique<MemoryStore>(options);
    case StoreBackend::kPersistent:
      return std::make_unique<LogStore>(options);
  }
  return std::make_unique<MemoryStore>(options);
}

}  // namespace medes::store
