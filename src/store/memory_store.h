// The in-memory StateStore backend: residency accounting with no
// durability. The default backend and the deterministic-test path — all
// authoritative state keeps living in FingerprintRegistry / Cluster RAM
// structures exactly as before the seam existed.
#ifndef MEDES_STORE_MEMORY_STORE_H_
#define MEDES_STORE_MEMORY_STORE_H_

#include "store/state_store.h"

namespace medes::store {

class MemoryStore final : public StateStore {
 public:
  explicit MemoryStore(StoreOptions options) : StateStore(std::move(options)) {}

  const char* name() const override { return "memory"; }

  // Nothing was ever persisted, so recovery is trivially empty and clean.
  [[nodiscard]] RecoveredState Recover() override { return RecoveredState{}; }
};

}  // namespace medes::store

#endif  // MEDES_STORE_MEMORY_STORE_H_
