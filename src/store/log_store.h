// The persistent StateStore backend: an append-only record log plus a
// periodically compacted checkpoint, both in one directory.
//
//   <dir>/medes.log        framed records (store/record.h), appended + flushed
//   <dir>/medes.ckpt       compacted full state: header + framed records
//   <dir>/medes.ckpt.tmp   checkpoint staging (renamed into place when done)
//
// Write path: every durable mutation becomes one log record with a strictly
// increasing sequence number, written and flushed before the call returns.
// Every `checkpoint_every_records` appends the full logical state is folded
// into a fresh checkpoint (written to the .tmp, fsync'd via stdio flush,
// renamed over the old checkpoint) and the log is truncated. The rename is
// the commit point: a crash before it keeps the old checkpoint + full log, a
// crash after it but before the log truncation leaves stale log records,
// which replay detects by sequence number and skips.
//
// Recovery (in the constructor) rebuilds logical state:
//   1. Checkpoint: parsed fully or discarded entirely — it is the base the
//      log deltas apply to, so a half-good checkpoint cannot be used
//      (fail closed: empty state, clean=false).
//   2. Log replay from last checkpointed seq + 1: CRC-clean in-sequence
//      records apply; records at or below the applied seq are stale
//      duplicates and are skipped; a torn tail is physically truncated; a
//      corrupt record or a sequence gap stops replay at the last good
//      prefix (clean=false). Recovery never serves bytes that fail a CRC.
//
// The recovered state is exposed through Recover() for the registry
// recovery driver (src/registry/registry_recovery.h), which re-validates
// every sandbox against the live cluster before re-inserting it.
#ifndef MEDES_STORE_LOG_STORE_H_
#define MEDES_STORE_LOG_STORE_H_

#include <cstdio>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "store/record.h"
#include "store/state_store.h"

namespace medes::store {

class LogStore final : public StateStore {
 public:
  // Opens (creating the directory if needed) and recovers. The result of
  // recovery is available via Recover() until destruction.
  explicit LogStore(StoreOptions options);
  ~LogStore() override;

  const char* name() const override { return "persistent"; }

  void Checkpoint() override;
  [[nodiscard]] RecoveredState Recover() override;
  [[nodiscard]] DurabilityStats durability_stats() const override;

 protected:
  void PersistInsertSandbox(NodeId node, SandboxId sandbox,
                            const std::vector<PageFingerprint>& fingerprints) override;
  void PersistRemoveSandbox(SandboxId sandbox) override;
  void PersistBasePage(NodeId node, SandboxId sandbox, PageIndex page_index,
                       std::span<const uint8_t> page_bytes) override;

 private:
  // Full logical state, kept current so checkpoints need no log re-read.
  struct LogicalSandbox {
    NodeId node = kInvalidNode;
    std::vector<PageFingerprint> fingerprints;
    std::map<PageIndex, std::vector<uint8_t>> pages;
  };

  std::string LogPath() const { return options().directory + "/medes.log"; }
  std::string CheckpointPath() const { return options().directory + "/medes.ckpt"; }

  void RecoverFromDisk() REQUIRES(store_mu_);
  void ApplyRecord(const Record& rec) REQUIRES(store_mu_);
  void AppendToLog(const std::vector<uint8_t>& bytes) REQUIRES(store_mu_);
  void MaybeCheckpoint() REQUIRES(store_mu_);
  void WriteCheckpoint() REQUIRES(store_mu_);

  std::FILE* log_ GUARDED_BY(store_mu_) = nullptr;
  std::map<SandboxId, LogicalSandbox> state_ GUARDED_BY(store_mu_);
  uint64_t next_seq_ GUARDED_BY(store_mu_) = 1;
  uint64_t appends_since_checkpoint_ GUARDED_BY(store_mu_) = 0;
  RecoveredState recovered_ GUARDED_BY(store_mu_);
  DurabilityStats durability_ GUARDED_BY(store_mu_);
};

}  // namespace medes::store

#endif  // MEDES_STORE_LOG_STORE_H_
