#include "store/log_store.h"

#include <cstdint>
#include <filesystem>
#include <utility>

namespace medes::store {

namespace {

constexpr uint32_t kCheckpointMagic = 0x4d454443;  // "MEDC"
// Checkpoint header: magic + last folded seq + record count.
constexpr size_t kCheckpointHeaderBytes = 4 + 8 + 4;

void PutU32(uint32_t v, std::vector<uint8_t>& out) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}

void PutU64(uint64_t v, std::vector<uint8_t>& out) {
  PutU32(static_cast<uint32_t>(v), out);
  PutU32(static_cast<uint32_t>(v >> 32), out);
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) | static_cast<uint64_t>(GetU32(p + 4)) << 32;
}

// Reads an entire file; returns false when it does not exist / can't open.
bool ReadFileBytes(const std::string& path, std::vector<uint8_t>& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  out.resize(size > 0 ? static_cast<size_t>(size) : 0);
  if (!out.empty() && std::fread(out.data(), 1, out.size(), f) != out.size()) {
    out.clear();
  }
  std::fclose(f);
  return true;
}

// Atomically (via rename) replaces `path` with `bytes`.
bool WriteFileBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  const bool ok = bytes.empty() || std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  std::fflush(f);
  std::fclose(f);
  return ok && std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace

LogStore::LogStore(StoreOptions options) : StateStore(std::move(options)) {
  std::error_code ec;
  std::filesystem::create_directories(this->options().directory, ec);
  MutexLock lock(store_mu_);
  RecoverFromDisk();
  log_ = std::fopen(LogPath().c_str(), "ab");
}

LogStore::~LogStore() {
  MutexLock lock(store_mu_);
  if (log_ != nullptr) {
    std::fclose(log_);
    log_ = nullptr;
  }
}

void LogStore::Checkpoint() {
  MutexLock lock(store_mu_);
  WriteCheckpoint();
}

RecoveredState LogStore::Recover() {
  MutexLock lock(store_mu_);
  return recovered_;
}

DurabilityStats LogStore::durability_stats() const {
  MutexLock lock(store_mu_);
  return durability_;
}

void LogStore::RecoverFromDisk() {
  ++durability_.recoveries;
  uint64_t checkpoint_seq = 0;
  bool checkpoint_usable = true;

  // 1. Checkpoint: all-or-nothing. It is the base the log deltas apply to,
  // so any parse failure discards it AND blocks log replay (fail closed).
  std::vector<uint8_t> ckpt;
  if (ReadFileBytes(CheckpointPath(), ckpt)) {
    bool ok = ckpt.size() >= kCheckpointHeaderBytes && GetU32(ckpt.data()) == kCheckpointMagic;
    uint32_t num_records = 0;
    if (ok) {
      checkpoint_seq = GetU64(ckpt.data() + 4);
      num_records = GetU32(ckpt.data() + 12);
    }
    size_t pos = kCheckpointHeaderBytes;
    for (uint32_t i = 0; ok && i < num_records; ++i) {
      DecodeResult d = DecodeRecord({ckpt.data() + pos, ckpt.size() - pos});
      if (d.status != DecodeStatus::kOk) {
        ok = false;
        break;
      }
      ApplyRecord(d.record);
      ++recovered_.checkpoint_records;
      pos += d.consumed;
    }
    if (ok && pos != ckpt.size()) {
      ok = false;  // trailing garbage after the declared records
    }
    if (!ok) {
      state_.clear();
      recovered_ = RecoveredState{};
      recovered_.clean = false;
      checkpoint_usable = false;
    }
  }

  // 2. Log replay from the first un-folded sequence number.
  std::vector<uint8_t> log;
  if (checkpoint_usable && ReadFileBytes(LogPath(), log)) {
    uint64_t expected = checkpoint_seq + 1;
    size_t pos = 0;
    size_t good_prefix = 0;
    bool stop = false;
    while (!stop && pos < log.size()) {
      DecodeResult d = DecodeRecord({log.data() + pos, log.size() - pos});
      switch (d.status) {
        case DecodeStatus::kOk:
          if (d.record.seq < expected) {
            // Already folded into the checkpoint (crash between checkpoint
            // rename and log truncation) or a duplicate append: skip.
            ++recovered_.stale_records;
          } else if (d.record.seq > expected) {
            // A sequence gap means records were lost: everything after the
            // gap is untrustworthy. Stop at the last good prefix.
            ++recovered_.corrupt_records;
            recovered_.clean = false;
            stop = true;
            break;
          } else {
            ApplyRecord(d.record);
            ++recovered_.log_records;
            ++expected;
          }
          pos += d.consumed;
          good_prefix = pos;
          break;
        case DecodeStatus::kTorn:
          recovered_.torn_bytes += log.size() - pos;
          recovered_.clean = false;
          stop = true;
          break;
        case DecodeStatus::kCorrupt:
          ++recovered_.corrupt_records;
          recovered_.clean = false;
          stop = true;
          break;
      }
    }
    if (good_prefix < log.size()) {
      // Physically truncate the torn/corrupt tail so the next recovery (and
      // new appends) see a clean log.
      log.resize(good_prefix);
      WriteFileBytes(LogPath(), log);
    }
    next_seq_ = expected;
  } else {
    // Unusable checkpoint: start over. Truncate the log and drop the bad
    // checkpoint so stale bytes cannot resurface; state is empty and
    // recovery reports clean=false.
    if (!checkpoint_usable) {
      WriteFileBytes(LogPath(), {});
      std::remove(CheckpointPath().c_str());
    }
    next_seq_ = checkpoint_seq + 1;
  }
  durability_.torn_bytes += recovered_.torn_bytes;
  durability_.recovered_records += recovered_.checkpoint_records + recovered_.log_records;

  // Materialize the recovered view, ascending sandbox id / page index.
  for (const auto& [id, sb] : state_) {
    RecoveredSandbox out;
    out.node = sb.node;
    out.sandbox = id;
    out.fingerprints = sb.fingerprints;
    for (const auto& [page, bytes] : sb.pages) {
      out.pages.emplace_back(page, bytes);
    }
    recovered_.sandboxes.push_back(std::move(out));
  }
}

void LogStore::ApplyRecord(const Record& rec) {
  switch (rec.type) {
    case RecordType::kInsertSandbox: {
      LogicalSandbox& sb = state_[rec.sandbox];
      sb.node = rec.node;
      sb.fingerprints = rec.fingerprints;
      break;
    }
    case RecordType::kRemoveSandbox:
      state_.erase(rec.sandbox);
      break;
    case RecordType::kBasePageWrite: {
      LogicalSandbox& sb = state_[rec.sandbox];
      if (sb.node == kInvalidNode) {
        sb.node = rec.node;
      }
      sb.pages[rec.page_index] = rec.page_bytes;
      break;
    }
  }
}

void LogStore::AppendToLog(const std::vector<uint8_t>& bytes) {
  if (log_ == nullptr) {
    return;
  }
  std::fwrite(bytes.data(), 1, bytes.size(), log_);
  // Flush through stdio so a crashed *process* loses nothing; an OS crash
  // can still tear the tail, which recovery truncates.
  std::fflush(log_);
  durability_.log_bytes += bytes.size();
  ++appends_since_checkpoint_;
  MaybeCheckpoint();
}

void LogStore::MaybeCheckpoint() {
  if (options().checkpoint_every_records > 0 &&
      appends_since_checkpoint_ >= options().checkpoint_every_records) {
    WriteCheckpoint();
  }
}

void LogStore::WriteCheckpoint() {
  // Count records first: one insert per sandbox plus its pages.
  uint32_t num_records = 0;
  for (const auto& [id, sb] : state_) {
    num_records += 1 + static_cast<uint32_t>(sb.pages.size());
  }
  std::vector<uint8_t> out;
  PutU32(kCheckpointMagic, out);
  PutU64(next_seq_ - 1, out);
  PutU32(num_records, out);
  uint64_t seq = 0;  // checkpoint-internal numbering; replay ignores it
  for (const auto& [id, sb] : state_) {
    EncodeInsertSandbox(++seq, sb.node, id, sb.fingerprints, out);
    for (const auto& [page, bytes] : sb.pages) {
      EncodeBasePageWrite(++seq, sb.node, id, page, bytes, out);
    }
  }
  if (!WriteFileBytes(CheckpointPath(), out)) {
    return;  // keep the log; the old checkpoint (if any) is still intact
  }
  // Commit point passed: the checkpoint now covers every logged record, so
  // the log restarts empty. A crash landing between the rename above and
  // this truncation leaves stale records, which replay skips by seq.
  if (log_ != nullptr) {
    std::fclose(log_);
  }
  log_ = std::fopen(LogPath().c_str(), "wb");
  appends_since_checkpoint_ = 0;
  ++durability_.checkpoints;
  durability_.checkpoint_bytes = out.size();
}

void LogStore::PersistInsertSandbox(NodeId node, SandboxId sandbox,
                                    const std::vector<PageFingerprint>& fingerprints) {
  LogicalSandbox& sb = state_[sandbox];
  sb.node = node;
  sb.fingerprints = fingerprints;
  std::vector<uint8_t> bytes;
  EncodeInsertSandbox(next_seq_++, node, sandbox, fingerprints, bytes);
  AppendToLog(bytes);
}

void LogStore::PersistRemoveSandbox(SandboxId sandbox) {
  state_.erase(sandbox);
  std::vector<uint8_t> bytes;
  EncodeRemoveSandbox(next_seq_++, sandbox, bytes);
  AppendToLog(bytes);
}

void LogStore::PersistBasePage(NodeId node, SandboxId sandbox, PageIndex page_index,
                               std::span<const uint8_t> page_bytes) {
  LogicalSandbox& sb = state_[sandbox];
  if (sb.node == kInvalidNode) {
    sb.node = node;
  }
  sb.pages[page_index].assign(page_bytes.begin(), page_bytes.end());
  std::vector<uint8_t> bytes;
  EncodeBasePageWrite(next_seq_++, node, sandbox, page_index, page_bytes, bytes);
  AppendToLog(bytes);
}

}  // namespace medes::store
