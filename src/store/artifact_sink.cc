#include "store/artifact_sink.h"

#include <cstdio>

namespace medes::store {

bool WriteArtifactFile(const std::string& path, std::string_view content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const int close_rc = std::fclose(f);
  return written == content.size() && close_rc == 0;
}

}  // namespace medes::store
