// Framed binary records for the persistent state-store log and checkpoints.
//
// Every durable mutation of dedup state (base-sandbox fingerprint inserts,
// sandbox invalidations, base-page writes) is one self-delimiting record:
//
//   u32 magic | u64 seq | u8 type | u32 payload_len | payload | u32 crc32
//
// all little-endian. The CRC covers seq..payload, so a torn write (short
// read) and a corrupted write (bad magic / bad CRC) are distinguishable from
// a clean end-of-log: DecodeRecord reports kTorn when the buffer ends inside
// a record and kCorrupt when the bytes are there but wrong. Recovery uses
// exactly this distinction — torn tails are truncated, corruption fails the
// replay closed at the last good prefix (store/log_store.cc).
//
// Sequence numbers are assigned by the writer, strictly increasing from 1.
// A compacted checkpoint stores the seq of the last folded record, so log
// records at or below it are stale duplicates and must be skipped on replay.
#ifndef MEDES_STORE_RECORD_H_
#define MEDES_STORE_RECORD_H_

#include <cstdint>
#include <span>
#include <vector>

#include "chunking/fingerprint.h"
#include "common/types.h"

namespace medes::store {

inline constexpr uint32_t kRecordMagic = 0x4d454453;  // "MEDS"

enum class RecordType : uint8_t {
  // Base-sandbox registration: node + sandbox + per-page fingerprints.
  kInsertSandbox = 1,
  // Sandbox invalidation (eviction / base retirement).
  kRemoveSandbox = 2,
  // One base page's bytes, keyed (node, sandbox, page_index).
  kBasePageWrite = 3,
};

// Decoded view of a single record.
struct Record {
  uint64_t seq = 0;
  RecordType type = RecordType::kInsertSandbox;

  // kInsertSandbox
  NodeId node = kInvalidNode;
  SandboxId sandbox = kNoSandbox;
  std::vector<PageFingerprint> fingerprints;

  // kBasePageWrite (node/sandbox above also apply)
  PageIndex page_index{0};
  std::vector<uint8_t> page_bytes;
};

enum class DecodeStatus {
  kOk,       // one full record decoded; `consumed` bytes were used
  kTorn,     // buffer ends mid-record (clean EOF or torn tail)
  kCorrupt,  // framing present but magic/CRC/payload malformed
};

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kTorn;
  size_t consumed = 0;  // valid only for kOk
  Record record;        // valid only for kOk
};

// CRC-32 (IEEE, reflected) over `bytes`. Software table; deterministic.
uint32_t Crc32(std::span<const uint8_t> bytes);

// Appends the framed encoding of one record to `out`.
void EncodeInsertSandbox(uint64_t seq, NodeId node, SandboxId sandbox,
                         const std::vector<PageFingerprint>& fingerprints,
                         std::vector<uint8_t>& out);
void EncodeRemoveSandbox(uint64_t seq, SandboxId sandbox, std::vector<uint8_t>& out);
void EncodeBasePageWrite(uint64_t seq, NodeId node, SandboxId sandbox, PageIndex page_index,
                         std::span<const uint8_t> page_bytes, std::vector<uint8_t>& out);

// Decodes the record starting at the front of `bytes`.
[[nodiscard]] DecodeResult DecodeRecord(std::span<const uint8_t> bytes);

}  // namespace medes::store

#endif  // MEDES_STORE_RECORD_H_
