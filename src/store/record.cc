#include "store/record.h"

#include <array>
#include <cstring>

namespace medes::store {

namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

void PutU8(uint8_t v, std::vector<uint8_t>& out) { out.push_back(v); }

void PutU32(uint32_t v, std::vector<uint8_t>& out) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}

void PutU64(uint64_t v, std::vector<uint8_t>& out) {
  PutU32(static_cast<uint32_t>(v), out);
  PutU32(static_cast<uint32_t>(v >> 32), out);
}

// Little-endian readers over a bounds-checked cursor. Any overrun flips
// `ok` and sticks; callers check once at the end.
struct Reader {
  std::span<const uint8_t> bytes;
  size_t pos = 0;
  bool ok = true;

  uint8_t U8() {
    if (pos + 1 > bytes.size()) {
      ok = false;
      return 0;
    }
    return bytes[pos++];
  }
  uint32_t U32() {
    if (pos + 4 > bytes.size()) {
      ok = false;
      return 0;
    }
    uint32_t v = static_cast<uint32_t>(bytes[pos]) | static_cast<uint32_t>(bytes[pos + 1]) << 8 |
                 static_cast<uint32_t>(bytes[pos + 2]) << 16 |
                 static_cast<uint32_t>(bytes[pos + 3]) << 24;
    pos += 4;
    return v;
  }
  uint64_t U64() {
    const uint64_t lo = U32();
    const uint64_t hi = U32();
    return lo | hi << 32;
  }
};

// Fixed bytes before the payload: magic + seq + type + payload_len.
constexpr size_t kHeaderBytes = 4 + 8 + 1 + 4;
constexpr size_t kTrailerBytes = 4;  // crc32

// Frames `payload` (already encoded for `type`) into `out`.
void Frame(uint64_t seq, RecordType type, std::span<const uint8_t> payload,
           std::vector<uint8_t>& out) {
  // The CRC covers seq..payload: build that region once, then splice.
  std::vector<uint8_t> covered;
  covered.reserve(8 + 1 + 4 + payload.size());
  PutU64(seq, covered);
  PutU8(static_cast<uint8_t>(type), covered);
  PutU32(static_cast<uint32_t>(payload.size()), covered);
  covered.insert(covered.end(), payload.begin(), payload.end());

  PutU32(kRecordMagic, out);
  out.insert(out.end(), covered.begin(), covered.end());
  PutU32(Crc32(covered), out);
}

}  // namespace

uint32_t Crc32(std::span<const uint8_t> bytes) {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  uint32_t c = 0xffffffffu;
  for (uint8_t b : bytes) {
    c = table[(c ^ b) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

void EncodeInsertSandbox(uint64_t seq, NodeId node, SandboxId sandbox,
                         const std::vector<PageFingerprint>& fingerprints,
                         std::vector<uint8_t>& out) {
  std::vector<uint8_t> payload;
  PutU32(static_cast<uint32_t>(node.value()), payload);
  PutU64(sandbox.value(), payload);
  PutU32(static_cast<uint32_t>(fingerprints.size()), payload);
  for (const PageFingerprint& fp : fingerprints) {
    PutU32(static_cast<uint32_t>(fp.chunks.size()), payload);
    for (const SampledChunk& chunk : fp.chunks) {
      PutU64(chunk.key, payload);
      PutU32(chunk.offset, payload);
    }
  }
  Frame(seq, RecordType::kInsertSandbox, payload, out);
}

void EncodeRemoveSandbox(uint64_t seq, SandboxId sandbox, std::vector<uint8_t>& out) {
  std::vector<uint8_t> payload;
  PutU64(sandbox.value(), payload);
  Frame(seq, RecordType::kRemoveSandbox, payload, out);
}

void EncodeBasePageWrite(uint64_t seq, NodeId node, SandboxId sandbox, PageIndex page_index,
                         std::span<const uint8_t> page_bytes, std::vector<uint8_t>& out) {
  std::vector<uint8_t> payload;
  payload.reserve(4 + 8 + 4 + 4 + page_bytes.size());
  PutU32(static_cast<uint32_t>(node.value()), payload);
  PutU64(sandbox.value(), payload);
  PutU32(page_index.value(), payload);
  PutU32(static_cast<uint32_t>(page_bytes.size()), payload);
  payload.insert(payload.end(), page_bytes.begin(), page_bytes.end());
  Frame(seq, RecordType::kBasePageWrite, payload, out);
}

DecodeResult DecodeRecord(std::span<const uint8_t> bytes) {
  DecodeResult result;
  if (bytes.size() < kHeaderBytes) {
    result.status = DecodeStatus::kTorn;
    return result;
  }
  Reader header{bytes};
  const uint32_t magic = header.U32();
  if (magic != kRecordMagic) {
    result.status = DecodeStatus::kCorrupt;
    return result;
  }
  const uint64_t seq = header.U64();
  const uint8_t type_raw = header.U8();
  const uint32_t payload_len = header.U32();
  // Cap payloads well above anything the encoders emit so a corrupted length
  // field cannot be mistaken for a gigantic torn record.
  constexpr uint32_t kMaxPayload = 64u << 20;
  if (payload_len > kMaxPayload) {
    result.status = DecodeStatus::kCorrupt;
    return result;
  }
  const size_t total = kHeaderBytes + payload_len + kTrailerBytes;
  if (bytes.size() < total) {
    result.status = DecodeStatus::kTorn;
    return result;
  }
  const std::span<const uint8_t> covered = bytes.subspan(4, 8 + 1 + 4 + payload_len);
  Reader trailer{bytes.subspan(kHeaderBytes + payload_len, kTrailerBytes)};
  if (trailer.U32() != Crc32(covered)) {
    result.status = DecodeStatus::kCorrupt;
    return result;
  }

  Record rec;
  rec.seq = seq;
  Reader p{bytes.subspan(kHeaderBytes, payload_len)};
  switch (type_raw) {
    case static_cast<uint8_t>(RecordType::kInsertSandbox): {
      rec.type = RecordType::kInsertSandbox;
      rec.node = NodeId{static_cast<int32_t>(p.U32())};
      rec.sandbox = SandboxId{p.U64()};
      const uint32_t num_pages = p.U32();
      for (uint32_t i = 0; i < num_pages && p.ok; ++i) {
        PageFingerprint fp;
        const uint32_t num_chunks = p.U32();
        for (uint32_t c = 0; c < num_chunks && p.ok; ++c) {
          SampledChunk chunk;
          chunk.key = p.U64();
          chunk.offset = p.U32();
          fp.chunks.push_back(chunk);
        }
        rec.fingerprints.push_back(std::move(fp));
      }
      break;
    }
    case static_cast<uint8_t>(RecordType::kRemoveSandbox): {
      rec.type = RecordType::kRemoveSandbox;
      rec.sandbox = SandboxId{p.U64()};
      break;
    }
    case static_cast<uint8_t>(RecordType::kBasePageWrite): {
      rec.type = RecordType::kBasePageWrite;
      rec.node = NodeId{static_cast<int32_t>(p.U32())};
      rec.sandbox = SandboxId{p.U64()};
      rec.page_index = PageIndex{p.U32()};
      const uint32_t nbytes = p.U32();
      if (p.pos + nbytes > payload_len) {
        p.ok = false;
        break;
      }
      const auto* data = bytes.data() + kHeaderBytes + p.pos;
      rec.page_bytes.assign(data, data + nbytes);
      p.pos += nbytes;
      break;
    }
    default:
      result.status = DecodeStatus::kCorrupt;
      return result;
  }
  // A record whose payload parses short or leaves trailing garbage passed the
  // CRC only because it was *written* malformed — treat as corrupt, not torn.
  if (!p.ok || p.pos != payload_len) {
    result.status = DecodeStatus::kCorrupt;
    return result;
  }
  result.status = DecodeStatus::kOk;
  result.consumed = total;
  result.record = std::move(rec);
  return result;
}

}  // namespace medes::store
