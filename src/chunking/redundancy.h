// Memory-redundancy measurement tool — the Section 2.1 methodology.
//
// To quantify how much of sandbox B's memory already exists in sandbox A, the
// paper samples a chunk of K bytes at fixed offsets of 2K bytes in A, hashes
// each chunk (SHA-1) into a table, then probes B's chunks against the table.
// On a verified byte-equal match, both chunks are extended into the
// surrounding non-hashed bytes up to a maximum of 2K bytes, and the maximal
// common run of bytes is credited as duplicated. Redundancy of B w.r.t. A is
// the fraction of B's bytes so credited.
#ifndef MEDES_CHUNKING_REDUNDANCY_H_
#define MEDES_CHUNKING_REDUNDANCY_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace medes {

struct RedundancyOptions {
  size_t chunk_size = 64;  // K; chunks sampled every 2K bytes
};

struct RedundancyResult {
  size_t total_bytes = 0;       // bytes of B considered
  size_t duplicated_bytes = 0;  // bytes of B found in A
  size_t probed_chunks = 0;
  size_t matched_chunks = 0;

  double Fraction() const {
    return total_bytes == 0 ? 0.0
                            : static_cast<double>(duplicated_bytes) /
                                  static_cast<double>(total_bytes);
  }
};

// Redundancy of `b` with respect to `a`.
RedundancyResult MeasureRedundancy(std::span<const uint8_t> a, std::span<const uint8_t> b,
                                   const RedundancyOptions& options = {});

}  // namespace medes

#endif  // MEDES_CHUNKING_REDUNDANCY_H_
