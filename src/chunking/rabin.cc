#include "chunking/rabin.h"

#include <stdexcept>

#include "common/kernels/rolling_kernels.h"

namespace medes {

static_assert(kernels::kRollingBase == 0x100000001b3ull,
              "RollingHash and the bulk kernel must agree on the polynomial base");

RollingHash::RollingHash(size_t window) : window_(window), pow_(1) {
  if (window == 0) {
    throw std::invalid_argument("RollingHash: window must be positive");
  }
  pow_table_.resize(window);
  for (size_t i = 1; i < window; ++i) {
    pow_ *= kBase;
  }
  // pow_table_[i] = kBase^(window-1-i): the weight of byte i inside a window.
  uint64_t p = 1;
  for (size_t i = window; i-- > 0;) {
    pow_table_[i] = p;
    p *= kBase;
  }
  for (size_t b = 0; b < 256; ++b) {
    out_table_[b] = static_cast<uint64_t>(b) * pow_;
  }
}

uint64_t RollingHash::Init(std::span<const uint8_t> data) const {
  if (data.size() < window_) {
    throw std::invalid_argument("RollingHash::Init: data shorter than the window");
  }
  // Four independent multiply-accumulate chains over the precomputed byte
  // weights; addition is commutative mod 2^64, so this matches the serial
  // Horner walk bit-for-bit.
  uint64_t acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
  size_t i = 0;
  for (; i + 4 <= window_; i += 4) {
    acc0 += data[i] * pow_table_[i];
    acc1 += data[i + 1] * pow_table_[i + 1];
    acc2 += data[i + 2] * pow_table_[i + 2];
    acc3 += data[i + 3] * pow_table_[i + 3];
  }
  for (; i < window_; ++i) {
    acc0 += data[i] * pow_table_[i];
  }
  return acc0 + acc1 + acc2 + acc3;
}

void RollingHash::BulkHash(std::span<const uint8_t> data, uint64_t* out) const {
  if (data.size() < window_) {
    throw std::invalid_argument("RollingHash::BulkHash: data shorter than the window");
  }
  kernels::RollingBulk(data.data(), data.size(), window_, pow_, out);
}

std::vector<uint64_t> AllWindowHashes(std::span<const uint8_t> data, size_t window) {
  std::vector<uint64_t> out;
  if (data.size() < window) {
    return out;
  }
  out.resize(data.size() - window + 1);
  RollingHash rh(window);
  rh.BulkHash(data, out.data());
  return out;
}

}  // namespace medes
