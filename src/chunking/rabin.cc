#include "chunking/rabin.h"

#include <stdexcept>

namespace medes {

RollingHash::RollingHash(size_t window) : window_(window), pow_(1) {
  if (window == 0) {
    throw std::invalid_argument("RollingHash: window must be positive");
  }
  for (size_t i = 1; i < window; ++i) {
    pow_ *= kBase;
  }
}

uint64_t RollingHash::Init(std::span<const uint8_t> data) {
  uint64_t h = 0;
  for (size_t i = 0; i < window_; ++i) {
    h = h * kBase + data[i];
  }
  return h;
}

std::vector<uint64_t> AllWindowHashes(std::span<const uint8_t> data, size_t window) {
  std::vector<uint64_t> out;
  if (data.size() < window) {
    return out;
  }
  out.reserve(data.size() - window + 1);
  RollingHash rh(window);
  uint64_t h = rh.Init(data);
  out.push_back(h);
  for (size_t i = window; i < data.size(); ++i) {
    h = rh.Roll(h, data[i - window], data[i]);
    out.push_back(h);
  }
  return out;
}

}  // namespace medes
