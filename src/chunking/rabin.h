// Rolling Rabin-style polynomial hash over a fixed-size byte window.
//
// Used to scan every 64-byte window of a page in a single linear pass (paper
// Section 4.1.2, "a single linear scan"): the hash of window [i+1, i+1+W) is
// derived from the hash of [i, i+W) in O(1).
#ifndef MEDES_CHUNKING_RABIN_H_
#define MEDES_CHUNKING_RABIN_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace medes {

class RollingHash {
 public:
  // `window` is the chunk size in bytes (e.g. 64 for Medes RSCs).
  explicit RollingHash(size_t window);

  size_t window() const { return window_; }

  // Hash of the first full window of `data`. Precondition: data.size() >= window().
  uint64_t Init(std::span<const uint8_t> data);

  // Slide the window one byte: remove `outgoing`, append `incoming`.
  uint64_t Roll(uint64_t hash, uint8_t outgoing, uint8_t incoming) const {
    return (hash - outgoing * pow_) * kBase + incoming;
  }

 private:
  static constexpr uint64_t kBase = 0x100000001b3ull;  // FNV prime as the polynomial base

  size_t window_;
  uint64_t pow_;  // kBase^(window-1), wrapping arithmetic mod 2^64
};

// Convenience: hashes of all rolling windows of `data` (data.size() - window + 1
// values). Returns empty if data is shorter than the window.
std::vector<uint64_t> AllWindowHashes(std::span<const uint8_t> data, size_t window);

}  // namespace medes

#endif  // MEDES_CHUNKING_RABIN_H_
