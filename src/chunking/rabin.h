// Rolling Rabin-style polynomial hash over a fixed-size byte window.
//
// Used to scan every 64-byte window of a page in a single linear pass (paper
// Section 4.1.2, "a single linear scan"): the hash of window [i+1, i+1+W) is
// derived from the hash of [i, i+W) in O(1).
//
// Hot-path layout: construction precomputes a 256-entry table of
// outgoing-byte contributions (byte * base^(W-1)), so Roll() is a table
// lookup instead of a multiply, and a per-position power table that lets
// Init() run four independent multiply-accumulate chains. Whole-buffer
// scans go through the dispatched bulk kernel
// (common/kernels/rolling_kernels.h), which is bit-identical to rolling
// Roll() by hand. Construct once and reuse — a RollingHash carries ~2.5 KiB
// of tables.
#ifndef MEDES_CHUNKING_RABIN_H_
#define MEDES_CHUNKING_RABIN_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace medes {

class RollingHash {
 public:
  // `window` is the chunk size in bytes (e.g. 64 for Medes RSCs).
  explicit RollingHash(size_t window);

  size_t window() const { return window_; }

  // Hash of the first full window of `data`. Throws std::invalid_argument
  // if data.size() < window().
  uint64_t Init(std::span<const uint8_t> data) const;

  // Slide the window one byte: remove `outgoing`, append `incoming`.
  uint64_t Roll(uint64_t hash, uint8_t outgoing, uint8_t incoming) const {
    return (hash - out_table_[outgoing]) * kBase + incoming;
  }

  // Hashes of every window of `data`, written to out[0 .. data.size() -
  // window()]. `out` must hold data.size() - window() + 1 values. Throws
  // std::invalid_argument if data is shorter than the window.
  void BulkHash(std::span<const uint8_t> data, uint64_t* out) const;

 private:
  static constexpr uint64_t kBase = 0x100000001b3ull;  // FNV prime as the polynomial base

  size_t window_;
  uint64_t pow_;                          // kBase^(window-1), wrapping mod 2^64
  std::array<uint64_t, 256> out_table_;   // out_table_[b] = b * pow_
  std::vector<uint64_t> pow_table_;       // pow_table_[i] = kBase^(window-1-i)
};

// Convenience: hashes of all rolling windows of `data` (data.size() - window + 1
// values). Returns empty if data is shorter than the window.
std::vector<uint64_t> AllWindowHashes(std::span<const uint8_t> data, size_t window);

}  // namespace medes

#endif  // MEDES_CHUNKING_RABIN_H_
