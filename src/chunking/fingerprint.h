// Value-sampled chunk fingerprints and page fingerprints (paper Section 4.1.2).
//
// A page fingerprint is a small unordered set of chunk hashes: the page is
// scanned with a rolling 64 B window and a window is *selected* when its
// rolling hash matches a value pattern (content-defined selection — the same
// chunk content is selected no matter where it sits in memory, which is what
// makes this robust to ASLR shifts, unlike Difference Engine's random
// offsets). Of the selected chunks, the K smallest hashes form the
// fingerprint (K = cardinality, default 5 per the paper).
//
// The registry keys chunks by a truncated hash. `key_bits` models the
// fingerprint-table collision behaviour the paper reports for small chunk
// sizes (Section 7.8): fewer key bits -> more dissimilar chunks labelled
// similar -> worse base-page choices.
#ifndef MEDES_CHUNKING_FINGERPRINT_H_
#define MEDES_CHUNKING_FINGERPRINT_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "chunking/rabin.h"

namespace medes {

// A single value-sampled chunk within a page.
struct SampledChunk {
  uint64_t key = 0;     // truncated chunk hash (registry key)
  uint32_t offset = 0;  // byte offset of the chunk within the page
};

// Unordered set of sampled chunk keys identifying a page.
struct PageFingerprint {
  std::vector<SampledChunk> chunks;

  bool Empty() const { return chunks.empty(); }
  size_t Cardinality() const { return chunks.size(); }
};

enum class SamplingMode {
  // Content-defined value sampling (Medes; EndRE-style).
  kValueSampled,
  // Chunks at fixed random offsets per page (Difference Engine-style
  // baseline; provided for the ablation discussed in paper Section 8).
  kRandomOffsets,
};

struct FingerprintOptions {
  size_t chunk_size = 64;     // RSC size in bytes
  size_t cardinality = 5;     // chunk hashes per page fingerprint
  // A window is selected when (rolling_hash & sample_mask) == sample_pattern.
  // The default 9-bit mask selects ~1/512 of window positions, i.e. roughly
  // 8 candidates per 4 KiB page, from which the K smallest survive.
  uint64_t sample_mask = 0x1ff;
  uint64_t sample_pattern = 0x0;
  // Truncation width of chunk-hash keys stored in / matched against the
  // fingerprint registry. 64 = effectively collision-free.
  int key_bits = 64;
  SamplingMode mode = SamplingMode::kValueSampled;
  // Seed for kRandomOffsets mode.
  uint64_t random_seed = 0x5eed;
};

class PageFingerprinter {
 public:
  explicit PageFingerprinter(FingerprintOptions options);

  const FingerprintOptions& options() const { return options_; }

  // Fingerprint of one page.
  PageFingerprint FingerprintPage(std::span<const uint8_t> page) const;

  // Fingerprints for every page of an image laid out contiguously.
  std::vector<PageFingerprint> FingerprintImage(std::span<const uint8_t> image,
                                                size_t page_size) const;

  // Truncated key of a full chunk hash: the *leading* key_bits bits of the
  // SHA-1 digest (Prefix64 is big-endian, so shifting right drops the
  // digest's trailing bits — the truncation the registry key comment
  // promises). key_bits is validated to [1, 64] by the constructor.
  uint64_t TruncateKey(uint64_t full) const {
    return full >> (64 - static_cast<unsigned>(options_.key_bits));
  }

 private:
  FingerprintOptions options_;
  // Shared rolling-hash tables — built once here so the per-page scan never
  // reconstructs them. Stateless at scan time, so safe across pool workers.
  RollingHash rolling_;
};

}  // namespace medes

#endif  // MEDES_CHUNKING_FINGERPRINT_H_
