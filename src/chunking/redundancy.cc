#include "chunking/redundancy.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "common/sha1.h"

namespace medes {

RedundancyResult MeasureRedundancy(std::span<const uint8_t> a, std::span<const uint8_t> b,
                                   const RedundancyOptions& options) {
  const size_t k = options.chunk_size;
  if (k == 0) {
    throw std::invalid_argument("chunk_size must be positive");
  }
  RedundancyResult result;
  result.total_bytes = b.size();
  if (a.size() < k || b.size() < k) {
    return result;
  }
  std::vector<size_t> candidates;

  // Index A's chunks sampled at stride 2K. Multiple offsets can share a hash.
  std::unordered_map<uint64_t, std::vector<size_t>> table;
  table.reserve(a.size() / (2 * k) + 1);
  for (size_t off = 0; off + k <= a.size(); off += 2 * k) {
    uint64_t h = Sha1::Hash(a.subspan(off, k)).Prefix64();
    auto& offsets = table[h];
    if (offsets.size() < 8) {  // cap pathological chains (e.g. zero pages)
      offsets.push_back(off);
    }
  }

  for (size_t off = 0; off + k <= b.size(); off += 2 * k) {
    ++result.probed_chunks;
    size_t best = 0;
    // Fast path: same-offset candidate. Sandboxes of the same function lay
    // out near-identically, and the hash table's per-chain cap would
    // otherwise drop exactly these candidates for highly repetitive content.
    if (off + k <= a.size()) {
      candidates.assign(1, off);
    } else {
      candidates.clear();
    }
    uint64_t h = Sha1::Hash(b.subspan(off, k)).Prefix64();
    auto it = table.find(h);
    if (it == table.end() && candidates.empty()) {
      continue;
    }
    if (it != table.end()) {
      candidates.insert(candidates.end(), it->second.begin(),
                                        it->second.end());
    }
    for (size_t a_off : candidates) {
      if (std::memcmp(a.data() + a_off, b.data() + off, k) != 0) {
        continue;  // hash collision; reject
      }
      // Extend the verified K-byte match into the surrounding non-hashed
      // bytes, to a maximum total of 2K bytes (paper Section 2.1).
      size_t fwd = 0;
      size_t max_fwd = std::min({k, a.size() - (a_off + k), b.size() - (off + k)});
      while (fwd < max_fwd && a[a_off + k + fwd] == b[off + k + fwd]) {
        ++fwd;
      }
      size_t back = 0;
      size_t max_back = std::min({k - fwd, a_off, off});
      while (back < max_back && a[a_off - back - 1] == b[off - back - 1]) {
        ++back;
      }
      best = std::max(best, k + fwd + back);
      if (best == 2 * k) {
        break;
      }
    }
    if (best > 0) {
      ++result.matched_chunks;
      // Credit at most the 2K window this probe owns to avoid double counting
      // with the next probe (probes are 2K apart).
      result.duplicated_bytes += std::min(best, 2 * k);
    }
  }
  result.duplicated_bytes = std::min(result.duplicated_bytes, result.total_bytes);
  return result;
}

}  // namespace medes
