#include "chunking/fingerprint.h"

#include <algorithm>
#include <stdexcept>

#include "common/rng.h"
#include "common/sha1.h"

namespace medes {
namespace {

const FingerprintOptions& Validate(const FingerprintOptions& options) {
  if (options.chunk_size == 0) {
    throw std::invalid_argument("chunk_size must be positive");
  }
  if (options.cardinality == 0) {
    throw std::invalid_argument("cardinality must be positive");
  }
  if (options.key_bits < 1 || options.key_bits > 64) {
    throw std::invalid_argument("key_bits must be in [1, 64]");
  }
  return options;
}

}  // namespace

PageFingerprinter::PageFingerprinter(FingerprintOptions options)
    : options_(Validate(options)), rolling_(options.chunk_size) {}

PageFingerprint PageFingerprinter::FingerprintPage(std::span<const uint8_t> page) const {
  PageFingerprint fp;
  const size_t w = options_.chunk_size;
  if (page.size() < w) {
    return fp;
  }

  // Stage 1: pick the sampled chunk offsets. Selection depends only on the
  // rolling hash values, so the (slow) chunk digests can be batched after.
  // The scratch vectors are thread-local so per-page work does zero
  // steady-state allocation, including under pool workers.
  thread_local std::vector<uint32_t> offsets_scratch;
  std::vector<uint32_t>& offsets = offsets_scratch;
  offsets.clear();

  if (options_.mode == SamplingMode::kRandomOffsets) {
    // Difference Engine-style: fixed pseudo-random offsets, *not* content
    // defined — the same page content shifted by a few bytes fingerprints
    // completely differently.
    Rng rng(options_.random_seed);
    for (size_t i = 0; i < options_.cardinality; ++i) {
      offsets.push_back(static_cast<uint32_t>(rng.Below(page.size() - w + 1)));
    }
  } else {
    const size_t positions = page.size() - w + 1;
    thread_local std::vector<uint64_t> hash_scratch;
    hash_scratch.resize(positions);
    rolling_.BulkHash(page, hash_scratch.data());

    size_t last_selected_end = 0;  // avoid overlapping selected chunks
    for (size_t offset = 0; offset < positions; ++offset) {
      if (offset < last_selected_end) {
        continue;
      }
      if ((hash_scratch[offset] & options_.sample_mask) == options_.sample_pattern) {
        offsets.push_back(static_cast<uint32_t>(offset));
        last_selected_end = offset + w;
      }
    }
    if (offsets.size() < options_.cardinality) {
      // Sparse/uniform pages select too few windows; fall back to fixed-stride
      // chunks so every page still has a full-cardinality fingerprint. Stride
      // offsets overlapping an already-selected content-defined chunk are
      // skipped (they would duplicate it), and the loop stops as soon as the
      // fingerprint budget is met.
      const size_t selected = offsets.size();
      const size_t stride = std::max<size_t>(w, page.size() / (options_.cardinality + 1));
      for (size_t offset = 0;
           offset + w <= page.size() && offsets.size() < options_.cardinality;
           offset += stride) {
        bool covered = false;
        for (size_t i = 0; i < selected; ++i) {
          const size_t sel = offsets[i];
          if (offset < sel + w && sel < offset + w) {
            covered = true;
            break;
          }
        }
        if (!covered) {
          offsets.push_back(static_cast<uint32_t>(offset));
        }
      }
    }
  }

  // Stage 2: digest every sampled chunk. 64-byte chunks — the Medes RSC
  // size — go through the multi-buffer kernel in one batched call.
  thread_local std::vector<Sha1Digest> digest_scratch;
  digest_scratch.resize(offsets.size());
  if (w == 64) {
    thread_local std::vector<const uint8_t*> ptr_scratch;
    ptr_scratch.resize(offsets.size());
    for (size_t i = 0; i < offsets.size(); ++i) {
      ptr_scratch[i] = page.data() + offsets[i];
    }
    Sha1::HashChunk64Batch(ptr_scratch.data(), ptr_scratch.size(), digest_scratch.data());
  } else {
    for (size_t i = 0; i < offsets.size(); ++i) {
      digest_scratch[i] = Sha1::Hash(page.subspan(offsets[i], w));
    }
  }

  // Keep the K smallest keys (deduplicated) — deterministic and unordered.
  std::vector<SampledChunk> candidates;
  candidates.reserve(offsets.size());
  for (size_t i = 0; i < offsets.size(); ++i) {
    candidates.push_back({TruncateKey(digest_scratch[i].Prefix64()), offsets[i]});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const SampledChunk& a, const SampledChunk& b) {
              return a.key < b.key || (a.key == b.key && a.offset < b.offset);
            });
  candidates.erase(std::unique(candidates.begin(), candidates.end(),
                               [](const SampledChunk& a, const SampledChunk& b) {
                                 return a.key == b.key;
                               }),
                   candidates.end());
  if (candidates.size() > options_.cardinality) {
    candidates.resize(options_.cardinality);
  }
  fp.chunks = std::move(candidates);
  return fp;
}

std::vector<PageFingerprint> PageFingerprinter::FingerprintImage(std::span<const uint8_t> image,
                                                                 size_t page_size) const {
  std::vector<PageFingerprint> out;
  if (page_size == 0) {
    throw std::invalid_argument("page_size must be positive");
  }
  size_t pages = image.size() / page_size;
  out.reserve(pages);
  for (size_t p = 0; p < pages; ++p) {
    out.push_back(FingerprintPage(image.subspan(p * page_size, page_size)));
  }
  return out;
}

}  // namespace medes
