#include "chunking/fingerprint.h"

#include <algorithm>
#include <stdexcept>

#include "chunking/rabin.h"
#include "common/rng.h"
#include "common/sha1.h"

namespace medes {

PageFingerprinter::PageFingerprinter(FingerprintOptions options) : options_(options) {
  if (options_.chunk_size == 0) {
    throw std::invalid_argument("chunk_size must be positive");
  }
  if (options_.cardinality == 0) {
    throw std::invalid_argument("cardinality must be positive");
  }
  if (options_.key_bits < 1 || options_.key_bits > 64) {
    throw std::invalid_argument("key_bits must be in [1, 64]");
  }
}

PageFingerprint PageFingerprinter::FingerprintPage(std::span<const uint8_t> page) const {
  PageFingerprint fp;
  const size_t w = options_.chunk_size;
  if (page.size() < w) {
    return fp;
  }

  // Candidate chunks: (selection priority, offset). Kept as the K smallest
  // SHA-1 keys among value-selected windows so the fingerprint is an
  // order-independent function of page content.
  std::vector<SampledChunk> candidates;

  auto add_candidate = [&](size_t offset) {
    Sha1Digest digest = Sha1::Hash(page.subspan(offset, w));
    candidates.push_back({TruncateKey(digest.Prefix64()), static_cast<uint32_t>(offset)});
  };

  if (options_.mode == SamplingMode::kRandomOffsets) {
    // Difference Engine-style: fixed pseudo-random offsets, *not* content
    // defined — the same page content shifted by a few bytes fingerprints
    // completely differently.
    Rng rng(options_.random_seed);
    for (size_t i = 0; i < options_.cardinality; ++i) {
      size_t offset = rng.Below(page.size() - w + 1);
      add_candidate(offset);
    }
  } else {
    RollingHash rh(w);
    uint64_t h = rh.Init(page);
    size_t last_selected_end = 0;  // avoid overlapping selected chunks
    if ((h & options_.sample_mask) == options_.sample_pattern) {
      add_candidate(0);
      last_selected_end = w;
    }
    for (size_t i = w; i < page.size(); ++i) {
      h = rh.Roll(h, page[i - w], page[i]);
      size_t offset = i - w + 1;
      if (offset < last_selected_end) {
        continue;
      }
      if ((h & options_.sample_mask) == options_.sample_pattern) {
        add_candidate(offset);
        last_selected_end = offset + w;
      }
    }
    if (candidates.size() < options_.cardinality) {
      // Sparse/uniform pages select too few windows; fall back to fixed-stride
      // chunks so every page still has a full-cardinality fingerprint. Stride
      // offsets overlapping an already-selected content-defined chunk are
      // skipped (they would duplicate it), and the loop stops as soon as the
      // fingerprint budget is met.
      const size_t selected = candidates.size();
      const size_t stride = std::max<size_t>(w, page.size() / (options_.cardinality + 1));
      for (size_t offset = 0;
           offset + w <= page.size() && candidates.size() < options_.cardinality;
           offset += stride) {
        bool covered = false;
        for (size_t i = 0; i < selected; ++i) {
          const size_t sel = candidates[i].offset;
          if (offset < sel + w && sel < offset + w) {
            covered = true;
            break;
          }
        }
        if (!covered) {
          add_candidate(offset);
        }
      }
    }
  }

  // Keep the K smallest keys (deduplicated) — deterministic and unordered.
  std::sort(candidates.begin(), candidates.end(),
            [](const SampledChunk& a, const SampledChunk& b) {
              return a.key < b.key || (a.key == b.key && a.offset < b.offset);
            });
  candidates.erase(std::unique(candidates.begin(), candidates.end(),
                               [](const SampledChunk& a, const SampledChunk& b) {
                                 return a.key == b.key;
                               }),
                   candidates.end());
  if (candidates.size() > options_.cardinality) {
    candidates.resize(options_.cardinality);
  }
  fp.chunks = std::move(candidates);
  return fp;
}

std::vector<PageFingerprint> PageFingerprinter::FingerprintImage(std::span<const uint8_t> image,
                                                                 size_t page_size) const {
  std::vector<PageFingerprint> out;
  if (page_size == 0) {
    throw std::invalid_argument("page_size must be positive");
  }
  size_t pages = image.size() / page_size;
  out.reserve(pages);
  for (size_t p = 0; p < pages; ++p) {
    out.push_back(FingerprintPage(image.subspan(p * page_size, page_size)));
  }
  return out;
}

}  // namespace medes
