#include "controller/medes_controller.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "obs/obs.h"

namespace medes {

const char* ToString(IdleDecision decision) {
  switch (decision) {
    case IdleDecision::kKeepWarm:
      return "keep_warm";
    case IdleDecision::kDedup:
      return "dedup";
    case IdleDecision::kDesignateBase:
      return "designate_base";
  }
  return "?";
}

MedesController::MedesController(Cluster& cluster, MedesControllerOptions options,
                                 std::shared_ptr<Transport> transport, NodeId controller_node)
    : cluster_(cluster),
      options_(options),
      transport_(std::move(transport)),
      controller_node_(controller_node),
      tracking_(FunctionBenchProfiles().size()),
      scale_to_mb_(1.0 / static_cast<double>(cluster.options().bytes_per_mb)) {}

void MedesController::RecordArrival(FunctionId function, SimTime now) {
  tracking_.at(static_cast<size_t>(function)).rate.RecordArrival(now);
}

void MedesController::RecordDedupResult(FunctionId function, const DedupOpResult& result) {
  auto& t = tracking_.at(static_cast<size_t>(function));
  ++t.dedups;
  const double total_mb =
      static_cast<double>(result.pages_total) * static_cast<double>(kPageSize) * scale_to_mb_;
  const double saved_mb = static_cast<double>(result.saved_bytes) * scale_to_mb_;
  UpdateEma(t.dedup_mb, std::max(0.0, total_mb - saved_mb));
  // Restore-time transient: base pages get read back into memory.
  const double read_mb = static_cast<double>(result.pages_deduped) *
                         static_cast<double>(kPageSize) * scale_to_mb_;
  UpdateEma(t.restore_overhead_mb, read_mb);
}

void MedesController::RecordRestoreResult(FunctionId function, const RestoreOpResult& result) {
  auto& t = tracking_.at(static_cast<size_t>(function));
  ++t.restores;
  UpdateEma(t.dedup_start_s, ToSeconds(result.total_time));
}

MedesPolicyInputs MedesController::EstimateInputs(FunctionId function, SimTime now) const {
  const FunctionProfile& profile = FunctionBenchProfiles().at(static_cast<size_t>(function));
  const auto& t = tracking_.at(static_cast<size_t>(function));

  MedesPolicyInputs in;
  in.total_sandboxes = cluster_.CountIn(function, SandboxState::kWarm) +
                       cluster_.CountIn(function, SandboxState::kDedup);
  in.lambda_max = t.rate.MaxRate(now);
  in.warm_start_s = ToSeconds(profile.warm_start);
  // Until measured, estimate the dedup start as a fifth of the cold start —
  // the rough ratio the paper reports (Fig. 8).
  in.dedup_start_s =
      t.dedup_start_s > 0 ? t.dedup_start_s : std::max(0.05, ToSeconds(profile.cold_start) / 5.0);
  in.reuse_warm_s = ToSeconds(profile.exec_time) + in.warm_start_s;
  in.reuse_dedup_s = ToSeconds(profile.exec_time) + in.dedup_start_s;
  in.warm_mb = profile.memory_mb;
  in.dedup_mb = t.dedup_mb > 0 ? t.dedup_mb : 0.5 * profile.memory_mb;
  in.restore_overhead_mb =
      t.restore_overhead_mb > 0 ? t.restore_overhead_mb : 0.3 * profile.memory_mb;
  return in;
}

double MedesController::MemoryCapShareMb(FunctionId function, SimTime now) const {
  double cap = options_.cluster_memory_cap_mb;
  if (cap <= 0) {
    cap = cluster_.TotalLimitMb();
  }
  double total_rate = 0;
  for (const auto& t : tracking_) {
    total_rate += t.rate.MeanRate(now);
  }
  const double fn_rate = tracking_.at(static_cast<size_t>(function)).rate.MeanRate(now);
  if (total_rate <= 0) {
    return cap / static_cast<double>(tracking_.size());
  }
  return cap * fn_rate / total_rate;
}

double MedesController::AlphaFor(FunctionId function) const {
  for (const FunctionPolicyOverride& o : options_.function_overrides) {
    if (o.function == function) {
      return o.alpha;
    }
  }
  return options_.alpha;
}

IdleDecision MedesController::OnIdleExpiry(const Sandbox& sb, SimTime now,
                                           const obs::MessageTrace& trace) {
  const IdleDecision decision = DecideIdleExpiry(sb, now, trace);
  if (obs::MetricsEnabled()) {
    struct DecisionCounters {
      obs::Counter* keep_warm;
      obs::Counter* dedup;
      obs::Counter* designate_base;
    };
    static const DecisionCounters counters = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
      auto get = [&](const char* value) {
        return &registry.GetCounter("medes_controller_decisions_total",
                                    "Idle-expiry decisions issued by the controller", "decision",
                                    value);
      };
      return DecisionCounters{get("keep_warm"), get("dedup"), get("designate_base")};
    }();
    switch (decision) {
      case IdleDecision::kKeepWarm:
        counters.keep_warm->Add(1);
        break;
      case IdleDecision::kDedup:
        counters.dedup->Add(1);
        break;
      case IdleDecision::kDesignateBase:
        counters.designate_base->Add(1);
        break;
    }
  }
  return decision;
}

IdleDecision MedesController::DecideIdleExpiry(const Sandbox& sb, SimTime now,
                                               const obs::MessageTrace& trace) {
  // The decision itself is computed controller-side; delivering it to the
  // sandbox's node is one small control-plane message. Drops are ignored —
  // an undelivered decision just leaves the sandbox warm until the next
  // idle-period expiry re-raises it.
  if (transport_ != nullptr) {
    (void)transport_->Send(MessageType::kControlDecision, controller_node_, sb.node,
                     kControlDecisionBytes, /*requests=*/1, trace);
  }
  const FunctionId f = sb.function;
  const int dedups = cluster_.CountIn(f, SandboxState::kDedup);
  const int bases = cluster_.NumBaseSnapshots(f);

  MedesPolicyInputs in = EstimateInputs(f, now);
  MedesPolicyTargets targets;
  switch (options_.objective) {
    case PolicyObjective::kLatency:
      targets = SolveLatencyObjective(in, AlphaFor(f));
      break;
    case PolicyObjective::kMemory:
      targets = SolveMemoryObjective(in, MemoryCapShareMb(f, now));
      break;
    case PolicyObjective::kCombined:
      targets = SolveCombinedObjective(in, AlphaFor(f), MemoryCapShareMb(f, now));
      break;
  }

  const Node& node = cluster_.node(sb.node);
  const bool under_pressure =
      node.used_mb > options_.pressure_threshold * node.options.memory_limit_mb;

  bool want_dedup;
  if (under_pressure || !targets.feasible) {
    // Paper fallback: deduplicate aggressively; keep the sandbox warm only
    // when it is needed to sustain the arrival rate.
    const int idle_warm = cluster_.CountIn(f, SandboxState::kWarm);
    want_dedup = ServiceableRate(in, idle_warm - 1, dedups + 1) >= in.lambda_max;
  } else {
    want_dedup = dedups < targets.dedup;
  }
  if (!want_dedup) {
    return IdleDecision::kKeepWarm;
  }
  // Base promotion (Section 4.1.3): first base for the function, or D/B > T.
  const FunctionProfile& profile = FunctionBenchProfiles().at(static_cast<size_t>(f));
  const bool base_fits =
      profile.memory_mb <= options_.max_base_node_fraction * node.options.memory_limit_mb;
  if (base_fits &&
      (bases == 0 || static_cast<double>(dedups) / static_cast<double>(bases) >
                         options_.base_promotion_threshold)) {
    // Never promote a sandbox that is already a base.
    if (cluster_.FindBaseSnapshot(sb.id) == nullptr) {
      return IdleDecision::kDesignateBase;
    }
  }
  if (cluster_.FindBaseSnapshot(sb.id) != nullptr) {
    // A base sandbox's memory must stay available; keep it warm.
    return IdleDecision::kKeepWarm;
  }
  if (bases == 0 && cluster_.base_snapshots().empty()) {
    // Nothing to dedup against anywhere in the cluster.
    return IdleDecision::kKeepWarm;
  }
  return IdleDecision::kDedup;
}

}  // namespace medes
