// The Medes controller's policy module + per-function bookkeeping.
//
// Runs at idle-period expiry for each warm sandbox (paper Fig. 4b): using
// cluster-wide metrics (per-function arrival rates, measured dedup footprints
// and restore latencies) it solves the Section 5 optimisation problem and
// decides whether the sandbox stays warm, becomes a base sandbox, or is
// deduplicated. Base promotion follows Section 4.1.3: promote a new base for
// function f whenever f has no base yet or D_f / B_f exceeds the threshold T
// (the paper uses T = 40).
#ifndef MEDES_CONTROLLER_MEDES_CONTROLLER_H_
#define MEDES_CONTROLLER_MEDES_CONTROLLER_H_

#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "common/time.h"
#include "dedupagent/dedup_agent.h"
#include "net/transport.h"
#include "policy/keep_alive.h"
#include "policy/medes_policy.h"

namespace medes {

enum class PolicyObjective {
  kLatency,   // P1: min memory s.t. S <= alpha * sW
  kMemory,    // P2: min S s.t. M <= per-function share of the cluster cap
  kCombined,  // min memory s.t. both the P1 and P2 constraints hold
};

// Per-function policy override (paper Section 5.3: "critical functions can
// be run on a tight latency constraint while best-effort functions can be
// run on a loose latency constraint").
struct FunctionPolicyOverride {
  FunctionId function = -1;
  double alpha = 2.5;
};

struct MedesControllerOptions {
  PolicyObjective objective = PolicyObjective::kLatency;
  double alpha = 2.5;                    // latency target multiplier (P1)
  double cluster_memory_cap_mb = 0;      // total budget for P2 (0 = node limits)
  // Per-function latency-criticality overrides (empty = uniform alpha).
  std::vector<FunctionPolicyOverride> function_overrides;
  double base_promotion_threshold = 40;  // T
  // A base snapshot pins a full copy of the sandbox's memory; refuse to
  // designate one whose footprint exceeds this fraction of a node's limit
  // (irrelevant at the paper's 2 GB/node scale, protective on small nodes).
  double max_base_node_fraction = 0.25;
  // Node-memory fraction above which the policy deduplicates regardless of
  // the objective's answer (the paper's infeasibility fallback: under
  // pressure, keep sandboxes warm only when the request rate needs them).
  double pressure_threshold = 0.75;
  SimDuration keep_alive = 10 * kMinute;
  SimDuration idle_period = 1 * kMinute;
  SimDuration keep_dedup = 10 * kMinute;
};

enum class IdleDecision {
  kKeepWarm,
  kDedup,
  kDesignateBase,
};

const char* ToString(IdleDecision decision);

// Modelled wire size of one controller decision message (a verdict plus
// sandbox identity — tiny; the latency term dominates).
inline constexpr Bytes kControlDecisionBytes{64};

class MedesController {
 public:
  // With a transport bound, every idle-expiry decision is charged as one
  // kControlDecision message from `controller_node` to the sandbox's node.
  // The default (no transport) keeps the controller purely local — existing
  // standalone users and tests are unaffected.
  MedesController(Cluster& cluster, MedesControllerOptions options,
                  std::shared_ptr<Transport> transport = nullptr,
                  NodeId controller_node = kInvalidNode);

  const MedesControllerOptions& options() const { return options_; }

  // Request arrival bookkeeping (rate estimation for lambda_max).
  void RecordArrival(FunctionId function, SimTime now);

  // Measurement feedback: refreshes the per-function EMA estimates the
  // optimisation problem consumes (mD, mR, sD).
  void RecordDedupResult(FunctionId function, const DedupOpResult& result);
  void RecordRestoreResult(FunctionId function, const RestoreOpResult& result);

  // The policy decision for an idle warm sandbox. `trace`, when sampled,
  // parents the kControlDecision wire span delivering the verdict.
  IdleDecision OnIdleExpiry(const Sandbox& sb, SimTime now,
                            const obs::MessageTrace& trace = {});

  // Exposed for tests/benches: the optimisation inputs currently estimated
  // for a function.
  MedesPolicyInputs EstimateInputs(FunctionId function, SimTime now) const;

  // Memory cap share of `function` under P2 (proportional to mean arrival
  // rates, paper Section 5.3).
  double MemoryCapShareMb(FunctionId function, SimTime now) const;

  // Effective latency multiplier for `function` (override or global alpha).
  double AlphaFor(FunctionId function) const;

 private:
  IdleDecision DecideIdleExpiry(const Sandbox& sb, SimTime now, const obs::MessageTrace& trace);

  struct FunctionTracking {
    RateTracker rate;
    // EMAs seeded lazily from the first measurements.
    double dedup_mb = -1;
    double restore_overhead_mb = -1;
    double dedup_start_s = -1;
    uint64_t dedups = 0;
    uint64_t restores = 0;
  };

  static void UpdateEma(double& ema, double sample) {
    constexpr double kAlpha = 0.25;
    ema = (ema < 0) ? sample : (1 - kAlpha) * ema + kAlpha * sample;
  }

  Cluster& cluster_;
  MedesControllerOptions options_;
  std::shared_ptr<Transport> transport_;
  NodeId controller_node_ = kInvalidNode;
  std::vector<FunctionTracking> tracking_;
  double scale_to_mb_;  // 1 / bytes_per_mb
};

}  // namespace medes

#endif  // MEDES_CONTROLLER_MEDES_CONTROLLER_H_
