#include "delta/delta.h"

#include <algorithm>
#include <cstring>

#include "common/hash.h"
#include "common/kernels/memops.h"

namespace medes {
namespace delta_internal {

void AppendVarint(std::vector<uint8_t>& out, uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<uint8_t>(value));
}

uint64_t ReadVarint(std::span<const uint8_t> data, size_t& pos) {
  uint64_t value = 0;
  int shift = 0;
  while (true) {
    if (pos >= data.size() || shift > 63) {
      throw DeltaError("varint out of range");
    }
    uint8_t byte = data[pos++];
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      return value;
    }
    shift += 7;
  }
}

}  // namespace delta_internal

namespace {

using delta_internal::AppendVarint;
using delta_internal::ReadVarint;

constexpr uint8_t kMagic[4] = {'M', 'D', 'T', '1'};
constexpr uint8_t kOpAdd = 0x00;
constexpr uint8_t kOpCopy = 0x01;

// Seed-index over the base buffer: maps hashed seeds to base offsets.
// Open-addressed, power-of-two sized, each slot holding up to `depth` offsets
// chained via per-slot arrays would complicate things; instead we use a
// bucketed table with a small fixed depth (newest offsets win). The backing
// store is borrowed from the caller (DeltaScratch) so repeated encodes reuse
// its capacity.
class SeedIndex {
 public:
  SeedIndex(std::span<const uint8_t> base, size_t seed_len, size_t stride, size_t depth,
            std::vector<size_t>& slots)
      : base_(base), seed_len_(seed_len), depth_(depth), slots_(slots) {
    if (base.size() < seed_len) {
      slots_.clear();
      return;
    }
    size_t positions = (base.size() - seed_len) / stride + 1;
    size_t want = positions * depth * 2;
    size_t cap = 64;
    while (cap < want) {
      cap <<= 1;
    }
    mask_ = cap - 1;
    slots_.assign(cap * depth_, kEmpty);
    for (size_t i = 0; i + seed_len <= base.size(); i += stride) {
      Insert(HashSeed(base.data() + i), i);
    }
  }

  // Finds the base offset whose seed matches the one at `p`, preferring the
  // longest forward extension. Returns npos when no candidate matches.
  static constexpr size_t npos = static_cast<size_t>(-1);

  size_t FindBest(std::span<const uint8_t> target, size_t t_off) const {
    if (slots_.empty() || t_off + seed_len_ > target.size()) {
      return npos;
    }
    uint64_t h = HashSeed(target.data() + t_off);
    size_t bucket = (h & mask_) * depth_;
    size_t best = npos;
    size_t best_len = 0;
    for (size_t d = 0; d < depth_; ++d) {
      size_t cand = slots_[bucket + d];
      if (cand == kEmpty) {
        break;
      }
      if (!kernels::MemEqual(base_.data() + cand, target.data() + t_off, seed_len_)) {
        continue;
      }
      size_t len = ExtendForward(target, t_off, cand);
      if (len > best_len) {
        best_len = len;
        best = cand;
      }
    }
    return best;
  }

  size_t ExtendForward(std::span<const uint8_t> target, size_t t_off, size_t b_off) const {
    size_t max = std::min(base_.size() - b_off, target.size() - t_off);
    return kernels::MatchForward(base_.data() + b_off, target.data() + t_off, max);
  }

 private:
  static constexpr size_t kEmpty = static_cast<size_t>(-1);

  uint64_t HashSeed(const uint8_t* p) const {
    return MixBits(Fnv1a64({p, seed_len_}));
  }

  void Insert(uint64_t h, size_t offset) {
    size_t bucket = (h & mask_) * depth_;
    // Shift older entries down; newest first.
    for (size_t d = depth_ - 1; d > 0; --d) {
      slots_[bucket + d] = slots_[bucket + d - 1];
    }
    slots_[bucket] = offset;
  }

  std::span<const uint8_t> base_;
  size_t seed_len_;
  size_t depth_;
  size_t mask_ = 0;
  std::vector<size_t>& slots_;
};

void EmitAdd(std::vector<uint8_t>& out, std::span<const uint8_t> literal) {
  if (literal.empty()) {
    return;
  }
  out.push_back(kOpAdd);
  AppendVarint(out, literal.size());
  out.insert(out.end(), literal.begin(), literal.end());
}

void EmitCopy(std::vector<uint8_t>& out, size_t base_off, size_t len) {
  out.push_back(kOpCopy);
  AppendVarint(out, base_off);
  AppendVarint(out, len);
}

// Parses and bounds-checks the delta header. Returns the op-stream start.
size_t CheckHeader(std::span<const uint8_t> delta, uint64_t* base_len, uint64_t* target_len) {
  if (delta.size() < 4 || std::memcmp(delta.data(), kMagic, 4) != 0) {
    throw DeltaError("bad delta magic");
  }
  size_t pos = 4;
  *base_len = ReadVarint(delta, pos);
  *target_len = ReadVarint(delta, pos);
  return pos;
}

}  // namespace

std::vector<uint8_t> DeltaEncode(std::span<const uint8_t> base, std::span<const uint8_t> target,
                                 const DeltaOptions& options) {
  std::vector<uint8_t> out;
  DeltaEncodeInto(base, target, options, out);
  return out;
}

void DeltaEncodeInto(std::span<const uint8_t> base, std::span<const uint8_t> target,
                     const DeltaOptions& options, std::vector<uint8_t>& out,
                     DeltaScratch* scratch) {
  if (options.seed_length < 4) {
    throw DeltaError("seed_length must be >= 4");
  }
  out.clear();
  out.reserve(target.size() / 4 + 32);
  out.insert(out.end(), std::begin(kMagic), std::end(kMagic));
  AppendVarint(out, base.size());
  AppendVarint(out, target.size());

  int level = std::clamp(options.level, 0, 9);
  if (level == 0 || base.size() < options.seed_length) {
    EmitAdd(out, target);
    return;
  }

  // Level controls index density (stride over base) and bucket depth.
  // Level 1: stride = seed/2, depth 2 (fast). Level 9: stride 1, depth 8.
  size_t stride = std::max<size_t>(1, options.seed_length / (1 + static_cast<size_t>(level)));
  size_t depth = 1 + static_cast<size_t>(level) / 2 + 1;
  DeltaScratch local_scratch;
  DeltaScratch& sc = scratch != nullptr ? *scratch : local_scratch;
  SeedIndex index(base, options.seed_length, stride, depth, sc.seed_slots);

  size_t pending = 0;  // start of unmatched literal run
  size_t pos = 0;
  while (pos + options.seed_length <= target.size()) {
    size_t cand = index.FindBest(target, pos);
    if (cand == SeedIndex::npos) {
      ++pos;
      continue;
    }
    size_t fwd = index.ExtendForward(target, pos, cand);
    // Extend backwards into the pending literal run.
    size_t back = kernels::MatchBackward(base.data() + cand, target.data() + pos,
                                         std::min(pos - pending, cand));
    size_t match_off = cand - back;
    size_t match_pos = pos - back;
    size_t match_len = fwd + back;
    if (match_len < options.min_match) {
      ++pos;
      continue;
    }
    EmitAdd(out, target.subspan(pending, match_pos - pending));
    EmitCopy(out, match_off, match_len);
    pos = match_pos + match_len;
    pending = pos;
  }
  EmitAdd(out, target.subspan(pending));
}

std::vector<uint8_t> DeltaDecode(std::span<const uint8_t> base, std::span<const uint8_t> delta) {
  std::vector<uint8_t> out;
  DeltaDecodeInto(base, delta, out);
  return out;
}

void DeltaDecodeInto(std::span<const uint8_t> base, std::span<const uint8_t> delta,
                     std::vector<uint8_t>& out) {
  uint64_t base_len = 0;
  uint64_t target_len = 0;
  const size_t ops_start = CheckHeader(delta, &base_len, &target_len);
  if (base_len != base.size()) {
    throw DeltaError("delta was computed against a different base length");
  }

  // Pass 1: validate the whole op stream — opcodes, varints and bounds —
  // before the output buffer is touched or sized. All checks are written in
  // subtraction form: `pos + len` style sums can wrap for huge varint
  // lengths and let a corrupt delta through.
  uint64_t total = 0;
  size_t pos = ops_start;
  while (pos < delta.size()) {
    uint8_t op = delta[pos++];
    if (op == kOpAdd) {
      uint64_t len = ReadVarint(delta, pos);
      if (len > delta.size() - pos) {
        throw DeltaError("ADD overruns delta");
      }
      pos += len;
      if (len > target_len - total) {
        throw DeltaError("reconstructed length mismatch");
      }
      total += len;
    } else if (op == kOpCopy) {
      uint64_t off = ReadVarint(delta, pos);
      uint64_t len = ReadVarint(delta, pos);
      if (off > base.size() || len > base.size() - off) {
        throw DeltaError("COPY overruns base");
      }
      if (len > target_len - total) {
        throw DeltaError("reconstructed length mismatch");
      }
      total += len;
    } else {
      throw DeltaError("unknown delta opcode");
    }
  }
  if (total != target_len) {
    throw DeltaError("reconstructed length mismatch");
  }

  // Pass 2: single sized allocation, then straight memcpys. The stream was
  // validated above, so this pass re-reads varints without re-checking.
  out.resize(target_len);
  uint8_t* dst = out.data();
  pos = ops_start;
  while (pos < delta.size()) {
    uint8_t op = delta[pos++];
    if (op == kOpAdd) {
      uint64_t len = ReadVarint(delta, pos);
      kernels::CopyBytes(dst, delta.data() + pos, len);
      pos += len;
      dst += len;
    } else {
      uint64_t off = ReadVarint(delta, pos);
      uint64_t len = ReadVarint(delta, pos);
      kernels::CopyBytes(dst, base.data() + off, len);
      dst += len;
    }
  }
}

DeltaStats InspectDelta(std::span<const uint8_t> delta) {
  DeltaStats stats;
  stats.delta_length = delta.size();
  uint64_t base_len = 0;
  uint64_t target_len = 0;
  size_t pos = CheckHeader(delta, &base_len, &target_len);
  stats.base_length = base_len;
  stats.target_length = target_len;
  while (pos < delta.size()) {
    uint8_t op = delta[pos++];
    if (op == kOpAdd) {
      uint64_t len = ReadVarint(delta, pos);
      if (len > delta.size() - pos) {
        throw DeltaError("ADD overruns delta");
      }
      stats.add_bytes += len;
      ++stats.add_ops;
      pos += len;
    } else if (op == kOpCopy) {
      ReadVarint(delta, pos);
      uint64_t len = ReadVarint(delta, pos);
      stats.copy_bytes += len;
      ++stats.copy_ops;
    } else {
      throw DeltaError("unknown delta opcode");
    }
  }
  return stats;
}

size_t DeltaTargetLength(std::span<const uint8_t> delta) {
  uint64_t base_len = 0;
  uint64_t target_len = 0;
  CheckHeader(delta, &base_len, &target_len);
  return target_len;
}

}  // namespace medes
