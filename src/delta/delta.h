// Binary delta (diff/patch) codec — the stand-in for Xdelta3.
//
// Medes stores a deduplicated page as a *patch* against a similar base page
// (paper Section 4.1.2): the patch holds the bytes unique to the target plus
// short copy instructions referencing byte ranges of the base. This module
// implements that codec from scratch:
//
//   delta := "MDT1" varint(base_len) varint(target_len) instruction*
//   instruction := 0x00 varint(len) byte[len]          -- ADD literal bytes
//                | 0x01 varint(base_off) varint(len)   -- COPY from base
//
// Matching uses a hash table over fixed-length seeds of the base with greedy
// bidirectional extension. `level` mirrors Xdelta3's compression levels: it
// trades encode effort (seed indexing density and bucket depth) for patch
// size. The paper runs Xdelta3 at level 1 to keep restores fast; our default
// matches that.
//
// Hot-path notes: seed comparison and match extension run through the
// dispatched word/vector kernels (common/kernels/memops.h); DeltaDecode
// validates the instruction stream in one pass and then memcpys into a
// buffer pre-sized from the header instead of growing it op by op. The
// *Into overloads write into caller-owned buffers and accept an optional
// DeltaScratch so steady-state encode/decode performs no allocation.
#ifndef MEDES_DELTA_DELTA_H_
#define MEDES_DELTA_DELTA_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace medes {

// Thrown when decoding a malformed or mismatched delta.
class DeltaError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct DeltaOptions {
  // 0 = no matching (patch is one big ADD); 1 = fast (default, Xdelta3-level-1
  // analogue); 9 = max effort. Values in between interpolate index density.
  int level = 1;
  // Length of the seed used for match discovery. Must be >= 4.
  size_t seed_length = 16;
  // Minimum match length worth emitting a COPY for (shorter matches cost more
  // in instruction overhead than they save).
  size_t min_match = 8;
};

struct DeltaStats {
  size_t base_length = 0;
  size_t target_length = 0;
  size_t delta_length = 0;
  size_t add_bytes = 0;    // literal bytes carried in the patch
  size_t copy_bytes = 0;   // bytes reconstructed from the base
  size_t add_ops = 0;
  size_t copy_ops = 0;
};

// Reusable encoder working storage (the seed-index table). Keep one per
// worker thread and pass it to DeltaEncodeInto to avoid reallocating the
// index for every page.
struct DeltaScratch {
  std::vector<size_t> seed_slots;
};

// Encodes `target` as a delta against `base`.
[[nodiscard]] std::vector<uint8_t> DeltaEncode(std::span<const uint8_t> base, std::span<const uint8_t> target,
                                 const DeltaOptions& options = {});

// As DeltaEncode, but replaces the contents of `out` (capacity is reused)
// and optionally uses `scratch` for the seed index.
void DeltaEncodeInto(std::span<const uint8_t> base, std::span<const uint8_t> target,
                     const DeltaOptions& options, std::vector<uint8_t>& out,
                     DeltaScratch* scratch = nullptr);

// Reconstructs the target from `base` and `delta`. Throws DeltaError if the
// delta is corrupt or references out-of-range base bytes.
[[nodiscard]] std::vector<uint8_t> DeltaDecode(std::span<const uint8_t> base, std::span<const uint8_t> delta);

// As DeltaDecode, but replaces the contents of `out` (capacity is reused).
// The op stream is fully validated before `out` is touched.
void DeltaDecodeInto(std::span<const uint8_t> base, std::span<const uint8_t> delta,
                     std::vector<uint8_t>& out);

// Parses a delta's instruction stream without materialising the target.
[[nodiscard]] DeltaStats InspectDelta(std::span<const uint8_t> delta);

// Target length recorded in the delta header (cheap peek).
[[nodiscard]] size_t DeltaTargetLength(std::span<const uint8_t> delta);

namespace delta_internal {
// LEB128 unsigned varints — exposed for unit testing.
void AppendVarint(std::vector<uint8_t>& out, uint64_t value);
uint64_t ReadVarint(std::span<const uint8_t> data, size_t& pos);
}  // namespace delta_internal

}  // namespace medes

#endif  // MEDES_DELTA_DELTA_H_
