#include "cluster/recovery_validator.h"

#include <algorithm>

namespace medes {

RecoveryValidator MakeRecoveryValidator(const Cluster& cluster) {
  return [&cluster](const store::RecoveredSandbox& recovered) {
    const auto& bases = cluster.base_snapshots();
    const auto it = bases.find(recovered.sandbox);
    if (it == bases.end()) {
      return false;  // base purged since the record was logged
    }
    if (it->second.node != recovered.node) {
      return false;  // migrated: the logged locations would be wrong
    }
    // Every logged base page must byte-match what the live snapshot serves —
    // a mismatch means the recovered entry describes bytes the cluster can
    // no longer produce, and serving it could hand out a wrong base page.
    for (const auto& [page, bytes] : recovered.pages) {
      const std::vector<uint8_t> live =
          cluster.ReadBasePage(PageLocation{recovered.node, recovered.sandbox, page});
      if (live.size() != bytes.size() || !std::equal(bytes.begin(), bytes.end(), live.begin())) {
        return false;
      }
    }
    return true;
  };
}

}  // namespace medes
