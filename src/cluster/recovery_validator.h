// Builds the live-sandbox validator used by registry crash recovery.
//
// A recovered registry entry is only as good as the base sandbox behind it:
// after a restart, a logged sandbox may have been purged, migrated, or its
// snapshot replaced. The validator closes the loop — RecoverInto (see
// src/registry/registry_recovery.h) consults it before re-inserting each
// recovered sandbox, so the registry never serves a base page the cluster
// cannot actually produce.
#ifndef MEDES_CLUSTER_RECOVERY_VALIDATOR_H_
#define MEDES_CLUSTER_RECOVERY_VALIDATOR_H_

#include "cluster/cluster.h"
#include "registry/registry_recovery.h"

namespace medes {

// Returns a validator that accepts a recovered sandbox only when:
//   - a base snapshot with its id still exists in `cluster`,
//   - it lives on the recorded node,
//   - every logged base page byte-matches the live snapshot's page
//     (Cluster::ReadBasePage at the recorded location).
// `cluster` must outlive the returned validator.
RecoveryValidator MakeRecoveryValidator(const Cluster& cluster);

}  // namespace medes

#endif  // MEDES_CLUSTER_RECOVERY_VALIDATOR_H_
