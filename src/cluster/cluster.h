// Cluster state: nodes, sandboxes, the sandbox lifecycle (paper Fig. 4b),
// base-sandbox snapshots, and per-node memory accounting.
//
// The cluster is a passive data model — the scheduler/policy (controller) and
// the dedup/restore ops (dedup agent) mutate it; the platform orchestrates.
// Memory is accounted in *represented* MB: the synthetic images are built at
// a configurable byte scale, and every byte count is converted back through
// `bytes_per_mb`.
#ifndef MEDES_CLUSTER_CLUSTER_H_
#define MEDES_CLUSTER_CLUSTER_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "checkpoint/checkpoint.h"
#include "chunking/fingerprint.h"
#include "common/time.h"
#include "memstate/image.h"
#include "memstate/library_pool.h"
#include "memstate/profiles.h"
#include "registry/fingerprint_registry.h"

namespace medes {

// Lifecycle states of an in-memory sandbox (a purged sandbox simply ceases to
// exist — "cold" is the absence of a sandbox).
enum class SandboxState {
  kRunning,
  kWarm,
  kDedup,
};

const char* ToString(SandboxState state);

// A record of one deduplicated page: which base page(s) its patch was
// computed against (paper Section 4.1.2 computes the patch "relative to the
// base page(s) corresponding to its RSCs"; the default configuration uses
// one). Patch bytes live in the sandbox's checkpoint; this is the dedup
// agent's local metadata ("dedup page table"), kept on the sandbox's node so
// restores never talk to the controller (paper Section 4.2).
struct PatchRecord {
  PageIndex page;
  std::vector<PageLocation> bases;
};

struct Sandbox {
  SandboxId id;
  FunctionId function = -1;
  NodeId node = kInvalidNode;
  SandboxState state = SandboxState::kRunning;

  // Increments on every execution; seeds the instance image content (each
  // run leaves different request data in the heap).
  uint64_t generation = 0;

  SimTime created;
  SimTime last_used;
  SimTime idle_since;
  SimTime dedup_since;

  // Present when state == kDedup (patches + unique leftover pages).
  std::optional<MemoryCheckpoint> checkpoint;
  std::vector<PatchRecord> patches;
  bool namespaces_prepared = false;
  // Footprint cached at dedup time — the accounting basis while in kDedup
  // (the live checkpoint mutates during restores, so it cannot be the basis).
  double dedup_footprint_mb = 0;

  // Pending lifecycle timer (keep-alive / idle / keep-dedup); 0 = none.
  uint64_t pending_timer = 0;
  // Deadline the platform's coalesced idle-expiry bucket expects this sandbox
  // to be handled at; 0 = not enrolled (see ServerlessPlatform).
  SimTime idle_deadline;

  // Statistic: how this sandbox last started.
  uint64_t runs = 0;
};

// A pinned snapshot of a base sandbox's memory: serves base pages to dedup
// and restore ops cluster-wide. Pinned (refcounted via the registry) until
// no dedup sandbox holds patches against it.
struct BaseSnapshot {
  SandboxId sandbox;
  FunctionId function = -1;
  NodeId node = kInvalidNode;
  MemoryCheckpoint checkpoint;  // always holds real payload bytes
  double memory_mb = 0;
};

struct NodeOptions {
  double memory_limit_mb = 2048;
};

struct Node {
  NodeId id = kInvalidNode;
  NodeOptions options;
  double used_mb = 0;  // maintained incrementally by the cluster
  std::vector<SandboxId> sandboxes;  // ids resident on this node
};

struct ClusterOptions {
  int num_nodes = 19;           // worker nodes (the paper's 20th is the controller)
  double node_memory_mb = 2048; // software-defined per-node limit
  size_t bytes_per_mb = 8192;   // image scale: real bytes per represented MB
  // Dedup-sandbox metadata overhead, as a fraction of the warm footprint
  // (paper Section 7.7: metadata stayed below 10% of node memory).
  double dedup_metadata_fraction = 0.02;
  bool aslr = false;
  uint64_t seed = 0xc105;
  // When false, CountIn recounts by materialized scan instead of reading the
  // incrementally maintained counters — the pre-refactor cost model, kept so
  // bench/cluster_scale can measure the before/after honestly. (Results are
  // identical either way; only the cost changes.)
  bool incremental_state_counts = true;
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions options);

  const ClusterOptions& options() const { return options_; }
  int NumNodes() const { return static_cast<int>(nodes_.size()); }
  Node& node(NodeId id) { return nodes_.at(static_cast<size_t>(id.value())); }
  const Node& node(NodeId id) const { return nodes_.at(static_cast<size_t>(id.value())); }

  const LibraryPool& library_pool() const { return pool_; }

  // ---- Sandbox lifecycle ----------------------------------------------

  // Creates a running sandbox of `profile` on `node` (a cold start's spawn).
  Sandbox& Spawn(const FunctionProfile& profile, NodeId node, SimTime now);

  // Removes the sandbox and releases its memory. Precondition: its state's
  // resources (base refs) were released by the caller (dedup agent).
  void Purge(SandboxId id);

  Sandbox* Find(SandboxId id);
  const Sandbox* Find(SandboxId id) const;

  // All sandbox ids of `function` in `state` (deterministic order).
  std::vector<SandboxId> SandboxesIn(FunctionId function, SandboxState state) const;
  std::vector<SandboxId> AllSandboxes() const;

  // Number of `function` sandboxes in `state`, maintained incrementally at
  // every lifecycle transition — O(1), no vector build. The test oracle is
  // SandboxesIn(...).size().
  int CountIn(FunctionId function, SandboxState state) const {
    if (!options_.incremental_state_counts) {
      return static_cast<int>(SandboxesIn(function, state).size());
    }
    auto it = counts_.find(function);
    return it == counts_.end() ? 0 : it->second[static_cast<size_t>(state)];
  }

  // Allocation-free scan over `function`'s sandboxes in `state`, in ascending
  // id order (same order as SandboxesIn). `fn` may mutate the sandbox but not
  // change its state or purge it mid-scan.
  template <typename Fn>
  void ForEachSandboxIn(FunctionId function, SandboxState state, Fn&& fn) {
    auto it = by_function_.find(function);
    if (it == by_function_.end()) {
      return;
    }
    for (Sandbox* sb : it->second) {
      if (sb->state == state) {
        fn(*sb);
      }
    }
  }
  template <typename Fn>
  void ForEachSandboxIn(FunctionId function, SandboxState state, Fn&& fn) const {
    auto it = by_function_.find(function);
    if (it == by_function_.end()) {
      return;
    }
    for (const Sandbox* sb : it->second) {
      if (sb->state == state) {
        fn(*sb);
      }
    }
  }

  // State transitions with memory-accounting side effects.
  void MarkRunning(Sandbox& sb, SimTime now);
  void MarkWarm(Sandbox& sb, SimTime now);
  // kWarm -> kDedup: the caller (dedup agent) already installed the
  // checkpoint + patches; this adjusts accounting.
  void MarkDedup(Sandbox& sb, SimTime now);
  // kDedup -> kWarm (after a restore op). Memory accounting switches to the
  // full warm footprint either way; `release_checkpoint` additionally drops
  // the checkpoint and patch records. Lazy restores pass false — their
  // background phase still needs both and releases them on completion.
  void MarkRestored(Sandbox& sb, SimTime now, bool release_checkpoint = true);

  // ---- Base snapshots --------------------------------------------------

  // Pins a snapshot of a warm sandbox's memory as a base.
  BaseSnapshot& AddBaseSnapshot(const Sandbox& sb, MemoryCheckpoint checkpoint);
  void RemoveBaseSnapshot(SandboxId id);
  BaseSnapshot* FindBaseSnapshot(SandboxId id);
  const std::map<SandboxId, BaseSnapshot>& base_snapshots() const { return bases_; }
  // Base snapshots of a function.
  int NumBaseSnapshots(FunctionId function) const;

  // Reads the bytes of a base page (the RDMA fabric's page provider).
  std::vector<uint8_t> ReadBasePage(const PageLocation& location) const;

  // ---- Memory accounting ----------------------------------------------

  const FunctionProfile& ProfileOf(const Sandbox& sb) const;
  double WarmFootprintMb(const Sandbox& sb) const;
  double DedupFootprintMb(const Sandbox& sb) const;
  double SandboxFootprintMb(const Sandbox& sb) const;

  double TotalUsedMb() const;
  double TotalLimitMb() const;

  // Recomputes per-node usage from scratch (test oracle for the incremental
  // accounting).
  double RecomputeNodeUsedMb(NodeId id) const;

  // Builds the *current* memory image of a sandbox (depends on generation).
  MemoryImage BuildImage(const Sandbox& sb) const;

  // Least-used node; `required_mb` may exceed free space (caller evicts).
  NodeId LeastUsedNode() const;

 private:
  void AddUsage(NodeId node, double mb);
  // Incremental (function, state) count maintenance; every state write in
  // this class funnels through these.
  void CountAdjust(FunctionId function, SandboxState state, int delta) {
    counts_[function][static_cast<size_t>(state)] += delta;
  }
  void SetState(Sandbox& sb, SandboxState state) {
    CountAdjust(sb.function, sb.state, -1);
    CountAdjust(sb.function, state, +1);
    sb.state = state;
  }

  ClusterOptions options_;
  LibraryPool pool_;
  std::vector<Node> nodes_;
  SandboxId next_id_{1};
  std::map<SandboxId, Sandbox> sandboxes_;  // ordered => deterministic iteration
  std::map<SandboxId, BaseSnapshot> bases_;
  // Per-function index (ascending ids) so scheduling scans stay O(per-fn).
  // Raw pointers into sandboxes_ — std::map nodes are address-stable.
  std::unordered_map<FunctionId, std::vector<Sandbox*>> by_function_;
  // Per-function live-state counts, indexed by SandboxState.
  std::unordered_map<FunctionId, std::array<int, 3>> counts_;
};

}  // namespace medes

#endif  // MEDES_CLUSTER_CLUSTER_H_
