#include "cluster/cluster.h"

#include <algorithm>
#include <stdexcept>

#include "common/hash.h"

namespace medes {

const char* ToString(SandboxState state) {
  switch (state) {
    case SandboxState::kRunning:
      return "running";
    case SandboxState::kWarm:
      return "warm";
    case SandboxState::kDedup:
      return "dedup";
  }
  return "?";
}

Cluster::Cluster(ClusterOptions options)
    : options_(options), pool_(options.seed, options.bytes_per_mb) {
  if (options_.num_nodes <= 0) {
    throw std::invalid_argument("Cluster: need at least one node");
  }
  nodes_.resize(static_cast<size_t>(options_.num_nodes));
  for (int i = 0; i < options_.num_nodes; ++i) {
    nodes_[static_cast<size_t>(i)].id = NodeId{i};
    nodes_[static_cast<size_t>(i)].options.memory_limit_mb = options_.node_memory_mb;
  }
}

Sandbox& Cluster::Spawn(const FunctionProfile& profile, NodeId node, SimTime now) {
  Sandbox sb;
  sb.id = next_id_++;
  sb.function = profile.id;
  sb.node = node;
  sb.state = SandboxState::kRunning;
  sb.created = now;
  sb.last_used = now;
  sb.generation = 1;
  auto [it, inserted] = sandboxes_.emplace(sb.id, std::move(sb));
  nodes_.at(static_cast<size_t>(node.value())).sandboxes.push_back(it->first);
  by_function_[profile.id].push_back(&it->second);  // map nodes: stable address
  CountAdjust(profile.id, SandboxState::kRunning, +1);
  AddUsage(node, profile.memory_mb);
  return it->second;
}

void Cluster::Purge(SandboxId id) {
  auto it = sandboxes_.find(id);
  if (it == sandboxes_.end()) {
    throw std::out_of_range("Purge: unknown sandbox");
  }
  Sandbox& sb = it->second;
  AddUsage(sb.node, -SandboxFootprintMb(sb));
  auto& list = nodes_.at(static_cast<size_t>(sb.node.value())).sandboxes;
  list.erase(std::remove(list.begin(), list.end(), id), list.end());
  auto& fn_list = by_function_[sb.function];
  fn_list.erase(std::remove(fn_list.begin(), fn_list.end(), &sb), fn_list.end());
  CountAdjust(sb.function, sb.state, -1);
  sandboxes_.erase(it);
}

Sandbox* Cluster::Find(SandboxId id) {
  auto it = sandboxes_.find(id);
  return it == sandboxes_.end() ? nullptr : &it->second;
}

const Sandbox* Cluster::Find(SandboxId id) const {
  auto it = sandboxes_.find(id);
  return it == sandboxes_.end() ? nullptr : &it->second;
}

std::vector<SandboxId> Cluster::SandboxesIn(FunctionId function, SandboxState state) const {
  std::vector<SandboxId> out;
  ForEachSandboxIn(function, state, [&out](const Sandbox& sb) { out.push_back(sb.id); });
  return out;
}

std::vector<SandboxId> Cluster::AllSandboxes() const {
  std::vector<SandboxId> out;
  out.reserve(sandboxes_.size());
  for (const auto& [id, sb] : sandboxes_) {
    out.push_back(id);
  }
  return out;
}

void Cluster::MarkRunning(Sandbox& sb, SimTime now) {
  if (sb.state == SandboxState::kDedup) {
    throw std::logic_error("MarkRunning: restore the sandbox first");
  }
  SetState(sb, SandboxState::kRunning);
  sb.last_used = now;
  ++sb.runs;
  ++sb.generation;
}

void Cluster::MarkWarm(Sandbox& sb, SimTime now) {
  SetState(sb, SandboxState::kWarm);
  sb.idle_since = now;
  sb.last_used = now;
}

void Cluster::MarkDedup(Sandbox& sb, SimTime now) {
  if (sb.state != SandboxState::kWarm) {
    throw std::logic_error("MarkDedup: sandbox must be warm");
  }
  if (!sb.checkpoint.has_value()) {
    throw std::logic_error("MarkDedup: checkpoint not installed");
  }
  const double before = WarmFootprintMb(sb);
  SetState(sb, SandboxState::kDedup);
  sb.dedup_since = now;
  sb.dedup_footprint_mb = DedupFootprintMb(sb);
  AddUsage(sb.node, sb.dedup_footprint_mb - before);
}

void Cluster::MarkRestored(Sandbox& sb, SimTime now, bool release_checkpoint) {
  if (sb.state != SandboxState::kDedup) {
    throw std::logic_error("MarkRestored: sandbox not in dedup state");
  }
  const double before = sb.dedup_footprint_mb;
  SetState(sb, SandboxState::kWarm);
  sb.idle_since = now;
  if (release_checkpoint) {
    sb.checkpoint.reset();
    sb.patches.clear();
  }
  sb.dedup_footprint_mb = 0;
  AddUsage(sb.node, WarmFootprintMb(sb) - before);
}

BaseSnapshot& Cluster::AddBaseSnapshot(const Sandbox& sb, MemoryCheckpoint checkpoint) {
  BaseSnapshot snap;
  snap.sandbox = sb.id;
  snap.function = sb.function;
  snap.node = sb.node;
  snap.memory_mb = ProfileOf(sb).memory_mb;
  snap.checkpoint = std::move(checkpoint);
  auto [it, inserted] = bases_.emplace(sb.id, std::move(snap));
  if (!inserted) {
    throw std::logic_error("AddBaseSnapshot: sandbox is already a base");
  }
  AddUsage(sb.node, it->second.memory_mb);
  return it->second;
}

void Cluster::RemoveBaseSnapshot(SandboxId id) {
  auto it = bases_.find(id);
  if (it == bases_.end()) {
    return;
  }
  AddUsage(it->second.node, -it->second.memory_mb);
  bases_.erase(it);
}

BaseSnapshot* Cluster::FindBaseSnapshot(SandboxId id) {
  auto it = bases_.find(id);
  return it == bases_.end() ? nullptr : &it->second;
}

int Cluster::NumBaseSnapshots(FunctionId function) const {
  int n = 0;
  for (const auto& [id, snap] : bases_) {
    if (snap.function == function) {
      ++n;
    }
  }
  return n;
}

std::vector<uint8_t> Cluster::ReadBasePage(const PageLocation& location) const {
  auto it = bases_.find(location.sandbox);
  if (it == bases_.end()) {
    return {};
  }
  const MemoryCheckpoint& cp = it->second.checkpoint;
  if (location.page_index.value() >= cp.NumPages()) {
    return {};
  }
  if (cp.SlotState(location.page_index.value()) == PageSlotState::kZero) {
    return std::vector<uint8_t>(kPageSize, 0);
  }
  std::span<const uint8_t> data = cp.PageData(location.page_index.value());
  return std::vector<uint8_t>(data.begin(), data.end());
}

const FunctionProfile& Cluster::ProfileOf(const Sandbox& sb) const {
  return FunctionBenchProfiles().at(static_cast<size_t>(sb.function));
}

double Cluster::WarmFootprintMb(const Sandbox& sb) const {
  return ProfileOf(sb).memory_mb;
}

double Cluster::DedupFootprintMb(const Sandbox& sb) const {
  if (!sb.checkpoint.has_value()) {
    return WarmFootprintMb(sb);
  }
  const MemoryCheckpoint& cp = *sb.checkpoint;
  double mb = static_cast<double>(cp.ResidentBytes() + cp.PatchBytes()) /
              static_cast<double>(options_.bytes_per_mb);
  return mb + options_.dedup_metadata_fraction * WarmFootprintMb(sb);
}

double Cluster::SandboxFootprintMb(const Sandbox& sb) const {
  return sb.state == SandboxState::kDedup ? sb.dedup_footprint_mb : WarmFootprintMb(sb);
}

double Cluster::TotalUsedMb() const {
  double total = 0;
  for (const Node& n : nodes_) {
    total += n.used_mb;
  }
  return total;
}

double Cluster::TotalLimitMb() const {
  double total = 0;
  for (const Node& n : nodes_) {
    total += n.options.memory_limit_mb;
  }
  return total;
}

double Cluster::RecomputeNodeUsedMb(NodeId id) const {
  double total = 0;
  for (const auto& [sid, sb] : sandboxes_) {
    if (sb.node == id) {
      total += SandboxFootprintMb(sb);
    }
  }
  for (const auto& [sid, snap] : bases_) {
    if (snap.node == id) {
      total += snap.memory_mb;
    }
  }
  return total;
}

MemoryImage Cluster::BuildImage(const Sandbox& sb) const {
  SandboxImageOptions opts;
  opts.aslr = options_.aslr;
  opts.instance_seed = HashCombine(sb.id.value(), sb.generation);
  return BuildSandboxImage(ProfileOf(sb), pool_, opts);
}

NodeId Cluster::LeastUsedNode() const {
  NodeId best{0};
  double best_used = nodes_[0].used_mb;
  for (const Node& n : nodes_) {
    if (n.used_mb < best_used) {
      best_used = n.used_mb;
      best = n.id;
    }
  }
  return best;
}

void Cluster::AddUsage(NodeId node, double mb) {
  nodes_.at(static_cast<size_t>(node.value())).used_mb += mb;
  if (nodes_.at(static_cast<size_t>(node.value())).used_mb < 1e-9) {
    nodes_.at(static_cast<size_t>(node.value())).used_mb = 0;  // clamp float drift
  }
}

}  // namespace medes
