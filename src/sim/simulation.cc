#include "sim/simulation.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <limits>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/replay.h"

namespace medes {

namespace {

std::atomic<uint64_t> g_total_fired{0};

}  // namespace

const char* ToString(SimEngine engine) {
  switch (engine) {
    case SimEngine::kCalendar:
      return "calendar";
    case SimEngine::kHeap:
      return "heap";
  }
  return "unknown";
}

uint64_t TotalSimEventsFired() { return g_total_fired.load(std::memory_order_relaxed); }

Simulation::Simulation(SimulationOptions options) : options_(options) {
  if (options_.engine == SimEngine::kCalendar) {
    if (options_.bucket_width_log2 < 0 || options_.bucket_width_log2 > 30 ||
        options_.num_buckets_log2 < 1 || options_.num_buckets_log2 > 20) {
      throw std::invalid_argument("Simulation: bad calendar geometry");
    }
    bucket_width_ = SimDuration{int64_t{1} << options_.bucket_width_log2};
    const uint32_t num_buckets = 1u << options_.num_buckets_log2;
    bucket_mask_ = num_buckets - 1;
    buckets_.resize(num_buckets);
    window_end_ = SimTime{static_cast<int64_t>(num_buckets) << options_.bucket_width_log2};
  }
}

Simulation::~Simulation() {
  // Live calendar callbacks own resources (captured state, possible heap
  // fallback) and the arena has no per-slot destructor — release explicitly.
  for (auto& chunk : chunks_) {
    for (uint32_t i = 0; i < kChunkSize; ++i) {
      if (chunk[i].live) {
        chunk[i].cb.Destroy();
      }
    }
  }
}

void Simulation::RefillSlots() {
  const uint32_t base = static_cast<uint32_t>(chunks_.size()) * kChunkSize;
  chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
  free_slots_.reserve(kChunkSize);
  for (uint32_t i = kChunkSize; i > 0; --i) {  // pop_back hands out ascending slots
    free_slots_.push_back(base + i - 1);
  }
}

void Simulation::LogSchedule(EventId id, SimTime t, uint64_t seq, uint32_t cb_bytes) {
  op_log_->OnSchedule(id, t, seq, cb_bytes);
}

EventId Simulation::ScheduleHeap(SimTime t, Callback cb, uint64_t seq, uint32_t cb_bytes) {
  // The seq doubles as the handle: seqs are never reused, and (time, id)
  // ordering in the heap is exactly (time, seq) fire order.
  const EventId id = seq;
  heap_queue_.push({t, id});
  heap_callbacks_.emplace(id, std::move(cb));
  ++live_count_;
  ++stat_scheduled_;
  stat_max_live_ = std::max(stat_max_live_, live_count_);
  if (op_log_ != nullptr) {
    op_log_->OnSchedule(id, t, seq, cb_bytes);
  }
  return id;
}

void Simulation::InsertOverflow(const CalEntry& e) { overflow_.push(e); }

void Simulation::Cancel(EventId id) {
  if (options_.engine == SimEngine::kHeap) {
    if (heap_callbacks_.erase(id) != 0) {
      --live_count_;
      ++stat_cancelled_;
      if (op_log_ != nullptr) {
        op_log_->OnCancel(id);
      }
    }
    return;
  }
  const uint32_t slot = static_cast<uint32_t>(id >> 32);
  const uint32_t gen = static_cast<uint32_t>(id);
  if (gen == 0 || slot >= chunks_.size() * kChunkSize) {
    return;
  }
  Slot& s = SlotRef(slot);
  if (!s.live || s.gen != gen) {
    return;  // already fired or cancelled; any queued entry is stale
  }
  s.live = false;
  if (++s.gen == 0) {
    s.gen = 1;
  }
  s.cb.Destroy();
  free_slots_.push_back(slot);
  --live_count_;
  ++stale_pending_;
  ++stat_cancelled_;
  if (op_log_ != nullptr) {
    op_log_->OnCancel(id);
  }
}

bool Simulation::PeekNext(CalEntry& out) {
  if (live_count_ == 0) {
    return false;
  }
  for (;;) {
    auto& bucket = buckets_[static_cast<uint32_t>(cursor_bucket_) & bucket_mask_];
    if (cursor_dirty_) {
      std::sort(bucket.begin() + static_cast<std::ptrdiff_t>(fire_idx_), bucket.end(),
                EntryBefore{});
      cursor_dirty_ = false;
    }
    while (fire_idx_ < bucket.size()) {
      const CalEntry e = bucket[fire_idx_];
      // With no stale entries pending anywhere, the slot probe is pure cost.
      if (stale_pending_ != 0 && !EntryLive(e)) {  // cancelled after queueing
        ++fire_idx_;
        --in_wheel_;
        --stale_pending_;
        continue;
      }
#if defined(__GNUC__)
      // Warm the next entry's slot line while this event's callback runs —
      // slots are scattered across the arena, so the liveness probe and
      // invoke of the *next* fire would otherwise stall on a cold line.
      if (fire_idx_ + 1 < bucket.size()) {
        __builtin_prefetch(&SlotRef(bucket[fire_idx_ + 1].slot), 1, 3);
      }
#endif
      out = e;
      return true;
    }
    bucket.clear();
    fire_idx_ = 0;
    if (in_wheel_ == 0) {
      if (overflow_.empty()) {
        return false;  // unreachable while live_count_ > 0; defensive
      }
      // Jump straight to the bucket holding the earliest far-future entry
      // instead of walking (possibly millions of) empty buckets.
      cursor_bucket_ = overflow_.top().time.value() >> options_.bucket_width_log2;
    } else {
      ++cursor_bucket_;
    }
    window_end_ = SimTime{(cursor_bucket_ + static_cast<int64_t>(bucket_mask_) + 1)
                        << options_.bucket_width_log2};
    cursor_dirty_ = true;
    if (!overflow_.empty() && overflow_.top().time < window_end_) {
      obs::ScopedSpan span("sim_refill", "sim", now_);
      uint64_t migrated = 0;
      while (!overflow_.empty() && overflow_.top().time < window_end_) {
        const CalEntry moved = overflow_.top();
        overflow_.pop();
        if (stale_pending_ != 0 && !EntryLive(moved)) {
          --stale_pending_;
          continue;  // cancelled while waiting in the overflow tier
        }
        buckets_[static_cast<uint32_t>(moved.time.value() >> options_.bucket_width_log2) & bucket_mask_]
            .push_back(moved);
        ++in_wheel_;
        ++migrated;
      }
      stat_migrations_ += migrated;
      span.AddArg("migrated", static_cast<int64_t>(migrated));
    }
  }
}

void Simulation::ConsumeNext() {
  ++fire_idx_;
  --in_wheel_;
}

void Simulation::FireCalendar(const CalEntry& e) {
  const EventId id = MakeId(e.slot, e.gen);  // handle as returned by Schedule
  Slot& s = SlotRef(e.slot);
  s.live = false;
  if (++s.gen == 0) {
    s.gen = 1;
  }
  --live_count_;
  ++events_processed_;
  if (op_log_ != nullptr) {
    op_log_->OnFireBegin(id);
  }
  // The callback runs in place in the arena. The slot is already marked dead
  // (not reusable mid-execution) and is recycled only after the callback
  // returns — including via exception.
  struct SlotReclaim {
    Simulation* sim;
    Slot* s;
    uint32_t slot;
    ~SlotReclaim() {
      s->cb.Destroy();
      sim->free_slots_.push_back(slot);
    }
  } reclaim{this, &s, e.slot};
  s.cb.Invoke();
  if (op_log_ != nullptr) {
    op_log_->OnFireEnd();
  }
}

void Simulation::Run() { RunUntil(kSimTimeMax); }

void Simulation::RunUntil(SimTime until) {
  if (options_.engine == SimEngine::kHeap) {
    RunUntilHeap(until);
  } else {
    RunUntilCalendar(until);
  }
}

void Simulation::RunUntilCalendar(SimTime until) {
  obs::ScopedSpan span("sim_run", "sim", now_);
  const SimTime start_time = now_;
  const uint64_t fired_before = events_processed_;
  CalEntry e;
  while (PeekNextFast(e) || PeekNext(e)) {
    if (e.time > until) {
      if (until != kSimTimeMax) {
        now_ = until;
      }
      span.SetSimDuration(now_ - start_time);
      span.AddArg("fired", static_cast<int64_t>(events_processed_ - fired_before));
      FlushObs(events_processed_ - fired_before);
      return;
    }
    ConsumeNext();
    now_ = e.time;
    FireCalendar(e);
  }
  if (until != kSimTimeMax && now_ < until) {
    now_ = until;
  }
  span.SetSimDuration(now_ - start_time);
  span.AddArg("fired", static_cast<int64_t>(events_processed_ - fired_before));
  FlushObs(events_processed_ - fired_before);
}

void Simulation::RunUntilHeap(SimTime until) {
  const uint64_t fired_before = events_processed_;
  while (!heap_queue_.empty()) {
    const HeapEvent ev = heap_queue_.top();
    auto it = heap_callbacks_.find(ev.id);
    if (it == heap_callbacks_.end()) {
      heap_queue_.pop();  // cancelled
      continue;
    }
    if (ev.time > until) {
      if (until != kSimTimeMax) {
        now_ = until;
      }
      FlushObs(events_processed_ - fired_before);
      return;
    }
    heap_queue_.pop();
    Callback cb = std::move(it->second);
    heap_callbacks_.erase(it);
    now_ = ev.time;
    ++events_processed_;
    --live_count_;
    if (op_log_ != nullptr) {
      op_log_->OnFireBegin(ev.id);
    }
    cb();
    if (op_log_ != nullptr) {
      op_log_->OnFireEnd();
    }
  }
  if (until != kSimTimeMax && now_ < until) {
    now_ = until;
  }
  FlushObs(events_processed_ - fired_before);
}

void Simulation::FlushObs(uint64_t fired_delta) {
  if (fired_delta == 0) {
    return;
  }
  g_total_fired.fetch_add(fired_delta, std::memory_order_relaxed);
  static obs::Counter& fired = obs::MetricsRegistry::Default().GetCounter(
      "medes_sim_events_fired_total", "Simulation events fired across all engines");
  fired.Add(fired_delta);
}

SimStats Simulation::stats() const {
  SimStats s;
  s.scheduled = stat_scheduled_;
  s.fired = events_processed_;
  s.cancelled = stat_cancelled_;
  s.overflow_migrations = stat_migrations_;
  s.max_live = stat_max_live_;
  return s;
}

}  // namespace medes
