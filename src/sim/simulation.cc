#include "sim/simulation.h"

#include <limits>
#include <stdexcept>

namespace medes {

EventId Simulation::Schedule(SimTime t, Callback cb) {
  if (t < now_) {
    throw std::invalid_argument("Simulation::Schedule: time in the past");
  }
  EventId id = next_id_++;
  queue_.push({t, id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

void Simulation::Cancel(EventId id) { callbacks_.erase(id); }

bool Simulation::Empty() const { return callbacks_.empty(); }

void Simulation::Run() { RunUntil(std::numeric_limits<SimTime>::max()); }

void Simulation::RunUntil(SimTime until) {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    auto it = callbacks_.find(ev.id);
    if (it == callbacks_.end()) {
      queue_.pop();  // cancelled
      continue;
    }
    if (ev.time > until) {
      if (until != std::numeric_limits<SimTime>::max()) {
        now_ = until;
      }
      return;
    }
    queue_.pop();
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    now_ = ev.time;
    ++events_processed_;
    cb();
  }
  if (until != std::numeric_limits<SimTime>::max() && now_ < until) {
    now_ = until;
  }
}

}  // namespace medes
