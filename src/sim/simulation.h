// Discrete-event simulation engine.
//
// Single-threaded and fully deterministic: events at equal timestamps fire
// in scheduling order (a monotonically increasing sequence number breaks
// ties). Cancellation is by handle and O(1); cancelling a fired event is a
// no-op.
//
// Two engines share one API and one determinism contract:
//
//   - kCalendar (default): a two-tier calendar queue. Events due within the
//     wheel window land in one of 2^num_buckets_log2 unsorted buckets of
//     2^bucket_width_log2 microseconds each; buckets are sorted lazily when
//     the cursor reaches them. Events beyond the window wait in an overflow
//     min-heap of 24-byte POD entries and migrate into the wheel as it
//     slides. Callbacks live in a slab-allocated event arena with inline
//     small-buffer storage (no per-event std::function heap allocation), and
//     handles carry a generation tag so Cancel is one array probe — no side
//     table, and a stale handle can never cancel a recycled slot.
//
//   - kHeap: the pre-refactor engine (binary heap + unordered_map side table
//     of std::function callbacks), kept as the differential-testing reference
//     and the baseline for bench/cluster_scale's before/after comparison.
//
// Both engines fire events in bit-identical order (pinned by
// tests/simulation_diff_test.cc), so a platform run produces byte-identical
// RunMetrics under either.
#ifndef MEDES_SIM_SIMULATION_H_
#define MEDES_SIM_SIMULATION_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <queue>
#include <stdexcept>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/time.h"

namespace medes {

using EventId = uint64_t;  // 0 is never a valid handle

enum class SimEngine {
  kCalendar,  // two-tier calendar queue + slab event arena
  kHeap,      // legacy binary heap + callback side table (reference)
};

const char* ToString(SimEngine engine);

struct SimulationOptions {
  SimEngine engine = SimEngine::kCalendar;
  // Calendar-queue geometry (ignored by kHeap). Defaults: 32.8 ms buckets,
  // 32768-bucket wheel => a ~17.9 min window that covers every recurring
  // platform timer (completions, 30 s idle-expiry, 10 min keep-alive, 15 min
  // keep-dedup), so in steady state the entire live set sits in O(1) wheel
  // buckets and the overflow heap stays empty.
  int bucket_width_log2 = 15;
  int num_buckets_log2 = 15;
};

// Engine-internal counters (not part of the determinism contract: migration
// counts depend on wheel geometry).
struct SimStats {
  uint64_t scheduled = 0;
  uint64_t fired = 0;
  uint64_t cancelled = 0;
  uint64_t overflow_migrations = 0;  // entries moved overflow tier -> wheel
  uint64_t max_live = 0;             // high-water mark of pending events
};

// Optional schedule/cancel/fire recorder; see sim/replay.h. Not owned.
class SimOpLog;

class Simulation {
 public:
  using Callback = std::function<void()>;

  Simulation() : Simulation(SimulationOptions{}) {}
  explicit Simulation(SimEngine engine) : Simulation(SimulationOptions{.engine = engine}) {}
  explicit Simulation(SimulationOptions options);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime Now() const { return now_; }
  SimEngine engine() const { return options_.engine; }

  // Schedules `cb` at absolute time `t` (>= Now()). Returns a handle usable
  // with Cancel(). Accepts any callable; small callables (<= 32 bytes) are
  // stored inline in the event arena under the calendar engine.
  template <typename F>
  EventId Schedule(SimTime t, F&& cb) {
    return ScheduleWithSeq(t, next_seq_++, std::forward<F>(cb));
  }
  template <typename F>
  EventId ScheduleAfter(SimDuration delay, F&& cb) {
    return Schedule(now_ + delay, std::forward<F>(cb));
  }

  // Reserves `n` consecutive tie-break sequence numbers and returns the
  // first. With ScheduleWithSeq this lets a caller feed a pre-sorted batch
  // lazily (e.g. chaining trace arrivals) while keeping the exact fire order
  // bulk scheduling would have produced — equal-time events still fire in
  // reserved-seq order no matter when they physically enter the queue.
  uint64_t ReserveSeqBlock(uint64_t n) {
    const uint64_t first = next_seq_;
    next_seq_ += n;
    return first;
  }

  // Schedule with an explicit tie-break seq (from ReserveSeqBlock, or a
  // recorded op stream — see sim/replay.h). Seqs must never be reused.
  template <typename F>
  EventId ScheduleWithSeq(SimTime t, uint64_t seq, F&& cb) {
    if (t < now_) {
      throw std::invalid_argument("Simulation::Schedule: time in the past");
    }
    const uint32_t cb_bytes = static_cast<uint32_t>(sizeof(std::decay_t<F>));
    if (options_.engine == SimEngine::kHeap) {
      return ScheduleHeap(t, Callback(std::forward<F>(cb)), seq, cb_bytes);
    }
    const uint32_t slot = AllocSlot();
    Slot& s = SlotRef(slot);
    s.cb.Emplace(std::forward<F>(cb));
    return CommitSlot(t, s, slot, seq, cb_bytes);
  }

  // Cancels a pending event. Idempotent; cancelling a fired event is a no-op,
  // and a stale handle can never hit an event that recycled the same arena
  // slot (generation tag mismatch).
  void Cancel(EventId id);

  // Runs until the queue drains or `until` is reached (events beyond `until`
  // stay queued and the clock stops at `until`). Events scheduled at exactly
  // `until` fire.
  void Run();
  void RunUntil(SimTime until);

  // Fired events only — cancelled events are never counted.
  uint64_t events_processed() const { return events_processed_; }
  bool Empty() const { return live_count_ == 0; }

  SimStats stats() const;

  // Installs (or clears, with nullptr) an op recorder. Recording adds one
  // predictable branch per schedule/cancel/fire. The log must outlive the
  // simulation or be detached first.
  void SetOpLog(SimOpLog* log) { op_log_ = log; }

 private:
  // Type-erased callable with inline small-buffer storage. Lifecycle is
  // managed by the arena (Emplace/Invoke/Destroy) — no destructor, so slots
  // recycle without touching cold memory.
  class EventCallback {
   public:
    static constexpr size_t kInlineBytes = 32;

    template <typename F>
    void Emplace(F&& f) {
      using Fn = std::decay_t<F>;
      if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(void*)) {
        ::new (static_cast<void*>(inline_)) Fn(std::forward<F>(f));
        invoke_ = [](EventCallback* self) {
          (*std::launder(reinterpret_cast<Fn*>(self->inline_)))();
        };
        // Most event callbacks are trivially destructible lambdas; a null
        // destroy_ lets the reclaim path skip the indirect call entirely.
        if constexpr (std::is_trivially_destructible_v<Fn>) {
          destroy_ = nullptr;
        } else {
          destroy_ = [](EventCallback* self) {
            std::launder(reinterpret_cast<Fn*>(self->inline_))->~Fn();
          };
        }
      } else {
        heap_ = new Fn(std::forward<F>(f));
        invoke_ = [](EventCallback* self) { (*static_cast<Fn*>(self->heap_))(); };
        destroy_ = [](EventCallback* self) { delete static_cast<Fn*>(self->heap_); };
      }
    }
    void Invoke() { invoke_(this); }
    void Destroy() {
      if (destroy_ != nullptr) {
        destroy_(this);
      }
    }

   private:
    union {
      alignas(void*) unsigned char inline_[kInlineBytes];
      void* heap_;
    };
    void (*invoke_)(EventCallback*) = nullptr;
    void (*destroy_)(EventCallback*) = nullptr;
  };

  // One cache line per slot: the fire path touches a slot twice (liveness
  // probe, then invoke), and a straddling slot would double those misses.
  struct alignas(64) Slot {
    uint32_t gen = 1;   // bumped on every free; 0 is skipped so ids stay nonzero
    bool live = false;  // a pending event occupies this slot
    EventCallback cb;
  };
  static_assert(sizeof(Slot) == 64, "Slot should stay one cache line");

  // A queued event: POD, 24 bytes. Fire order is (time, seq).
  struct CalEntry {
    SimTime time;
    uint64_t seq;
    uint32_t slot;
    uint32_t gen;
  };
  struct EntryAfter {
    bool operator()(const CalEntry& a, const CalEntry& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };
  struct EntryBefore {
    bool operator()(const CalEntry& a, const CalEntry& b) const {
      return a.time != b.time ? a.time < b.time : a.seq < b.seq;
    }
  };

  // Slab chunks keep slot addresses stable while callbacks execute (a
  // callback scheduling new events may grow the arena under its own feet).
  static constexpr uint32_t kChunkSizeLog2 = 10;
  static constexpr uint32_t kChunkSize = 1u << kChunkSizeLog2;

  Slot& SlotRef(uint32_t index) {
    return chunks_[index >> kChunkSizeLog2][index & (kChunkSize - 1)];
  }
  const Slot& SlotRef(uint32_t index) const {
    return chunks_[index >> kChunkSizeLog2][index & (kChunkSize - 1)];
  }

  static EventId MakeId(uint32_t slot, uint32_t gen) {
    return (static_cast<EventId>(slot) << 32) | gen;
  }

  // Inline so the header-template schedule path avoids cross-TU calls for
  // everything but the rare chunk refill and the wheel insert itself.
  uint32_t AllocSlot() {
    if (free_slots_.empty()) {
      RefillSlots();
    }
    const uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  void RefillSlots();
  EventId CommitSlot(SimTime t, Slot& s, uint32_t slot, uint64_t seq, uint32_t cb_bytes) {
    s.live = true;
    InsertEntry(CalEntry{t, seq, slot, s.gen});
    ++live_count_;
    ++stat_scheduled_;
    stat_max_live_ = std::max(stat_max_live_, live_count_);
    const EventId id = MakeId(slot, s.gen);
    if (op_log_ != nullptr) {
      LogSchedule(id, t, seq, cb_bytes);
    }
    return id;
  }
  void LogSchedule(EventId id, SimTime t, uint64_t seq, uint32_t cb_bytes);
  EventId ScheduleHeap(SimTime t, Callback cb, uint64_t seq, uint32_t cb_bytes);

  bool EntryLive(const CalEntry& e) const {
    const Slot& s = SlotRef(e.slot);
    return s.live && s.gen == e.gen;
  }

  // Inline: schedule-heavy workloads (e.g. a chained trace feed) hit the
  // sorted cursor-bucket insert on nearly every schedule.
  void InsertEntry(const CalEntry& e) {
    if (e.time >= window_end_) {
      InsertOverflow(e);
      return;
    }
    int64_t abs_bucket = e.time.value() >> options_.bucket_width_log2;
    // The cursor can sit ahead of Now() (it advanced while peeking an event
    // beyond a RunUntil horizon). Events scheduled behind it are still in the
    // future, so fold them into the cursor bucket: the lazy (time, seq) sort
    // puts them ahead of that bucket's own, strictly later, entries.
    if (abs_bucket < cursor_bucket_) {
      abs_bucket = cursor_bucket_;
    }
    auto& bucket = buckets_[static_cast<uint32_t>(abs_bucket) & bucket_mask_];
    ++in_wheel_;
    if (abs_bucket == cursor_bucket_ && !cursor_dirty_) {
      // The unfired remainder of the cursor bucket is already sorted. A sorted
      // insert keeps it that way: callbacks that schedule back into the bucket
      // being drained (e.g. a chained trace arrival scheduling its successor)
      // would otherwise trigger a full re-sort per fire.
      const auto pos = std::upper_bound(bucket.begin() + static_cast<std::ptrdiff_t>(fire_idx_),
                                        bucket.end(), e, EntryBefore{});
      bucket.insert(pos, e);
      return;
    }
    bucket.push_back(e);
    if (abs_bucket == cursor_bucket_) {
      cursor_dirty_ = true;
    }
  }
  void InsertOverflow(const CalEntry& e);
  // Inline fast path for the common case: the cursor bucket is sorted, has an
  // unfired entry, and no stale entries exist anywhere (so it is provably
  // live — no slot probe needed). Falls through to PeekNext otherwise.
  bool PeekNextFast(CalEntry& out) {
    if (cursor_dirty_ || stale_pending_ != 0) {
      return false;
    }
    const auto& bucket = buckets_[static_cast<uint32_t>(cursor_bucket_) & bucket_mask_];
    if (fire_idx_ >= bucket.size()) {
      return false;
    }
    out = bucket[fire_idx_];
#if defined(__GNUC__)
    if (fire_idx_ + 1 < bucket.size()) {
      __builtin_prefetch(&SlotRef(bucket[fire_idx_ + 1].slot), 1, 3);
    }
#endif
    return true;
  }
  // Locates the next live entry, dropping stale (cancelled) ones and sliding
  // the wheel / migrating overflow entries as needed. Returns false when no
  // live events remain. The entry stays queued until ConsumeNext().
  bool PeekNext(CalEntry& out);
  void ConsumeNext();
  void FireCalendar(const CalEntry& e);

  void RunUntilCalendar(SimTime until);
  void RunUntilHeap(SimTime until);
  void FlushObs(uint64_t fired_delta);

  SimulationOptions options_;
  SimTime now_;
  uint64_t next_seq_ = 1;
  uint64_t events_processed_ = 0;
  uint64_t live_count_ = 0;
  SimOpLog* op_log_ = nullptr;

  // --- calendar engine state ---
  SimDuration bucket_width_;
  uint32_t bucket_mask_ = 0;
  int64_t cursor_bucket_ = 0;  // absolute bucket number (time / width)
  SimTime window_end_;     // exclusive upper bound of the wheel window
  size_t fire_idx_ = 0;        // next unfired entry in the cursor bucket
  bool cursor_dirty_ = false;  // cursor bucket gained entries since last sort
  uint64_t in_wheel_ = 0;      // physical entries resident in buckets
  // Stale (cancelled-but-still-queued) entries across wheel + overflow. Every
  // effective Cancel strands exactly one; while zero, every queued entry is
  // provably live and the fire path skips the per-entry slot probe.
  uint64_t stale_pending_ = 0;
  std::vector<std::vector<CalEntry>> buckets_;
  std::priority_queue<CalEntry, std::vector<CalEntry>, EntryAfter> overflow_;
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::vector<uint32_t> free_slots_;

  // --- legacy heap engine state (reference) ---
  struct HeapEvent {
    SimTime time;
    EventId id;
    bool operator>(const HeapEvent& other) const {
      return time != other.time ? time > other.time : id > other.id;
    }
  };
  std::priority_queue<HeapEvent, std::vector<HeapEvent>, std::greater<>> heap_queue_;
  std::unordered_map<EventId, Callback> heap_callbacks_;

  // --- stats ---
  uint64_t stat_scheduled_ = 0;
  uint64_t stat_cancelled_ = 0;
  uint64_t stat_migrations_ = 0;
  uint64_t stat_max_live_ = 0;
};

// Process-wide count of fired simulation events (all Simulation instances).
// Flushed at RunUntil exit; bench_util's shared metadata block derives its
// events/sec figure from this.
uint64_t TotalSimEventsFired();

}  // namespace medes

#endif  // MEDES_SIM_SIMULATION_H_
