// Discrete-event simulation engine.
//
// Single-threaded and fully deterministic: events at equal timestamps fire
// in scheduling order (a monotonically increasing sequence number breaks
// ties). Cancellation is by handle; cancelled events are skipped when popped.
#ifndef MEDES_SIM_SIMULATION_H_
#define MEDES_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/time.h"

namespace medes {

using EventId = uint64_t;

class Simulation {
 public:
  using Callback = std::function<void()>;

  SimTime Now() const { return now_; }

  // Schedules `cb` at absolute time `t` (>= Now()). Returns a handle usable
  // with Cancel().
  EventId Schedule(SimTime t, Callback cb);
  EventId ScheduleAfter(SimDuration delay, Callback cb) {
    return Schedule(now_ + delay, std::move(cb));
  }

  // Cancels a pending event. Idempotent; cancelling a fired event is a no-op.
  void Cancel(EventId id);

  // Runs until the queue drains or `until` is reached (events beyond `until`
  // stay queued and the clock stops at `until`).
  void Run();
  void RunUntil(SimTime until);

  uint64_t events_processed() const { return events_processed_; }
  bool Empty() const;

 private:
  struct Event {
    SimTime time;
    EventId id;
    // Ordered as a min-heap on (time, id).
    bool operator>(const Event& other) const {
      return time != other.time ? time > other.time : id > other.id;
    }
  };

  SimTime now_ = 0;
  EventId next_id_ = 1;
  uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::unordered_map<EventId, Callback> callbacks_;
};

}  // namespace medes

#endif  // MEDES_SIM_SIMULATION_H_
