// Schedule/cancel/fire op-stream recording and replay.
//
// A SimOpLog attached via Simulation::SetOpLog captures the *dynamic* event
// workload of a run: every schedule (with its timestamp), every effective
// cancel, and — for every fired event — the range of ops its callback issued
// while running. ReplaySimOps then re-drives that exact workload through a
// fresh Simulation of either engine with no-op payloads: each replayed
// callback does nothing but issue its recorded child ops.
//
// This isolates scheduler cost from callback cost (bench/cluster_scale's
// engine comparison runs the real campaign op stream through both engines)
// and proves fire-order equivalence between engines (the differential tests
// compare the order-sensitive fire hash of a heap replay against a calendar
// replay of the same log).
//
// Replay issues all root ops (those recorded outside any callback) up front
// and then drains with Run(). For single-Run workloads — every platform run —
// root ops all precede the first fire, so the replayed op/seq interleaving is
// exactly the original. Events still pending when recording stopped replay as
// no-ops.
#ifndef MEDES_SIM_REPLAY_H_
#define MEDES_SIM_REPLAY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/time.h"
#include "sim/simulation.h"

namespace medes {

class SimOpLog {
 public:
  // Packed to 24 bytes — replay streams millions of these, so width is wall
  // time. The u32 ordinal caps one recording at 4.3 B schedules (FireRange
  // op indices share the cap); cb_bytes saturates at 255, far above the
  // largest inline class replay distinguishes.
  struct Op {
    enum class Kind : uint8_t { kSchedule, kCancel };
    SimTime time;      // kSchedule only
    uint64_t seq;      // kSchedule only: the event's tie-break seq
    uint32_t ordinal;  // schedule ordinal this op creates / cancels
    Kind kind;
    uint8_t cb_bytes;  // kSchedule only: sizeof the scheduled callable
  };
  static_assert(sizeof(Op) == 24, "Op packing regressed");
  // Ops a fired event's callback issued: [begin, end) into ops().
  struct FireRange {
    uint32_t begin = 0;
    uint32_t end = 0;
  };

  // Hooks invoked by Simulation (see Simulation::SetOpLog). `seq` is the
  // event's tie-break sequence number — replay re-issues it verbatim, so
  // reserved-seq scheduling (Simulation::ReserveSeqBlock) replays exactly.
  // `cb_bytes` is the size of the scheduled callable — replay builds a
  // callback of the same size class so engine costs that depend on callback
  // footprint (inline vs heap storage) are reproduced faithfully.
  void OnSchedule(EventId id, SimTime t, uint64_t seq, uint32_t cb_bytes);
  void OnCancel(EventId id);
  void OnFireBegin(EventId id);
  void OnFireEnd();

  const std::vector<Op>& ops() const { return ops_; }
  // Indexed by schedule ordinal; zero-range for events that never fired.
  const std::vector<FireRange>& fire_ranges() const { return fire_ranges_; }
  // Schedule ordinals in the order they fired.
  const std::vector<uint64_t>& fire_order() const { return fire_order_; }
  size_t num_schedules() const { return fire_ranges_.size(); }

 private:
  std::vector<Op> ops_;
  std::vector<FireRange> fire_ranges_;
  std::vector<uint64_t> fire_order_;
  std::unordered_map<EventId, uint64_t> live_;  // handle -> ordinal
  uint64_t open_fire_ = 0;                      // ordinal of the in-flight fire
};

struct ReplayResult {
  uint64_t events_processed = 0;
  uint64_t fire_hash = 0;  // order-sensitive hash over fired ordinals
  SimTime end_time;
};

ReplayResult ReplaySimOps(const SimOpLog& log, SimulationOptions options);

// Order-sensitive hash step shared by replay and the differential tests.
inline uint64_t FireHashStep(uint64_t h, uint64_t v) {
  return (h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2))) * 0x100000001b3ULL;
}

}  // namespace medes

#endif  // MEDES_SIM_REPLAY_H_
