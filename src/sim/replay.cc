#include "sim/replay.h"

#include <algorithm>

namespace medes {

void SimOpLog::OnSchedule(EventId id, SimTime t, uint64_t seq, uint32_t cb_bytes) {
  const uint64_t ordinal = fire_ranges_.size();
  fire_ranges_.emplace_back();
  live_.emplace(id, ordinal);
  ops_.push_back(Op{t, seq, static_cast<uint32_t>(ordinal), Op::Kind::kSchedule,
                    static_cast<uint8_t>(cb_bytes < 255 ? cb_bytes : 255)});
}

void SimOpLog::OnCancel(EventId id) {
  auto it = live_.find(id);
  if (it == live_.end()) {
    return;  // engines only report effective cancels; defensive
  }
  ops_.push_back(Op{SimTime{}, 0, static_cast<uint32_t>(it->second), Op::Kind::kCancel, 0});
  live_.erase(it);
}

void SimOpLog::OnFireBegin(EventId id) {
  auto it = live_.find(id);
  if (it == live_.end()) {
    return;  // never happens for a log attached before the first schedule
  }
  open_fire_ = it->second;
  live_.erase(it);
  fire_order_.push_back(open_fire_);
  fire_ranges_[open_fire_].begin = static_cast<uint32_t>(ops_.size());
  fire_ranges_[open_fire_].end = static_cast<uint32_t>(ops_.size());
}

void SimOpLog::OnFireEnd() {
  fire_ranges_[open_fire_].end = static_cast<uint32_t>(ops_.size());
}

namespace {

struct ReplayCtx {
  Simulation& sim;
  const std::vector<SimOpLog::Op>& ops;
  const std::vector<SimOpLog::FireRange>& ranges;
  std::vector<EventId> ids;
  uint64_t hash = 0;

  void Fire(uint64_t ordinal) {
    hash = FireHashStep(hash, ordinal);
    const SimOpLog::FireRange r = ranges[ordinal];
    Exec(r.begin, r.end);
  }

  // Replay callbacks are padded to the recorded callable's size class so the
  // engines see the same storage footprint as the original run (a >16-byte
  // capture is what forces the legacy heap engine's std::function to allocate).
  struct Fire16 {
    ReplayCtx* ctx;
    uint64_t ordinal;
    void operator()() const { ctx->Fire(ordinal); }
  };
  struct Fire24 {
    ReplayCtx* ctx;
    uint64_t ordinal;
    uint64_t pad0 = 0;
    void operator()() const { ctx->Fire(ordinal); }
  };
  struct Fire32 {
    ReplayCtx* ctx;
    uint64_t ordinal;
    uint64_t pad0 = 0;
    uint64_t pad1 = 0;
    void operator()() const { ctx->Fire(ordinal); }
  };

  void Exec(uint32_t begin, uint32_t end) {
    for (uint32_t i = begin; i < end; ++i) {
      const SimOpLog::Op& op = ops[i];
      if (op.kind == SimOpLog::Op::Kind::kSchedule) {
        const uint64_t ordinal = op.ordinal;
        if (op.cb_bytes <= sizeof(Fire16)) {
          ids[ordinal] = sim.ScheduleWithSeq(op.time, op.seq, Fire16{this, ordinal});
        } else if (op.cb_bytes <= sizeof(Fire24)) {
          ids[ordinal] = sim.ScheduleWithSeq(op.time, op.seq, Fire24{this, ordinal});
        } else {
          ids[ordinal] = sim.ScheduleWithSeq(op.time, op.seq, Fire32{this, ordinal});
        }
      } else {
        sim.Cancel(ids[op.ordinal]);
      }
    }
  }
};

}  // namespace

ReplayResult ReplaySimOps(const SimOpLog& log, SimulationOptions options) {
  Simulation sim(options);
  ReplayCtx ctx{sim, log.ops(), log.fire_ranges(),
                std::vector<EventId>(log.num_schedules(), 0)};
  // Root segments are the gaps between fire ranges (which appear in
  // ascending-begin order when walked in fire order).
  uint32_t pos = 0;
  for (const uint64_t ordinal : log.fire_order()) {
    const SimOpLog::FireRange r = log.fire_ranges()[ordinal];
    if (r.begin > pos) {
      ctx.Exec(pos, r.begin);
    }
    pos = std::max(pos, r.end);
  }
  if (pos < ctx.ops.size()) {
    ctx.Exec(pos, static_cast<uint32_t>(ctx.ops.size()));
  }
  sim.Run();
  ReplayResult result;
  result.events_processed = sim.events_processed();
  result.fire_hash = ctx.hash;
  result.end_time = sim.Now();
  return result;
}

}  // namespace medes
