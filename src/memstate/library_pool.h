// Library blob pool: deterministic byte content for each named library.
//
// A library blob is a token sequence from the global dictionary, chosen by an
// RNG seeded with the library name — so every sandbox (of any function, on
// any node) that maps "numpy" maps byte-identical content, exactly like a
// shared .so. Blobs are generated at a configurable scale (bytes per
// represented MB) and cached.
#ifndef MEDES_MEMSTATE_LIBRARY_POOL_H_
#define MEDES_MEMSTATE_LIBRARY_POOL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "memstate/tokens.h"

namespace medes {

class LibraryPool {
 public:
  // `bytes_per_mb` scales every represented MB down to that many real bytes
  // (1 MiB = full scale for measurement experiments; the cluster simulations
  // default to a smaller scale so thousands of dedup ops stay fast).
  explicit LibraryPool(uint64_t seed = 0x11b9, size_t bytes_per_mb = 1 << 20);

  size_t bytes_per_mb() const { return bytes_per_mb_; }
  const TokenDictionary& dictionary() const { return dictionary_; }

  // Scaled byte size of `mb` represented megabytes, rounded up to a page.
  size_t ScaledBytes(double mb) const;

  // The blob for `name` (generated and cached on first use).
  std::span<const uint8_t> Blob(const std::string& name) const;

 private:
  uint64_t seed_;
  size_t bytes_per_mb_;
  TokenDictionary dictionary_;
  mutable std::unordered_map<std::string, std::vector<uint8_t>> cache_;
};

// Fills `out` with tokens from `dict` chosen by `rng` (helper shared with the
// heap generator).
void FillWithTokens(const TokenDictionary& dict, uint64_t seed, std::span<uint8_t> out);

}  // namespace medes

#endif  // MEDES_MEMSTATE_LIBRARY_POOL_H_
