#include "memstate/tokens.h"

#include "common/rng.h"

namespace medes {

TokenDictionary::TokenDictionary(uint64_t seed, size_t num_tokens)
    : num_tokens_(num_tokens == 0 ? 1 : num_tokens) {
  data_.resize(num_tokens_ * kTokenSize);
  Rng rng(seed);
  // Tokens mimic the entropy mix of real process memory: some look like
  // machine code / pointer tables (structured, low entropy), some like
  // packed data (high entropy).
  for (size_t t = 0; t < num_tokens_; ++t) {
    uint8_t* p = data_.data() + t * kTokenSize;
    if (t % 4 == 0) {
      // Pointer-table-like: repeated 8-byte words with small deltas.
      uint64_t base = rng.Next() & 0x00007fffffffffc0ull;
      for (size_t i = 0; i < kTokenSize; i += 8) {
        uint64_t v = base + i * 8;
        for (size_t b = 0; b < 8; ++b) {
          p[i + b] = static_cast<uint8_t>(v >> (8 * b));
        }
      }
    } else {
      for (size_t i = 0; i < kTokenSize; ++i) {
        p[i] = static_cast<uint8_t>(rng.Next());
      }
    }
  }
}

}  // namespace medes
