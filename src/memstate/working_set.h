// Per-function post-resume working-set profiles (lazy restore, REAP-style).
//
// REAP ("Benchmarking, Analysis, and Optimization of Serverless Function
// Snapshots") observed that the large majority of snapshot pages are never
// touched after a function resumes, so restoring them before resume is pure
// wasted critical-path latency. A WorkingSetProfile records, per function,
// an exponential moving average of how often each PageIndex is touched after
// resume; the dedup agent prefetches only the pages whose EMA frequency
// clears `predict_threshold` and background-faults the rest.
//
// EMA semantics: the first observation seeds the frequency table with the
// raw touch indicator (so a single warm-up invocation already yields a
// usable prediction); every later observation folds in with weight
// `ema_alpha`. Stable working-set pages therefore sit near 1.0, one-off
// churn pages decay below the threshold within a couple of invocations.
//
// Profiles are plain deterministic state: recording the same observation
// sequence always produces the same table, and Serialize() emits a
// byte-stable little-endian encoding so a campaign can warm profiles from a
// previous run (round-trip is exact — doubles travel as their bit patterns).
//
// Thread safety: WorkingSetTable guards its map with a leaf-rank mutex so
// concurrent agent ops on different sandboxes may record/predict freely.
// WorkingSetProfile itself is a value type with no internal locking.
#ifndef MEDES_MEMSTATE_WORKING_SET_H_
#define MEDES_MEMSTATE_WORKING_SET_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/types.h"
#include "memstate/profiles.h"

namespace medes {

struct WorkingSetOptions {
  // Weight of the newest observation in the per-page EMA (first observation
  // seeds the table directly; see file comment).
  double ema_alpha = 0.3;
  // Pages with EMA frequency >= threshold form the predicted working set.
  double predict_threshold = 0.5;
};

// EMA touch-frequency table for one function. Page indexes beyond the table's
// current size are implicitly frequency 0 (images can grow across versions).
class WorkingSetProfile {
 public:
  WorkingSetProfile() = default;

  // Folds one post-resume observation into the EMA. `touched` must be the
  // touched page set (duplicates are harmless; out-of-range indexes grow the
  // table). `num_pages` is the image size the observation was made against.
  void Record(std::span<const PageIndex> touched, size_t num_pages, double ema_alpha);

  // Sorted unique pages with frequency >= threshold, clamped to < num_pages.
  std::vector<PageIndex> Predict(size_t num_pages, double predict_threshold) const;

  uint64_t observations() const { return observations_; }
  size_t tracked_pages() const { return freq_.size(); }
  double Frequency(PageIndex page) const;

  // Byte-stable serialization (little-endian; doubles as bit patterns).
  void AppendTo(std::string& out) const;
  // Consumes one profile from the front of `in`; false on malformed input.
  static bool ConsumeFrom(std::string_view& in, WorkingSetProfile& out);

  bool operator==(const WorkingSetProfile&) const = default;

 private:
  std::vector<double> freq_;
  uint64_t observations_ = 0;
};

// Profiles for every function, keyed by FunctionId. The table the platform's
// dedup agent consults; share one instance across runs (or serialize and
// re-load) to warm predictions across a campaign.
class WorkingSetTable {
 public:
  explicit WorkingSetTable(WorkingSetOptions options = {}) : options_(options) {}

  const WorkingSetOptions& options() const { return options_; }

  void Record(FunctionId function, std::span<const PageIndex> touched, size_t num_pages)
      EXCLUDES(mu_);

  // Predicted working set, or nullopt when the function has no observations
  // yet (callers fall back to a full prefetch — the self-warming path).
  std::optional<std::vector<PageIndex>> Predict(FunctionId function, size_t num_pages) const
      EXCLUDES(mu_);

  uint64_t Observations(FunctionId function) const EXCLUDES(mu_);
  size_t NumFunctions() const EXCLUDES(mu_);

  // Whole-table serialization; functions are emitted in FunctionId order so
  // the bytes are independent of recording order interleavings.
  std::string Serialize() const EXCLUDES(mu_);
  // Replaces `out`'s profiles from serialized bytes (`out` keeps its own
  // options). False on malformed input, with `out` left empty. Fills an
  // existing table instead of returning one because the table owns a mutex
  // and cannot move.
  static bool Deserialize(std::string_view data, WorkingSetTable& out) EXCLUDES(out.mu_);

 private:
  WorkingSetOptions options_;
  mutable Mutex mu_{"working set table", LockRank::kMetrics};
  std::map<FunctionId, WorkingSetProfile> profiles_ GUARDED_BY(mu_);
};

}  // namespace medes

#endif  // MEDES_MEMSTATE_WORKING_SET_H_
