#include "memstate/working_set.h"

#include <algorithm>
#include <bit>
#include <cstring>

namespace medes {

namespace {

// Little-endian primitives: the encoding must be byte-stable across hosts,
// so integers are written byte by byte rather than memcpy'd.
void PutU32(std::string& out, uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void PutU64(std::string& out, uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

bool TakeU32(std::string_view& in, uint32_t& v) {
  if (in.size() < 4) {
    return false;
  }
  v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(in[static_cast<size_t>(i)])) << (8 * i);
  }
  in.remove_prefix(4);
  return true;
}

bool TakeU64(std::string_view& in, uint64_t& v) {
  if (in.size() < 8) {
    return false;
  }
  v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(in[static_cast<size_t>(i)])) << (8 * i);
  }
  in.remove_prefix(8);
  return true;
}

constexpr uint32_t kProfileMagic = 0x4d575031;  // "MWP1"
constexpr uint32_t kTableMagic = 0x4d575431;    // "MWT1"

}  // namespace

void WorkingSetProfile::Record(std::span<const PageIndex> touched, size_t num_pages,
                               double ema_alpha) {
  if (freq_.size() < num_pages) {
    freq_.resize(num_pages, 0.0);
  }
  for (PageIndex page : touched) {
    if (page.value() >= freq_.size()) {
      freq_.resize(page.value() + 1, 0.0);
    }
  }
  // f <- (1 - a) * f + a * indicator, with the first observation seeding the
  // raw indicator so a single warm-up invocation yields a usable prediction.
  // The indicator bitmap dedups the input (duplicates must not stack).
  const bool first = observations_ == 0;
  const double keep = first ? 0.0 : 1.0 - ema_alpha;
  const double weight = first ? 1.0 : ema_alpha;
  std::vector<uint8_t> indicator(freq_.size(), 0);
  for (PageIndex page : touched) {
    indicator[page.value()] = 1;
  }
  for (size_t p = 0; p < freq_.size(); ++p) {
    freq_[p] = keep * freq_[p] + (indicator[p] != 0 ? weight : 0.0);
  }
  ++observations_;
}

std::vector<PageIndex> WorkingSetProfile::Predict(size_t num_pages,
                                                  double predict_threshold) const {
  std::vector<PageIndex> out;
  const size_t n = std::min(freq_.size(), num_pages);
  for (size_t p = 0; p < n; ++p) {
    if (freq_[p] >= predict_threshold) {
      out.push_back(PageIndex{static_cast<uint32_t>(p)});
    }
  }
  return out;
}

double WorkingSetProfile::Frequency(PageIndex page) const {
  const size_t p = page.value();
  return p < freq_.size() ? freq_[p] : 0.0;
}

void WorkingSetProfile::AppendTo(std::string& out) const {
  PutU32(out, kProfileMagic);
  PutU64(out, observations_);
  PutU32(out, static_cast<uint32_t>(freq_.size()));
  for (double f : freq_) {
    PutU64(out, std::bit_cast<uint64_t>(f));
  }
}

bool WorkingSetProfile::ConsumeFrom(std::string_view& in, WorkingSetProfile& out) {
  uint32_t magic = 0;
  if (!TakeU32(in, magic) || magic != kProfileMagic) {
    return false;
  }
  uint64_t observations = 0;
  uint32_t pages = 0;
  if (!TakeU64(in, observations) || !TakeU32(in, pages)) {
    return false;
  }
  if (in.size() < static_cast<size_t>(pages) * 8) {
    return false;
  }
  out.freq_.assign(pages, 0.0);
  for (uint32_t p = 0; p < pages; ++p) {
    uint64_t bits = 0;
    TakeU64(in, bits);
    out.freq_[p] = std::bit_cast<double>(bits);
  }
  out.observations_ = observations;
  return true;
}

void WorkingSetTable::Record(FunctionId function, std::span<const PageIndex> touched,
                             size_t num_pages) {
  MutexLock lock(mu_);
  profiles_[function].Record(touched, num_pages, options_.ema_alpha);
}

std::optional<std::vector<PageIndex>> WorkingSetTable::Predict(FunctionId function,
                                                               size_t num_pages) const {
  MutexLock lock(mu_);
  auto it = profiles_.find(function);
  if (it == profiles_.end() || it->second.observations() == 0) {
    return std::nullopt;
  }
  return it->second.Predict(num_pages, options_.predict_threshold);
}

uint64_t WorkingSetTable::Observations(FunctionId function) const {
  MutexLock lock(mu_);
  auto it = profiles_.find(function);
  return it == profiles_.end() ? 0 : it->second.observations();
}

size_t WorkingSetTable::NumFunctions() const {
  MutexLock lock(mu_);
  return profiles_.size();
}

std::string WorkingSetTable::Serialize() const {
  MutexLock lock(mu_);
  std::string out;
  PutU32(out, kTableMagic);
  PutU32(out, static_cast<uint32_t>(profiles_.size()));
  for (const auto& [function, profile] : profiles_) {
    PutU32(out, static_cast<uint32_t>(function));
    profile.AppendTo(out);
  }
  return out;
}

bool WorkingSetTable::Deserialize(std::string_view data, WorkingSetTable& out) {
  MutexLock lock(out.mu_);
  out.profiles_.clear();
  uint32_t magic = 0;
  uint32_t count = 0;
  if (!TakeU32(data, magic) || magic != kTableMagic || !TakeU32(data, count)) {
    return false;
  }
  std::map<FunctionId, WorkingSetProfile> profiles;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t function = 0;
    if (!TakeU32(data, function)) {
      return false;
    }
    WorkingSetProfile profile;
    if (!WorkingSetProfile::ConsumeFrom(data, profile)) {
      return false;
    }
    profiles[static_cast<FunctionId>(function)] = std::move(profile);
  }
  if (!data.empty()) {
    return false;  // trailing garbage
  }
  out.profiles_ = std::move(profiles);
  return true;
}

}  // namespace medes
