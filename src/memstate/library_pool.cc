#include "memstate/library_pool.h"

#include <cstring>

#include "common/hash.h"
#include "common/rng.h"
#include "memstate/profiles.h"

namespace medes {

namespace {
constexpr size_t kPage = 4096;
}

LibraryPool::LibraryPool(uint64_t seed, size_t bytes_per_mb)
    : seed_(seed), bytes_per_mb_(bytes_per_mb), dictionary_(seed) {}

size_t LibraryPool::ScaledBytes(double mb) const {
  auto bytes = static_cast<size_t>(mb * static_cast<double>(bytes_per_mb_));
  // Round up to a whole page so segments stay page-aligned.
  return (bytes + kPage - 1) / kPage * kPage;
}

std::span<const uint8_t> LibraryPool::Blob(const std::string& name) const {
  auto it = cache_.find(name);
  if (it != cache_.end()) {
    return it->second;
  }
  // Size comes from the catalogue when known, else default to 4 MB.
  double mb = 4.0;
  for (const auto& info : LibraryCatalogue()) {
    if (info.name == name) {
      mb = info.size_mb;
      break;
    }
  }
  std::vector<uint8_t> blob(ScaledBytes(mb));
  uint64_t blob_seed = HashCombine(seed_, Fnv1a64({reinterpret_cast<const uint8_t*>(name.data()),
                                                   name.size()}));
  FillWithTokens(dictionary_, blob_seed, blob);
  auto [ins, _] = cache_.emplace(name, std::move(blob));
  return ins->second;
}

void FillWithTokens(const TokenDictionary& dict, uint64_t seed, std::span<uint8_t> out) {
  // Content is composed of contiguous *runs* of dictionary tokens (1-8 KiB),
  // not isolated shuffled tokens: real shared memory (library text, arena
  // allocations) repeats in long stretches, which is what lets a verified
  // 64 B chunk match extend into its neighbourhood (paper Section 2.1's
  // extension step) and lets delta encoding emit long COPY instructions.
  Rng rng(seed);
  size_t pos = 0;
  while (pos < out.size()) {
    size_t start = rng.Below(dict.NumTokens());
    size_t run_tokens = 16 + rng.Below(113);  // 1 KiB .. 8 KiB
    for (size_t t = 0; t < run_tokens && pos < out.size(); ++t) {
      std::span<const uint8_t> token = dict.Token(start + t);
      size_t take = std::min(token.size(), out.size() - pos);
      std::memcpy(out.data() + pos, token.data(), take);
      pos += take;
    }
  }
}

}  // namespace medes
