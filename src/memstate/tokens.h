// Global token dictionary — the source of sub-page memory redundancy.
//
// Real sandbox memory is dominated by shared-library text/data, interpreter
// structures, and heap objects whose 64 B-granularity content recurs heavily
// both within a function's sandboxes and across different functions (paper
// Figs. 1a-1c measure 84-90% redundancy at 64 B chunks). We reproduce that
// statistically: all synthetic library and shared-heap content is composed of
// 64 B "tokens" drawn from one global dictionary. Two different library blobs
// then share most 64 B chunks (high redundancy at fine granularity) while
// differing at coarser granularity (token order differs), matching the
// paper's observed redundancy-vs-chunk-size decay.
#ifndef MEDES_MEMSTATE_TOKENS_H_
#define MEDES_MEMSTATE_TOKENS_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace medes {

inline constexpr size_t kTokenSize = 64;

class TokenDictionary {
 public:
  // `num_tokens` distinct 64 B tokens generated deterministically from `seed`.
  explicit TokenDictionary(uint64_t seed = 0x70cced, size_t num_tokens = 4096);

  size_t NumTokens() const { return num_tokens_; }

  std::span<const uint8_t> Token(size_t index) const {
    return {data_.data() + (index % num_tokens_) * kTokenSize, kTokenSize};
  }

 private:
  size_t num_tokens_;
  std::vector<uint8_t> data_;
};

}  // namespace medes

#endif  // MEDES_MEMSTATE_TOKENS_H_
