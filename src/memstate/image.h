// Sandbox memory images: the byte-level state that dedup operates on.
//
// An image is a contiguous page-aligned byte buffer plus a segment map
// describing what each region models (library mapping, shared heap, unique
// heap, zero pages, stack). The builder composes a function's image from the
// library pool and the function profile, then applies per-instance noise
// ("pointer mutations") and, optionally, ASLR effects:
//   - library/runtime segments: clean pages are identical across every
//     sandbox that maps the library (any function, any node) — this is the
//     cross-function redundancy the paper exploits; a per-function calibrated
//     fraction of pages is *dirty* (written during execution: relocations,
//     refcounts, caches) and per-instance random;
//   - shared heap: deterministic per *function* (same content in every
//     sandbox of the function) built from dictionary tokens;
//   - unique heap: per-instance random bytes, never dedupable;
//   - zero pages: a small fraction of the heap, trivially dedupable;
//   - stack: per-function content; with ASLR on it is rotated by a random
//     multiple of 16 B (the paper attributes its ~5% ASLR redundancy drop to
//     this 16 B-granularity stack randomisation).
// ASLR additionally raises mutation density everywhere (randomised absolute
// addresses change every stored pointer value).
#ifndef MEDES_MEMSTATE_IMAGE_H_
#define MEDES_MEMSTATE_IMAGE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "memstate/library_pool.h"
#include "memstate/profiles.h"

namespace medes {

inline constexpr size_t kPageSize = 4096;

enum class SegmentKind {
  kLibrary,
  kSharedHeap,
  kUniqueHeap,
  kZero,
  kStack,
};

struct Segment {
  std::string name;
  SegmentKind kind;
  size_t offset = 0;  // byte offset within the image
  size_t size = 0;    // bytes
};

class MemoryImage {
 public:
  MemoryImage() = default;
  MemoryImage(std::vector<uint8_t> bytes, std::vector<Segment> segments, double represented_mb);

  size_t SizeBytes() const { return bytes_.size(); }
  size_t NumPages() const { return bytes_.size() / kPageSize; }
  double represented_mb() const { return represented_mb_; }

  std::span<const uint8_t> bytes() const { return bytes_; }
  std::span<uint8_t> mutable_bytes() { return bytes_; }
  std::span<const uint8_t> Page(size_t index) const {
    return std::span<const uint8_t>(bytes_).subspan(index * kPageSize, kPageSize);
  }

  const std::vector<Segment>& segments() const { return segments_; }

 private:
  std::vector<uint8_t> bytes_;
  std::vector<Segment> segments_;
  double represented_mb_ = 0;
};

struct SandboxImageOptions {
  uint64_t instance_seed = 1;  // distinguishes sandboxes of the same function
  bool aslr = false;
  // Mutation densities in mutation-sites per KiB (each site flips 8 bytes).
  double library_mutations_per_kib = 0.05;
  double heap_mutations_per_kib = 3.5;
  // ASLR randomises absolute addresses: every stored pointer changes, adding
  // light extra scatter (the dominant ASLR effect on redundancy is the 16 B
  // stack shift; mapping-granularity shifts are page-aligned and invisible
  // to 64 B chunking — exactly the paper's observation).
  double aslr_extra_library_mutations_per_kib = 0.15;
  double aslr_extra_heap_mutations_per_kib = 0.30;
  // Fraction of the heap that is zero pages.
  double zero_fraction = 0.08;
  // Represented stack size in MB.
  double stack_mb = 0.25;
  // When >= 0, replaces the profile's heap_unique_fraction. The measurement
  // study (paper Section 2) checkpoints freshly-loaded sandboxes whose heaps
  // barely diverged yet — model that with a small override (e.g. 0.1); the
  // cluster simulation uses the profile's post-execution value.
  double unique_fraction_override = -1;
  // When >= 0, replaces the profile's lib_dirty_fraction (same rationale).
  double dirty_fraction_override = -1;
};

// Builds the memory image for one sandbox instance of `profile`.
MemoryImage BuildSandboxImage(const FunctionProfile& profile, const LibraryPool& pool,
                              const SandboxImageOptions& options = {});

// The Section 2 measurement-study preset: a freshly-loaded sandbox that has
// not served (many) requests — little unique heap, almost no dirtied library
// pages, light pointer noise. Reproduces the paper's Fig. 1 redundancy
// levels (~0.85-0.9 at 64 B chunks between same-function sandboxes).
SandboxImageOptions FreshImageOptions(uint64_t instance_seed, bool aslr = false);

}  // namespace medes

#endif  // MEDES_MEMSTATE_IMAGE_H_
