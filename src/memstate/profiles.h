// FunctionBench function profiles (paper Tables 1 and 2).
//
// Each profile records the Python libraries the function environment loads,
// its average execution time and memory footprint (Table 2), an estimated
// cold-start time (Fig. 8 shows per-function cold starts between ~0.5 s and
// ~4 s), and a heap-uniqueness calibration knob that controls how much of the
// function's heap is per-instance noise (this is what calibrates per-function
// dedup savings to the paper's Table 3 shape).
#ifndef MEDES_MEMSTATE_PROFILES_H_
#define MEDES_MEMSTATE_PROFILES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"

namespace medes {

using FunctionId = int;

struct LibraryInfo {
  std::string name;
  double size_mb;  // represented size of the library's memory mapping
};

struct FunctionProfile {
  FunctionId id = -1;
  std::string name;
  std::vector<std::string> libraries;
  SimDuration exec_time;            // average execution time (Table 2)
  double memory_mb = 0;             // total sandbox memory footprint (Table 2)
  SimDuration cold_start;           // cold start latency
  SimDuration warm_start;           // warm start latency (paper: 1-20 ms)
  // Fraction of the function's heap that is per-instance unique (never
  // dedupable). Calibrated against the paper's Table 3 savings.
  double heap_unique_fraction = 0.5;
  // Fraction of library/stack pages dirtied by request execution (CoW pages
  // written by the interpreter: relocations, refcounts, caches). Dirty pages
  // are per-instance random and never dedup. Calibrated with
  // heap_unique_fraction against Table 3; freshly-loaded sandboxes (the
  // Section 2 measurement setting) override this to near zero.
  double lib_dirty_fraction = 0.5;
  // Post-resume access behaviour (REAP-style lazy restore). The function
  // touches a stable core of `working_set_fraction` of its pages on every
  // invocation, plus a per-invocation churn of `working_set_churn` of the
  // core's size drawn from the remaining pages (request-dependent data).
  // REAP reports working sets well under half the snapshot for most
  // functions; the per-function values vary around that shape.
  double working_set_fraction = 0.25;
  double working_set_churn = 0.10;
};

// The library catalogue (name -> represented MB).
const std::vector<LibraryInfo>& LibraryCatalogue();

// All ten FunctionBench functions used in the paper's evaluation.
const std::vector<FunctionProfile>& FunctionBenchProfiles();

// Lookup by name; throws std::out_of_range if unknown.
const FunctionProfile& ProfileByName(const std::string& name);

// Sum of the represented MB of the profile's libraries.
double LibraryFootprintMb(const FunctionProfile& profile);

}  // namespace medes

#endif  // MEDES_MEMSTATE_PROFILES_H_
