#include "memstate/image.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "common/hash.h"
#include "common/rng.h"

namespace medes {

MemoryImage::MemoryImage(std::vector<uint8_t> bytes, std::vector<Segment> segments,
                         double represented_mb)
    : bytes_(std::move(bytes)), segments_(std::move(segments)), represented_mb_(represented_mb) {
  if (bytes_.size() % kPageSize != 0) {
    throw std::invalid_argument("image size must be page aligned");
  }
}

namespace {

// Overwrites `sites` 8-byte words at rng-chosen offsets with instance-random
// values — models pointers, counters, and relocation fixups that differ
// between two sandboxes of the same function.
void ApplyMutations(std::span<uint8_t> region, double sites_per_kib, Rng& rng) {
  if (region.size() < 8 || sites_per_kib <= 0) {
    return;
  }
  auto sites = static_cast<size_t>(sites_per_kib * static_cast<double>(region.size()) / 1024.0);
  for (size_t i = 0; i < sites; ++i) {
    size_t off = rng.Below(region.size() - 7);
    uint64_t v = rng.Next();
    std::memcpy(region.data() + off, &v, 8);
  }
}

// Rotates `region` left by `shift` bytes (used for the ASLR 16 B-granularity
// stack randomisation).
void RotateRegion(std::span<uint8_t> region, size_t shift) {
  if (region.empty()) {
    return;
  }
  shift %= region.size();
  std::rotate(region.begin(), region.begin() + static_cast<ptrdiff_t>(shift), region.end());
}

// Overwrites each whole page of `region` with instance-random bytes with
// probability `dirty_fraction` — pages written during request execution
// diverge completely between instances and never dedup.
void DirtyPages(std::span<uint8_t> region, double dirty_fraction, Rng& rng) {
  if (dirty_fraction <= 0) {
    return;
  }
  const size_t page = 4096;
  for (size_t off = 0; off + page <= region.size(); off += page) {
    if (!rng.Bernoulli(dirty_fraction)) {
      continue;
    }
    for (size_t i = 0; i + 8 <= page; i += 8) {
      uint64_t v = rng.Next();
      std::memcpy(region.data() + off + i, &v, 8);
    }
  }
}

}  // namespace

SandboxImageOptions FreshImageOptions(uint64_t instance_seed, bool aslr) {
  SandboxImageOptions options;
  options.instance_seed = instance_seed;
  options.aslr = aslr;
  options.unique_fraction_override = 0.10;
  options.dirty_fraction_override = 0.04;
  options.heap_mutations_per_kib = 1.2;
  return options;
}

MemoryImage BuildSandboxImage(const FunctionProfile& profile, const LibraryPool& pool,
                              const SandboxImageOptions& options) {
  const double lib_mb = LibraryFootprintMb(profile);
  const double heap_mb = std::max(0.5, profile.memory_mb - lib_mb - options.stack_mb);
  const double unique_fraction = options.unique_fraction_override >= 0
                                     ? options.unique_fraction_override
                                     : profile.heap_unique_fraction;
  const double dirty_fraction = options.dirty_fraction_override >= 0
                                    ? options.dirty_fraction_override
                                    : profile.lib_dirty_fraction;
  const size_t zero_bytes = pool.ScaledBytes(heap_mb * options.zero_fraction);
  const size_t unique_bytes =
      pool.ScaledBytes(heap_mb * (1.0 - options.zero_fraction) * unique_fraction);
  const size_t shared_bytes =
      pool.ScaledBytes(heap_mb * (1.0 - options.zero_fraction) * (1.0 - unique_fraction));
  const size_t stack_bytes = pool.ScaledBytes(options.stack_mb);

  size_t total = zero_bytes + unique_bytes + shared_bytes + stack_bytes;
  for (const auto& lib : profile.libraries) {
    total += pool.Blob(lib).size();
  }

  std::vector<uint8_t> bytes(total);
  std::vector<Segment> segments;
  size_t cursor = 0;

  uint64_t fn_seed = HashCombine(0xfeedbee5, static_cast<uint64_t>(profile.id));
  Rng noise_rng(HashCombine(fn_seed, options.instance_seed));
  // ASLR randomises absolute addresses, which changes every stored pointer;
  // modelled as extra mutation density.
  const double lib_density = options.library_mutations_per_kib +
                             (options.aslr ? options.aslr_extra_library_mutations_per_kib : 0.0);
  const double heap_density = options.heap_mutations_per_kib +
                              (options.aslr ? options.aslr_extra_heap_mutations_per_kib : 0.0);

  auto add_segment = [&](const std::string& name, SegmentKind kind, size_t size) {
    segments.push_back({name, kind, cursor, size});
    std::span<uint8_t> region(bytes.data() + cursor, size);
    cursor += size;
    return region;
  };

  // 1. Library / runtime mappings: shared blob content + relocation noise;
  // a calibrated fraction of pages was dirtied by execution.
  for (const auto& lib : profile.libraries) {
    std::span<const uint8_t> blob = pool.Blob(lib);
    std::span<uint8_t> region = add_segment(lib, SegmentKind::kLibrary, blob.size());
    std::memcpy(region.data(), blob.data(), blob.size());
    ApplyMutations(region, lib_density, noise_rng);
    DirtyPages(region, dirty_fraction, noise_rng);
  }

  // 2. Shared heap: same content for every sandbox of this function.
  {
    std::span<uint8_t> region = add_segment("heap_shared", SegmentKind::kSharedHeap, shared_bytes);
    FillWithTokens(pool.dictionary(), HashCombine(fn_seed, 0x4ea9), region);
    ApplyMutations(region, heap_density, noise_rng);
  }

  // 3. Unique heap: per-instance random bytes (request payloads, buffers).
  {
    std::span<uint8_t> region = add_segment("heap_unique", SegmentKind::kUniqueHeap, unique_bytes);
    Rng rng(HashCombine(HashCombine(fn_seed, options.instance_seed), 0x0b5c));
    for (size_t i = 0; i + 8 <= region.size(); i += 8) {
      uint64_t v = rng.Next();
      std::memcpy(region.data() + i, &v, 8);
    }
  }

  // 4. Zero pages (already zeroed by the vector).
  add_segment("heap_zero", SegmentKind::kZero, zero_bytes);

  // 5. Stack: per-function content; ASLR rotates it at 16 B granularity.
  {
    std::span<uint8_t> region = add_segment("stack", SegmentKind::kStack, stack_bytes);
    FillWithTokens(pool.dictionary(), HashCombine(fn_seed, 0x57ac), region);
    if (options.aslr) {
      Rng rng(HashCombine(options.instance_seed, 0xa51e));
      RotateRegion(region, 16 * rng.Below(region.size() / 16 + 1));
    }
    ApplyMutations(region, heap_density, noise_rng);
    DirtyPages(region, dirty_fraction, noise_rng);
  }

  return MemoryImage(std::move(bytes), std::move(segments), profile.memory_mb);
}

}  // namespace medes
