#include "memstate/profiles.h"

#include <stdexcept>

namespace medes {

const std::vector<LibraryInfo>& LibraryCatalogue() {
  // Represented sizes of the *clean, shareable* part of each mapping (text +
  // read-only data). The dirtied part of library memory is modelled by
  // FunctionProfile::lib_dirty_fraction.
  static const std::vector<LibraryInfo> kCatalogue = {
      {"python_runtime", 5.0}, {"mathtime", 1.0},  {"numpy", 6.0},     {"pillow", 4.0},
      {"opencv", 12.0},        {"multiproc", 2.0}, {"chameleon", 3.0}, {"json", 1.0},
      {"pyaes", 2.0},          {"sklearn", 14.0},  {"pandas", 8.0},    {"torch", 35.0},
  };
  return kCatalogue;
}

const std::vector<FunctionProfile>& FunctionBenchProfiles() {
  // Table 2 execution times / memory footprints; library sets from Table 1.
  // Cold starts estimated from Fig. 8; warm starts from the paper's 1-20 ms
  // range. heap_unique_fraction calibrated to Table 3 per-function savings.
  // The last two numbers (heap_unique_fraction, lib_dirty_fraction) are the
  // execution-dirtiness calibration that lands per-function dedup savings on
  // the paper's Table 3.
  // The final two numbers per row are the REAP-style post-resume access
  // shape: stable working-set fraction, then per-invocation churn. Compute-
  // heavy functions touch more of their heap; servers and small utilities
  // touch a thin slice of mostly-interpreter pages.
  static const std::vector<FunctionProfile> kProfiles = {
      {0, "Vanilla", {"python_runtime", "mathtime"}, FromMillis(150), 17.0, FromMillis(500),
       FromMillis(6), 0.75, 0.75, 0.20, 0.10},
      {1, "LinAlg", {"python_runtime", "numpy"}, FromMillis(250), 32.0, FromMillis(700),
       FromMillis(7), 0.64, 0.64, 0.28, 0.12},
      {2, "ImagePro", {"python_runtime", "numpy", "pillow"}, FromMillis(1200), 26.4,
       FromMillis(900), FromMillis(7), 0.50, 0.50, 0.30, 0.12},
      {3, "VideoPro", {"python_runtime", "numpy", "opencv"}, FromMillis(2000), 48.0,
       FromMillis(1400), FromMillis(8), 0.69, 0.69, 0.35, 0.10},
      {4, "MapReduce", {"python_runtime", "multiproc"}, FromMillis(500), 32.0, FromMillis(800),
       FromMillis(7), 0.85, 0.85, 0.25, 0.15},
      {5, "HTMLServe", {"python_runtime", "chameleon", "json"}, FromMillis(400), 22.3,
       FromMillis(650), FromMillis(6), 0.42, 0.42, 0.15, 0.08},
      {6, "AuthEnc", {"python_runtime", "pyaes", "json"}, FromMillis(400), 22.3, FromMillis(650),
       FromMillis(6), 0.77, 0.77, 0.18, 0.10},
      {7, "FeatureGen", {"python_runtime", "sklearn", "pandas"}, FromMillis(1000), 66.0,
       FromMillis(1800), FromMillis(9), 0.44, 0.44, 0.30, 0.12},
      {8, "RNNModel", {"python_runtime", "torch"}, FromMillis(1000), 90.0, FromMillis(2500),
       FromMillis(10), 0.16, 0.16, 0.22, 0.08},
      {9, "ModelTrain", {"python_runtime", "sklearn"}, FromMillis(3000), 87.5, FromMillis(3000),
       FromMillis(10), 0.61, 0.61, 0.32, 0.12},
  };
  return kProfiles;
}

const FunctionProfile& ProfileByName(const std::string& name) {
  for (const auto& p : FunctionBenchProfiles()) {
    if (p.name == name) {
      return p;
    }
  }
  throw std::out_of_range("unknown function profile: " + name);
}

double LibraryFootprintMb(const FunctionProfile& profile) {
  double total = 0;
  for (const auto& lib : profile.libraries) {
    bool found = false;
    for (const auto& info : LibraryCatalogue()) {
      if (info.name == lib) {
        total += info.size_mb;
        found = true;
        break;
      }
    }
    if (!found) {
      throw std::out_of_range("unknown library: " + lib);
    }
  }
  return total;
}

}  // namespace medes
