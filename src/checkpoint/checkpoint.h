// In-memory CRIU-like sandbox checkpoints.
//
// A checkpoint is the memory dump of a sandbox: an array of page slots plus
// process metadata. Medes keeps checkpoints in memory (never on disk) and
// performs the expensive non-memory restore steps — namespace creation and
// process-tree reconstruction (fork() chains) — *before* deduplicating, so a
// dedup start only pays for memory-state restoration (paper Section 4.2;
// this optimisation took restores from 650 ms to ~140 ms).
//
// The dedup agent edits checkpoints in place: a page slot is either
//   - resident: the original 4 KiB bytes are held;
//   - patched:  the bytes were replaced by a delta against a base page
//               elsewhere in the cluster (the patch is the retained memory);
//   - zero:     an all-zero page (stored as nothing).
#ifndef MEDES_CHECKPOINT_CHECKPOINT_H_
#define MEDES_CHECKPOINT_CHECKPOINT_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/time.h"
#include "memstate/image.h"

namespace medes {

// Modelled costs of the checkpoint/restore substrate (CRIU-equivalent).
struct CheckpointCosts {
  // Capturing the memory dump of one (represented) page.
  SimDuration capture_per_page{12};  // us
  // Restoring the memory dump into a running sandbox, per (represented) page.
  SimDuration restore_per_page{15};  // us
  // Namespace creation + process-tree reconstruction. Paid at dedup time by
  // Medes (prepared ahead), or during the restore when not prepared.
  SimDuration namespace_and_ptree = 510 * kMillisecond;
};

enum class PageSlotState : uint8_t {
  kResident,
  kPatched,
  kZero,
};

class MemoryCheckpoint {
 public:
  MemoryCheckpoint() = default;

  // Captures the memory dump of `image`.
  static MemoryCheckpoint Capture(const MemoryImage& image);

  size_t NumPages() const { return slots_.size(); }
  PageSlotState SlotState(size_t page) const { return slots_[page].state; }

  // Bytes of a resident page. Precondition: SlotState(page) == kResident and
  // payloads have not been dropped.
  std::span<const uint8_t> PageData(size_t page) const;

  // Patch bytes of a patched page (empty if payloads were dropped).
  std::span<const uint8_t> PatchData(size_t page) const;
  size_t PatchSize(size_t page) const { return slots_[page].payload_size; }

  // Replaces a resident page with a patch (dedup op redundancy elimination).
  void ReplaceWithPatch(size_t page, std::vector<uint8_t> patch);

  // Marks a resident all-zero page as a zero slot (drops its bytes).
  void MarkZero(size_t page);

  // Puts reconstructed bytes back into a patched slot (restore op).
  void RestorePage(size_t page, std::vector<uint8_t> bytes);

  // True when every slot is resident or zero (restorable to a full image).
  bool FullyResident() const;

  // Materialises the full memory image. Throws std::logic_error if any page
  // is still patched or payloads were dropped.
  std::vector<uint8_t> ToBytes() const;

  // Frees payload bytes while keeping per-slot sizes — used by the cluster
  // simulation when byte-exact restore verification is disabled. Counters
  // (ResidentBytes / PatchBytes) keep working.
  void DropPayloads();
  bool payloads_dropped() const { return payloads_dropped_; }

  // Memory held by this checkpoint, by slot class.
  size_t ResidentBytes() const;
  size_t PatchBytes() const;
  size_t NumPatched() const;
  size_t NumZero() const;

  // Namespace/process-tree preparation state (see file comment).
  bool namespaces_prepared() const { return namespaces_prepared_; }
  void set_namespaces_prepared(bool v) { namespaces_prepared_ = v; }

 private:
  struct Slot {
    PageSlotState state = PageSlotState::kResident;
    size_t payload_size = 0;  // bytes held (page size or patch size)
    std::vector<uint8_t> payload;
  };

  std::vector<Slot> slots_;
  bool namespaces_prepared_ = false;
  bool payloads_dropped_ = false;
};

}  // namespace medes

#endif  // MEDES_CHECKPOINT_CHECKPOINT_H_
