#include "checkpoint/checkpoint.h"

#include <algorithm>
#include <stdexcept>

namespace medes {

namespace {
bool IsZeroPage(std::span<const uint8_t> page) {
  return std::all_of(page.begin(), page.end(), [](uint8_t b) { return b == 0; });
}
}  // namespace

MemoryCheckpoint MemoryCheckpoint::Capture(const MemoryImage& image) {
  MemoryCheckpoint cp;
  cp.slots_.resize(image.NumPages());
  for (size_t p = 0; p < image.NumPages(); ++p) {
    std::span<const uint8_t> page = image.Page(p);
    Slot& slot = cp.slots_[p];
    if (IsZeroPage(page)) {
      slot.state = PageSlotState::kZero;
      slot.payload_size = 0;
    } else {
      slot.state = PageSlotState::kResident;
      slot.payload.assign(page.begin(), page.end());
      slot.payload_size = page.size();
    }
  }
  return cp;
}

std::span<const uint8_t> MemoryCheckpoint::PageData(size_t page) const {
  const Slot& slot = slots_.at(page);
  if (slot.state != PageSlotState::kResident) {
    throw std::logic_error("PageData: page not resident");
  }
  return slot.payload;
}

std::span<const uint8_t> MemoryCheckpoint::PatchData(size_t page) const {
  const Slot& slot = slots_.at(page);
  if (slot.state != PageSlotState::kPatched) {
    throw std::logic_error("PatchData: page not patched");
  }
  return slot.payload;
}

void MemoryCheckpoint::ReplaceWithPatch(size_t page, std::vector<uint8_t> patch) {
  Slot& slot = slots_.at(page);
  if (slot.state != PageSlotState::kResident) {
    throw std::logic_error("ReplaceWithPatch: page not resident");
  }
  slot.state = PageSlotState::kPatched;
  slot.payload_size = patch.size();
  slot.payload = payloads_dropped_ ? std::vector<uint8_t>{} : std::move(patch);
}

void MemoryCheckpoint::MarkZero(size_t page) {
  Slot& slot = slots_.at(page);
  slot.state = PageSlotState::kZero;
  slot.payload_size = 0;
  slot.payload.clear();
}

void MemoryCheckpoint::RestorePage(size_t page, std::vector<uint8_t> bytes) {
  Slot& slot = slots_.at(page);
  if (slot.state != PageSlotState::kPatched) {
    throw std::logic_error("RestorePage: page not patched");
  }
  slot.state = PageSlotState::kResident;
  slot.payload_size = bytes.size();
  slot.payload = payloads_dropped_ ? std::vector<uint8_t>{} : std::move(bytes);
}

bool MemoryCheckpoint::FullyResident() const {
  return std::all_of(slots_.begin(), slots_.end(), [](const Slot& s) {
    return s.state != PageSlotState::kPatched;
  });
}

std::vector<uint8_t> MemoryCheckpoint::ToBytes() const {
  if (payloads_dropped_) {
    throw std::logic_error("ToBytes: payloads were dropped");
  }
  std::vector<uint8_t> out(slots_.size() * kPageSize, 0);
  for (size_t p = 0; p < slots_.size(); ++p) {
    const Slot& slot = slots_[p];
    switch (slot.state) {
      case PageSlotState::kResident:
        std::copy(slot.payload.begin(), slot.payload.end(),
                  out.begin() + static_cast<ptrdiff_t>(p * kPageSize));
        break;
      case PageSlotState::kZero:
        break;  // already zero
      case PageSlotState::kPatched:
        throw std::logic_error("ToBytes: page still patched");
    }
  }
  return out;
}

void MemoryCheckpoint::DropPayloads() {
  payloads_dropped_ = true;
  for (Slot& slot : slots_) {
    slot.payload.clear();
    slot.payload.shrink_to_fit();
  }
}

size_t MemoryCheckpoint::ResidentBytes() const {
  size_t total = 0;
  for (const Slot& slot : slots_) {
    if (slot.state == PageSlotState::kResident) {
      total += slot.payload_size;
    }
  }
  return total;
}

size_t MemoryCheckpoint::PatchBytes() const {
  size_t total = 0;
  for (const Slot& slot : slots_) {
    if (slot.state == PageSlotState::kPatched) {
      total += slot.payload_size;
    }
  }
  return total;
}

size_t MemoryCheckpoint::NumPatched() const {
  return static_cast<size_t>(std::count_if(slots_.begin(), slots_.end(), [](const Slot& s) {
    return s.state == PageSlotState::kPatched;
  }));
}

size_t MemoryCheckpoint::NumZero() const {
  return static_cast<size_t>(std::count_if(slots_.begin(), slots_.end(), [](const Slot& s) {
    return s.state == PageSlotState::kZero;
  }));
}

}  // namespace medes
