#include "registry/fingerprint_registry.h"

#include <algorithm>

namespace medes {

FingerprintRegistry::FingerprintRegistry(RegistryOptions options) : options_(options) {}

void FingerprintRegistry::InsertBaseSandbox(NodeId node, SandboxId sandbox,
                                            const std::vector<PageFingerprint>& fingerprints) {
  base_refcounts_.try_emplace(sandbox, 0);
  for (size_t page = 0; page < fingerprints.size(); ++page) {
    for (const SampledChunk& chunk : fingerprints[page].chunks) {
      auto& locations = table_[chunk.key];
      if (locations.size() < options_.max_locations_per_key) {
        locations.push_back({node, sandbox, static_cast<uint32_t>(page)});
      }
    }
  }
}

void FingerprintRegistry::RemoveBaseSandbox(SandboxId sandbox) {
  base_refcounts_.erase(sandbox);
  for (auto it = table_.begin(); it != table_.end();) {
    auto& locations = it->second;
    std::erase_if(locations, [&](const PageLocation& loc) { return loc.sandbox == sandbox; });
    if (locations.empty()) {
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
}

void FingerprintRegistry::AccumulateTally(
    const PageFingerprint& fingerprint, SandboxId exclude_sandbox,
    std::unordered_map<PageLocation, int, PageLocationHash>& tally) {
  for (const SampledChunk& chunk : fingerprint.chunks) {
    auto it = table_.find(chunk.key);
    if (it == table_.end()) {
      continue;
    }
    ++key_hits_;
    for (const PageLocation& loc : it->second) {
      if (loc.sandbox == exclude_sandbox) {
        continue;
      }
      ++tally[loc];
    }
  }
}

std::vector<BasePageCandidate> FingerprintRegistry::FindBasePages(
    const PageFingerprint& fingerprint, NodeId local_node, SandboxId exclude_sandbox,
    size_t max_results) {
  ++lookups_;
  std::unordered_map<PageLocation, int, PageLocationHash> tally;
  AccumulateTally(fingerprint, exclude_sandbox, tally);
  return RankCandidates(tally, local_node, max_results);
}

void FingerprintRegistry::Ref(SandboxId base_sandbox) {
  auto it = base_refcounts_.find(base_sandbox);
  if (it != base_refcounts_.end()) {
    ++it->second;
  }
}

void FingerprintRegistry::Unref(SandboxId base_sandbox) {
  auto it = base_refcounts_.find(base_sandbox);
  if (it != base_refcounts_.end() && it->second > 0) {
    --it->second;
  }
}

int FingerprintRegistry::RefCount(SandboxId base_sandbox) const {
  auto it = base_refcounts_.find(base_sandbox);
  return it == base_refcounts_.end() ? 0 : it->second;
}

RegistryStats FingerprintRegistry::stats() const {
  RegistryStats s;
  s.num_keys = table_.size();
  for (const auto& [key, locations] : table_) {
    s.num_entries += locations.size();
  }
  s.num_base_sandboxes = base_refcounts_.size();
  s.lookups = lookups_;
  s.key_hits = key_hits_;
  return s;
}

}  // namespace medes
