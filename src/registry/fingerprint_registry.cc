#include "registry/fingerprint_registry.h"

#include <algorithm>
#include <utility>

#include "common/hash.h"
#include "common/mutex.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "store/state_store.h"

namespace medes {

namespace {

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

struct RegistryInstruments {
  obs::Counter* lookups;
  obs::Counter* batches;
  obs::Counter* inserts;
  obs::Counter* insert_keys;
  obs::Counter* removes;
  obs::Histogram* batch_cost_us;
};

const RegistryInstruments& Instruments() {
  static const RegistryInstruments instruments = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
    return RegistryInstruments{
        .lookups = &registry.GetCounter("medes_registry_lookups_total",
                                        "Per-page fingerprint lookups against the registry"),
        .batches = &registry.GetCounter("medes_registry_lookup_batches_total",
                                        "Batched lookup round trips to the registry"),
        .inserts = &registry.GetCounter("medes_registry_inserts_total",
                                        "Base-sandbox fingerprint inserts"),
        .insert_keys = &registry.GetCounter("medes_registry_insert_keys_total",
                                            "Chunk keys carried by base-sandbox inserts"),
        .removes = &registry.GetCounter("medes_registry_removes_total",
                                        "Base sandboxes removed from the registry"),
        .batch_cost_us = &registry.GetHistogram(
            "medes_registry_batch_cost_us", "Modelled cost of one batched lookup (us)"),
    };
  }();
  return instruments;
}

}  // namespace

FingerprintRegistry::FingerprintRegistry(RegistryOptions options) : options_(options) {
  const size_t shards = RoundUpPow2(std::max<size_t>(options_.num_shards, 1));
  shards_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

FingerprintRegistry::FingerprintRegistry(const FingerprintRegistry& other)
    : FingerprintRegistry(other.options_) {
  CopyFrom(other);
}

FingerprintRegistry& FingerprintRegistry::operator=(const FingerprintRegistry& other) {
  if (this == &other) {
    return *this;
  }
  options_ = other.options_;
  shards_.clear();
  const size_t shards = RoundUpPow2(std::max<size_t>(options_.num_shards, 1));
  for (size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  CopyFrom(other);
  return *this;
}

void FingerprintRegistry::CopyFrom(const FingerprintRegistry& other) {
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Shard& src = *other.shards_[s];
    Shard& dst = *shards_[s];
    // Snapshot the source shard, then install into the destination shard.
    // Two sequential critical sections: source and destination shards share
    // a lock rank, so they must never be held together.
    std::unordered_map<uint64_t, std::vector<PageLocation>> table;
    std::unordered_map<SandboxId, std::vector<uint64_t>> keys_by_sandbox;
    uint64_t key_hits = 0;
    {
      ReaderLock lock(src.mu);
      table = src.table;
      keys_by_sandbox = src.keys_by_sandbox;
      key_hits = src.key_hits.load(std::memory_order_relaxed);
    }
    {
      WriterLock lock(dst.mu);
      dst.table = std::move(table);
      dst.keys_by_sandbox = std::move(keys_by_sandbox);
    }
    dst.key_hits.store(key_hits, std::memory_order_relaxed);
  }
  std::unordered_map<SandboxId, int> refcounts;
  {
    ReaderLock lock(other.sandbox_mu_);
    refcounts = other.base_refcounts_;
  }
  {
    WriterLock lock(sandbox_mu_);
    base_refcounts_ = std::move(refcounts);
  }
  lookups_.store(other.lookups_.load(std::memory_order_relaxed), std::memory_order_relaxed);
}

size_t FingerprintRegistry::ShardIndex(uint64_t key) const {
  // MixBits spreads truncated keys (which may share low bits) across stripes.
  return static_cast<size_t>(MixBits(key)) & (shards_.size() - 1);
}

void FingerprintRegistry::BindTransport(std::shared_ptr<Transport> transport,
                                        NodeId registry_node) {
  transport_ = std::move(transport);
  registry_node_ = registry_node;
}

void FingerprintRegistry::BindStateStore(std::shared_ptr<store::StateStore> store) {
  store_ = std::move(store);
}

void FingerprintRegistry::InsertBaseSandbox(NodeId node, SandboxId sandbox,
                                            const std::vector<PageFingerprint>& fingerprints,
                                            const obs::MessageTrace& trace) {
  if (transport_ != nullptr) {
    size_t keys = 0;
    for (const PageFingerprint& fp : fingerprints) {
      keys += fp.chunks.size();
    }
    const auto sent = transport_->Send(MessageType::kRegistryInsert, node, registry_node_,
                                       static_cast<uint64_t>(keys) * kRegistryWireBytesPerKey,
                           fingerprints.size(), trace);
    if (!sent.delivered) {
      return;  // insert lost: the sandbox is simply never registered
    }
  }
  if (obs::MetricsEnabled()) {
    size_t keys = 0;
    for (const PageFingerprint& fp : fingerprints) {
      keys += fp.chunks.size();
    }
    Instruments().inserts->Add(1);
    Instruments().insert_keys->Add(keys);
  }
  {
    WriterLock lock(sandbox_mu_);
    base_refcounts_.try_emplace(sandbox, 0);
  }
  for (size_t page = 0; page < fingerprints.size(); ++page) {
    for (const SampledChunk& chunk : fingerprints[page].chunks) {
      Shard& shard = ShardFor(chunk.key);
      WriterLock lock(shard.mu);
      auto& locations = shard.table[chunk.key];
      if (locations.size() < options_.max_locations_per_key) {
        locations.push_back({node, sandbox, PageIndex{static_cast<uint32_t>(page)}});
        shard.keys_by_sandbox[sandbox].push_back(chunk.key);
      }
    }
  }
  // Only inserts that actually landed (past the transport delivery check)
  // become durable registry state. No shard locks are held here.
  if (store_ != nullptr) {
    store_->AppendInsertSandbox(node, sandbox, fingerprints);
  }
}

void FingerprintRegistry::RemoveBaseSandbox(SandboxId sandbox) {
  if (obs::MetricsEnabled()) {
    Instruments().removes->Add(1);
  }
  {
    WriterLock lock(sandbox_mu_);
    base_refcounts_.erase(sandbox);
  }
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    WriterLock lock(shard.mu);
    auto owned = shard.keys_by_sandbox.find(sandbox);
    if (owned == shard.keys_by_sandbox.end()) {
      continue;
    }
    for (uint64_t key : owned->second) {
      auto it = shard.table.find(key);
      if (it == shard.table.end()) {
        continue;  // earlier duplicate of this key already emptied it
      }
      std::erase_if(it->second,
                    [&](const PageLocation& loc) { return loc.sandbox == sandbox; });
      if (it->second.empty()) {
        shard.table.erase(it);
      }
    }
    shard.keys_by_sandbox.erase(owned);
  }
  if (store_ != nullptr) {
    store_->AppendRemoveSandbox(sandbox);
  }
}

bool FingerprintRegistry::IsBaseSandbox(SandboxId sandbox) const {
  ReaderLock lock(sandbox_mu_);
  return base_refcounts_.contains(sandbox);
}

void FingerprintRegistry::AccumulateTally(
    const PageFingerprint& fingerprint, SandboxId exclude_sandbox,
    std::unordered_map<PageLocation, int, PageLocationHash>& tally) {
  for (const SampledChunk& chunk : fingerprint.chunks) {
    Shard& shard = ShardFor(chunk.key);
    ReaderLock lock(shard.mu);
    auto it = shard.table.find(chunk.key);
    if (it == shard.table.end()) {
      continue;
    }
    shard.key_hits.fetch_add(1, std::memory_order_relaxed);
    for (const PageLocation& loc : it->second) {
      if (loc.sandbox == exclude_sandbox) {
        continue;
      }
      ++tally[loc];
    }
  }
}

std::vector<BasePageCandidate> FingerprintRegistry::FindBasePages(
    const PageFingerprint& fingerprint, NodeId local_node, SandboxId exclude_sandbox,
    size_t max_results) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  if (obs::MetricsEnabled()) {
    Instruments().lookups->Add(1);
  }
  std::unordered_map<PageLocation, int, PageLocationHash> tally;
  AccumulateTally(fingerprint, exclude_sandbox, tally);
  return RankCandidates(tally, local_node, max_results);
}

std::vector<std::vector<BasePageCandidate>> FingerprintRegistry::FindBasePagesBatch(
    std::span<const PageFingerprint> fingerprints, NodeId local_node,
    SandboxId exclude_sandbox, size_t max_results, SimDuration* lookup_cost,
    const obs::MessageTrace& trace) {
  lookups_.fetch_add(fingerprints.size(), std::memory_order_relaxed);
  if (obs::MetricsEnabled()) {
    Instruments().lookups->Add(fingerprints.size());
    Instruments().batches->Add(1);
  }

  // Modelled cost: one round trip carrying the whole batch's keys (wire),
  // plus the controller's per-page lookup work (CPU). A dropped lookup
  // message degrades to an empty answer — every page in the batch is
  // treated as unique (paper: missing a candidate is always safe).
  if (lookup_cost != nullptr || transport_ != nullptr) {
    size_t keys = 0;
    for (const PageFingerprint& fp : fingerprints) {
      keys += fp.chunks.size();
    }
    SimDuration cost = static_cast<int64_t>(fingerprints.size()) * options_.lookup_per_page;
    bool delivered = true;
    if (transport_ != nullptr && !fingerprints.empty()) {
      const auto sent =
          transport_->Send(MessageType::kRegistryLookup, local_node, registry_node_,
                           static_cast<uint64_t>(keys) * kRegistryWireBytesPerKey,
                           fingerprints.size(), trace);
      cost += sent.cost;
      delivered = sent.delivered;
      if (delivered && obs::TraceEnabled() && trace.ctx.sampled()) {
        // Registry-side work span, parented to the wire-message span the
        // transport just recorded (re-derived — same pure function).
        const obs::TraceContext msg_ctx =
            MessageSpanContext(MessageType::kRegistryLookup, trace);
        obs::ScopedSpan work("registry/lookup_work", "registry", trace.at + sent.cost,
                             static_cast<int32_t>(registry_node_.value()),
                             msg_ctx.Child("registry/lookup_work"));
        work.SetSimDuration(static_cast<int64_t>(fingerprints.size()) *
                            options_.lookup_per_page);
        work.AddArg("pages", static_cast<int64_t>(fingerprints.size()));
        work.AddArg("keys", static_cast<int64_t>(keys));
      }
    }
    if (lookup_cost != nullptr) {
      *lookup_cost += cost;
    }
    if (obs::MetricsEnabled()) {
      Instruments().batch_cost_us->Record(cost.value());
    }
    if (!delivered) {
      return std::vector<std::vector<BasePageCandidate>>(fingerprints.size());
    }
  }

  // Group (fingerprint, chunk) references by owning shard so each shard's
  // lock is taken once per batch rather than once per key.
  struct KeyRef {
    uint64_t key;
    uint32_t fp_index;
  };
  std::vector<std::vector<KeyRef>> per_shard(shards_.size());
  for (size_t i = 0; i < fingerprints.size(); ++i) {
    for (const SampledChunk& chunk : fingerprints[i].chunks) {
      per_shard[ShardIndex(chunk.key)].push_back({chunk.key, static_cast<uint32_t>(i)});
    }
  }

  std::vector<std::unordered_map<PageLocation, int, PageLocationHash>> tallies(
      fingerprints.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (per_shard[s].empty()) {
      continue;
    }
    Shard& shard = *shards_[s];
    ReaderLock lock(shard.mu);
    for (const KeyRef& ref : per_shard[s]) {
      auto it = shard.table.find(ref.key);
      if (it == shard.table.end()) {
        continue;
      }
      shard.key_hits.fetch_add(1, std::memory_order_relaxed);
      auto& tally = tallies[ref.fp_index];
      for (const PageLocation& loc : it->second) {
        if (loc.sandbox == exclude_sandbox) {
          continue;
        }
        ++tally[loc];
      }
    }
  }

  std::vector<std::vector<BasePageCandidate>> results;
  results.reserve(fingerprints.size());
  for (auto& tally : tallies) {
    results.push_back(RankCandidates(tally, local_node, max_results));
  }
  return results;
}

void FingerprintRegistry::Ref(SandboxId base_sandbox) {
  WriterLock lock(sandbox_mu_);
  auto it = base_refcounts_.find(base_sandbox);
  if (it != base_refcounts_.end()) {
    ++it->second;
  }
}

void FingerprintRegistry::Unref(SandboxId base_sandbox) {
  WriterLock lock(sandbox_mu_);
  auto it = base_refcounts_.find(base_sandbox);
  if (it != base_refcounts_.end() && it->second > 0) {
    --it->second;
  }
}

int FingerprintRegistry::RefCount(SandboxId base_sandbox) const {
  ReaderLock lock(sandbox_mu_);
  auto it = base_refcounts_.find(base_sandbox);
  return it == base_refcounts_.end() ? 0 : it->second;
}

size_t FingerprintRegistry::NumBaseSandboxes() const {
  ReaderLock lock(sandbox_mu_);
  return base_refcounts_.size();
}

RegistryStats FingerprintRegistry::stats() const {
  RegistryStats s;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    ReaderLock lock(shard.mu);
    s.num_keys += shard.table.size();
    for (const auto& [key, locations] : shard.table) {
      s.num_entries += locations.size();
    }
    s.key_hits += shard.key_hits.load(std::memory_order_relaxed);
  }
  {
    ReaderLock lock(sandbox_mu_);
    s.num_base_sandboxes = base_refcounts_.size();
  }
  s.lookups = lookups_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace medes
