#include "registry/distributed_registry.h"

#include <stdexcept>

#include "common/hash.h"

namespace medes {

DistributedRegistry::DistributedRegistry(DistributedRegistryOptions options)
    : options_(options) {
  if (options_.num_shards <= 0 || options_.replication_factor <= 0) {
    throw std::invalid_argument("DistributedRegistry: shards and replicas must be positive");
  }
  WriterLock topology(topology_mu_);
  shards_.resize(static_cast<size_t>(options_.num_shards));
  for (Shard& shard : shards_) {
    for (int r = 0; r < options_.replication_factor; ++r) {
      shard.chain.emplace_back(Replica{FingerprintRegistry(options_.per_shard), true});
    }
  }
  MutexLock stats(stats_mu_);
  dist_stats_.lookups_per_shard.assign(static_cast<size_t>(options_.num_shards), 0);
  dist_stats_.writes_per_shard.assign(static_cast<size_t>(options_.num_shards), 0);
}

int DistributedRegistry::ShardOf(uint64_t key) const {
  return static_cast<int>(MixBits(key) % static_cast<uint64_t>(options_.num_shards));
}

int DistributedRegistry::SandboxShard(SandboxId sandbox) const {
  return static_cast<int>(MixBits(sandbox) % static_cast<uint64_t>(options_.num_shards));
}

int DistributedRegistry::EffectiveTail(const Shard& shard) const {
  for (int r = static_cast<int>(shard.chain.size()) - 1; r >= 0; --r) {
    if (shard.chain[static_cast<size_t>(r)].alive) {
      return r;
    }
  }
  return -1;
}

bool DistributedRegistry::ShardAvailable(int shard) const {
  ReaderLock topology(topology_mu_);
  return EffectiveTail(shards_.at(static_cast<size_t>(shard))) >= 0;
}

void DistributedRegistry::InsertBaseSandbox(NodeId node, SandboxId sandbox,
                                            const std::vector<PageFingerprint>& fingerprints) {
  // Partition each page's sampled chunks by owning shard.
  std::vector<std::vector<PageFingerprint>> per_shard(
      static_cast<size_t>(options_.num_shards),
      std::vector<PageFingerprint>(fingerprints.size()));
  for (size_t page = 0; page < fingerprints.size(); ++page) {
    for (const SampledChunk& chunk : fingerprints[page].chunks) {
      per_shard[static_cast<size_t>(ShardOf(chunk.key))][page].chunks.push_back(chunk);
    }
  }
  ReaderLock topology(topology_mu_);
  for (int s = 0; s < options_.num_shards; ++s) {
    Shard& shard = shards_[static_cast<size_t>(s)];
    if (EffectiveTail(shard) < 0) {
      MutexLock stats(stats_mu_);
      ++dist_stats_.dropped_writes;
      continue;
    }
    {
      MutexLock stats(stats_mu_);
      ++dist_stats_.writes_per_shard[static_cast<size_t>(s)];
    }
    // Chain replication: the write flows head -> tail through live replicas.
    for (Replica& replica : shard.chain) {
      if (replica.alive) {
        replica.registry.InsertBaseSandbox(node, sandbox, per_shard[static_cast<size_t>(s)]);
      }
    }
  }
  // Sandbox-level membership/refcount state lives on the sandbox's shard
  // (the insert above already created it there; this covers the case where
  // none of the sandbox's chunk keys mapped to that shard).
  Shard& home = shards_[static_cast<size_t>(SandboxShard(sandbox))];
  for (Replica& replica : home.chain) {
    if (replica.alive) {
      replica.registry.InsertBaseSandbox(node, sandbox, {});
    }
  }
}

void DistributedRegistry::RemoveBaseSandbox(SandboxId sandbox) {
  ReaderLock topology(topology_mu_);
  for (Shard& shard : shards_) {
    for (Replica& replica : shard.chain) {
      if (replica.alive) {
        replica.registry.RemoveBaseSandbox(sandbox);
      }
    }
  }
}

bool DistributedRegistry::IsBaseSandbox(SandboxId sandbox) const {
  ReaderLock topology(topology_mu_);
  const Shard& home = shards_[static_cast<size_t>(SandboxShard(sandbox))];
  int tail = EffectiveTail(home);
  if (tail < 0) {
    return false;
  }
  return home.chain[static_cast<size_t>(tail)].registry.IsBaseSandbox(sandbox);
}

std::vector<BasePageCandidate> DistributedRegistry::FindBasePages(
    const PageFingerprint& fingerprint, NodeId local_node, SandboxId exclude_sandbox,
    size_t max_results) {
  // Fan the page's sampled chunks out to their owning shards and merge the
  // tallies (reads go to each chain's tail).
  std::vector<PageFingerprint> per_shard(static_cast<size_t>(options_.num_shards));
  for (const SampledChunk& chunk : fingerprint.chunks) {
    per_shard[static_cast<size_t>(ShardOf(chunk.key))].chunks.push_back(chunk);
  }
  std::unordered_map<PageLocation, int, PageLocationHash> tally;
  ReaderLock topology(topology_mu_);
  for (int s = 0; s < options_.num_shards; ++s) {
    if (per_shard[static_cast<size_t>(s)].chunks.empty()) {
      continue;
    }
    Shard& shard = shards_[static_cast<size_t>(s)];
    int tail = EffectiveTail(shard);
    if (tail < 0) {
      MutexLock stats(stats_mu_);
      ++dist_stats_.unavailable_lookups;
      continue;
    }
    {
      MutexLock stats(stats_mu_);
      if (tail != static_cast<int>(shard.chain.size()) - 1) {
        ++dist_stats_.failovers;
      }
      ++dist_stats_.lookups_per_shard[static_cast<size_t>(s)];
    }
    shard.chain[static_cast<size_t>(tail)].registry.AccumulateTally(
        per_shard[static_cast<size_t>(s)], exclude_sandbox, tally);
  }
  return RankCandidates(tally, local_node, max_results);
}

void DistributedRegistry::Ref(SandboxId base_sandbox) {
  ReaderLock topology(topology_mu_);
  Shard& home = shards_[static_cast<size_t>(SandboxShard(base_sandbox))];
  for (Replica& replica : home.chain) {
    if (replica.alive) {
      replica.registry.Ref(base_sandbox);
    }
  }
}

void DistributedRegistry::Unref(SandboxId base_sandbox) {
  ReaderLock topology(topology_mu_);
  Shard& home = shards_[static_cast<size_t>(SandboxShard(base_sandbox))];
  for (Replica& replica : home.chain) {
    if (replica.alive) {
      replica.registry.Unref(base_sandbox);
    }
  }
}

int DistributedRegistry::RefCount(SandboxId base_sandbox) const {
  ReaderLock topology(topology_mu_);
  const Shard& home = shards_[static_cast<size_t>(SandboxShard(base_sandbox))];
  int tail = EffectiveTail(home);
  if (tail < 0) {
    return 0;
  }
  return home.chain[static_cast<size_t>(tail)].registry.RefCount(base_sandbox);
}

RegistryStats DistributedRegistry::stats() const {
  RegistryStats total;
  ReaderLock topology(topology_mu_);
  for (const Shard& shard : shards_) {
    int tail = EffectiveTail(shard);
    if (tail < 0) {
      continue;
    }
    RegistryStats s = shard.chain[static_cast<size_t>(tail)].registry.stats();
    total.num_keys += s.num_keys;
    total.num_entries += s.num_entries;
    total.num_base_sandboxes = std::max(total.num_base_sandboxes, s.num_base_sandboxes);
    total.lookups += s.lookups;
    total.key_hits += s.key_hits;
  }
  return total;
}

SimDuration DistributedRegistry::PageLookupLatency(size_t keys) const {
  if (keys == 0) {
    return 0;
  }
  // Shards are queried in parallel; with K keys over S shards the critical
  // path is the most loaded shard: ceil(K/S) key lookups plus one hop.
  const auto shards = static_cast<size_t>(options_.num_shards);
  const size_t per_shard = (keys + shards - 1) / shards;
  return options_.hop_latency +
         static_cast<SimDuration>(per_shard) * options_.per_key_lookup;
}

DistributedRegistryStats DistributedRegistry::distributed_stats() const {
  MutexLock stats(stats_mu_);
  return dist_stats_;
}

void DistributedRegistry::FailReplica(int shard, int replica) {
  WriterLock topology(topology_mu_);
  shards_.at(static_cast<size_t>(shard)).chain.at(static_cast<size_t>(replica)).alive = false;
}

void DistributedRegistry::RecoverReplica(int shard, int replica) {
  WriterLock topology(topology_mu_);
  Shard& s = shards_.at(static_cast<size_t>(shard));
  Replica& r = s.chain.at(static_cast<size_t>(replica));
  if (r.alive) {
    return;
  }
  int tail = EffectiveTail(s);
  if (tail < 0) {
    return;  // whole shard lost: nothing to re-sync from
  }
  r.registry = s.chain[static_cast<size_t>(tail)].registry;  // state transfer
  r.alive = true;
}

}  // namespace medes
