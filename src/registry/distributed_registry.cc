#include "registry/distributed_registry.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/hash.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "store/state_store.h"

namespace medes {

namespace {

struct DistRegistryInstruments {
  obs::Counter* failovers;
  obs::Counter* unavailable_lookups;
  obs::Counter* dropped_writes;
  obs::Counter* replica_syncs;
};

const DistRegistryInstruments& Instruments() {
  static const DistRegistryInstruments instruments = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
    return DistRegistryInstruments{
        .failovers = &registry.GetCounter(
            "medes_distregistry_failovers_total",
            "Page lookups served by a non-tail replica after a failover"),
        .unavailable_lookups = &registry.GetCounter(
            "medes_distregistry_unavailable_lookups_total",
            "Page lookups degraded to empty because a shard had no serving replica"),
        .dropped_writes =
            &registry.GetCounter("medes_distregistry_dropped_writes_total",
                                 "Per-shard insert writes lost to partitions or drops"),
        .replica_syncs = &registry.GetCounter("medes_distregistry_replica_syncs_total",
                                              "Completed replica recovery state transfers"),
    };
  }();
  return instruments;
}

}  // namespace

DistributedRegistry::DistributedRegistry(DistributedRegistryOptions options,
                                         std::shared_ptr<Transport> transport)
    : options_(options), transport_(std::move(transport)) {
  if (options_.num_shards <= 0 || options_.replication_factor <= 0) {
    throw std::invalid_argument("DistributedRegistry: shards and replicas must be positive");
  }
  if (transport_ == nullptr) {
    // Standalone use: a private transport with default links keeps every
    // charge flowing through the shared wire model.
    transport_ = std::make_shared<Transport>();
  }
  WriterLock topology(topology_mu_);
  shards_.resize(static_cast<size_t>(options_.num_shards));
  for (Shard& shard : shards_) {
    for (int r = 0; r < options_.replication_factor; ++r) {
      shard.chain.emplace_back(Replica{FingerprintRegistry(options_.per_shard), true});
    }
  }
  MutexLock stats(stats_mu_);
  dist_stats_.lookups_per_shard.assign(static_cast<size_t>(options_.num_shards), 0);
  dist_stats_.writes_per_shard.assign(static_cast<size_t>(options_.num_shards), 0);
}

int DistributedRegistry::ShardOf(uint64_t key) const {
  return static_cast<int>(MixBits(key) % static_cast<uint64_t>(options_.num_shards));
}

int DistributedRegistry::SandboxShard(SandboxId sandbox) const {
  return static_cast<int>(MixBits(sandbox.value()) % static_cast<uint64_t>(options_.num_shards));
}

bool DistributedRegistry::ReplicaServing(const Shard& shard, int shard_index, int r) const {
  return shard.chain[static_cast<size_t>(r)].alive &&
         transport_->NodeUp(ReplicaNode(shard_index, r));
}

int DistributedRegistry::EffectiveTail(const Shard& shard, int shard_index) const {
  for (int r = static_cast<int>(shard.chain.size()) - 1; r >= 0; --r) {
    if (ReplicaServing(shard, shard_index, r)) {
      return r;
    }
  }
  return -1;
}

bool DistributedRegistry::ShardAvailable(int shard) const {
  ReaderLock topology(topology_mu_);
  return EffectiveTail(shards_.at(static_cast<size_t>(shard)), shard) >= 0;
}

namespace {

// Folds a shard index into the caller's trace ordinal so each shard's wire
// message derives a distinct span id (injective while num_shards < 1024).
obs::MessageTrace ShardTrace(const obs::MessageTrace& trace, size_t shard) {
  return obs::MessageTrace{trace.ctx, trace.at, trace.ordinal * 1024 + shard};
}

}  // namespace

void DistributedRegistry::InsertBaseSandbox(NodeId node, SandboxId sandbox,
                                            const std::vector<PageFingerprint>& fingerprints,
                                            const obs::MessageTrace& trace) {
  // Partition each page's sampled chunks by owning shard.
  std::vector<std::vector<PageFingerprint>> per_shard(
      static_cast<size_t>(options_.num_shards),
      std::vector<PageFingerprint>(fingerprints.size()));
  std::vector<size_t> keys_per_shard(static_cast<size_t>(options_.num_shards), 0);
  for (size_t page = 0; page < fingerprints.size(); ++page) {
    for (const SampledChunk& chunk : fingerprints[page].chunks) {
      const auto s = static_cast<size_t>(ShardOf(chunk.key));
      per_shard[s][page].chunks.push_back(chunk);
      ++keys_per_shard[s];
    }
  }
  ReaderLock topology(topology_mu_);
  for (int s = 0; s < options_.num_shards; ++s) {
    Shard& shard = shards_[static_cast<size_t>(s)];
    // Writes enter the chain at the first serving replica and propagate
    // toward the tail. A shard with no serving replica drops the write.
    int entry = -1;
    for (int r = 0; r < static_cast<int>(shard.chain.size()); ++r) {
      if (ReplicaServing(shard, s, r)) {
        entry = r;
        break;
      }
    }
    if (entry < 0) {
      if (obs::MetricsEnabled()) {
        Instruments().dropped_writes->Add(1);
      }
      MutexLock stats(stats_mu_);
      ++dist_stats_.dropped_writes;
      continue;
    }
    const auto sent =
        transport_->Send(MessageType::kRegistryInsert, node, ReplicaNode(s, entry),
                         static_cast<uint64_t>(keys_per_shard[static_cast<size_t>(s)]) *
                             kRegistryWireBytesPerKey,
                         fingerprints.size(), ShardTrace(trace, static_cast<size_t>(s)));
    if (!sent.delivered) {
      if (obs::MetricsEnabled()) {
        Instruments().dropped_writes->Add(1);
      }
      MutexLock stats(stats_mu_);
      ++dist_stats_.dropped_writes;
      continue;
    }
    {
      MutexLock stats(stats_mu_);
      ++dist_stats_.writes_per_shard[static_cast<size_t>(s)];
    }
    // Chain replication: the write flows through every serving replica.
    // Partitioned replicas miss it and must re-sync on recovery.
    for (int r = 0; r < static_cast<int>(shard.chain.size()); ++r) {
      if (ReplicaServing(shard, s, r)) {
        shard.chain[static_cast<size_t>(r)].registry.InsertBaseSandbox(
            node, sandbox, per_shard[static_cast<size_t>(s)]);
      }
    }
  }
  // Sandbox-level membership/refcount state lives on the sandbox's shard
  // (the insert above already created it there; this covers the case where
  // none of the sandbox's chunk keys mapped to that shard).
  const int home_index = SandboxShard(sandbox);
  Shard& home = shards_[static_cast<size_t>(home_index)];
  for (int r = 0; r < static_cast<int>(home.chain.size()); ++r) {
    if (ReplicaServing(home, home_index, r)) {
      home.chain[static_cast<size_t>(r)].registry.InsertBaseSandbox(node, sandbox, {});
    }
  }
  // One durable record per logical insert, independent of shard/replica
  // fan-out (replica registries are never store-bound).
  if (store_ != nullptr) {
    store_->AppendInsertSandbox(node, sandbox, fingerprints);
  }
}

void DistributedRegistry::RemoveBaseSandbox(SandboxId sandbox) {
  ReaderLock topology(topology_mu_);
  for (int s = 0; s < static_cast<int>(shards_.size()); ++s) {
    Shard& shard = shards_[static_cast<size_t>(s)];
    for (int r = 0; r < static_cast<int>(shard.chain.size()); ++r) {
      if (ReplicaServing(shard, s, r)) {
        shard.chain[static_cast<size_t>(r)].registry.RemoveBaseSandbox(sandbox);
      }
    }
  }
  if (store_ != nullptr) {
    store_->AppendRemoveSandbox(sandbox);
  }
}

void DistributedRegistry::BindStateStore(std::shared_ptr<store::StateStore> store) {
  store_ = std::move(store);
}

bool DistributedRegistry::IsBaseSandbox(SandboxId sandbox) const {
  ReaderLock topology(topology_mu_);
  const int home_index = SandboxShard(sandbox);
  const Shard& home = shards_[static_cast<size_t>(home_index)];
  int tail = EffectiveTail(home, home_index);
  if (tail < 0) {
    return false;
  }
  return home.chain[static_cast<size_t>(tail)].registry.IsBaseSandbox(sandbox);
}

std::vector<BasePageCandidate> DistributedRegistry::FindBasePages(
    const PageFingerprint& fingerprint, NodeId local_node, SandboxId exclude_sandbox,
    size_t max_results) {
  auto results = FindBasePagesBatch(std::span<const PageFingerprint>(&fingerprint, 1),
                                    local_node, exclude_sandbox, max_results, nullptr);
  return std::move(results.front());
}

std::vector<std::vector<BasePageCandidate>> DistributedRegistry::FindBasePagesBatch(
    std::span<const PageFingerprint> fingerprints, NodeId local_node,
    SandboxId exclude_sandbox, size_t max_results, SimDuration* lookup_cost,
    const obs::MessageTrace& trace) {
  // Partition the batch's sampled chunks by owning shard, keeping the chunks
  // grouped per fingerprint so per-shard tallies land in the right slot.
  const auto num_shards = static_cast<size_t>(options_.num_shards);
  struct FingerprintSlice {
    uint32_t fp_index;
    PageFingerprint chunks;  // only this shard's chunks of that fingerprint
  };
  std::vector<std::vector<FingerprintSlice>> per_shard(num_shards);
  std::vector<size_t> keys_per_shard(num_shards, 0);
  for (size_t i = 0; i < fingerprints.size(); ++i) {
    for (const SampledChunk& chunk : fingerprints[i].chunks) {
      const auto s = static_cast<size_t>(ShardOf(chunk.key));
      if (per_shard[s].empty() || per_shard[s].back().fp_index != i) {
        per_shard[s].push_back({static_cast<uint32_t>(i), {}});
      }
      per_shard[s].back().chunks.chunks.push_back(chunk);
      ++keys_per_shard[s];
    }
  }

  std::vector<std::unordered_map<PageLocation, int, PageLocationHash>> tallies(
      fingerprints.size());
  // The modelled cost of the batch: shards are queried in parallel, so the
  // critical path is the slowest shard's message plus its per-key work.
  SimDuration slowest_shard;
  ReaderLock topology(topology_mu_);
  for (size_t s = 0; s < num_shards; ++s) {
    if (per_shard[s].empty()) {
      continue;
    }
    const auto page_lookups = static_cast<uint64_t>(per_shard[s].size());
    Shard& shard = shards_[s];
    int tail = EffectiveTail(shard, static_cast<int>(s));
    if (tail < 0) {
      if (obs::MetricsEnabled()) {
        Instruments().unavailable_lookups->Add(page_lookups);
      }
      MutexLock stats(stats_mu_);
      dist_stats_.unavailable_lookups += page_lookups;
      continue;
    }
    const obs::MessageTrace shard_trace = ShardTrace(trace, s);
    const auto sent = transport_->Send(MessageType::kRegistryLookup, local_node,
                                       ReplicaNode(static_cast<int>(s), tail),
                                       static_cast<uint64_t>(keys_per_shard[s]) *
                                           kRegistryWireBytesPerKey,
                                       page_lookups, shard_trace);
    slowest_shard = std::max(
        slowest_shard,
        sent.cost + static_cast<int64_t>(keys_per_shard[s]) * options_.per_key_lookup);
    if (sent.delivered && obs::TraceEnabled() && shard_trace.ctx.sampled()) {
      // Shard-side work span, parented to the wire-message span (re-derived
      // on the "receiving" shard — same pure function as the transport).
      const obs::TraceContext msg_ctx =
          MessageSpanContext(MessageType::kRegistryLookup, shard_trace);
      obs::ScopedSpan work("registry/lookup_work", "registry", trace.at + sent.cost,
                           static_cast<int32_t>(ReplicaNode(static_cast<int>(s), tail).value()),
                           msg_ctx.Child("registry/lookup_work"));
      work.SetSimDuration(static_cast<int64_t>(keys_per_shard[s]) * options_.per_key_lookup);
      work.AddArg("pages", static_cast<int64_t>(page_lookups));
      work.AddArg("keys", static_cast<int64_t>(keys_per_shard[s]));
    }
    if (!sent.delivered) {
      // Lost on the wire (link fault): same client-visible outcome as an
      // all-down shard — the batch degrades to fewer candidates.
      if (obs::MetricsEnabled()) {
        Instruments().unavailable_lookups->Add(page_lookups);
      }
      MutexLock stats(stats_mu_);
      dist_stats_.unavailable_lookups += page_lookups;
      continue;
    }
    const bool failover = tail != static_cast<int>(shard.chain.size()) - 1;
    if (failover && obs::MetricsEnabled()) {
      Instruments().failovers->Add(page_lookups);
    }
    {
      MutexLock stats(stats_mu_);
      if (failover) {
        dist_stats_.failovers += page_lookups;
      }
      dist_stats_.lookups_per_shard[s] += page_lookups;
    }
    FingerprintRegistry& serving = shard.chain[static_cast<size_t>(tail)].registry;
    for (const FingerprintSlice& slice : per_shard[s]) {
      serving.AccumulateTally(slice.chunks, exclude_sandbox, tallies[slice.fp_index]);
    }
  }
  if (lookup_cost != nullptr) {
    *lookup_cost += slowest_shard;
  }

  std::vector<std::vector<BasePageCandidate>> results;
  results.reserve(fingerprints.size());
  for (auto& tally : tallies) {
    results.push_back(RankCandidates(tally, local_node, max_results));
  }
  return results;
}

void DistributedRegistry::Ref(SandboxId base_sandbox) {
  ReaderLock topology(topology_mu_);
  const int home_index = SandboxShard(base_sandbox);
  Shard& home = shards_[static_cast<size_t>(home_index)];
  for (int r = 0; r < static_cast<int>(home.chain.size()); ++r) {
    if (ReplicaServing(home, home_index, r)) {
      home.chain[static_cast<size_t>(r)].registry.Ref(base_sandbox);
    }
  }
}

void DistributedRegistry::Unref(SandboxId base_sandbox) {
  ReaderLock topology(topology_mu_);
  const int home_index = SandboxShard(base_sandbox);
  Shard& home = shards_[static_cast<size_t>(home_index)];
  for (int r = 0; r < static_cast<int>(home.chain.size()); ++r) {
    if (ReplicaServing(home, home_index, r)) {
      home.chain[static_cast<size_t>(r)].registry.Unref(base_sandbox);
    }
  }
}

int DistributedRegistry::RefCount(SandboxId base_sandbox) const {
  ReaderLock topology(topology_mu_);
  const int home_index = SandboxShard(base_sandbox);
  const Shard& home = shards_[static_cast<size_t>(home_index)];
  int tail = EffectiveTail(home, home_index);
  if (tail < 0) {
    return 0;
  }
  return home.chain[static_cast<size_t>(tail)].registry.RefCount(base_sandbox);
}

RegistryStats DistributedRegistry::stats() const {
  RegistryStats total;
  ReaderLock topology(topology_mu_);
  for (int s = 0; s < static_cast<int>(shards_.size()); ++s) {
    const Shard& shard = shards_[static_cast<size_t>(s)];
    int tail = EffectiveTail(shard, s);
    if (tail < 0) {
      continue;
    }
    RegistryStats st = shard.chain[static_cast<size_t>(tail)].registry.stats();
    total.num_keys += st.num_keys;
    total.num_entries += st.num_entries;
    total.num_base_sandboxes = std::max(total.num_base_sandboxes, st.num_base_sandboxes);
    total.lookups += st.lookups;
    total.key_hits += st.key_hits;
  }
  return total;
}

SimDuration DistributedRegistry::PageLookupLatency(size_t keys, NodeId from) const {
  if (keys == 0) {
    return SimDuration{};
  }
  // Shards are queried in parallel; with K keys over S shards the critical
  // path is the most loaded shard: one message carrying ceil(K/S) keys plus
  // that many per-key lookups.
  const auto shards = static_cast<size_t>(options_.num_shards);
  const size_t per_shard = (keys + shards - 1) / shards;
  const SimDuration wire =
      transport_->MessageCost(from, ReplicaNode(0, options_.replication_factor - 1),
                              static_cast<uint64_t>(per_shard) * kRegistryWireBytesPerKey);
  return wire + static_cast<int64_t>(per_shard) * options_.per_key_lookup;
}

DistributedRegistryStats DistributedRegistry::distributed_stats() const {
  MutexLock stats(stats_mu_);
  return dist_stats_;
}

void DistributedRegistry::FailReplica(int shard, int replica) {
  WriterLock topology(topology_mu_);
  shards_.at(static_cast<size_t>(shard)).chain.at(static_cast<size_t>(replica)).alive = false;
}

void DistributedRegistry::RecoverReplica(int shard, int replica) {
  WriterLock topology(topology_mu_);
  Shard& s = shards_.at(static_cast<size_t>(shard));
  Replica& r = s.chain.at(static_cast<size_t>(replica));
  // Sync source: the last serving replica other than the one recovering.
  int peer = -1;
  for (int i = static_cast<int>(s.chain.size()) - 1; i >= 0; --i) {
    if (i != replica && ReplicaServing(s, shard, i)) {
      peer = i;
      break;
    }
  }
  if (peer < 0) {
    return;  // whole shard lost: nothing to re-sync from
  }
  const FingerprintRegistry& source = s.chain[static_cast<size_t>(peer)].registry;
  // The state transfer is one kReplicaSync message sized by the table
  // (entry count ~ transfer size). An undeliverable transfer (recovering
  // replica still partitioned) leaves the replica untouched.
  const auto sent = transport_->Send(MessageType::kReplicaSync, ReplicaNode(shard, peer),
                                     ReplicaNode(shard, replica),
                                     static_cast<uint64_t>(source.stats().num_entries) *
                                         kRegistryWireBytesPerKey,
                                     1);
  if (!sent.delivered) {
    return;
  }
  r.registry = source;  // state transfer
  r.alive = true;
  if (obs::MetricsEnabled()) {
    Instruments().replica_syncs->Add(1);
  }
}

}  // namespace medes
