// Sharded, chain-replicated fingerprint registry (paper Section 4.3).
//
// "Accesses to the fingerprint registry are independent lookups for each
//  page ... these components can be distributed using conventional
//  techniques for sharding or key-based partitioning along with chain
//  replication (for fault tolerance)."
//
// Chunk keys are hash-partitioned across `num_shards` shards; each shard is
// a chain of `replication_factor` replicas of the centralized registry.
// Writes enter at the chain head and propagate down; reads are served by the
// chain *tail* (the point at which writes are fully replicated — the classic
// chain-replication read rule, van Renesse & Schneider, OSDI'04). When the
// tail fails, the preceding live replica becomes the effective tail; a shard
// only becomes unavailable when every replica is down (lookups then miss and
// writes to that shard are dropped — callers degrade gracefully to fewer
// dedup candidates). Recovering a replica re-syncs it from a live peer.
//
// A page fingerprint's K sampled chunks can map to different shards, so a
// page lookup fans out to every shard owning one of its keys and merges the
// per-shard tallies — mirroring the paper's observation that per-page
// lookups parallelise naturally.
//
// Wire model: every replica occupies a Transport node
// (`first_registry_node + shard * replication_factor + replica`), and every
// lookup/insert is a typed transport message to the serving replica — so
// shard latency, batching, and fault injection (node partitions via
// FaultPolicy) all compose with the rest of the cluster's network model. A
// replica is *serving* only when its `alive` flag is set and its transport
// node is not partitioned; a partitioned replica may miss writes and must be
// re-synced (RecoverReplica) after it heals.
#ifndef MEDES_REGISTRY_DISTRIBUTED_REGISTRY_H_
#define MEDES_REGISTRY_DISTRIBUTED_REGISTRY_H_

#include <memory>
#include <span>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/time.h"
#include "net/transport.h"
#include "registry/fingerprint_registry.h"
#include "registry/registry_backend.h"

namespace medes {

struct DistributedRegistryOptions {
  int num_shards = 4;
  int replication_factor = 3;
  // Per-key lookup work at the serving shard (controller CPU, not wire).
  SimDuration per_key_lookup{15};  // us
  // Transport node id of shard 0's chain head; replica (s, r) occupies node
  // first_registry_node + s * replication_factor + r. Defaults far above any
  // worker node id; the platform assigns a contiguous range.
  NodeId first_registry_node{1000};
  RegistryOptions per_shard;
};

struct DistributedRegistryStats {
  std::vector<uint64_t> lookups_per_shard;
  std::vector<uint64_t> writes_per_shard;
  uint64_t unavailable_lookups = 0;  // key lookups that hit an all-down shard
  uint64_t dropped_writes = 0;       // inserts that hit an all-down shard
  uint64_t failovers = 0;            // tail reads served by a non-tail replica
};

class DistributedRegistry : public RegistryBackend {
 public:
  // `transport` is the shared cluster transport; when omitted the registry
  // builds a private one with default links, so the wire model (and its
  // stats) exist even standalone.
  explicit DistributedRegistry(DistributedRegistryOptions options = DistributedRegistryOptions{},
                               std::shared_ptr<Transport> transport = nullptr);

  void InsertBaseSandbox(NodeId node, SandboxId sandbox,
                         const std::vector<PageFingerprint>& fingerprints,
                         const obs::MessageTrace& trace = {}) override;
  void RemoveBaseSandbox(SandboxId sandbox) override;
  [[nodiscard]] bool IsBaseSandbox(SandboxId sandbox) const override;

  [[nodiscard]] std::vector<BasePageCandidate> FindBasePages(const PageFingerprint& fingerprint,
                                                             NodeId local_node,
                                                             SandboxId exclude_sandbox,
                                                             size_t max_results) override;

  // Batched lookup: one kRegistryLookup message per touched shard carrying
  // the batch's keys for that shard. The modelled cost is the slowest shard
  // (message + per-key work) — shards are queried in parallel (Section 7.7:
  // lookups "can be parallelized given they are independent").
  using RegistryBackend::FindBasePagesBatch;
  [[nodiscard]] std::vector<std::vector<BasePageCandidate>> FindBasePagesBatch(
      std::span<const PageFingerprint> fingerprints, NodeId local_node,
      SandboxId exclude_sandbox, size_t max_results, SimDuration* lookup_cost,
      const obs::MessageTrace& trace = {}) override;

  void Ref(SandboxId base_sandbox) override;
  void Unref(SandboxId base_sandbox) override;
  [[nodiscard]] int RefCount(SandboxId base_sandbox) const override;

  // Binds the durability seam at the *distributed* level: one append per
  // logical insert/removal, regardless of sharding or replication fan-out
  // (replica FingerprintRegistry instances stay unbound so a 3-way
  // replicated write is still one durable record).
  void BindStateStore(std::shared_ptr<store::StateStore> store) override;

  // Aggregated table stats across shard tails.
  [[nodiscard]] RegistryStats stats() const override;
  // Consistent snapshot (counters advance under their own lock).
  DistributedRegistryStats distributed_stats() const EXCLUDES(stats_mu_);

  // Modelled latency of one page lookup of `keys` sampled chunks from node
  // `from`, assuming the per-shard lookups proceed in parallel: the critical
  // path is the most loaded shard — ceil(keys / num_shards) key lookups plus
  // one transport round trip carrying those keys.
  [[nodiscard]] SimDuration PageLookupLatency(size_t keys, NodeId from = NodeId{0}) const;

  // The shared (or private) transport this registry charges.
  const std::shared_ptr<Transport>& transport() const { return transport_; }

  // Transport node id of replica (shard, replica).
  NodeId ReplicaNode(int shard, int replica) const {
    return NodeId{options_.first_registry_node.value() + shard * options_.replication_factor +
                  replica};
  }

  // ---- Fault injection --------------------------------------------------
  void FailReplica(int shard, int replica) EXCLUDES(topology_mu_);
  // Recovers a replica by re-syncing its state from the shard's effective
  // tail (no-op if no other replica is serving — there is nothing to sync
  // from). Also heals *stale* replicas: calling it on a live replica that
  // missed writes while partitioned re-copies the authoritative state and
  // charges a kReplicaSync transfer.
  void RecoverReplica(int shard, int replica) EXCLUDES(topology_mu_);
  bool ShardAvailable(int shard) const EXCLUDES(topology_mu_);
  int NumShards() const { return options_.num_shards; }
  int ReplicationFactor() const { return options_.replication_factor; }

  // Shard that owns a chunk key (exposed for tests).
  int ShardOf(uint64_t key) const;

 private:
  struct Replica {
    FingerprintRegistry registry;
    bool alive = true;
  };

  struct Shard {
    std::vector<Replica> chain;  // head first, tail last
  };

  // True when replica (shard, r) is serving: alive and not partitioned off
  // the transport.
  bool ReplicaServing(const Shard& shard, int shard_index, int r) const
      REQUIRES_SHARED(topology_mu_);
  // Index of the effective tail (last serving replica) or -1 if none.
  int EffectiveTail(const Shard& shard, int shard_index) const REQUIRES_SHARED(topology_mu_);

  DistributedRegistryOptions options_;
  std::shared_ptr<Transport> transport_;
  // Optional durability seam (see BindStateStore).
  std::shared_ptr<store::StateStore> store_;

  // Chain topology: the shard vector's structure and every replica's `alive`
  // flag. Reads (routing a request, walking a chain) hold the shared lock;
  // fault injection and recovery hold it exclusively. Replica *contents*
  // (FingerprintRegistry state) are protected by each registry's own
  // higher-ranked locks, so holding the topology lock across a replica call
  // respects the lock hierarchy (transport sends likewise acquire only
  // higher-ranked locks).
  mutable SharedMutex topology_mu_{"registry topology", LockRank::kRegistryTopology};
  std::vector<Shard> shards_ GUARDED_BY(topology_mu_);

  // Sandbox-level state (refcounts, membership) is sharded by sandbox id.
  int SandboxShard(SandboxId sandbox) const;

  mutable Mutex stats_mu_{"distributed registry stats", LockRank::kMetrics};
  mutable DistributedRegistryStats dist_stats_ GUARDED_BY(stats_mu_);
};

}  // namespace medes

#endif  // MEDES_REGISTRY_DISTRIBUTED_REGISTRY_H_
