// Abstract interface over the fingerprint registry.
//
// Section 4.3 of the paper notes the Medes controller can be distributed
// "along the same lines as prior centralized serverless controllers":
// registry accesses are independent per-page lookups, so the table shards by
// chunk key, with chain replication for fault tolerance. Two backends
// implement this interface: the centralized FingerprintRegistry and the
// sharded, replicated DistributedRegistry.
#ifndef MEDES_REGISTRY_REGISTRY_BACKEND_H_
#define MEDES_REGISTRY_REGISTRY_BACKEND_H_

#include <algorithm>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "chunking/fingerprint.h"
#include "common/time.h"
#include "common/types.h"
#include "obs/trace_context.h"

namespace medes {

namespace store {
class StateStore;
}  // namespace store

// Modelled wire size of one sampled-chunk key in a registry message
// (truncated key + page-location answer, round trip).
inline constexpr Bytes kRegistryWireBytesPerKey{24};

struct PageLocation {
  NodeId node = kInvalidNode;
  SandboxId sandbox;
  PageIndex page_index;

  bool operator==(const PageLocation&) const = default;
};

struct PageLocationHash {
  size_t operator()(const PageLocation& loc) const {
    uint64_t h = static_cast<uint64_t>(loc.node.value()) * 0x9e3779b97f4a7c15ull;
    h ^= loc.sandbox.value() + 0x517cc1b727220a95ull + (h << 6);
    h ^= static_cast<uint64_t>(loc.page_index.value()) * 0xff51afd7ed558ccdull + (h >> 3);
    return static_cast<size_t>(h);
  }
};

struct BasePageCandidate {
  PageLocation location;
  int overlap = 0;  // sampled chunks in common with the queried page
};

struct RegistryStats {
  size_t num_keys = 0;
  size_t num_entries = 0;
  size_t num_base_sandboxes = 0;
  uint64_t lookups = 0;
  uint64_t key_hits = 0;
  // Approximate bytes of controller memory held by the table.
  size_t ApproxMemoryBytes() const {
    return num_keys * 24 + num_entries * sizeof(PageLocation) + num_keys * 16;
  }
};

// Ranks a (location -> overlap) tally: max overlap first, local-node pages
// preferred on ties, then lowest (sandbox, page) for determinism. Shared by
// the centralized registry and the distributed shard-merge path.
[[nodiscard]] inline std::vector<BasePageCandidate> RankCandidates(
    const std::unordered_map<PageLocation, int, PageLocationHash>& tally, NodeId local_node,
    size_t max_results) {
  std::vector<BasePageCandidate> ranked;
  ranked.reserve(tally.size());
  for (const auto& [loc, overlap] : tally) {
    ranked.push_back({loc, overlap});
  }
  std::sort(ranked.begin(), ranked.end(),
            [&](const BasePageCandidate& a, const BasePageCandidate& b) {
              if (a.overlap != b.overlap) {
                return a.overlap > b.overlap;
              }
              const bool a_local = a.location.node == local_node;
              const bool b_local = b.location.node == local_node;
              if (a_local != b_local) {
                return a_local;
              }
              if (a.location.sandbox != b.location.sandbox) {
                return a.location.sandbox < b.location.sandbox;
              }
              return a.location.page_index < b.location.page_index;
            });
  if (ranked.size() > max_results) {
    ranked.resize(max_results);
  }
  return ranked;
}

class RegistryBackend {
 public:
  virtual ~RegistryBackend() = default;

  // Registers all pages of a base sandbox. `fingerprints[i]` describes page i.
  // `trace`, when sampled, parents the insert's wire-message spans (backends
  // with a transport fold their shard index into the trace ordinal).
  virtual void InsertBaseSandbox(NodeId node, SandboxId sandbox,
                                 const std::vector<PageFingerprint>& fingerprints,
                                 const obs::MessageTrace& trace = {}) = 0;

  // Removes every entry belonging to `sandbox`.
  virtual void RemoveBaseSandbox(SandboxId sandbox) = 0;

  [[nodiscard]] virtual bool IsBaseSandbox(SandboxId sandbox) const = 0;

  // Ranked base-page candidates for the queried fingerprint (max
  // sampled-chunk overlap first, local-node tie-break), at most
  // `max_results`. `exclude_sandbox` skips the querying sandbox's own pages.
  [[nodiscard]] virtual std::vector<BasePageCandidate> FindBasePages(const PageFingerprint& fingerprint,
                                                       NodeId local_node,
                                                       SandboxId exclude_sandbox,
                                                       size_t max_results) = 0;

  // Batched lookup for the pipelined dedup path: one result vector per
  // fingerprint, positionally aligned with the input and identical to
  // calling FindBasePages per element. Backends override this to amortise
  // locking/routing across the batch. When `lookup_cost` is non-null the
  // backend adds the modelled latency of serving the whole batch — its
  // transport messages plus per-key registry work — so callers charge the
  // registry's real topology-dependent cost rather than a flat constant.
  // The added cost is a pure function of the batch's contents (never of
  // thread interleaving), preserving the pipeline determinism contract.
  // `trace`, when sampled, parents the lookup's wire-message spans and the
  // registry-side work span.
  [[nodiscard]] virtual std::vector<std::vector<BasePageCandidate>> FindBasePagesBatch(
      std::span<const PageFingerprint> fingerprints, NodeId local_node,
      SandboxId exclude_sandbox, size_t max_results, SimDuration* lookup_cost,
      const obs::MessageTrace& trace = {}) {
    (void)lookup_cost;  // backends without a wire model charge nothing
    (void)trace;
    std::vector<std::vector<BasePageCandidate>> results;
    results.reserve(fingerprints.size());
    for (const PageFingerprint& fp : fingerprints) {
      results.push_back(FindBasePages(fp, local_node, exclude_sandbox, max_results));
    }
    return results;
  }

  // Convenience overload for callers that do not consume the cost.
  [[nodiscard]] std::vector<std::vector<BasePageCandidate>> FindBasePagesBatch(
      std::span<const PageFingerprint> fingerprints, NodeId local_node,
      SandboxId exclude_sandbox, size_t max_results) {
    return FindBasePagesBatch(fingerprints, local_node, exclude_sandbox, max_results, nullptr);
  }

  // Convenience: the single best candidate.
  [[nodiscard]] std::optional<BasePageCandidate> FindBasePage(const PageFingerprint& fingerprint,
                                                              NodeId local_node,
                                                              SandboxId exclude_sandbox = {}) {
    auto candidates = FindBasePages(fingerprint, local_node, exclude_sandbox, 1);
    if (candidates.empty()) {
      return std::nullopt;
    }
    return candidates.front();
  }

  // Base-sandbox refcounts (a base's memory is pinned while > 0).
  virtual void Ref(SandboxId base_sandbox) = 0;
  virtual void Unref(SandboxId base_sandbox) = 0;
  [[nodiscard]] virtual int RefCount(SandboxId base_sandbox) const = 0;

  // Binds the durability/tiering seam (src/store). Bound backends mirror
  // every insert/removal into the store as an append record; unbound
  // backends (the default) behave exactly as before the seam existed.
  // Configuration-time only, like BindTransport.
  virtual void BindStateStore(std::shared_ptr<store::StateStore> store) { (void)store; }

  [[nodiscard]] virtual RegistryStats stats() const = 0;
};

}  // namespace medes

#endif  // MEDES_REGISTRY_REGISTRY_BACKEND_H_
