// Crash-recovery driver: replays a StateStore's recovered checkpoint+log
// state back into a live registry backend.
//
// Recovery is two-phase by design. The store layer (store/log_store.cc) only
// proves *integrity* — every surviving record is CRC-clean and in-sequence.
// This driver adds *validity*: each recovered base sandbox is passed to a
// caller-supplied validator (typically cluster::MakeRecoveryValidator, which
// checks the sandbox still exists on its node and its logged base pages
// byte-match the live snapshot) before being re-inserted. A registry never
// serves entries that merely used to be true.
//
// Re-inserts run with the store in replaying mode, so recovered state is not
// re-logged (it is already durable) while residency is still admitted — a
// recovered store starts with the same hot set a fresh store would build.
#ifndef MEDES_REGISTRY_REGISTRY_RECOVERY_H_
#define MEDES_REGISTRY_REGISTRY_RECOVERY_H_

#include <cstddef>
#include <functional>

#include "registry/registry_backend.h"
#include "store/state_store.h"

namespace medes {

struct RecoveryReport {
  // Sandboxes re-inserted into the registry (validator accepted).
  size_t recovered_sandboxes = 0;
  // Sandboxes dropped because the validator rejected them (stale entries
  // whose live sandbox is gone or whose pages no longer match).
  size_t rejected_sandboxes = 0;
  size_t recovered_pages = 0;  // base pages carried by accepted sandboxes
  // The raw store-level recovery outcome (torn/stale/corrupt accounting).
  store::RecoveredState store_state;
};

// Validator: true = the recovered sandbox is still backed by a live sandbox
// and safe to serve. Called once per recovered sandbox, ascending id.
using RecoveryValidator = std::function<bool(const store::RecoveredSandbox&)>;

// Replays `store`'s recovered state into `registry`, re-validating each
// sandbox through `validate` first. A null validator accepts everything
// (integrity-only recovery, for tests).
RecoveryReport RecoverInto(store::StateStore& store, RegistryBackend& registry,
                           const RecoveryValidator& validate = nullptr);

}  // namespace medes

#endif  // MEDES_REGISTRY_REGISTRY_RECOVERY_H_
