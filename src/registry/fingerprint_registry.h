// The centralized global fingerprint registry (controller component).
//
// Maps truncated chunk-hash keys (RSC identities) to the cluster locations of
// pages that contain them. Only *base sandboxes* are inserted (paper
// Section 4.1.3) to keep the registry's footprint proportional to the number
// of base sandboxes rather than all sandboxes. Lookups take a page
// fingerprint and return ranked base-page candidates: pages sharing the most
// sampled chunks first, ties broken in favour of pages local to the
// requesting node (saves an RDMA read at restore).
//
// Concurrency: the table is split into `num_shards` shards keyed by chunk
// key, each guarded by its own reader/writer lock, so the parallel dedup
// pipeline's per-page lookups proceed without contending on one global lock
// (paper Section 7.7 notes lookups "can be parallelized given they are
// independent"). Sandbox-level state (refcounts, membership) sits behind a
// separate lock. A per-sandbox reverse index records which keys a base
// sandbox owns entries under, making RemoveBaseSandbox O(keys owned) instead
// of a full-table scan.
#ifndef MEDES_REGISTRY_FINGERPRINT_REGISTRY_H_
#define MEDES_REGISTRY_FINGERPRINT_REGISTRY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "net/transport.h"
#include "registry/registry_backend.h"

namespace medes {

struct RegistryOptions {
  // Cap on locations tracked per chunk key — popular chunks (e.g. common
  // interpreter structures) would otherwise accumulate unbounded lists.
  size_t max_locations_per_key = 8;
  // Lock stripes. Rounded up to a power of two; 1 = a single-lock table
  // (useful inside DistributedRegistry replicas, which shard externally).
  size_t num_shards = 16;
  // Controller-side lookup cost per page (paper Section 7.7 reports ~80 us
  // per page in their single-threaded implementation). Charged by the
  // cost-aware FindBasePagesBatch on top of any transport message cost.
  SimDuration lookup_per_page{80};
};

class FingerprintRegistry : public RegistryBackend {
 public:
  explicit FingerprintRegistry(RegistryOptions options = {});

  // Deep copies (fresh locks). Used by chain-replication re-sync; the source
  // may be serving concurrent readers, the destination must be quiescent.
  FingerprintRegistry(const FingerprintRegistry& other);
  FingerprintRegistry& operator=(const FingerprintRegistry& other);

  void InsertBaseSandbox(NodeId node, SandboxId sandbox,
                         const std::vector<PageFingerprint>& fingerprints,
                         const obs::MessageTrace& trace = {}) override;

  // Removes every entry belonging to `sandbox` via the reverse index:
  // O(keys the sandbox owns), not O(table size).
  void RemoveBaseSandbox(SandboxId sandbox) override;

  [[nodiscard]] bool IsBaseSandbox(SandboxId sandbox) const override;

  [[nodiscard]] std::vector<BasePageCandidate> FindBasePages(const PageFingerprint& fingerprint,
                                                             NodeId local_node,
                                                             SandboxId exclude_sandbox,
                                                             size_t max_results) override;

  // Batched lookup: one shard-grouped pass over all fingerprints, locking
  // each shard once per batch instead of once per key. Results are
  // positionally aligned with `fingerprints` and identical to looping
  // FindBasePages. The modelled cost is one kRegistryLookup message for the
  // batch (when a transport is bound) plus `lookup_per_page` per page.
  using RegistryBackend::FindBasePagesBatch;
  [[nodiscard]] std::vector<std::vector<BasePageCandidate>> FindBasePagesBatch(
      std::span<const PageFingerprint> fingerprints, NodeId local_node,
      SandboxId exclude_sandbox, size_t max_results, SimDuration* lookup_cost,
      const obs::MessageTrace& trace = {}) override;

  // Binds the shared cluster transport: lookups/inserts from node N are
  // charged as messages N -> `registry_node`. Configuration-time only (not
  // thread-safe against concurrent operations); unbound registries charge
  // pure controller CPU cost with no wire component.
  void BindTransport(std::shared_ptr<Transport> transport, NodeId registry_node);

  // Adds this registry's (location -> matched-chunk count) contributions for
  // `fingerprint` into `tally` — the building block distributed shards merge.
  void AccumulateTally(const PageFingerprint& fingerprint, SandboxId exclude_sandbox,
                       std::unordered_map<PageLocation, int, PageLocationHash>& tally);

  // Binds the durability/tiering seam: inserts append a fingerprint record
  // (after the transport delivery check — a lost insert is not durable
  // state), removals append an invalidation. Configuration-time only.
  void BindStateStore(std::shared_ptr<store::StateStore> store) override;

  void Ref(SandboxId base_sandbox) override;
  void Unref(SandboxId base_sandbox) override;
  [[nodiscard]] int RefCount(SandboxId base_sandbox) const override;

  [[nodiscard]] RegistryStats stats() const override;
  size_t NumBaseSandboxes() const;
  size_t NumShards() const { return shards_.size(); }

 private:
  struct Shard {
    mutable SharedMutex mu{"registry shard", LockRank::kRegistryShard};
    std::unordered_map<uint64_t, std::vector<PageLocation>> table GUARDED_BY(mu);
    // Reverse index: keys under which each base sandbox holds locations in
    // this shard (a key appears once per location inserted).
    std::unordered_map<SandboxId, std::vector<uint64_t>> keys_by_sandbox GUARDED_BY(mu);
    // Atomic: bumped by readers holding only the shared lock.
    std::atomic<uint64_t> key_hits{0};
  };

  Shard& ShardFor(uint64_t key) { return *shards_[ShardIndex(key)]; }
  size_t ShardIndex(uint64_t key) const;
  // Destination shards/refcounts must be quiescent; the source may be serving
  // concurrent readers. Never holds a source and a destination lock at once
  // (both carry the same rank).
  void CopyFrom(const FingerprintRegistry& other);

  RegistryOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;  // size is a power of two

  // Optional shared transport (see BindTransport). Not copied: a replica
  // clone is table state, not a network endpoint.
  std::shared_ptr<Transport> transport_;
  NodeId registry_node_ = kInvalidNode;

  // Optional durability seam (see BindStateStore). Not copied either: only
  // the authoritative top-level registry logs records, never replica clones.
  std::shared_ptr<store::StateStore> store_;

  // Sandbox-level state: membership + refcounts (the sandbox-level reverse
  // index). Ordered after the shard locks in the global hierarchy.
  mutable SharedMutex sandbox_mu_{"registry sandbox index", LockRank::kRegistrySandbox};
  std::unordered_map<SandboxId, int> base_refcounts_ GUARDED_BY(sandbox_mu_);

  mutable std::atomic<uint64_t> lookups_{0};
};

}  // namespace medes

#endif  // MEDES_REGISTRY_FINGERPRINT_REGISTRY_H_
