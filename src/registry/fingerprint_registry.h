// The centralized global fingerprint registry (controller component).
//
// Maps truncated chunk-hash keys (RSC identities) to the cluster locations of
// pages that contain them. Only *base sandboxes* are inserted (paper
// Section 4.1.3) to keep the registry's footprint proportional to the number
// of base sandboxes rather than all sandboxes. Lookups take a page
// fingerprint and return ranked base-page candidates: pages sharing the most
// sampled chunks first, ties broken in favour of pages local to the
// requesting node (saves an RDMA read at restore).
#ifndef MEDES_REGISTRY_FINGERPRINT_REGISTRY_H_
#define MEDES_REGISTRY_FINGERPRINT_REGISTRY_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "registry/registry_backend.h"

namespace medes {

struct RegistryOptions {
  // Cap on locations tracked per chunk key — popular chunks (e.g. common
  // interpreter structures) would otherwise accumulate unbounded lists.
  size_t max_locations_per_key = 8;
};

class FingerprintRegistry : public RegistryBackend {
 public:
  explicit FingerprintRegistry(RegistryOptions options = {});

  void InsertBaseSandbox(NodeId node, SandboxId sandbox,
                         const std::vector<PageFingerprint>& fingerprints) override;

  // Removes every entry belonging to `sandbox`. O(table size); called only
  // when a base sandbox is purged, which is rare.
  void RemoveBaseSandbox(SandboxId sandbox) override;

  bool IsBaseSandbox(SandboxId sandbox) const override {
    return base_refcounts_.contains(sandbox);
  }

  std::vector<BasePageCandidate> FindBasePages(const PageFingerprint& fingerprint,
                                               NodeId local_node, SandboxId exclude_sandbox,
                                               size_t max_results) override;

  // Adds this registry's (location -> matched-chunk count) contributions for
  // `fingerprint` into `tally` — the building block distributed shards merge.
  void AccumulateTally(const PageFingerprint& fingerprint, SandboxId exclude_sandbox,
                       std::unordered_map<PageLocation, int, PageLocationHash>& tally);

  void Ref(SandboxId base_sandbox) override;
  void Unref(SandboxId base_sandbox) override;
  int RefCount(SandboxId base_sandbox) const override;

  RegistryStats stats() const override;
  size_t NumBaseSandboxes() const { return base_refcounts_.size(); }

 private:
  RegistryOptions options_;
  std::unordered_map<uint64_t, std::vector<PageLocation>> table_;
  std::unordered_map<SandboxId, int> base_refcounts_;
  mutable uint64_t lookups_ = 0;
  mutable uint64_t key_hits_ = 0;
};

}  // namespace medes

#endif  // MEDES_REGISTRY_FINGERPRINT_REGISTRY_H_
