#include "registry/registry_recovery.h"

#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace medes {

namespace {

struct RecoveryInstruments {
  obs::Counter* recoveries;
  obs::Counter* recovered;
  obs::Counter* rejected;
  obs::Counter* recovered_pages;
  obs::Counter* torn_bytes;
  obs::Counter* corrupt_records;
};

const RecoveryInstruments& Instruments() {
  static const RecoveryInstruments instruments = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
    return RecoveryInstruments{
        .recoveries = &registry.GetCounter("medes_store_recoveries_total",
                                           "Registry recoveries driven from the state store"),
        .recovered = &registry.GetCounter("medes_store_recovered_sandboxes_total",
                                          "Base sandboxes restored and validated from the store"),
        .rejected = &registry.GetCounter(
            "medes_store_rejected_sandboxes_total",
            "Recovered base sandboxes rejected by live-sandbox re-validation"),
        .recovered_pages = &registry.GetCounter("medes_store_recovered_pages_total",
                                                "Base pages carried by restored sandboxes"),
        .torn_bytes = &registry.GetCounter("medes_store_recovery_torn_bytes_total",
                                           "Log bytes truncated as torn tails during recovery"),
        .corrupt_records = &registry.GetCounter(
            "medes_store_recovery_corrupt_records_total",
            "Log records rejected by magic/CRC/sequence checks during recovery"),
    };
  }();
  return instruments;
}

}  // namespace

RecoveryReport RecoverInto(store::StateStore& store, RegistryBackend& registry,
                           const RecoveryValidator& validate) {
  obs::ScopedSpan span("store/recover", "store", SimTime{});
  RecoveryReport report;
  report.store_state = store.Recover();

  // Recovered state is already durable: suppress re-logging while replaying
  // it into the registry (residency is still admitted).
  store.SetReplaying(true);
  for (const store::RecoveredSandbox& sb : report.store_state.sandboxes) {
    if (validate != nullptr && !validate(sb)) {
      ++report.rejected_sandboxes;
      continue;
    }
    registry.InsertBaseSandbox(sb.node, sb.sandbox, sb.fingerprints);
    ++report.recovered_sandboxes;
    report.recovered_pages += sb.pages.size();
  }
  store.SetReplaying(false);

  if (obs::MetricsEnabled()) {
    Instruments().recoveries->Add(1);
    Instruments().recovered->Add(report.recovered_sandboxes);
    Instruments().rejected->Add(report.rejected_sandboxes);
    Instruments().recovered_pages->Add(report.recovered_pages);
    Instruments().torn_bytes->Add(report.store_state.torn_bytes);
    Instruments().corrupt_records->Add(report.store_state.corrupt_records);
  }
  return report;
}

}  // namespace medes
