#include "platform/platform.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "common/logging.h"
#include "common/mutex.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "obs/trace_context.h"

namespace medes {

namespace {

struct PlatformInstruments {
  obs::Counter* warm_starts;
  obs::Counter* dedup_starts;
  obs::Counter* cold_starts;
  obs::Counter* spawns;
  obs::Counter* evictions;
  obs::Counter* overcommits;
  obs::Counter* base_designations;
  obs::Gauge* live_sandboxes;
  obs::Gauge* warm_sandboxes;
  obs::Gauge* dedup_sandboxes;
  obs::Gauge* base_snapshots;
  obs::Gauge* used_mb;
  obs::Histogram* e2e_us;
  obs::Histogram* startup_us;
};

const PlatformInstruments& Instruments() {
  static const PlatformInstruments instruments = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
    auto starts = [&](const char* value) {
      return &registry.GetCounter("medes_platform_requests_total",
                                  "Requests served, by start type", "start_type", value);
    };
    return PlatformInstruments{
        .warm_starts = starts(ToString(StartType::kWarm)),
        .dedup_starts = starts(ToString(StartType::kDedup)),
        .cold_starts = starts(ToString(StartType::kCold)),
        .spawns = &registry.GetCounter("medes_platform_spawns_total", "Cold sandbox spawns"),
        .evictions =
            &registry.GetCounter("medes_platform_evictions_total", "Sandboxes/bases evicted"),
        .overcommits = &registry.GetCounter("medes_platform_overcommit_events_total",
                                            "Requests admitted despite not fitting in memory"),
        .base_designations = &registry.GetCounter("medes_platform_base_designations_total",
                                                  "Base snapshots created"),
        .live_sandboxes =
            &registry.GetGauge("medes_platform_live_sandboxes", "Sandboxes currently alive"),
        .warm_sandboxes =
            &registry.GetGauge("medes_platform_warm_sandboxes", "Sandboxes currently warm"),
        .dedup_sandboxes = &registry.GetGauge("medes_platform_dedup_sandboxes",
                                              "Sandboxes currently in dedup state"),
        .base_snapshots =
            &registry.GetGauge("medes_platform_base_snapshots", "Live base snapshots"),
        .used_mb =
            &registry.GetGauge("medes_platform_used_mb", "Cluster memory in use (modelled MB)"),
        .e2e_us = &registry.GetHistogram("medes_platform_e2e_us",
                                         "End-to-end request latency (us)"),
        .startup_us =
            &registry.GetHistogram("medes_platform_startup_us", "Request startup latency (us)"),
    };
  }();
  return instruments;
}

}  // namespace

const char* ToString(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kFixedKeepAlive:
      return "fixed-keep-alive";
    case PolicyKind::kAdaptiveKeepAlive:
      return "adaptive-keep-alive";
    case PolicyKind::kMedes:
      return "medes";
  }
  return "?";
}

class ServerlessPlatform::Impl {
 public:
  explicit Impl(PlatformOptions options)
      : options_(std::move(options)),
        sim_(options_.sim),
        cluster_(options_.cluster),
        transport_(MakeTransport(options_)),
        store_(store::MakeStateStore(options_.store)),
        registry_(MakeRegistry(options_, transport_)),
        fabric_(options_.rdma,
                [this](const PageLocation& loc) { return cluster_.ReadBasePage(loc); },
                transport_),
        agent_(cluster_, *registry_, fabric_, WithPayloadPolicy(options_, store_)),
        controller_(cluster_, options_.medes, transport_, ControllerNode(options_)),
        adaptive_(FunctionBenchProfiles().size(), AdaptiveKeepAlive(options_.adaptive)) {
    // The store observes every registry insert/removal and every fabric
    // base-page read; binding happens here so MakeRegistry stays usable
    // standalone (distributed replicas remain unbound by design).
    registry_->BindStateStore(store_);
    fabric_.BindStateStore(store_);
    MutexLock lock(metrics_mu_);
    metrics_.per_function.resize(FunctionBenchProfiles().size());
  }

  // The controller occupies the node right after the workers; registry shard
  // replicas (distributed mode) come after the controller.
  static NodeId ControllerNode(const PlatformOptions& options) {
    return NodeId{options.cluster.num_nodes};
  }

  static std::shared_ptr<Transport> MakeTransport(const PlatformOptions& options) {
    Topology topology;
    int nodes = options.cluster.num_nodes + 1;  // workers + controller
    if (options.registry_shards > 0) {
      nodes += options.registry_shards * options.registry_replication;
    }
    topology.num_nodes = nodes;
    topology.remote = options.network.remote;
    topology.local = options.network.local;
    return std::make_shared<Transport>(topology);
  }

  static std::unique_ptr<RegistryBackend> MakeRegistry(const PlatformOptions& options,
                                                       std::shared_ptr<Transport> transport) {
    if (options.registry_shards > 0) {
      DistributedRegistryOptions dopts;
      dopts.num_shards = options.registry_shards;
      dopts.replication_factor = options.registry_replication;
      dopts.per_shard = options.registry;
      dopts.first_registry_node = NodeId{ControllerNode(options).value() + 1};
      return std::make_unique<DistributedRegistry>(dopts, std::move(transport));
    }
    auto registry = std::make_unique<FingerprintRegistry>(options.registry);
    // Centralized mode: the registry lives with the controller, so lookups
    // and inserts are charged as messages to the controller's node.
    registry->BindTransport(std::move(transport), ControllerNode(options));
    return registry;
  }

  RunMetrics Run(const std::vector<TraceEvent>& trace) {
    if (ran_) {
      throw std::logic_error("ServerlessPlatform::Run may only be called once");
    }
    ran_ = true;
    {
      // Pre-size the per-request records and the sample timeline: both grow
      // to known sizes, so the hot path never pays a reallocation copy.
      MutexLock lock(metrics_mu_);
      metrics_.requests.reserve(trace.size());
      metrics_.memory_timeline.reserve(
          trace.empty() ? 1
                        : static_cast<size_t>((trace.back().time.value() + (10 * kMinute).value()) /
                                              options_.memory_sample_interval.value()) +
                              2);
    }
    if (options_.stream_trace_arrivals) {
      // Reserve the whole trace's tie-break seqs up front: streamed feeding
      // then fires in exactly the order bulk feeding would have, so the two
      // modes are bit-identical in everything but scheduler cost.
      arrival_seq_base_ = sim_.ReserveSeqBlock(trace.size());
      ScheduleArrivalChain(trace, 0);
    } else {
      // Pre-refactor bulk feed: the whole trace enters the scheduler at once
      // and far-future arrivals camp in its long-range tier for the entire
      // run. Kept for bench/cluster_scale's before/after comparison.
      for (const TraceEvent& ev : trace) {
        sim_.Schedule(ev.time, [this, ev] { HandleRequest(ev); });
      }
    }
    // Memory sampling covers the trace plus a drain tail.
    const SimTime end = trace.empty() ? SimTime{} : trace.back().time;
    for (SimTime t; t <= end + 10 * kMinute; t += options_.memory_sample_interval) {
      sim_.Schedule(t, [this] { SampleMemory(); });
    }
    sim_.Run();
    // Component stats are pulled before taking the metrics lock: their
    // accessors acquire lower-ranked locks (registry shards, rdma cache).
    const RegistryStats registry_stats = registry_->stats();
    const RdmaStats rdma_stats = fabric_.stats();
    const TransportStats transport_stats = transport_->stats();
    const store::StoreStats store_stats = store_->stats();
    MutexLock lock(metrics_mu_);
    metrics_.registry = registry_stats;
    metrics_.rdma = rdma_stats;
    metrics_.transport = transport_stats;
    metrics_.store = store_stats;
    return std::move(metrics_);
  }

  Cluster& cluster() { return cluster_; }
  RegistryBackend& registry() { return *registry_; }
  MedesController& controller() { return controller_; }
  Transport& transport() { return *transport_; }
  Simulation& sim() { return sim_; }
  store::StateStore& state_store() { return *store_; }

 private:
  // Streams the sorted trace through the scheduler: each arrival's callback
  // schedules its successor, so pending arrivals never exceed one regardless
  // of trace length. `trace` is Run's argument and outlives every arrival
  // event (Run drains the simulation before returning).
  void ScheduleArrivalChain(const std::vector<TraceEvent>& trace, size_t index) {
    if (index >= trace.size()) {
      return;
    }
    sim_.ScheduleWithSeq(trace[index].time, arrival_seq_base_ + index, [this, &trace, index] {
      ScheduleArrivalChain(trace, index + 1);
      HandleRequest(trace[index]);
    });
  }

  static DedupAgentOptions WithPayloadPolicy(const PlatformOptions& options,
                                             std::shared_ptr<store::StateStore> store) {
    DedupAgentOptions agent = options.agent;
    agent.keep_payloads = options.verify_restores;
    agent.state_store = std::move(store);
    return agent;
  }

  const FunctionProfile& Profile(FunctionId f) const {
    return FunctionBenchProfiles().at(static_cast<size_t>(f));
  }

  void CancelTimer(Sandbox& sb) {
    if (sb.pending_timer != 0) {
      sim_.Cancel(sb.pending_timer);
      sb.pending_timer = 0;
    }
    // Coalesced idle-expiry enrollment cancels lazily: the bucket entry stays
    // queued and is skipped when its deadline no longer matches.
    sb.idle_deadline = SimTime{};
  }

  Sandbox* PickWarm(FunctionId f) {
    Sandbox* best = nullptr;
    cluster_.ForEachSandboxIn(f, SandboxState::kWarm, [&best](Sandbox& sb) {
      if (best == nullptr || sb.last_used > best->last_used) {
        best = &sb;
      }
    });
    return best;
  }

  Sandbox* PickDedup(FunctionId f) {
    Sandbox* best = nullptr;
    cluster_.ForEachSandboxIn(f, SandboxState::kDedup, [&best](Sandbox& sb) {
      if (best == nullptr || sb.dedup_since > best->dedup_since) {
        best = &sb;
      }
    });
    return best;
  }

  // Frees memory on `node` until `required_mb` fits under the limit.
  // Under the keep-alive baselines, pressure evicts idle warm sandboxes
  // (LRU). Under Medes, pressure first *deduplicates* idle warm sandboxes —
  // shrinking their footprint instead of destroying them (paper Section
  // 7.4) — and only then purges, oldest dedup sandboxes first and
  // unreferenced base snapshots last. Returns false if it cannot fit.
  // `exclude` protects the sandbox the caller is operating on;
  // `spare_warm` additionally forbids touching warm sandboxes (used when
  // making room for a base snapshot — displacing warm sandboxes for a base
  // costs more cold starts than the base saves).
  bool EnsureFits(NodeId node, double required_mb, SandboxId exclude = kNoSandbox,
                  bool spare_warm = false, const obs::TraceContext& ctx = {}) {
    const double limit = cluster_.node(node).options.memory_limit_mb;
    while (cluster_.node(node).used_mb + required_mb > limit) {
      Sandbox* warm_victim = nullptr;
      if (!spare_warm) {
        for (SandboxId id : cluster_.node(node).sandboxes) {
          Sandbox* sb = cluster_.Find(id);
          if (sb->state != SandboxState::kWarm || id == exclude) {
            continue;
          }
          if (warm_victim == nullptr || sb->last_used < warm_victim->last_used) {
            warm_victim = sb;
          }
        }
      }
      // Medes: shrink the oldest idle warm sandbox via dedup before
      // resorting to eviction (only worthwhile once base pages exist).
      if (warm_victim != nullptr && options_.policy == PolicyKind::kMedes &&
          !cluster_.base_snapshots().empty() &&
          cluster_.FindBaseSnapshot(warm_victim->id) == nullptr) {
        PressureDedup(*warm_victim, ctx);
        continue;
      }
      if (warm_victim != nullptr) {
        PurgeSandbox(*warm_victim);
        RecordEviction(node);
        continue;
      }
      Sandbox* dedup_victim = nullptr;
      for (SandboxId id : cluster_.node(node).sandboxes) {
        Sandbox* sb = cluster_.Find(id);
        if (sb->state != SandboxState::kDedup || id == exclude) {
          continue;
        }
        if (dedup_victim == nullptr || sb->dedup_since < dedup_victim->dedup_since) {
          dedup_victim = sb;
        }
      }
      if (dedup_victim != nullptr) {
        PurgeSandbox(*dedup_victim);
        RecordEviction(node);
        continue;
      }
      // Unreferenced base snapshots go last: evicting one forces an expensive
      // re-designation the next time the policy wants to dedup.
      SandboxId base_victim = kNoSandbox;
      for (const auto& [id, snap] : cluster_.base_snapshots()) {
        if (snap.node == node && registry_->RefCount(id) == 0) {
          base_victim = id;
          break;
        }
      }
      if (base_victim != kNoSandbox) {
        registry_->RemoveBaseSandbox(base_victim);
        cluster_.RemoveBaseSnapshot(base_victim);
        fabric_.InvalidateSandbox(base_victim);  // reclaim its cached pages
        RecordEviction(node);
        continue;
      }
      return false;  // only running sandboxes and referenced bases left
    }
    return true;
  }

  // True when `mb` fits in the node's free space without evicting anything.
  bool FitsWithoutEviction(NodeId node, double mb) const {
    return cluster_.node(node).used_mb + mb <= cluster_.node(node).options.memory_limit_mb;
  }

  // Dedups an idle warm sandbox to relieve memory pressure (keeps it usable
  // as a dedup start instead of destroying it).
  void PressureDedup(Sandbox& sb, const obs::TraceContext& ctx = {}) {
    CancelTimer(sb);
    const SimTime now = sim_.Now();
    // Several pressure dedups can hang off one root context (EnsureFits
    // loops over victims); the victim's id keeps their span ids distinct.
    const obs::TraceContext pd_ctx = ctx.Child("pressure_dedup", sb.id.value());
    const DedupOpResult result = agent_.DedupOp(sb, now, pd_ctx);
    {
      obs::ScopedSpan span("pressure_dedup", "platform", now, sb.node.value(), pd_ctx);
      span.SetSimDuration(result.total_time);
      span.AddArg("sandbox", static_cast<int64_t>(sb.id.value()));
    }
    RecordDedup(sb, result);
    const SandboxId id = sb.id;
    sb.pending_timer =
        sim_.ScheduleAfter(options_.medes.keep_dedup, [this, id] { OnKeepDedupTimer(id); });
  }

  void RecordEviction(NodeId node) EXCLUDES(metrics_mu_) {
    {
      MutexLock lock(metrics_mu_);
      ++metrics_.evictions;
    }
    if (obs::MetricsEnabled()) {
      Instruments().evictions->Add(1);
    }
    obs::RecordInstant("evict", "platform", sim_.Now(), node.value());
  }

  // Dedup-op metrics shared by the policy path and the pressure path.
  void RecordDedup(Sandbox& sb, const DedupOpResult& result) EXCLUDES(metrics_mu_) {
    controller_.RecordDedupResult(sb.function, result);
    MutexLock lock(metrics_mu_);
    ++metrics_.dedup_ops;
    ++metrics_.sandboxes_deduped;
    metrics_.same_function_pages += result.same_function_pages;
    metrics_.cross_function_pages += result.cross_function_pages;
    auto& fm = metrics_.per_function[static_cast<size_t>(sb.function)];
    ++fm.dedup_ops;
    fm.total_saved_mb += static_cast<double>(result.saved_bytes) /
                         static_cast<double>(cluster_.options().bytes_per_mb);
    fm.total_dedup_op_ms += ToMillis(result.total_time);
    fm.total_patch_bytes += result.patch_bytes;
    fm.total_pages_deduped += result.pages_deduped;
  }

  void PurgeSandbox(Sandbox& sb) {
    CancelTimer(sb);
    // Unconditional: a warm sandbox with a pending background restore still
    // holds patch records (and base refs) for its not-yet-fetched pages.
    for (const PatchRecord& record : sb.patches) {
      for (const PageLocation& base : record.bases) {
        registry_->Unref(base.sandbox);
      }
    }
    agent_.AbandonBackgroundRestore(sb.id);
    cluster_.Purge(sb.id);
  }

  void HandleRequest(const TraceEvent& ev) {
    const FunctionProfile& profile = Profile(ev.function);
    const SimTime now = sim_.Now();
    // Root trace identity for this invocation. The event loop is
    // single-threaded, so the serial sequence counter — and through it every
    // derived span id — is a pure function of arrival order.
    const obs::TraceContext ctx = obs::MintTraceContext(next_trace_seq_++);
    controller_.RecordArrival(ev.function, now);
    adaptive_[static_cast<size_t>(ev.function)].RecordArrival(now);

    StartType type;
    SimDuration startup;
    Sandbox* sb = PickWarm(ev.function);
    if (sb != nullptr) {
      CancelTimer(*sb);
      type = StartType::kWarm;
      startup = profile.warm_start;
      cluster_.MarkRunning(*sb, now);
    } else if ((sb = PickDedup(ev.function)) != nullptr) {
      CancelTimer(*sb);
      RestoreOpResult restore = agent_.RestoreOp(*sb, now, options_.verify_restores, ctx);
      controller_.RecordRestoreResult(ev.function, restore);
      {
        MutexLock lock(metrics_mu_);
        auto& fm = metrics_.per_function[static_cast<size_t>(ev.function)];
        fm.restore_read_ms.Record(ToMillis(restore.read_base_time));
        fm.restore_compute_ms.Record(ToMillis(restore.compute_time));
        fm.restore_criu_ms.Record(ToMillis(restore.sandbox_restore_time));
        ++metrics_.restores;
        LazyRestoreStats& lz = metrics_.lazy_restore;
        if (restore.mode == RestoreMode::kLazy) {
          ++lz.lazy_restores;
          lz.ws_predicted_pages += restore.ws_predicted_pages;
          lz.ws_touched_pages += restore.ws_touched_pages;
          lz.ws_hit_pages += restore.ws_hit_pages;
          lz.ws_fault_pages += restore.ws_fault_pages;
          lz.fault_ms += ToMillis(restore.fault_time);
        } else {
          ++lz.eager_restores;
        }
        lz.critical_path_ms.Record(ToMillis(restore.critical_path_time));
      }
      if (restore.background_pending) {
        // The off-critical-path phase: fires once the request's startup
        // window has elapsed (the prefetcher works behind the resumed
        // function). A purge or re-dedup before then abandons it.
        const SandboxId restore_id = sb->id;
        sim_.ScheduleAfter(restore.total_time,
                           [this, restore_id] { OnBackgroundRestore(restore_id); });
      }
      type = StartType::kDedup;
      startup = restore.total_time;
      cluster_.MarkRunning(*sb, now);
    } else {
      NodeId node = cluster_.LeastUsedNode();
      if (!EnsureFits(node, profile.memory_mb, kNoSandbox, /*spare_warm=*/false, ctx)) {
        {
          MutexLock lock(metrics_mu_);
          ++metrics_.overcommit_events;
        }
        if (obs::MetricsEnabled()) {
          Instruments().overcommits->Add(1);
        }
        obs::RecordInstant("overcommit", "platform", now, node.value());
      }
      sb = &cluster_.Spawn(profile, node, now);
      {
        MutexLock lock(metrics_mu_);
        ++metrics_.sandboxes_spawned;
      }
      if (obs::MetricsEnabled()) {
        Instruments().spawns->Add(1);
      }
      obs::RecordInstant("spawn", "platform", now, node.value());
      type = StartType::kCold;
      startup = options_.emulate_catalyzer ? options_.catalyzer_restore : profile.cold_start;
    }

    const SimDuration e2e = startup + profile.exec_time;
    RequestRecord record{ev.function, now, type, startup, e2e};
    {
      MutexLock lock(metrics_mu_);
      metrics_.requests.push_back(record);
      auto& fm = metrics_.per_function[static_cast<size_t>(ev.function)];
      switch (type) {
        case StartType::kWarm:
          ++fm.warm_starts;
          break;
        case StartType::kDedup:
          ++fm.dedup_starts;
          break;
        case StartType::kCold:
          ++fm.cold_starts;
          break;
      }
      fm.e2e_ms.Record(ToMillis(e2e));
      fm.startup_ms.Record(ToMillis(startup));
    }
    if (obs::MetricsEnabled()) {
      const PlatformInstruments& ins = Instruments();
      switch (type) {
        case StartType::kWarm:
          ins.warm_starts->Add(1);
          break;
        case StartType::kDedup:
          ins.dedup_starts->Add(1);
          break;
        case StartType::kCold:
          ins.cold_starts->Add(1);
          break;
      }
      ins.e2e_us->Record(e2e.value());
      ins.startup_us->Record(startup.value());
    }
    if (obs::TraceEnabled()) {
      obs::ScopedSpan span("request", "platform", now, sb->node.value(), ctx);
      span.SetSimDuration(e2e);
      span.AddArg("function", static_cast<int64_t>(ev.function));
      span.AddArg("start_type", static_cast<int64_t>(type));
      span.AddArg("startup_us", startup.value());
    }

    const SandboxId id = sb->id;
    sim_.ScheduleAfter(e2e, [this, id] { OnComplete(id); });
  }

  // Completes a lazy restore's deferred page fetches. The pending entry may
  // be gone by now (purge, or a re-dedup flushed it) — then this is a no-op.
  void OnBackgroundRestore(SandboxId id) {
    Sandbox* sb = cluster_.Find(id);
    if (sb == nullptr) {
      agent_.AbandonBackgroundRestore(id);
      return;
    }
    const BackgroundRestoreResult result = agent_.CompleteBackgroundRestore(*sb, sim_.Now());
    if (result.pages == 0 && result.base_pages_read == 0) {
      return;
    }
    MutexLock lock(metrics_mu_);
    LazyRestoreStats& lz = metrics_.lazy_restore;
    ++lz.background_completions;
    lz.background_pages += result.pages;
    lz.background_ms += ToMillis(result.total_time);
  }

  void OnComplete(SandboxId id) {
    Sandbox* sb = cluster_.Find(id);
    if (sb == nullptr) {
      return;  // should not happen: running sandboxes are never evicted
    }
    cluster_.MarkWarm(*sb, sim_.Now());
    ArmPostCompletionTimer(*sb);
  }

  void ArmPostCompletionTimer(Sandbox& sb) {
    const SandboxId id = sb.id;
    switch (options_.policy) {
      case PolicyKind::kFixedKeepAlive:
        sb.pending_timer = sim_.ScheduleAfter(options_.fixed_keep_alive,
                                              [this, id] { OnPurgeTimer(id); });
        break;
      case PolicyKind::kAdaptiveKeepAlive:
        sb.pending_timer = sim_.ScheduleAfter(
            adaptive_[static_cast<size_t>(sb.function)].KeepAlive(),
            [this, id] { OnPurgeTimer(id); });
        break;
      case PolicyKind::kMedes:
        ArmIdle(sb);
        break;
    }
  }

  // Enrolls a warm sandbox for an idle-expiry decision one idle period from
  // now. Coalesced mode batches every sandbox sharing a deadline behind one
  // timer event; the fallback arms one timer per sandbox.
  void ArmIdle(Sandbox& sb) {
    const SandboxId id = sb.id;
    if (!options_.coalesce_idle_expiry) {
      sb.pending_timer =
          sim_.ScheduleAfter(options_.medes.idle_period, [this, id] { OnIdleTimer(id); });
      return;
    }
    const SimTime deadline = sim_.Now() + options_.medes.idle_period;
    sb.idle_deadline = deadline;
    std::vector<SandboxId>& bucket = idle_buckets_[deadline];
    if (bucket.empty()) {
      sim_.Schedule(deadline, [this, deadline] { OnIdleBucket(deadline); });
    }
    bucket.push_back(id);
  }

  void OnPurgeTimer(SandboxId id) {
    Sandbox* sb = cluster_.Find(id);
    if (sb == nullptr || sb->state != SandboxState::kWarm) {
      return;
    }
    sb->pending_timer = 0;
    PurgeSandbox(*sb);
  }

  void OnIdleTimer(SandboxId id) {
    Sandbox* sb = cluster_.Find(id);
    if (sb == nullptr || sb->state != SandboxState::kWarm) {
      return;
    }
    sb->pending_timer = 0;
    IdleExpiry(*sb);
  }

  // One deadline's worth of coalesced idle expiries. Entries whose sandbox
  // died, left kWarm, or re-enrolled under a different deadline are skipped —
  // that is the lazy cancellation CancelTimer relies on.
  void OnIdleBucket(SimTime deadline) {
    auto it = idle_buckets_.find(deadline);
    if (it == idle_buckets_.end()) {
      return;
    }
    const std::vector<SandboxId> due = std::move(it->second);
    idle_buckets_.erase(it);
    for (const SandboxId id : due) {
      Sandbox* sb = cluster_.Find(id);
      if (sb == nullptr || sb->state != SandboxState::kWarm || sb->idle_deadline != deadline) {
        continue;
      }
      sb->idle_deadline = SimTime{};
      IdleExpiry(*sb);
    }
  }

  // The Medes idle-period decision for one warm sandbox (paper Fig. 4b):
  // ask the controller, then keep-warm / designate-base / dedup.
  void IdleExpiry(Sandbox& sbox) {
    Sandbox* sb = &sbox;
    const SandboxId id = sb->id;
    const SimTime now = sim_.Now();
    const bool keep_alive_expired = now - sb->last_used >= options_.medes.keep_alive;
    // Idle decisions get their own root trace (they are not caused by any
    // single request): the decision message, a designation's registry
    // inserts, and a dedup op's whole span tree hang off this root.
    const obs::TraceContext ctx = obs::MintTraceContext(next_trace_seq_++);
    const IdleDecision decision =
        controller_.OnIdleExpiry(*sb, now, obs::MessageTrace{ctx, now, 0});
    // Function-scope RAII: the kDedup branch stamps the dedup op's modelled
    // duration so critical-path attribution over idle trees is meaningful.
    obs::ScopedSpan span("idle_decision", "platform", now, sb->node.value(), ctx);
    span.AddArg("decision", static_cast<int64_t>(decision));
    span.AddArg("function", static_cast<int64_t>(sb->function));
    switch (decision) {
      case IdleDecision::kKeepWarm: {
        if (keep_alive_expired) {
          PurgeSandbox(*sb);
          return;
        }
        ArmIdle(*sb);
        break;
      }
      case IdleDecision::kDesignateBase: {
        // The snapshot costs a full extra copy of the sandbox's memory.
        // Make room by purging dedup sandboxes / unreferenced bases if
        // necessary, but never displace warm sandboxes for it.
        if (EnsureFits(sb->node, cluster_.ProfileOf(*sb).memory_mb, sb->id,
                       /*spare_warm=*/true, ctx)) {
          agent_.DesignateBase(*sb, now, ctx);
          {
            MutexLock lock(metrics_mu_);
            ++metrics_.base_designations;
          }
          if (obs::MetricsEnabled()) {
            Instruments().base_designations->Add(1);
          }
          obs::RecordInstant("base_designation", "platform", now, sb->node.value());
        } else if (keep_alive_expired) {
          // No room for a base; the sandbox follows the normal warm
          // lifecycle so it cannot linger forever.
          PurgeSandbox(*sb);
          return;
        }
        ArmIdle(*sb);
        break;
      }
      case IdleDecision::kDedup: {
        const DedupOpResult result = agent_.DedupOp(*sb, now, ctx);
        span.SetSimDuration(result.total_time);
        RecordDedup(*sb, result);
        sb->pending_timer =
            sim_.ScheduleAfter(options_.medes.keep_dedup, [this, id] { OnKeepDedupTimer(id); });
        break;
      }
    }
  }

  void OnKeepDedupTimer(SandboxId id) {
    Sandbox* sb = cluster_.Find(id);
    if (sb == nullptr || sb->state != SandboxState::kDedup) {
      return;
    }
    sb->pending_timer = 0;
    PurgeSandbox(*sb);
  }

  void SampleMemory() {
    MemorySample s;
    s.time = sim_.Now();
    s.used_mb = cluster_.TotalUsedMb();
    s.idle_warm_mb_per_function.assign(FunctionBenchProfiles().size(), 0.0);
    for (SandboxId id : cluster_.AllSandboxes()) {
      const Sandbox* sb = cluster_.Find(id);
      ++s.sandboxes;
      if (sb->state == SandboxState::kDedup) {
        ++s.dedup;
      } else if (sb->state == SandboxState::kWarm) {
        ++s.warm;
        s.idle_warm_mb_per_function[static_cast<size_t>(sb->function)] +=
            cluster_.WarmFootprintMb(*sb);
      }
    }
    s.bases = cluster_.base_snapshots().size();
    if (obs::MetricsEnabled()) {
      // Refresh the level gauges, then append one point to the sim-time
      // snapshot series (the poller the exporters read back).
      const PlatformInstruments& ins = Instruments();
      ins.live_sandboxes->Set(static_cast<int64_t>(s.sandboxes));
      ins.warm_sandboxes->Set(static_cast<int64_t>(s.warm));
      ins.dedup_sandboxes->Set(static_cast<int64_t>(s.dedup));
      ins.base_snapshots->Set(static_cast<int64_t>(s.bases));
      ins.used_mb->Set(static_cast<int64_t>(s.used_mb));
      obs::SnapshotSeries::Default().Sample(s.time);
    }
    MutexLock lock(metrics_mu_);
    metrics_.memory_timeline.push_back(std::move(s));
  }

  PlatformOptions options_;
  Simulation sim_;
  Cluster cluster_;
  std::shared_ptr<Transport> transport_;
  std::shared_ptr<store::StateStore> store_;
  std::unique_ptr<RegistryBackend> registry_;
  RdmaFabric fabric_;
  DedupAgent agent_;
  MedesController controller_;
  std::vector<AdaptiveKeepAlive> adaptive_;

  // Coalesced Medes idle-expiry: sandboxes due for a decision, bucketed by
  // deadline. One timer event serves the whole bucket; lazily-cancelled
  // entries (idle_deadline mismatch) are skipped at fire time.
  std::map<SimTime, std::vector<SandboxId>> idle_buckets_;

  // The discrete-event loop is single-threaded today, but recording sites
  // take this lock so per-op metrics stay coherent when ops move onto the
  // pool. kMetrics is the leaf rank: never hold it while calling into the
  // agent, registry, or fabric.
  Mutex metrics_mu_{"platform metrics", LockRank::kMetrics};
  RunMetrics metrics_ GUARDED_BY(metrics_mu_);
  bool ran_ = false;
  // First reserved tie-break seq of the streamed arrival chain.
  uint64_t arrival_seq_base_ = 0;
  // Serial trace-root counter (requests and idle decisions). Only the
  // single-threaded event loop advances it, so minted trace ids are a pure
  // function of event order.
  uint64_t next_trace_seq_ = 0;
};

ServerlessPlatform::ServerlessPlatform(PlatformOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

ServerlessPlatform::~ServerlessPlatform() = default;

RunMetrics ServerlessPlatform::Run(const std::vector<TraceEvent>& trace) {
  return impl_->Run(trace);
}

Cluster& ServerlessPlatform::cluster() { return impl_->cluster(); }
RegistryBackend& ServerlessPlatform::registry() { return impl_->registry(); }
MedesController& ServerlessPlatform::controller() { return impl_->controller(); }
Transport& ServerlessPlatform::transport() { return impl_->transport(); }
Simulation& ServerlessPlatform::sim() { return impl_->sim(); }
store::StateStore& ServerlessPlatform::state_store() { return impl_->state_store(); }

PlatformOptions MakePlatformOptions(PolicyKind policy) {
  PlatformOptions options;
  options.policy = policy;
  options.cluster.num_nodes = 19;
  options.cluster.node_memory_mb = 2048;
  options.cluster.bytes_per_mb = 8192;
  // Base-page read cache: hot bases (one per function, hit by every dedup
  // and restore of that function) stop paying repeated fabric reads.
  options.rdma.page_cache_capacity = 4096;
  return options;
}

}  // namespace medes
