// Metrics collected from a platform run — everything the paper's evaluation
// section reports is derivable from these.
#ifndef MEDES_PLATFORM_METRICS_H_
#define MEDES_PLATFORM_METRICS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/histogram.h"
#include "common/time.h"
#include "memstate/profiles.h"
#include "net/transport.h"
#include "rdma/rdma.h"
#include "registry/fingerprint_registry.h"
#include "store/state_store.h"

namespace medes {

enum class StartType {
  kWarm,
  kDedup,
  kCold,
};

const char* ToString(StartType type);

// Inverse of ToString (exact match); nullopt for anything unrecognised.
std::optional<StartType> StartTypeFromString(std::string_view name);

struct RequestRecord {
  FunctionId function = -1;
  SimTime arrival;
  StartType start = StartType::kCold;
  SimDuration startup;  // latency before execution begins
  SimDuration e2e;      // startup + execution
};

struct FunctionMetrics {
  uint64_t warm_starts = 0;
  uint64_t dedup_starts = 0;
  uint64_t cold_starts = 0;
  SampleRecorder e2e_ms;
  SampleRecorder startup_ms;
  // Restore (dedup start) breakdown, Fig. 8's three components.
  SampleRecorder restore_read_ms;
  SampleRecorder restore_compute_ms;
  SampleRecorder restore_criu_ms;
  // Dedup op results.
  uint64_t dedup_ops = 0;
  double total_saved_mb = 0;
  double total_dedup_op_ms = 0;
  uint64_t total_patch_bytes = 0;   // at image scale
  uint64_t total_pages_deduped = 0;

  uint64_t TotalRequests() const { return warm_starts + dedup_starts + cold_starts; }
};

// Working-set-aware lazy restore accounting (aggregated over the run).
// `critical_path_ms` is the pre-resume latency of each dedup start — the
// quantity Fig. 8 compares across restore modes; fault/background time is
// what lazy mode moved off that path.
struct LazyRestoreStats {
  uint64_t lazy_restores = 0;
  uint64_t eager_restores = 0;
  uint64_t ws_predicted_pages = 0;
  uint64_t ws_touched_pages = 0;
  uint64_t ws_hit_pages = 0;
  uint64_t ws_fault_pages = 0;
  uint64_t background_completions = 0;
  uint64_t background_pages = 0;
  double fault_ms = 0;       // post-resume demand-fault penalty
  double background_ms = 0;  // off-critical-path background fetch time
  SampleRecorder critical_path_ms;

  // Fraction of touched pages the prediction prefetched (1.0 when nothing
  // was touched — there was nothing to miss).
  double HitRate() const {
    return ws_touched_pages == 0
               ? 1.0
               : static_cast<double>(ws_hit_pages) / static_cast<double>(ws_touched_pages);
  }
};

struct MemorySample {
  SimTime time;
  double used_mb = 0;
  uint64_t sandboxes = 0;
  uint64_t warm = 0;
  uint64_t dedup = 0;
  uint64_t bases = 0;
  // Memory held by *idle warm* sandboxes, per function — the portion a
  // redundancy-elimination pass could shrink (used by the Fig. 2 estimate).
  std::vector<double> idle_warm_mb_per_function;
};

struct RunMetrics {
  std::vector<RequestRecord> requests;
  std::vector<FunctionMetrics> per_function;  // indexed by FunctionId
  std::vector<MemorySample> memory_timeline;

  uint64_t dedup_ops = 0;
  uint64_t restores = 0;
  uint64_t sandboxes_spawned = 0;
  uint64_t sandboxes_deduped = 0;  // distinct dedup transitions
  uint64_t evictions = 0;
  uint64_t base_designations = 0;
  uint64_t overcommit_events = 0;

  uint64_t same_function_pages = 0;
  uint64_t cross_function_pages = 0;

  LazyRestoreStats lazy_restore;

  RegistryStats registry;
  RdmaStats rdma;
  // Per-message-type counters and latency histograms from the shared
  // cluster transport (lookups, inserts, base reads, control decisions).
  TransportStats transport;
  // State-store tier accounting (hot/cold residency, SSD fetch costs).
  // Backend-independent by design: the memory and persistent backends report
  // identical StoreStats for the same run, so the determinism pin covers this
  // field too. Durability-only counters live in store::DurabilityStats and
  // are deliberately excluded.
  store::StoreStats store;

  uint64_t TotalColdStarts() const;
  uint64_t TotalRequests() const;
  double MeanMemoryMb() const;
  double MedianMemoryMb() const;
  double MeanSandboxesInMemory() const;

  // Per-function p-quantile of end-to-end latency in ms.
  double FunctionE2ePercentileMs(FunctionId function, double p) const;
};

// Distribution of per-request improvement factors (baseline e2e / medes e2e),
// matched request-by-request; both runs must come from the same trace.
std::vector<double> ImprovementFactors(const RunMetrics& medes, const RunMetrics& baseline);

}  // namespace medes

#endif  // MEDES_PLATFORM_METRICS_H_
