// ServerlessPlatform: the end-to-end simulated cluster.
//
// Wires the discrete-event engine, cluster model, fingerprint registry, RDMA
// fabric, dedup agents, and a sandbox-management policy into a platform that
// replays a request trace and reports the metrics the paper evaluates. Three
// policies are provided: the two state-of-the-art keep-alive baselines and
// Medes itself. An emulated-Catalyzer mode (paper Section 7.6) replaces cold
// starts with snapshot restores for both baselines and Medes.
#ifndef MEDES_PLATFORM_PLATFORM_H_
#define MEDES_PLATFORM_PLATFORM_H_

#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "controller/medes_controller.h"
#include "dedupagent/dedup_agent.h"
#include "net/transport.h"
#include "platform/metrics.h"
#include "policy/keep_alive.h"
#include "rdma/rdma.h"
#include "registry/distributed_registry.h"
#include "registry/fingerprint_registry.h"
#include "sim/simulation.h"
#include "store/state_store.h"
#include "workload/trace.h"

namespace medes {

enum class PolicyKind {
  kFixedKeepAlive,
  kAdaptiveKeepAlive,
  kMedes,
};

const char* ToString(PolicyKind kind);

struct PlatformOptions {
  ClusterOptions cluster;
  RegistryOptions registry;
  RdmaOptions rdma;
  DedupAgentOptions agent;
  MedesControllerOptions medes;
  AdaptiveKeepAliveOptions adaptive;
  // State-store tier behind the registry and base-page store (src/store).
  // The memory backend with an unbounded RAM budget (the default) charges
  // nothing and changes nothing — runs are byte-identical to a platform with
  // no store at all. A bounded budget or the persistent backend adds modelled
  // SSD costs and durable append records.
  store::StoreOptions store;
  // Link parameters for the shared cluster transport. Node numbering:
  // workers are 0..num_nodes-1, the controller sits on node num_nodes, and
  // registry shard replicas (distributed mode) occupy num_nodes+1 onward.
  // Every cross-node charge — registry lookups/inserts, base-page reads,
  // control decisions — flows through one Transport built from this model.
  NetworkModel network;

  PolicyKind policy = PolicyKind::kMedes;
  SimDuration fixed_keep_alive = 10 * kMinute;

  // Event-engine selection (sim/simulation.h). The calendar default and the
  // legacy heap produce bit-identical fire order, hence identical RunMetrics;
  // the heap stays available as the perf baseline for bench/cluster_scale.
  SimulationOptions sim;
  // Batch same-deadline Medes idle-expiry decisions through one timer event
  // per deadline instead of one per sandbox (decision-for-decision output is
  // pinned by tests; set false to fall back to per-sandbox timers).
  bool coalesce_idle_expiry = true;
  // Feed trace arrivals as a chain — each arrival's callback schedules the
  // next — instead of scheduling the whole trace up front. Keeps the pending
  // event set proportional to cluster activity rather than trace length
  // (a million up-front arrivals otherwise sit in the scheduler for the whole
  // run). Set false to fall back to the pre-refactor bulk feed.
  bool stream_trace_arrivals = true;

  // Emulated Catalyzer (Section 7.6): cold starts become snapshot restores.
  bool emulate_catalyzer = false;
  SimDuration catalyzer_restore = 150 * kMillisecond;

  // Byte-exact reconstruction checks on every restore (slow; for tests).
  bool verify_restores = false;

  // Controller distribution (Section 4.3): 0 = centralized fingerprint
  // registry; > 0 = that many shards with chain replication.
  int registry_shards = 0;
  int registry_replication = 3;

  SimDuration memory_sample_interval = 10 * kSecond;
};

class ServerlessPlatform {
 public:
  explicit ServerlessPlatform(PlatformOptions options);
  ~ServerlessPlatform();

  ServerlessPlatform(const ServerlessPlatform&) = delete;
  ServerlessPlatform& operator=(const ServerlessPlatform&) = delete;

  // Replays `trace` to completion and returns the collected metrics.
  // Run() may be called once per platform instance.
  RunMetrics Run(const std::vector<TraceEvent>& trace);

  // Component access for tests and benches.
  Cluster& cluster();
  RegistryBackend& registry();
  MedesController& controller();
  Transport& transport();
  Simulation& sim();
  store::StateStore& state_store();

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

// Convenience: build options for a named experiment configuration.
PlatformOptions MakePlatformOptions(PolicyKind policy);

}  // namespace medes

#endif  // MEDES_PLATFORM_PLATFORM_H_
