#include "platform/metrics.h"

#include <algorithm>
#include <stdexcept>

namespace medes {

const char* ToString(StartType type) {
  switch (type) {
    case StartType::kWarm:
      return "warm";
    case StartType::kDedup:
      return "dedup";
    case StartType::kCold:
      return "cold";
  }
  return "?";
}

std::optional<StartType> StartTypeFromString(std::string_view name) {
  if (name == "warm") {
    return StartType::kWarm;
  }
  if (name == "dedup") {
    return StartType::kDedup;
  }
  if (name == "cold") {
    return StartType::kCold;
  }
  return std::nullopt;
}

uint64_t RunMetrics::TotalColdStarts() const {
  uint64_t total = 0;
  for (const auto& f : per_function) {
    total += f.cold_starts;
  }
  return total;
}

uint64_t RunMetrics::TotalRequests() const { return requests.size(); }

double RunMetrics::MeanMemoryMb() const {
  if (memory_timeline.empty()) {
    return 0;
  }
  double total = 0;
  for (const auto& s : memory_timeline) {
    total += s.used_mb;
  }
  return total / static_cast<double>(memory_timeline.size());
}

double RunMetrics::MedianMemoryMb() const {
  if (memory_timeline.empty()) {
    return 0;
  }
  std::vector<double> values;
  values.reserve(memory_timeline.size());
  for (const auto& s : memory_timeline) {
    values.push_back(s.used_mb);
  }
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

double RunMetrics::MeanSandboxesInMemory() const {
  if (memory_timeline.empty()) {
    return 0;
  }
  double total = 0;
  for (const auto& s : memory_timeline) {
    total += static_cast<double>(s.sandboxes);
  }
  return total / static_cast<double>(memory_timeline.size());
}

double RunMetrics::FunctionE2ePercentileMs(FunctionId function, double p) const {
  return per_function.at(static_cast<size_t>(function)).e2e_ms.Percentile(p);
}

std::vector<double> ImprovementFactors(const RunMetrics& medes, const RunMetrics& baseline) {
  if (medes.requests.size() != baseline.requests.size()) {
    throw std::invalid_argument("ImprovementFactors: runs are from different traces");
  }
  std::vector<double> factors;
  factors.reserve(medes.requests.size());
  for (size_t i = 0; i < medes.requests.size(); ++i) {
    const auto& m = medes.requests[i];
    const auto& b = baseline.requests[i];
    if (m.arrival != b.arrival || m.function != b.function) {
      throw std::invalid_argument("ImprovementFactors: request streams do not line up");
    }
    if (m.e2e > SimDuration{}) {
      factors.push_back(static_cast<double>(b.e2e.value()) / static_cast<double>(m.e2e.value()));
    }
  }
  return factors;
}

}  // namespace medes
