#include "net/transport.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace medes {

namespace {

// Per-MessageType observability instruments, resolved once. Only touched
// behind an obs::MetricsEnabled() guard so disabled builds/runs skip even the
// lazy-init check.
struct TransportInstruments {
  std::array<obs::Counter*, kNumMessageTypes> messages;
  std::array<obs::Counter*, kNumMessageTypes> bytes;
  std::array<obs::Counter*, kNumMessageTypes> dropped;
  std::array<obs::Histogram*, kNumMessageTypes> latency;
};

const TransportInstruments& Instruments() {
  static const TransportInstruments instruments = [] {
    TransportInstruments out;
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
    for (size_t i = 0; i < kNumMessageTypes; ++i) {
      const char* type = ToString(static_cast<MessageType>(i));
      out.messages[i] = &registry.GetCounter("medes_transport_messages_total",
                                             "Messages sent over the modelled transport", "type",
                                             type);
      out.bytes[i] = &registry.GetCounter("medes_transport_bytes_total",
                                          "Payload bytes attempted over the modelled transport",
                                          "type", type);
      out.dropped[i] = &registry.GetCounter("medes_transport_dropped_total",
                                            "Messages lost to the installed fault policy", "type",
                                            type);
      out.latency[i] = &registry.GetHistogram("medes_transport_latency_us",
                                              "Modelled cost of delivered messages (us)", "type",
                                              type);
    }
    return out;
  }();
  return instruments;
}

}  // namespace

const char* ToString(MessageType type) {
  switch (type) {
    case MessageType::kRegistryLookup:
      return "registry_lookup";
    case MessageType::kRegistryInsert:
      return "registry_insert";
    case MessageType::kBaseRead:
      return "base_read";
    case MessageType::kControlDecision:
      return "control_decision";
    case MessageType::kReplicaSync:
      return "replica_sync";
    case MessageType::kBaseReadBatch:
      return "base_read_batch";
  }
  return "?";
}

const char* MessageSpanName(MessageType type) {
  switch (type) {
    case MessageType::kRegistryLookup:
      return "net/registry_lookup";
    case MessageType::kRegistryInsert:
      return "net/registry_insert";
    case MessageType::kBaseRead:
      return "net/base_read";
    case MessageType::kControlDecision:
      return "net/control_decision";
    case MessageType::kReplicaSync:
      return "net/replica_sync";
    case MessageType::kBaseReadBatch:
      return "net/base_read_batch";
  }
  return "net/?";
}

SimDuration LinkCost(Bytes bytes, const LinkModel& link) {
  if (link.bandwidth_gbps <= 0) {
    return link.latency;
  }
  // bytes / (gbps Gbit/s) in microseconds: bytes * 8 / (gbps * 1000) us.
  const SimDuration transfer{static_cast<int64_t>(static_cast<double>(bytes.value()) * 8.0 /
                                                  (link.bandwidth_gbps * 1000.0))};
  return link.latency + transfer;
}

// ---- StaticFaultPolicy ---------------------------------------------------

Fault StaticFaultPolicy::OnMessage(MessageType type, NodeId src, NodeId dst, Bytes bytes) {
  (void)bytes;
  ReaderLock lock(mu_);
  Fault fault;
  if (cut_links_.contains(Topology::PairKey(src, dst))) {
    fault.drop = true;
    return fault;
  }
  fault.added_delay = type_delay_[static_cast<size_t>(type)];
  return fault;
}

bool StaticFaultPolicy::NodePartitioned(NodeId node) const {
  ReaderLock lock(mu_);
  return partitioned_nodes_.contains(node);
}

void StaticFaultPolicy::PartitionNode(NodeId node) {
  WriterLock lock(mu_);
  partitioned_nodes_.insert(node);
}

void StaticFaultPolicy::HealNode(NodeId node) {
  WriterLock lock(mu_);
  partitioned_nodes_.erase(node);
}

void StaticFaultPolicy::PartitionLink(NodeId a, NodeId b) {
  WriterLock lock(mu_);
  cut_links_.insert(Topology::PairKey(a, b));
  cut_links_.insert(Topology::PairKey(b, a));
}

void StaticFaultPolicy::HealLink(NodeId a, NodeId b) {
  WriterLock lock(mu_);
  cut_links_.erase(Topology::PairKey(a, b));
  cut_links_.erase(Topology::PairKey(b, a));
}

void StaticFaultPolicy::SetTypeDelay(MessageType type, SimDuration delay) {
  WriterLock lock(mu_);
  type_delay_[static_cast<size_t>(type)] = delay;
}

// ---- TransportStats ------------------------------------------------------

uint64_t TransportStats::TotalMessages() const {
  uint64_t total = 0;
  for (const MessageStats& ms : by_type) {
    total += ms.messages;
  }
  return total;
}

uint64_t TransportStats::TotalBytes() const {
  uint64_t total = 0;
  for (const MessageStats& ms : by_type) {
    total += ms.bytes;
  }
  return total;
}

uint64_t TransportStats::TotalDropped() const {
  uint64_t total = 0;
  for (const MessageStats& ms : by_type) {
    total += ms.dropped;
  }
  return total;
}

SimDuration TransportStats::TotalLatency() const {
  SimDuration total{};
  for (const MessageStats& ms : by_type) {
    total += ms.total_latency;
  }
  return total;
}

// ---- Transport -----------------------------------------------------------

Transport::Transport(Topology topology) : topology_(std::move(topology)) {}

std::shared_ptr<FaultPolicy> Transport::CurrentPolicy() const {
  ReaderLock lock(policy_mu_);
  return policy_;
}

void Transport::InstallFaultPolicy(std::shared_ptr<FaultPolicy> policy) {
  WriterLock lock(policy_mu_);
  policy_ = std::move(policy);
}

bool Transport::NodeUp(NodeId node) const {
  std::shared_ptr<FaultPolicy> policy = CurrentPolicy();
  return policy == nullptr || !policy->NodePartitioned(node);
}

Transport::SendResult Transport::Send(MessageType type, NodeId src, NodeId dst, Bytes bytes,
                                      uint64_t requests, const obs::MessageTrace& trace) {
  Fault fault;
  if (std::shared_ptr<FaultPolicy> policy = CurrentPolicy()) {
    if (policy->NodePartitioned(src) || policy->NodePartitioned(dst)) {
      fault.drop = true;
    } else {
      fault = policy->OnMessage(type, src, dst, bytes);
    }
  }
  SendResult result;
  result.delivered = !fault.drop;
  result.cost = MessageCost(src, dst, bytes) + fault.added_delay;
  {
    MutexLock lock(stats_mu_);
    MessageStats& ms = stats_.by_type[static_cast<size_t>(type)];
    ++ms.messages;
    ms.requests += requests;
    ms.bytes += bytes.value();
    if (result.delivered) {
      ms.total_latency += result.cost;
      ms.max_latency = std::max(ms.max_latency, result.cost);
      ms.latency.Record(result.cost);
    } else {
      ++ms.dropped;
    }
  }
  if (obs::MetricsEnabled()) {
    const auto idx = static_cast<size_t>(type);
    const TransportInstruments& ins = Instruments();
    ins.messages[idx]->Add(1);
    ins.bytes[idx]->Add(bytes.value());
    if (result.delivered) {
      ins.latency[idx]->Record(result.cost.value());
    } else {
      ins.dropped[idx]->Add(1);
    }
  }
  if (obs::TraceEnabled() && trace.ctx.sampled()) {
    const obs::TraceContext msg_ctx = MessageSpanContext(type, trace);
    obs::Span span;
    span.name = MessageSpanName(type);
    span.category = "net";
    span.ts = trace.at;
    span.dur = result.cost;
    span.lane = static_cast<int32_t>(dst.value());
    span.trace_id = msg_ctx.trace_id;
    span.span_id = msg_ctx.span_id;
    span.parent_span_id = msg_ctx.parent_span_id;
    span.num_args = 3;
    span.args[0] = obs::SpanArg{"bytes", static_cast<int64_t>(bytes.value())};
    span.args[1] = obs::SpanArg{"requests", static_cast<int64_t>(requests)};
    span.args[2] = obs::SpanArg{"delivered", result.delivered ? 1 : 0};
    obs::Tracer::Default().Record(span);
  }
  return result;
}

TransportStats Transport::stats() const {
  MutexLock lock(stats_mu_);
  return stats_;
}

void Transport::ResetStats() {
  MutexLock lock(stats_mu_);
  stats_ = {};
}

}  // namespace medes
