// Unified cluster transport: every modelled cross-node byte in medes flows
// through this layer.
//
// Medes' architecture is an explicit control-plane/data-plane split: dedup
// agents make batched fingerprint lookups against the controller's registry,
// while restores read base pages over one-sided RDMA with no controller
// involvement (paper Sections 4.2-4.3). Before this layer existed, each of
// those wires carried its own private latency/bandwidth model; now they all
// charge a single Transport over a cluster Topology:
//
//   - Topology: node count plus per-link latency/bandwidth (a default remote
//     link, a node-local fast path, and optional per-(src,dst) overrides).
//   - Typed messages: each send is tagged with a MessageType so per-type
//     counters, byte totals, and latency histograms accumulate separately.
//   - Batched request accounting: a single message may carry many logical
//     requests (e.g. one registry lookup message carrying a batch of keys);
//     `requests` tracks the logical count alongside the message count.
//   - Fault injection: an installable FaultPolicy can add delay, drop
//     individual messages, or partition nodes/links. Callers observe drops
//     via SendResult::delivered and degrade gracefully.
//
// Determinism contract: MessageCost is a pure function of (src, dst, bytes)
// and Send's result additionally depends only on the installed policy's
// answer for (type, src, dst, bytes) — never on wall-clock time, thread
// identity, or call interleaving. Stats are order-independent accumulations
// (sums, maxima, histogram bucket counts), so concurrent senders produce
// bit-identical stats regardless of schedule. A FaultPolicy must likewise be
// a pure function of the message and its own configured state for the
// pipeline's bit-identical-across-thread-counts guarantee to hold.
#ifndef MEDES_NET_TRANSPORT_H_
#define MEDES_NET_TRANSPORT_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "common/annotations.h"
#include "common/histogram.h"
#include "common/mutex.h"
#include "common/time.h"
#include "common/types.h"
#include "obs/trace_context.h"

namespace medes {

// ---- Message taxonomy ----------------------------------------------------

enum class MessageType : int {
  kRegistryLookup = 0,   // agent -> registry: batched fingerprint lookups
  kRegistryInsert = 1,   // agent -> registry: base-sandbox fingerprint insert
  kBaseRead = 2,         // one-sided RDMA base-page read (data plane)
  kControlDecision = 3,  // controller -> node: idle-policy decision
  kReplicaSync = 4,      // registry replica -> replica: chain re-sync
  kBaseReadBatch = 5,    // coalesced per-owner-node base-page reads (restore prefetch)
};
inline constexpr size_t kNumMessageTypes = 6;

const char* ToString(MessageType type);

// Span name a traced message of `type` records under (e.g. kRegistryLookup
// -> "net/registry_lookup"). Stable string literals so span ids derived from
// them (obs/trace_context.h) are reproducible.
const char* MessageSpanName(MessageType type);

// The context of the span Transport::Send records for a traced message:
// derived, not carried, so the receiving side can re-derive the identical
// context (same pure function) and parent its own server-side spans to it.
inline obs::TraceContext MessageSpanContext(MessageType type, const obs::MessageTrace& trace) {
  return trace.ctx.Child(MessageSpanName(type), trace.ordinal);
}

// ---- Links and topology --------------------------------------------------

struct LinkModel {
  SimDuration latency{3};        // us, per-message setup cost
  double bandwidth_gbps = 10.0;  // line rate; <= 0 means infinite bandwidth

  bool operator==(const LinkModel&) const = default;
};

// Modelled cost of moving `bytes` over `link`:
//     latency + bytes * 8 / (bandwidth_gbps * 1000) us
// with the transfer term truncated to whole microseconds (SimDuration
// granularity). Sub-microsecond transfers therefore cost `latency` alone,
// and a non-positive bandwidth disables the transfer term entirely.
[[nodiscard]] SimDuration LinkCost(Bytes bytes, const LinkModel& link);

// Cluster shape: `num_nodes` nodes, a default remote link between distinct
// nodes, a node-local fast path (src == dst), and optional per-directed-pair
// overrides. Plain data, immutable once handed to a Transport.
struct Topology {
  int num_nodes = 1;
  LinkModel remote;                         // default inter-node link
  LinkModel local{.latency = SimDuration{0}, .bandwidth_gbps = 80.0};  // same-node fast path

  // Directed (src, dst) link overrides, keyed by PairKey().
  std::unordered_map<uint64_t, LinkModel> overrides;

  static uint64_t PairKey(NodeId src, NodeId dst) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(src.value())) << 32) |
           static_cast<uint64_t>(static_cast<uint32_t>(dst.value()));
  }
  void SetLink(NodeId src, NodeId dst, LinkModel link) { overrides[PairKey(src, dst)] = link; }
  void SetBidirectionalLink(NodeId a, NodeId b, LinkModel link) {
    SetLink(a, b, link);
    SetLink(b, a, link);
  }
  // The link a (src -> dst) message travels: override if present, else the
  // local fast path when src == dst, else the default remote link.
  const LinkModel& LinkFor(NodeId src, NodeId dst) const {
    auto it = overrides.find(PairKey(src, dst));
    if (it != overrides.end()) {
      return it->second;
    }
    return src == dst ? local : remote;
  }
};

// The platform-level network configuration: the two default link classes a
// Topology is built from (per-pair overrides are programmatic).
struct NetworkModel {
  LinkModel remote{.latency = SimDuration{3}, .bandwidth_gbps = 10.0};
  LinkModel local{.latency = SimDuration{0}, .bandwidth_gbps = 80.0};
};

// ---- Fault injection -----------------------------------------------------

struct Fault {
  bool drop = false;          // message is lost; SendResult.delivered = false
  SimDuration added_delay{};  // extra latency charged on top of the link cost
};

// Installable fault seam. Implementations MUST be pure functions of the
// message tuple and their own configured state (no RNG, no clocks, no
// per-call mutation) or the determinism contract breaks.
class FaultPolicy {
 public:
  virtual ~FaultPolicy() = default;

  // The fault (if any) applied to one message. Called outside any transport
  // lock; implementations synchronise their own state.
  virtual Fault OnMessage(MessageType type, NodeId src, NodeId dst, Bytes bytes) = 0;

  // True when `node` is partitioned from the cluster entirely. Transport
  // drops every message to or from a partitioned node without consulting
  // OnMessage; components also use this to route around dead peers.
  virtual bool NodePartitioned(NodeId /*node*/) const { return false; }
};

// A concrete FaultPolicy driven by explicit configuration calls: partition
// whole nodes, cut individual (bidirectional) links, or delay all messages
// of one type. Deterministic by construction.
class StaticFaultPolicy : public FaultPolicy {
 public:
  Fault OnMessage(MessageType type, NodeId src, NodeId dst, Bytes bytes) override
      EXCLUDES(mu_);
  bool NodePartitioned(NodeId node) const override EXCLUDES(mu_);

  void PartitionNode(NodeId node) EXCLUDES(mu_);
  void HealNode(NodeId node) EXCLUDES(mu_);
  void PartitionLink(NodeId a, NodeId b) EXCLUDES(mu_);
  void HealLink(NodeId a, NodeId b) EXCLUDES(mu_);
  void SetTypeDelay(MessageType type, SimDuration delay) EXCLUDES(mu_);

 private:
  mutable SharedMutex mu_{"static fault policy", LockRank::kTransport};
  std::unordered_set<NodeId> partitioned_nodes_ GUARDED_BY(mu_);
  std::unordered_set<uint64_t> cut_links_ GUARDED_BY(mu_);  // Topology::PairKey, both dirs
  std::array<SimDuration, kNumMessageTypes> type_delay_ GUARDED_BY(mu_) = {};
};

// ---- Stats ---------------------------------------------------------------

// Order-independent latency histogram using the shared power-of-two bucket
// convention (common/histogram.h). Unlike SampleRecorder it stores no
// per-sample state, so concurrent recording in any order yields identical
// contents.
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = kPow2HistogramBuckets;

  void Record(SimDuration value) { ++buckets_[BucketIndex(value)]; }
  uint64_t Count(size_t bucket) const { return buckets_.at(bucket); }
  uint64_t TotalCount() const {
    uint64_t total = 0;
    for (uint64_t b : buckets_) {
      total += b;
    }
    return total;
  }
  // Inclusive upper bound of a bucket (us); bucket 0 holds <= 0.
  static SimDuration BucketUpperBound(size_t bucket) {
    return SimDuration{Pow2BucketUpperBound(bucket)};
  }
  static size_t BucketIndex(SimDuration value) { return Pow2BucketIndex(value.value()); }

  bool operator==(const LatencyHistogram&) const = default;

 private:
  std::array<uint64_t, kNumBuckets> buckets_ = {};
};

struct MessageStats {
  uint64_t messages = 0;       // sends (delivered or dropped)
  uint64_t requests = 0;       // logical requests batched into those messages
  uint64_t bytes = 0;          // payload bytes attempted
  uint64_t dropped = 0;        // sends lost to the fault policy
  SimDuration total_latency{};  // summed cost of *delivered* messages
  SimDuration max_latency{};    // worst delivered message
  LatencyHistogram latency;     // delivered-message cost distribution

  double MeanLatency() const {
    const uint64_t delivered = messages - dropped;
    return delivered == 0 ? 0.0
                          : static_cast<double>(total_latency.value()) /
                                static_cast<double>(delivered);
  }
  bool operator==(const MessageStats&) const = default;
};

struct TransportStats {
  std::array<MessageStats, kNumMessageTypes> by_type;

  const MessageStats& For(MessageType type) const {
    return by_type.at(static_cast<size_t>(type));
  }
  uint64_t TotalMessages() const;
  uint64_t TotalBytes() const;
  uint64_t TotalDropped() const;
  SimDuration TotalLatency() const;

  bool operator==(const TransportStats&) const = default;
};

// ---- Transport -----------------------------------------------------------

class Transport {
 public:
  explicit Transport(Topology topology = {});

  const Topology& topology() const { return topology_; }

  // Pure timing model: the cost of a (src -> dst) message of `bytes`,
  // ignoring faults and recording nothing.
  [[nodiscard]] SimDuration MessageCost(NodeId src, NodeId dst, Bytes bytes) const {
    return LinkCost(bytes, topology_.LinkFor(src, dst));
  }

  struct SendResult {
    bool delivered = true;
    // Modelled cost of the attempt (link cost + any injected delay). The
    // sender pays this whether or not the message was delivered; callers
    // that model fire-and-forget drops may ignore it when !delivered.
    SimDuration cost{};
  };

  // Sends one message carrying `requests` logical requests. Consults the
  // fault policy (node partitions first, then OnMessage), accumulates
  // per-type stats, and returns the outcome. Thread-safe; see the
  // determinism contract in the file comment.
  // The result carries the modelled cost the *caller* must charge (and the
  // delivered flag it must branch on); dropping it silently desyncs the
  // timing model, hence [[nodiscard]].
  // When `trace` carries a sampled context, the send records a
  // MessageSpanName(type) span at trace.at with the modelled cost as its
  // duration, parented to trace.ctx (see obs/trace_context.h).
  [[nodiscard]] SendResult Send(MessageType type, NodeId src, NodeId dst, Bytes bytes,
                                uint64_t requests = 1, const obs::MessageTrace& trace = {})
      EXCLUDES(policy_mu_, stats_mu_);

  // Installs (or clears, with nullptr) the fault seam. The policy is shared:
  // tests keep their handle to flip partitions mid-run.
  void InstallFaultPolicy(std::shared_ptr<FaultPolicy> policy) EXCLUDES(policy_mu_);

  // False when the installed policy partitions `node` from the cluster.
  bool NodeUp(NodeId node) const EXCLUDES(policy_mu_);

  TransportStats stats() const EXCLUDES(stats_mu_);
  void ResetStats() EXCLUDES(stats_mu_);

 private:
  std::shared_ptr<FaultPolicy> CurrentPolicy() const EXCLUDES(policy_mu_);

  const Topology topology_;

  // The policy slot is copied out under a brief reader lock and released
  // before calling into the policy (which may take its own kTransport-ranked
  // lock; two locks of one rank are never held together).
  mutable SharedMutex policy_mu_{"transport fault policy", LockRank::kTransport};
  std::shared_ptr<FaultPolicy> policy_ GUARDED_BY(policy_mu_);

  mutable Mutex stats_mu_{"transport stats", LockRank::kMetrics};
  TransportStats stats_ GUARDED_BY(stats_mu_);
};

}  // namespace medes

#endif  // MEDES_NET_TRANSPORT_H_
