// Deterministic post-resume page-access model.
//
// The simulator has no real guest execution, so which pages a restored
// sandbox touches is modelled the same way image content is: as a pure
// function of the function profile and the sandbox's execution generation.
// Each invocation touches
//   - a stable core: `working_set_fraction` of the image's pages, chosen by
//     a generator seeded by the function id alone — identical across every
//     invocation of the function (interpreter, hot libraries, long-lived
//     heap);
//   - per-invocation churn: `working_set_churn` x core-size extra pages
//     drawn from the remaining pages by a generator seeded by (function id,
//     generation) — request-dependent data that working-set predictors can
//     never fully learn.
// The result is sorted and duplicate-free, so downstream consumers (EMA
// profiles, fault accounting) are order-independent and bit-identical at any
// thread count.
#ifndef MEDES_WORKLOAD_ACCESS_MODEL_H_
#define MEDES_WORKLOAD_ACCESS_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "memstate/profiles.h"

namespace medes {

// The pages one invocation of `profile` touches after resume, over an image
// of `num_pages` pages. Deterministic in (profile.id, num_pages, generation).
std::vector<PageIndex> PostResumeAccessTrace(const FunctionProfile& profile, size_t num_pages,
                                             uint64_t generation);

// The stable core alone (the churn-free part every invocation shares).
std::vector<PageIndex> StableWorkingSet(const FunctionProfile& profile, size_t num_pages);

}  // namespace medes

#endif  // MEDES_WORKLOAD_ACCESS_MODEL_H_
