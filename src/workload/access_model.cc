#include "workload/access_model.h"

#include <algorithm>

#include "common/hash.h"
#include "common/rng.h"

namespace medes {

namespace {

constexpr uint64_t kCoreStream = 0x77735f636f726531;   // "ws_core1"
constexpr uint64_t kChurnStream = 0x77735f6368757231;  // "ws_chur1"

// Draws `count` distinct indexes from [0, num_pages) excluding `taken`
// (bitmap), via rejection sampling — cheap because count << num_pages and
// deterministic because draws depend only on the rng stream.
std::vector<uint32_t> DrawDistinct(Rng& rng, size_t num_pages, size_t count,
                                   std::vector<uint8_t>& taken) {
  std::vector<uint32_t> out;
  out.reserve(count);
  while (out.size() < count) {
    const auto p = static_cast<uint32_t>(rng.Below(num_pages));
    if (taken[p] != 0) {
      continue;
    }
    taken[p] = 1;
    out.push_back(p);
  }
  return out;
}

}  // namespace

std::vector<PageIndex> StableWorkingSet(const FunctionProfile& profile, size_t num_pages) {
  std::vector<PageIndex> pages;
  if (num_pages == 0) {
    return pages;
  }
  const auto core_size = std::min(
      num_pages, static_cast<size_t>(profile.working_set_fraction * static_cast<double>(num_pages)));
  Rng rng(HashCombine(kCoreStream, static_cast<uint64_t>(profile.id)));
  std::vector<uint8_t> taken(num_pages, 0);
  std::vector<uint32_t> core = DrawDistinct(rng, num_pages, core_size, taken);
  std::sort(core.begin(), core.end());
  pages.reserve(core.size());
  for (uint32_t p : core) {
    pages.push_back(PageIndex{p});
  }
  return pages;
}

std::vector<PageIndex> PostResumeAccessTrace(const FunctionProfile& profile, size_t num_pages,
                                             uint64_t generation) {
  std::vector<PageIndex> pages;
  if (num_pages == 0) {
    return pages;
  }
  const auto core_size = std::min(
      num_pages, static_cast<size_t>(profile.working_set_fraction * static_cast<double>(num_pages)));
  Rng core_rng(HashCombine(kCoreStream, static_cast<uint64_t>(profile.id)));
  std::vector<uint8_t> taken(num_pages, 0);
  std::vector<uint32_t> touched = DrawDistinct(core_rng, num_pages, core_size, taken);

  const size_t churn_size =
      std::min(num_pages - touched.size(),
               static_cast<size_t>(profile.working_set_churn * static_cast<double>(core_size)));
  Rng churn_rng(HashCombine(HashCombine(kChurnStream, static_cast<uint64_t>(profile.id)),
                            generation));
  std::vector<uint32_t> churn = DrawDistinct(churn_rng, num_pages, churn_size, taken);
  touched.insert(touched.end(), churn.begin(), churn.end());

  std::sort(touched.begin(), touched.end());
  pages.reserve(touched.size());
  for (uint32_t p : touched) {
    pages.push_back(PageIndex{p});
  }
  return pages;
}

}  // namespace medes
