#include "workload/trace.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "common/hash.h"
#include "common/logging.h"
#include "common/rng.h"

namespace medes {

std::vector<ArrivalPattern> DefaultAzurePatterns() {
  // Rates are pre-scaling (the 5x magnification is applied by TraceOptions).
  // The mix follows the Azure trace characterisation: a couple of steady
  // services, several timers, and several bursty rarely-invoked functions.
  std::vector<ArrivalPattern> patterns;
  auto add = [&](const std::string& name, ArrivalKind kind, double rate,
                 SimDuration on = 60 * kSecond, SimDuration off = 240 * kSecond) {
    ArrivalPattern p;
    p.function = ProfileByName(name).id;
    p.kind = kind;
    p.rate_per_s = rate;
    p.mean_on = on;
    p.mean_off = off;
    patterns.push_back(p);
  };
  // Azure-like mix: mostly bursty, rarely-invoked functions (whose idle
  // fleets keep-alive policies struggle with), one steady API-style source,
  // and one timer. OFF-period means straddle the 10-minute keep-alive
  // horizon, which is exactly the regime the paper evaluates.
  add("Vanilla", ArrivalKind::kBursty, 12.0, 30 * kSecond, 350 * kSecond);
  add("LinAlg", ArrivalKind::kPeriodic, 1.0 / 30.0);
  add("ImagePro", ArrivalKind::kBursty, 10.0, 45 * kSecond, 250 * kSecond);
  add("VideoPro", ArrivalKind::kBursty, 5.0, 60 * kSecond, 400 * kSecond);
  add("MapReduce", ArrivalKind::kBursty, 5.0, 60 * kSecond, 700 * kSecond);
  add("HTMLServe", ArrivalKind::kBursty, 14.0, 90 * kSecond, 280 * kSecond);
  add("AuthEnc", ArrivalKind::kPoisson, 6.0);
  add("FeatureGen", ArrivalKind::kBursty, 8.0, 60 * kSecond, 330 * kSecond);
  add("RNNModel", ArrivalKind::kBursty, 7.0, 60 * kSecond, 450 * kSecond);
  add("ModelTrain", ArrivalKind::kBursty, 3.5, 90 * kSecond, 550 * kSecond);
  return patterns;
}

std::vector<ArrivalPattern> PatternsForFunctions(const std::vector<std::string>& names) {
  std::vector<ArrivalPattern> all = DefaultAzurePatterns();
  std::vector<ArrivalPattern> out;
  for (const std::string& name : names) {
    FunctionId id = ProfileByName(name).id;
    auto it = std::find_if(all.begin(), all.end(),
                           [&](const ArrivalPattern& p) { return p.function == id; });
    if (it == all.end()) {
      throw std::out_of_range("no pattern for function: " + name);
    }
    out.push_back(*it);
  }
  return out;
}

namespace {

// Every generator emits *sorted runs*: each run is ascending in time, so
// GenerateTrace can k-way merge them instead of globally sorting. Pattern
// RNG draws are sequenced exactly as in the original append-then-sort code
// (one Rng per pattern, shared across a periodic pattern's streams), so the
// generated arrivals — and, because TraceEvent is only (time, function), the
// merged output — are byte-identical to what the global sort produced.

void GeneratePoisson(const ArrivalPattern& p, const TraceOptions& opts, Rng& rng,
                     std::vector<std::vector<TraceEvent>>& runs) {
  const double rate = p.rate_per_s * opts.rate_scale;
  if (rate <= 0) {
    return;
  }
  std::vector<TraceEvent> run;
  double t = 0;
  const double horizon = ToSeconds(opts.duration);
  while (true) {
    t += rng.Exponential(rate);
    if (t >= horizon) {
      break;
    }
    run.push_back({SimTime{} + FromSeconds(t), p.function});
  }
  runs.push_back(std::move(run));
}

void GeneratePeriodic(const ArrivalPattern& p, const TraceOptions& opts, Rng& rng,
                      std::vector<std::vector<TraceEvent>>& runs) {
  // Scaling a timer workload k-fold = k staggered timer streams. One run per
  // stream — each stream is ascending on its own, the pattern as a whole is
  // not.
  const auto streams = std::max<int>(1, static_cast<int>(opts.rate_scale));
  const double period = 1.0 / p.rate_per_s;
  const double horizon = ToSeconds(opts.duration);
  for (int s = 0; s < streams; ++s) {
    std::vector<TraceEvent> run;
    double t = rng.NextDouble() * period;  // random phase
    while (t < horizon) {
      run.push_back({SimTime{} + FromSeconds(t), p.function});
      double jitter = 1.0 + p.jitter_fraction * (2.0 * rng.NextDouble() - 1.0);
      t += period * jitter;
    }
    runs.push_back(std::move(run));
  }
}

void GenerateBursty(const ArrivalPattern& p, const TraceOptions& opts, Rng& rng,
                    std::vector<std::vector<TraceEvent>>& runs) {
  // ON/OFF Markov-modulated Poisson process.
  const double on_rate = p.rate_per_s * opts.rate_scale;
  const double horizon = ToSeconds(opts.duration);
  std::vector<TraceEvent> run;
  double t = 0;
  bool on = rng.Bernoulli(ToSeconds(p.mean_on) /
                          (ToSeconds(p.mean_on) + ToSeconds(p.mean_off)));
  while (t < horizon) {
    double phase_len = rng.Exponential(1.0 / ToSeconds(on ? p.mean_on : p.mean_off));
    double phase_end = std::min(horizon, t + phase_len);
    if (on && on_rate > 0) {
      double a = t;
      while (true) {
        a += rng.Exponential(on_rate);
        if (a >= phase_end) {
          break;
        }
        run.push_back({SimTime{} + FromSeconds(a), p.function});
      }
    }
    t = phase_end;
    on = !on;
  }
  runs.push_back(std::move(run));
}

}  // namespace

std::vector<TraceEvent> GenerateTrace(const std::vector<ArrivalPattern>& patterns,
                                      const TraceOptions& options) {
  std::vector<std::vector<TraceEvent>> runs;
  for (const ArrivalPattern& p : patterns) {
    Rng rng(HashCombine(options.seed, static_cast<uint64_t>(p.function) + 0x77));
    switch (p.kind) {
      case ArrivalKind::kPoisson:
        GeneratePoisson(p, options, rng, runs);
        break;
      case ArrivalKind::kPeriodic:
        GeneratePeriodic(p, options, rng, runs);
        break;
      case ArrivalKind::kBursty:
        GenerateBursty(p, options, rng, runs);
        break;
    }
  }

  size_t total = 0;
  for (const auto& run : runs) {
    total += run.size();
  }
  const size_t emit = std::min(total, options.max_events);
  if (emit < total) {
    MEDES_LOG(kWarn) << "GenerateTrace: truncating trace to max_events=" << options.max_events
                     << " (dropping " << (total - emit) << " of " << total
                     << " generated arrivals)";
  }

  // K-way merge of the sorted runs by (time, function) — k is a handful of
  // runs, n can be millions of events.
  struct Head {
    TraceEvent ev;
    size_t run;
    size_t pos;
  };
  const auto after = [](const Head& a, const Head& b) {
    if (a.ev.time != b.ev.time) {
      return a.ev.time > b.ev.time;
    }
    if (a.ev.function != b.ev.function) {
      return a.ev.function > b.ev.function;
    }
    return a.run > b.run;
  };
  std::priority_queue<Head, std::vector<Head>, decltype(after)> heads(after);
  for (size_t r = 0; r < runs.size(); ++r) {
    if (!runs[r].empty()) {
      heads.push({runs[r][0], r, 0});
    }
  }
  std::vector<TraceEvent> trace;
  trace.reserve(emit);
  while (trace.size() < emit) {
    const Head h = heads.top();
    heads.pop();
    trace.push_back(h.ev);
    if (h.pos + 1 < runs[h.run].size()) {
      heads.push({runs[h.run][h.pos + 1], h.run, h.pos + 1});
    }
  }
  return trace;
}

std::vector<size_t> CountPerFunction(const std::vector<TraceEvent>& trace) {
  FunctionId max_id = -1;
  for (const TraceEvent& e : trace) {
    max_id = std::max(max_id, e.function);
  }
  std::vector<size_t> counts(static_cast<size_t>(max_id + 1), 0);
  for (const TraceEvent& e : trace) {
    ++counts[static_cast<size_t>(e.function)];
  }
  return counts;
}

}  // namespace medes
