// Synthetic Azure-Functions-like request traces.
//
// The paper drives its evaluation with arrival patterns from the Azure
// Functions production traces (Shahrad et al., ATC'20), magnified 5x and
// assigned to the ten FunctionBench functions. Those traces are not
// redistributable, so we synthesise the load regimes the trace
// characterisation reports:
//   - Poisson: steady independent arrivals (API-style traffic);
//   - periodic: timer-triggered functions with near-fixed periods + jitter;
//   - bursty: ON/OFF Markov-modulated Poisson (most Azure functions are
//     invoked rarely but in bursts).
// Each FunctionBench function gets a pattern and a base rate; `rate_scale`
// reproduces the paper's 5x magnification.
#ifndef MEDES_WORKLOAD_TRACE_H_
#define MEDES_WORKLOAD_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"
#include "memstate/profiles.h"

namespace medes {

struct TraceEvent {
  SimTime time;
  FunctionId function = -1;
};

enum class ArrivalKind {
  kPoisson,
  kPeriodic,
  kBursty,
};

struct ArrivalPattern {
  FunctionId function = -1;
  ArrivalKind kind = ArrivalKind::kPoisson;
  // kPoisson: mean rate (req/s) before scaling.
  // kPeriodic: 1/period (req/s); jitter_fraction applies to the period.
  // kBursty: rate while ON; duty cycle from on/off means below.
  double rate_per_s = 0.1;
  double jitter_fraction = 0.1;          // periodic only
  SimDuration mean_on = 60 * kSecond;    // bursty only
  SimDuration mean_off = 240 * kSecond;  // bursty only
};

struct TraceOptions {
  SimDuration duration = kHour;
  double rate_scale = 5.0;  // the paper's 5x magnification
  uint64_t seed = 0xa22e;
  // Hard ceiling on generated events. A runaway duration x rate_scale
  // combination is truncated to the earliest `max_events` arrivals, with a
  // kWarn log stating exactly how many were dropped — never silently.
  size_t max_events = 50'000'000;
};

// The default pattern assignment for the ten FunctionBench functions.
std::vector<ArrivalPattern> DefaultAzurePatterns();

// Patterns restricted to a subset of functions by name (e.g. the paper's
// representative set {LinAlg, FeatureGen, ModelTrain} in Section 7.5).
std::vector<ArrivalPattern> PatternsForFunctions(const std::vector<std::string>& names);

// Generates a time-sorted trace for the given patterns. Each pattern (and,
// for periodic patterns, each staggered stream) is produced as an already
// sorted run; the runs are k-way merged into the pre-sized output instead of
// append-then-global-sort, so generation stays O(n log k).
std::vector<TraceEvent> GenerateTrace(const std::vector<ArrivalPattern>& patterns,
                                      const TraceOptions& options);

// Per-function request counts in a trace (indexed by FunctionId; sized to the
// max id + 1).
std::vector<size_t> CountPerFunction(const std::vector<TraceEvent>& trace);

}  // namespace medes

#endif  // MEDES_WORKLOAD_TRACE_H_
