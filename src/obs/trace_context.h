// Per-request causal trace identity (Dapper-style), propagated from the
// platform's arrival handler through the dedup agent, registry, RDMA fabric
// and transport so every span of one invocation shares a trace id and links
// to its parent span.
//
// A TraceContext is three 64-bit values: the trace id (minted once per
// request from the platform's serial request sequence), the current span id,
// and the parent span id. Child contexts are derived with Child(name,
// ordinal) — a pure mix of (trace id, parent span id, name hash, ordinal) —
// so ids are reproducible at any thread count: two runs that record the same
// spans assign them the same ids, byte for byte.
//
// Contexts are tri-state:
//   - sampled   (trace_id != 0): spans record and carry ids.
//   - untraced  (all zero, the default): legacy call sites with no caller
//     context; spans record exactly as before this layer existed, without
//     ids. Child() of an untraced context is untraced.
//   - dropped   (trace_id == 0, span_id != 0): the request was minted but
//     lost the sampling draw; every downstream span is suppressed so
//     million-request campaigns stay cheap under MEDES_TRACE_SAMPLE=1/N.
//
// Sampling is head-based and deterministic: the keep/drop decision is a pure
// function of the trace id (itself a pure function of the request sequence
// number), never of thread timing, so the sampled span set is bit-identical
// across MEDES_THREADS settings and across runs.
#ifndef MEDES_OBS_TRACE_CONTEXT_H_
#define MEDES_OBS_TRACE_CONTEXT_H_

#include <cstdint>

#include "common/time.h"
#include "obs/obs.h"

namespace medes::obs {

namespace internal {

// SplitMix64 finalizer (same constants as common/rng.h): a strong 64-bit
// mixer, constexpr so id derivation is a compile-time-checkable pure function.
constexpr uint64_t MixTraceBits(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// FNV-1a over the span name: names are string literals, so hashing the
// characters (not the pointer) keeps ids stable across builds and TUs.
constexpr uint64_t HashSpanName(const char* s) {
  uint64_t h = 0xcbf29ce484222325ull;
  while (*s != '\0') {
    h ^= static_cast<unsigned char>(*s++);
    h *= 0x100000001b3ull;
  }
  return h;
}

// Ids are masked to 63 bits so they export as non-negative JSON integers.
inline constexpr uint64_t kSpanIdMask = 0x7fffffffffffffffull;

}  // namespace internal

struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;

  bool sampled() const { return trace_id != 0; }
  bool dropped() const { return trace_id == 0 && span_id != 0; }

  static TraceContext Dropped() { return TraceContext{0, 1, 0}; }

  // Derives the context for a child span. `ordinal` disambiguates siblings
  // that share a name (batch index, read index, shard index); it must be a
  // deterministic function of the work item, never of scheduling order.
  TraceContext Child(const char* name, uint64_t ordinal = 0) const {
    if (trace_id == 0) {
      return *this;  // untraced stays untraced; dropped stays dropped
    }
    uint64_t id = internal::MixTraceBits(trace_id ^ (span_id * 0x9e3779b97f4a7c15ull) ^
                                         internal::HashSpanName(name) ^
                                         ordinal * 0xff51afd7ed558ccdull) &
                  internal::kSpanIdMask;
    if (id == 0) {
      id = 1;
    }
    return TraceContext{trace_id, id, span_id};
  }
};

// Trace envelope for a transport message: the PARENT context of the message
// span (the callee derives the per-message child), the modelled send time in
// the caller's timeline, and a caller-chosen ordinal disambiguating multiple
// messages under the same parent. Layers that fan one logical request into
// several wire messages (registry shards, per-owner-node RDMA batches) fold
// their own index into `ordinal` before forwarding.
struct MessageTrace {
  TraceContext ctx;
  SimTime at{};
  uint64_t ordinal = 0;
};

// Mints the root context for request number `seq`. The trace id is a
// SplitMix64 mix of the sequence number; the root span id equals the trace
// id. Returns an untraced context when tracing is off, and a Dropped()
// context when the id loses the 1-in-TraceSampleEvery() draw.
inline TraceContext MintTraceContext(uint64_t seq) {
  if (!TraceEnabled()) {
    return TraceContext{};
  }
  uint64_t id = internal::MixTraceBits(seq ^ 0x6d65646573ull) & internal::kSpanIdMask;
  if (id == 0) {
    id = 1;
  }
  const uint32_t every = TraceSampleEvery();
  if (every > 1 && internal::MixTraceBits(id) % every != 0) {
    return TraceContext::Dropped();
  }
  return TraceContext{id, id, 0};
}

}  // namespace medes::obs

#endif  // MEDES_OBS_TRACE_CONTEXT_H_
