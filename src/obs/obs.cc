#include "obs/obs.h"

#ifndef MEDES_OBS_DISABLED

#include <cstdlib>
#include <cstring>

namespace medes::obs {
namespace internal {

std::atomic<int> g_trace_enabled{-1};
std::atomic<int> g_metrics_enabled{-1};
std::atomic<int> g_wall_profiling{-1};
std::atomic<int64_t> g_trace_sample_every{-1};

bool SlowInit(std::atomic<int>& flag, const char* env_var) {
  const char* env = std::getenv(env_var);
  const bool on = env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
  // A concurrent SetXxxEnabled wins over the environment default.
  int expected = -1;
  flag.compare_exchange_strong(expected, on ? 1 : 0, std::memory_order_relaxed);
  return flag.load(std::memory_order_relaxed) != 0;
}

unsigned SlowInitSampleEvery() {
  const char* env = std::getenv("MEDES_TRACE_SAMPLE");
  int64_t every = 1;
  if (env != nullptr && *env != '\0') {
    // Accept "1/N" (keep one trace in N) or a bare "N".
    const char* digits = env;
    if (digits[0] == '1' && digits[1] == '/') {
      digits += 2;
    }
    char* end = nullptr;
    const long parsed = std::strtol(digits, &end, 10);
    if (end != digits && *end == '\0' && parsed >= 1) {
      every = parsed;
    }
  }
  // A concurrent SetTraceSampleEvery wins over the environment default.
  int64_t expected = -1;
  g_trace_sample_every.compare_exchange_strong(expected, every, std::memory_order_relaxed);
  return static_cast<unsigned>(g_trace_sample_every.load(std::memory_order_relaxed));
}

}  // namespace internal

void SetTraceEnabled(bool enabled) {
  internal::g_trace_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  internal::g_metrics_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void SetWallClockProfiling(bool enabled) {
  internal::g_wall_profiling.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void SetTraceSampleEvery(unsigned every) {
  internal::g_trace_sample_every.store(every >= 1 ? static_cast<int64_t>(every) : 1,
                                       std::memory_order_relaxed);
}

}  // namespace medes::obs

#endif  // MEDES_OBS_DISABLED
