#include "obs/obs.h"

#ifndef MEDES_OBS_DISABLED

#include <cstdlib>
#include <cstring>

namespace medes::obs {
namespace internal {

std::atomic<int> g_trace_enabled{-1};
std::atomic<int> g_metrics_enabled{-1};
std::atomic<int> g_wall_profiling{-1};

bool SlowInit(std::atomic<int>& flag, const char* env_var) {
  const char* env = std::getenv(env_var);
  const bool on = env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
  // A concurrent SetXxxEnabled wins over the environment default.
  int expected = -1;
  flag.compare_exchange_strong(expected, on ? 1 : 0, std::memory_order_relaxed);
  return flag.load(std::memory_order_relaxed) != 0;
}

}  // namespace internal

void SetTraceEnabled(bool enabled) {
  internal::g_trace_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  internal::g_metrics_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void SetWallClockProfiling(bool enabled) {
  internal::g_wall_profiling.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace medes::obs

#endif  // MEDES_OBS_DISABLED
