#include "obs/trace.h"

#include <algorithm>
#include <cstring>
#include <tuple>
#include <utility>

namespace medes::obs {

namespace {

// Canonical content order: erases buffer/flush interleaving so Drain() is
// deterministic whenever the recorded set is. wall_ns is deliberately
// excluded — it is nondeterministic by nature and never compared.
bool SpanLess(const Span& a, const Span& b) {
  if (a.ts != b.ts) {
    return a.ts < b.ts;
  }
  if (a.lane != b.lane) {
    return a.lane < b.lane;
  }
  if (const int c = std::strcmp(a.name, b.name); c != 0) {
    return c < 0;
  }
  if (const int c = std::strcmp(a.category, b.category); c != 0) {
    return c < 0;
  }
  if (a.dur != b.dur) {
    return a.dur < b.dur;
  }
  if (a.num_args != b.num_args) {
    return a.num_args < b.num_args;
  }
  for (uint32_t i = 0; i < a.num_args; ++i) {
    if (const int c = std::strcmp(a.args[i].key, b.args[i].key); c != 0) {
      return c < 0;
    }
    if (a.args[i].value != b.args[i].value) {
      return a.args[i].value < b.args[i].value;
    }
  }
  if (a.trace_id != b.trace_id) {
    return a.trace_id < b.trace_id;
  }
  if (a.span_id != b.span_id) {
    return a.span_id < b.span_id;
  }
  return a.parent_span_id < b.parent_span_id;
}

ThreadSpanBuffer& LocalBuffer() {
  static thread_local ThreadSpanBuffer buffer;
  return buffer;
}

}  // namespace

Tracer& Tracer::Default() {
  static Tracer* tracer = new Tracer();  // intentionally leaked
  return *tracer;
}

void Tracer::Record(const Span& span) { LocalBuffer().Append(span); }

void Tracer::RegisterBuffer(ThreadSpanBuffer* buffer) {
  MutexLock lock(registry_mu_);
  buffers_.push_back(buffer);
}

void Tracer::UnregisterBuffer(ThreadSpanBuffer* buffer) {
  std::vector<Span> remaining;
  {
    MutexLock lock(registry_mu_);
    buffers_.erase(std::remove(buffers_.begin(), buffers_.end(), buffer), buffers_.end());
    MutexLock buffer_lock(buffer->mu);
    remaining = std::move(buffer->spans);
    buffer->spans.clear();
  }
  if (!remaining.empty()) {
    PushChunk(std::move(remaining));
  }
}

void Tracer::PushChunk(std::vector<Span> spans) {
  auto* chunk = new Chunk{std::move(spans), nullptr};
  Chunk* head = chunks_.load(std::memory_order_relaxed);
  do {
    chunk->next = head;
  } while (!chunks_.compare_exchange_weak(head, chunk, std::memory_order_release,
                                          std::memory_order_relaxed));
}

std::vector<Span> Tracer::Drain() {
  std::vector<Span> out;
  // Steal the live threads' partial buffers first, so their contents cannot
  // race past the chunk-stack exchange below as a fresh flush.
  {
    MutexLock lock(registry_mu_);
    for (ThreadSpanBuffer* buffer : buffers_) {
      MutexLock buffer_lock(buffer->mu);
      out.insert(out.end(), buffer->spans.begin(), buffer->spans.end());
      buffer->spans.clear();
    }
  }
  Chunk* head = chunks_.exchange(nullptr, std::memory_order_acquire);
  while (head != nullptr) {
    out.insert(out.end(), head->spans.begin(), head->spans.end());
    Chunk* next = head->next;
    delete head;
    head = next;
  }
  std::sort(out.begin(), out.end(), SpanLess);
  return out;
}

void Tracer::Clear() { Drain(); }

ThreadSpanBuffer::ThreadSpanBuffer() { Tracer::Default().RegisterBuffer(this); }

ThreadSpanBuffer::~ThreadSpanBuffer() { Tracer::Default().UnregisterBuffer(this); }

void ThreadSpanBuffer::Append(const Span& span) {
  std::vector<Span> full;
  {
    MutexLock lock(mu);
    spans.push_back(span);
    if (spans.size() < kFlushThreshold) {
      return;
    }
    full = std::move(spans);
    spans.clear();
    spans.reserve(kFlushThreshold);
  }
  Tracer::Default().PushChunk(std::move(full));
}

void RecordInstant(const char* name, const char* category, SimTime ts, int32_t lane) {
  if (!TraceEnabled()) {
    return;
  }
  Span span;
  span.name = name;
  span.category = category;
  span.ts = ts;
  span.lane = lane;
  span.dur = kInstantDuration;
  Tracer::Default().Record(span);
}

void RecordInstant(const char* name, const char* category, SimTime ts, int32_t lane,
                   const TraceContext& ctx) {
  if (!TraceEnabled() || ctx.dropped()) {
    return;
  }
  Span span;
  span.name = name;
  span.category = category;
  span.ts = ts;
  span.lane = lane;
  span.dur = kInstantDuration;
  span.trace_id = ctx.trace_id;
  span.span_id = ctx.span_id;
  span.parent_span_id = ctx.parent_span_id;
  Tracer::Default().Record(span);
}

}  // namespace medes::obs
