// Critical-path analysis over sampled trace spans.
//
// Reconstructs each sampled request's span tree from the trace/span/parent
// ids the causal-tracing layer stamps (obs/trace_context.h), then attributes
// every microsecond of a root span's interval to exactly one stage:
//
//   - children are visited in (ts, span_id) order and clipped to the portion
//     of the parent's window not already covered by an earlier sibling (a
//     left-to-right sweep), so sibling overlap — parallel fan-out like
//     per-shard registry messages — is never double-counted;
//   - time not covered by any child is the parent's *self* time;
//   - the per-stage self times of one trace therefore sum exactly to the
//     root span's duration, which is what lets the bench gate assert that
//     attribution fractions sum to ~1 of the measured latency.
//
// Everything here is a pure function of the span set: given the same spans
// (bit-identical across MEDES_THREADS by the tracing determinism contract),
// trees, attributions, and summaries are bit-identical too.
#ifndef MEDES_OBS_CRITICAL_PATH_H_
#define MEDES_OBS_CRITICAL_PATH_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace medes::obs {

struct TraceNode {
  size_t span = 0;  // index into the span vector passed to BuildTraceTrees
  std::vector<size_t> children;  // node indexes, (ts, span_id)-ordered
};

struct TraceTree {
  uint64_t trace_id = 0;
  size_t root = 0;  // node index
  std::vector<TraceNode> nodes;
  // Spans whose parent_span_id did not resolve to a recorded span (or extra
  // parentless spans besides the root): attached under the root and counted.
  size_t unresolved_parents = 0;
};

// Groups spans carrying a nonzero trace id into one tree per trace, ordered
// by ascending trace id. The root is the span whose id equals the trace id
// (minting makes the root span id the trace id); a trace missing it falls
// back to its earliest parentless span. Untraced spans (trace_id == 0) are
// ignored.
[[nodiscard]] std::vector<TraceTree> BuildTraceTrees(const std::vector<Span>& spans);

// First node (in (ts, span_id) order) whose span name equals `name`, or
// nullopt. Used to re-root attribution at an interior op (e.g. "restore_op").
[[nodiscard]] std::optional<size_t> FindNode(const std::vector<Span>& spans,
                                            const TraceTree& tree, const char* name);

struct StageSelf {
  std::string stage;   // span name
  int64_t self_us = 0; // exclusive time attributed to this stage
};

struct TraceAttribution {
  uint64_t trace_id = 0;
  int64_t total_us = 0;            // the attributed root's duration
  std::vector<StageSelf> stages;   // merged per stage name, name-sorted
};

// Attributes the interval of `node`'s span across its subtree (see file
// comment). The per-stage self times sum exactly to `total_us`.
[[nodiscard]] TraceAttribution AttributeSubtree(const std::vector<Span>& spans,
                                                const TraceTree& tree, size_t node);

// AttributeSubtree at the tree's root.
[[nodiscard]] TraceAttribution AttributeTrace(const std::vector<Span>& spans,
                                              const TraceTree& tree);

struct StageStats {
  std::string stage;
  uint64_t traces = 0;   // traces in which the stage appeared
  int64_t total_us = 0;  // summed self time across traces
  int64_t p50_us = 0;    // nearest-rank percentiles of per-trace self time
  int64_t p99_us = 0;
  double fraction = 0.0;  // total_us / sum of all traces' totals
};

struct AttributionSummary {
  uint64_t traces = 0;
  int64_t total_us = 0;  // sum of per-trace totals
  int64_t p50_total_us = 0;
  int64_t p99_total_us = 0;
  std::vector<StageStats> stages;    // name-sorted
  // Indexes into the summarized attribution vector: slowest first (total
  // duration descending, trace id ascending on ties), at most `top_k`.
  std::vector<size_t> top_slowest;
};

// Aggregates per-trace attributions: per-stage totals, nearest-rank P50/P99
// over per-trace self times, fractions of the grand total, and the top-k
// slowest traces.
[[nodiscard]] AttributionSummary Summarize(const std::vector<TraceAttribution>& attributions,
                                           size_t top_k);

}  // namespace medes::obs

#endif  // MEDES_OBS_CRITICAL_PATH_H_
