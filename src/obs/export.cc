#include "obs/export.h"

#include <atomic>
#include <cinttypes>
#include <cstdint>
#include <cstdio>

#include "store/artifact_sink.h"

namespace medes::obs {

namespace {

void AppendJsonEscaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void AppendInt(std::string& out, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

void AppendUint(std::string& out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

// `name{key="value"} ` or `name ` when unlabelled; `extra` (e.g. le="...")
// joins any series label inside the braces.
void AppendPromSeries(std::string& out, const MetricSnapshot& snap, std::string_view suffix,
                      std::string_view extra = {}) {
  out += snap.name;
  out += suffix;
  if (!snap.label_key.empty() || !extra.empty()) {
    out += '{';
    if (!snap.label_key.empty()) {
      out += snap.label_key;
      out += "=\"";
      out += snap.label_value;
      out += '"';
      if (!extra.empty()) {
        out += ',';
      }
    }
    out += extra;
    out += '}';
  }
  out += ' ';
}

}  // namespace

std::string ChromeTraceJson(const std::vector<Span>& spans) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const Span& span : spans) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "\n{\"name\":\"";
    AppendJsonEscaped(out, span.name);
    out += "\",\"cat\":\"";
    AppendJsonEscaped(out, span.category);
    out += "\",\"ph\":\"";
    const bool instant = span.dur == kInstantDuration;
    out += instant ? 'i' : 'X';
    out += "\",\"ts\":";
    AppendInt(out, span.ts.value());
    if (!instant) {
      out += ",\"dur\":";
      AppendInt(out, span.dur.value());
    }
    out += ",\"pid\":0,\"tid\":";
    AppendInt(out, span.lane);
    if (instant) {
      out += ",\"s\":\"t\"";  // thread-scoped instant marker
    }
    if (span.num_args > 0 || span.wall_ns >= 0 || span.trace_id != 0) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (uint32_t i = 0; i < span.num_args; ++i) {
        if (!first_arg) {
          out += ',';
        }
        first_arg = false;
        out += '"';
        AppendJsonEscaped(out, span.args[i].key);
        out += "\":";
        AppendInt(out, span.args[i].value);
      }
      if (span.trace_id != 0) {
        if (!first_arg) {
          out += ',';
        }
        first_arg = false;
        out += "\"trace_id\":";
        AppendUint(out, span.trace_id);
        out += ",\"span_id\":";
        AppendUint(out, span.span_id);
        if (span.parent_span_id != 0) {
          out += ",\"parent_span_id\":";
          AppendUint(out, span.parent_span_id);
        }
      }
      if (span.wall_ns >= 0) {
        if (!first_arg) {
          out += ',';
        }
        out += "\"wall_ns\":";
        AppendInt(out, span.wall_ns);
      }
      out += '}';
    }
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

std::string PrometheusText(const std::vector<MetricSnapshot>& snapshots) {
  std::string out;
  std::string_view last_name;
  for (const MetricSnapshot& snap : snapshots) {
    if (snap.name != last_name) {
      // One HELP/TYPE header per metric family (input is sorted by name, so
      // all of a family's labelled series are contiguous).
      out += "# HELP ";
      out += snap.name;
      out += ' ';
      out += snap.help;
      out += "\n# TYPE ";
      out += snap.name;
      out += ' ';
      out += ToString(snap.kind);
      out += '\n';
      last_name = snap.name;
    }
    switch (snap.kind) {
      case InstrumentKind::kCounter:
      case InstrumentKind::kGauge:
        AppendPromSeries(out, snap, "");
        AppendInt(out, snap.value);
        out += '\n';
        break;
      case InstrumentKind::kHistogram: {
        uint64_t cumulative = 0;
        for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
          cumulative += snap.buckets[b];
          std::string le = "le=\"";
          if (b + 1 == Histogram::kNumBuckets) {
            le += "+Inf";
          } else {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%" PRId64, Histogram::BucketUpperBound(b));
            le += buf;
          }
          le += '"';
          AppendPromSeries(out, snap, "_bucket", le);
          AppendUint(out, cumulative);
          out += '\n';
        }
        AppendPromSeries(out, snap, "_sum");
        AppendInt(out, snap.sum);
        out += '\n';
        AppendPromSeries(out, snap, "_count");
        AppendUint(out, snap.count);
        out += '\n';
        break;
      }
    }
  }
  return out;
}

std::string MetricsJson(const std::vector<MetricSnapshot>& snapshots) {
  std::string out = "[";
  bool first = true;
  for (const MetricSnapshot& snap : snapshots) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "\n{\"name\":\"";
    AppendJsonEscaped(out, snap.name);
    out += "\",\"kind\":\"";
    out += ToString(snap.kind);
    out += '"';
    if (!snap.label_key.empty()) {
      out += ",\"";
      AppendJsonEscaped(out, snap.label_key);
      out += "\":\"";
      AppendJsonEscaped(out, snap.label_value);
      out += '"';
    }
    if (snap.kind == InstrumentKind::kHistogram) {
      out += ",\"count\":";
      AppendUint(out, snap.count);
      out += ",\"sum\":";
      AppendInt(out, snap.sum);
      out += ",\"buckets\":[";
      for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
        if (b > 0) {
          out += ',';
        }
        AppendUint(out, snap.buckets[b]);
      }
      out += ']';
    } else {
      out += ",\"value\":";
      AppendInt(out, snap.value);
    }
    out += '}';
  }
  out += "\n]\n";
  return out;
}

std::string SeriesJson(const std::vector<SnapshotSeries::Point>& points) {
  std::string out = "[";
  bool first_point = true;
  for (const SnapshotSeries::Point& point : points) {
    if (!first_point) {
      out += ',';
    }
    first_point = false;
    out += "\n{\"t\":";
    AppendInt(out, point.t.value());
    out += ",\"values\":{";
    bool first_value = true;
    for (const auto& [key, value] : point.values) {
      if (!first_value) {
        out += ',';
      }
      first_value = false;
      out += '"';
      AppendJsonEscaped(out, key);
      out += "\":";
      AppendInt(out, value);
    }
    out += "}}";
  }
  out += "\n]\n";
  return out;
}

namespace {

std::atomic<FileSink> g_file_sink{nullptr};

}  // namespace

void SetFileSink(FileSink sink) { g_file_sink.store(sink, std::memory_order_relaxed); }

bool WriteFile(const std::string& path, std::string_view content) {
  const FileSink sink = g_file_sink.load(std::memory_order_relaxed);
  if (sink != nullptr) {
    return sink(path, content);
  }
  return store::WriteArtifactFile(path, content);
}

}  // namespace medes::obs
