#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <tuple>
#include <utility>

namespace medes::obs {

const char* ToString(InstrumentKind kind) {
  switch (kind) {
    case InstrumentKind::kCounter:
      return "counter";
    case InstrumentKind::kGauge:
      return "gauge";
    case InstrumentKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();  // intentionally leaked
  return *registry;
}

MetricsRegistry::Instrument& MetricsRegistry::GetOrCreate(InstrumentKind kind,
                                                          std::string_view name,
                                                          std::string_view help,
                                                          std::string_view label_key,
                                                          std::string_view label_value) {
  for (const auto& instrument : instruments_) {
    if (instrument->name == name && instrument->label_key == label_key &&
        instrument->label_value == label_value) {
      if (instrument->kind != kind) {
        std::fprintf(stderr, "obs: instrument \"%.*s\" registered as %s, requested as %s\n",
                     static_cast<int>(name.size()), name.data(), ToString(instrument->kind),
                     ToString(kind));
        std::abort();
      }
      return *instrument;
    }
  }
  if (instruments_.size() >= max_series_) {
    // Cardinality guard: absorb the registration into the per-kind overflow
    // sink so the caller still gets a live instrument, and count the drop.
    ++dropped_series_;
    if (!overflow_warned_) {
      overflow_warned_ = true;
      std::fprintf(stderr,
                   "obs: metrics registry hit its %zu-series cap registering \"%.*s\"; "
                   "further new series are dropped (see medes_obs_series_dropped_total)\n",
                   max_series_, static_cast<int>(name.size()), name.data());
    }
    auto& sink = overflow_.at(static_cast<size_t>(kind));
    if (sink == nullptr) {
      sink = std::make_unique<Instrument>();
      sink->kind = kind;
      sink->name = "medes_obs_series_overflow";
      sink->help = "Overflow sink for series past the cardinality cap";
      switch (kind) {
        case InstrumentKind::kCounter:
          sink->counter = std::make_unique<Counter>();
          break;
        case InstrumentKind::kGauge:
          sink->gauge = std::make_unique<Gauge>();
          break;
        case InstrumentKind::kHistogram:
          sink->histogram = std::make_unique<Histogram>();
          break;
      }
    }
    return *sink;
  }
  auto instrument = std::make_unique<Instrument>();
  instrument->kind = kind;
  instrument->name = std::string(name);
  instrument->help = std::string(help);
  instrument->label_key = std::string(label_key);
  instrument->label_value = std::string(label_value);
  switch (kind) {
    case InstrumentKind::kCounter:
      instrument->counter = std::make_unique<Counter>();
      break;
    case InstrumentKind::kGauge:
      instrument->gauge = std::make_unique<Gauge>();
      break;
    case InstrumentKind::kHistogram:
      instrument->histogram = std::make_unique<Histogram>();
      break;
  }
  instruments_.push_back(std::move(instrument));
  return *instruments_.back();
}

Counter& MetricsRegistry::GetCounter(std::string_view name, std::string_view help,
                                     std::string_view label_key, std::string_view label_value) {
  MutexLock lock(mu_);
  return *GetOrCreate(InstrumentKind::kCounter, name, help, label_key, label_value).counter;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name, std::string_view help,
                                 std::string_view label_key, std::string_view label_value) {
  MutexLock lock(mu_);
  return *GetOrCreate(InstrumentKind::kGauge, name, help, label_key, label_value).gauge;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name, std::string_view help,
                                         std::string_view label_key,
                                         std::string_view label_value) {
  MutexLock lock(mu_);
  return *GetOrCreate(InstrumentKind::kHistogram, name, help, label_key, label_value).histogram;
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::vector<MetricSnapshot> out;
  {
    MutexLock lock(mu_);
    out.reserve(instruments_.size());
    for (const auto& instrument : instruments_) {
      MetricSnapshot snap;
      snap.kind = instrument->kind;
      snap.name = instrument->name;
      snap.help = instrument->help;
      snap.label_key = instrument->label_key;
      snap.label_value = instrument->label_value;
      switch (instrument->kind) {
        case InstrumentKind::kCounter:
          snap.value = static_cast<int64_t>(instrument->counter->Value());
          break;
        case InstrumentKind::kGauge:
          snap.value = instrument->gauge->Value();
          break;
        case InstrumentKind::kHistogram: {
          const Histogram& h = *instrument->histogram;
          for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
            snap.buckets[b] = h.BucketCount(b);
            snap.count += snap.buckets[b];
          }
          snap.sum = h.Sum();
          break;
        }
      }
      out.push_back(std::move(snap));
    }
    if (dropped_series_ > 0) {
      MetricSnapshot snap;
      snap.kind = InstrumentKind::kCounter;
      snap.name = "medes_obs_series_dropped_total";
      snap.help = "Registrations absorbed by the label-cardinality guard";
      snap.value = static_cast<int64_t>(dropped_series_);
      out.push_back(std::move(snap));
    }
  }
  // Registration order depends on which thread first hit each call site;
  // sorting restores a canonical order for export and determinism checks.
  std::sort(out.begin(), out.end(), [](const MetricSnapshot& a, const MetricSnapshot& b) {
    return std::tie(a.name, a.label_key, a.label_value) <
           std::tie(b.name, b.label_key, b.label_value);
  });
  return out;
}

void MetricsRegistry::ResetValues() {
  MutexLock lock(mu_);
  const auto reset = [](const Instrument& instrument) {
    switch (instrument.kind) {
      case InstrumentKind::kCounter:
        instrument.counter->Reset();
        break;
      case InstrumentKind::kGauge:
        instrument.gauge->Reset();
        break;
      case InstrumentKind::kHistogram:
        instrument.histogram->Reset();
        break;
    }
  };
  for (const auto& instrument : instruments_) {
    reset(*instrument);
  }
  for (const auto& sink : overflow_) {
    if (sink != nullptr) {
      reset(*sink);
    }
  }
  dropped_series_ = 0;
}

size_t MetricsRegistry::NumInstruments() const {
  MutexLock lock(mu_);
  return instruments_.size();
}

void MetricsRegistry::SetMaxSeries(size_t max_series) {
  MutexLock lock(mu_);
  max_series_ = max_series;
  overflow_warned_ = false;
}

size_t MetricsRegistry::MaxSeries() const {
  MutexLock lock(mu_);
  return max_series_;
}

uint64_t MetricsRegistry::DroppedSeries() const {
  MutexLock lock(mu_);
  return dropped_series_;
}

SnapshotSeries& SnapshotSeries::Default() {
  static SnapshotSeries* series = new SnapshotSeries();  // intentionally leaked
  return *series;
}

void SnapshotSeries::Sample(SimTime now) {
  if (!MetricsEnabled()) {
    return;
  }
  // Snapshot before taking our own lock: the registry lock (kObsRegistry)
  // ranks below this one and may not be acquired while it is held.
  const std::vector<MetricSnapshot> snaps = MetricsRegistry::Default().Snapshot();
  Point point;
  point.t = now;
  point.values.reserve(snaps.size());
  for (const MetricSnapshot& snap : snaps) {
    if (snap.kind == InstrumentKind::kHistogram) {
      continue;
    }
    std::string key = snap.name;
    if (!snap.label_key.empty()) {
      key += '{';
      key += snap.label_key;
      key += "=\"";
      key += snap.label_value;
      key += "\"}";
    }
    point.values.emplace_back(std::move(key), snap.value);
  }
  MutexLock lock(mu_);
  points_.push_back(std::move(point));
}

std::vector<SnapshotSeries::Point> SnapshotSeries::Points() const {
  MutexLock lock(mu_);
  return points_;
}

void SnapshotSeries::Clear() {
  MutexLock lock(mu_);
  points_.clear();
}

}  // namespace medes::obs
