// Tracing layer: RAII spans with deterministic simulation-time timestamps,
// buffered per thread and drained into a process-wide sink for Chrome
// trace-event export (obs/export.h).
//
// A Span is a fixed-size POD: name and category are string literals, the
// timestamp and duration are simulation time (common/time.h), `lane` selects
// the Chrome-trace "thread" row (we use it for node ids and pipeline lanes),
// and up to kMaxSpanArgs integer arguments ride along as trace args.
//
// Usage:
//
//   obs::ScopedSpan span("restore/base_read", "restore", now, node_id);
//   span.AddArg("pages", num_pages);
//   ... compute modelled cost ...
//   span.SetSimDuration(read_cost);   // else duration stays 0
//
// The span is recorded on scope exit iff TraceEnabled() was true at
// construction. With MEDES_TRACE_WALL=1 the destructor additionally stamps
// the measured wall-clock duration of the scope (wall_ns); wall times are
// nondeterministic and excluded from the bit-identical contract.
//
// Recording appends to a per-thread buffer under a leaf-ranked mutex; full
// buffers are flushed wholesale onto a lock-free chunk stack, so the hot path
// never contends on a global lock. Tracer::Drain() collects everything and
// sorts canonically by content, erasing buffer/flush interleaving — in the
// simulator spans carry sim-time stamps and are emitted by the serial event
// loop, so the drained sequence is bit-identical at any MEDES_THREADS.
#ifndef MEDES_OBS_TRACE_H_
#define MEDES_OBS_TRACE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/time.h"
#include "obs/obs.h"
#include "obs/trace_context.h"

namespace medes::obs {

inline constexpr size_t kMaxSpanArgs = 4;

// Sentinel duration marking an instant event ("i" phase in Chrome trace)
// rather than a complete span ("X" phase).
inline constexpr SimDuration kInstantDuration{-1};

struct SpanArg {
  const char* key = "";
  int64_t value = 0;
};

struct Span {
  const char* name = "";
  const char* category = "";
  SimTime ts;                        // sim-time start (us)
  SimDuration dur;                   // sim-time duration (us); kInstantDuration = instant
  int32_t lane = 0;                  // Chrome-trace tid row (node id / pipeline lane)
  uint32_t num_args = 0;
  std::array<SpanArg, kMaxSpanArgs> args = {};
  int64_t wall_ns = -1;  // measured wall duration; -1 unless MEDES_TRACE_WALL
  // Causal identity (obs/trace_context.h); all zero for untraced spans.
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
};

struct ThreadSpanBuffer;

// Process-wide span sink. Thread-safe; spans are buffered per recording
// thread and only surface via Drain().
class Tracer {
 public:
  static Tracer& Default();

  // Appends one span (no enablement check — ScopedSpan gates on construction;
  // direct callers check TraceEnabled() themselves).
  void Record(const Span& span);

  // Removes and returns every recorded span, sorted canonically by content
  // (ts, lane, name, category, dur, args, trace/span/parent ids; wall_ns
  // excluded) so the result is independent of buffer and flush interleaving.
  std::vector<Span> Drain();

  // Discards all recorded spans.
  void Clear();

 private:
  friend struct ThreadSpanBuffer;

  Tracer() = default;

  struct Chunk {
    std::vector<Span> spans;
    Chunk* next = nullptr;
  };

  void RegisterBuffer(ThreadSpanBuffer* buffer) EXCLUDES(registry_mu_);
  void UnregisterBuffer(ThreadSpanBuffer* buffer) EXCLUDES(registry_mu_);
  void PushChunk(std::vector<Span> spans);

  Mutex registry_mu_{"obs tracer buffers", LockRank::kObsRegistry};
  std::vector<ThreadSpanBuffer*> buffers_ GUARDED_BY(registry_mu_);

  // Lock-free stack of flushed chunks; Drain exchanges the head.
  std::atomic<Chunk*> chunks_{nullptr};
};

// Per-thread span buffer (implementation detail of Tracer; public only so the
// thread_local in trace.cc can name it).
struct ThreadSpanBuffer {
  static constexpr size_t kFlushThreshold = 256;

  ThreadSpanBuffer();
  ~ThreadSpanBuffer();

  void Append(const Span& span) EXCLUDES(mu);

  Mutex mu{"obs thread span buffer", LockRank::kObsBuffer};
  std::vector<Span> spans GUARDED_BY(mu);
};

// RAII span. Records on destruction iff tracing was enabled at construction
// (and, for the context-carrying constructor, the context was not dropped by
// sampling).
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* category, SimTime sim_start, int32_t lane = 0)
      : enabled_(TraceEnabled()) {
    if (!enabled_) {
      return;
    }
    Init(name, category, sim_start, lane);
  }

  // Context-carrying form: the span adopts `ctx`'s identity. A sampled
  // context stamps trace/span/parent ids; an untraced (default) context
  // records without ids; a sampling-dropped context suppresses the span.
  ScopedSpan(const char* name, const char* category, SimTime sim_start, int32_t lane,
             const TraceContext& ctx)
      : enabled_(TraceEnabled() && !ctx.dropped()) {
    if (!enabled_) {
      return;
    }
    Init(name, category, sim_start, lane);
    span_.trace_id = ctx.trace_id;
    span_.span_id = ctx.span_id;
    span_.parent_span_id = ctx.parent_span_id;
  }

  ~ScopedSpan() {
    if (!enabled_) {
      return;
    }
    if (wall_) {
      span_.wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - wall_start_)
                          .count();
    }
    Tracer::Default().Record(span_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  // Sets the modelled duration (defaults to 0 if never called).
  void SetSimDuration(SimDuration dur) {
    if (enabled_) {
      span_.dur = dur;
    }
  }
  // Marks this span as an instant event.
  void SetInstant() {
    if (enabled_) {
      span_.dur = kInstantDuration;
    }
  }
  // Attaches an integer argument (silently dropped past kMaxSpanArgs).
  void AddArg(const char* key, int64_t value) {
    if (enabled_ && span_.num_args < kMaxSpanArgs) {
      span_.args[span_.num_args++] = SpanArg{key, value};
    }
  }

  bool enabled() const { return enabled_; }

 private:
  void Init(const char* name, const char* category, SimTime sim_start, int32_t lane) {
    span_.name = name;
    span_.category = category;
    span_.ts = sim_start;
    span_.lane = lane;
    if (WallClockProfilingEnabled()) {
      wall_ = true;
      wall_start_ = std::chrono::steady_clock::now();
    }
  }

  Span span_;
  bool enabled_ = false;
  bool wall_ = false;
  std::chrono::steady_clock::time_point wall_start_;
};

// Records a standalone instant event (no RAII scope needed).
void RecordInstant(const char* name, const char* category, SimTime ts, int32_t lane = 0);

// Context-carrying instant: stamps ids from a sampled context, suppressed
// for a sampling-dropped one.
void RecordInstant(const char* name, const char* category, SimTime ts, int32_t lane,
                   const TraceContext& ctx);

}  // namespace medes::obs

#endif  // MEDES_OBS_TRACE_H_
