#include "obs/critical_path.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <string_view>
#include <unordered_map>

namespace medes::obs {

namespace {

// Instants (dur == kInstantDuration) occupy no time in the attribution.
int64_t DurOf(const Span& span) {
  return span.dur.value() < 0 ? 0 : span.dur.value();
}

bool SpanOrderLess(const std::vector<Span>& spans, size_t a, size_t b) {
  if (spans[a].ts != spans[b].ts) {
    return spans[a].ts < spans[b].ts;
  }
  return spans[a].span_id < spans[b].span_id;
}

// Left-to-right sweep (see header): attributes node `n`'s window, recursing
// into each child's clipped segment. `self` accumulates per-stage exclusive
// time; keys are the spans' string-literal names (outlive the map).
void Attribute(const std::vector<Span>& spans, const TraceTree& tree, size_t n,
               int64_t win_start, int64_t win_end,
               std::map<std::string_view, int64_t>& self) {
  const Span& span = spans[tree.nodes[n].span];
  int64_t cursor = win_start;
  int64_t covered = 0;
  for (size_t c : tree.nodes[n].children) {
    const Span& child = spans[tree.nodes[c].span];
    const int64_t child_start = child.ts.value();
    const int64_t child_end = child_start + DurOf(child);
    const int64_t lo = std::max(child_start, cursor);
    const int64_t hi = std::min(child_end, win_end);
    if (hi <= lo) {
      continue;  // instant, fully clipped, or entirely behind the sweep
    }
    Attribute(spans, tree, c, lo, hi, self);
    covered += hi - lo;
    cursor = hi;
  }
  self[span.name] += (win_end - win_start) - covered;
}

}  // namespace

std::vector<TraceTree> BuildTraceTrees(const std::vector<Span>& spans) {
  // std::map: trees come out in ascending trace-id order, deterministically.
  std::map<uint64_t, std::vector<size_t>> by_trace;
  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].trace_id != 0) {
      by_trace[spans[i].trace_id].push_back(i);
    }
  }
  std::vector<TraceTree> trees;
  trees.reserve(by_trace.size());
  for (auto& [trace_id, idxs] : by_trace) {
    std::sort(idxs.begin(), idxs.end(),
              [&](size_t a, size_t b) { return SpanOrderLess(spans, a, b); });
    TraceTree tree;
    tree.trace_id = trace_id;
    tree.nodes.reserve(idxs.size());
    std::unordered_map<uint64_t, size_t> node_by_span_id;
    node_by_span_id.reserve(idxs.size());
    for (size_t i : idxs) {
      // First occurrence wins on (pathological) duplicate span ids.
      node_by_span_id.emplace(spans[i].span_id, tree.nodes.size());
      tree.nodes.push_back(TraceNode{i, {}});
    }
    // Root: the span whose id is the trace id; fall back to the earliest
    // parentless span, then to the earliest span outright.
    size_t root = tree.nodes.size();
    for (size_t n = 0; n < tree.nodes.size(); ++n) {
      const Span& span = spans[tree.nodes[n].span];
      if (span.span_id == trace_id && span.parent_span_id == 0) {
        root = n;
        break;
      }
      if (root == tree.nodes.size() && span.parent_span_id == 0) {
        root = n;  // keep scanning for the canonical root
      }
    }
    if (root == tree.nodes.size()) {
      root = 0;
    }
    tree.root = root;
    for (size_t n = 0; n < tree.nodes.size(); ++n) {
      if (n == root) {
        continue;
      }
      const Span& span = spans[tree.nodes[n].span];
      auto it = span.parent_span_id != 0 ? node_by_span_id.find(span.parent_span_id)
                                         : node_by_span_id.end();
      if (it == node_by_span_id.end() || it->second == n) {
        ++tree.unresolved_parents;
        tree.nodes[root].children.push_back(n);
      } else {
        tree.nodes[it->second].children.push_back(n);
      }
    }
    // Children were appended in node order == (ts, span_id) order already,
    // but attaching unresolved spans to the root can break that for the
    // root's list; re-sort every list to keep the invariant simple.
    for (TraceNode& node : tree.nodes) {
      std::sort(node.children.begin(), node.children.end(), [&](size_t a, size_t b) {
        return SpanOrderLess(spans, tree.nodes[a].span, tree.nodes[b].span);
      });
    }
    trees.push_back(std::move(tree));
  }
  return trees;
}

std::optional<size_t> FindNode(const std::vector<Span>& spans, const TraceTree& tree,
                               const char* name) {
  for (size_t n = 0; n < tree.nodes.size(); ++n) {
    if (std::strcmp(spans[tree.nodes[n].span].name, name) == 0) {
      return n;  // nodes are (ts, span_id)-ordered, so this is the earliest
    }
  }
  return std::nullopt;
}

TraceAttribution AttributeSubtree(const std::vector<Span>& spans, const TraceTree& tree,
                                  size_t node) {
  TraceAttribution out;
  out.trace_id = tree.trace_id;
  const Span& root = spans[tree.nodes[node].span];
  const int64_t start = root.ts.value();
  const int64_t end = start + DurOf(root);
  out.total_us = end - start;
  std::map<std::string_view, int64_t> self;
  Attribute(spans, tree, node, start, end, self);
  out.stages.reserve(self.size());
  for (const auto& [stage, us] : self) {
    out.stages.push_back(StageSelf{std::string(stage), us});
  }
  return out;
}

TraceAttribution AttributeTrace(const std::vector<Span>& spans, const TraceTree& tree) {
  return AttributeSubtree(spans, tree, tree.root);
}

namespace {

// Nearest-rank percentile of an ascending-sorted vector.
int64_t Percentile(const std::vector<int64_t>& sorted, double p) {
  if (sorted.empty()) {
    return 0;
  }
  const double rank = p / 100.0 * static_cast<double>(sorted.size());
  size_t index = static_cast<size_t>(rank);
  if (static_cast<double>(index) < rank) {
    ++index;  // ceil
  }
  if (index == 0) {
    index = 1;
  }
  return sorted[std::min(index, sorted.size()) - 1];
}

}  // namespace

AttributionSummary Summarize(const std::vector<TraceAttribution>& attributions, size_t top_k) {
  AttributionSummary summary;
  summary.traces = attributions.size();
  struct StageAccum {
    uint64_t traces = 0;
    int64_t total_us = 0;
    std::vector<int64_t> samples;
  };
  std::map<std::string, StageAccum> stages;
  std::vector<int64_t> totals;
  totals.reserve(attributions.size());
  for (const TraceAttribution& attribution : attributions) {
    summary.total_us += attribution.total_us;
    totals.push_back(attribution.total_us);
    for (const StageSelf& stage : attribution.stages) {
      StageAccum& accum = stages[stage.stage];
      ++accum.traces;
      accum.total_us += stage.self_us;
      accum.samples.push_back(stage.self_us);
    }
  }
  std::sort(totals.begin(), totals.end());
  summary.p50_total_us = Percentile(totals, 50.0);
  summary.p99_total_us = Percentile(totals, 99.0);
  summary.stages.reserve(stages.size());
  for (auto& [name, accum] : stages) {
    std::sort(accum.samples.begin(), accum.samples.end());
    StageStats stats;
    stats.stage = name;
    stats.traces = accum.traces;
    stats.total_us = accum.total_us;
    stats.p50_us = Percentile(accum.samples, 50.0);
    stats.p99_us = Percentile(accum.samples, 99.0);
    stats.fraction = summary.total_us > 0 ? static_cast<double>(accum.total_us) /
                                                static_cast<double>(summary.total_us)
                                          : 0.0;
    summary.stages.push_back(std::move(stats));
  }
  summary.top_slowest.resize(attributions.size());
  for (size_t i = 0; i < attributions.size(); ++i) {
    summary.top_slowest[i] = i;
  }
  std::sort(summary.top_slowest.begin(), summary.top_slowest.end(), [&](size_t a, size_t b) {
    if (attributions[a].total_us != attributions[b].total_us) {
      return attributions[a].total_us > attributions[b].total_us;
    }
    return attributions[a].trace_id < attributions[b].trace_id;
  });
  if (summary.top_slowest.size() > top_k) {
    summary.top_slowest.resize(top_k);
  }
  return summary;
}

}  // namespace medes::obs
