// Observability runtime switches.
//
// The tracing layer (obs/trace.h) and the metrics registry (obs/metrics.h)
// are both gated on process-wide flags so instrumented hot paths cost one
// relaxed atomic load and a predictable branch when observability is off:
//
//   - MEDES_TRACE=1    enables span recording (Chrome-trace export).
//   - MEDES_METRICS=1  enables counter/gauge/histogram recording.
//   - MEDES_TRACE_WALL=1 additionally stamps spans with measured wall-clock
//     durations. Wall times are inherently nondeterministic, so this knob is
//     excluded from the bit-identical-across-thread-counts contract.
//   - MEDES_TRACE_SAMPLE=1/N (or plain N) keeps one request trace in N,
//     decided deterministically from the trace id at mint time
//     (obs/trace_context.h), so sampling IS part of the bit-identical
//     contract: the sampled span set never depends on thread count.
//
// Tests and tools can flip the flags programmatically (SetTraceEnabled etc.);
// the environment variables only seed the initial state. Building with
// -DMEDES_OBS=OFF defines MEDES_OBS_DISABLED, which pins every flag to a
// constexpr false so the optimizer deletes instrumentation sites entirely.
#ifndef MEDES_OBS_OBS_H_
#define MEDES_OBS_OBS_H_

#ifndef MEDES_OBS_DISABLED
#include <atomic>
#endif

namespace medes::obs {

#ifdef MEDES_OBS_DISABLED

inline constexpr bool TraceEnabled() { return false; }
inline constexpr bool MetricsEnabled() { return false; }
inline constexpr bool WallClockProfilingEnabled() { return false; }
inline constexpr unsigned TraceSampleEvery() { return 1; }
inline void SetTraceEnabled(bool /*enabled*/) {}
inline void SetMetricsEnabled(bool /*enabled*/) {}
inline void SetWallClockProfiling(bool /*enabled*/) {}
inline void SetTraceSampleEvery(unsigned /*every*/) {}

#else

namespace internal {
// Tri-state: -1 = not yet initialised from the environment, else 0/1. The
// lazy read avoids static-initialisation-order dependencies between TUs.
extern std::atomic<int> g_trace_enabled;
extern std::atomic<int> g_metrics_enabled;
extern std::atomic<int> g_wall_profiling;
// Sampling period: -1 = not yet initialised from MEDES_TRACE_SAMPLE, else
// the clamped keep-1-in-N period (>= 1).
extern std::atomic<int64_t> g_trace_sample_every;
bool SlowInit(std::atomic<int>& flag, const char* env_var);
unsigned SlowInitSampleEvery();

inline bool Enabled(std::atomic<int>& flag, const char* env_var) {
  const int v = flag.load(std::memory_order_relaxed);
  if (v >= 0) {
    return v != 0;
  }
  return SlowInit(flag, env_var);
}
}  // namespace internal

inline bool TraceEnabled() {
  return internal::Enabled(internal::g_trace_enabled, "MEDES_TRACE");
}
inline bool MetricsEnabled() {
  return internal::Enabled(internal::g_metrics_enabled, "MEDES_METRICS");
}
inline bool WallClockProfilingEnabled() {
  return internal::Enabled(internal::g_wall_profiling, "MEDES_TRACE_WALL");
}

// Keep-1-in-N trace sampling period (>= 1; 1 = keep every trace). Seeded
// from MEDES_TRACE_SAMPLE ("1/N" or plain "N") on first read.
inline unsigned TraceSampleEvery() {
  const int64_t v = internal::g_trace_sample_every.load(std::memory_order_relaxed);
  if (v >= 1) {
    return static_cast<unsigned>(v);
  }
  return internal::SlowInitSampleEvery();
}

void SetTraceEnabled(bool enabled);
void SetMetricsEnabled(bool enabled);
void SetWallClockProfiling(bool enabled);
void SetTraceSampleEvery(unsigned every);  // 0 is clamped to 1

#endif  // MEDES_OBS_DISABLED

}  // namespace medes::obs

#endif  // MEDES_OBS_OBS_H_
