// Observability runtime switches.
//
// The tracing layer (obs/trace.h) and the metrics registry (obs/metrics.h)
// are both gated on process-wide flags so instrumented hot paths cost one
// relaxed atomic load and a predictable branch when observability is off:
//
//   - MEDES_TRACE=1    enables span recording (Chrome-trace export).
//   - MEDES_METRICS=1  enables counter/gauge/histogram recording.
//   - MEDES_TRACE_WALL=1 additionally stamps spans with measured wall-clock
//     durations. Wall times are inherently nondeterministic, so this knob is
//     excluded from the bit-identical-across-thread-counts contract.
//
// Tests and tools can flip the flags programmatically (SetTraceEnabled etc.);
// the environment variables only seed the initial state. Building with
// -DMEDES_OBS=OFF defines MEDES_OBS_DISABLED, which pins every flag to a
// constexpr false so the optimizer deletes instrumentation sites entirely.
#ifndef MEDES_OBS_OBS_H_
#define MEDES_OBS_OBS_H_

#ifndef MEDES_OBS_DISABLED
#include <atomic>
#endif

namespace medes::obs {

#ifdef MEDES_OBS_DISABLED

inline constexpr bool TraceEnabled() { return false; }
inline constexpr bool MetricsEnabled() { return false; }
inline constexpr bool WallClockProfilingEnabled() { return false; }
inline void SetTraceEnabled(bool /*enabled*/) {}
inline void SetMetricsEnabled(bool /*enabled*/) {}
inline void SetWallClockProfiling(bool /*enabled*/) {}

#else

namespace internal {
// Tri-state: -1 = not yet initialised from the environment, else 0/1. The
// lazy read avoids static-initialisation-order dependencies between TUs.
extern std::atomic<int> g_trace_enabled;
extern std::atomic<int> g_metrics_enabled;
extern std::atomic<int> g_wall_profiling;
bool SlowInit(std::atomic<int>& flag, const char* env_var);

inline bool Enabled(std::atomic<int>& flag, const char* env_var) {
  const int v = flag.load(std::memory_order_relaxed);
  if (v >= 0) {
    return v != 0;
  }
  return SlowInit(flag, env_var);
}
}  // namespace internal

inline bool TraceEnabled() {
  return internal::Enabled(internal::g_trace_enabled, "MEDES_TRACE");
}
inline bool MetricsEnabled() {
  return internal::Enabled(internal::g_metrics_enabled, "MEDES_METRICS");
}
inline bool WallClockProfilingEnabled() {
  return internal::Enabled(internal::g_wall_profiling, "MEDES_TRACE_WALL");
}

void SetTraceEnabled(bool enabled);
void SetMetricsEnabled(bool enabled);
void SetWallClockProfiling(bool enabled);

#endif  // MEDES_OBS_DISABLED

}  // namespace medes::obs

#endif  // MEDES_OBS_OBS_H_
