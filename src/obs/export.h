// Exporters for the observability subsystem:
//
//   - ChromeTraceJson: spans -> Chrome trace-event JSON (load in Perfetto /
//     chrome://tracing). Sim-time microseconds map directly onto the trace
//     "ts"/"dur" microsecond fields; lanes map onto tid rows.
//   - PrometheusText: metric snapshots -> Prometheus text exposition format
//     (# HELP / # TYPE, cumulative le-bucket histograms, _sum/_count).
//   - MetricsJson: the same snapshots as a JSON document (bench artifacts).
//   - SeriesJson: a SnapshotSeries time series as JSON.
//
// All exporters are pure functions of their (already canonically sorted)
// inputs, so their output inherits the determinism of the recorded data.
#ifndef MEDES_OBS_EXPORT_H_
#define MEDES_OBS_EXPORT_H_

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace medes::obs {

// Chrome trace-event JSON for `spans` (as returned by Tracer::Drain()).
// Complete spans become "X" events with ts/dur; kInstantDuration spans become
// "i" instant events. Span args are attached; a measured wall_ns (>= 0) is
// exported as an extra "wall_ns" arg.
std::string ChromeTraceJson(const std::vector<Span>& spans);

// Prometheus text exposition format for `snapshots` (as returned by
// MetricsRegistry::Snapshot()). Series sharing a name emit one HELP/TYPE
// header; histograms expand to cumulative le buckets plus _sum and _count.
std::string PrometheusText(const std::vector<MetricSnapshot>& snapshots);

// The same snapshots as a JSON array of instrument objects.
std::string MetricsJson(const std::vector<MetricSnapshot>& snapshots);

// A SnapshotSeries as JSON: [{"t": ..., "values": {name: value, ...}}, ...].
std::string SeriesJson(const std::vector<SnapshotSeries::Point>& points);

// Writes `content` to `path`, replacing any existing file. Returns false on
// I/O failure. The actual filesystem access happens through the installed
// FileSink (default: store::WriteArtifactFile) — exporters themselves never
// touch the filesystem, keeping direct I/O confined to src/store.
bool WriteFile(const std::string& path, std::string_view content);

// Replaceable artifact sink. Passing nullptr restores the default
// (store::WriteArtifactFile). Tests install capture sinks to observe writes
// without touching the filesystem.
using FileSink = bool (*)(const std::string& path, std::string_view content);
void SetFileSink(FileSink sink);

}  // namespace medes::obs

#endif  // MEDES_OBS_EXPORT_H_
