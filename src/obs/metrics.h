// Metrics registry: named Counter / Gauge / Histogram instruments.
//
// Instruments are cheap atomics with an allocation-free hot path. The
// intended call-site pattern resolves an instrument once into a function-local
// static reference, so steady-state recording is one relaxed atomic flag load
// plus one (or for histograms, two) relaxed atomic RMWs:
//
//   static obs::Counter& hits =
//       obs::MetricsRegistry::Default().GetCounter("medes_rdma_cache_hits_total",
//                                                  "Base-page cache hits");
//   hits.Add(1);
//
// Recording is gated on MetricsEnabled() (obs/obs.h) inside the instrument,
// so call sites never need their own guard. Registered instruments live for
// the process lifetime at stable addresses.
//
// Determinism contract: counters and gauges are plain sums, and histograms
// use the shared power-of-two bucket convention (common/histogram.h), so all
// recorded state is order-independent — concurrent recording in any
// interleaving yields bit-identical snapshots. Snapshot() additionally sorts
// by (name, label), erasing the thread-dependent registration order.
#ifndef MEDES_OBS_METRICS_H_
#define MEDES_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/histogram.h"
#include "common/mutex.h"
#include "common/time.h"
#include "obs/obs.h"

namespace medes::obs {

// Monotonically increasing event count.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    if (MetricsEnabled()) {
      value_.fetch_add(delta, std::memory_order_relaxed);
    }
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Point-in-time signed level (e.g. live sandboxes, pool bytes).
class Gauge {
 public:
  void Set(int64_t value) {
    if (MetricsEnabled()) {
      value_.store(value, std::memory_order_relaxed);
    }
  }
  void Add(int64_t delta) {
    if (MetricsEnabled()) {
      value_.fetch_add(delta, std::memory_order_relaxed);
    }
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Order-independent distribution over the shared power-of-two buckets.
// Records integer values (simulation microseconds, bytes, counts).
class Histogram {
 public:
  static constexpr size_t kNumBuckets = kPow2HistogramBuckets;

  void Record(int64_t value) {
    if (MetricsEnabled()) {
      buckets_[Pow2BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
      sum_.fetch_add(value, std::memory_order_relaxed);
    }
  }
  uint64_t BucketCount(size_t bucket) const {
    return buckets_.at(bucket).load(std::memory_order_relaxed);
  }
  // Inclusive upper bound of a bucket; bucket 0 holds <= 0.
  static int64_t BucketUpperBound(size_t bucket) { return Pow2BucketUpperBound(bucket); }
  int64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t TotalCount() const {
    uint64_t total = 0;
    for (const auto& b : buckets_) {
      total += b.load(std::memory_order_relaxed);
    }
    return total;
  }
  void Reset() {
    for (auto& b : buckets_) {
      b.store(0, std::memory_order_relaxed);
    }
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_ = {};
  std::atomic<int64_t> sum_{0};
};

// ---- Registry ------------------------------------------------------------

enum class InstrumentKind : int { kCounter = 0, kGauge = 1, kHistogram = 2 };

const char* ToString(InstrumentKind kind);

// One instrument's exported state, decoupled from the live atomics.
struct MetricSnapshot {
  InstrumentKind kind = InstrumentKind::kCounter;
  std::string name;
  std::string help;
  std::string label_key;    // empty = unlabelled
  std::string label_value;
  int64_t value = 0;  // counter (non-negative) or gauge reading
  std::array<uint64_t, Histogram::kNumBuckets> buckets = {};  // histogram only
  int64_t sum = 0;                                            // histogram only
  uint64_t count = 0;                                         // histogram only
};

// Process-wide instrument registry. GetCounter/GetGauge/GetHistogram return a
// stable reference, registering the instrument on first use; subsequent calls
// with the same (name, label) pair return the same instrument. Registering
// one name under two different kinds is a programming error and aborts.
//
// Label-cardinality guard: the registry holds at most MaxSeries() distinct
// (name, label) series. Once the cap is reached, further registrations are
// absorbed by a per-kind overflow sink instrument (a valid reference, so
// call sites never crash), each such call bumps DroppedSeries(), a warning
// is printed once, and Snapshot() reports the drop count as the synthetic
// counter `medes_obs_series_dropped_total`. This keeps accidental
// per-request label values from growing the registry without bound.
class MetricsRegistry {
 public:
  static constexpr size_t kDefaultMaxSeries = 4096;

  static MetricsRegistry& Default();

  Counter& GetCounter(std::string_view name, std::string_view help,
                      std::string_view label_key = {}, std::string_view label_value = {})
      EXCLUDES(mu_);
  Gauge& GetGauge(std::string_view name, std::string_view help, std::string_view label_key = {},
                  std::string_view label_value = {}) EXCLUDES(mu_);
  Histogram& GetHistogram(std::string_view name, std::string_view help,
                          std::string_view label_key = {}, std::string_view label_value = {})
      EXCLUDES(mu_);

  // All instruments' current state, sorted by (name, label_value) so the
  // result is independent of registration order. Values are read with relaxed
  // loads; callers wanting exact totals snapshot at a quiescent point.
  std::vector<MetricSnapshot> Snapshot() const EXCLUDES(mu_);

  // Zeroes every instrument's value, keeping registrations (and the stable
  // references call sites cached). Tests and benches call this between runs.
  void ResetValues() EXCLUDES(mu_);

  size_t NumInstruments() const EXCLUDES(mu_);

  // Cardinality guard controls. Lowering the cap below the current series
  // count only affects future registrations; existing series stay live.
  void SetMaxSeries(size_t max_series) EXCLUDES(mu_);
  size_t MaxSeries() const EXCLUDES(mu_);
  // Number of registration calls absorbed by the overflow sinks.
  uint64_t DroppedSeries() const EXCLUDES(mu_);

 private:
  struct Instrument {
    InstrumentKind kind;
    std::string name;
    std::string help;
    std::string label_key;
    std::string label_value;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Instrument& GetOrCreate(InstrumentKind kind, std::string_view name, std::string_view help,
                          std::string_view label_key, std::string_view label_value) REQUIRES(mu_);

  mutable Mutex mu_{"obs metrics registry", LockRank::kObsRegistry};
  // unique_ptr elements keep instrument addresses stable across growth.
  std::vector<std::unique_ptr<Instrument>> instruments_ GUARDED_BY(mu_);
  size_t max_series_ GUARDED_BY(mu_) = kDefaultMaxSeries;
  uint64_t dropped_series_ GUARDED_BY(mu_) = 0;
  bool overflow_warned_ GUARDED_BY(mu_) = false;
  // Per-kind overflow sinks (indexed by InstrumentKind); excluded from
  // Snapshot() and NumInstruments() — only the drop count is exported.
  std::array<std::unique_ptr<Instrument>, 3> overflow_ GUARDED_BY(mu_);
};

// ---- Sim-time snapshot poller --------------------------------------------

// A time series of registry snapshots taken at simulation timestamps (the
// platform samples alongside its periodic memory sampling). Counter and gauge
// values only — histograms are exported once at end of run.
class SnapshotSeries {
 public:
  struct Point {
    SimTime t;
    // (name or name{label}, value) pairs, sorted by the rendered key.
    std::vector<std::pair<std::string, int64_t>> values;
  };

  static SnapshotSeries& Default();

  // Appends one sample of every counter/gauge in MetricsRegistry::Default().
  // No-op when metrics are disabled.
  void Sample(SimTime now) EXCLUDES(mu_);

  std::vector<Point> Points() const EXCLUDES(mu_);
  void Clear() EXCLUDES(mu_);

 private:
  mutable Mutex mu_{"obs snapshot series", LockRank::kObsBuffer};
  std::vector<Point> points_ GUARDED_BY(mu_);
};

}  // namespace medes::obs

#endif  // MEDES_OBS_METRICS_H_
