file(REMOVE_RECURSE
  "libmedes_dedupagent.a"
)
