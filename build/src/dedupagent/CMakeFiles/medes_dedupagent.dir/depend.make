# Empty dependencies file for medes_dedupagent.
# This may be replaced when dependencies are built.
