file(REMOVE_RECURSE
  "CMakeFiles/medes_dedupagent.dir/dedup_agent.cc.o"
  "CMakeFiles/medes_dedupagent.dir/dedup_agent.cc.o.d"
  "libmedes_dedupagent.a"
  "libmedes_dedupagent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medes_dedupagent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
