# Empty compiler generated dependencies file for medes_cluster.
# This may be replaced when dependencies are built.
