file(REMOVE_RECURSE
  "CMakeFiles/medes_cluster.dir/cluster.cc.o"
  "CMakeFiles/medes_cluster.dir/cluster.cc.o.d"
  "libmedes_cluster.a"
  "libmedes_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medes_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
