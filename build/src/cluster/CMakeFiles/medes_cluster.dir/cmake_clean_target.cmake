file(REMOVE_RECURSE
  "libmedes_cluster.a"
)
