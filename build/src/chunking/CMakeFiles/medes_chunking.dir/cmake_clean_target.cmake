file(REMOVE_RECURSE
  "libmedes_chunking.a"
)
