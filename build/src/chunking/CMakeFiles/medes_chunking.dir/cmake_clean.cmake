file(REMOVE_RECURSE
  "CMakeFiles/medes_chunking.dir/fingerprint.cc.o"
  "CMakeFiles/medes_chunking.dir/fingerprint.cc.o.d"
  "CMakeFiles/medes_chunking.dir/rabin.cc.o"
  "CMakeFiles/medes_chunking.dir/rabin.cc.o.d"
  "CMakeFiles/medes_chunking.dir/redundancy.cc.o"
  "CMakeFiles/medes_chunking.dir/redundancy.cc.o.d"
  "libmedes_chunking.a"
  "libmedes_chunking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medes_chunking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
