
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chunking/fingerprint.cc" "src/chunking/CMakeFiles/medes_chunking.dir/fingerprint.cc.o" "gcc" "src/chunking/CMakeFiles/medes_chunking.dir/fingerprint.cc.o.d"
  "/root/repo/src/chunking/rabin.cc" "src/chunking/CMakeFiles/medes_chunking.dir/rabin.cc.o" "gcc" "src/chunking/CMakeFiles/medes_chunking.dir/rabin.cc.o.d"
  "/root/repo/src/chunking/redundancy.cc" "src/chunking/CMakeFiles/medes_chunking.dir/redundancy.cc.o" "gcc" "src/chunking/CMakeFiles/medes_chunking.dir/redundancy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/medes_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
