# Empty compiler generated dependencies file for medes_chunking.
# This may be replaced when dependencies are built.
