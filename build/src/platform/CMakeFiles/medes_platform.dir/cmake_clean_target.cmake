file(REMOVE_RECURSE
  "libmedes_platform.a"
)
