# Empty dependencies file for medes_platform.
# This may be replaced when dependencies are built.
