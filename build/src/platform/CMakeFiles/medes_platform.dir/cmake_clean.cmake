file(REMOVE_RECURSE
  "CMakeFiles/medes_platform.dir/metrics.cc.o"
  "CMakeFiles/medes_platform.dir/metrics.cc.o.d"
  "CMakeFiles/medes_platform.dir/platform.cc.o"
  "CMakeFiles/medes_platform.dir/platform.cc.o.d"
  "libmedes_platform.a"
  "libmedes_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medes_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
