# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("delta")
subdirs("chunking")
subdirs("memstate")
subdirs("checkpoint")
subdirs("registry")
subdirs("rdma")
subdirs("sim")
subdirs("workload")
subdirs("cluster")
subdirs("dedupagent")
subdirs("controller")
subdirs("policy")
subdirs("platform")
