# Empty dependencies file for medes_common.
# This may be replaced when dependencies are built.
