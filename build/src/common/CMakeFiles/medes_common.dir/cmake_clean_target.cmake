file(REMOVE_RECURSE
  "libmedes_common.a"
)
