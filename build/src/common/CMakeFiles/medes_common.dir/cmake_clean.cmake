file(REMOVE_RECURSE
  "CMakeFiles/medes_common.dir/histogram.cc.o"
  "CMakeFiles/medes_common.dir/histogram.cc.o.d"
  "CMakeFiles/medes_common.dir/logging.cc.o"
  "CMakeFiles/medes_common.dir/logging.cc.o.d"
  "CMakeFiles/medes_common.dir/sha1.cc.o"
  "CMakeFiles/medes_common.dir/sha1.cc.o.d"
  "libmedes_common.a"
  "libmedes_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medes_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
