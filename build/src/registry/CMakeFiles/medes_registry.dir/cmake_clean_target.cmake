file(REMOVE_RECURSE
  "libmedes_registry.a"
)
