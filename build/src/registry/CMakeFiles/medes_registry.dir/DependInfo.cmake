
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/registry/distributed_registry.cc" "src/registry/CMakeFiles/medes_registry.dir/distributed_registry.cc.o" "gcc" "src/registry/CMakeFiles/medes_registry.dir/distributed_registry.cc.o.d"
  "/root/repo/src/registry/fingerprint_registry.cc" "src/registry/CMakeFiles/medes_registry.dir/fingerprint_registry.cc.o" "gcc" "src/registry/CMakeFiles/medes_registry.dir/fingerprint_registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/medes_common.dir/DependInfo.cmake"
  "/root/repo/build/src/chunking/CMakeFiles/medes_chunking.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
