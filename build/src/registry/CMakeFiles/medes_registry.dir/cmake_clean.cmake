file(REMOVE_RECURSE
  "CMakeFiles/medes_registry.dir/distributed_registry.cc.o"
  "CMakeFiles/medes_registry.dir/distributed_registry.cc.o.d"
  "CMakeFiles/medes_registry.dir/fingerprint_registry.cc.o"
  "CMakeFiles/medes_registry.dir/fingerprint_registry.cc.o.d"
  "libmedes_registry.a"
  "libmedes_registry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medes_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
