# Empty compiler generated dependencies file for medes_registry.
# This may be replaced when dependencies are built.
