file(REMOVE_RECURSE
  "CMakeFiles/medes_controller.dir/medes_controller.cc.o"
  "CMakeFiles/medes_controller.dir/medes_controller.cc.o.d"
  "libmedes_controller.a"
  "libmedes_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medes_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
