# Empty compiler generated dependencies file for medes_controller.
# This may be replaced when dependencies are built.
