file(REMOVE_RECURSE
  "libmedes_controller.a"
)
