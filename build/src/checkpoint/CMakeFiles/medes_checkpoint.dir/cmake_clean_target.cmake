file(REMOVE_RECURSE
  "libmedes_checkpoint.a"
)
