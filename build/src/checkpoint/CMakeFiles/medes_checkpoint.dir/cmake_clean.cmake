file(REMOVE_RECURSE
  "CMakeFiles/medes_checkpoint.dir/checkpoint.cc.o"
  "CMakeFiles/medes_checkpoint.dir/checkpoint.cc.o.d"
  "libmedes_checkpoint.a"
  "libmedes_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medes_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
