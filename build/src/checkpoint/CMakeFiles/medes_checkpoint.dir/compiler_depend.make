# Empty compiler generated dependencies file for medes_checkpoint.
# This may be replaced when dependencies are built.
