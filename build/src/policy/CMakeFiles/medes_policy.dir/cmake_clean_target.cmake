file(REMOVE_RECURSE
  "libmedes_policy.a"
)
