# Empty compiler generated dependencies file for medes_policy.
# This may be replaced when dependencies are built.
