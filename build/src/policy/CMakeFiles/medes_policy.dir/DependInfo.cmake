
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policy/keep_alive.cc" "src/policy/CMakeFiles/medes_policy.dir/keep_alive.cc.o" "gcc" "src/policy/CMakeFiles/medes_policy.dir/keep_alive.cc.o.d"
  "/root/repo/src/policy/medes_policy.cc" "src/policy/CMakeFiles/medes_policy.dir/medes_policy.cc.o" "gcc" "src/policy/CMakeFiles/medes_policy.dir/medes_policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/medes_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
