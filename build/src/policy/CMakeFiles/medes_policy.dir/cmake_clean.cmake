file(REMOVE_RECURSE
  "CMakeFiles/medes_policy.dir/keep_alive.cc.o"
  "CMakeFiles/medes_policy.dir/keep_alive.cc.o.d"
  "CMakeFiles/medes_policy.dir/medes_policy.cc.o"
  "CMakeFiles/medes_policy.dir/medes_policy.cc.o.d"
  "libmedes_policy.a"
  "libmedes_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medes_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
