file(REMOVE_RECURSE
  "CMakeFiles/medes_sim.dir/simulation.cc.o"
  "CMakeFiles/medes_sim.dir/simulation.cc.o.d"
  "libmedes_sim.a"
  "libmedes_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medes_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
