file(REMOVE_RECURSE
  "libmedes_sim.a"
)
