# Empty compiler generated dependencies file for medes_sim.
# This may be replaced when dependencies are built.
