# Empty compiler generated dependencies file for medes_memstate.
# This may be replaced when dependencies are built.
