file(REMOVE_RECURSE
  "libmedes_memstate.a"
)
