file(REMOVE_RECURSE
  "CMakeFiles/medes_memstate.dir/image.cc.o"
  "CMakeFiles/medes_memstate.dir/image.cc.o.d"
  "CMakeFiles/medes_memstate.dir/library_pool.cc.o"
  "CMakeFiles/medes_memstate.dir/library_pool.cc.o.d"
  "CMakeFiles/medes_memstate.dir/profiles.cc.o"
  "CMakeFiles/medes_memstate.dir/profiles.cc.o.d"
  "CMakeFiles/medes_memstate.dir/tokens.cc.o"
  "CMakeFiles/medes_memstate.dir/tokens.cc.o.d"
  "libmedes_memstate.a"
  "libmedes_memstate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medes_memstate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
