
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memstate/image.cc" "src/memstate/CMakeFiles/medes_memstate.dir/image.cc.o" "gcc" "src/memstate/CMakeFiles/medes_memstate.dir/image.cc.o.d"
  "/root/repo/src/memstate/library_pool.cc" "src/memstate/CMakeFiles/medes_memstate.dir/library_pool.cc.o" "gcc" "src/memstate/CMakeFiles/medes_memstate.dir/library_pool.cc.o.d"
  "/root/repo/src/memstate/profiles.cc" "src/memstate/CMakeFiles/medes_memstate.dir/profiles.cc.o" "gcc" "src/memstate/CMakeFiles/medes_memstate.dir/profiles.cc.o.d"
  "/root/repo/src/memstate/tokens.cc" "src/memstate/CMakeFiles/medes_memstate.dir/tokens.cc.o" "gcc" "src/memstate/CMakeFiles/medes_memstate.dir/tokens.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/medes_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
