file(REMOVE_RECURSE
  "libmedes_delta.a"
)
