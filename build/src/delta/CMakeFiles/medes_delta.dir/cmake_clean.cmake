file(REMOVE_RECURSE
  "CMakeFiles/medes_delta.dir/delta.cc.o"
  "CMakeFiles/medes_delta.dir/delta.cc.o.d"
  "libmedes_delta.a"
  "libmedes_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medes_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
