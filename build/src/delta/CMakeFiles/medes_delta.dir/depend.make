# Empty dependencies file for medes_delta.
# This may be replaced when dependencies are built.
