# Empty compiler generated dependencies file for medes_rdma.
# This may be replaced when dependencies are built.
