file(REMOVE_RECURSE
  "libmedes_rdma.a"
)
