file(REMOVE_RECURSE
  "CMakeFiles/medes_rdma.dir/rdma.cc.o"
  "CMakeFiles/medes_rdma.dir/rdma.cc.o.d"
  "libmedes_rdma.a"
  "libmedes_rdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medes_rdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
