file(REMOVE_RECURSE
  "libmedes_workload.a"
)
