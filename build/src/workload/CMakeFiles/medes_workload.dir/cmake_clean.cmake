file(REMOVE_RECURSE
  "CMakeFiles/medes_workload.dir/trace.cc.o"
  "CMakeFiles/medes_workload.dir/trace.cc.o.d"
  "libmedes_workload.a"
  "libmedes_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medes_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
