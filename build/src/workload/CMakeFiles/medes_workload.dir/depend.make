# Empty dependencies file for medes_workload.
# This may be replaced when dependencies are built.
