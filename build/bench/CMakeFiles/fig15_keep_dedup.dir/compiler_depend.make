# Empty compiler generated dependencies file for fig15_keep_dedup.
# This may be replaced when dependencies are built.
