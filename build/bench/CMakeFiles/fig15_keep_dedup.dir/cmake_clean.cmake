file(REMOVE_RECURSE
  "CMakeFiles/fig15_keep_dedup.dir/fig15_keep_dedup.cc.o"
  "CMakeFiles/fig15_keep_dedup.dir/fig15_keep_dedup.cc.o.d"
  "fig15_keep_dedup"
  "fig15_keep_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_keep_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
