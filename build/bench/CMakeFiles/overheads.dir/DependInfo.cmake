
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/overheads.cc" "bench/CMakeFiles/overheads.dir/overheads.cc.o" "gcc" "bench/CMakeFiles/overheads.dir/overheads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/platform/CMakeFiles/medes_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/medes_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/medes_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/controller/CMakeFiles/medes_controller.dir/DependInfo.cmake"
  "/root/repo/build/src/dedupagent/CMakeFiles/medes_dedupagent.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/medes_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/medes_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/checkpoint/CMakeFiles/medes_checkpoint.dir/DependInfo.cmake"
  "/root/repo/build/src/delta/CMakeFiles/medes_delta.dir/DependInfo.cmake"
  "/root/repo/build/src/memstate/CMakeFiles/medes_memstate.dir/DependInfo.cmake"
  "/root/repo/build/src/registry/CMakeFiles/medes_registry.dir/DependInfo.cmake"
  "/root/repo/build/src/chunking/CMakeFiles/medes_chunking.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/medes_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/medes_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
