file(REMOVE_RECURSE
  "CMakeFiles/fig2_savings_timeline.dir/fig2_savings_timeline.cc.o"
  "CMakeFiles/fig2_savings_timeline.dir/fig2_savings_timeline.cc.o.d"
  "fig2_savings_timeline"
  "fig2_savings_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_savings_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
