# Empty dependencies file for fig2_savings_timeline.
# This may be replaced when dependencies are built.
