file(REMOVE_RECURSE
  "CMakeFiles/fig16_cardinality.dir/fig16_cardinality.cc.o"
  "CMakeFiles/fig16_cardinality.dir/fig16_cardinality.cc.o.d"
  "fig16_cardinality"
  "fig16_cardinality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_cardinality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
