# Empty compiler generated dependencies file for fig16_cardinality.
# This may be replaced when dependencies are built.
