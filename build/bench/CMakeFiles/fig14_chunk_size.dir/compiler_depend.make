# Empty compiler generated dependencies file for fig14_chunk_size.
# This may be replaced when dependencies are built.
