file(REMOVE_RECURSE
  "CMakeFiles/fig14_chunk_size.dir/fig14_chunk_size.cc.o"
  "CMakeFiles/fig14_chunk_size.dir/fig14_chunk_size.cc.o.d"
  "fig14_chunk_size"
  "fig14_chunk_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_chunk_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
