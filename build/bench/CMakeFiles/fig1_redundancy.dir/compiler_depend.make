# Empty compiler generated dependencies file for fig1_redundancy.
# This may be replaced when dependencies are built.
