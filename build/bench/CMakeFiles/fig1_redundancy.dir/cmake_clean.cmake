file(REMOVE_RECURSE
  "CMakeFiles/fig1_redundancy.dir/fig1_redundancy.cc.o"
  "CMakeFiles/fig1_redundancy.dir/fig1_redundancy.cc.o.d"
  "fig1_redundancy"
  "fig1_redundancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
