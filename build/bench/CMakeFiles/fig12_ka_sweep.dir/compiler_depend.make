# Empty compiler generated dependencies file for fig12_ka_sweep.
# This may be replaced when dependencies are built.
