# Empty compiler generated dependencies file for fig13_catalyzer.
# This may be replaced when dependencies are built.
