file(REMOVE_RECURSE
  "CMakeFiles/fig13_catalyzer.dir/fig13_catalyzer.cc.o"
  "CMakeFiles/fig13_catalyzer.dir/fig13_catalyzer.cc.o.d"
  "fig13_catalyzer"
  "fig13_catalyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_catalyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
