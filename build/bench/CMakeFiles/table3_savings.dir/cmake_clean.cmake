file(REMOVE_RECURSE
  "CMakeFiles/table3_savings.dir/table3_savings.cc.o"
  "CMakeFiles/table3_savings.dir/table3_savings.cc.o.d"
  "table3_savings"
  "table3_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
