file(REMOVE_RECURSE
  "CMakeFiles/controller_scaling.dir/controller_scaling.cc.o"
  "CMakeFiles/controller_scaling.dir/controller_scaling.cc.o.d"
  "controller_scaling"
  "controller_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controller_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
