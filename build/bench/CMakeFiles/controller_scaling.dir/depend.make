# Empty dependencies file for controller_scaling.
# This may be replaced when dependencies are built.
