# Empty dependencies file for dedup_agent_test.
# This may be replaced when dependencies are built.
