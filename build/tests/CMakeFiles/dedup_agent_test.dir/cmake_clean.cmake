file(REMOVE_RECURSE
  "CMakeFiles/dedup_agent_test.dir/dedup_agent_test.cc.o"
  "CMakeFiles/dedup_agent_test.dir/dedup_agent_test.cc.o.d"
  "dedup_agent_test"
  "dedup_agent_test.pdb"
  "dedup_agent_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dedup_agent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
