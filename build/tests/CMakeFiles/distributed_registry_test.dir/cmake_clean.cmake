file(REMOVE_RECURSE
  "CMakeFiles/distributed_registry_test.dir/distributed_registry_test.cc.o"
  "CMakeFiles/distributed_registry_test.dir/distributed_registry_test.cc.o.d"
  "distributed_registry_test"
  "distributed_registry_test.pdb"
  "distributed_registry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
