# Empty compiler generated dependencies file for distributed_registry_test.
# This may be replaced when dependencies are built.
