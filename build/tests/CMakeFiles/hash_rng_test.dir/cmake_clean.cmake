file(REMOVE_RECURSE
  "CMakeFiles/hash_rng_test.dir/hash_rng_test.cc.o"
  "CMakeFiles/hash_rng_test.dir/hash_rng_test.cc.o.d"
  "hash_rng_test"
  "hash_rng_test.pdb"
  "hash_rng_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hash_rng_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
