# Empty dependencies file for memstate_test.
# This may be replaced when dependencies are built.
