file(REMOVE_RECURSE
  "CMakeFiles/memstate_test.dir/memstate_test.cc.o"
  "CMakeFiles/memstate_test.dir/memstate_test.cc.o.d"
  "memstate_test"
  "memstate_test.pdb"
  "memstate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memstate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
