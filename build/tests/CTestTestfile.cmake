# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sha1_test[1]_include.cmake")
include("/root/repo/build/tests/hash_rng_test[1]_include.cmake")
include("/root/repo/build/tests/histogram_test[1]_include.cmake")
include("/root/repo/build/tests/delta_test[1]_include.cmake")
include("/root/repo/build/tests/rabin_test[1]_include.cmake")
include("/root/repo/build/tests/fingerprint_test[1]_include.cmake")
include("/root/repo/build/tests/redundancy_test[1]_include.cmake")
include("/root/repo/build/tests/memstate_test[1]_include.cmake")
include("/root/repo/build/tests/checkpoint_test[1]_include.cmake")
include("/root/repo/build/tests/registry_test[1]_include.cmake")
include("/root/repo/build/tests/distributed_registry_test[1]_include.cmake")
include("/root/repo/build/tests/rdma_test[1]_include.cmake")
include("/root/repo/build/tests/simulation_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/dedup_agent_test[1]_include.cmake")
include("/root/repo/build/tests/policy_test[1]_include.cmake")
include("/root/repo/build/tests/controller_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/platform_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
