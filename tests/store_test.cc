// Unit tests for the state-store tier (src/store): record framing, the two
// backends, checkpoint compaction, and the CLOCK hot/cold residency model.
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "store/log_store.h"
#include "store/memory_store.h"
#include "store/record.h"
#include "store/state_store.h"

namespace medes::store {
namespace {

std::vector<PageFingerprint> MakeFingerprints(int pages, int chunks) {
  std::vector<PageFingerprint> fps(static_cast<size_t>(pages));
  uint64_t key = 0x1000;
  for (PageFingerprint& fp : fps) {
    for (int c = 0; c < chunks; ++c) {
      fp.chunks.push_back(SampledChunk{key++, static_cast<uint32_t>(64 * c)});
    }
  }
  return fps;
}

std::vector<uint8_t> MakePage(size_t bytes, uint8_t fill) {
  return std::vector<uint8_t>(bytes, fill);
}

void CleanupDir(const std::string& dir) {
  // medes-lint: allow(direct-filesystem) test scaffolding for the store's own files
  std::filesystem::remove_all(dir);
}

std::string FreshDir(const char* name) {
  // medes-lint: allow(direct-filesystem) test scaffolding for the store's own files
  const std::string dir = (std::filesystem::temp_directory_path() / name).string();
  CleanupDir(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// Record framing

TEST(RecordTest, InsertRoundTrips) {
  const auto fps = MakeFingerprints(3, 4);
  std::vector<uint8_t> buf;
  EncodeInsertSandbox(7, NodeId{2}, SandboxId{42}, fps, buf);

  const DecodeResult r = DecodeRecord(buf);
  ASSERT_EQ(r.status, DecodeStatus::kOk);
  EXPECT_EQ(r.consumed, buf.size());
  EXPECT_EQ(r.record.seq, 7u);
  EXPECT_EQ(r.record.type, RecordType::kInsertSandbox);
  EXPECT_EQ(r.record.node, NodeId{2});
  EXPECT_EQ(r.record.sandbox, SandboxId{42});
  ASSERT_EQ(r.record.fingerprints.size(), fps.size());
  for (size_t i = 0; i < fps.size(); ++i) {
    ASSERT_EQ(r.record.fingerprints[i].chunks.size(), fps[i].chunks.size());
    for (size_t c = 0; c < fps[i].chunks.size(); ++c) {
      EXPECT_EQ(r.record.fingerprints[i].chunks[c].key, fps[i].chunks[c].key);
      EXPECT_EQ(r.record.fingerprints[i].chunks[c].offset, fps[i].chunks[c].offset);
    }
  }
}

TEST(RecordTest, RemoveAndPageRoundTrip) {
  std::vector<uint8_t> buf;
  EncodeRemoveSandbox(9, SandboxId{13}, buf);
  const auto page = MakePage(4096, 0xab);
  EncodeBasePageWrite(10, NodeId{1}, SandboxId{13}, PageIndex{5}, page, buf);

  DecodeResult r = DecodeRecord(buf);
  ASSERT_EQ(r.status, DecodeStatus::kOk);
  EXPECT_EQ(r.record.type, RecordType::kRemoveSandbox);
  EXPECT_EQ(r.record.sandbox, SandboxId{13});

  const std::span<const uint8_t> rest = std::span(buf).subspan(r.consumed);
  r = DecodeRecord(rest);
  ASSERT_EQ(r.status, DecodeStatus::kOk);
  EXPECT_EQ(r.consumed, rest.size());
  EXPECT_EQ(r.record.type, RecordType::kBasePageWrite);
  EXPECT_EQ(r.record.page_index, PageIndex{5});
  EXPECT_EQ(r.record.page_bytes, page);
}

TEST(RecordTest, EveryBitFlipIsTornOrCorrupt) {
  std::vector<uint8_t> buf;
  EncodeRemoveSandbox(1, SandboxId{3}, buf);
  for (size_t i = 0; i < buf.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> flipped = buf;
      flipped[i] ^= static_cast<uint8_t>(1u << bit);
      const DecodeResult r = DecodeRecord(flipped);
      // A flip may corrupt framing/CRC, or enlarge payload_len past the
      // buffer (torn) — but it must never decode as a valid record.
      EXPECT_NE(r.status, DecodeStatus::kOk) << "byte " << i << " bit " << bit;
    }
  }
}

TEST(RecordTest, TruncationIsTorn) {
  std::vector<uint8_t> buf;
  EncodeBasePageWrite(1, NodeId{0}, SandboxId{1}, PageIndex{0}, MakePage(256, 1), buf);
  for (size_t len = 0; len < buf.size(); ++len) {
    const DecodeResult r = DecodeRecord(std::span(buf).subspan(0, len));
    EXPECT_EQ(r.status, DecodeStatus::kTorn) << "prefix length " << len;
  }
}

TEST(RecordTest, Crc32KnownVector) {
  // CRC-32/IEEE of "123456789" is 0xcbf43926.
  const char* s = "123456789";
  EXPECT_EQ(Crc32(std::span(reinterpret_cast<const uint8_t*>(s), 9)), 0xcbf43926u);
}

// ---------------------------------------------------------------------------
// Residency model (backend-shared)

TEST(StateStoreTest, UnboundedChargesNothing) {
  StoreOptions opts;  // budget 0
  MemoryStore store(opts);
  store.AppendInsertSandbox(NodeId{0}, SandboxId{1}, MakeFingerprints(4, 8));
  store.AppendBasePage(NodeId{0}, SandboxId{1}, PageIndex{0}, MakePage(4096, 1));

  SimDuration cost;
  store.TouchRegistryEntry(SandboxId{1}, &cost);
  store.TouchBasePage(SandboxId{1}, PageIndex{0}, &cost);
  EXPECT_EQ(cost, SimDuration{});
  const StoreStats s = store.stats();
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.cold_fetches, 0u);
  EXPECT_EQ(s.hot_hits, 2u);
  EXPECT_EQ(s.cold_bytes, 0u);
  EXPECT_EQ(s.registry_entries, 1u);
  EXPECT_EQ(s.base_pages, 1u);
}

TEST(StateStoreTest, BudgetEvictsAndColdTouchChargesFetch) {
  StoreOptions opts;
  opts.ram_budget_bytes = 3 * 4096;
  MemoryStore store(opts);
  // Five pages under a ~3-page budget: some must go cold.
  for (uint32_t p = 0; p < 5; ++p) {
    store.AppendBasePage(NodeId{0}, SandboxId{1}, PageIndex{p}, MakePage(4096, 1));
  }
  StoreStats s = store.stats();
  EXPECT_GT(s.evictions, 0u);
  EXPECT_LE(s.hot_bytes, opts.ram_budget_bytes);
  EXPECT_GT(s.cold_bytes, 0u);
  EXPECT_EQ(s.hot_bytes + s.cold_bytes, 5u * 4096u);

  // Touch every page: cold ones charge latency + size/bandwidth and promote.
  SimDuration cost;
  for (uint32_t p = 0; p < 5; ++p) {
    store.TouchBasePage(SandboxId{1}, PageIndex{p}, &cost);
  }
  s = store.stats();
  EXPECT_GT(s.cold_fetches, 0u);
  EXPECT_EQ(s.cold_fetch_bytes, s.cold_fetches * 4096u);
  const SimDuration per_fetch =
      opts.ssd_read_latency +
      SimDuration{static_cast<int64_t>(4096.0 / opts.ssd_read_bytes_per_us)};
  EXPECT_EQ(cost, SimDuration{static_cast<int64_t>(s.cold_fetches) * per_fetch.value()});
  EXPECT_EQ(s.ssd_time_us, static_cast<uint64_t>(cost.value()));
  EXPECT_LE(store.stats().hot_bytes, opts.ram_budget_bytes);
}

TEST(StateStoreTest, RemoveErasesWholeSandboxRange) {
  StoreOptions opts;
  MemoryStore store(opts);
  store.AppendInsertSandbox(NodeId{0}, SandboxId{1}, MakeFingerprints(2, 2));
  store.AppendBasePage(NodeId{0}, SandboxId{1}, PageIndex{0}, MakePage(4096, 1));
  store.AppendBasePage(NodeId{0}, SandboxId{1}, PageIndex{1}, MakePage(4096, 2));
  store.AppendInsertSandbox(NodeId{0}, SandboxId{2}, MakeFingerprints(2, 2));

  store.AppendRemoveSandbox(SandboxId{1});
  const StoreStats s = store.stats();
  EXPECT_EQ(s.registry_entries, 1u);  // sandbox 2 survives
  EXPECT_EQ(s.base_pages, 0u);
  EXPECT_EQ(s.removes, 1u);

  // Touching removed state is a no-op, not a fetch.
  SimDuration cost;
  store.TouchBasePage(SandboxId{1}, PageIndex{0}, &cost);
  EXPECT_EQ(cost, SimDuration{});
}

TEST(StateStoreTest, PeakStateTracksHighWaterMark) {
  StoreOptions opts;
  MemoryStore store(opts);
  store.AppendBasePage(NodeId{0}, SandboxId{1}, PageIndex{0}, MakePage(4096, 1));
  store.AppendBasePage(NodeId{0}, SandboxId{2}, PageIndex{0}, MakePage(4096, 1));
  store.AppendRemoveSandbox(SandboxId{1});
  store.AppendRemoveSandbox(SandboxId{2});
  const StoreStats s = store.stats();
  EXPECT_EQ(s.hot_bytes, 0u);
  EXPECT_EQ(s.peak_state_bytes, 2u * 4096u);
}

// ---------------------------------------------------------------------------
// LogStore: durability + recovery

TEST(LogStoreTest, RecoversInsertsPagesAndRemovals) {
  const std::string dir = FreshDir("medes_store_test_basic");
  StoreOptions opts;
  opts.backend = StoreBackend::kPersistent;
  opts.directory = dir;
  const auto fps = MakeFingerprints(2, 3);
  const auto page = MakePage(4096, 0x5a);
  {
    LogStore store(opts);
    EXPECT_TRUE(store.Recover().sandboxes.empty());
    store.AppendInsertSandbox(NodeId{3}, SandboxId{7}, fps);
    store.AppendBasePage(NodeId{3}, SandboxId{7}, PageIndex{2}, page);
    store.AppendInsertSandbox(NodeId{1}, SandboxId{9}, fps);
    store.AppendRemoveSandbox(SandboxId{9});
  }
  LogStore reopened(opts);
  const RecoveredState state = reopened.Recover();
  EXPECT_TRUE(state.clean);
  EXPECT_EQ(state.log_records, 4u);
  ASSERT_EQ(state.sandboxes.size(), 1u);  // sandbox 9 was removed
  const RecoveredSandbox& sb = state.sandboxes[0];
  EXPECT_EQ(sb.sandbox, SandboxId{7});
  EXPECT_EQ(sb.node, NodeId{3});
  EXPECT_EQ(sb.fingerprints.size(), fps.size());
  ASSERT_EQ(sb.pages.size(), 1u);
  EXPECT_EQ(sb.pages[0].first, PageIndex{2});
  EXPECT_EQ(sb.pages[0].second, page);
  // A bare reopen proves integrity only; residency is admitted when the
  // recovery driver replays the state back in (see ReplaySuppression test
  // below and registry/registry_recovery.h).
  EXPECT_EQ(reopened.stats().registry_entries, 0u);
  EXPECT_EQ(reopened.stats().base_pages, 0u);
  CleanupDir(dir);
}

TEST(LogStoreTest, CheckpointCompactsAndTruncatesLog) {
  const std::string dir = FreshDir("medes_store_test_ckpt");
  StoreOptions opts;
  opts.backend = StoreBackend::kPersistent;
  opts.directory = dir;
  opts.checkpoint_every_records = 4;
  {
    LogStore store(opts);
    // 8 inserts + 8 removes: compaction folds the dead sandboxes away.
    for (uint64_t i = 1; i <= 8; ++i) {
      store.AppendInsertSandbox(NodeId{0}, SandboxId{i}, MakeFingerprints(1, 2));
    }
    for (uint64_t i = 1; i <= 7; ++i) {
      store.AppendRemoveSandbox(SandboxId{i});
    }
    const DurabilityStats d = store.durability_stats();
    EXPECT_GT(d.checkpoints, 0u);
  }
  // The checkpoint+log pair carries only the one live sandbox, not the
  // 15-record history.
  LogStore reopened(opts);
  const RecoveredState state = reopened.Recover();
  EXPECT_TRUE(state.clean);
  ASSERT_EQ(state.sandboxes.size(), 1u);
  EXPECT_EQ(state.sandboxes[0].sandbox, SandboxId{8});
  EXPECT_LT(state.checkpoint_records + state.log_records, 15u);
  CleanupDir(dir);
}

TEST(LogStoreTest, ExplicitCheckpointSurvivesReopen) {
  const std::string dir = FreshDir("medes_store_test_explicit");
  StoreOptions opts;
  opts.backend = StoreBackend::kPersistent;
  opts.directory = dir;
  const auto page = MakePage(512, 0x11);
  {
    LogStore store(opts);
    store.AppendInsertSandbox(NodeId{0}, SandboxId{1}, MakeFingerprints(1, 1));
    store.AppendBasePage(NodeId{0}, SandboxId{1}, PageIndex{0}, page);
    store.Checkpoint();
    // Post-checkpoint tail.
    store.AppendInsertSandbox(NodeId{0}, SandboxId{2}, MakeFingerprints(1, 1));
  }
  LogStore reopened(opts);
  const RecoveredState state = reopened.Recover();
  EXPECT_TRUE(state.clean);
  EXPECT_GT(state.checkpoint_records, 0u);
  EXPECT_EQ(state.log_records, 1u);
  ASSERT_EQ(state.sandboxes.size(), 2u);
  EXPECT_EQ(state.sandboxes[0].pages[0].second, page);
  CleanupDir(dir);
}

TEST(LogStoreTest, ReplaySuppressionDoesNotRelog) {
  const std::string dir = FreshDir("medes_store_test_replay");
  StoreOptions opts;
  opts.backend = StoreBackend::kPersistent;
  opts.directory = dir;
  {
    LogStore store(opts);
    store.AppendInsertSandbox(NodeId{0}, SandboxId{1}, MakeFingerprints(1, 1));
  }
  LogStore reopened(opts);
  const uint64_t log_bytes_before = reopened.durability_stats().log_bytes;
  reopened.SetReplaying(true);
  reopened.AppendInsertSandbox(NodeId{0}, SandboxId{1}, MakeFingerprints(1, 1));
  reopened.SetReplaying(false);
  EXPECT_EQ(reopened.durability_stats().log_bytes, log_bytes_before);
  EXPECT_EQ(reopened.stats().registry_entries, 1u);  // residency still admitted
  CleanupDir(dir);
}

TEST(StateStoreTest, FactorySelectsBackend) {
  StoreOptions opts;
  EXPECT_STREQ(MakeStateStore(opts)->name(), "memory");
  opts.backend = StoreBackend::kPersistent;
  opts.directory = FreshDir("medes_store_test_factory");
  EXPECT_STREQ(MakeStateStore(opts)->name(), "persistent");
  CleanupDir(opts.directory);
}

}  // namespace
}  // namespace medes::store
