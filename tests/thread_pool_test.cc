#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace medes {
namespace {

TEST(ThreadPoolTest, InlinePoolRunsTasksImmediately) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.NumThreads(), 1u);
  int runs = 0;
  pool.Submit([&] { ++runs; });
  EXPECT_EQ(runs, 1) << "size-1 pools execute inline";
  pool.Wait();
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> counts(1000);
    pool.ParallelFor(0, counts.size(), [&](size_t i) { counts[i].fetch_add(1); });
    for (size_t i = 0; i < counts.size(); ++i) {
      EXPECT_EQ(counts[i].load(), 1) << "index " << i << " with " << threads << " threads";
    }
  }
}

TEST(ThreadPoolTest, ParallelForRespectsRangeBounds) {
  ThreadPool pool(4);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(10, 20, [&](size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 145u);  // 10 + 11 + ... + 19
  pool.ParallelFor(5, 5, [&](size_t) { FAIL() << "empty range must not run"; });
}

TEST(ThreadPoolTest, SubmittedTasksAllRunBeforeWaitReturns) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { done.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, ExceptionsPropagateToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(0, 64,
                                [](size_t i) {
                                  if (i == 13) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);
  // The pool stays usable after an exception.
  std::atomic<int> ok{0};
  pool.ParallelFor(0, 8, [&](size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 8);
}

TEST(ThreadPoolTest, ExceptionsPropagateFromInlinePool) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.ParallelFor(0, 4,
                                [](size_t) { throw std::logic_error("inline boom"); }),
               std::logic_error);
}

TEST(ThreadPoolTest, DefaultThreadCountHonoursEnvKnob) {
  // MEDES_THREADS is the CI knob for exercising 1-, 2- and 8-thread configs.
  ASSERT_EQ(setenv("MEDES_THREADS", "3", /*overwrite=*/1), 0);
  EXPECT_EQ(ThreadPool::DefaultThreadCount(), 3u);
  ThreadPool pool(0);
  EXPECT_EQ(pool.NumThreads(), 3u);
  ASSERT_EQ(setenv("MEDES_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u) << "garbage falls back to hardware";
  ASSERT_EQ(unsetenv("MEDES_THREADS"), 0);
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

}  // namespace
}  // namespace medes
