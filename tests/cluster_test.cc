#include "cluster/cluster.h"

#include <gtest/gtest.h>

#include <cstring>

namespace medes {
namespace {

ClusterOptions SmallCluster() {
  ClusterOptions opts;
  opts.num_nodes = 3;
  opts.node_memory_mb = 512;
  opts.bytes_per_mb = 8192;
  return opts;
}

class ClusterTest : public ::testing::Test {
 protected:
  Cluster cluster_{SmallCluster()};
  const FunctionProfile& vanilla_ = ProfileByName("Vanilla");
  const FunctionProfile& rnn_ = ProfileByName("RNNModel");
};

TEST_F(ClusterTest, SpawnAccountsMemory) {
  Sandbox& sb = cluster_.Spawn(vanilla_, NodeId{0}, SimTime{0});
  EXPECT_EQ(sb.state, SandboxState::kRunning);
  EXPECT_DOUBLE_EQ(cluster_.node(NodeId{0}).used_mb, vanilla_.memory_mb);
  EXPECT_DOUBLE_EQ(cluster_.RecomputeNodeUsedMb(NodeId{0}), vanilla_.memory_mb);
  EXPECT_EQ(cluster_.node(NodeId{0}).sandboxes.size(), 1u);
}

TEST_F(ClusterTest, PurgeReleasesMemory) {
  Sandbox& sb = cluster_.Spawn(vanilla_, NodeId{1}, SimTime{0});
  SandboxId id = sb.id;
  cluster_.Purge(id);
  EXPECT_DOUBLE_EQ(cluster_.node(NodeId{1}).used_mb, 0.0);
  EXPECT_EQ(cluster_.Find(id), nullptr);
  EXPECT_TRUE(cluster_.node(NodeId{1}).sandboxes.empty());
  EXPECT_THROW(cluster_.Purge(id), std::out_of_range);
}

TEST_F(ClusterTest, LifecycleTransitions) {
  Sandbox& sb = cluster_.Spawn(vanilla_, NodeId{0}, SimTime{0});
  cluster_.MarkWarm(sb, SimTime{100});
  EXPECT_EQ(sb.state, SandboxState::kWarm);
  EXPECT_EQ(sb.idle_since, SimTime{100});
  cluster_.MarkRunning(sb, SimTime{200});
  EXPECT_EQ(sb.state, SandboxState::kRunning);
  EXPECT_EQ(sb.generation, 2u);
  EXPECT_EQ(sb.runs, 1u);
}

TEST_F(ClusterTest, MarkDedupRequiresCheckpoint) {
  Sandbox& sb = cluster_.Spawn(vanilla_, NodeId{0}, SimTime{0});
  cluster_.MarkWarm(sb, SimTime{0});
  EXPECT_THROW(cluster_.MarkDedup(sb, SimTime{0}), std::logic_error);
}

TEST_F(ClusterTest, DedupAccountingUsesCheckpointSizes) {
  Sandbox& sb = cluster_.Spawn(vanilla_, NodeId{0}, SimTime{0});
  cluster_.MarkWarm(sb, SimTime{0});
  MemoryImage image = cluster_.BuildImage(sb);
  sb.checkpoint = MemoryCheckpoint::Capture(image);
  // Patch away the first resident page to shrink the footprint.
  size_t page = 0;
  while (sb.checkpoint->SlotState(page) != PageSlotState::kResident) {
    ++page;
  }
  sb.checkpoint->ReplaceWithPatch(page, std::vector<uint8_t>(200, 1));
  cluster_.MarkDedup(sb, SimTime{10});
  EXPECT_EQ(sb.state, SandboxState::kDedup);
  double dedup_mb = cluster_.DedupFootprintMb(sb);
  EXPECT_LT(dedup_mb, vanilla_.memory_mb);
  EXPECT_NEAR(cluster_.node(NodeId{0}).used_mb, dedup_mb, 1e-9);
  EXPECT_NEAR(cluster_.RecomputeNodeUsedMb(NodeId{0}), cluster_.node(NodeId{0}).used_mb, 1e-9);
  // Restore flips accounting back.
  cluster_.MarkRestored(sb, SimTime{20});
  EXPECT_EQ(sb.state, SandboxState::kWarm);
  EXPECT_NEAR(cluster_.node(NodeId{0}).used_mb, vanilla_.memory_mb, 1e-9);
  EXPECT_FALSE(sb.checkpoint.has_value());
}

TEST_F(ClusterTest, MarkRunningOnDedupRejected) {
  Sandbox& sb = cluster_.Spawn(vanilla_, NodeId{0}, SimTime{0});
  cluster_.MarkWarm(sb, SimTime{0});
  MemoryImage image = cluster_.BuildImage(sb);
  sb.checkpoint = MemoryCheckpoint::Capture(image);
  cluster_.MarkDedup(sb, SimTime{0});
  EXPECT_THROW(cluster_.MarkRunning(sb, SimTime{1}), std::logic_error);
}

TEST_F(ClusterTest, BaseSnapshotAccounting) {
  Sandbox& sb = cluster_.Spawn(rnn_, NodeId{2}, SimTime{0});
  cluster_.MarkWarm(sb, SimTime{0});
  MemoryImage image = cluster_.BuildImage(sb);
  cluster_.AddBaseSnapshot(sb, MemoryCheckpoint::Capture(image));
  EXPECT_NEAR(cluster_.node(NodeId{2}).used_mb, 2 * rnn_.memory_mb, 1e-9);
  EXPECT_EQ(cluster_.NumBaseSnapshots(rnn_.id), 1);
  EXPECT_THROW(cluster_.AddBaseSnapshot(sb, MemoryCheckpoint::Capture(image)), std::logic_error);
  cluster_.RemoveBaseSnapshot(sb.id);
  EXPECT_NEAR(cluster_.node(NodeId{2}).used_mb, rnn_.memory_mb, 1e-9);
  EXPECT_EQ(cluster_.NumBaseSnapshots(rnn_.id), 0);
}

TEST_F(ClusterTest, ReadBasePageReturnsBytes) {
  Sandbox& sb = cluster_.Spawn(vanilla_, NodeId{0}, SimTime{0});
  cluster_.MarkWarm(sb, SimTime{0});
  MemoryImage image = cluster_.BuildImage(sb);
  cluster_.AddBaseSnapshot(sb, MemoryCheckpoint::Capture(image));
  auto page = cluster_.ReadBasePage({.node = NodeId{0}, .sandbox = sb.id, .page_index = PageIndex{0}});
  ASSERT_EQ(page.size(), kPageSize);
  EXPECT_TRUE(std::equal(page.begin(), page.end(), image.Page(0).begin()));
  // Unknown sandbox or out-of-range page -> empty.
  EXPECT_TRUE(cluster_.ReadBasePage({.node = NodeId{0}, .sandbox = SandboxId{9999}, .page_index = PageIndex{0}}).empty());
  EXPECT_TRUE(cluster_.ReadBasePage({.node = NodeId{0}, .sandbox = sb.id, .page_index = PageIndex{1u << 30}}).empty());
}

TEST_F(ClusterTest, ReadBasePageZeroSlot) {
  Sandbox& sb = cluster_.Spawn(vanilla_, NodeId{0}, SimTime{0});
  cluster_.MarkWarm(sb, SimTime{0});
  MemoryImage image = cluster_.BuildImage(sb);
  MemoryCheckpoint cp = MemoryCheckpoint::Capture(image);
  ASSERT_GT(cp.NumZero(), 0u);
  uint32_t zero_page = 0;
  for (size_t p = 0; p < cp.NumPages(); ++p) {
    if (cp.SlotState(p) == PageSlotState::kZero) {
      zero_page = static_cast<uint32_t>(p);
      break;
    }
  }
  cluster_.AddBaseSnapshot(sb, std::move(cp));
  auto page = cluster_.ReadBasePage({.node = NodeId{0}, .sandbox = sb.id, .page_index = PageIndex{zero_page}});
  ASSERT_EQ(page.size(), kPageSize);
  EXPECT_TRUE(std::all_of(page.begin(), page.end(), [](uint8_t b) { return b == 0; }));
}

TEST_F(ClusterTest, SandboxesInFiltersByFunctionAndState) {
  Sandbox& a = cluster_.Spawn(vanilla_, NodeId{0}, SimTime{0});
  Sandbox& b = cluster_.Spawn(vanilla_, NodeId{1}, SimTime{0});
  cluster_.Spawn(rnn_, NodeId{2}, SimTime{0});
  cluster_.MarkWarm(a, SimTime{0});
  cluster_.MarkWarm(b, SimTime{0});
  EXPECT_EQ(cluster_.SandboxesIn(vanilla_.id, SandboxState::kWarm).size(), 2u);
  EXPECT_EQ(cluster_.SandboxesIn(rnn_.id, SandboxState::kRunning).size(), 1u);
  EXPECT_TRUE(cluster_.SandboxesIn(rnn_.id, SandboxState::kDedup).empty());
}

// The incremental per-(function, state) counters must agree with the
// exhaustive scan at every point of a mixed lifecycle (the controller's
// hot-path reads go through CountIn; SandboxesIn is the oracle).
TEST_F(ClusterTest, CountInMatchesSandboxesInOracle) {
  auto check_all = [&] {
    for (FunctionId f : {vanilla_.id, rnn_.id}) {
      for (SandboxState s :
           {SandboxState::kRunning, SandboxState::kWarm, SandboxState::kDedup}) {
        EXPECT_EQ(static_cast<size_t>(cluster_.CountIn(f, s)), cluster_.SandboxesIn(f, s).size())
            << "function " << f << " state " << static_cast<int>(s);
      }
    }
  };
  check_all();
  Sandbox& a = cluster_.Spawn(vanilla_, NodeId{0}, SimTime{0});
  Sandbox& b = cluster_.Spawn(vanilla_, NodeId{1}, SimTime{0});
  Sandbox& c = cluster_.Spawn(rnn_, NodeId{2}, SimTime{0});
  check_all();
  cluster_.MarkWarm(a, SimTime{0});
  cluster_.MarkWarm(b, SimTime{0});
  cluster_.MarkWarm(c, SimTime{0});
  check_all();
  cluster_.MarkRunning(b, SimTime{10});
  check_all();
  const SandboxId a_id = a.id;
  cluster_.Purge(a_id);
  check_all();
  EXPECT_EQ(cluster_.CountIn(vanilla_.id, SandboxState::kWarm), 0);
  EXPECT_EQ(cluster_.CountIn(vanilla_.id, SandboxState::kRunning), 1);
  EXPECT_EQ(cluster_.CountIn(rnn_.id, SandboxState::kWarm), 1);
}

TEST_F(ClusterTest, LeastUsedNode) {
  cluster_.Spawn(rnn_, NodeId{0}, SimTime{0});
  cluster_.Spawn(vanilla_, NodeId{1}, SimTime{0});
  EXPECT_EQ(cluster_.LeastUsedNode(), NodeId{2});
  cluster_.Spawn(rnn_, NodeId{2}, SimTime{0});
  EXPECT_EQ(cluster_.LeastUsedNode(), NodeId{1});
}

TEST_F(ClusterTest, BuildImageChangesWithGeneration) {
  Sandbox& sb = cluster_.Spawn(vanilla_, NodeId{0}, SimTime{0});
  MemoryImage g1 = cluster_.BuildImage(sb);
  cluster_.MarkWarm(sb, SimTime{0});
  cluster_.MarkRunning(sb, SimTime{1});  // generation bump
  MemoryImage g2 = cluster_.BuildImage(sb);
  ASSERT_EQ(g1.SizeBytes(), g2.SizeBytes());
  EXPECT_NE(std::memcmp(g1.bytes().data(), g2.bytes().data(), g1.SizeBytes()), 0);
}

TEST_F(ClusterTest, TotalsAggregate) {
  cluster_.Spawn(vanilla_, NodeId{0}, SimTime{0});
  cluster_.Spawn(rnn_, NodeId{1}, SimTime{0});
  EXPECT_NEAR(cluster_.TotalUsedMb(), vanilla_.memory_mb + rnn_.memory_mb, 1e-9);
  EXPECT_DOUBLE_EQ(cluster_.TotalLimitMb(), 3 * 512.0);
}

TEST(ClusterOptionsTest, RejectsZeroNodes) {
  ClusterOptions opts;
  opts.num_nodes = 0;
  EXPECT_THROW(Cluster{opts}, std::invalid_argument);
}

}  // namespace
}  // namespace medes
