// Unit tests for the observability subsystem: flags, instruments, the span
// tracer, and the Chrome-trace / Prometheus / JSON exporters.
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace medes::obs {
namespace {

#ifdef MEDES_OBS_DISABLED

// -DMEDES_OBS=OFF builds: the API surface must still exist, pinned off.
TEST(ObsTest, DisabledBuildPinsFlagsOff) {
  static_assert(!TraceEnabled());
  static_assert(!MetricsEnabled());
  static_assert(!WallClockProfilingEnabled());
  SetTraceEnabled(true);  // compiles, does nothing
  EXPECT_FALSE(TraceEnabled());
}

#else

// Every test runs with both knobs on and leaves global state empty.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetMetricsEnabled(true);
    SetTraceEnabled(true);
    SetWallClockProfiling(false);
    MetricsRegistry::Default().ResetValues();
    Tracer::Default().Clear();
    SnapshotSeries::Default().Clear();
  }
  void TearDown() override {
    MetricsRegistry::Default().ResetValues();
    Tracer::Default().Clear();
    SnapshotSeries::Default().Clear();
    SetMetricsEnabled(false);
    SetTraceEnabled(false);
  }
};

TEST_F(ObsTest, CounterRespectsEnableFlag) {
  Counter& c = MetricsRegistry::Default().GetCounter("obs_test_counter_total", "test");
  c.Add(2);
  EXPECT_EQ(c.Value(), 2u);
  SetMetricsEnabled(false);
  c.Add(5);
  EXPECT_EQ(c.Value(), 2u);
  SetMetricsEnabled(true);
  c.Add(1);
  EXPECT_EQ(c.Value(), 3u);
}

TEST_F(ObsTest, RegistryReturnsSameInstrumentForSameNameAndLabel) {
  MetricsRegistry& registry = MetricsRegistry::Default();
  Counter& a = registry.GetCounter("obs_test_dup_total", "test", "k", "v1");
  Counter& b = registry.GetCounter("obs_test_dup_total", "test", "k", "v1");
  Counter& other = registry.GetCounter("obs_test_dup_total", "test", "k", "v2");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &other);
}

TEST_F(ObsTest, HistogramBucketsAndSum) {
  Histogram& h = MetricsRegistry::Default().GetHistogram("obs_test_hist_us", "test");
  h.Record(0);   // bucket 0
  h.Record(1);   // bucket 1
  h.Record(3);   // bucket 2
  h.Record(3);   // bucket 2
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(2), 2u);
  EXPECT_EQ(h.TotalCount(), 4u);
  EXPECT_EQ(h.Sum(), 7);
}

TEST_F(ObsTest, SnapshotIsSortedByNameAndLabel) {
  MetricsRegistry& registry = MetricsRegistry::Default();
  // Register deliberately out of order.
  registry.GetCounter("obs_test_z_total", "test").Add(1);
  registry.GetCounter("obs_test_a_total", "test", "k", "v2").Add(1);
  registry.GetCounter("obs_test_a_total", "test", "k", "v1").Add(1);
  const auto snaps = MetricsRegistry::Default().Snapshot();
  std::vector<std::pair<std::string, std::string>> keys;
  for (const auto& s : snaps) {
    if (s.name.starts_with("obs_test_")) {
      keys.emplace_back(s.name, s.label_value);
    }
  }
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], (std::pair<std::string, std::string>{"obs_test_a_total", "v1"}));
  EXPECT_EQ(keys[1], (std::pair<std::string, std::string>{"obs_test_a_total", "v2"}));
  EXPECT_EQ(keys[2], (std::pair<std::string, std::string>{"obs_test_z_total", ""}));
}

TEST_F(ObsTest, ResetValuesKeepsRegistrations) {
  MetricsRegistry& registry = MetricsRegistry::Default();
  Counter& c = registry.GetCounter("obs_test_reset_total", "test");
  c.Add(9);
  const size_t instruments = registry.NumInstruments();
  registry.ResetValues();
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(registry.NumInstruments(), instruments);
  // Same address after reset: cached references stay valid.
  EXPECT_EQ(&registry.GetCounter("obs_test_reset_total", "test"), &c);
}

TEST_F(ObsTest, ScopedSpanRecordsOnDestruction) {
  {
    ScopedSpan span("unit/span", "test", SimTime{100}, 7);
    span.SetSimDuration(SimDuration{25});
    span.AddArg("pages", 42);
  }
  auto spans = Tracer::Default().Drain();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "unit/span");
  EXPECT_STREQ(spans[0].category, "test");
  EXPECT_EQ(spans[0].ts, SimTime{100});
  EXPECT_EQ(spans[0].dur, SimDuration{25});
  EXPECT_EQ(spans[0].lane, 7);
  ASSERT_EQ(spans[0].num_args, 1u);
  EXPECT_STREQ(spans[0].args[0].key, "pages");
  EXPECT_EQ(spans[0].args[0].value, 42);
  EXPECT_EQ(spans[0].wall_ns, -1);  // wall profiling off
}

TEST_F(ObsTest, SpanNotRecordedWhenTracingDisabled) {
  SetTraceEnabled(false);
  {
    ScopedSpan span("unit/disabled", "test", SimTime{});
    span.SetSimDuration(SimDuration{1});
  }
  SetTraceEnabled(true);
  EXPECT_TRUE(Tracer::Default().Drain().empty());
}

TEST_F(ObsTest, DrainSortsByTimestampAcrossThreads) {
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 300;  // crosses the flush threshold
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        ScopedSpan span("unit/mt", "test", SimTime{i * kThreads + t}, t);
        span.SetSimDuration(SimDuration{1});
      }
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }
  auto spans = Tracer::Default().Drain();
  ASSERT_EQ(spans.size(), static_cast<size_t>(kThreads * kSpansPerThread));
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_LE(spans[i - 1].ts, spans[i].ts);
  }
  EXPECT_TRUE(Tracer::Default().Drain().empty());  // drain consumed everything
}

TEST_F(ObsTest, WallClockProfilingStampsSpans) {
  SetWallClockProfiling(true);
  {
    ScopedSpan span("unit/wall", "test", SimTime{});
  }
  SetWallClockProfiling(false);
  auto spans = Tracer::Default().Drain();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_GE(spans[0].wall_ns, 0);
}

TEST_F(ObsTest, ChromeTraceJsonShape) {
  {
    ScopedSpan span("unit/json", "test", SimTime{10}, 2);
    span.SetSimDuration(SimDuration{5});
    span.AddArg("n", 3);
  }
  RecordInstant("unit/mark", "test", SimTime{11}, 2);
  const std::string json = ChromeTraceJson(Tracer::Default().Drain());
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"unit/json\",\"cat\":\"test\",\"ph\":\"X\",\"ts\":10,"
                      "\"dur\":5,\"pid\":0,\"tid\":2,\"args\":{\"n\":3}"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"unit/mark\",\"cat\":\"test\",\"ph\":\"i\",\"ts\":11,"
                      "\"pid\":0,\"tid\":2,\"s\":\"t\""),
            std::string::npos);
}

TEST_F(ObsTest, PrometheusTextShape) {
  MetricsRegistry& registry = MetricsRegistry::Default();
  registry.GetCounter("obs_test_prom_total", "counter help", "type", "x").Add(4);
  registry.GetGauge("obs_test_prom_level", "gauge help").Set(-2);
  Histogram& h = registry.GetHistogram("obs_test_prom_us", "hist help");
  h.Record(3);
  const std::string text = PrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("# HELP obs_test_prom_total counter help"), std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_test_prom_total counter"), std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_total{type=\"x\"} 4"), std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_test_prom_level gauge"), std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_level -2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_test_prom_us histogram"), std::string::npos);
  // Cumulative buckets: value 3 lands in the bit-width-2 bucket (le="3").
  EXPECT_NE(text.find("obs_test_prom_us_bucket{le=\"1\"} 0"), std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_us_bucket{le=\"3\"} 1"), std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_us_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_us_sum 3"), std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_us_count 1"), std::string::npos);
}

TEST_F(ObsTest, MetricsJsonShape) {
  MetricsRegistry& registry = MetricsRegistry::Default();
  registry.GetCounter("obs_test_json_total", "help").Add(7);
  const std::string json = MetricsJson(registry.Snapshot());
  EXPECT_NE(json.find("{\"name\":\"obs_test_json_total\",\"kind\":\"counter\",\"value\":7}"),
            std::string::npos);
}

TEST_F(ObsTest, SnapshotSeriesSamplesCountersAndGauges) {
  MetricsRegistry& registry = MetricsRegistry::Default();
  registry.GetCounter("obs_test_series_total", "help").Add(1);
  SnapshotSeries::Default().Sample(SimTime{1000});
  registry.GetCounter("obs_test_series_total", "help").Add(2);
  SnapshotSeries::Default().Sample(SimTime{2000});
  const auto points = SnapshotSeries::Default().Points();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].t, SimTime{1000});
  EXPECT_EQ(points[1].t, SimTime{2000});
  auto value_of = [](const SnapshotSeries::Point& p, const std::string& key) -> int64_t {
    for (const auto& [k, v] : p.values) {
      if (k == key) {
        return v;
      }
    }
    return -1;
  };
  EXPECT_EQ(value_of(points[0], "obs_test_series_total"), 1);
  EXPECT_EQ(value_of(points[1], "obs_test_series_total"), 3);
  const std::string json = SeriesJson(points);
  EXPECT_NE(json.find("{\"t\":1000,\"values\":{"), std::string::npos);
}

#endif  // MEDES_OBS_DISABLED

}  // namespace
}  // namespace medes::obs
