// Unit tests for the observability subsystem: flags, instruments, the span
// tracer, and the Chrome-trace / Prometheus / JSON exporters.
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace medes::obs {
namespace {

#ifdef MEDES_OBS_DISABLED

// -DMEDES_OBS=OFF builds: the API surface must still exist, pinned off.
TEST(ObsTest, DisabledBuildPinsFlagsOff) {
  static_assert(!TraceEnabled());
  static_assert(!MetricsEnabled());
  static_assert(!WallClockProfilingEnabled());
  SetTraceEnabled(true);  // compiles, does nothing
  EXPECT_FALSE(TraceEnabled());
}

#else

// Every test runs with both knobs on and leaves global state empty.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetMetricsEnabled(true);
    SetTraceEnabled(true);
    SetWallClockProfiling(false);
    MetricsRegistry::Default().ResetValues();
    Tracer::Default().Clear();
    SnapshotSeries::Default().Clear();
  }
  void TearDown() override {
    MetricsRegistry::Default().ResetValues();
    Tracer::Default().Clear();
    SnapshotSeries::Default().Clear();
    SetMetricsEnabled(false);
    SetTraceEnabled(false);
  }
};

TEST_F(ObsTest, CounterRespectsEnableFlag) {
  Counter& c = MetricsRegistry::Default().GetCounter("obs_test_counter_total", "test");
  c.Add(2);
  EXPECT_EQ(c.Value(), 2u);
  SetMetricsEnabled(false);
  c.Add(5);
  EXPECT_EQ(c.Value(), 2u);
  SetMetricsEnabled(true);
  c.Add(1);
  EXPECT_EQ(c.Value(), 3u);
}

TEST_F(ObsTest, RegistryReturnsSameInstrumentForSameNameAndLabel) {
  MetricsRegistry& registry = MetricsRegistry::Default();
  Counter& a = registry.GetCounter("obs_test_dup_total", "test", "k", "v1");
  Counter& b = registry.GetCounter("obs_test_dup_total", "test", "k", "v1");
  Counter& other = registry.GetCounter("obs_test_dup_total", "test", "k", "v2");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &other);
}

TEST_F(ObsTest, HistogramBucketsAndSum) {
  Histogram& h = MetricsRegistry::Default().GetHistogram("obs_test_hist_us", "test");
  h.Record(0);   // bucket 0
  h.Record(1);   // bucket 1
  h.Record(3);   // bucket 2
  h.Record(3);   // bucket 2
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(2), 2u);
  EXPECT_EQ(h.TotalCount(), 4u);
  EXPECT_EQ(h.Sum(), 7);
}

TEST_F(ObsTest, SnapshotIsSortedByNameAndLabel) {
  MetricsRegistry& registry = MetricsRegistry::Default();
  // Register deliberately out of order.
  registry.GetCounter("obs_test_z_total", "test").Add(1);
  registry.GetCounter("obs_test_a_total", "test", "k", "v2").Add(1);
  registry.GetCounter("obs_test_a_total", "test", "k", "v1").Add(1);
  const auto snaps = MetricsRegistry::Default().Snapshot();
  std::vector<std::pair<std::string, std::string>> keys;
  for (const auto& s : snaps) {
    if (s.name.starts_with("obs_test_")) {
      keys.emplace_back(s.name, s.label_value);
    }
  }
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], (std::pair<std::string, std::string>{"obs_test_a_total", "v1"}));
  EXPECT_EQ(keys[1], (std::pair<std::string, std::string>{"obs_test_a_total", "v2"}));
  EXPECT_EQ(keys[2], (std::pair<std::string, std::string>{"obs_test_z_total", ""}));
}

TEST_F(ObsTest, ResetValuesKeepsRegistrations) {
  MetricsRegistry& registry = MetricsRegistry::Default();
  Counter& c = registry.GetCounter("obs_test_reset_total", "test");
  c.Add(9);
  const size_t instruments = registry.NumInstruments();
  registry.ResetValues();
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(registry.NumInstruments(), instruments);
  // Same address after reset: cached references stay valid.
  EXPECT_EQ(&registry.GetCounter("obs_test_reset_total", "test"), &c);
}

TEST_F(ObsTest, ScopedSpanRecordsOnDestruction) {
  {
    ScopedSpan span("unit/span", "test", SimTime{100}, 7);
    span.SetSimDuration(SimDuration{25});
    span.AddArg("pages", 42);
  }
  auto spans = Tracer::Default().Drain();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "unit/span");
  EXPECT_STREQ(spans[0].category, "test");
  EXPECT_EQ(spans[0].ts, SimTime{100});
  EXPECT_EQ(spans[0].dur, SimDuration{25});
  EXPECT_EQ(spans[0].lane, 7);
  ASSERT_EQ(spans[0].num_args, 1u);
  EXPECT_STREQ(spans[0].args[0].key, "pages");
  EXPECT_EQ(spans[0].args[0].value, 42);
  EXPECT_EQ(spans[0].wall_ns, -1);  // wall profiling off
}

TEST_F(ObsTest, SpanNotRecordedWhenTracingDisabled) {
  SetTraceEnabled(false);
  {
    ScopedSpan span("unit/disabled", "test", SimTime{});
    span.SetSimDuration(SimDuration{1});
  }
  SetTraceEnabled(true);
  EXPECT_TRUE(Tracer::Default().Drain().empty());
}

TEST_F(ObsTest, DrainSortsByTimestampAcrossThreads) {
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 300;  // crosses the flush threshold
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        ScopedSpan span("unit/mt", "test", SimTime{i * kThreads + t}, t);
        span.SetSimDuration(SimDuration{1});
      }
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }
  auto spans = Tracer::Default().Drain();
  ASSERT_EQ(spans.size(), static_cast<size_t>(kThreads * kSpansPerThread));
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_LE(spans[i - 1].ts, spans[i].ts);
  }
  EXPECT_TRUE(Tracer::Default().Drain().empty());  // drain consumed everything
}

TEST_F(ObsTest, WallClockProfilingStampsSpans) {
  SetWallClockProfiling(true);
  {
    ScopedSpan span("unit/wall", "test", SimTime{});
  }
  SetWallClockProfiling(false);
  auto spans = Tracer::Default().Drain();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_GE(spans[0].wall_ns, 0);
}

TEST_F(ObsTest, ChromeTraceJsonShape) {
  {
    ScopedSpan span("unit/json", "test", SimTime{10}, 2);
    span.SetSimDuration(SimDuration{5});
    span.AddArg("n", 3);
  }
  RecordInstant("unit/mark", "test", SimTime{11}, 2);
  const std::string json = ChromeTraceJson(Tracer::Default().Drain());
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"unit/json\",\"cat\":\"test\",\"ph\":\"X\",\"ts\":10,"
                      "\"dur\":5,\"pid\":0,\"tid\":2,\"args\":{\"n\":3}"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"unit/mark\",\"cat\":\"test\",\"ph\":\"i\",\"ts\":11,"
                      "\"pid\":0,\"tid\":2,\"s\":\"t\""),
            std::string::npos);
}

TEST_F(ObsTest, PrometheusTextShape) {
  MetricsRegistry& registry = MetricsRegistry::Default();
  registry.GetCounter("obs_test_prom_total", "counter help", "type", "x").Add(4);
  registry.GetGauge("obs_test_prom_level", "gauge help").Set(-2);
  Histogram& h = registry.GetHistogram("obs_test_prom_us", "hist help");
  h.Record(3);
  const std::string text = PrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("# HELP obs_test_prom_total counter help"), std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_test_prom_total counter"), std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_total{type=\"x\"} 4"), std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_test_prom_level gauge"), std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_level -2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_test_prom_us histogram"), std::string::npos);
  // Cumulative buckets: value 3 lands in the bit-width-2 bucket (le="3").
  EXPECT_NE(text.find("obs_test_prom_us_bucket{le=\"1\"} 0"), std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_us_bucket{le=\"3\"} 1"), std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_us_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_us_sum 3"), std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_us_count 1"), std::string::npos);
}

TEST_F(ObsTest, MetricsJsonShape) {
  MetricsRegistry& registry = MetricsRegistry::Default();
  registry.GetCounter("obs_test_json_total", "help").Add(7);
  const std::string json = MetricsJson(registry.Snapshot());
  EXPECT_NE(json.find("{\"name\":\"obs_test_json_total\",\"kind\":\"counter\",\"value\":7}"),
            std::string::npos);
}

TEST_F(ObsTest, SnapshotSeriesSamplesCountersAndGauges) {
  MetricsRegistry& registry = MetricsRegistry::Default();
  registry.GetCounter("obs_test_series_total", "help").Add(1);
  SnapshotSeries::Default().Sample(SimTime{1000});
  registry.GetCounter("obs_test_series_total", "help").Add(2);
  SnapshotSeries::Default().Sample(SimTime{2000});
  const auto points = SnapshotSeries::Default().Points();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].t, SimTime{1000});
  EXPECT_EQ(points[1].t, SimTime{2000});
  auto value_of = [](const SnapshotSeries::Point& p, const std::string& key) -> int64_t {
    for (const auto& [k, v] : p.values) {
      if (k == key) {
        return v;
      }
    }
    return -1;
  };
  EXPECT_EQ(value_of(points[0], "obs_test_series_total"), 1);
  EXPECT_EQ(value_of(points[1], "obs_test_series_total"), 3);
  const std::string json = SeriesJson(points);
  EXPECT_NE(json.find("{\"t\":1000,\"values\":{"), std::string::npos);
}

// ---------------------------------------------------------------------------
// File-sink seam: exporters never touch the filesystem directly; every write
// goes through the installed FileSink (default: the store layer).
// ---------------------------------------------------------------------------

std::string* g_sink_path = nullptr;
std::string* g_sink_content = nullptr;

bool CaptureSink(const std::string& path, std::string_view content) {
  *g_sink_path = path;
  *g_sink_content = std::string(content);
  return true;
}

bool RejectSink(const std::string&, std::string_view) { return false; }

TEST_F(ObsTest, FileSinkSeamCapturesWrites) {
  std::string path;
  std::string content;
  g_sink_path = &path;
  g_sink_content = &content;
  SetFileSink(&CaptureSink);
  EXPECT_TRUE(WriteFile("capture/me.json", "payload"));
  SetFileSink(&RejectSink);
  EXPECT_FALSE(WriteFile("reject/me.json", "x"));
  SetFileSink(nullptr);  // restore the store-backed default
  EXPECT_EQ(path, "capture/me.json");
  EXPECT_EQ(content, "payload");
}

// ---------------------------------------------------------------------------
// Label-cardinality guard
// ---------------------------------------------------------------------------

TEST_F(ObsTest, CardinalityGuardAbsorbsNewSeriesPastTheCap) {
  MetricsRegistry& registry = MetricsRegistry::Default();
  const size_t old_max = registry.MaxSeries();
  registry.GetCounter("obs_test_guard_seed_total", "test").Add(1);
  registry.SetMaxSeries(registry.NumInstruments());  // cap at current size

  Counter& a = registry.GetCounter("obs_test_guard_over_a_total", "test");
  Counter& b = registry.GetCounter("obs_test_guard_over_b_total", "test");
  EXPECT_EQ(&a, &b);  // both land on the shared counter overflow sink
  EXPECT_EQ(registry.DroppedSeries(), 2u);
  a.Add(5);  // valid reference: call sites never crash past the cap

  // Existing series are unaffected, and the snapshot reports the drops.
  Counter& seed = registry.GetCounter("obs_test_guard_seed_total", "test");
  seed.Add(1);
  EXPECT_EQ(seed.Value(), 2u);
  EXPECT_EQ(registry.DroppedSeries(), 2u);  // re-lookup of existing: no drop
  bool saw_dropped_counter = false;
  for (const auto& snap : registry.Snapshot()) {
    if (snap.name == "medes_obs_series_dropped_total") {
      saw_dropped_counter = true;
      EXPECT_EQ(snap.value, 2);
    }
  }
  EXPECT_TRUE(saw_dropped_counter);

  registry.SetMaxSeries(old_max);
  registry.ResetValues();  // clears dropped_series_ for later tests
  EXPECT_EQ(registry.DroppedSeries(), 0u);
}

TEST_F(ObsTest, CardinalityGuardSinksPerKind) {
  MetricsRegistry& registry = MetricsRegistry::Default();
  const size_t old_max = registry.MaxSeries();
  registry.SetMaxSeries(registry.NumInstruments());
  Counter& c = registry.GetCounter("obs_test_guard_kind_total", "test");
  Gauge& g = registry.GetGauge("obs_test_guard_kind_level", "test");
  Histogram& h = registry.GetHistogram("obs_test_guard_kind_us", "test");
  c.Add(1);
  g.Set(2);
  h.Record(3);  // distinct sinks per kind: no type confusion
  EXPECT_EQ(registry.DroppedSeries(), 3u);
  registry.SetMaxSeries(old_max);
  registry.ResetValues();
}

// ---------------------------------------------------------------------------
// Prometheus exporter edge cases, cross-checked against the repository's
// text-format validator (scripts/check_prometheus_text.py).
// ---------------------------------------------------------------------------

std::string ScriptsDir() {
  const std::string file = __FILE__;  // .../tests/obs_test.cc (absolute via CMake)
  return file.substr(0, file.find_last_of('/')) + "/../scripts";
}

bool PrometheusCheckerAgrees(const std::string& text, const std::string& tag,
                             int min_series) {
  const std::string path = "obs_test_" + tag + ".prom";
  EXPECT_TRUE(WriteFile(path, text));
  const std::string cmd = "python3 " + ScriptsDir() + "/check_prometheus_text.py " + path +
                          " --min-series " + std::to_string(min_series) + " >/dev/null 2>&1";
  const int rc = std::system(cmd.c_str());
  std::remove(path.c_str());
  return rc == 0;
}

class PromEdgeCaseTest : public ObsTest {
 protected:
  void SetUp() override {
    ObsTest::SetUp();
    if (std::system("python3 --version >/dev/null 2>&1") != 0) {
      GTEST_SKIP() << "python3 unavailable";
    }
    if (std::system(("test -f " + ScriptsDir() + "/check_prometheus_text.py").c_str()) != 0) {
      GTEST_SKIP() << "checker script not found relative to test source";
    }
  }
};

std::vector<MetricSnapshot> SnapshotOf(const std::string& name) {
  std::vector<MetricSnapshot> out;
  for (auto& snap : MetricsRegistry::Default().Snapshot()) {
    if (snap.name == name) {
      out.push_back(snap);
    }
  }
  return out;
}

TEST_F(PromEdgeCaseTest, EmptyRegistryExportsEmptyText) {
  const std::string text = PrometheusText({});
  EXPECT_TRUE(text.empty());
  EXPECT_TRUE(PrometheusCheckerAgrees(text, "empty", 0));
}

TEST_F(PromEdgeCaseTest, SingleBucketHistogram) {
  Histogram& h = MetricsRegistry::Default().GetHistogram("obs_test_edge_single_us", "test");
  h.Record(0);  // only the first bucket (le="0") is occupied
  const std::string text = PrometheusText(SnapshotOf("obs_test_edge_single_us"));
  EXPECT_NE(text.find("obs_test_edge_single_us_bucket{le=\"0\"} 1"), std::string::npos);
  EXPECT_NE(text.find("obs_test_edge_single_us_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("obs_test_edge_single_us_sum 0"), std::string::npos);
  EXPECT_NE(text.find("obs_test_edge_single_us_count 1"), std::string::npos);
  EXPECT_TRUE(PrometheusCheckerAgrees(text, "single_bucket", 1));
}

TEST_F(PromEdgeCaseTest, InfOnlyObservations) {
  Histogram& h = MetricsRegistry::Default().GetHistogram("obs_test_edge_inf_us", "test");
  const int64_t huge = int64_t{1} << (Histogram::kNumBuckets + 2);
  h.Record(huge);
  h.Record(huge);  // every finite bucket stays 0; only +Inf advances
  const std::string text = PrometheusText(SnapshotOf("obs_test_edge_inf_us"));
  EXPECT_NE(text.find("obs_test_edge_inf_us_bucket{le=\"0\"} 0"), std::string::npos);
  EXPECT_NE(text.find("obs_test_edge_inf_us_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("obs_test_edge_inf_us_count 2"), std::string::npos);
  EXPECT_EQ(text.find("obs_test_edge_inf_us_bucket{le=\"+Inf\"} 0"), std::string::npos);
  EXPECT_TRUE(PrometheusCheckerAgrees(text, "inf_only", 1));
}

#endif  // MEDES_OBS_DISABLED

}  // namespace
}  // namespace medes::obs
