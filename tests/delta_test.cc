#include "delta/delta.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"

namespace medes {
namespace {

using delta_internal::AppendVarint;
using delta_internal::ReadVarint;

std::vector<uint8_t> RandomBytes(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> out(n);
  for (auto& b : out) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return out;
}

TEST(VarintTest, RoundTrip) {
  for (uint64_t v : {0ull, 1ull, 127ull, 128ull, 300ull, 16383ull, 16384ull,
                     0xffffffffull, 0xffffffffffffffffull}) {
    std::vector<uint8_t> buf;
    AppendVarint(buf, v);
    size_t pos = 0;
    EXPECT_EQ(ReadVarint(buf, pos), v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(VarintTest, TruncatedThrows) {
  std::vector<uint8_t> buf;
  AppendVarint(buf, 1u << 20);
  buf.pop_back();
  size_t pos = 0;
  EXPECT_THROW(ReadVarint(buf, pos), DeltaError);
}

TEST(DeltaTest, IdenticalBuffersProduceTinyDelta) {
  auto base = RandomBytes(4096, 1);
  auto delta = DeltaEncode(base, base);
  EXPECT_LT(delta.size(), 32u);  // header + one COPY
  EXPECT_EQ(DeltaDecode(base, delta), base);
}

TEST(DeltaTest, EmptyTarget) {
  auto base = RandomBytes(128, 2);
  auto delta = DeltaEncode(base, {});
  EXPECT_TRUE(DeltaDecode(base, delta).empty());
}

TEST(DeltaTest, EmptyBase) {
  auto target = RandomBytes(512, 3);
  auto delta = DeltaEncode({}, target);
  EXPECT_EQ(DeltaDecode({}, delta), target);
}

TEST(DeltaTest, UnrelatedBuffersStillRoundTrip) {
  auto base = RandomBytes(4096, 4);
  auto target = RandomBytes(4096, 5);
  auto delta = DeltaEncode(base, target);
  EXPECT_EQ(DeltaDecode(base, delta), target);
}

TEST(DeltaTest, SmallEditYieldsSmallPatch) {
  auto base = RandomBytes(4096, 6);
  auto target = base;
  // Mutate 16 bytes in the middle — models a few pointer rewrites.
  for (size_t i = 2000; i < 2016; ++i) {
    target[i] ^= 0xff;
  }
  auto delta = DeltaEncode(base, target);
  EXPECT_EQ(DeltaDecode(base, delta), target);
  EXPECT_LT(delta.size(), 128u) << "patch should be near the edit size";
}

TEST(DeltaTest, ShiftedContentIsFound) {
  // Insert 8 bytes at the front; the rest should COPY from the base.
  auto base = RandomBytes(4096, 7);
  std::vector<uint8_t> target(8, 0xaa);
  target.insert(target.end(), base.begin(), base.end());
  auto delta = DeltaEncode(base, target);
  EXPECT_EQ(DeltaDecode(base, delta), target);
  DeltaStats stats = InspectDelta(delta);
  EXPECT_GT(stats.copy_bytes, 4000u);
}

TEST(DeltaTest, Level0IsPureLiteral) {
  auto base = RandomBytes(1024, 8);
  auto delta = DeltaEncode(base, base, {.level = 0});
  DeltaStats stats = InspectDelta(delta);
  EXPECT_EQ(stats.copy_ops, 0u);
  EXPECT_EQ(stats.add_bytes, 1024u);
  EXPECT_EQ(DeltaDecode(base, delta), base);
}

TEST(DeltaTest, HigherLevelsNeverDecodeDifferently) {
  auto base = RandomBytes(8192, 9);
  auto target = base;
  Rng rng(10);
  for (int i = 0; i < 50; ++i) {
    target[rng.Below(target.size())] ^= 0x01;
  }
  for (int level : {0, 1, 3, 5, 9}) {
    auto delta = DeltaEncode(base, target, {.level = level});
    EXPECT_EQ(DeltaDecode(base, delta), target) << "level " << level;
  }
}

TEST(DeltaTest, HigherLevelAtLeastAsSmallOnRepetitiveInput) {
  // Token-structured data with scattered edits: deeper matching helps.
  std::vector<uint8_t> base;
  for (int t = 0; t < 128; ++t) {
    auto token = RandomBytes(64, static_cast<uint64_t>(t % 16));
    base.insert(base.end(), token.begin(), token.end());
  }
  std::vector<uint8_t> target = base;
  Rng rng(11);
  for (int i = 0; i < 40; ++i) {
    target[rng.Below(target.size())] ^= 0x80;
  }
  auto fast = DeltaEncode(base, target, {.level = 1});
  auto best = DeltaEncode(base, target, {.level = 9});
  EXPECT_LE(best.size(), fast.size() + 64);
}

TEST(DeltaTest, InspectMatchesEncode) {
  auto base = RandomBytes(4096, 12);
  auto target = base;
  target[100] ^= 1;
  auto delta = DeltaEncode(base, target);
  DeltaStats stats = InspectDelta(delta);
  EXPECT_EQ(stats.base_length, base.size());
  EXPECT_EQ(stats.target_length, target.size());
  EXPECT_EQ(stats.add_bytes + stats.copy_bytes, target.size());
  EXPECT_EQ(stats.delta_length, delta.size());
  EXPECT_EQ(DeltaTargetLength(delta), target.size());
}

TEST(DeltaTest, DecodeRejectsCorruptMagic) {
  auto base = RandomBytes(64, 13);
  auto delta = DeltaEncode(base, base);
  delta[0] = 'X';
  EXPECT_THROW(DeltaDecode(base, delta), DeltaError);
}

TEST(DeltaTest, DecodeRejectsWrongBase) {
  auto base = RandomBytes(64, 14);
  auto other = RandomBytes(128, 15);
  auto delta = DeltaEncode(base, base);
  EXPECT_THROW(DeltaDecode(other, delta), DeltaError);
}

TEST(DeltaTest, DecodeRejectsTruncatedDelta) {
  auto base = RandomBytes(1024, 16);
  auto target = RandomBytes(1024, 17);
  auto delta = DeltaEncode(base, target);
  delta.resize(delta.size() / 2);
  EXPECT_THROW(DeltaDecode(base, delta), DeltaError);
}

TEST(DeltaTest, RejectsTinySeed) {
  auto base = RandomBytes(64, 18);
  EXPECT_THROW(DeltaEncode(base, base, {.seed_length = 2}), DeltaError);
}

// Property-style sweep: random (base, target) pairs with varying similarity
// always round-trip, and patch size shrinks as similarity grows.
class DeltaPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DeltaPropertyTest, RoundTripAtManySimilarities) {
  const int mutations = GetParam();
  auto base = RandomBytes(4096, 100 + static_cast<uint64_t>(mutations));
  auto target = base;
  Rng rng(200 + static_cast<uint64_t>(mutations));
  for (int i = 0; i < mutations; ++i) {
    size_t off = rng.Below(target.size() - 8);
    uint64_t v = rng.Next();
    std::memcpy(target.data() + off, &v, 8);
  }
  auto delta = DeltaEncode(base, target);
  EXPECT_EQ(DeltaDecode(base, delta), target);
  if (mutations <= 4) {
    EXPECT_LT(delta.size(), 512u);
  }
}

INSTANTIATE_TEST_SUITE_P(MutationSweep, DeltaPropertyTest,
                         ::testing::Values(0, 1, 2, 4, 8, 16, 32, 64, 128, 256));

}  // namespace
}  // namespace medes
