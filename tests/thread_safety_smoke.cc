// Thread-safety analysis smoke check.
//
// Two jobs in one translation unit:
//
//  1. As a regular test, it exercises a small GUARDED_BY/REQUIRES-annotated
//     class through the medes::Mutex wrappers, proving the annotation macros
//     compile away cleanly under GCC and pass analysis under Clang.
//
//  2. As a negative-compile check: defining MEDES_TS_NEGATIVE_COMPILE adds a
//     method that reads a GUARDED_BY field without holding its lock. A Clang
//     build with -Wthread-safety -Werror=thread-safety must REJECT that
//     configuration. CI compiles this file both ways (see the thread-safety
//     job's "Negative-compile smoke check" step):
//
//       clang++ -std=c++20 -fsyntax-only -Isrc -Wthread-safety
//           -Werror=thread-safety tests/thread_safety_smoke.cc
//       # succeeds; adding -DMEDES_TS_NEGATIVE_COMPILE must fail.
//
//     GCC has no thread-safety analysis, so the violation is inert there —
//     which is exactly why the hard gate lives in the Clang CI job.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"

namespace medes {
namespace {

// A miniature of the pattern used across the tree (registry shards, the rdma
// cache, stats sinks): public methods EXCLUDES the lock, private helpers
// REQUIRES it, data is GUARDED_BY it.
class GuardedCounter {
 public:
  void Add(int delta) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    AddLocked(delta);
  }

  int value() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return value_;
  }

#ifdef MEDES_TS_NEGATIVE_COMPILE
  // Deliberate violation: touches the guarded field with no lock held. Clang
  // -Wthread-safety diagnoses "reading variable 'value_' requires holding
  // mutex 'mu_'"; with -Werror=thread-safety the build fails, which is the
  // outcome the CI negative-compile step asserts.
  int UnguardedRead() const { return value_; }
#endif

 private:
  void AddLocked(int delta) REQUIRES(mu_) { value_ += delta; }

  mutable Mutex mu_{"smoke counter"};
  int value_ GUARDED_BY(mu_) = 0;
};

TEST(ThreadSafetySmoke, AnnotatedCounterIsCoherent) {
  GuardedCounter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        counter.Add(1);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter.value(), 2000);
}

// Reader/writer flavour of the same pattern, against SharedMutex.
class GuardedTable {
 public:
  void Put(int v) EXCLUDES(mu_) {
    WriterLock lock(mu_);
    values_.push_back(v);
  }

  size_t size() const EXCLUDES(mu_) {
    ReaderLock lock(mu_);
    return values_.size();
  }

 private:
  mutable SharedMutex mu_{"smoke table"};
  std::vector<int> values_ GUARDED_BY(mu_);
};

TEST(ThreadSafetySmoke, SharedMutexAnnotationsCompile) {
  GuardedTable table;
  table.Put(1);
  table.Put(2);
  EXPECT_EQ(table.size(), 2u);
}

}  // namespace
}  // namespace medes

#ifdef MEDES_TS_NEGATIVE_COMPILE
// Keep the violating method reachable so it cannot be optimised out of the
// analysis (which runs on the AST regardless, but this also guards against a
// future -Wunused-member-function cleanup deleting the violation).
namespace medes {
int TouchUnguarded() {
  GuardedCounter counter;  // NOLINT
  return counter.UnguardedRead();
}
}  // namespace medes
#endif
