#include "policy/medes_policy.h"

#include <gtest/gtest.h>

#include "policy/keep_alive.h"

namespace medes {
namespace {

MedesPolicyInputs TypicalInputs() {
  MedesPolicyInputs in;
  in.total_sandboxes = 10;
  in.lambda_max = 2.0;
  in.reuse_warm_s = 0.5;
  in.reuse_dedup_s = 0.8;
  in.warm_mb = 32;
  in.dedup_mb = 12;
  in.restore_overhead_mb = 6;
  in.warm_start_s = 0.01;
  in.dedup_start_s = 0.2;
  return in;
}

TEST(MedesPolicyMathTest, AverageStartupLatencyBounds) {
  auto in = TypicalInputs();
  // All warm -> sW; all dedup -> sD; mixtures in between.
  EXPECT_DOUBLE_EQ(AverageStartupLatency(in, 10, 0), in.warm_start_s);
  EXPECT_DOUBLE_EQ(AverageStartupLatency(in, 0, 10), in.dedup_start_s);
  double mid = AverageStartupLatency(in, 5, 5);
  EXPECT_GT(mid, in.warm_start_s);
  EXPECT_LT(mid, in.dedup_start_s);
  // Monotone in W.
  EXPECT_LT(AverageStartupLatency(in, 8, 2), AverageStartupLatency(in, 2, 8));
}

TEST(MedesPolicyMathTest, MemoryFootprint) {
  auto in = TypicalInputs();
  EXPECT_DOUBLE_EQ(MemoryFootprintMb(in, 10, 0), 320.0);
  EXPECT_DOUBLE_EQ(MemoryFootprintMb(in, 0, 10), 180.0);
  EXPECT_DOUBLE_EQ(MemoryFootprintMb(in, 4, 6), 4 * 32.0 + 6 * 18.0);
}

TEST(MedesPolicyMathTest, ServiceableRate) {
  auto in = TypicalInputs();
  EXPECT_DOUBLE_EQ(ServiceableRate(in, 10, 0), 20.0);
  EXPECT_NEAR(ServiceableRate(in, 0, 10), 12.5, 1e-9);
}

TEST(SolveLatencyTest, LooseTargetDedupsEverything) {
  auto in = TypicalInputs();
  // alpha so large any split passes the latency bound -> min memory = all dedup.
  auto t = SolveLatencyObjective(in, 1000.0);
  ASSERT_TRUE(t.feasible);
  EXPECT_EQ(t.warm, 0);
  EXPECT_EQ(t.dedup, 10);
}

TEST(SolveLatencyTest, TightTargetKeepsWarm) {
  auto in = TypicalInputs();
  // alpha = 1 means S <= sW, only achievable with zero dedup starts.
  auto t = SolveLatencyObjective(in, 1.0);
  ASSERT_TRUE(t.feasible);
  EXPECT_EQ(t.dedup, 0);
  EXPECT_EQ(t.warm, 10);
}

TEST(SolveLatencyTest, IntermediateTargetMixes) {
  auto in = TypicalInputs();
  // Permit a mild latency inflation -> some dedups allowed.
  auto t = SolveLatencyObjective(in, 5.0);
  ASSERT_TRUE(t.feasible);
  EXPECT_GT(t.dedup, 0);
  EXPECT_GT(t.warm, 0);
  double s = AverageStartupLatency(in, t.warm, t.dedup);
  EXPECT_LE(s, 5.0 * in.warm_start_s + 1e-12);
  // It picked the max dedup satisfying the bound: one more dedup violates it.
  EXPECT_GT(AverageStartupLatency(in, t.warm - 1, t.dedup + 1), 5.0 * in.warm_start_s);
}

TEST(SolveLatencyTest, RateConstraintBlocksFullDedup) {
  auto in = TypicalInputs();
  in.lambda_max = 15.0;  // all-dedup serves only 12.5 req/s
  auto t = SolveLatencyObjective(in, 1000.0);
  ASSERT_TRUE(t.feasible);
  EXPECT_GE(ServiceableRate(in, t.warm, t.dedup), 15.0);
  EXPECT_GT(t.warm, 0);
}

TEST(SolveLatencyTest, InfeasibleWhenRateTooHigh) {
  auto in = TypicalInputs();
  in.lambda_max = 100.0;  // even all-warm only serves 20 req/s
  auto t = SolveLatencyObjective(in, 1000.0);
  EXPECT_FALSE(t.feasible);
}

TEST(SolveLatencyTest, ZeroSandboxesFeasibleOnlyAtZeroRate) {
  auto in = TypicalInputs();
  in.total_sandboxes = 0;
  in.lambda_max = 0.0;
  auto t = SolveLatencyObjective(in, 10.0);
  // W = D = 0 satisfies the rate constraint vacuously, but S is infinite;
  // the policy must not claim a latency-feasible split.
  EXPECT_FALSE(t.feasible);
}

TEST(SolveMemoryTest, GenerousCapKeepsAllWarm) {
  auto in = TypicalInputs();
  auto t = SolveMemoryObjective(in, 10000.0);
  ASSERT_TRUE(t.feasible);
  EXPECT_EQ(t.warm, 10);
}

TEST(SolveMemoryTest, TightCapForcesDedup) {
  auto in = TypicalInputs();
  auto t = SolveMemoryObjective(in, 200.0);  // all-warm needs 320
  ASSERT_TRUE(t.feasible);
  EXPECT_LE(MemoryFootprintMb(in, t.warm, t.dedup), 200.0);
  EXPECT_GT(t.dedup, 0);
  // Best latency under the cap: one more warm would blow the budget.
  EXPECT_GT(MemoryFootprintMb(in, t.warm + 1, t.dedup - 1), 200.0);
}

TEST(SolveMemoryTest, ImpossibleCapInfeasible) {
  auto in = TypicalInputs();
  auto t = SolveMemoryObjective(in, 100.0);  // even all-dedup needs 180
  EXPECT_FALSE(t.feasible);
}

TEST(SolveCombinedTest, BothConstraintsBind) {
  auto in = TypicalInputs();
  // Loose on both -> all dedup (min memory).
  auto loose = SolveCombinedObjective(in, 1000.0, 10000.0);
  ASSERT_TRUE(loose.feasible);
  EXPECT_EQ(loose.dedup, 10);
  // Tight latency forbids dedup even though the cap allows it.
  auto tight_latency = SolveCombinedObjective(in, 1.0, 10000.0);
  ASSERT_TRUE(tight_latency.feasible);
  EXPECT_EQ(tight_latency.dedup, 0);
  // Cap below all-warm with loose latency -> dedup to fit.
  auto tight_cap = SolveCombinedObjective(in, 1000.0, 250.0);
  ASSERT_TRUE(tight_cap.feasible);
  EXPECT_LE(MemoryFootprintMb(in, tight_cap.warm, tight_cap.dedup), 250.0);
  // Contradictory constraints -> infeasible.
  auto impossible = SolveCombinedObjective(in, 1.0, 250.0);
  EXPECT_FALSE(impossible.feasible);
}

TEST(SolveCombinedTest, SubsumesP1WhenCapIsLoose) {
  auto in = TypicalInputs();
  for (double alpha : {1.0, 2.5, 5.0, 20.0}) {
    auto p1 = SolveLatencyObjective(in, alpha);
    auto combined = SolveCombinedObjective(in, alpha, 1e18);
    EXPECT_EQ(p1.feasible, combined.feasible) << alpha;
    if (p1.feasible) {
      EXPECT_EQ(p1.warm, combined.warm) << alpha;
      EXPECT_EQ(p1.dedup, combined.dedup) << alpha;
    }
  }
}

TEST(AdaptiveKeepAliveTest, DefaultUntilEnoughSamples) {
  AdaptiveKeepAlive ka;
  EXPECT_EQ(ka.KeepAlive(), 10 * kMinute);
  for (int i = 0; i < 4; ++i) {
    ka.RecordArrival(SimTime{} + i * kSecond);
  }
  EXPECT_EQ(ka.KeepAlive(), 10 * kMinute) << "still below min_samples";
}

TEST(AdaptiveKeepAliveTest, TracksSteadyInterArrivals) {
  AdaptiveKeepAlive ka;
  for (int i = 0; i < 20; ++i) {
    ka.RecordArrival(SimTime{} + i * 10 * kSecond);
  }
  // p90 of IATs is 10 s; window = 11 s, clamped to >= 30 s.
  EXPECT_EQ(ka.KeepAlive(), 30 * kSecond);
}

TEST(AdaptiveKeepAliveTest, ClampsToMaxWindow) {
  AdaptiveKeepAlive ka;
  for (int i = 0; i < 20; ++i) {
    ka.RecordArrival(SimTime{} + i * kHour);
  }
  EXPECT_EQ(ka.KeepAlive(), 10 * kMinute);
}

TEST(AdaptiveKeepAliveTest, HistoryIsBounded) {
  AdaptiveKeepAliveOptions opts;
  opts.max_samples = 10;
  AdaptiveKeepAlive ka(opts);
  for (int i = 0; i < 100; ++i) {
    ka.RecordArrival(SimTime{} + i * kSecond);
  }
  EXPECT_EQ(ka.NumSamples(), 10u);
}

TEST(RateTrackerTest, MaxAndMeanRates) {
  RateTracker tracker(10 * kSecond, 6);  // 1-minute window
  // 5 arrivals in the first 10 s bucket.
  for (int i = 0; i < 5; ++i) {
    tracker.RecordArrival(SimTime{} + i * kSecond);
  }
  // 1 arrival in the next bucket.
  tracker.RecordArrival(SimTime{} + 15 * kSecond);
  EXPECT_DOUBLE_EQ(tracker.MaxRate(SimTime{} + 20 * kSecond), 0.5);
  EXPECT_DOUBLE_EQ(tracker.MeanRate(SimTime{} + 20 * kSecond), 6.0 / 60.0);
}

TEST(RateTrackerTest, OldBucketsExpire) {
  RateTracker tracker(10 * kSecond, 3);
  for (int i = 0; i < 9; ++i) {
    tracker.RecordArrival(SimTime{} + kSecond);
  }
  EXPECT_GT(tracker.MaxRate(SimTime{} + 2 * kSecond), 0.0);
  EXPECT_DOUBLE_EQ(tracker.MaxRate(SimTime{} + 10 * kMinute), 0.0);
}

TEST(RateTrackerTest, EmptyTrackerIsZero) {
  RateTracker tracker;
  EXPECT_DOUBLE_EQ(tracker.MaxRate(SimTime{}), 0.0);
  EXPECT_DOUBLE_EQ(tracker.MeanRate(SimTime{}), 0.0);
}

TEST(FixedKeepAliveTest, ReturnsConfiguredPeriod) {
  FixedKeepAlive ka(5 * kMinute);
  EXPECT_EQ(ka.KeepAlive(), 5 * kMinute);
  EXPECT_EQ(FixedKeepAlive().KeepAlive(), 10 * kMinute);
}

// Property sweep: for every alpha the solver's answer respects all
// constraints it claims to satisfy.
class AlphaSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(AlphaSweepTest, SolutionsRespectConstraints) {
  auto in = TypicalInputs();
  auto t = SolveLatencyObjective(in, GetParam());
  if (t.feasible) {
    EXPECT_EQ(t.warm + t.dedup, in.total_sandboxes);
    EXPECT_GE(ServiceableRate(in, t.warm, t.dedup), in.lambda_max);
    EXPECT_LE(AverageStartupLatency(in, t.warm, t.dedup),
              GetParam() * in.warm_start_s + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, AlphaSweepTest,
                         ::testing::Values(1.0, 1.5, 2.0, 2.5, 5.0, 10.0, 100.0));

}  // namespace
}  // namespace medes
