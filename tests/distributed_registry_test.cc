#include "registry/distributed_registry.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <span>

#include "common/rng.h"
#include "net/transport.h"

namespace medes {
namespace {

DistributedRegistryOptions Opts(int num_shards, int replication_factor = 3) {
  DistributedRegistryOptions opts;
  opts.num_shards = num_shards;
  opts.replication_factor = replication_factor;
  return opts;
}

// Random fingerprints whose keys spread across shards.
std::vector<PageFingerprint> RandomFingerprints(size_t pages, uint64_t seed) {
  Rng rng(seed);
  std::vector<PageFingerprint> fps(pages);
  for (auto& fp : fps) {
    for (int c = 0; c < 5; ++c) {
      fp.chunks.push_back({rng.Next(), static_cast<uint32_t>(c * 64)});
    }
  }
  return fps;
}

TEST(DistributedRegistryTest, AgreesWithCentralizedRegistry) {
  DistributedRegistry dist(Opts(4));
  FingerprintRegistry central;
  auto fps_a = RandomFingerprints(40, 1);
  auto fps_b = RandomFingerprints(40, 2);
  dist.InsertBaseSandbox(NodeId{0}, SandboxId{100}, fps_a);
  dist.InsertBaseSandbox(NodeId{1}, SandboxId{200}, fps_b);
  central.InsertBaseSandbox(NodeId{0}, SandboxId{100}, fps_a);
  central.InsertBaseSandbox(NodeId{1}, SandboxId{200}, fps_b);

  // Probe with fingerprints overlapping both sandboxes' pages.
  for (size_t p = 0; p < 40; ++p) {
    PageFingerprint probe = fps_a[p];
    probe.chunks.pop_back();
    probe.chunks.push_back(fps_b[p].chunks[0]);
    auto d = dist.FindBasePage(probe, NodeId{0});
    auto c = central.FindBasePage(probe, NodeId{0});
    ASSERT_EQ(d.has_value(), c.has_value()) << "page " << p;
    if (d.has_value()) {
      EXPECT_EQ(d->location, c->location) << "page " << p;
      EXPECT_EQ(d->overlap, c->overlap) << "page " << p;
    }
  }
}

TEST(DistributedRegistryTest, ShardingSpreadsKeys) {
  DistributedRegistry dist(Opts(8, 1));
  dist.InsertBaseSandbox(NodeId{0}, SandboxId{100}, RandomFingerprints(200, 3));
  // Probe many random fingerprints to exercise lookups on all shards.
  for (const auto& fp : RandomFingerprints(200, 3)) {
    dist.FindBasePage(fp, NodeId{0});
  }
  const auto& stats = dist.distributed_stats();
  size_t active_shards = 0;
  for (uint64_t lookups : stats.lookups_per_shard) {
    active_shards += (lookups > 0) ? 1 : 0;
  }
  EXPECT_EQ(active_shards, 8u) << "uniform keys must hit every shard";
}

TEST(DistributedRegistryTest, SurvivesTailFailure) {
  DistributedRegistry dist(Opts(2));
  auto fps = RandomFingerprints(20, 4);
  dist.InsertBaseSandbox(NodeId{0}, SandboxId{100}, fps);
  // Kill the tail replica of both shards: reads fail over to the middle.
  dist.FailReplica(0, 2);
  dist.FailReplica(1, 2);
  for (const auto& fp : fps) {
    auto hit = dist.FindBasePage(fp, NodeId{0}, /*exclude_sandbox=*/SandboxId{0});
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->location.sandbox, SandboxId{100});
  }
  EXPECT_GT(dist.distributed_stats().failovers, 0u);
}

TEST(DistributedRegistryTest, SurvivesAllButOneReplica) {
  DistributedRegistry dist(Opts(1));
  auto fps = RandomFingerprints(10, 5);
  dist.InsertBaseSandbox(NodeId{0}, SandboxId{100}, fps);
  dist.FailReplica(0, 0);
  dist.FailReplica(0, 2);
  for (const auto& fp : fps) {
    EXPECT_TRUE(dist.FindBasePage(fp, NodeId{0}).has_value());
  }
}

TEST(DistributedRegistryTest, WholeShardDownDegradesGracefully) {
  DistributedRegistry dist(Opts(1, 2));
  auto fps = RandomFingerprints(10, 6);
  dist.InsertBaseSandbox(NodeId{0}, SandboxId{100}, fps);
  dist.FailReplica(0, 0);
  dist.FailReplica(0, 1);
  EXPECT_FALSE(dist.ShardAvailable(0));
  EXPECT_FALSE(dist.FindBasePage(fps[0], NodeId{0}).has_value());
  EXPECT_GT(dist.distributed_stats().unavailable_lookups, 0u);
  // Writes to a dead shard are dropped but do not crash.
  dist.InsertBaseSandbox(NodeId{0}, SandboxId{200}, RandomFingerprints(5, 7));
  EXPECT_GT(dist.distributed_stats().dropped_writes, 0u);
}

TEST(DistributedRegistryTest, RecoveryResyncsState) {
  DistributedRegistry dist(Opts(1));
  auto before = RandomFingerprints(10, 8);
  dist.InsertBaseSandbox(NodeId{0}, SandboxId{100}, before);
  dist.FailReplica(0, 1);
  // Writes continue while the replica is down.
  auto during = RandomFingerprints(10, 9);
  dist.InsertBaseSandbox(NodeId{0}, SandboxId{200}, during);
  dist.RecoverReplica(0, 1);
  // Now kill everyone else; the recovered replica must serve *all* state.
  dist.FailReplica(0, 0);
  dist.FailReplica(0, 2);
  for (const auto& fp : before) {
    auto hit = dist.FindBasePage(fp, NodeId{0});
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->location.sandbox, SandboxId{100});
  }
  for (const auto& fp : during) {
    auto hit = dist.FindBasePage(fp, NodeId{0});
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->location.sandbox, SandboxId{200});
  }
}

TEST(DistributedRegistryTest, RefcountsSurviveFailover) {
  DistributedRegistry dist(Opts(4));
  dist.InsertBaseSandbox(NodeId{0}, SandboxId{100}, RandomFingerprints(5, 10));
  dist.Ref(SandboxId{100});
  dist.Ref(SandboxId{100});
  EXPECT_EQ(dist.RefCount(SandboxId{100}), 2);
  // Kill the tail of every shard; the sandbox's home shard fails over.
  for (int s = 0; s < 4; ++s) {
    dist.FailReplica(s, 2);
  }
  EXPECT_EQ(dist.RefCount(SandboxId{100}), 2);
  dist.Unref(SandboxId{100});
  EXPECT_EQ(dist.RefCount(SandboxId{100}), 1);
  EXPECT_TRUE(dist.IsBaseSandbox(SandboxId{100}));
}

TEST(DistributedRegistryTest, RemoveBaseSandboxEverywhere) {
  DistributedRegistry dist(Opts(4, 2));
  auto fps = RandomFingerprints(20, 11);
  dist.InsertBaseSandbox(NodeId{0}, SandboxId{100}, fps);
  dist.RemoveBaseSandbox(SandboxId{100});
  for (const auto& fp : fps) {
    EXPECT_FALSE(dist.FindBasePage(fp, NodeId{0}).has_value());
  }
  EXPECT_FALSE(dist.IsBaseSandbox(SandboxId{100}));
  RegistryStats stats = dist.stats();
  EXPECT_EQ(stats.num_entries, 0u);
}

TEST(DistributedRegistryTest, PageLookupLatencyShrinksWithShards) {
  DistributedRegistry one(Opts(1, 1));
  DistributedRegistry eight(Opts(8, 1));
  EXPECT_GT(one.PageLookupLatency(8), eight.PageLookupLatency(8));
  EXPECT_EQ(one.PageLookupLatency(0), SimDuration{0});
}

TEST(DistributedRegistryTest, InvalidOptionsRejected) {
  EXPECT_THROW(DistributedRegistry(Opts(0)), std::invalid_argument);
  EXPECT_THROW(DistributedRegistry(Opts(2, 0)),
               std::invalid_argument);
}

// ---- Transport fault seam: partitions instead of FailReplica ------------

struct FaultyNet {
  FaultyNet()
      : transport(std::make_shared<Transport>()), policy(std::make_shared<StaticFaultPolicy>()) {
    transport->InstallFaultPolicy(policy);
  }
  std::shared_ptr<Transport> transport;
  std::shared_ptr<StaticFaultPolicy> policy;
};

TEST(DistributedRegistryTransportTest, PartitionedTailFailsOverToPrecedingReplica) {
  FaultyNet net;
  DistributedRegistry dist(Opts(1), net.transport);
  auto fps = RandomFingerprints(20, 21);
  dist.InsertBaseSandbox(NodeId{0}, SandboxId{100}, fps);

  // Partition the tail replica's transport node mid-workload: reads must
  // fall back to the preceding live replica, writes keep flowing.
  net.policy->PartitionNode(dist.ReplicaNode(0, 2));
  for (const auto& fp : fps) {
    auto hit = dist.FindBasePage(fp, NodeId{0});
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->location.sandbox, SandboxId{100});
  }
  EXPECT_GT(dist.distributed_stats().failovers, 0u);
  dist.InsertBaseSandbox(NodeId{0}, SandboxId{200}, RandomFingerprints(5, 22));
  EXPECT_EQ(dist.distributed_stats().dropped_writes, 0u);
  EXPECT_EQ(dist.distributed_stats().unavailable_lookups, 0u);
}

TEST(DistributedRegistryTransportTest, FullyPartitionedShardDegradesGracefully) {
  FaultyNet net;
  DistributedRegistry dist(Opts(1, 2), net.transport);
  auto fps = RandomFingerprints(10, 23);
  dist.InsertBaseSandbox(NodeId{0}, SandboxId{100}, fps);
  net.policy->PartitionNode(dist.ReplicaNode(0, 0));
  net.policy->PartitionNode(dist.ReplicaNode(0, 1));
  EXPECT_FALSE(dist.ShardAvailable(0));
  EXPECT_FALSE(dist.FindBasePage(fps[0], NodeId{0}).has_value());
  EXPECT_GT(dist.distributed_stats().unavailable_lookups, 0u);
  dist.InsertBaseSandbox(NodeId{0}, SandboxId{200}, RandomFingerprints(5, 24));
  EXPECT_GT(dist.distributed_stats().dropped_writes, 0u);
}

TEST(DistributedRegistryTransportTest, HealedStaleReplicaResyncsFromLivePeer) {
  FaultyNet net;
  DistributedRegistry dist(Opts(1), net.transport);
  auto before = RandomFingerprints(10, 25);
  dist.InsertBaseSandbox(NodeId{0}, SandboxId{100}, before);

  // The tail misses writes while partitioned.
  const NodeId tail_node = dist.ReplicaNode(0, 2);
  net.policy->PartitionNode(tail_node);
  auto during = RandomFingerprints(10, 26);
  dist.InsertBaseSandbox(NodeId{0}, SandboxId{200}, during);

  // A resync attempt against the still-partitioned replica is dropped and
  // must not copy anything.
  dist.RecoverReplica(0, 2);
  EXPECT_EQ(net.transport->stats().For(MessageType::kReplicaSync).dropped, 1u);

  // After healing, the tail serves reads again — but it is *stale*: the
  // writes it missed are invisible until a resync.
  net.policy->HealNode(tail_node);
  EXPECT_FALSE(dist.FindBasePage(during[0], NodeId{0}).has_value());
  for (const auto& fp : before) {
    ASSERT_TRUE(dist.FindBasePage(fp, NodeId{0}).has_value());
  }

  // RecoverReplica re-syncs the full state from a live peer over the
  // transport (one kReplicaSync transfer) and restores read-your-writes.
  dist.RecoverReplica(0, 2);
  const TransportStats net_stats = net.transport->stats();
  const MessageStats& sync = net_stats.For(MessageType::kReplicaSync);
  EXPECT_EQ(sync.messages, 2u);
  EXPECT_EQ(sync.dropped, 1u);
  EXPECT_GT(sync.bytes, 0u);
  for (const auto& fp : during) {
    auto hit = dist.FindBasePage(fp, NodeId{0});
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->location.sandbox, SandboxId{200});
  }
}

TEST(DistributedRegistryTransportTest, LookupsAndInsertsChargeTheTransport) {
  FaultyNet net;
  DistributedRegistry dist(Opts(2), net.transport);
  dist.InsertBaseSandbox(NodeId{0}, SandboxId{100}, RandomFingerprints(20, 27));
  const TransportStats after_insert = net.transport->stats();
  const MessageStats& inserts = after_insert.For(MessageType::kRegistryInsert);
  EXPECT_GT(inserts.messages, 0u);
  EXPECT_GT(inserts.bytes, 0u);

  SimDuration cost;
  auto probes = RandomFingerprints(8, 27);
  (void)dist.FindBasePagesBatch(std::span<const PageFingerprint>(probes), NodeId{0},
                              kNoSandbox, 1, &cost);
  EXPECT_GT(cost, SimDuration{0});
  const TransportStats after_lookup = net.transport->stats();
  const MessageStats& lookups = after_lookup.For(MessageType::kRegistryLookup);
  EXPECT_GT(lookups.messages, 0u);
  // Each touched shard counts the batch pages it served; with keys spread
  // over 2 shards that is between 1x and 2x the page count.
  EXPECT_GE(lookups.requests, 8u);
  EXPECT_LE(lookups.requests, 16u);
}

TEST(DistributedRegistryTest, ShardOfIsStable) {
  DistributedRegistry dist(Opts(4, 1));
  std::set<int> seen;
  for (uint64_t k = 0; k < 64; ++k) {
    int s = dist.ShardOf(k);
    EXPECT_EQ(s, dist.ShardOf(k));
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 4);
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 4u);
}

}  // namespace
}  // namespace medes
