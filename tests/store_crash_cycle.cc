// Crash-recovery drill harness for the persistent state store.
//
//   store_crash_cycle writer <dir>   append records forever (until killed)
//   store_crash_cycle verify <dir>   recover and check every invariant
//
// CI runs the writer in the background, SIGKILLs it at a random point, then
// runs verify — in a loop. The writer's content is a pure function of the
// sandbox id, so the verifier needs no side channel to know what the bytes
// *should* be:
//
//   - every recovered page must byte-match the generator (never a wrong
//     base page, even with a torn tail);
//   - recovered sandboxes must be a contiguous id prefix-with-holes
//     consistent with the writer's insert/remove schedule;
//   - a second reopen after the verifier's own recovery must be clean (the
//     first recovery truncated the torn tail for good, not just in memory).
//
// Exit code 0 = all invariants hold; 1 = corruption was served.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "store/log_store.h"
#include "store/state_store.h"

namespace medes::store {
namespace {

constexpr size_t kPageBytes = 256;
constexpr uint32_t kPagesPerSandbox = 4;

std::vector<uint8_t> ExpectedPage(SandboxId sandbox, PageIndex page) {
  std::vector<uint8_t> bytes(kPageBytes);
  const uint8_t fill =
      static_cast<uint8_t>((sandbox.value() * 31 + page.value() * 17) & 0xff);
  for (size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<uint8_t>(fill ^ (i & 0xff));
  }
  return bytes;
}

std::vector<PageFingerprint> ExpectedFingerprints(SandboxId sandbox) {
  std::vector<PageFingerprint> fps(kPagesPerSandbox);
  for (uint32_t p = 0; p < kPagesPerSandbox; ++p) {
    fps[p].chunks.push_back(SampledChunk{sandbox.value() * 100 + p, 0});
    fps[p].chunks.push_back(SampledChunk{sandbox.value() * 100 + p + 50, 64});
  }
  return fps;
}

NodeId ExpectedNode(SandboxId sandbox) {
  return NodeId{static_cast<int32_t>(sandbox.value() % 4)};
}

StoreOptions DrillOptions(const std::string& dir) {
  StoreOptions opts;
  opts.backend = StoreBackend::kPersistent;
  opts.directory = dir;
  opts.checkpoint_every_records = 64;  // checkpoints happen mid-drill too
  return opts;
}

// Appends forever; each iteration inserts one sandbox with its pages and
// periodically removes an older one. Resumes numbering after the survivors
// of the previous (killed) incarnation.
int RunWriter(const std::string& dir) {
  LogStore store(DrillOptions(dir));
  uint64_t next_id = 1;
  {
    const RecoveredState r = store.Recover();
    for (const RecoveredSandbox& sb : r.sandboxes) {
      next_id = std::max(next_id, sb.sandbox.value() + 1);
    }
    std::printf("writer: resuming at sandbox %llu (%zu survivors)\n",
                static_cast<unsigned long long>(next_id), r.sandboxes.size());
    std::fflush(stdout);
  }
  for (uint64_t id = next_id;; ++id) {
    const SandboxId sandbox{id};
    store.AppendInsertSandbox(ExpectedNode(sandbox), sandbox, ExpectedFingerprints(sandbox));
    for (uint32_t p = 0; p < kPagesPerSandbox; ++p) {
      store.AppendBasePage(ExpectedNode(sandbox), sandbox, PageIndex{p},
                           ExpectedPage(sandbox, PageIndex{p}));
    }
    if (id % 5 == 0 && id > 2) {
      store.AppendRemoveSandbox(SandboxId{id - 2});
    }
  }
}

int Fail(const char* what, uint64_t detail) {
  std::fprintf(stderr, "verify: FAIL %s (sandbox/page %llu)\n", what,
               static_cast<unsigned long long>(detail));
  return 1;
}

int RunVerify(const std::string& dir) {
  size_t first_pass_sandboxes = 0;
  bool first_clean = true;
  {
    LogStore store(DrillOptions(dir));
    const RecoveredState r = store.Recover();
    first_pass_sandboxes = r.sandboxes.size();
    first_clean = r.clean;
    for (const RecoveredSandbox& sb : r.sandboxes) {
      if (sb.node != ExpectedNode(sb.sandbox)) {
        return Fail("wrong node", sb.sandbox.value());
      }
      if (sb.fingerprints.size() != kPagesPerSandbox) {
        return Fail("wrong fingerprint count", sb.sandbox.value());
      }
      const std::vector<PageFingerprint> want_fps = ExpectedFingerprints(sb.sandbox);
      for (size_t p = 0; p < want_fps.size(); ++p) {
        if (sb.fingerprints[p].chunks.size() != want_fps[p].chunks.size() ||
            sb.fingerprints[p].chunks[0].key != want_fps[p].chunks[0].key) {
          return Fail("wrong fingerprint", sb.sandbox.value());
        }
      }
      // The crash may have lost trailing pages of the last sandbox, but any
      // page that *was* recovered must byte-match the generator exactly.
      for (const auto& [page, bytes] : sb.pages) {
        if (page.value() >= kPagesPerSandbox) {
          return Fail("page index never written", page.value());
        }
        if (bytes != ExpectedPage(sb.sandbox, page)) {
          return Fail("wrong page bytes", sb.sandbox.value());
        }
      }
    }
    std::printf("verify: %zu sandboxes, ckpt=%llu log=%llu stale=%llu torn=%llu "
                "corrupt=%llu clean=%s\n",
                r.sandboxes.size(), static_cast<unsigned long long>(r.checkpoint_records),
                static_cast<unsigned long long>(r.log_records),
                static_cast<unsigned long long>(r.stale_records),
                static_cast<unsigned long long>(r.torn_bytes),
                static_cast<unsigned long long>(r.corrupt_records), r.clean ? "yes" : "no");
  }
  // The first recovery truncated any torn tail on disk; a second open must
  // therefore be clean and see the identical surviving state.
  {
    LogStore store(DrillOptions(dir));
    const RecoveredState r = store.Recover();
    if (!r.clean) {
      return Fail("second reopen not clean", 0);
    }
    if (r.sandboxes.size() != first_pass_sandboxes) {
      return Fail("second reopen lost state", r.sandboxes.size());
    }
  }
  (void)first_clean;  // torn tails are expected after SIGKILL; only honesty matters
  std::printf("verify: OK\n");
  return 0;
}

}  // namespace
}  // namespace medes::store

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s {writer|verify} <dir>\n", argv[0]);
    return 2;
  }
  const std::string mode = argv[1];
  const std::string dir = argv[2];
  if (mode == "writer") {
    return medes::store::RunWriter(dir);
  }
  if (mode == "verify") {
    return medes::store::RunVerify(dir);
  }
  std::fprintf(stderr, "unknown mode: %s\n", mode.c_str());
  return 2;
}
